// Long-lived scenario daemon: a localhost TCP server speaking a JSON-lines
// protocol (one JSON document per '\n'-terminated line, both directions)
// that routes submitted Scenario batches through one shared ScenarioEngine.
//
// Requests:
//   {"type": "ping"}                           -> {"type": "pong"}
//   {"type": "stats"}                          -> {"type": "stats", ...}
//   {"type": "run", "scenarios": [{...}, ...]} -> streamed results:
//       {"type": "result", "index": 0, "result": {...}}   (one per scenario,
//       ...                                                 in order)
//       {"type": "done", "count": N, "cache": {...}}
//   {"type": "shutdown"}                       -> {"type": "bye"} and the
//       server begins a graceful stop (wait_for_shutdown_request unblocks).
//
// A malformed or invalid request produces {"type": "error", "message": ...}
// and leaves the connection usable — framing is per line, so one bad
// request cannot poison the next.
//
// Concurrency: each connection gets a reader thread; "run" submissions from
// all connections land in one queue that a single dispatcher drains,
// coalescing everything queued into a single engine.run_batch call — so N
// clients hammering the daemon share the batch-level cache locality (and
// the thread pool) exactly like one big batch would, and results are still
// bit-identical to per-client direct ScenarioEngine::run calls because the
// engine guarantees schedule-independence. Graceful stop drains the queue
// (accepted work is never dropped), then unwinds the threads.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <mutex>
#include <thread>
#include <vector>

#include "scenario/engine.hpp"
#include "service/protocol.hpp"

namespace cnti::service {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back via
  /// port() after start()).
  std::uint16_t port = 0;
  /// Engine configuration — cache tier (DiskCache), sweep threads, etc.
  scenario::EngineOptions engine;
  /// Hard bound on one request line; longer lines fail the connection
  /// (a runaway or hostile client must not exhaust server memory).
  std::size_t max_request_bytes = 64ull * 1024 * 1024;
};

class ScenarioServer {
 public:
  explicit ScenarioServer(ServerOptions options);
  ~ScenarioServer();

  ScenarioServer(const ScenarioServer&) = delete;
  ScenarioServer& operator=(const ScenarioServer&) = delete;

  /// Binds 127.0.0.1:<port>, starts the accept and dispatcher threads.
  /// Throws std::runtime_error if the socket cannot be set up.
  void start();

  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }

  /// Graceful stop: refuse new work, drain every queued batch (their
  /// clients receive full results), then shut the connections down and
  /// join all threads. Idempotent.
  void stop();

  /// Blocks until a client sends {"type": "shutdown"} (or stop() is
  /// called); returns false on timeout. The caller still owns the actual
  /// stop() — typically the daemon main loop, which also watches signals.
  bool wait_for_shutdown_request(std::chrono::milliseconds timeout);

  const scenario::ScenarioEngine& engine() const { return engine_; }

  /// Number of engine.run_batch dispatches (coalescing means this can be
  /// far below the number of "run" requests).
  std::uint64_t batches_dispatched() const;

 private:
  struct Job {
    std::vector<scenario::Scenario> scenarios;
    std::promise<std::vector<scenario::ScenarioResult>> promise;
  };

  void accept_loop();
  void dispatch_loop();
  void serve_connection(int fd);
  void handle_request_line(int fd, const std::string& line);

  ServerOptions options_;
  scenario::ScenarioEngine engine_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::thread dispatch_thread_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;    // dispatcher wakeups
  std::condition_variable drained_cv_;  // stop() waits for drain
  std::condition_variable shutdown_cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool dispatch_in_flight_ = false;
  bool accepting_jobs_ = false;
  bool dispatcher_running_ = false;
  bool shutdown_requested_ = false;
  bool started_ = false;
  bool stopped_ = false;
  std::uint64_t batches_dispatched_ = 0;

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::list<std::thread> conn_threads_;
};

}  // namespace cnti::service
