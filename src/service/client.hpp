// Client side of the scenario service's JSON-lines protocol: connects to a
// daemon on localhost, submits Scenario batches, and reassembles the
// streamed results. Results parsed off the wire are bit-identical to what
// a direct ScenarioEngine::run would return (max_digits10 serialization +
// strtod), which is the property the differential tests pin.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "scenario/engine.hpp"
#include "service/protocol.hpp"

namespace cnti::service {

class ScenarioClient {
 public:
  /// Connects to 127.0.0.1:<port>; throws std::runtime_error on failure.
  explicit ScenarioClient(std::uint16_t port);
  ~ScenarioClient();

  ScenarioClient(const ScenarioClient&) = delete;
  ScenarioClient& operator=(const ScenarioClient&) = delete;

  /// Submits a batch and blocks for the full result stream (in submission
  /// order). Throws ProtocolError on a server-reported error or a
  /// malformed stream.
  std::vector<scenario::ScenarioResult> run(
      const std::vector<scenario::Scenario>& scenarios);

  /// Per-stage cache stats reported by the server with the last run()'s
  /// "done" message (empty before the first run).
  const std::map<std::string, scenario::CacheStats>& last_cache_stats()
      const {
    return last_cache_stats_;
  }

  /// Round-trips a ping; false if the server is unreachable/hung up.
  bool ping();

  /// Fetches the server's cache stats without running anything.
  std::map<std::string, scenario::CacheStats> stats();

  /// Full `stats` reply as parsed JSON — includes the per-stage disk-tier
  /// breakdown ("disk".{"totals","stages"}) when the server runs one.
  JsonValue stats_raw();

  /// The server's metrics registry snapshot (the `metrics` wire verb):
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  JsonValue metrics();

  /// Asks the daemon to shut down gracefully (it drains queued work
  /// first); returns once the server acknowledges.
  void request_shutdown();

 private:
  void send_line(const std::string& body);
  /// Reads one '\n'-terminated line (blocking); throws on EOF.
  std::string read_line();

  int fd_ = -1;
  std::string buffer_;
  std::map<std::string, scenario::CacheStats> last_cache_stats_;
};

}  // namespace cnti::service
