#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cnti::service {

ScenarioClient::ScenarioClient(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("scenario client: socket: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("scenario client: cannot connect to 127.0.0.1:" +
                             std::to_string(port) + ": " + why);
  }
}

ScenarioClient::~ScenarioClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ScenarioClient::send_line(const std::string& body) {
  std::string_view bytes_view;
  const std::string framed = body + "\n";
  bytes_view = framed;
  while (!bytes_view.empty()) {
    const ssize_t n =
        ::send(fd_, bytes_view.data(), bytes_view.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("scenario client: send: ") +
                               std::strerror(errno));
    }
    bytes_view.remove_prefix(static_cast<std::size_t>(n));
  }
}

std::string ScenarioClient::read_line() {
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw ProtocolError("scenario client: server closed the connection");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::vector<scenario::ScenarioResult> ScenarioClient::run(
    const std::vector<scenario::Scenario>& scenarios) {
  std::string req = "{\"type\": \"run\", \"scenarios\": [";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (i > 0) req += ", ";
    req += scenario_to_json(scenarios[i]);
  }
  req += "]}";
  send_line(req);

  std::vector<scenario::ScenarioResult> results(scenarios.size());
  std::vector<bool> seen(scenarios.size(), false);
  while (true) {
    const JsonValue msg = parse_json(read_line());
    const std::string& type = msg.at("type").as_string();
    if (type == "error") {
      throw ProtocolError("server error: " + msg.at("message").as_string());
    }
    if (type == "result") {
      const double raw_index = msg.at("index").as_number();
      const auto index = static_cast<std::size_t>(raw_index);
      if (static_cast<double>(index) != raw_index ||
          index >= results.size() || seen[index]) {
        throw ProtocolError("scenario client: bad result index");
      }
      results[index] = result_from_json(msg.at("result"));
      seen[index] = true;
      continue;
    }
    if (type == "done") {
      const auto count = static_cast<std::size_t>(msg.at("count").as_number());
      if (count != scenarios.size()) {
        throw ProtocolError("scenario client: result count mismatch");
      }
      for (const bool s : seen) {
        if (!s) throw ProtocolError("scenario client: missing result");
      }
      last_cache_stats_ = cache_stats_from_json(
          msg.at("cache").at("stages"));
      return results;
    }
    throw ProtocolError("scenario client: unexpected message type \"" + type +
                        "\"");
  }
}

bool ScenarioClient::ping() {
  try {
    send_line("{\"type\": \"ping\"}");
    const JsonValue msg = parse_json(read_line());
    return msg.at("type").as_string() == "pong";
  } catch (const std::exception&) {
    return false;
  }
}

std::map<std::string, scenario::CacheStats> ScenarioClient::stats() {
  const JsonValue msg = stats_raw();
  return cache_stats_from_json(msg.at("cache").at("stages"));
}

JsonValue ScenarioClient::stats_raw() {
  send_line("{\"type\": \"stats\"}");
  JsonValue msg = parse_json(read_line());
  if (msg.at("type").as_string() == "error") {
    throw ProtocolError("server error: " + msg.at("message").as_string());
  }
  return msg;
}

JsonValue ScenarioClient::metrics() {
  send_line("{\"type\": \"metrics\"}");
  JsonValue msg = parse_json(read_line());
  if (msg.at("type").as_string() == "error") {
    throw ProtocolError("server error: " + msg.at("message").as_string());
  }
  return msg.at("metrics");
}

void ScenarioClient::request_shutdown() {
  send_line("{\"type\": \"shutdown\"}");
  const JsonValue msg = parse_json(read_line());
  if (msg.at("type").as_string() != "bye") {
    throw ProtocolError("scenario client: unexpected shutdown reply");
  }
}

}  // namespace cnti::service
