// Minimal JSON document model + strict recursive-descent parser for the
// scenario service's JSON-lines wire format. Scope is deliberately small:
// whatever common/json_sink.hpp and scenario/report.cpp can emit must
// parse back exactly (17-significant-digit numbers round-trip doubles
// bit-identically via strtod), plus the usual escapes. Errors throw
// ProtocolError with a byte offset; a depth limit keeps an adversarial
// client from overflowing the server's stack.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace cnti::service {

/// Malformed wire input: bad JSON, or JSON whose shape violates the
/// protocol schema (missing/unknown/mistyped members).
class ProtocolError : public ParseError {
 public:
  using ParseError::ParseError;
};

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}                   // NOLINT
  JsonValue(bool b) : v_(b) {}                                 // NOLINT
  JsonValue(double d) : v_(d) {}                               // NOLINT
  JsonValue(std::string s) : v_(std::move(s)) {}               // NOLINT
  JsonValue(Array a) : v_(std::move(a)) {}                     // NOLINT
  JsonValue(Object o) : v_(std::move(o)) {}                    // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  // Checked accessors; throw ProtocolError on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws ProtocolError when absent.
  const JsonValue& at(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses exactly one JSON document; trailing non-whitespace is an error.
JsonValue parse_json(std::string_view text);

}  // namespace cnti::service
