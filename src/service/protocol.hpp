// Wire-format serialization for the scenario service: Scenario and
// ScenarioResult as single-line JSON, with the result schema shared
// byte-for-byte with scenario/report.cpp's writers (the parser here is the
// inverse of the report schema, so report files and wire messages stay one
// format). Doubles cross the wire at max_digits10 precision, which makes a
// serialize -> parse round trip bit-identical — the property the
// N-clients-vs-direct-API differential tests pin.
//
// Scenario JSON shape (all fields optional; absent = spec default):
//
//   {"label": "...",
//    "tech": {"outer_diameter_nm": 10.0, "dopant": "iodine-internal", ...,
//             "environment": {"radius_m": ..., ...},
//             "capacitance_model": "analytic" | "tcad"},
//    "workload": {"length_um": ..., ...},
//    "analysis": {"delay": true, "delay_model": "elmore" | "mna-transient",
//                 "noise": false, "noise_model": "reduced-order" | "full-mna",
//                 "thermal": false, "time_steps": ..., "delay_segments": ...}}
//
// Parsing is strict: unknown members anywhere are a ProtocolError (they
// are far more likely a misspelled study axis than an extension).
#pragma once

#include <string>

#include "obs/obs.hpp"
#include "scenario/engine.hpp"
#include "scenario/spec.hpp"
#include "service/json.hpp"

namespace cnti::service {

// Enum <-> wire-name mappings (throw ProtocolError on unknown names).
std::string to_wire(scenario::CapacitanceModel m);
std::string to_wire(scenario::DelayModel m);
std::string to_wire(scenario::NoiseModel m);
std::string to_wire(atomistic::DopantSpecies s);
scenario::CapacitanceModel capacitance_model_from_wire(const std::string& s);
scenario::DelayModel delay_model_from_wire(const std::string& s);
scenario::NoiseModel noise_model_from_wire(const std::string& s);
atomistic::DopantSpecies dopant_from_wire(const std::string& s);

/// One-line JSON for a Scenario (every field emitted explicitly).
std::string scenario_to_json(const scenario::Scenario& s);
/// Inverse of scenario_to_json; starts from a default-constructed
/// Scenario, so absent members keep their spec defaults.
scenario::Scenario scenario_from_json(const JsonValue& v);

/// One-line JSON identical in schema to the report writer's per-scenario
/// objects (delegates to scenario::write_result_json_object).
std::string result_to_json(const scenario::ScenarioResult& r);
/// Inverse of result_to_json / the report schema.
scenario::ScenarioResult result_from_json(const JsonValue& v);

/// Parses the report JSON's "stages" cache-stats object
/// ({"<stage>": {"hits": h, "disk_hits": d, "misses": m}, ...}).
std::map<std::string, scenario::CacheStats> cache_stats_from_json(
    const JsonValue& stages);

/// Inverse of obs::write_metrics_json — rebuilds a metrics snapshot from
/// the `metrics` verb's payload so clients can re-render it (e.g. as
/// Prometheus text). Histogram buckets arrive as sparse [index, count]
/// pairs; anything malformed is a ProtocolError.
obs::MetricsSnapshot metrics_snapshot_from_json(const JsonValue& v);

}  // namespace cnti::service
