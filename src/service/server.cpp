#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <sstream>

#include "common/json_sink.hpp"
#include "obs/obs.hpp"
#include "scenario/report.hpp"
#include "service/disk_cache.hpp"

namespace cnti::service {

namespace {

[[noreturn]] void sys_fail(const char* what) {
  throw std::runtime_error(std::string("scenario server: ") + what + ": " +
                           std::strerror(errno));
}

/// Sends the full buffer (looping over partial writes). MSG_NOSIGNAL: a
/// client that hung up must surface as an error return, not SIGPIPE.
bool send_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

bool send_line(int fd, const std::string& body) {
  return send_all(fd, body + "\n");
}

std::string error_line(const std::string& message) {
  return "{\"type\": \"error\", \"message\": \"" + json_escape(message) +
         "\"}";
}

/// Service-tier obs handles (`cnti.service.*`).
struct ServiceObs {
  obs::Counter connections = obs::counter("cnti.service.connections");
  obs::Counter requests = obs::counter("cnti.service.requests");
  obs::Counter errors = obs::counter("cnti.service.errors");
  obs::Counter batches = obs::counter("cnti.service.batches");
  obs::Counter scenarios = obs::counter("cnti.service.scenarios");
  obs::Gauge queue_depth = obs::gauge("cnti.service.queue_depth");
  obs::Histogram request_hist = obs::histogram("cnti.service.request_ns");
  obs::Histogram dispatch_hist = obs::histogram("cnti.service.dispatch_ns");
};

const ServiceObs& service_obs() {
  static const ServiceObs handles;
  return handles;
}

/// Aggregate + per-stage disk-tier counters as a JSON object — the
/// warm-restart attribution block of the `stats` verb.
void write_disk_stats_json(std::ostream& out, const DiskCache& cache) {
  const DiskCacheStats t = cache.stats();
  out << "{\"totals\": {\"hits\": " << t.hits << ", \"misses\": " << t.misses
      << ", \"stores\": " << t.stores
      << ", \"store_failures\": " << t.store_failures
      << ", \"corrupt_evictions\": " << t.corrupt_evictions
      << ", \"lru_evictions\": " << t.lru_evictions
      << ", \"bytes\": " << t.bytes << ", \"entries\": " << t.entries
      << "}, \"stages\": {";
  bool first = true;
  for (const auto& [stage, s] : cache.stats_by_stage()) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << json_escape(stage) << "\": {\"hits\": " << s.hits
        << ", \"misses\": " << s.misses << ", \"stores\": " << s.stores
        << ", \"store_failures\": " << s.store_failures
        << ", \"corrupt_evictions\": " << s.corrupt_evictions << "}";
  }
  out << "}}";
}

}  // namespace

ScenarioServer::ScenarioServer(ServerOptions options)
    : options_(options), engine_(options.engine) {}

ScenarioServer::~ScenarioServer() { stop(); }

void ScenarioServer::start() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    CNTI_EXPECTS(!started_, "scenario server already started");
    started_ = true;
    accepting_jobs_ = true;
    dispatcher_running_ = true;
  }
  // The daemon always collects span latency histograms (the `metrics` verb
  // serves them live); stop() releases the reference symmetrically.
  obs::set_timing_enabled(true);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    sys_fail("bind 127.0.0.1");
  }
  if (::listen(listen_fd_, 64) < 0) sys_fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    sys_fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

void ScenarioServer::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed by stop() (EBADF/EINVAL) — time to leave.
      return;
    }
    service_obs().connections.add();
    const std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void ScenarioServer::dispatch_loop() {
  while (true) {
    std::vector<std::shared_ptr<Job>> batch_jobs;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock,
                     [&] { return !queue_.empty() || !dispatcher_running_; });
      if (queue_.empty() && !dispatcher_running_) return;
      // Coalesce everything currently queued into one engine batch: the
      // queue-batching contract that lets N clients share cache locality.
      batch_jobs.assign(queue_.begin(), queue_.end());
      queue_.clear();
      dispatch_in_flight_ = true;
      ++batches_dispatched_;
    }
    service_obs().queue_depth.set(0.0);
    std::vector<scenario::Scenario> merged;
    for (const auto& job : batch_jobs) {
      merged.insert(merged.end(), job->scenarios.begin(),
                    job->scenarios.end());
    }
    service_obs().batches.add();
    service_obs().scenarios.add(merged.size());
    const obs::ObsSpan dispatch_span("service.dispatch", "service",
                                     service_obs().dispatch_hist);
    try {
      std::vector<scenario::ScenarioResult> results =
          engine_.run_batch(merged);
      std::size_t offset = 0;
      for (const auto& job : batch_jobs) {
        const std::size_t n = job->scenarios.size();
        job->promise.set_value(std::vector<scenario::ScenarioResult>(
            results.begin() + static_cast<std::ptrdiff_t>(offset),
            results.begin() + static_cast<std::ptrdiff_t>(offset + n)));
        offset += n;
      }
    } catch (...) {
      // One poisoned scenario fails the merged batch; every waiting client
      // gets the exception (their connections report it and stay open).
      for (const auto& job : batch_jobs) {
        job->promise.set_exception(std::current_exception());
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      dispatch_in_flight_ = false;
    }
    drained_cv_.notify_all();
  }
}

void ScenarioServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[65536];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed, or stop() shut the socket down
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > options_.max_request_bytes) {
      send_line(fd, error_line("request line exceeds limit"));
      break;
    }
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_request_line(fd, line);
    }
  }
  ::close(fd);
}

void ScenarioServer::handle_request_line(int fd, const std::string& line) {
  service_obs().requests.add();
  const obs::ObsSpan request_span("service.request", "service",
                                  service_obs().request_hist);
  try {
    const JsonValue req = parse_json(line);
    const std::string& type = req.at("type").as_string();
    if (type == "ping") {
      send_line(fd, "{\"type\": \"pong\"}");
      return;
    }
    if (type == "stats") {
      std::ostringstream out;
      out << "{\"type\": \"stats\", \"batches_dispatched\": "
          << batches_dispatched() << ", \"cache\": ";
      scenario::write_cache_stats_json_object(out, engine_.cache(), "");
      if (const auto disk = std::dynamic_pointer_cast<const DiskCache>(
              engine_.cache().tier())) {
        out << ", \"disk\": ";
        write_disk_stats_json(out, *disk);
      }
      out << "}";
      send_line(fd, out.str());
      return;
    }
    if (type == "metrics") {
      std::ostringstream out;
      out << "{\"type\": \"metrics\", \"metrics\": ";
      obs::write_metrics_json(out, obs::metrics_snapshot());
      out << "}";
      send_line(fd, out.str());
      return;
    }
    if (type == "shutdown") {
      send_line(fd, "{\"type\": \"bye\"}");
      {
        const std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return;
    }
    if (type != "run") {
      throw ProtocolError("unknown request type \"" + type + "\"");
    }

    std::vector<scenario::Scenario> scenarios;
    for (const JsonValue& v : req.at("scenarios").as_array()) {
      scenario::Scenario s = scenario_from_json(v);
      // Validate now, per request, so a bad scenario errors this client
      // instead of poisoning the coalesced batch everyone shares.
      core::validate_multiscale_input(scenario::to_multiscale_input(s));
      scenarios.push_back(std::move(s));
    }

    auto job = std::make_shared<Job>();
    job->scenarios = std::move(scenarios);
    std::future<std::vector<scenario::ScenarioResult>> fut =
        job->promise.get_future();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!accepting_jobs_) {
        send_line(fd, error_line("server is shutting down"));
        return;
      }
      queue_.push_back(job);
      service_obs().queue_depth.set(static_cast<double>(queue_.size()));
    }
    queue_cv_.notify_one();

    const std::vector<scenario::ScenarioResult> results = fut.get();
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::ostringstream out;
      out << "{\"type\": \"result\", \"index\": " << i
          << ", \"result\": " << result_to_json(results[i]) << "}";
      if (!send_line(fd, out.str())) return;
    }
    std::ostringstream done;
    done << "{\"type\": \"done\", \"count\": " << results.size()
         << ", \"cache\": ";
    scenario::write_cache_stats_json_object(done, engine_.cache(), "");
    done << "}";
    send_line(fd, done.str());
  } catch (const std::exception& e) {
    service_obs().errors.add();
    send_line(fd, error_line(e.what()));
  }
}

void ScenarioServer::stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
    accepting_jobs_ = false;  // new "run" requests are refused...
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();

  // ...but everything already queued is drained first: accepted work is
  // never dropped by a graceful stop.
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock,
                     [&] { return queue_.empty() && !dispatch_in_flight_; });
    dispatcher_running_ = false;
  }
  queue_cv_.notify_all();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();

  // Close the listener so the accept loop unblocks and exits.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Half-close the connections (SHUT_RD): their readers see EOF and exit,
  // but any response still being streamed flushes unharmed.
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  std::list<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
    conn_fds_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  obs::set_timing_enabled(false);
}

bool ScenarioServer::wait_for_shutdown_request(
    std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return shutdown_cv_.wait_for(lock, timeout,
                               [&] { return shutdown_requested_; });
}

std::uint64_t ScenarioServer::batches_dispatched() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return batches_dispatched_;
}

}  // namespace cnti::service
