#include "service/json.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace cnti::service {

namespace {

[[noreturn]] void fail(std::size_t at, const std::string& what) {
  throw ProtocolError("json parse error at byte " + std::to_string(at) +
                      ": " + what);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail(pos_, "invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail(pos_, "invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail(pos_, "invalid literal");
      default:
        return JsonValue(parse_number());
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      const std::size_t key_at = pos_;
      std::string key = parse_string();
      skip_ws();
      expect(':');
      JsonValue value = parse_value(depth + 1);
      if (!obj.emplace(std::move(key), std::move(value)).second) {
        fail(key_at, "duplicate object key");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  unsigned parse_hex4() {
    if (text_.size() - pos_ < 4) fail(pos_, "truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail(pos_, "invalid \\u escape");
    }
    pos_ += 4;
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // consume the backslash
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: require the paired low surrogate.
            if (!consume_literal("\\u")) fail(pos_, "unpaired surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xdc00 || lo > 0xdfff) fail(pos_, "unpaired surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail(pos_, "unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail(pos_ - 1, "invalid escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(start, "expected a value");
    // strtod needs a terminated buffer; the token is tiny, copy it.
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail(start, "malformed number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_fail(const char* want) {
  throw ProtocolError(std::string("json type mismatch: expected ") + want);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) type_fail("bool");
  return std::get<bool>(v_);
}

double JsonValue::as_number() const {
  if (!is_number()) type_fail("number");
  return std::get<double>(v_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) type_fail("string");
  return std::get<std::string>(v_);
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) type_fail("array");
  return std::get<Array>(v_);
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) type_fail("object");
  return std::get<Object>(v_);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<Object>(v_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw ProtocolError("missing json object member \"" + key + "\"");
  }
  return *v;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace cnti::service
