#include "service/protocol.hpp"

#include <cmath>
#include <cstdint>
#include <sstream>

#include "common/json_sink.hpp"
#include "scenario/report.hpp"

namespace cnti::service {

namespace {

[[noreturn]] void unknown_name(const char* what, const std::string& s) {
  throw ProtocolError(std::string("unknown ") + what + " \"" + s + "\"");
}

/// Rejects members outside `allowed` (strict schema).
void check_members(const JsonValue& v, const char* where,
                   std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : v.as_object()) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw ProtocolError(std::string("unknown member \"") + key + "\" in " +
                          where);
    }
  }
}

double num_or(const JsonValue& v, const char* key, double fallback) {
  const JsonValue* m = v.find(key);
  if (m == nullptr) return fallback;
  if (m->is_null()) return std::nan("");  // json_number emits null for these
  return m->as_number();
}

int int_or(const JsonValue& v, const char* key, int fallback) {
  const JsonValue* m = v.find(key);
  if (m == nullptr) return fallback;
  const double d = m->as_number();
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) {
    throw ProtocolError(std::string("member \"") + key +
                        "\" must be an integer");
  }
  return i;
}

bool bool_or(const JsonValue& v, const char* key, bool fallback) {
  const JsonValue* m = v.find(key);
  return m == nullptr ? fallback : m->as_bool();
}

std::string str_or(const JsonValue& v, const char* key,
                   const std::string& fallback) {
  const JsonValue* m = v.find(key);
  return m == nullptr ? fallback : m->as_string();
}

/// 64-bit seeds travel as 16-hex-digit strings: a JSON number is a double
/// and would silently drop the low bits of seeds past 2^53, breaking the
/// reproduce-by-seed contract.
std::string seed_to_wire(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::uint64_t seed_or(const JsonValue& v, const char* key,
                      std::uint64_t fallback) {
  const JsonValue* m = v.find(key);
  if (m == nullptr) return fallback;
  const std::string& s = m->as_string();
  if (s.size() != 16 ||
      s.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw ProtocolError(std::string("member \"") + key +
                        "\" must be a 16-hex-digit string");
  }
  std::uint64_t out = 0;
  for (const char c : s) {
    out = (out << 4) |
          static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  return out;
}

}  // namespace

std::string to_wire(scenario::CapacitanceModel m) {
  switch (m) {
    case scenario::CapacitanceModel::kAnalytic: return "analytic";
    case scenario::CapacitanceModel::kTcad: return "tcad";
  }
  unknown_name("capacitance model", std::to_string(static_cast<int>(m)));
}

std::string to_wire(scenario::DelayModel m) {
  switch (m) {
    case scenario::DelayModel::kElmore: return "elmore";
    case scenario::DelayModel::kMnaTransient: return "mna-transient";
  }
  unknown_name("delay model", std::to_string(static_cast<int>(m)));
}

std::string to_wire(scenario::NoiseModel m) {
  switch (m) {
    case scenario::NoiseModel::kReducedOrder: return "reduced-order";
    case scenario::NoiseModel::kFullMna: return "full-mna";
  }
  unknown_name("noise model", std::to_string(static_cast<int>(m)));
}

std::string to_wire(atomistic::DopantSpecies s) {
  switch (s) {
    case atomistic::DopantSpecies::kIodineInternal: return "iodine-internal";
    case atomistic::DopantSpecies::kIodineExternal: return "iodine-external";
    case atomistic::DopantSpecies::kPtCl4External: return "ptcl4-external";
    case atomistic::DopantSpecies::kPtClInternal: return "ptcl-internal";
  }
  unknown_name("dopant species", std::to_string(static_cast<int>(s)));
}

scenario::CapacitanceModel capacitance_model_from_wire(const std::string& s) {
  if (s == "analytic") return scenario::CapacitanceModel::kAnalytic;
  if (s == "tcad") return scenario::CapacitanceModel::kTcad;
  unknown_name("capacitance model", s);
}

scenario::DelayModel delay_model_from_wire(const std::string& s) {
  if (s == "elmore") return scenario::DelayModel::kElmore;
  if (s == "mna-transient") return scenario::DelayModel::kMnaTransient;
  unknown_name("delay model", s);
}

scenario::NoiseModel noise_model_from_wire(const std::string& s) {
  if (s == "reduced-order") return scenario::NoiseModel::kReducedOrder;
  if (s == "full-mna") return scenario::NoiseModel::kFullMna;
  unknown_name("noise model", s);
}

atomistic::DopantSpecies dopant_from_wire(const std::string& s) {
  if (s == "iodine-internal") return atomistic::DopantSpecies::kIodineInternal;
  if (s == "iodine-external") return atomistic::DopantSpecies::kIodineExternal;
  if (s == "ptcl4-external") return atomistic::DopantSpecies::kPtCl4External;
  if (s == "ptcl-internal") return atomistic::DopantSpecies::kPtClInternal;
  unknown_name("dopant species", s);
}

std::string scenario_to_json(const scenario::Scenario& s) {
  std::ostringstream out;
  out << "{\"label\": \"" << json_escape(s.label) << "\"";
  out << ", \"tech\": {"
      << "\"outer_diameter_nm\": " << json_number(s.tech.outer_diameter_nm)
      << ", \"dopant\": \"" << to_wire(s.tech.dopant) << "\""
      << ", \"dopant_concentration\": "
      << json_number(s.tech.dopant_concentration)
      << ", \"temperature_k\": " << json_number(s.tech.temperature_k)
      << ", \"defect_spacing_um\": " << json_number(s.tech.defect_spacing_um)
      << ", \"contact_resistance_kohm\": "
      << json_number(s.tech.contact_resistance_kohm)
      << ", \"environment\": {"
      << "\"radius_m\": " << json_number(s.tech.environment.radius_m)
      << ", \"center_height_m\": "
      << json_number(s.tech.environment.center_height_m)
      << ", \"neighbor_pitch_m\": "
      << json_number(s.tech.environment.neighbor_pitch_m)
      << ", \"eps_r\": " << json_number(s.tech.environment.eps_r)
      << ", \"coupling_factor\": "
      << json_number(s.tech.environment.coupling_factor) << "}"
      << ", \"capacitance_model\": \"" << to_wire(s.tech.capacitance_model)
      << "\""
      << ", \"tcad_cells_per_side\": " << s.tech.tcad_cells_per_side << "}";
  out << ", \"workload\": {"
      << "\"length_um\": " << json_number(s.workload.length_um)
      << ", \"driver_resistance_kohm\": "
      << json_number(s.workload.driver_resistance_kohm)
      << ", \"load_capacitance_ff\": "
      << json_number(s.workload.load_capacitance_ff)
      << ", \"vdd_v\": " << json_number(s.workload.vdd_v)
      << ", \"edge_time_ps\": " << json_number(s.workload.edge_time_ps)
      << ", \"bus_lines\": " << s.workload.bus_lines
      << ", \"bus_segments\": " << s.workload.bus_segments
      << ", \"coupling_cap_af_per_um\": "
      << json_number(s.workload.coupling_cap_af_per_um)
      << ", \"aggressor\": " << s.workload.aggressor
      << ", \"operating_current_ua\": "
      << json_number(s.workload.operating_current_ua)
      << ", \"thermal_conductivity_w_mk\": "
      << json_number(s.workload.thermal_conductivity_w_mk)
      << ", \"substrate_coupling_w_mk\": "
      << json_number(s.workload.substrate_coupling_w_mk)
      << ", \"max_temperature_rise_k\": "
      << json_number(s.workload.max_temperature_rise_k) << "}";
  out << ", \"analysis\": {"
      << "\"delay\": " << (s.analysis.delay ? "true" : "false")
      << ", \"delay_model\": \"" << to_wire(s.analysis.delay_model) << "\""
      << ", \"noise\": " << (s.analysis.noise ? "true" : "false")
      << ", \"noise_model\": \"" << to_wire(s.analysis.noise_model) << "\""
      << ", \"thermal\": " << (s.analysis.thermal ? "true" : "false")
      << ", \"time_steps\": " << s.analysis.time_steps
      << ", \"delay_segments\": " << s.analysis.delay_segments << "}";
  out << ", \"variability\": {"
      << "\"seed\": \"" << seed_to_wire(s.variability.seed) << "\""
      << ", \"samples\": " << s.variability.samples
      << ", \"resistance_span\": " << json_number(s.variability.resistance_span)
      << ", \"capacitance_span\": "
      << json_number(s.variability.capacitance_span)
      << ", \"coupling_span\": " << json_number(s.variability.coupling_span)
      << "}";
  out << "}";
  return out.str();
}

scenario::Scenario scenario_from_json(const JsonValue& v) {
  check_members(v, "scenario",
                {"label", "tech", "workload", "analysis", "variability"});
  scenario::Scenario s;
  s.label = str_or(v, "label", "");
  if (const JsonValue* tech = v.find("tech")) {
    check_members(*tech, "tech",
                  {"outer_diameter_nm", "dopant", "dopant_concentration",
                   "temperature_k", "defect_spacing_um",
                   "contact_resistance_kohm", "environment",
                   "capacitance_model", "tcad_cells_per_side"});
    auto& t = s.tech;
    t.outer_diameter_nm =
        num_or(*tech, "outer_diameter_nm", t.outer_diameter_nm);
    if (const JsonValue* d = tech->find("dopant")) {
      t.dopant = dopant_from_wire(d->as_string());
    }
    t.dopant_concentration =
        num_or(*tech, "dopant_concentration", t.dopant_concentration);
    t.temperature_k = num_or(*tech, "temperature_k", t.temperature_k);
    t.defect_spacing_um =
        num_or(*tech, "defect_spacing_um", t.defect_spacing_um);
    t.contact_resistance_kohm =
        num_or(*tech, "contact_resistance_kohm", t.contact_resistance_kohm);
    if (const JsonValue* env = tech->find("environment")) {
      check_members(*env, "environment",
                    {"radius_m", "center_height_m", "neighbor_pitch_m",
                     "eps_r", "coupling_factor"});
      auto& e = t.environment;
      e.radius_m = num_or(*env, "radius_m", e.radius_m);
      e.center_height_m = num_or(*env, "center_height_m", e.center_height_m);
      e.neighbor_pitch_m =
          num_or(*env, "neighbor_pitch_m", e.neighbor_pitch_m);
      e.eps_r = num_or(*env, "eps_r", e.eps_r);
      e.coupling_factor = num_or(*env, "coupling_factor", e.coupling_factor);
    }
    if (const JsonValue* m = tech->find("capacitance_model")) {
      t.capacitance_model = capacitance_model_from_wire(m->as_string());
    }
    t.tcad_cells_per_side =
        int_or(*tech, "tcad_cells_per_side", t.tcad_cells_per_side);
  }
  if (const JsonValue* wl = v.find("workload")) {
    check_members(*wl, "workload",
                  {"length_um", "driver_resistance_kohm",
                   "load_capacitance_ff", "vdd_v", "edge_time_ps",
                   "bus_lines", "bus_segments", "coupling_cap_af_per_um",
                   "aggressor", "operating_current_ua",
                   "thermal_conductivity_w_mk", "substrate_coupling_w_mk",
                   "max_temperature_rise_k"});
    auto& w = s.workload;
    w.length_um = num_or(*wl, "length_um", w.length_um);
    w.driver_resistance_kohm =
        num_or(*wl, "driver_resistance_kohm", w.driver_resistance_kohm);
    w.load_capacitance_ff =
        num_or(*wl, "load_capacitance_ff", w.load_capacitance_ff);
    w.vdd_v = num_or(*wl, "vdd_v", w.vdd_v);
    w.edge_time_ps = num_or(*wl, "edge_time_ps", w.edge_time_ps);
    w.bus_lines = int_or(*wl, "bus_lines", w.bus_lines);
    w.bus_segments = int_or(*wl, "bus_segments", w.bus_segments);
    w.coupling_cap_af_per_um =
        num_or(*wl, "coupling_cap_af_per_um", w.coupling_cap_af_per_um);
    w.aggressor = int_or(*wl, "aggressor", w.aggressor);
    w.operating_current_ua =
        num_or(*wl, "operating_current_ua", w.operating_current_ua);
    w.thermal_conductivity_w_mk =
        num_or(*wl, "thermal_conductivity_w_mk", w.thermal_conductivity_w_mk);
    w.substrate_coupling_w_mk =
        num_or(*wl, "substrate_coupling_w_mk", w.substrate_coupling_w_mk);
    w.max_temperature_rise_k =
        num_or(*wl, "max_temperature_rise_k", w.max_temperature_rise_k);
  }
  if (const JsonValue* an = v.find("analysis")) {
    check_members(*an, "analysis",
                  {"delay", "delay_model", "noise", "noise_model", "thermal",
                   "time_steps", "delay_segments"});
    auto& a = s.analysis;
    a.delay = bool_or(*an, "delay", a.delay);
    if (const JsonValue* m = an->find("delay_model")) {
      a.delay_model = delay_model_from_wire(m->as_string());
    }
    a.noise = bool_or(*an, "noise", a.noise);
    if (const JsonValue* m = an->find("noise_model")) {
      a.noise_model = noise_model_from_wire(m->as_string());
    }
    a.thermal = bool_or(*an, "thermal", a.thermal);
    a.time_steps = int_or(*an, "time_steps", a.time_steps);
    a.delay_segments = int_or(*an, "delay_segments", a.delay_segments);
  }
  if (const JsonValue* var = v.find("variability")) {
    check_members(*var, "variability",
                  {"seed", "samples", "resistance_span", "capacitance_span",
                   "coupling_span"});
    auto& vr = s.variability;
    vr.seed = seed_or(*var, "seed", vr.seed);
    vr.samples = int_or(*var, "samples", vr.samples);
    vr.resistance_span = num_or(*var, "resistance_span", vr.resistance_span);
    vr.capacitance_span =
        num_or(*var, "capacitance_span", vr.capacitance_span);
    vr.coupling_span = num_or(*var, "coupling_span", vr.coupling_span);
  }
  return s;
}

std::string result_to_json(const scenario::ScenarioResult& r) {
  std::ostringstream out;
  scenario::write_result_json_object(out, r, "");
  return out.str();
}

scenario::ScenarioResult result_from_json(const JsonValue& v) {
  check_members(v, "result", {"label", "line", "noise", "thermal"});
  scenario::ScenarioResult r;
  r.label = str_or(v, "label", "");
  const JsonValue& line = v.at("line");
  check_members(line, "line",
                {"fermi_shift_ev", "channels_per_shell", "mfp_um", "shells",
                 "resistance_kohm", "capacitance_ff",
                 "electrostatic_cap_af_per_um", "delay_ps", "delay_method"});
  r.line.fermi_shift_ev = line.at("fermi_shift_ev").as_number();
  r.line.channels_per_shell = line.at("channels_per_shell").as_number();
  r.line.mfp_um = line.at("mfp_um").as_number();
  r.line.shells = int_or(line, "shells", 0);
  r.line.resistance_kohm = line.at("resistance_kohm").as_number();
  r.line.capacitance_ff = line.at("capacitance_ff").as_number();
  r.line.electrostatic_cap_af_per_um =
      line.at("electrostatic_cap_af_per_um").as_number();
  r.line.delay_ps = line.at("delay_ps").as_number();
  r.line.delay_method = line.at("delay_method").as_string();
  if (const JsonValue* noise = v.find("noise")) {
    check_members(*noise, "noise",
                  {"peak_noise_v", "peak_time_s", "worst_victim",
                   "aggressor_delay_s", "unknowns"});
    r.noise.emplace();
    r.noise->peak_noise_v = noise->at("peak_noise_v").as_number();
    r.noise->peak_time_s = noise->at("peak_time_s").as_number();
    r.noise->worst_victim = int_or(*noise, "worst_victim", -1);
    // null is the wire form of the never-crossed NaN sentinel (json_number
    // emits null for non-finite values).
    const JsonValue& delay = noise->at("aggressor_delay_s");
    r.noise->aggressor_delay_s =
        delay.is_null() ? std::nan("") : delay.as_number();
    r.noise->unknowns = int_or(*noise, "unknowns", 0);
  }
  if (const JsonValue* thermal = v.find("thermal")) {
    check_members(*thermal, "thermal",
                  {"peak_rise_k", "hot_resistance_kohm", "thermal_runaway",
                   "ampacity_ua", "current_density_a_cm2", "cnt_em_immune",
                   "cu_reference_mttf_s"});
    r.thermal.emplace();
    r.thermal->peak_rise_k = thermal->at("peak_rise_k").as_number();
    r.thermal->hot_resistance_kohm =
        thermal->at("hot_resistance_kohm").as_number();
    r.thermal->thermal_runaway = thermal->at("thermal_runaway").as_bool();
    r.thermal->ampacity_ua = thermal->at("ampacity_ua").as_number();
    r.thermal->current_density_a_cm2 =
        thermal->at("current_density_a_cm2").as_number();
    r.thermal->cnt_em_immune = thermal->at("cnt_em_immune").as_bool();
    r.thermal->cu_reference_mttf_s =
        thermal->at("cu_reference_mttf_s").as_number();
  }
  return r;
}

std::map<std::string, scenario::CacheStats> cache_stats_from_json(
    const JsonValue& stages) {
  std::map<std::string, scenario::CacheStats> out;
  for (const auto& [stage, counts] : stages.as_object()) {
    check_members(counts, "cache stage stats",
                  {"hits", "disk_hits", "misses"});
    scenario::CacheStats s;
    s.hits = static_cast<std::uint64_t>(int_or(counts, "hits", 0));
    s.disk_hits = static_cast<std::uint64_t>(int_or(counts, "disk_hits", 0));
    s.misses = static_cast<std::uint64_t>(int_or(counts, "misses", 0));
    out.emplace(stage, s);
  }
  return out;
}

namespace {

std::uint64_t as_u64(const JsonValue& v, const char* where) {
  const double d = v.as_number();
  if (d < 0 || d != std::floor(d)) {
    throw ProtocolError(std::string(where) +
                        ": expected a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

}  // namespace

obs::MetricsSnapshot metrics_snapshot_from_json(const JsonValue& v) {
  check_members(v, "metrics", {"counters", "gauges", "histograms"});
  obs::MetricsSnapshot snap;
  for (const auto& [name, value] : v.at("counters").as_object()) {
    snap.counters[name] = as_u64(value, "metrics counter");
  }
  for (const auto& [name, value] : v.at("gauges").as_object()) {
    snap.gauges[name] = value.as_number();
  }
  for (const auto& [name, value] : v.at("histograms").as_object()) {
    check_members(value, "metrics histogram", {"count", "sum_ns", "buckets"});
    obs::HistogramSnapshot h;
    h.count = as_u64(value.at("count"), "metrics histogram count");
    h.sum_ns = as_u64(value.at("sum_ns"), "metrics histogram sum_ns");
    for (const JsonValue& pair : value.at("buckets").as_array()) {
      const auto& kv = pair.as_array();
      if (kv.size() != 2) {
        throw ProtocolError("metrics histogram bucket: expected [index, n]");
      }
      const std::uint64_t index = as_u64(kv[0], "metrics bucket index");
      if (index >= obs::kHistogramBuckets) {
        throw ProtocolError("metrics bucket index out of range");
      }
      h.buckets[index] = as_u64(kv[1], "metrics bucket count");
    }
    snap.histograms[name] = h;
  }
  return snap;
}

}  // namespace cnti::service
