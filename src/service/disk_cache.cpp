#include "service/disk_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/atomic_file.hpp"
#include "obs/obs.hpp"

namespace cnti::service {

namespace fs = std::filesystem;

namespace {

// Entry layout (little-endian):
//   magic[8] | u32 stage_len | stage | u32 schema_len | schema |
//   u64 key.hi | u64 key.lo | u64 payload_len | payload | u64 checksum
// The checksum is FNV-1a-64 over every preceding byte and sits at the
// *end* so any truncation moves or destroys it.
constexpr char kMagic[8] = {'C', 'N', 'T', 'I', 'C', 'A', 'C', '2'};

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Bounds-checked little-endian cursor; any overrun latches failure.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  bool take(std::size_t n, std::string_view* out) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    if (out != nullptr) *out = bytes_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool u32(std::uint32_t* out) {
    std::string_view raw;
    if (!take(4, &raw)) return false;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(raw[static_cast<size_t>(i)]);
    }
    *out = v;
    return true;
  }

  bool u64(std::uint64_t* out) {
    std::string_view raw;
    if (!take(8, &raw)) return false;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(raw[static_cast<size_t>(i)]);
    }
    *out = v;
    return true;
  }

  bool done() const { return ok_ && pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::string encode_entry(std::string_view stage, std::string_view schema,
                         const scenario::ContentKey& key,
                         std::string_view payload) {
  std::string out;
  out.reserve(sizeof(kMagic) + stage.size() + schema.size() + payload.size() +
              40);
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, static_cast<std::uint32_t>(stage.size()));
  out.append(stage);
  put_u32(out, static_cast<std::uint32_t>(schema.size()));
  out.append(schema);
  put_u64(out, key.hi);
  put_u64(out, key.lo);
  put_u64(out, payload.size());
  out.append(payload);
  put_u64(out, fnv1a64(out));
  return out;
}

/// Validates a raw entry file against the expected identity; returns the
/// payload, or nullopt on *any* mismatch (corrupt, truncated, different
/// schema version, foreign key).
std::optional<std::string> decode_entry(std::string_view raw,
                                        std::string_view stage,
                                        std::string_view schema,
                                        const scenario::ContentKey& key) {
  if (raw.size() < 8) return std::nullopt;
  const std::string_view body = raw.substr(0, raw.size() - 8);
  Cursor trailer(raw.substr(raw.size() - 8));
  std::uint64_t checksum = 0;
  trailer.u64(&checksum);
  if (checksum != fnv1a64(body)) return std::nullopt;

  Cursor c(body);
  std::string_view magic;
  if (!c.take(sizeof(kMagic), &magic) ||
      magic != std::string_view(kMagic, sizeof(kMagic))) {
    return std::nullopt;
  }
  std::uint32_t len = 0;
  std::string_view got_stage;
  if (!c.u32(&len) || !c.take(len, &got_stage) || got_stage != stage) {
    return std::nullopt;
  }
  std::string_view got_schema;
  if (!c.u32(&len) || !c.take(len, &got_schema) || got_schema != schema) {
    return std::nullopt;
  }
  std::uint64_t hi = 0, lo = 0;
  if (!c.u64(&hi) || !c.u64(&lo) || hi != key.hi || lo != key.lo) {
    return std::nullopt;
  }
  std::uint64_t payload_len = 0;
  std::string_view payload;
  if (!c.u64(&payload_len) || !c.take(payload_len, &payload) || !c.done()) {
    return std::nullopt;
  }
  return std::string(payload);
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;
  return bytes;
}

/// Stage names become filename prefixes; anything outside [A-Za-z0-9._-]
/// is replaced so a hostile stage string cannot traverse directories.
std::string sanitize(std::string_view stage) {
  std::string out(stage);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return out;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

/// Disk-tier obs handles (`cnti.cache.disk.*`); process-wide, shared by
/// every DiskCache instance (gauges are last-write-wins).
struct DiskObs {
  obs::Counter hits = obs::counter("cnti.cache.disk.hits");
  obs::Counter misses = obs::counter("cnti.cache.disk.misses");
  obs::Counter stores = obs::counter("cnti.cache.disk.stores");
  obs::Counter store_failures = obs::counter("cnti.cache.disk.store_failures");
  obs::Counter corrupt_evictions =
      obs::counter("cnti.cache.disk.corrupt_evictions");
  obs::Counter lru_evictions = obs::counter("cnti.cache.disk.lru_evictions");
  obs::Counter evicted_bytes = obs::counter("cnti.cache.disk.evicted_bytes");
  obs::Gauge bytes = obs::gauge("cnti.cache.disk.bytes");
  obs::Gauge entries = obs::gauge("cnti.cache.disk.entries");
  obs::Histogram load_hist = obs::histogram("cnti.cache.disk.load_ns");
  obs::Histogram store_hist = obs::histogram("cnti.cache.disk.store_ns");
};

const DiskObs& disk_obs() {
  static const DiskObs handles;
  return handles;
}

}  // namespace

DiskCache::DiskCache(DiskCacheOptions options) : options_(std::move(options)) {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    throw std::runtime_error("disk cache: cannot create directory " +
                             options_.dir + ": " + ec.message());
  }
  // Index survivors in mtime order so their relative recency carries over;
  // sweep temp files a crashed writer left behind (their renames never
  // happened, so they are garbage by construction).
  struct Found {
    std::string path;
    std::uint64_t size;
    fs::file_time_type mtime;
  };
  std::vector<Found> found;
  for (const auto& de : fs::directory_iterator(options_.dir, ec)) {
    if (!de.is_regular_file(ec)) continue;
    const std::string name = de.path().filename().string();
    if (name.find(kAtomicTempMarker) != std::string::npos) {
      fs::remove(de.path(), ec);
      continue;
    }
    if (name.size() < 6 || name.substr(name.size() - 6) != ".cache") continue;
    found.push_back({de.path().string(),
                     static_cast<std::uint64_t>(de.file_size(ec)),
                     de.last_write_time(ec)});
  }
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.mtime < b.mtime; });
  for (const Found& f : found) {
    index_[f.path] = Entry{f.size, ++use_counter_};
    total_bytes_ += f.size;
  }
  stats_.entries = index_.size();
  stats_.bytes = total_bytes_;
  disk_obs().entries.set(static_cast<double>(stats_.entries));
  disk_obs().bytes.set(static_cast<double>(stats_.bytes));
}

std::string DiskCache::entry_path(std::string_view stage,
                                  const scenario::ContentKey& key) const {
  return options_.dir + "/" + sanitize(stage) + "." + hex16(key.hi) +
         hex16(key.lo) + ".cache";
}

void DiskCache::drop_entry(const std::string& path) {
  const auto it = index_.find(path);
  if (it != index_.end()) {
    disk_obs().evicted_bytes.add(it->second.size);
    total_bytes_ -= std::min(total_bytes_, it->second.size);
    index_.erase(it);
  }
  std::error_code ec;
  fs::remove(path, ec);
  stats_.entries = index_.size();
  stats_.bytes = total_bytes_;
  disk_obs().entries.set(static_cast<double>(stats_.entries));
  disk_obs().bytes.set(static_cast<double>(stats_.bytes));
}

void DiskCache::enforce_budget(const std::string& keep) {
  while (total_bytes_ > options_.max_bytes && index_.size() > 1) {
    auto victim = index_.end();
    for (auto it = index_.begin(); it != index_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == index_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == index_.end()) break;
    const std::string path = victim->first;
    drop_entry(path);
    ++stats_.lru_evictions;
    disk_obs().lru_evictions.add();
  }
}

std::optional<std::string> DiskCache::load(std::string_view stage,
                                           std::string_view value_schema,
                                           const scenario::ContentKey& key) {
  const obs::ObsSpan load_span("disk.load", "cache", disk_obs().load_hist);
  const std::string path = entry_path(stage, key);
  std::optional<std::string> raw;
  try {
    raw = read_file(path);
  } catch (...) {
    raw = std::nullopt;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  DiskStageStats& slice = stage_stats_[std::string(stage)];
  if (!raw) {
    ++stats_.misses;
    ++slice.misses;
    disk_obs().misses.add();
    return std::nullopt;
  }
  std::optional<std::string> payload =
      decode_entry(*raw, stage, value_schema, key);
  if (!payload) {
    // Corrupt, truncated, or written under a different schema version:
    // delete it so the slot heals, and recompute.
    drop_entry(path);
    ++stats_.corrupt_evictions;
    ++stats_.misses;
    ++slice.corrupt_evictions;
    ++slice.misses;
    disk_obs().corrupt_evictions.add();
    disk_obs().misses.add();
    return std::nullopt;
  }
  auto it = index_.find(path);
  if (it == index_.end()) {
    // Readable entry the startup scan never saw (e.g. shared directory);
    // adopt it.
    it = index_.emplace(path, Entry{raw->size(), 0}).first;
    total_bytes_ += raw->size();
    stats_.entries = index_.size();
    stats_.bytes = total_bytes_;
  }
  it->second.last_use = ++use_counter_;
  ++stats_.hits;
  ++slice.hits;
  disk_obs().hits.add();
  return payload;
}

void DiskCache::store(std::string_view stage, std::string_view value_schema,
                      const scenario::ContentKey& key,
                      std::string_view bytes) {
  const obs::ObsSpan store_span("disk.store", "cache", disk_obs().store_hist);
  const std::string path = entry_path(stage, key);
  const std::string entry = encode_entry(stage, value_schema, key, bytes);
  try {
    write_file_atomic(path, entry);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.store_failures;
    ++stage_stats_[std::string(stage)].store_failures;
    disk_obs().store_failures.add();
    return;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(path);
  if (it != index_.end()) {
    total_bytes_ -= std::min(total_bytes_, it->second.size);
    it->second.size = entry.size();
  } else {
    it = index_.emplace(path, Entry{entry.size(), 0}).first;
  }
  total_bytes_ += entry.size();
  it->second.last_use = ++use_counter_;
  ++stats_.stores;
  ++stage_stats_[std::string(stage)].stores;
  disk_obs().stores.add();
  enforce_budget(path);
  stats_.entries = index_.size();
  stats_.bytes = total_bytes_;
  disk_obs().entries.set(static_cast<double>(stats_.entries));
  disk_obs().bytes.set(static_cast<double>(stats_.bytes));
}

DiskCacheStats DiskCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::map<std::string, DiskStageStats> DiskCache::stats_by_stage() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {stage_stats_.begin(), stage_stats_.end()};
}

}  // namespace cnti::service
