// Persistent second-level cache tier: content-addressed files under one
// directory, keyed by the engine's (stage, ContentKey) pairs with the
// value-codec schema stored alongside. Survives daemon restarts — the warm
// path of the scenario service — while staying crash-safe and self-healing:
//
//   - writes publish atomically (temp sibling + fsync + rename), so a crash
//     mid-store leaves either the old entry or none, never a torn file;
//   - every read re-validates magic, stage/schema/key echo, payload length
//     and a trailing FNV-1a-64 checksum (trailing, so truncation always
//     breaks it); anything invalid is deleted and reported as a miss, which
//     makes corruption cost a recompute, never a wrong answer;
//   - total payload bytes are LRU-bounded: storing past max_bytes evicts
//     least-recently-used entries (never the one just stored).
//
// store() never throws — a failing disk degrades the service to
// memory-only caching rather than failing scenario computations.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "scenario/memo_cache.hpp"

namespace cnti::service {

struct DiskCacheOptions {
  std::string dir;  ///< Cache directory (created if absent).
  /// Bound on the total size of entry files; least-recently-used entries
  /// are evicted when a store pushes past it.
  std::uint64_t max_bytes = 256ull * 1024 * 1024;
};

struct DiskCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_failures = 0;
  /// Entries deleted because validation failed (corrupt/truncated/stale
  /// schema/key collision across schema versions).
  std::uint64_t corrupt_evictions = 0;
  std::uint64_t lru_evictions = 0;
  std::uint64_t bytes = 0;    ///< Current total size of entry files.
  std::uint64_t entries = 0;  ///< Current entry count.
};

/// Per-stage slice of the disk-tier counters, so a warm-restart gap (one
/// stage missing on disk while its siblings hit) is attributable from the
/// service `stats` verb. LRU evictions and the current bytes/entries sizes
/// stay aggregate-only: eviction picks victims by recency across stages.
struct DiskStageStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_failures = 0;
  std::uint64_t corrupt_evictions = 0;
};

class DiskCache final : public scenario::CacheTier {
 public:
  /// Creates the directory if needed, removes stray atomic-write temp
  /// files from a crashed predecessor, and indexes the surviving entries
  /// (seeded in last-modified order so LRU eviction stays sensible across
  /// restarts). Entry contents are validated lazily, on load.
  explicit DiskCache(DiskCacheOptions options);

  std::optional<std::string> load(std::string_view stage,
                                  std::string_view value_schema,
                                  const scenario::ContentKey& key) override;

  void store(std::string_view stage, std::string_view value_schema,
             const scenario::ContentKey& key,
             std::string_view bytes) override;

  DiskCacheStats stats() const;
  /// Per-stage counter slices; stage keys are the engine's stage names.
  std::map<std::string, DiskStageStats> stats_by_stage() const;
  const std::string& dir() const { return options_.dir; }

 private:
  struct Entry {
    std::uint64_t size = 0;
    std::uint64_t last_use = 0;
  };

  std::string entry_path(std::string_view stage,
                         const scenario::ContentKey& key) const;
  /// Deletes an entry file and drops it from the index. Callers hold mu_.
  void drop_entry(const std::string& path);
  /// Evicts LRU entries until total <= max_bytes, sparing `keep`.
  /// Callers hold mu_.
  void enforce_budget(const std::string& keep);

  DiskCacheOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> index_;  // path -> size/recency
  std::uint64_t total_bytes_ = 0;
  std::uint64_t use_counter_ = 0;
  DiskCacheStats stats_;
  std::map<std::string, DiskStageStats, std::less<>> stage_stats_;
};

}  // namespace cnti::service
