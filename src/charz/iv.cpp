#include "charz/iv.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace cnti::charz {

namespace {

/// Conducting channels of the whole MWCNT (expected value over shells).
double total_channels(const CntDeviceSpec& spec,
                      const atomistic::ChargeTransferDoping* doping) {
  const double per_shell =
      doping ? doping->channels_per_shell_simple()
             // Pristine statistical average: 1/3 of shells metallic with
             // 2 channels each.
             : cntconst::kChannelsPerMetallicShell / 3.0;
  return per_shell * spec.walls;
}

}  // namespace

double device_resistance_kohm(const CntDeviceSpec& spec,
                              const atomistic::ChargeTransferDoping* doping) {
  CNTI_EXPECTS(spec.walls >= 1, "device needs at least one wall");
  CNTI_EXPECTS(spec.length_um > 0, "length must be positive");
  const double channels = total_channels(spec, doping);
  const double d_m = units::from_nm(spec.diameter_nm);
  const double l_ac = cntconst::kMfpOverDiameter * d_m;
  const double l_def = units::from_um(spec.defect_spacing_um);
  const double mfp = 1.0 / (1.0 / l_ac + 1.0 / l_def);
  const double r_tube = phys::kResistanceQuantum / channels *
                        (1.0 + units::from_um(spec.length_um) / mfp);
  double r_contact = spec.contact_resistance_kohm;
  if (doping) {
    r_contact /= 1.0 + spec.contact_doping_sensitivity_per_ev *
                           std::abs(doping->stable_fermi_shift_ev());
  }
  return units::to_kOhm(r_tube) + r_contact;
}

std::vector<IvPoint> sweep_iv(const CntDeviceSpec& spec,
                              const atomistic::ChargeTransferDoping* doping,
                              double v_max, int points) {
  CNTI_EXPECTS(points >= 2, "need at least two sweep points");
  CNTI_EXPECTS(v_max > 0, "sweep range must be positive");
  const double r_kohm = device_resistance_kohm(spec, doping);
  const double i_sat_ua = spec.saturation_current_per_channel_ua *
                          total_channels(spec, doping);

  std::vector<IvPoint> out;
  out.reserve(static_cast<std::size_t>(points));
  bool destroyed = false;
  for (int i = 0; i < points; ++i) {
    IvPoint p;
    p.voltage_v = -v_max + 2.0 * v_max * i / (points - 1);
    if (destroyed || std::abs(p.voltage_v) > spec.breakdown_v) {
      destroyed = destroyed || p.voltage_v > spec.breakdown_v;
      p.current_ua = 0.0;
    } else {
      const double i_lin_ua = p.voltage_v / r_kohm * 1e3;  // kOhm -> uA
      p.current_ua =
          i_lin_ua / (1.0 + std::abs(i_lin_ua) / i_sat_ua);
    }
    out.push_back(p);
  }
  return out;
}

double doping_resistance_ratio(const CntDeviceSpec& spec,
                               const atomistic::ChargeTransferDoping& doping) {
  return device_resistance_kohm(spec, &doping) /
         device_resistance_kohm(spec, nullptr);
}

}  // namespace cnti::charz
