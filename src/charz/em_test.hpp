// Electromigration stress testing on the virtual test layout (paper
// Sec. IV.A / Fig. 13): populations of Cu, Cu-CNT composite and pure-CNT
// lines stressed at accelerated conditions; TTF statistics are collected
// and extrapolated to use conditions.
#pragma once

#include <vector>

#include "materials/composite.hpp"
#include "numerics/rng.hpp"
#include "numerics/stats.hpp"
#include "thermal/em.hpp"

namespace cnti::charz {

enum class LineTechnology { kCu, kCuCntComposite, kPureCnt };

struct EmStressConditions {
  double current_density_a_m2 = 2.5e10;  ///< Accelerated stress.
  double temperature_k = 573.0;          ///< 300 C oven.
  int population = 200;
  unsigned seed = 42;
};

struct EmStressResult {
  /// TTF summary [hours]. Pure-CNT lines below their breakdown density do
  /// not fail; `immortal` is set instead and the summary left empty.
  numerics::Summary ttf_hours{};
  bool immortal = false;
  /// Median lifetime extrapolated to use conditions (1e10 A/m^2, 378 K)
  /// [years]; infinite for immortal populations (returned as 1e9).
  double use_median_years = 0.0;
};

/// Stresses a population of lines of the given technology. For the
/// composite, the Cu matrix carries a reduced current share (EM relief).
EmStressResult run_em_stress(LineTechnology tech,
                             const EmStressConditions& cond,
                             const materials::CompositeSpec& composite = {});

}  // namespace cnti::charz
