#include "charz/em_test.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace cnti::charz {

EmStressResult run_em_stress(LineTechnology tech,
                             const EmStressConditions& cond,
                             const materials::CompositeSpec& composite) {
  CNTI_EXPECTS(cond.population >= 10, "population too small");
  numerics::Rng rng(cond.seed);
  thermal::BlackParams black;

  EmStressResult out;

  // Effective current density in the EM-susceptible Cu matrix.
  double j_cu = cond.current_density_a_m2;
  if (tech == LineTechnology::kPureCnt) {
    if (thermal::cnt_em_immune(cond.current_density_a_m2)) {
      out.immortal = true;
      out.use_median_years = 1e9;
      return out;
    }
    // Above breakdown: immediate failure.
    out.ttf_hours = numerics::summarize(
        std::vector<double>(static_cast<std::size_t>(cond.population),
                            1e-3));
    out.use_median_years = 0.0;
    return out;
  }
  if (tech == LineTechnology::kCuCntComposite) {
    const double lifetime_factor =
        materials::composite_em_lifetime_factor(composite);
    // Lifetime factor 1/(1-share)^2 with n = 2 corresponds to the Cu
    // matrix current density being reduced by (1 - share).
    j_cu = cond.current_density_a_m2 / std::sqrt(lifetime_factor);
  }

  std::vector<double> ttf;
  ttf.reserve(static_cast<std::size_t>(cond.population));
  for (int i = 0; i < cond.population; ++i) {
    const double t_s =
        thermal::sample_ttf_s(j_cu, cond.temperature_k, rng, black);
    ttf.push_back(t_s / 3600.0);
  }
  out.ttf_hours = numerics::summarize(ttf);

  // Use-condition extrapolation: at the same total use current density the
  // composite's Cu matrix keeps its derated share, so the derating ratio
  // carries over from stress to use.
  const double derate = j_cu / cond.current_density_a_m2;
  const double accel = thermal::em_acceleration_factor(
      j_cu, cond.temperature_k, 1e10 * derate, 378.0, black);
  out.use_median_years =
      out.ttf_hours.median * accel / (24.0 * 365.0);
  return out;
}

}  // namespace cnti::charz
