// IV characterization of CNT devices: low-bias ohmic regime, high-bias
// current saturation (optical-phonon emission) and breakdown. Reproduces
// the paper's Fig. 2d measurement — a side-contacted MWCNT before and
// after PtCl4 doping.
#pragma once

#include <vector>

#include "atomistic/doping.hpp"
#include "common/error.hpp"

namespace cnti::charz {

/// Device under test: a contacted MWCNT segment.
struct CntDeviceSpec {
  double diameter_nm = 7.5;        ///< Paper's CVD MWCNT.
  int walls = 5;
  double length_um = 1.0;
  double contact_resistance_kohm = 25.0;  ///< Both ends combined.
  double defect_spacing_um = 0.5;  ///< Low-temperature CVD quality.
  /// Saturation current per conducting channel [uA].
  double saturation_current_per_channel_ua = 12.5;
  /// Breakdown voltage across the tube (shell burn-out) [V].
  double breakdown_v = 15.0;
  /// Contact-barrier thinning by charge-transfer doping [1/eV]:
  /// R_c,doped = R_c / (1 + s |dE_F|). The paper motivates doping as a
  /// counter-measure to "resistive metal-CNT contacts" (Sec. III.C); set
  /// to 0 for doping-insensitive contacts.
  double contact_doping_sensitivity_per_ev = 3.0;
};

struct IvPoint {
  double voltage_v = 0.0;
  double current_ua = 0.0;
};

/// Low-bias resistance of the device [kOhm]; `doping` may be nullptr for
/// the pristine device.
double device_resistance_kohm(const CntDeviceSpec& spec,
                              const atomistic::ChargeTransferDoping* doping);

/// IV sweep with saturation: I = V / R * 1 / (1 + |V| / (R I_sat)), which
/// is ohmic at low bias and saturates at I_sat; points past breakdown
/// report zero current (device destroyed).
std::vector<IvPoint> sweep_iv(const CntDeviceSpec& spec,
                              const atomistic::ChargeTransferDoping* doping,
                              double v_max, int points);

/// The Fig. 2d headline number: resistance ratio after/before doping.
double doping_resistance_ratio(const CntDeviceSpec& spec,
                               const atomistic::ChargeTransferDoping& doping);

}  // namespace cnti::charz
