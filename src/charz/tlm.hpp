// Transmission-line-measurement (TLM) extraction (paper Sec. IV.B, ref
// [23]): contact MWCNTs of several lengths, measure total resistance,
// regress R(L) = 2 R_c + r L to split contact resistance from the CNT
// resistance per unit length.
#pragma once

#include <vector>

#include "numerics/leastsq.hpp"
#include "numerics/rng.hpp"

namespace cnti::charz {

/// One TLM structure: a tube segment of known length with two contacts.
struct TlmSample {
  double length_um = 1.0;
  double resistance_kohm = 0.0;
};

/// Ground truth used to synthesize virtual measurements.
struct TlmGroundTruth {
  double contact_resistance_kohm = 20.0;  ///< Per contact.
  double resistance_per_um_kohm = 6.0;
  double measurement_noise_fraction = 0.02;  ///< Relative rms noise.
};

/// Generates a virtual TLM data set at the given segment lengths.
std::vector<TlmSample> generate_tlm_data(const TlmGroundTruth& truth,
                                         const std::vector<double>& lengths_um,
                                         numerics::Rng& rng);

/// Extraction result with standard errors from the fit.
struct TlmExtraction {
  double contact_resistance_kohm = 0.0;  ///< Per contact (intercept / 2).
  double contact_stderr_kohm = 0.0;
  double resistance_per_um_kohm = 0.0;
  double slope_stderr_kohm = 0.0;
  double r_squared = 0.0;
};

/// Least-squares TLM extraction; requires >= 3 distinct lengths.
TlmExtraction extract_tlm(const std::vector<TlmSample>& samples);

}  // namespace cnti::charz
