// Virtual test chip mirroring the paper's Fig. 13 electrical/EM test
// layout: single-line structures of varying width/length/angle, multi-line
// combs (leakage/extrusion monitors) and via chains — measured with a
// virtual parametric tester across a 300 mm wafer.
#pragma once

#include <string>
#include <vector>

#include "materials/copper.hpp"
#include "numerics/rng.hpp"
#include "numerics/stats.hpp"
#include "process/wafer.hpp"

namespace cnti::charz {

enum class StructureKind {
  kSingleLine,   ///< Width/length/angle variants.
  kCombFingers,  ///< Leakage / extrusion monitor.
  kViaChain,     ///< N vias in series.
};

struct TestStructure {
  StructureKind kind = StructureKind::kSingleLine;
  std::string name;
  double width_nm = 50.0;   ///< E-beam structures go down to 50 nm.
  double length_um = 100.0;
  double angle_deg = 0.0;   ///< Line angle (process-sensitivity monitor).
  int via_count = 0;        ///< Via chains.
};

/// The Fig. 13a layout: a standard population of structures.
std::vector<TestStructure> standard_test_layout();

/// One parametric measurement of a structure on a die.
struct Measurement {
  std::string structure;
  double value = 0.0;   ///< Ohms for lines/chains, pA for combs.
  std::string unit;
  bool pass = true;
};

/// Tester noise and pass limits.
struct TesterSpec {
  double resistance_noise_fraction = 0.01;
  double comb_leakage_limit_pa = 100.0;
  double line_open_limit_factor = 3.0;  ///< Fail if R > 3x nominal.
  unsigned seed = 7;
};

/// Measures the full layout on a Cu reference die (paper: first 300 mm
/// wafer was patterned with the Cu reference) whose local linewidth bias
/// comes from the die's growth/process variation.
std::vector<Measurement> measure_die(const std::vector<TestStructure>& layout,
                                     double linewidth_bias_nm,
                                     const TesterSpec& tester,
                                     numerics::Rng& rng);

/// Full-wafer characterization: per-structure summary + die yield.
struct WaferCharacterization {
  std::vector<std::string> structure_names;
  std::vector<numerics::Summary> value_summary;
  double die_yield = 1.0;
};

WaferCharacterization characterize_wafer(
    const process::WaferMap& wafer,
    const std::vector<TestStructure>& layout, const TesterSpec& tester);

}  // namespace cnti::charz
