#include "charz/testchip.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cnti::charz {

std::vector<TestStructure> standard_test_layout() {
  std::vector<TestStructure> layout;
  // Single lines: width series (E-beam down to 50 nm), length series and
  // two angles.
  for (double w : {50.0, 100.0, 200.0, 500.0}) {
    for (double l : {10.0, 100.0, 1000.0}) {
      TestStructure s;
      s.kind = StructureKind::kSingleLine;
      s.width_nm = w;
      s.length_um = l;
      s.name = "line_w" + std::to_string(static_cast<int>(w)) + "_l" +
               std::to_string(static_cast<int>(l));
      layout.push_back(s);
    }
  }
  for (double a : {45.0}) {
    TestStructure s;
    s.kind = StructureKind::kSingleLine;
    s.width_nm = 100.0;
    s.length_um = 100.0;
    s.angle_deg = a;
    s.name = "line_angle45";
    layout.push_back(s);
  }
  // Comb structures (extrusion monitors).
  for (double w : {50.0, 100.0}) {
    TestStructure s;
    s.kind = StructureKind::kCombFingers;
    s.width_nm = w;
    s.length_um = 500.0;
    s.name = "comb_w" + std::to_string(static_cast<int>(w));
    layout.push_back(s);
  }
  // Via chains.
  for (int n : {100, 1000}) {
    TestStructure s;
    s.kind = StructureKind::kViaChain;
    s.via_count = n;
    s.width_nm = 60.0;
    s.name = "viachain_" + std::to_string(n);
    layout.push_back(s);
  }
  return layout;
}

namespace {

double nominal_value(const TestStructure& s, double linewidth_bias_nm) {
  switch (s.kind) {
    case StructureKind::kSingleLine: {
      materials::CuLineSpec cu;
      cu.width_m = units::from_nm(
          std::max(10.0, s.width_nm + linewidth_bias_nm));
      cu.height_m = 2.0 * cu.width_m;
      // Angled lines print slightly narrower (lithography bias).
      if (s.angle_deg != 0.0) cu.width_m *= 0.95;
      const materials::CuLine line(cu);
      return line.resistance(units::from_um(s.length_um));
    }
    case StructureKind::kCombFingers:
      // Leakage between fingers [pA]: grows when lines print wide.
      return 5.0 * std::exp(linewidth_bias_nm / 10.0);
    case StructureKind::kViaChain: {
      // Per-via resistance grows as the via prints small.
      const double r_via =
          8.0 * std::exp(-linewidth_bias_nm / 30.0);
      return r_via * s.via_count;
    }
  }
  return 0.0;
}

}  // namespace

std::vector<Measurement> measure_die(const std::vector<TestStructure>& layout,
                                     double linewidth_bias_nm,
                                     const TesterSpec& tester,
                                     numerics::Rng& rng) {
  CNTI_EXPECTS(!layout.empty(), "empty layout");
  std::vector<Measurement> out;
  out.reserve(layout.size());
  for (const auto& s : layout) {
    const double nominal = nominal_value(s, 0.0);
    const double local = nominal_value(s, linewidth_bias_nm);
    Measurement m;
    m.structure = s.name;
    m.value = local * (1.0 + rng.normal(0.0,
                                        tester.resistance_noise_fraction));
    switch (s.kind) {
      case StructureKind::kSingleLine:
      case StructureKind::kViaChain:
        m.unit = "Ohm";
        m.pass = m.value < tester.line_open_limit_factor * nominal;
        break;
      case StructureKind::kCombFingers:
        m.unit = "pA";
        m.pass = m.value < tester.comb_leakage_limit_pa;
        break;
    }
    out.push_back(std::move(m));
  }
  return out;
}

WaferCharacterization characterize_wafer(
    const process::WaferMap& wafer,
    const std::vector<TestStructure>& layout, const TesterSpec& tester) {
  CNTI_EXPECTS(!layout.empty(), "empty layout");
  numerics::Rng rng(tester.seed);

  std::vector<std::vector<double>> values(layout.size());
  int good_dies = 0;
  for (const auto& die : wafer.dies()) {
    // Linewidth bias tracks the local process window: hotter dies etch
    // slightly wider (simple monotone map from the die temperature).
    const double bias_nm =
        (die.recipe.temperature_c - 450.0) * 0.1;
    const auto meas = measure_die(layout, bias_nm, tester, rng);
    bool die_pass = true;
    for (std::size_t i = 0; i < meas.size(); ++i) {
      values[i].push_back(meas[i].value);
      die_pass = die_pass && meas[i].pass;
    }
    if (die_pass) ++good_dies;
  }

  WaferCharacterization out;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    out.structure_names.push_back(layout[i].name);
    out.value_summary.push_back(numerics::summarize(values[i]));
  }
  out.die_yield = static_cast<double>(good_dies) /
                  static_cast<double>(wafer.dies().size());
  return out;
}

}  // namespace cnti::charz
