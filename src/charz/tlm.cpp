#include "charz/tlm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cnti::charz {

std::vector<TlmSample> generate_tlm_data(const TlmGroundTruth& truth,
                                         const std::vector<double>& lengths_um,
                                         numerics::Rng& rng) {
  CNTI_EXPECTS(!lengths_um.empty(), "need at least one length");
  std::vector<TlmSample> out;
  out.reserve(lengths_um.size());
  for (double l : lengths_um) {
    CNTI_EXPECTS(l > 0, "length must be positive");
    const double ideal = 2.0 * truth.contact_resistance_kohm +
                         truth.resistance_per_um_kohm * l;
    const double noisy =
        ideal * (1.0 + rng.normal(0.0, truth.measurement_noise_fraction));
    out.push_back({l, noisy});
  }
  return out;
}

TlmExtraction extract_tlm(const std::vector<TlmSample>& samples) {
  CNTI_EXPECTS(samples.size() >= 3, "TLM needs >= 3 structures");
  std::vector<double> x, y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const auto& s : samples) {
    x.push_back(s.length_um);
    y.push_back(s.resistance_kohm);
  }
  const auto fit = numerics::fit_line(x, y);
  CNTI_EXPECTS(fit.slope > 0, "TLM fit produced non-physical slope");

  TlmExtraction out;
  out.contact_resistance_kohm = fit.intercept / 2.0;
  out.contact_stderr_kohm = fit.intercept_stderr / 2.0;
  out.resistance_per_um_kohm = fit.slope;
  out.slope_stderr_kohm = fit.slope_stderr;
  out.r_squared = fit.r_squared;
  return out;
}

}  // namespace cnti::charz
