// Raman-spectroscopy quality metric for grown CNT layers (paper Sec. II.B:
// "the resulting CNT layers were characterized by SEM and Raman
// spectroscopy"). The D/G intensity ratio tracks the defect density; the
// radial-breathing-mode (RBM) frequency tracks the tube diameter
// (w_RBM ~ 248/d cm^-1 for isolated SWCNTs, softened for MWCNT walls).
#pragma once

#include "common/error.hpp"
#include "process/cvd.hpp"

namespace cnti::charz {

struct RamanSignature {
  double d_over_g = 0.1;       ///< Defect band / graphitic band ratio.
  double rbm_cm1 = 30.0;       ///< Radial breathing mode [1/cm].
  double g_width_cm1 = 15.0;   ///< G-band FWHM (disorder broadening).
};

/// Predicted Raman signature for a grown layer.
RamanSignature predict_raman(const process::GrowthQuality& quality);

/// Inverse metrology: estimates the defect spacing from a measured D/G
/// ratio (Tuinstra-Koenig-like inverse proportionality) [um].
double defect_spacing_from_raman(double d_over_g);

}  // namespace cnti::charz
