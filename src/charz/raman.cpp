#include "charz/raman.hpp"

#include <algorithm>
#include <cmath>

namespace cnti::charz {

namespace {
/// D/G = C / L_defect with C ~ 0.08 um (graphitic systems, 532 nm).
constexpr double kTuinstraKoenigUm = 0.08;
}  // namespace

RamanSignature predict_raman(const process::GrowthQuality& quality) {
  CNTI_EXPECTS(quality.defect_spacing_um > 0,
               "defect spacing must be positive");
  RamanSignature out;
  out.d_over_g = kTuinstraKoenigUm / quality.defect_spacing_um;
  // Outer-wall RBM; MWCNT modes are weak, so report the innermost-shell
  // estimate (d_min ~ d/2) which dominates the signal.
  const double d_inner_nm = std::max(0.8, quality.mean_diameter_nm / 2.0);
  out.rbm_cm1 = 248.0 / d_inner_nm;
  // Disorder broadens G: base 12 1/cm plus a defect term.
  out.g_width_cm1 = 12.0 + 25.0 * out.d_over_g;
  return out;
}

double defect_spacing_from_raman(double d_over_g) {
  CNTI_EXPECTS(d_over_g > 0, "D/G ratio must be positive");
  return kTuinstraKoenigUm / d_over_g;
}

}  // namespace cnti::charz
