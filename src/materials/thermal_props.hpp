// Thermal material properties shared by the thermal solver and TCAD
// structures.
#pragma once

#include <string>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace cnti::materials {

/// Bulk thermal conductivities [W/(m K)] used across the thermal studies.
struct ThermalProps {
  double conductivity_w_mk = 1.0;
  std::string name = "unknown";
};

inline ThermalProps thermal_copper() {
  return {cuconst::kThermalConductivity, "Cu"};
}

/// CNT bundle axial thermal conductivity; quality in [0,1] interpolates the
/// paper's measured 3000-10000 W/mK range.
inline ThermalProps thermal_cnt_bundle(double quality = 0.0) {
  CNTI_EXPECTS(quality >= 0.0 && quality <= 1.0, "quality in [0, 1]");
  const double k = cntconst::kCntThermalConductivityLow +
                   quality * (cntconst::kCntThermalConductivityHigh -
                              cntconst::kCntThermalConductivityLow);
  return {k, "CNT bundle"};
}

inline ThermalProps thermal_sio2() { return {1.4, "SiO2"}; }
inline ThermalProps thermal_lowk() { return {0.3, "low-k"}; }
inline ThermalProps thermal_silicon() { return {148.0, "Si"}; }

}  // namespace cnti::materials
