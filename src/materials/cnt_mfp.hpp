// Mean-free-path model for CNT shells: acoustic-phonon limited MFP
// (lambda ~ 1000 d at 300 K, Naeemi & Meindl), optical-phonon emission at
// high bias, and defect scattering from imperfect (low-temperature CVD)
// growth, combined by Matthiessen's rule. The defect term is what couples
// the process/growth module to the electrical models.
#pragma once

#include "common/constants.hpp"
#include "common/error.hpp"

namespace cnti::materials {

/// Scattering environment of a CNT shell.
struct MfpSpec {
  double diameter_m = 7.5e-9;        ///< Shell diameter.
  double temperature_k = phys::kRoomTemperature;
  /// Mean distance between lattice defects along the tube; <= 0 means
  /// defect-free (arc-discharge quality). CVD tubes: 0.1-1 um typical.
  double defect_spacing_m = -1.0;
  /// Bias voltage across the tube (activates optical-phonon emission).
  double bias_v = 0.0;
};

/// Acoustic-phonon-limited MFP [m]: lambda_ap = k d (300 K / T).
double acoustic_mfp(double diameter_m, double temperature_k);

/// Optical-phonon emission MFP at bias V [m] (high-field saturation);
/// returns +inf (1e30) below the ~0.16 eV phonon threshold.
double optical_mfp(double diameter_m, double bias_v, double length_m);

/// Effective MFP by Matthiessen's rule over acoustic, optical and defect
/// contributions [m].
double effective_mfp(const MfpSpec& spec, double length_m = 1e-6);

}  // namespace cnti::materials
