#include "materials/composite.hpp"

#include <cmath>

namespace cnti::materials {

namespace {

void validate(const CompositeSpec& s) {
  CNTI_EXPECTS(s.cnt_volume_fraction >= 0 && s.cnt_volume_fraction <= 1,
               "CNT volume fraction in [0, 1]");
  CNTI_EXPECTS(s.alignment >= 0 && s.alignment <= 1, "alignment in [0, 1]");
  CNTI_EXPECTS(s.metallic_fraction >= 0 && s.metallic_fraction <= 1,
               "metallic fraction in [0, 1]");
  CNTI_EXPECTS(s.void_fraction >= 0 && s.void_fraction < 1,
               "void fraction in [0, 1)");
  CNTI_EXPECTS(s.cu_matrix_resistivity > 0, "matrix resistivity positive");
}

/// Conductivity-weighted share of the total current carried by the CNTs.
double cnt_current_share(const CompositeSpec& s) {
  const double sigma_cnt_eff = s.cnt_volume_fraction * s.alignment *
                               s.metallic_fraction *
                               s.cnt_axial_conductivity;
  const double cu_fraction =
      std::max(0.0, 1.0 - s.cnt_volume_fraction - s.void_fraction);
  const double sigma_cu_eff = cu_fraction / s.cu_matrix_resistivity;
  const double total = sigma_cnt_eff + sigma_cu_eff;
  return (total > 0) ? sigma_cnt_eff / total : 0.0;
}

}  // namespace

double composite_conductivity(const CompositeSpec& spec) {
  validate(spec);
  const double cu_fraction = std::max(
      0.0, 1.0 - spec.cnt_volume_fraction - spec.void_fraction);
  const double sigma_cu = cu_fraction / spec.cu_matrix_resistivity;
  // Only aligned metallic tubes conduct axially.
  const double sigma_cnt = spec.cnt_volume_fraction * spec.alignment *
                           spec.metallic_fraction *
                           spec.cnt_axial_conductivity;
  return sigma_cu + sigma_cnt;
}

double composite_max_current_density(const CompositeSpec& spec) {
  validate(spec);
  // The Cu matrix is EM-limited at its own current density; the CNT network
  // sustains CNT-class density. At the composite failure point the Cu
  // partial current density reaches its limit:
  //   j_total,max = j_cu,max / (1 - share_cnt), capped by the CNT limit.
  const double share = cnt_current_share(spec);
  const double cu_limited =
      cuconst::kEmCurrentDensityLimit / std::max(1e-12, 1.0 - share);
  return std::min(cu_limited, cntconst::kCntMaxCurrentDensity);
}

double composite_thermal_conductivity(const CompositeSpec& spec) {
  validate(spec);
  const double cu_fraction = std::max(
      0.0, 1.0 - spec.cnt_volume_fraction - spec.void_fraction);
  return cu_fraction * cuconst::kThermalConductivity +
         spec.cnt_volume_fraction * spec.alignment *
             cntconst::kCntThermalConductivityLow;
}

double composite_em_lifetime_factor(const CompositeSpec& spec) {
  validate(spec);
  // Black's-law exponent n = 2: lifetime ~ j_cu^-2. The Cu partial current
  // density drops by (1 - share), so MTTF improves by 1/(1-share)^2.
  const double share = cnt_current_share(spec);
  const double f = 1.0 / std::max(1e-12, (1.0 - share) * (1.0 - share));
  return f;
}

}  // namespace cnti::materials
