#include "materials/copper.hpp"

#include <cmath>

namespace cnti::materials {

double cu_bulk_resistivity(double temperature_k) {
  CNTI_EXPECTS(temperature_k > 0, "temperature must be positive");
  return cuconst::kBulkResistivity *
         (1.0 + cuconst::kTempCoefficient *
                    (temperature_k - phys::kRoomTemperature));
}

double mayadas_shatzkes_factor(double grain_size_m, double reflectivity,
                               double mfp_m) {
  CNTI_EXPECTS(grain_size_m > 0, "grain size must be positive");
  CNTI_EXPECTS(reflectivity >= 0 && reflectivity < 1,
               "grain reflectivity in [0, 1)");
  // Mayadas-Shatzkes: rho0/rho = 3 [1/3 - alpha/2 + alpha^2
  //                               - alpha^3 ln(1 + 1/alpha)]
  // with alpha = (mfp/d) * R / (1 - R).
  const double alpha = (mfp_m / grain_size_m) * reflectivity /
                       (1.0 - reflectivity);
  if (alpha < 1e-12) return 1.0;
  const double inv = 3.0 * (1.0 / 3.0 - alpha / 2.0 + alpha * alpha -
                            alpha * alpha * alpha * std::log(1.0 + 1.0 / alpha));
  CNTI_EXPECTS(inv > 0, "Mayadas-Shatzkes factor out of validity range");
  return 1.0 / inv;
}

double fuchs_sondheimer_factor(double width_m, double height_m,
                               double specularity, double mfp_m) {
  CNTI_EXPECTS(width_m > 0 && height_m > 0, "cross-section must be positive");
  CNTI_EXPECTS(specularity >= 0 && specularity <= 1, "specularity in [0,1]");
  // Additive small-size approximation for a rectangular wire:
  // rho/rho0 = 1 + C (1 - p) lambda (1/w + 1/h), C = 3/8.
  const double c = 3.0 / 8.0;
  return 1.0 + c * (1.0 - specularity) * mfp_m *
                   (1.0 / width_m + 1.0 / height_m);
}

double cu_effective_resistivity(const CuLineSpec& spec) {
  const double grain =
      spec.grain_size_m > 0 ? spec.grain_size_m : spec.width_m;
  const double rho0 = cu_bulk_resistivity(spec.temperature_k);
  return rho0 * mayadas_shatzkes_factor(grain, spec.grain_reflectivity) *
         fuchs_sondheimer_factor(spec.width_m, spec.height_m,
                                 spec.specularity);
}

CuLine::CuLine(CuLineSpec spec) : spec_(spec) {
  CNTI_EXPECTS(spec_.width_m > 2.0 * spec_.barrier_thickness_m,
               "barrier consumes the whole line width");
  CNTI_EXPECTS(spec_.height_m > spec_.barrier_thickness_m,
               "barrier consumes the whole line height");
  rho_eff_ = cu_effective_resistivity(spec_);
}

double CuLine::conducting_area() const {
  // Barrier on both sidewalls and the bottom (damascene).
  const double w = spec_.width_m - 2.0 * spec_.barrier_thickness_m;
  const double h = spec_.height_m - spec_.barrier_thickness_m;
  return w * h;
}

double CuLine::resistance(double length_m) const {
  CNTI_EXPECTS(length_m > 0, "length must be positive");
  return rho_eff_ * length_m / conducting_area();
}

double CuLine::effective_conductivity() const {
  // Referenced to drawn area so that thinner lines show the barrier loss.
  return conducting_area() / (rho_eff_ * drawn_area());
}

double CuLine::max_current() const {
  return cuconst::kEmCurrentDensityLimit * conducting_area();
}

}  // namespace cnti::materials
