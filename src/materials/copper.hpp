// Copper interconnect resistivity with size effects: Fuchs-Sondheimer
// surface scattering and Mayadas-Shatzkes grain-boundary scattering, plus a
// diffusion-barrier area penalty. This is the "Cu lines" baseline the paper
// compares CNT conductivity against in Fig. 9 and the EM-limited reference
// of Sec. I / Sec. IV.A.
#pragma once

#include "common/constants.hpp"
#include "common/error.hpp"

namespace cnti::materials {

/// Geometry and microstructure of a Cu damascene line.
struct CuLineSpec {
  double width_m = 45e-9;
  double height_m = 90e-9;
  /// Specularity of surface scattering (0 = fully diffuse).
  double specularity = 0.25;
  /// Grain-boundary reflection coefficient.
  double grain_reflectivity = 0.27;
  /// Mean grain size; defaults to the line width (damascene microstructure).
  /// <= 0 means "use the line width".
  double grain_size_m = -1.0;
  /// Diffusion-barrier (Ta/TaN) thickness consumed on each sidewall and the
  /// bottom; the barrier conducts negligibly.
  double barrier_thickness_m = 2e-9;
  double temperature_k = phys::kRoomTemperature;
};

/// Bulk Cu resistivity at temperature T [Ohm m] (linear alpha model).
double cu_bulk_resistivity(double temperature_k);

/// Mayadas-Shatzkes grain-boundary resistivity multiplier (>= 1).
double mayadas_shatzkes_factor(double grain_size_m, double reflectivity,
                               double mfp_m = cuconst::kMeanFreePath);

/// Fuchs-Sondheimer surface-scattering resistivity multiplier (>= 1) for a
/// rectangular wire of the given cross-section (additive small-size form).
double fuchs_sondheimer_factor(double width_m, double height_m,
                               double specularity,
                               double mfp_m = cuconst::kMeanFreePath);

/// Effective resistivity of the Cu core, including both size effects [Ohm m].
double cu_effective_resistivity(const CuLineSpec& spec);

/// Cu line model: resistance, conductivity and ampacity of a finite line.
class CuLine {
 public:
  explicit CuLine(CuLineSpec spec);

  const CuLineSpec& spec() const { return spec_; }

  /// Conducting (barrier-excluded) cross-section area [m^2].
  double conducting_area() const;

  /// Full drawn cross-section area [m^2].
  double drawn_area() const { return spec_.width_m * spec_.height_m; }

  /// Line resistance for length L [Ohm].
  double resistance(double length_m) const;

  /// Effective conductivity referenced to the drawn area [S/m]
  /// (the quantity plotted in the paper's Fig. 9).
  double effective_conductivity() const;

  /// Maximum EM-reliable current (j_max * conducting area) [A].
  double max_current() const;

 private:
  CuLineSpec spec_;
  double rho_eff_;
};

}  // namespace cnti::materials
