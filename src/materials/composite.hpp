// Cu-CNT composite material model (paper Sec. II.C): CNT bundles impregnated
// with copper by electroless (ELD) or electrochemical (ECD) deposition.
// The composite trades a modest resistivity increase for a large ampacity
// gain (Subramaniam et al. report ~100x ampacity at Cu-like conductivity).
#pragma once

#include "common/constants.hpp"
#include "common/error.hpp"

namespace cnti::materials {

/// Volume-fraction composition and quality of a Cu-CNT composite line.
struct CompositeSpec {
  /// CNT volume fraction (0 = pure Cu, 1 = pure CNT bundle).
  double cnt_volume_fraction = 0.3;
  /// Fraction of CNTs aligned with the transport direction.
  double alignment = 0.9;
  /// Fraction of metallic CNTs (2/3 semiconducting for undoped CVD tubes).
  double metallic_fraction = 1.0 / 3.0;
  /// Void volume fraction left by imperfect fill (process dependent).
  double void_fraction = 0.02;
  /// Axial conductivity of an individual long CNT [S/m].
  double cnt_axial_conductivity = 2e8;
  /// Effective resistivity of the Cu matrix (with size effects) [Ohm m].
  double cu_matrix_resistivity = cuconst::kBulkResistivity;
  double temperature_k = phys::kRoomTemperature;
};

/// Effective axial conductivity [S/m]: parallel rule over the Cu matrix and
/// the aligned metallic CNT fraction, de-rated by voids.
double composite_conductivity(const CompositeSpec& spec);

/// Maximum current density [A/m^2]: Cu EM limit lifted by the CNT fraction
/// carrying current at CNT-class density; interpolates between the Cu limit
/// and the CNT limit with the current-sharing ratio.
double composite_max_current_density(const CompositeSpec& spec);

/// Effective thermal conductivity [W/(m K)] (volume-weighted parallel rule,
/// CNTs at the conservative low end of the 3000-10000 W/mK range).
double composite_thermal_conductivity(const CompositeSpec& spec);

/// Electromigration lifetime improvement factor relative to pure Cu at the
/// same stress current density (current shunted into EM-immune CNTs slows
/// void growth; factor rises steeply with the CNT current share).
double composite_em_lifetime_factor(const CompositeSpec& spec);

}  // namespace cnti::materials
