#include "materials/cnt_mfp.hpp"

#include <cmath>

namespace cnti::materials {

namespace {
/// Optical phonon energy in graphitic systems [eV].
constexpr double kOpticalPhononEv = 0.16;
/// Spontaneous optical-phonon emission length scale [m].
constexpr double kOpticalEmissionLength = 15e-9;
}  // namespace

double acoustic_mfp(double diameter_m, double temperature_k) {
  CNTI_EXPECTS(diameter_m > 0, "diameter must be positive");
  CNTI_EXPECTS(temperature_k > 0, "temperature must be positive");
  // lambda_ap ~ 1000 d at 300 K with ~1/T scaling (phonon occupation).
  return cntconst::kMfpOverDiameter * diameter_m *
         (phys::kRoomTemperature / temperature_k);
}

double optical_mfp(double diameter_m, double bias_v, double length_m) {
  CNTI_EXPECTS(diameter_m > 0, "diameter must be positive");
  CNTI_EXPECTS(length_m > 0, "length must be positive");
  if (bias_v <= kOpticalPhononEv) return 1e30;
  // Carrier must gain the phonon energy over the field length before
  // emitting: lambda_op = L * (hbar w_op / eV) + lambda_emission.
  return length_m * kOpticalPhononEv / bias_v + kOpticalEmissionLength;
}

double effective_mfp(const MfpSpec& spec, double length_m) {
  const double l_ap = acoustic_mfp(spec.diameter_m, spec.temperature_k);
  double inv = 1.0 / l_ap;
  if (spec.defect_spacing_m > 0) inv += 1.0 / spec.defect_spacing_m;
  const double l_op = optical_mfp(spec.diameter_m, spec.bias_v, length_m);
  inv += 1.0 / l_op;
  return 1.0 / inv;
}

}  // namespace cnti::materials
