// SPICE-subset netlist reader/writer. The TCAD extractor exports RC
// netlists "in a SPICE-like format for circuit-level simulation" (paper
// Sec. III.B); this module round-trips that format into the MNA engine.
//
// Supported cards: R/C/L/V/I/M elements, PULSE/PWL/SIN sources, engineering
// suffixes (f p n u m k meg g t), '*' comments, .tran, .end.
#pragma once

#include <optional>
#include <string>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"

namespace cnti::circuit {

/// Parses an engineering-notation number ("1.5k", "10f", "2meg").
/// Throws ParseError on malformed input.
double parse_spice_number(const std::string& token);

struct ParsedNetlist {
  Circuit circuit;
  std::string title;
  std::optional<TransientOptions> tran;
};

/// Parses a SPICE-subset netlist. The first line is the title card.
ParsedNetlist parse_spice(const std::string& text);

/// Serializes a circuit to the same subset (sources as PULSE/PWL/DC).
std::string write_spice(const Circuit& ckt, const std::string& title,
                        const std::optional<TransientOptions>& tran = {});

}  // namespace cnti::circuit
