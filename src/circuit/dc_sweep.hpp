// DC sweep utility: steps one voltage source across a range, solving the
// operating point at every step (seeded by the previous solution inside
// solve_dc's continuation). Produces transfer curves such as the inverter
// VTC used to characterize the 45 nm drivers of the Fig. 11/12 benchmark.
#pragma once

#include <string>
#include <vector>

#include "circuit/mna.hpp"

namespace cnti::circuit {

struct DcSweepResult {
  std::vector<double> input_v;
  std::vector<double> output_v;

  /// Maximum |dVout/dVin| — e.g. inverter small-signal gain magnitude.
  double max_gain() const;
  /// Input voltage at which the output crosses `level` (interpolated);
  /// negative if never crossed.
  double input_at_output(double level) const;
};

/// Sweeps the named DC source from v_start to v_stop in `points` steps and
/// records the voltage of `observe`. The source must exist and be a
/// DcWave (sweeping a pulse source would be ambiguous). `mna` routes every
/// operating-point solve to the dense or sparse backend.
DcSweepResult dc_sweep(Circuit ckt, const std::string& source_name,
                       double v_start, double v_stop, int points,
                       NodeId observe, const MnaOptions& mna = {});

}  // namespace cnti::circuit
