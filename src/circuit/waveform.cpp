#include "circuit/waveform.hpp"

#include <algorithm>

namespace cnti::circuit {

namespace {

double pulse_value(const PulseWave& p, double t) {
  if (t < p.delay_s) return p.v1;
  double tl = t - p.delay_s;
  if (p.period_s > 0) tl = std::fmod(tl, p.period_s);
  if (tl < p.rise_s) {
    return p.v1 + (p.v2 - p.v1) * tl / p.rise_s;
  }
  if (tl < p.rise_s + p.width_s) return p.v2;
  if (tl < p.rise_s + p.width_s + p.fall_s) {
    const double f = (tl - p.rise_s - p.width_s) / p.fall_s;
    return p.v2 + (p.v1 - p.v2) * f;
  }
  return p.v1;
}

double pwl_value(const PwlWave& p, double t) {
  CNTI_EXPECTS(!p.points.empty(), "PWL needs at least one point");
  if (t <= p.points.front().first) return p.points.front().second;
  if (t >= p.points.back().first) return p.points.back().second;
  for (std::size_t i = 1; i < p.points.size(); ++i) {
    if (t <= p.points[i].first) {
      const auto& [t0, v0] = p.points[i - 1];
      const auto& [t1, v1] = p.points[i];
      const double f = (t - t0) / (t1 - t0);
      return v0 + f * (v1 - v0);
    }
  }
  return p.points.back().second;
}

}  // namespace

double waveform_value(const Waveform& w, double time_s) {
  const double t = std::max(0.0, time_s);
  return std::visit(
      [t](const auto& wave) -> double {
        using T = std::decay_t<decltype(wave)>;
        if constexpr (std::is_same_v<T, DcWave>) {
          return wave.value;
        } else if constexpr (std::is_same_v<T, PulseWave>) {
          return pulse_value(wave, t);
        } else if constexpr (std::is_same_v<T, PwlWave>) {
          return pwl_value(wave, t);
        } else {
          return t < wave.delay_s
                     ? wave.offset
                     : wave.offset +
                           wave.amplitude *
                               std::sin(2.0 * M_PI * wave.frequency_hz *
                                        (t - wave.delay_s));
        }
      },
      w);
}

}  // namespace cnti::circuit
