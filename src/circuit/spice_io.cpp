#include "circuit/spice_io.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

namespace cnti::circuit {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string tok;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' ||
        c == ')' || c == ',') {
      if (!tok.empty()) {
        out.push_back(tok);
        tok.clear();
      }
    } else {
      tok.push_back(c);
    }
  }
  if (!tok.empty()) out.push_back(tok);
  return out;
}

}  // namespace

double parse_spice_number(const std::string& token) {
  const std::string t = lower(token);
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw ParseError("malformed number: " + token);
  }
  const std::string suffix = t.substr(pos);
  if (suffix.empty()) return value;
  if (suffix.rfind("meg", 0) == 0) return value * 1e6;
  switch (suffix[0]) {
    case 't': return value * 1e12;
    case 'g': return value * 1e9;
    case 'k': return value * 1e3;
    case 'm': return value * 1e-3;
    case 'u': return value * 1e-6;
    case 'n': return value * 1e-9;
    case 'p': return value * 1e-12;
    case 'f': return value * 1e-15;
    case 'a': return value * 1e-18;
    default:
      // Unit tails like "5ohm", "2v" are tolerated if non-scaling.
      return value;
  }
}

namespace {

Waveform parse_source_wave(const std::vector<std::string>& tok,
                           std::size_t first) {
  if (first >= tok.size()) return DcWave{0.0};
  const std::string head = lower(tok[first]);
  if (head == "dc") {
    if (first + 1 >= tok.size()) throw ParseError("DC needs a value");
    return DcWave{parse_spice_number(tok[first + 1])};
  }
  if (head == "pulse") {
    PulseWave p;
    const std::size_t n = tok.size() - first - 1;
    const auto arg = [&](std::size_t i) {
      return parse_spice_number(tok[first + 1 + i]);
    };
    if (n >= 1) p.v1 = arg(0);
    if (n >= 2) p.v2 = arg(1);
    if (n >= 3) p.delay_s = arg(2);
    if (n >= 4) p.rise_s = arg(3);
    if (n >= 5) p.fall_s = arg(4);
    if (n >= 6) p.width_s = arg(5);
    if (n >= 7) p.period_s = arg(6);
    return p;
  }
  if (head == "pwl") {
    PwlWave p;
    for (std::size_t i = first + 1; i + 1 < tok.size(); i += 2) {
      p.points.emplace_back(parse_spice_number(tok[i]),
                            parse_spice_number(tok[i + 1]));
    }
    if (p.points.empty()) throw ParseError("PWL needs points");
    return p;
  }
  if (head == "sin") {
    SineWave s;
    const std::size_t n = tok.size() - first - 1;
    const auto arg = [&](std::size_t i) {
      return parse_spice_number(tok[first + 1 + i]);
    };
    if (n >= 1) s.offset = arg(0);
    if (n >= 2) s.amplitude = arg(1);
    if (n >= 3) s.frequency_hz = arg(2);
    if (n >= 4) s.delay_s = arg(3);
    return s;
  }
  // Bare value = DC.
  return DcWave{parse_spice_number(tok[first])};
}

MosfetParams parse_mosfet_params(const std::vector<std::string>& tok,
                                 std::size_t first, bool is_pmos) {
  MosfetParams p;
  p.is_pmos = is_pmos;
  if (is_pmos) {
    p.vt_v = -0.3;
    p.kp_a_per_v2 = 225e-6;
  }
  for (std::size_t i = first; i < tok.size(); ++i) {
    const std::string t = lower(tok[i]);
    const auto eq = t.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = t.substr(0, eq);
    const double val = parse_spice_number(t.substr(eq + 1));
    if (key == "w") p.width_m = val;
    else if (key == "l") p.length_m = val;
    else if (key == "vt") p.vt_v = val;
    else if (key == "kp") p.kp_a_per_v2 = val;
    else if (key == "lambda") p.lambda_per_v = val;
    else if (key == "cgs") p.cgs_f = val;
    else if (key == "cgd") p.cgd_f = val;
  }
  return p;
}

}  // namespace

ParsedNetlist parse_spice(const std::string& text) {
  ParsedNetlist out;
  std::istringstream in(text);
  std::string line;
  bool first_line = true;
  bool ended = false;
  while (std::getline(in, line)) {
    if (first_line) {
      out.title = line;
      first_line = false;
      continue;
    }
    if (ended) break;
    // Strip comments.
    if (!line.empty() && line[0] == '*') continue;
    const auto semi = line.find(';');
    if (semi != std::string::npos) line = line.substr(0, semi);
    const auto tok = tokenize(line);
    if (tok.empty()) continue;

    const std::string head = lower(tok[0]);
    Circuit& ckt = out.circuit;
    const auto node = [&](std::size_t i) {
      if (i >= tok.size()) throw ParseError("missing node in: " + line);
      return ckt.node(lower(tok[i]));
    };

    if (head[0] == '.') {
      if (head == ".end") {
        ended = true;
      } else if (head == ".tran") {
        if (tok.size() < 3) throw ParseError(".tran needs dt and tstop");
        TransientOptions t;
        t.dt_s = parse_spice_number(tok[1]);
        t.t_stop_s = parse_spice_number(tok[2]);
        out.tran = t;
      }
      // Other dot-cards ignored.
      continue;
    }
    switch (head[0]) {
      case 'r':
        if (tok.size() < 4) throw ParseError("R card: " + line);
        ckt.add_resistor(tok[0], node(1), node(2),
                         parse_spice_number(tok[3]));
        break;
      case 'c':
        if (tok.size() < 4) throw ParseError("C card: " + line);
        ckt.add_capacitor(tok[0], node(1), node(2),
                          parse_spice_number(tok[3]));
        break;
      case 'l':
        if (tok.size() < 4) throw ParseError("L card: " + line);
        ckt.add_inductor(tok[0], node(1), node(2),
                         parse_spice_number(tok[3]));
        break;
      case 'v':
        if (tok.size() < 3) throw ParseError("V card: " + line);
        ckt.add_vsource(tok[0], node(1), node(2),
                        parse_source_wave(tok, 3));
        break;
      case 'i':
        if (tok.size() < 3) throw ParseError("I card: " + line);
        ckt.add_isource(tok[0], node(1), node(2),
                        parse_source_wave(tok, 3));
        break;
      case 'm': {
        // Mname drain gate source [bulk] NMOS|PMOS key=value...
        if (tok.size() < 5) throw ParseError("M card: " + line);
        // Find the model token (nmos/pmos); bulk node optional before it.
        std::size_t model_idx = 0;
        bool is_pmos = false;
        for (std::size_t i = 4; i < tok.size(); ++i) {
          const std::string t = lower(tok[i]);
          if (t == "nmos" || t == "pmos") {
            model_idx = i;
            is_pmos = (t == "pmos");
            break;
          }
        }
        if (model_idx == 0) throw ParseError("M card needs NMOS/PMOS");
        ckt.add_mosfet(tok[0], node(1), node(2), node(3),
                       parse_mosfet_params(tok, model_idx + 1, is_pmos));
        break;
      }
      default:
        throw ParseError("unsupported card: " + line);
    }
  }
  return out;
}

namespace {

std::string wave_to_string(const Waveform& w) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& wave) {
        using T = std::decay_t<decltype(wave)>;
        if constexpr (std::is_same_v<T, DcWave>) {
          os << "DC " << wave.value;
        } else if constexpr (std::is_same_v<T, PulseWave>) {
          os << "PULSE(" << wave.v1 << " " << wave.v2 << " " << wave.delay_s
             << " " << wave.rise_s << " " << wave.fall_s << " "
             << wave.width_s << " " << wave.period_s << ")";
        } else if constexpr (std::is_same_v<T, PwlWave>) {
          os << "PWL(";
          for (std::size_t i = 0; i < wave.points.size(); ++i) {
            os << (i ? " " : "") << wave.points[i].first << " "
               << wave.points[i].second;
          }
          os << ")";
        } else {
          os << "SIN(" << wave.offset << " " << wave.amplitude << " "
             << wave.frequency_hz << " " << wave.delay_s << ")";
        }
      },
      w);
  return os.str();
}

}  // namespace

std::string write_spice(const Circuit& ckt, const std::string& title,
                        const std::optional<TransientOptions>& tran) {
  std::ostringstream os;
  os << std::setprecision(17);  // lossless round-trip of double values
  os << title << "\n";
  const auto n = [&](NodeId id) { return ckt.node_name(id); };
  // SPICE cards dispatch on the first letter of the element name, so the
  // writer enforces the type prefix when the stored name lacks it.
  const auto card = [](char type, const std::string& name) {
    if (!name.empty() &&
        std::tolower(static_cast<unsigned char>(name[0])) ==
            std::tolower(static_cast<unsigned char>(type))) {
      return name;
    }
    return std::string(1, type) + "_" + name;
  };
  for (const auto& r : ckt.resistors()) {
    os << card('R', r.name) << " " << n(r.a) << " " << n(r.b) << " "
       << r.ohms << "\n";
  }
  for (const auto& c : ckt.capacitors()) {
    os << card('C', c.name) << " " << n(c.a) << " " << n(c.b) << " "
       << c.farads << "\n";
  }
  for (const auto& l : ckt.inductors()) {
    os << card('L', l.name) << " " << n(l.a) << " " << n(l.b) << " "
       << l.henries << "\n";
  }
  for (const auto& v : ckt.vsources()) {
    os << card('V', v.name) << " " << n(v.plus) << " " << n(v.minus) << " "
       << wave_to_string(v.wave) << "\n";
  }
  for (const auto& i : ckt.isources()) {
    os << card('I', i.name) << " " << n(i.plus) << " " << n(i.minus) << " "
       << wave_to_string(i.wave) << "\n";
  }
  for (const auto& m : ckt.mosfets()) {
    const auto& p = m.params;
    os << card('M', m.name) << " " << n(m.drain) << " " << n(m.gate) << " "
       << n(m.source) << " " << (p.is_pmos ? "PMOS" : "NMOS")
       << " W=" << p.width_m << " L=" << p.length_m << " VT=" << p.vt_v
       << " KP=" << p.kp_a_per_v2 << " LAMBDA=" << p.lambda_per_v
       << " CGS=0 CGD=0\n";
  }
  if (tran) {
    os << ".tran " << tran->dt_s << " " << tran->t_stop_s << "\n";
  }
  os << ".end\n";
  return os.str();
}

}  // namespace cnti::circuit
