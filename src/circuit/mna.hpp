// Modified nodal analysis engine: DC operating point (Newton with g_min
// stepping) and fixed-step transient (backward Euler or trapezoidal, Newton
// per step). Dense LU is used — the paper's benchmark circuits (inverter
// chains driving segmented MWCNT lines) stay below a few hundred unknowns.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "numerics/matrix.hpp"

namespace cnti::circuit {

/// DC operating point.
struct DcResult {
  std::vector<double> node_voltages;    ///< [0] = ground = 0.
  std::vector<double> vsource_currents;
  std::vector<double> inductor_currents;
  int newton_iterations = 0;
};

DcResult solve_dc(const Circuit& ckt, double time_s = 0.0);

enum class Integrator { kBackwardEuler, kTrapezoidal };

struct TransientOptions {
  double t_stop_s = 1e-9;
  double dt_s = 1e-12;
  Integrator integrator = Integrator::kTrapezoidal;
  int max_newton_iterations = 100;
  double newton_tolerance = 1e-9;
};

/// Transient waveforms for every node (indexed by NodeId; ground included
/// as all-zeros).
class TransientResult {
 public:
  TransientResult(std::vector<double> time,
                  std::vector<std::vector<double>> voltages)
      : time_(std::move(time)), voltages_(std::move(voltages)) {}

  const std::vector<double>& time() const { return time_; }

  const std::vector<double>& voltage(NodeId node) const {
    CNTI_EXPECTS(node >= 0 &&
                     node < static_cast<NodeId>(voltages_.size()),
                 "node id out of range");
    return voltages_[static_cast<std::size_t>(node)];
  }

  std::size_t steps() const { return time_.size(); }

 private:
  std::vector<double> time_;
  std::vector<std::vector<double>> voltages_;  // [node][step]
};

TransientResult simulate_transient(const Circuit& ckt,
                                   const TransientOptions& options);

}  // namespace cnti::circuit
