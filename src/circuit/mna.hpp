// Modified nodal analysis engine: DC operating point (Newton with g_min
// stepping) and fixed-step transient (backward Euler or trapezoidal, Newton
// per step). Two linear backends share one stamping path: a dense LU (the
// historical engine, kept as the differential-test oracle) and a sparse
// Gilbert–Peierls LU whose fill pattern and pivot order are computed once
// per circuit topology and refactorized cheaply across Newton iterations
// and timesteps. kAuto routes large systems (wide coupled buses, long
// ladders) to the sparse path; see docs/CIRCUIT_SOLVERS.md.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "numerics/matrix.hpp"

namespace cnti::circuit {

/// Linear-solver backend selection for the MNA engine.
enum class SolverKind {
  kDense,   ///< Dense partial-pivot LU, O(n^3) per Newton iteration.
  kSparse,  ///< Pattern-frozen CSR stamping + reusable SparseLu.
  kAuto,    ///< kSparse above MnaOptions::sparse_threshold unknowns.
};

/// Fill-reducing column pre-ordering for the sparse backend's LU.
enum class OrderingKind {
  kNatural,  ///< Factor in assembly order (segment-major buses are
             ///< near-banded already).
  kAmd,      ///< Approximate-minimum-degree pre-permutation of the
             ///< symmetrized MNA pattern, computed once per topology.
};

/// Numeric factorization kernel for the sparse backend's LU.
enum class FactorKind {
  kScalar,      ///< Column-at-a-time Gilbert–Peierls replay.
  kSupernodal,  ///< Blocked elimination over dense supernode panels
                ///< (etree postorder + relaxed amalgamation; falls back
                ///< to kScalar per-factorization when a pivot drifts).
  kAuto,        ///< kSupernodal when the detected partition is wide
                ///< enough to pay for the panels; kScalar otherwise.
};

struct MnaOptions {
  SolverKind solver = SolverKind::kAuto;
  /// kAuto picks the sparse backend at or above this many MNA unknowns
  /// (node voltages + source/inductor branch currents). Below it the dense
  /// engine wins on constant factors.
  int sparse_threshold = 192;
  /// Column pre-permutation applied ahead of the sparse LU's symbolic
  /// analysis. Computed once per frozen pattern, so the Newton/timestep
  /// refactorization reuse contract is unchanged. Ignored by the dense
  /// backend.
  OrderingKind ordering = OrderingKind::kAmd;
  /// Numeric kernel for the sparse backend. Pattern-only: switching it
  /// never changes the fill pattern or the refactorization contract, and
  /// kAuto routes each topology by its detected supernode partition.
  /// Ignored by the dense backend.
  FactorKind factor = FactorKind::kAuto;
};

/// DC operating point.
struct DcResult {
  std::vector<double> node_voltages;    ///< [0] = ground = 0.
  std::vector<double> vsource_currents;
  std::vector<double> inductor_currents;
  int newton_iterations = 0;
};

DcResult solve_dc(const Circuit& ckt, double time_s = 0.0,
                  const MnaOptions& mna = {});

/// Reusable DC engine for repeated operating-point solves of one circuit
/// (dc_sweep, corner loops): the linear backend — and with it the sparse
/// path's frozen stamp pattern and symbolic analysis — persists across
/// solve() calls. The solver holds a reference: `ckt` must outlive it
/// (binding a temporary is rejected at compile time). Element *values*
/// (source waveforms) may change between calls; the circuit's topology
/// must not.
class DcSolver {
 public:
  explicit DcSolver(const Circuit& ckt, const MnaOptions& mna = {});
  explicit DcSolver(Circuit&& ckt, const MnaOptions& mna = {}) = delete;
  ~DcSolver();
  DcSolver(DcSolver&&) noexcept;
  DcSolver& operator=(DcSolver&&) noexcept;

  DcResult solve(double time_s = 0.0);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

enum class Integrator { kBackwardEuler, kTrapezoidal };

struct TransientOptions {
  double t_stop_s = 1e-9;
  double dt_s = 1e-12;
  Integrator integrator = Integrator::kTrapezoidal;
  int max_newton_iterations = 100;
  double newton_tolerance = 1e-9;
  MnaOptions mna{};  ///< Linear backend routing (applies to the initial DC too).
};

/// Transient waveforms for every node (indexed by NodeId; ground included
/// as all-zeros).
class TransientResult {
 public:
  TransientResult(std::vector<double> time,
                  std::vector<std::vector<double>> voltages)
      : time_(std::move(time)), voltages_(std::move(voltages)) {}

  const std::vector<double>& time() const { return time_; }

  const std::vector<double>& voltage(NodeId node) const {
    CNTI_EXPECTS(node >= 0 &&
                     node < static_cast<NodeId>(voltages_.size()),
                 "node id out of range");
    return voltages_[static_cast<std::size_t>(node)];
  }

  std::size_t steps() const { return time_.size(); }

 private:
  std::vector<double> time_;
  std::vector<std::vector<double>> voltages_;  // [node][step]
};

TransientResult simulate_transient(const Circuit& ckt,
                                   const TransientOptions& options);

}  // namespace cnti::circuit
