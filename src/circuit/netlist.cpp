#include "circuit/netlist.hpp"

namespace cnti::circuit {

NodeId Circuit::node(const std::string& name) {
  const auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = next_id_++;
  node_ids_[name] = id;
  node_names_.push_back(name);
  return id;
}

const std::string& Circuit::node_name(NodeId id) const {
  CNTI_EXPECTS(id >= 0 && id < static_cast<NodeId>(node_names_.size()),
               "node id out of range");
  return node_names_[static_cast<std::size_t>(id)];
}

void Circuit::add_resistor(const std::string& name, NodeId a, NodeId b,
                           double ohms) {
  CNTI_EXPECTS(ohms > 0, "resistance must be positive: " + name);
  resistors_.push_back({name, a, b, ohms});
}

void Circuit::add_capacitor(const std::string& name, NodeId a, NodeId b,
                            double farads) {
  CNTI_EXPECTS(farads > 0, "capacitance must be positive: " + name);
  capacitors_.push_back({name, a, b, farads});
}

void Circuit::add_inductor(const std::string& name, NodeId a, NodeId b,
                           double henries) {
  CNTI_EXPECTS(henries > 0, "inductance must be positive: " + name);
  inductors_.push_back({name, a, b, henries});
}

void Circuit::add_vsource(const std::string& name, NodeId plus, NodeId minus,
                          Waveform wave) {
  vsources_.push_back({name, plus, minus, std::move(wave)});
}

void Circuit::set_vsource_wave(std::size_t index, Waveform wave) {
  CNTI_EXPECTS(index < vsources_.size(), "vsource index out of range");
  vsources_[index].wave = std::move(wave);
}

void Circuit::add_isource(const std::string& name, NodeId plus, NodeId minus,
                          Waveform wave) {
  isources_.push_back({name, plus, minus, std::move(wave)});
}

void Circuit::add_mosfet(const std::string& name, NodeId drain, NodeId gate,
                         NodeId source, const MosfetParams& params) {
  CNTI_EXPECTS(params.width_m > 0 && params.length_m > 0,
               "MOSFET geometry must be positive: " + name);
  CNTI_EXPECTS(params.kp_a_per_v2 > 0, "kp must be positive: " + name);
  mosfets_.push_back({name, drain, gate, source, params});
  // Gate capacitances participate as ordinary linear capacitors.
  if (params.cgs_f > 0) {
    add_capacitor(name + ".cgs", gate, source, params.cgs_f);
  }
  if (params.cgd_f > 0) {
    add_capacitor(name + ".cgd", gate, drain, params.cgd_f);
  }
}

}  // namespace cnti::circuit
