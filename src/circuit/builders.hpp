// Circuit construction helpers: 45 nm-class CMOS inverters, distributed-RC
// line netlisting, and the paper's Fig. 11 benchmark (inverter driver ->
// doped MWCNT interconnect -> inverter receiver).
#pragma once

#include <string>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "core/line_model.hpp"

namespace cnti::circuit {

/// 45 nm-class technology bundle for the benchmark circuits.
struct Technology45nm {
  double vdd_v = 1.0;
  MosfetParams nmos{.is_pmos = false,
                    .vt_v = 0.3,
                    .kp_a_per_v2 = 450e-6,
                    .width_m = 90e-9,
                    .length_m = 45e-9,
                    .lambda_per_v = 0.1,
                    .cgs_f = 0.03e-15,
                    .cgd_f = 0.02e-15};
  MosfetParams pmos{.is_pmos = true,
                    .vt_v = -0.3,
                    .kp_a_per_v2 = 225e-6,
                    .width_m = 180e-9,
                    .length_m = 45e-9,
                    .lambda_per_v = 0.1,
                    .cgs_f = 0.06e-15,
                    .cgd_f = 0.04e-15};
};

/// Adds a CMOS inverter between `in` and `out`; `size` scales both device
/// widths (and gate capacitances). Returns the supply node used.
NodeId add_inverter(Circuit& ckt, const std::string& name, NodeId in,
                    NodeId out, NodeId vdd, const Technology45nm& tech,
                    double size = 1.0);

/// Netlists a distributed line as `segments` RC pi-sections between `in`
/// and `out`, with the lumped series resistance split across both ends.
/// Node names are prefixed with `name`.
void add_distributed_line(Circuit& ckt, const std::string& name, NodeId in,
                          NodeId out, const core::LineRlc& line,
                          double length_m, int segments);

/// The paper's Fig. 11 benchmark: pulse -> driver inverter -> MWCNT line ->
/// receiver inverter -> load inverter. Returns the probe nodes.
struct Fig11Circuit {
  Circuit ckt;
  NodeId input = 0;        ///< Pulse at the driver gate.
  NodeId line_in = 0;      ///< Driver output / line near end.
  NodeId line_out = 0;     ///< Line far end / receiver gate.
  NodeId output = 0;       ///< Receiver inverter output.
  double vdd_v = 1.0;
  double pulse_period_s = 0.0;
  double pulse_width_s = 0.0;
};

struct Fig11Options {
  core::LineRlc line;
  double length_m = 500e-6;
  int segments = 20;
  double driver_size = 8.0;
  double receiver_size = 1.0;
  Technology45nm tech;
  /// Pulse timing; <= 0 means auto-scale to the line's RC time constant.
  double pulse_width_s = -1.0;
  MnaOptions mna{};  ///< Linear backend routing for the delay transient.
};

Fig11Circuit build_fig11_benchmark(const Fig11Options& opt);

/// Simulates the Fig. 11 benchmark and returns the average 50% propagation
/// delay from driver input to receiver output [s].
double measure_fig11_delay(const Fig11Options& opt,
                           int time_steps = 4000);

}  // namespace cnti::circuit
