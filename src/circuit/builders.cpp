#include "circuit/builders.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/measure.hpp"
#include "core/line_model.hpp"

namespace cnti::circuit {

NodeId add_inverter(Circuit& ckt, const std::string& name, NodeId in,
                    NodeId out, NodeId vdd, const Technology45nm& tech,
                    double size) {
  CNTI_EXPECTS(size > 0, "inverter size must be positive");
  MosfetParams n = tech.nmos;
  MosfetParams p = tech.pmos;
  n.width_m *= size;
  n.cgs_f *= size;
  n.cgd_f *= size;
  p.width_m *= size;
  p.cgs_f *= size;
  p.cgd_f *= size;
  ckt.add_mosfet(name + ".mn", out, in, 0, n);
  ckt.add_mosfet(name + ".mp", out, in, vdd, p);
  return vdd;
}

void add_distributed_line(Circuit& ckt, const std::string& name, NodeId in,
                          NodeId out, const core::LineRlc& line,
                          double length_m, int segments) {
  CNTI_EXPECTS(segments >= 1, "need at least one segment");
  const auto segs = core::discretize_line(line, length_m, segments);
  const double r_end = line.series_resistance_ohm / 2.0;

  NodeId prev = in;
  int counter = 0;
  const auto next_node = [&] {
    return ckt.node(name + ".n" + std::to_string(counter++));
  };

  // Near-end lumped resistance (contacts + quantum).
  if (r_end > 0) {
    const NodeId n = next_node();
    ckt.add_resistor(name + ".rc1", prev, n, r_end);
    prev = n;
  }
  for (int s = 0; s < segments; ++s) {
    const NodeId n = (s == segments - 1 && r_end <= 0) ? out : next_node();
    ckt.add_resistor(name + ".r" + std::to_string(s), prev, n,
                     segs[static_cast<std::size_t>(s)].resistance_ohm);
    // pi-section: half capacitance at each side of the segment resistor.
    const double c_half =
        segs[static_cast<std::size_t>(s)].capacitance_f / 2.0;
    if (c_half > 0) {
      ckt.add_capacitor(name + ".ca" + std::to_string(s), prev, 0, c_half);
      ckt.add_capacitor(name + ".cb" + std::to_string(s), n, 0, c_half);
    }
    prev = n;
  }
  if (r_end > 0) {
    ckt.add_resistor(name + ".rc2", prev, out, r_end);
  }
}

Fig11Circuit build_fig11_benchmark(const Fig11Options& opt) {
  Fig11Circuit out;
  Circuit& ckt = out.ckt;
  out.vdd_v = opt.tech.vdd_v;

  const NodeId vdd = ckt.node("vdd");
  out.input = ckt.node("in");
  out.line_in = ckt.node("line_in");
  out.line_out = ckt.node("line_out");
  out.output = ckt.node("out");

  ckt.add_vsource("vsupply", vdd, 0, DcWave{opt.tech.vdd_v});

  // Auto-scale the pulse to the slowest expected time constant so both
  // edges complete within one period.
  double pw = opt.pulse_width_s;
  if (pw <= 0) {
    core::DriverLineLoad est;
    est.driver_resistance_ohm = 5e3 / opt.driver_size;
    est.line = opt.line;
    est.length_m = opt.length_m;
    est.load_capacitance_f = 1e-15;
    pw = std::max(2e-9, 40.0 * core::elmore_delay(est));
  }
  PulseWave pulse;
  pulse.v1 = 0.0;
  pulse.v2 = opt.tech.vdd_v;
  pulse.delay_s = pw / 40.0;
  pulse.rise_s = pw / 100.0;
  pulse.fall_s = pw / 100.0;
  pulse.width_s = pw;
  pulse.period_s = 2.0 * pw;
  out.pulse_width_s = pw;
  out.pulse_period_s = pulse.period_s;
  ckt.add_vsource("vin", out.input, 0, pulse);

  add_inverter(ckt, "drv", out.input, out.line_in, vdd, opt.tech,
               opt.driver_size);
  add_distributed_line(ckt, "line", out.line_in, out.line_out, opt.line,
                       opt.length_m, opt.segments);
  add_inverter(ckt, "rcv", out.line_out, out.output, vdd, opt.tech,
               opt.receiver_size);
  // Fan-out load on the receiver.
  const NodeId dummy = ckt.node("load");
  add_inverter(ckt, "fan", out.output, dummy, vdd, opt.tech,
               4.0 * opt.receiver_size);
  return out;
}

double measure_fig11_delay(const Fig11Options& opt, int time_steps) {
  const Fig11Circuit bench = build_fig11_benchmark(opt);
  TransientOptions topt;
  topt.t_stop_s = bench.pulse_period_s;
  topt.dt_s = topt.t_stop_s / time_steps;
  topt.mna = opt.mna;
  const TransientResult res = simulate_transient(bench.ckt, topt);
  const double v_mid = bench.vdd_v / 2.0;
  // Second input edge (falling) happens after delay + width.
  const double t_second = bench.pulse_width_s / 40.0 +
                          bench.pulse_width_s / 2.0;
  return average_propagation_delay(res, bench.input, bench.output, v_mid,
                                   t_second);
}

}  // namespace cnti::circuit
