// Coupled-line crosstalk analysis: the circuit-level counterpart of the
// TCAD Fig. 10 cross-talk extraction. An aggressor line switches next to
// a quiet victim; both are distributed RC lines coupled segment-by-segment
// through the extracted (or analytic) coupling capacitance. Reports the
// victim noise peak — the signal-integrity metric that decides whether a
// lower-C CNT line buys noise margin.
#pragma once

#include "circuit/mna.hpp"
#include "core/line_model.hpp"

namespace cnti::circuit {

struct CrosstalkConfig {
  core::LineRlc victim;
  core::LineRlc aggressor;
  /// Coupling capacitance per metre between the two lines [F/m]
  /// (e.g. -C_ij from tcad::extract_capacitance divided by line length).
  double coupling_cap_per_m = 20e-12;
  double length_m = 100e-6;
  int segments = 16;
  /// Holding resistance of the victim driver and drive resistance of the
  /// switching aggressor [Ohm].
  double victim_driver_ohm = 5e3;
  double aggressor_driver_ohm = 5e3;
  double vdd_v = 1.0;
  double edge_time_s = 20e-12;
};

struct CrosstalkResult {
  double peak_noise_v = 0.0;       ///< At the victim far end.
  double peak_time_s = 0.0;
  double aggressor_delay_s = 0.0;  ///< 50% delay of the aggressor itself.
};

/// Builds the coupled ladder, runs the MNA transient, measures the noise.
CrosstalkResult analyze_crosstalk(const CrosstalkConfig& config,
                                  int time_steps = 2500);

}  // namespace cnti::circuit
