// Coupled-line crosstalk analysis: the circuit-level counterpart of the
// TCAD Fig. 10 cross-talk extraction. An aggressor line switches next to
// a quiet victim; both are distributed RC lines coupled segment-by-segment
// through the extracted (or analytic) coupling capacitance. Reports the
// victim noise peak — the signal-integrity metric that decides whether a
// lower-C CNT line buys noise margin.
#pragma once

#include "circuit/mna.hpp"
#include "core/line_model.hpp"

namespace cnti::circuit {

struct CrosstalkConfig {
  core::LineRlc victim;
  core::LineRlc aggressor;
  /// Coupling capacitance per metre between the two lines [F/m]
  /// (e.g. -C_ij from tcad::extract_capacitance divided by line length).
  double coupling_cap_per_m = 20e-12;
  double length_m = 100e-6;
  int segments = 16;
  /// Holding resistance of the victim driver and drive resistance of the
  /// switching aggressor [Ohm].
  double victim_driver_ohm = 5e3;
  double aggressor_driver_ohm = 5e3;
  double vdd_v = 1.0;
  double edge_time_s = 20e-12;
  MnaOptions mna{};  ///< Linear backend routing for the transient.
};

struct CrosstalkResult {
  double peak_noise_v = 0.0;       ///< At the victim far end.
  double peak_time_s = 0.0;
  /// 50% delay of the aggressor itself; quiet NaN when the far end never
  /// reaches vdd/2 inside the window (never a negative sentinel).
  double aggressor_delay_s = 0.0;
};

/// Builds the coupled ladder, runs the MNA transient, measures the noise.
CrosstalkResult analyze_crosstalk(const CrosstalkConfig& config,
                                  int time_steps = 2500);

/// Wide coupled bus: `lines` identical RC lines side by side, coupled
/// nearest-neighbour segment-by-segment, one aggressor switching while
/// every other line is held quiet by its driver. This is the bus-level
/// scenario from the CNT-via/interconnect literature (Ting et al., Kreupl
/// et al.) — thousands of unknowns, which is exactly the regime the sparse
/// MNA backend exists for.
///
/// The description is split along the cache seam the scenario engine keys
/// on: BusTopology is everything that fixes the bare netlist (and hence
/// the MNA pattern and the PRIMA reduction); BusDrive is the per-scenario
/// termination/stimulus overlay that can vary across a batch while the
/// topology-derived artifacts are reused.
struct BusTopology {
  core::LineRlc line;                   ///< Per-line RC(L) model.
  double coupling_cap_per_m = 20e-12;   ///< Neighbour coupling [F/m].
  double length_m = 100e-6;
  int lines = 16;
  int segments = 64;
};

struct BusDrive {
  int aggressor = -1;                   ///< Switching line; -1 = centre.
  double driver_ohm = 5e3;              ///< Every line's driver resistance.
  double vdd_v = 1.0;
  double edge_time_s = 20e-12;
  double receiver_load_f = 0.2e-15;     ///< Input load at every far end.
  MnaOptions mna{};                     ///< Backend routing (kAuto -> sparse).
};

/// Flat topology + drive bundle (the historical single-shot interface).
struct BusConfig {
  core::LineRlc line;                   ///< Per-line RC(L) model.
  double coupling_cap_per_m = 20e-12;   ///< Neighbour coupling [F/m].
  double length_m = 100e-6;
  int lines = 16;
  int segments = 64;
  int aggressor = -1;                   ///< Switching line; -1 = centre.
  double driver_ohm = 5e3;              ///< Every line's driver resistance.
  double vdd_v = 1.0;
  double edge_time_s = 20e-12;
  double receiver_load_f = 0.2e-15;     ///< Input load at every far end.
  MnaOptions mna{};                     ///< Backend routing (kAuto -> sparse).

  BusTopology topology() const {
    return {line, coupling_cap_per_m, length_m, lines, segments};
  }
  BusDrive drive() const {
    return {aggressor, driver_ohm, vdd_v, edge_time_s, receiver_load_f, mna};
  }
};

/// Recomposes a flat config; make_bus_config(c.topology(), c.drive()) == c.
BusConfig make_bus_config(const BusTopology& topology, const BusDrive& drive);

struct BusCrosstalkResult {
  double peak_noise_v = 0.0;       ///< Worst victim far-end noise.
  double peak_time_s = 0.0;
  int worst_victim = -1;           ///< Line index of the worst victim.
  /// 50% delay of the aggressor far end; quiet NaN when the waveform never
  /// crosses vdd/2 inside the window (report writers emit null/empty, the
  /// statistical layer counts the sample invalid).
  double aggressor_delay_s = 0.0;
  int unknowns = 0;                ///< MNA system size actually solved.
};

/// Builds the N-line coupled bus, runs the MNA transient and scans every
/// victim far end for the worst-case coupled noise.
BusCrosstalkResult analyze_bus_crosstalk(const BusConfig& config,
                                         int time_steps = 1500);

/// Bare N-line coupled bus: the ladders and their neighbour coupling only —
/// no stimulus source, driver resistors or receiver loads. head[l]/far[l]
/// are the driver-side and receiver-side terminals of line l, which is
/// where analyze_bus_crosstalk attaches its terminations and where the ROM
/// layer places its ports (reduce the bare bus once, re-attach
/// driver/load scenarios to the reduced model).
struct BusNetlist {
  Circuit ckt;
  std::vector<NodeId> head;
  std::vector<NodeId> far;
  /// The topology this netlist was built from. The prebuilt-netlist
  /// analyze_bus_crosstalk overload checks it field-for-field, so a
  /// cached netlist can never be silently paired with a different
  /// topology's window/measurement parameters.
  BusTopology topology;
};

BusNetlist build_bus_netlist(const BusTopology& topology);
BusNetlist build_bus_netlist(const BusConfig& config);

/// Cache-aware variant: runs one drive scenario against a copy of a
/// *prebuilt* bare bus netlist of `topology` (taken by value: pass `bare`
/// to copy, std::move(bare) to consume). One build — typically held in
/// the scenario engine's memo cache — serves any number of drive
/// scenarios, and each result is bit-identical to the single-shot
/// overload of the matching flat config.
BusCrosstalkResult analyze_bus_crosstalk(BusNetlist bus,
                                         const BusTopology& topology,
                                         const BusDrive& drive,
                                         int time_steps = 1500);

/// The single rising edge used by the crosstalk analyses: 0 -> vdd with
/// the given rise time, delayed by 5 edge times, holding high afterwards.
PulseWave bus_edge_wave(double vdd_v, double edge_time_s);

/// Length of the transient window analyze_bus_crosstalk simulates: 12 RC
/// time constants of the worst-case drive into the line (+ both-neighbour
/// coupling) capacitance plus the receiver load, floored at 20 edge
/// times. Exposed so reduced-model evaluations run on the exact same grid
/// as the full transient.
double bus_settle_time_s(const BusConfig& config);
double bus_settle_time_s(const BusTopology& topology, const BusDrive& drive);

}  // namespace cnti::circuit
