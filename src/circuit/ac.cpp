#include "circuit/ac.hpp"

#include <cmath>

#include "numerics/matrix.hpp"

namespace cnti::circuit {

namespace {

using numerics::MatrixC;
using std::complex;

/// Complex MNA solve at one angular frequency; returns the full unknown
/// vector (node voltages then vsource branch currents).
std::vector<complex<double>> solve_at(const Circuit& ckt, double omega,
                                      std::size_t driven_source) {
  const int n_nodes = ckt.node_count();
  const std::size_t nv = ckt.vsources().size();
  const std::size_t size = static_cast<std::size_t>(n_nodes) + nv;
  MatrixC a(size, size);
  std::vector<complex<double>> b(size, complex<double>(0.0, 0.0));

  const auto idx = [](NodeId n) { return static_cast<std::size_t>(n - 1); };
  const auto stamp_admittance = [&](NodeId p, NodeId q,
                                    complex<double> y) {
    if (p != 0) a(idx(p), idx(p)) += y;
    if (q != 0) a(idx(q), idx(q)) += y;
    if (p != 0 && q != 0) {
      a(idx(p), idx(q)) -= y;
      a(idx(q), idx(p)) -= y;
    }
  };

  // g_min keeps floating nodes solvable, matching the transient engine.
  for (int n = 1; n <= n_nodes; ++n) {
    a(idx(n), idx(n)) += complex<double>(1e-12, 0.0);
  }
  for (const auto& r : ckt.resistors()) {
    stamp_admittance(r.a, r.b, complex<double>(1.0 / r.ohms, 0.0));
  }
  for (const auto& c : ckt.capacitors()) {
    stamp_admittance(c.a, c.b, complex<double>(0.0, omega * c.farads));
  }
  for (const auto& l : ckt.inductors()) {
    // Series admittance 1/(jwL); at w = 0 treat as a large conductance.
    const complex<double> y =
        (omega > 0) ? complex<double>(0.0, -1.0 / (omega * l.henries))
                    : complex<double>(1e9, 0.0);
    stamp_admittance(l.a, l.b, y);
  }
  for (std::size_t k = 0; k < nv; ++k) {
    const auto& v = ckt.vsources()[k];
    const std::size_t br = static_cast<std::size_t>(n_nodes) + k;
    if (v.plus != 0) {
      a(idx(v.plus), br) += 1.0;
      a(br, idx(v.plus)) += 1.0;
    }
    if (v.minus != 0) {
      a(idx(v.minus), br) -= 1.0;
      a(br, idx(v.minus)) -= 1.0;
    }
    b[br] = (k == driven_source) ? complex<double>(1.0, 0.0)
                                 : complex<double>(0.0, 0.0);
  }
  for (const auto& i : ckt.isources()) {
    (void)i;  // AC: independent current sources zeroed.
  }
  return numerics::LuFactorization<complex<double>>(a).solve(b);
}

std::size_t find_source(const Circuit& ckt, const std::string& name) {
  for (std::size_t k = 0; k < ckt.vsources().size(); ++k) {
    if (ckt.vsources()[k].name == name) return k;
  }
  throw PreconditionError("AC: unknown voltage source: " + name);
}

}  // namespace

AcResult ac_analysis(const Circuit& ckt, const std::string& source_name,
                     NodeId observe, const std::vector<double>& freqs_hz) {
  CNTI_EXPECTS(ckt.mosfets().empty(),
               "AC analysis supports linear circuits only");
  CNTI_EXPECTS(!freqs_hz.empty(), "need at least one frequency");
  const std::size_t src = find_source(ckt, source_name);

  AcResult out;
  out.frequency_hz = freqs_hz;
  out.transfer.reserve(freqs_hz.size());
  for (double f : freqs_hz) {
    CNTI_EXPECTS(f >= 0, "negative frequency");
    const auto x = solve_at(ckt, 2.0 * M_PI * f, src);
    const complex<double> v =
        (observe == 0)
            ? complex<double>(0.0, 0.0)
            : x[static_cast<std::size_t>(observe - 1)];
    out.transfer.push_back(v);
  }
  return out;
}

std::vector<double> log_frequency_grid(double f_start_hz, double f_stop_hz,
                                       int points_per_decade) {
  CNTI_EXPECTS(std::isfinite(f_start_hz) && std::isfinite(f_stop_hz),
               "frequency endpoints must be finite");
  CNTI_EXPECTS(f_start_hz > 0 && f_stop_hz >= f_start_hz,
               "invalid frequency range");
  CNTI_EXPECTS(points_per_decade >= 1, "need >= 1 point per decade");
  if (f_stop_hz == f_start_hz) return {f_start_hz};  // degenerate grid
  std::vector<double> out;
  const double decades = std::log10(f_stop_hz / f_start_hz);
  const int n = std::max(
      1, static_cast<int>(std::ceil(decades * points_per_decade)));
  for (int i = 0; i < n; ++i) {
    out.push_back(f_start_hz * std::pow(10.0, decades * i / n));
  }
  // pow() roundoff must not leave the last point short of (or past) the
  // requested stop frequency: pin it exactly, dropping any interior point
  // that rounding pushed up to it, so the grid stays strictly increasing.
  while (!out.empty() && out.back() >= f_stop_hz) out.pop_back();
  out.push_back(f_stop_hz);
  return out;
}

double bandwidth_3db(const AcResult& result) {
  CNTI_EXPECTS(result.transfer.size() >= 2, "need a swept response");
  const double dc = std::abs(result.transfer.front());
  CNTI_EXPECTS(dc > 0, "zero DC response");
  const double target = dc / std::sqrt(2.0);
  for (std::size_t i = 1; i < result.transfer.size(); ++i) {
    const double m0 = std::abs(result.transfer[i - 1]);
    const double m1 = std::abs(result.transfer[i]);
    if (m0 >= target && m1 < target) {
      // Log-linear interpolation between grid points.
      const double f0 = result.frequency_hz[i - 1];
      const double f1 = result.frequency_hz[i];
      const double t = (m0 - target) / (m0 - m1);
      return f0 * std::pow(f1 / f0, t);
    }
  }
  return -1.0;
}

std::complex<double> input_impedance(const Circuit& ckt,
                                     const std::string& source_name,
                                     double frequency_hz) {
  CNTI_EXPECTS(ckt.mosfets().empty(),
               "AC analysis supports linear circuits only");
  const std::size_t src = find_source(ckt, source_name);
  const auto x = solve_at(ckt, 2.0 * M_PI * frequency_hz, src);
  const std::complex<double> i_branch =
      x[static_cast<std::size_t>(ckt.node_count()) + src];
  CNTI_EXPECTS(std::abs(i_branch) > 1e-30, "source sees an open circuit");
  // Branch current flows from + through the source; Zin = V / (-I).
  return -1.0 / i_branch;
}

}  // namespace cnti::circuit
