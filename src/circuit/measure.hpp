// Waveform measurements: propagation delay, rise/fall times, slew,
// overshoot and switching energy — the quantities the paper's Fig. 12
// delay-ratio benchmark reports.
#pragma once

#include "circuit/mna.hpp"
#include "numerics/interp.hpp"

namespace cnti::circuit {

/// 50% propagation delay between an input and output crossing; `rising_in`
/// selects the input edge, the output edge direction is found automatically
/// from the output's initial/final levels around the event. Returns < 0
/// when either crossing is missing.
double propagation_delay(const TransientResult& res, NodeId input,
                         NodeId output, double v_mid_in, double v_mid_out,
                         bool rising_in, double t_start = 0.0);

/// Average of the rising- and falling-edge propagation delays of an
/// inverting or non-inverting stage driven by a full pulse.
/// `t_second_edge` must lie between the two input edges.
double average_propagation_delay(const TransientResult& res, NodeId input,
                                 NodeId output, double v_mid,
                                 double t_second_edge);

/// 10%-90% rise time of the first rising excursion after t_start.
double rise_time(const TransientResult& res, NodeId node, double v_low,
                 double v_high, double t_start = 0.0);

/// 90%-10% fall time of the first falling excursion after t_start.
double fall_time(const TransientResult& res, NodeId node, double v_low,
                 double v_high, double t_start = 0.0);

/// Peak voltage on a node within [t_start, end].
double peak_voltage(const TransientResult& res, NodeId node,
                    double t_start = 0.0);

}  // namespace cnti::circuit
