// Source waveforms for the MNA engine: DC, pulse (SPICE PULSE semantics),
// piecewise-linear and sine.
#pragma once

#include <cmath>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace cnti::circuit {

struct DcWave {
  double value = 0.0;
};

/// SPICE PULSE(v1 v2 td tr tf pw per).
struct PulseWave {
  double v1 = 0.0;
  double v2 = 1.0;
  double delay_s = 0.0;
  double rise_s = 10e-12;
  double fall_s = 10e-12;
  double width_s = 1e-9;
  double period_s = 2e-9;
};

/// Piecewise-linear (time, value) points; clamps outside the range.
struct PwlWave {
  std::vector<std::pair<double, double>> points;
};

struct SineWave {
  double offset = 0.0;
  double amplitude = 1.0;
  double frequency_hz = 1e9;
  double delay_s = 0.0;
};

using Waveform = std::variant<DcWave, PulseWave, PwlWave, SineWave>;

/// Value of the waveform at time t (t < 0 treated as t = 0).
double waveform_value(const Waveform& w, double time_s);

}  // namespace cnti::circuit
