// Circuit netlist container: named nodes, passive elements, sources and
// level-1 MOSFETs. The MNA engine consumes this read-only.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/waveform.hpp"
#include "common/error.hpp"

namespace cnti::circuit {

/// Node index; 0 is ground ("0" / "gnd").
using NodeId = int;

/// Level-1 (square-law) MOSFET parameters, adequate for the paper's 45 nm
/// inverter delay benchmarking (drive calibrated to 45 nm-class currents).
struct MosfetParams {
  bool is_pmos = false;
  double vt_v = 0.3;          ///< Threshold (negative for PMOS).
  double kp_a_per_v2 = 450e-6;  ///< Process transconductance u Cox.
  double width_m = 90e-9;
  double length_m = 45e-9;
  double lambda_per_v = 0.1;  ///< Channel-length modulation.
  double cgs_f = 0.03e-15;
  double cgd_f = 0.02e-15;

  double beta() const { return kp_a_per_v2 * width_m / length_m; }
};

struct Resistor {
  std::string name;
  NodeId a = 0, b = 0;
  double ohms = 0.0;
};

struct Capacitor {
  std::string name;
  NodeId a = 0, b = 0;
  double farads = 0.0;
};

struct Inductor {
  std::string name;
  NodeId a = 0, b = 0;
  double henries = 0.0;
};

struct VoltageSource {
  std::string name;
  NodeId plus = 0, minus = 0;
  Waveform wave;
};

struct CurrentSource {
  std::string name;
  NodeId plus = 0, minus = 0;  ///< Current flows plus -> minus inside.
  Waveform wave;
};

struct Mosfet {
  std::string name;
  NodeId drain = 0, gate = 0, source = 0;
  MosfetParams params;
};

/// Mutable netlist builder with value-semantics storage.
class Circuit {
 public:
  Circuit() { node_ids_["0"] = 0; node_ids_["gnd"] = 0; }

  /// Returns the id for a named node, creating it if unseen.
  NodeId node(const std::string& name);

  /// Number of non-ground nodes.
  int node_count() const { return next_id_ - 1; }

  const std::string& node_name(NodeId id) const;

  void add_resistor(const std::string& name, NodeId a, NodeId b, double ohms);
  void add_capacitor(const std::string& name, NodeId a, NodeId b,
                     double farads);
  void add_inductor(const std::string& name, NodeId a, NodeId b,
                    double henries);
  void add_vsource(const std::string& name, NodeId plus, NodeId minus,
                   Waveform wave);
  void add_isource(const std::string& name, NodeId plus, NodeId minus,
                   Waveform wave);
  void add_mosfet(const std::string& name, NodeId drain, NodeId gate,
                  NodeId source, const MosfetParams& params);

  /// Replaces the waveform of an existing voltage source (DC sweeps,
  /// stimulus re-targeting).
  void set_vsource_wave(std::size_t index, Waveform wave);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<VoltageSource>& vsources() const { return vsources_; }
  const std::vector<CurrentSource>& isources() const { return isources_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }

  std::size_t element_count() const {
    return resistors_.size() + capacitors_.size() + inductors_.size() +
           vsources_.size() + isources_.size() + mosfets_.size();
  }

 private:
  std::map<std::string, NodeId> node_ids_;
  std::vector<std::string> node_names_ = {"0"};
  NodeId next_id_ = 1;

  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<VoltageSource> vsources_;
  std::vector<CurrentSource> isources_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace cnti::circuit
