#include "circuit/mna.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "numerics/ordering.hpp"
#include "numerics/sparse.hpp"
#include "numerics/sparse_lu.hpp"

namespace cnti::circuit {

namespace {

using numerics::CsrAssembler;
using numerics::LuFactorization;
using numerics::MatrixD;
using numerics::SparseLu;

/// Always-on conductance from every node to ground; keeps matrices
/// non-singular with floating gates/capacitive nodes.
constexpr double kGminFloor = 1e-12;

/// Linearized MOSFET at an operating point: channel current drain->source
/// and its derivatives w.r.t. the three terminal voltages.
struct MosLin {
  double ids = 0.0;
  double d_vd = 0.0;
  double d_vg = 0.0;
  double d_vs = 0.0;
};

/// Square-law NMOS with vds >= 0 (caller handles swapping/mirroring):
/// returns {ids, gm, gds}.
struct SquareLaw {
  double ids = 0.0, gm = 0.0, gds = 0.0;
};

SquareLaw nmos_square_law(double vgs, double vds, double vt, double beta,
                          double lambda) {
  SquareLaw out;
  const double vov = vgs - vt;
  if (vov <= 0.0) {
    return out;  // cutoff (gmin floor supplies leakage conductance)
  }
  const double clm = 1.0 + lambda * vds;
  if (vds < vov) {  // triode
    out.ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
    out.gm = beta * vds * clm;
    out.gds = beta * ((vov - vds) * clm +
                      lambda * (vov * vds - 0.5 * vds * vds));
  } else {  // saturation
    out.ids = 0.5 * beta * vov * vov * clm;
    out.gm = beta * vov * clm;
    out.gds = 0.5 * beta * vov * vov * lambda;
  }
  return out;
}

MosLin eval_mosfet(const MosfetParams& p, double vd, double vg, double vs) {
  // PMOS mirrors to NMOS in negated coordinates:
  // ids_p(vd,vg,vs) = -ids_n(-vd,-vg,-vs) with vt_n = |vt_p|; by the chain
  // rule the derivatives transfer with unchanged sign.
  if (p.is_pmos) {
    MosfetParams n = p;
    n.is_pmos = false;
    n.vt_v = std::abs(p.vt_v);
    const MosLin m = eval_mosfet(n, -vd, -vg, -vs);
    return {-m.ids, m.d_vd, m.d_vg, m.d_vs};
  }
  // Symmetric device: swap drain/source when vds < 0.
  if (vd < vs) {
    const MosLin m = eval_mosfet(p, vs, vg, vd);
    return {-m.ids, -m.d_vs, -m.d_vg, -m.d_vd};
  }
  const SquareLaw sq = nmos_square_law(vg - vs, vd - vs, p.vt_v, p.beta(),
                                       p.lambda_per_v);
  return {sq.ids, sq.gds, sq.gm, -(sq.gm + sq.gds)};
}

/// Index map: unknowns are node voltages 1..N, then vsource branch
/// currents, then inductor branch currents.
struct Layout {
  int nodes = 0;
  int vsrc_offset = 0;
  int ind_offset = 0;
  int size = 0;

  explicit Layout(const Circuit& ckt) {
    nodes = ckt.node_count();
    vsrc_offset = nodes;
    ind_offset = vsrc_offset + static_cast<int>(ckt.vsources().size());
    size = ind_offset + static_cast<int>(ckt.inductors().size());
  }

  /// Row/column of a node voltage, or -1 for ground.
  static int nv(NodeId n) { return n - 1; }
};

/// Dense linear backend: stamps into a MatrixD and factorizes from scratch
/// on every solve (the historical engine; kept as the sparse path's oracle).
class DenseBackend {
 public:
  explicit DenseBackend(int size) : n_(static_cast<std::size_t>(size)) {}

  void begin() { a_ = MatrixD(n_, n_); }
  void add(int r, int c, double v) {
    a_(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) += v;
  }
  void end() {}

  std::vector<double> solve(const std::vector<double>& b) const {
    return LuFactorization<double>(a_).solve(b);
  }

 private:
  std::size_t n_;
  MatrixD a_;
};

/// Sparse linear backend: the stamp stream freezes a CSR pattern on the
/// first assembly (stamp-slot replay afterwards) and the SparseLu reuses
/// its symbolic analysis across every subsequent factorization. With
/// OrderingKind::kAmd an approximate-minimum-degree column pre-permutation
/// is computed from the frozen pattern before the first factorization —
/// once per topology, like the symbolic analysis it feeds.
class SparseBackend {
 public:
  explicit SparseBackend(int size,
                         OrderingKind ordering = OrderingKind::kAmd,
                         FactorKind factor = FactorKind::kAuto)
      : assembler_(static_cast<std::size_t>(size)), ordering_(ordering) {
    switch (factor) {
      case FactorKind::kScalar:
        lu_.set_factor_mode(numerics::FactorMode::kScalar);
        break;
      case FactorKind::kSupernodal:
        lu_.set_factor_mode(numerics::FactorMode::kSupernodal);
        break;
      case FactorKind::kAuto:
        lu_.set_factor_mode(numerics::FactorMode::kAuto);
        break;
    }
  }

  void begin() { assembler_.begin(); }
  void add(int r, int c, double v) {
    assembler_.add(static_cast<std::size_t>(r), static_cast<std::size_t>(c),
                   v);
  }
  void end() { assembler_.end(); }

  std::vector<double> solve(const std::vector<double>& b) {
    if (ordering_ == OrderingKind::kAmd && !ordered_) {
      // The pattern is frozen by the first end(); the stamp stream cannot
      // diverge afterwards, so the ordering holds for the backend's life.
      lu_.set_column_ordering(numerics::amd_ordering(assembler_.matrix()));
      ordered_ = true;
    }
    lu_.factorize(assembler_.matrix());
    return lu_.solve(b);
  }

 private:
  CsrAssembler assembler_;
  SparseLu lu_;
  OrderingKind ordering_;
  bool ordered_ = false;
};

/// Backend-generic stamp helpers that skip the ground row/column.
template <typename Backend>
void stamp_g(Backend& a, NodeId i, NodeId j, double g) {
  const int ri = Layout::nv(i), rj = Layout::nv(j);
  if (ri >= 0) a.add(ri, ri, g);
  if (rj >= 0) a.add(rj, rj, g);
  if (ri >= 0 && rj >= 0) {
    a.add(ri, rj, -g);
    a.add(rj, ri, -g);
  }
}

template <typename Backend>
void stamp_entry(Backend& a, int row, int col, double v) {
  if (row >= 0 && col >= 0) a.add(row, col, v);
}

void stamp_rhs(std::vector<double>& b, int row, double v) {
  if (row >= 0) b[static_cast<std::size_t>(row)] += v;
}

/// Resolves kAuto against the system size.
bool use_sparse(const MnaOptions& mna, int size) {
  switch (mna.solver) {
    case SolverKind::kDense:
      return false;
    case SolverKind::kSparse:
      return true;
    case SolverKind::kAuto:
      return size >= mna.sparse_threshold;
  }
  return false;
}

/// Shared nonlinear-system assembly for DC and one transient step.
class Assembler {
 public:
  Assembler(const Circuit& ckt, const Layout& layout)
      : ckt_(ckt), layout_(layout) {}

  /// Assemble Jacobian and rhs at candidate solution x into `backend`.
  /// `companion` adds reactive-element companion stamps (transient only).
  /// The stamp stream below is a fixed sequence for a fixed circuit — the
  /// sparse backend's pattern-frozen replay depends on that.
  template <typename Backend, typename CompanionFn>
  void assemble(const std::vector<double>& x, double time_s, double gmin,
                Backend& a, std::vector<double>& b,
                const CompanionFn& companion) const {
    a.begin();
    b.assign(static_cast<std::size_t>(layout_.size), 0.0);

    for (int n = 1; n <= layout_.nodes; ++n) {
      a.add(n - 1, n - 1, gmin + kGminFloor);
    }
    for (const auto& r : ckt_.resistors()) {
      stamp_g(a, r.a, r.b, 1.0 / r.ohms);
    }
    for (std::size_t k = 0; k < ckt_.vsources().size(); ++k) {
      const auto& v = ckt_.vsources()[k];
      const int br = layout_.vsrc_offset + static_cast<int>(k);
      stamp_entry(a, Layout::nv(v.plus), br, 1.0);
      stamp_entry(a, Layout::nv(v.minus), br, -1.0);
      stamp_entry(a, br, Layout::nv(v.plus), 1.0);
      stamp_entry(a, br, Layout::nv(v.minus), -1.0);
      stamp_rhs(b, br, waveform_value(v.wave, time_s));
    }
    for (const auto& i : ckt_.isources()) {
      const double val = waveform_value(i.wave, time_s);
      stamp_rhs(b, Layout::nv(i.plus), -val);
      stamp_rhs(b, Layout::nv(i.minus), val);
    }
    for (const auto& m : ckt_.mosfets()) {
      const double vd = voltage(x, m.drain);
      const double vg = voltage(x, m.gate);
      const double vs = voltage(x, m.source);
      const MosLin lin = eval_mosfet(m.params, vd, vg, vs);
      // Current enters drain, leaves source. Norton form:
      // i(v) ~ i0 + sum dv_k * (v_k - v_k0). All four conductance stamps
      // are issued even in cutoff (value 0) so the pattern is region-free.
      const double i0 =
          lin.ids - lin.d_vd * vd - lin.d_vg * vg - lin.d_vs * vs;
      const int rd = Layout::nv(m.drain), rs = Layout::nv(m.source);
      stamp_entry(a, rd, Layout::nv(m.drain), lin.d_vd);
      stamp_entry(a, rd, Layout::nv(m.gate), lin.d_vg);
      stamp_entry(a, rd, Layout::nv(m.source), lin.d_vs);
      stamp_entry(a, rs, Layout::nv(m.drain), -lin.d_vd);
      stamp_entry(a, rs, Layout::nv(m.gate), -lin.d_vg);
      stamp_entry(a, rs, Layout::nv(m.source), -lin.d_vs);
      stamp_rhs(b, rd, -i0);
      stamp_rhs(b, rs, i0);
    }
    companion(a, b);
    a.end();
  }

  static double voltage(const std::vector<double>& x, NodeId n) {
    return n == 0 ? 0.0 : x[static_cast<std::size_t>(n - 1)];
  }

  /// Newton iteration until the update norm drops below tolerance. The
  /// backend persists across iterations (and across calls for one
  /// simulation), so symbolic reuse carries over timesteps.
  template <typename Backend, typename CompanionFn>
  std::vector<double> newton(Backend& backend, std::vector<double> x,
                             double time_s, double gmin, int max_iter,
                             double tol, const CompanionFn& companion,
                             int* iterations_out = nullptr) const {
    std::vector<double> b;
    for (int it = 0; it < max_iter; ++it) {
      assemble(x, time_s, gmin, backend, b, companion);
      const std::vector<double> x_new = backend.solve(b);
      double delta = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        delta = std::max(delta, std::abs(x_new[i] - x[i]));
      }
      x = x_new;
      if (delta < tol) {
        if (iterations_out) *iterations_out = it + 1;
        return x;
      }
    }
    throw NumericalError("MNA Newton iteration did not converge");
  }

 private:
  const Circuit& ckt_;
  const Layout& layout_;
};

template <typename Backend>
DcResult solve_dc_with(Backend& backend, const Circuit& ckt,
                       const Layout& layout, double time_s) {
  const Assembler assembler(ckt, layout);

  // DC: capacitors open; inductors are 0 V branches so their currents are
  // well-defined. Stamp inductors like voltage sources with value 0.
  const auto companion = [&](auto& a, std::vector<double>& b) {
    (void)b;
    for (std::size_t k = 0; k < ckt.inductors().size(); ++k) {
      const auto& l = ckt.inductors()[k];
      const int br = layout.ind_offset + static_cast<int>(k);
      stamp_entry(a, Layout::nv(l.a), br, 1.0);
      stamp_entry(a, Layout::nv(l.b), br, -1.0);
      stamp_entry(a, br, Layout::nv(l.a), 1.0);
      stamp_entry(a, br, Layout::nv(l.b), -1.0);
    }
  };

  // g_min stepping: solve with a strong shunt first, then relax. The
  // previous solution seeds the next Newton run.
  std::vector<double> x(static_cast<std::size_t>(layout.size), 0.0);
  int total_iters = 0;
  for (const double gmin : {1e-3, 1e-6, 1e-9, 0.0}) {
    int iters = 0;
    x = assembler.newton(backend, std::move(x), time_s, gmin, 200, 1e-12,
                         companion, &iters);
    total_iters += iters;
  }

  DcResult out;
  out.newton_iterations = total_iters;
  out.node_voltages.assign(static_cast<std::size_t>(layout.nodes) + 1, 0.0);
  for (int n = 1; n <= layout.nodes; ++n) {
    out.node_voltages[static_cast<std::size_t>(n)] =
        x[static_cast<std::size_t>(n - 1)];
  }
  for (std::size_t k = 0; k < ckt.vsources().size(); ++k) {
    out.vsource_currents.push_back(
        x[static_cast<std::size_t>(layout.vsrc_offset) + k]);
  }
  for (std::size_t k = 0; k < ckt.inductors().size(); ++k) {
    out.inductor_currents.push_back(
        x[static_cast<std::size_t>(layout.ind_offset) + k]);
  }
  return out;
}

template <typename Backend>
TransientResult simulate_transient_with(Backend& backend, const Circuit& ckt,
                                        const Layout& layout,
                                        const TransientOptions& opt) {
  const Assembler assembler(ckt, layout);
  const double dt = opt.dt_s;
  const bool trap = opt.integrator == Integrator::kTrapezoidal;

  // Initial condition: DC operating point at t = 0 (its companion pattern
  // differs from the transient one, so it runs on its own backend).
  const DcResult dc = solve_dc(ckt, 0.0, opt.mna);
  std::vector<double> x(static_cast<std::size_t>(layout.size), 0.0);
  for (int n = 1; n <= layout.nodes; ++n) {
    x[static_cast<std::size_t>(n - 1)] =
        dc.node_voltages[static_cast<std::size_t>(n)];
  }
  for (std::size_t k = 0; k < ckt.inductors().size(); ++k) {
    x[static_cast<std::size_t>(layout.ind_offset) + k] =
        dc.inductor_currents[k];
  }

  // Reactive-element history.
  std::vector<double> cap_v_prev(ckt.capacitors().size(), 0.0);
  std::vector<double> cap_i_prev(ckt.capacitors().size(), 0.0);
  std::vector<double> ind_i_prev(ckt.inductors().size(), 0.0);
  std::vector<double> ind_v_prev(ckt.inductors().size(), 0.0);
  for (std::size_t k = 0; k < ckt.capacitors().size(); ++k) {
    const auto& c = ckt.capacitors()[k];
    cap_v_prev[k] = Assembler::voltage(x, c.a) - Assembler::voltage(x, c.b);
    cap_i_prev[k] = 0.0;  // DC steady state
  }
  for (std::size_t k = 0; k < ckt.inductors().size(); ++k) {
    ind_i_prev[k] = dc.inductor_currents[k];
    ind_v_prev[k] = 0.0;
  }

  const auto companion = [&](auto& a, std::vector<double>& b) {
    for (std::size_t k = 0; k < ckt.capacitors().size(); ++k) {
      const auto& c = ckt.capacitors()[k];
      const double geq = (trap ? 2.0 : 1.0) * c.farads / dt;
      const double ieq =
          trap ? geq * cap_v_prev[k] + cap_i_prev[k] : geq * cap_v_prev[k];
      stamp_g(a, c.a, c.b, geq);
      stamp_rhs(b, Layout::nv(c.a), ieq);
      stamp_rhs(b, Layout::nv(c.b), -ieq);
    }
    for (std::size_t k = 0; k < ckt.inductors().size(); ++k) {
      const auto& l = ckt.inductors()[k];
      const int br = layout.ind_offset + static_cast<int>(k);
      const double req = (trap ? 2.0 : 1.0) * l.henries / dt;
      const double veq = trap ? -req * ind_i_prev[k] - ind_v_prev[k]
                              : -req * ind_i_prev[k];
      // Branch row: v_a - v_b - req * i = veq.
      stamp_entry(a, Layout::nv(l.a), br, 1.0);
      stamp_entry(a, Layout::nv(l.b), br, -1.0);
      stamp_entry(a, br, Layout::nv(l.a), 1.0);
      stamp_entry(a, br, Layout::nv(l.b), -1.0);
      stamp_entry(a, br, br, -req);
      stamp_rhs(b, br, veq);
    }
  };

  // Tolerate floating-point slop in t_stop/dt so exact divisions do not
  // gain a spurious extra step.
  const auto steps = static_cast<std::size_t>(
      std::ceil(opt.t_stop_s / dt - 1e-9)) + 1;
  std::vector<double> time(steps);
  std::vector<std::vector<double>> volt(
      static_cast<std::size_t>(layout.nodes) + 1,
      std::vector<double>(steps, 0.0));
  const auto record = [&](std::size_t step, double t) {
    time[step] = t;
    for (int n = 1; n <= layout.nodes; ++n) {
      volt[static_cast<std::size_t>(n)][step] =
          x[static_cast<std::size_t>(n - 1)];
    }
  };
  record(0, 0.0);

  for (std::size_t step = 1; step < steps; ++step) {
    const double t = static_cast<double>(step) * dt;
    x = assembler.newton(backend, std::move(x), t, 0.0,
                         opt.max_newton_iterations, opt.newton_tolerance,
                         companion);
    // Update element history.
    for (std::size_t k = 0; k < ckt.capacitors().size(); ++k) {
      const auto& c = ckt.capacitors()[k];
      const double v =
          Assembler::voltage(x, c.a) - Assembler::voltage(x, c.b);
      const double geq = (trap ? 2.0 : 1.0) * c.farads / dt;
      const double i = trap ? geq * (v - cap_v_prev[k]) - cap_i_prev[k]
                            : geq * (v - cap_v_prev[k]);
      cap_v_prev[k] = v;
      cap_i_prev[k] = i;
    }
    for (std::size_t k = 0; k < ckt.inductors().size(); ++k) {
      const auto& l = ckt.inductors()[k];
      ind_i_prev[k] = x[static_cast<std::size_t>(layout.ind_offset) + k];
      ind_v_prev[k] =
          Assembler::voltage(x, l.a) - Assembler::voltage(x, l.b);
    }
    record(step, t);
  }

  return TransientResult(std::move(time), std::move(volt));
}

}  // namespace

struct DcSolver::Impl {
  const Circuit& ckt;
  Layout layout;
  // Exactly one backend is engaged; it survives across solve() calls so
  // the sparse symbolic analysis is paid once per circuit topology.
  std::optional<DenseBackend> dense;
  std::optional<SparseBackend> sparse;
};

DcSolver::DcSolver(const Circuit& ckt, const MnaOptions& mna)
    : impl_(std::make_unique<Impl>(Impl{ckt, Layout(ckt), {}, {}})) {
  if (use_sparse(mna, impl_->layout.size)) {
    impl_->sparse.emplace(impl_->layout.size, mna.ordering, mna.factor);
  } else {
    impl_->dense.emplace(impl_->layout.size);
  }
}

DcSolver::~DcSolver() = default;
DcSolver::DcSolver(DcSolver&&) noexcept = default;
DcSolver& DcSolver::operator=(DcSolver&&) noexcept = default;

DcResult DcSolver::solve(double time_s) {
  if (impl_->sparse) {
    return solve_dc_with(*impl_->sparse, impl_->ckt, impl_->layout, time_s);
  }
  return solve_dc_with(*impl_->dense, impl_->ckt, impl_->layout, time_s);
}

DcResult solve_dc(const Circuit& ckt, double time_s, const MnaOptions& mna) {
  return DcSolver(ckt, mna).solve(time_s);
}

TransientResult simulate_transient(const Circuit& ckt,
                                   const TransientOptions& opt) {
  CNTI_EXPECTS(opt.t_stop_s > 0, "t_stop must be positive");
  CNTI_EXPECTS(opt.dt_s > 0 && opt.dt_s < opt.t_stop_s,
               "dt must be positive and below t_stop");
  const Layout layout(ckt);
  if (use_sparse(opt.mna, layout.size)) {
    SparseBackend backend(layout.size, opt.mna.ordering, opt.mna.factor);
    return simulate_transient_with(backend, ckt, layout, opt);
  }
  DenseBackend backend(layout.size);
  return simulate_transient_with(backend, ckt, layout, opt);
}

}  // namespace cnti::circuit
