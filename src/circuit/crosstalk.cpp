#include "circuit/crosstalk.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "numerics/interp.hpp"

namespace cnti::circuit {

CrosstalkResult analyze_crosstalk(const CrosstalkConfig& cfg,
                                  int time_steps) {
  CNTI_EXPECTS(cfg.segments >= 2, "need at least two segments");
  CNTI_EXPECTS(cfg.length_m > 0, "length must be positive");
  CNTI_EXPECTS(cfg.coupling_cap_per_m >= 0, "coupling must be >= 0");

  Circuit ckt;
  const NodeId agg_in = ckt.node("agg_in");
  const NodeId vic_far = ckt.node("vic_far");
  const NodeId agg_far = ckt.node("agg_far");
  const NodeId agg_drv = ckt.node("agg_drv");
  const NodeId vic_drv = ckt.node("vic_drv");

  // Aggressor: pulse source behind its driver resistance.
  PulseWave pulse;
  pulse.v1 = 0.0;
  pulse.v2 = cfg.vdd_v;
  pulse.delay_s = 5.0 * cfg.edge_time_s;
  pulse.rise_s = cfg.edge_time_s;
  pulse.fall_s = cfg.edge_time_s;
  pulse.width_s = 1.0;  // single edge within the window
  pulse.period_s = 2.0;
  ckt.add_vsource("vagg", agg_in, 0, pulse);
  ckt.add_resistor("ragg", agg_in, agg_drv, cfg.aggressor_driver_ohm);
  // Victim: held at ground through its driver.
  ckt.add_resistor("rvic", 0, vic_drv, cfg.victim_driver_ohm);

  // Build the two ladders with per-node coupling.
  const auto seg_v =
      core::discretize_line(cfg.victim, cfg.length_m, cfg.segments);
  const auto seg_a =
      core::discretize_line(cfg.aggressor, cfg.length_m, cfg.segments);
  const double cc_per_seg =
      cfg.coupling_cap_per_m * cfg.length_m / cfg.segments;
  const double rv_end = cfg.victim.series_resistance_ohm / 2.0;
  const double ra_end = cfg.aggressor.series_resistance_ohm / 2.0;

  NodeId v_prev = vic_drv, a_prev = agg_drv;
  if (rv_end > 0) {
    const NodeId n = ckt.node("v_c1");
    ckt.add_resistor("rvc1", v_prev, n, rv_end);
    v_prev = n;
  }
  if (ra_end > 0) {
    const NodeId n = ckt.node("a_c1");
    ckt.add_resistor("rac1", a_prev, n, ra_end);
    a_prev = n;
  }
  for (int s = 0; s < cfg.segments; ++s) {
    const std::string is = std::to_string(s);
    const NodeId vn = ckt.node("v" + is);
    const NodeId an = ckt.node("a" + is);
    ckt.add_resistor("rv" + is, v_prev, vn,
                     seg_v[static_cast<std::size_t>(s)].resistance_ohm);
    ckt.add_resistor("ra" + is, a_prev, an,
                     seg_a[static_cast<std::size_t>(s)].resistance_ohm);
    const double cv = seg_v[static_cast<std::size_t>(s)].capacitance_f;
    const double ca = seg_a[static_cast<std::size_t>(s)].capacitance_f;
    ckt.add_capacitor("cv" + is, vn, 0, cv);
    ckt.add_capacitor("ca" + is, an, 0, ca);
    if (cc_per_seg > 0) {
      ckt.add_capacitor("cc" + is, vn, an, cc_per_seg);
    }
    v_prev = vn;
    a_prev = an;
  }
  if (rv_end > 0) {
    ckt.add_resistor("rvc2", v_prev, vic_far, rv_end);
  } else {
    ckt.add_resistor("rvc2", v_prev, vic_far, 1.0);
  }
  if (ra_end > 0) {
    ckt.add_resistor("rac2", a_prev, agg_far, ra_end);
  } else {
    ckt.add_resistor("rac2", a_prev, agg_far, 1.0);
  }
  // Receiver loads.
  ckt.add_capacitor("clv", vic_far, 0, 0.2e-15);
  ckt.add_capacitor("cla", agg_far, 0, 0.2e-15);

  // Simulation window: enough for the aggressor edge to settle.
  const double tau =
      (cfg.aggressor_driver_ohm +
       cfg.aggressor.series_resistance_ohm +
       cfg.aggressor.resistance_per_m * cfg.length_m) *
      (cfg.aggressor.capacitance_per_m +
       cfg.coupling_cap_per_m) * cfg.length_m;
  TransientOptions opt;
  opt.t_stop_s = std::max(20.0 * cfg.edge_time_s, 12.0 * tau);
  opt.dt_s = opt.t_stop_s / time_steps;
  const TransientResult res = simulate_transient(ckt, opt);

  CrosstalkResult out;
  const auto& t = res.time();
  const auto& vn = res.voltage(vic_far);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (std::abs(vn[i]) > std::abs(out.peak_noise_v)) {
      out.peak_noise_v = vn[i];
      out.peak_time_s = t[i];
    }
  }
  out.aggressor_delay_s = numerics::first_crossing_time(
      t, res.voltage(agg_far), cfg.vdd_v / 2.0, /*rising=*/true);
  return out;
}

}  // namespace cnti::circuit
