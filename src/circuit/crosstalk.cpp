#include "circuit/crosstalk.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "numerics/interp.hpp"

namespace cnti::circuit {

namespace {

/// Receiver input load terminating every line's far end [F].
constexpr double kReceiverLoadF = 0.2e-15;

/// Simulation window long enough for the aggressor edge to settle:
/// 12 time constants of the total drive resistance into the total line
/// (+ coupling) capacitance, floored at 20 edge times. The single source
/// of the window policy — the pair analysis, the bus analysis and the ROM
/// layer (via bus_settle_time_s) must all stay on the same grid.
double settle_time_s(double r_total_ohm, double c_total_f,
                     double edge_time_s) {
  return std::max(20.0 * edge_time_s, 12.0 * r_total_ohm * c_total_f);
}

TransientOptions settle_window(double r_total_ohm, double c_total_f,
                               double edge_time_s, int time_steps,
                               const MnaOptions& mna) {
  TransientOptions opt;
  opt.t_stop_s = settle_time_s(r_total_ohm, c_total_f, edge_time_s);
  opt.dt_s = opt.t_stop_s / time_steps;
  opt.mna = mna;
  return opt;
}

/// first_crossing_time returns -1 when the level is never reached inside
/// the window. A negative "delay" silently poisons downstream statistics
/// (Monte Carlo summaries, CSV reports), so the crosstalk result paths all
/// surface the sentinel as a quiet NaN instead — report writers emit it as
/// null / an empty cell and the statistical layer rejects-and-counts it.
double delay_or_nan(double first_crossing_s) {
  return first_crossing_s < 0.0
             ? std::numeric_limits<double>::quiet_NaN()
             : first_crossing_s;
}

}  // namespace

PulseWave bus_edge_wave(double vdd_v, double edge_time_s) {
  PulseWave pulse;
  pulse.v1 = 0.0;
  pulse.v2 = vdd_v;
  pulse.delay_s = 5.0 * edge_time_s;
  pulse.rise_s = edge_time_s;
  pulse.fall_s = edge_time_s;
  pulse.width_s = 1.0;  // single edge within the window
  pulse.period_s = 2.0;
  return pulse;
}

BusConfig make_bus_config(const BusTopology& topology, const BusDrive& drive) {
  BusConfig cfg;
  cfg.line = topology.line;
  cfg.coupling_cap_per_m = topology.coupling_cap_per_m;
  cfg.length_m = topology.length_m;
  cfg.lines = topology.lines;
  cfg.segments = topology.segments;
  cfg.aggressor = drive.aggressor;
  cfg.driver_ohm = drive.driver_ohm;
  cfg.vdd_v = drive.vdd_v;
  cfg.edge_time_s = drive.edge_time_s;
  cfg.receiver_load_f = drive.receiver_load_f;
  cfg.mna = drive.mna;
  return cfg;
}

double bus_settle_time_s(const BusTopology& topology, const BusDrive& drive) {
  // A middle line sees neighbour coupling on both sides.
  const double r_total = drive.driver_ohm +
                         topology.line.series_resistance_ohm +
                         topology.line.resistance_per_m * topology.length_m;
  // The receiver load hangs off the same drive path, so it belongs in the
  // RC estimate: heavy-load scenarios (load >> line capacitance) would
  // otherwise get a window that ends before the aggressor settles.
  const double c_total =
      (topology.line.capacitance_per_m + 2.0 * topology.coupling_cap_per_m) *
          topology.length_m +
      drive.receiver_load_f;
  return settle_time_s(r_total, c_total, drive.edge_time_s);
}

double bus_settle_time_s(const BusConfig& cfg) {
  return bus_settle_time_s(cfg.topology(), cfg.drive());
}

CrosstalkResult analyze_crosstalk(const CrosstalkConfig& cfg,
                                  int time_steps) {
  CNTI_EXPECTS(cfg.segments >= 2, "need at least two segments");
  CNTI_EXPECTS(cfg.length_m > 0, "length must be positive");
  CNTI_EXPECTS(cfg.coupling_cap_per_m >= 0, "coupling must be >= 0");

  Circuit ckt;
  const NodeId agg_in = ckt.node("agg_in");
  const NodeId vic_far = ckt.node("vic_far");
  const NodeId agg_far = ckt.node("agg_far");
  const NodeId agg_drv = ckt.node("agg_drv");
  const NodeId vic_drv = ckt.node("vic_drv");

  // Aggressor: pulse source behind its driver resistance.
  ckt.add_vsource("vagg", agg_in, 0,
                  bus_edge_wave(cfg.vdd_v, cfg.edge_time_s));
  ckt.add_resistor("ragg", agg_in, agg_drv, cfg.aggressor_driver_ohm);
  // Victim: held at ground through its driver.
  ckt.add_resistor("rvic", 0, vic_drv, cfg.victim_driver_ohm);

  // Build the two ladders with per-node coupling.
  const auto seg_v =
      core::discretize_line(cfg.victim, cfg.length_m, cfg.segments);
  const auto seg_a =
      core::discretize_line(cfg.aggressor, cfg.length_m, cfg.segments);
  const double cc_per_seg =
      cfg.coupling_cap_per_m * cfg.length_m / cfg.segments;
  const double rv_end = cfg.victim.series_resistance_ohm / 2.0;
  const double ra_end = cfg.aggressor.series_resistance_ohm / 2.0;

  NodeId v_prev = vic_drv, a_prev = agg_drv;
  if (rv_end > 0) {
    const NodeId n = ckt.node("v_c1");
    ckt.add_resistor("rvc1", v_prev, n, rv_end);
    v_prev = n;
  }
  if (ra_end > 0) {
    const NodeId n = ckt.node("a_c1");
    ckt.add_resistor("rac1", a_prev, n, ra_end);
    a_prev = n;
  }
  for (int s = 0; s < cfg.segments; ++s) {
    const std::string is = std::to_string(s);
    const NodeId vn = ckt.node("v" + is);
    const NodeId an = ckt.node("a" + is);
    ckt.add_resistor("rv" + is, v_prev, vn,
                     seg_v[static_cast<std::size_t>(s)].resistance_ohm);
    ckt.add_resistor("ra" + is, a_prev, an,
                     seg_a[static_cast<std::size_t>(s)].resistance_ohm);
    const double cv = seg_v[static_cast<std::size_t>(s)].capacitance_f;
    const double ca = seg_a[static_cast<std::size_t>(s)].capacitance_f;
    ckt.add_capacitor("cv" + is, vn, 0, cv);
    ckt.add_capacitor("ca" + is, an, 0, ca);
    if (cc_per_seg > 0) {
      ckt.add_capacitor("cc" + is, vn, an, cc_per_seg);
    }
    v_prev = vn;
    a_prev = an;
  }
  ckt.add_resistor("rvc2", v_prev, vic_far, rv_end > 0 ? rv_end : 1.0);
  ckt.add_resistor("rac2", a_prev, agg_far, ra_end > 0 ? ra_end : 1.0);
  // Receiver loads.
  ckt.add_capacitor("clv", vic_far, 0, kReceiverLoadF);
  ckt.add_capacitor("cla", agg_far, 0, kReceiverLoadF);

  const TransientOptions opt = settle_window(
      cfg.aggressor_driver_ohm + cfg.aggressor.series_resistance_ohm +
          cfg.aggressor.resistance_per_m * cfg.length_m,
      (cfg.aggressor.capacitance_per_m + cfg.coupling_cap_per_m) *
          cfg.length_m,
      cfg.edge_time_s, time_steps, cfg.mna);
  const TransientResult res = simulate_transient(ckt, opt);

  CrosstalkResult out;
  const auto& t = res.time();
  const auto& vn = res.voltage(vic_far);
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (std::abs(vn[i]) > std::abs(out.peak_noise_v)) {
      out.peak_noise_v = vn[i];
      out.peak_time_s = t[i];
    }
  }
  out.aggressor_delay_s = delay_or_nan(numerics::first_crossing_time(
      t, res.voltage(agg_far), cfg.vdd_v / 2.0, /*rising=*/true));
  return out;
}

BusNetlist build_bus_netlist(const BusConfig& cfg) {
  return build_bus_netlist(cfg.topology());
}

BusNetlist build_bus_netlist(const BusTopology& cfg) {
  CNTI_EXPECTS(cfg.lines >= 2, "need at least two lines");
  CNTI_EXPECTS(cfg.segments >= 2, "need at least two segments");
  CNTI_EXPECTS(cfg.length_m > 0, "length must be positive");
  CNTI_EXPECTS(cfg.coupling_cap_per_m >= 0, "coupling must be >= 0");

  BusNetlist out;
  out.topology = cfg;
  Circuit& ckt = out.ckt;
  const std::size_t nl = static_cast<std::size_t>(cfg.lines);

  // Line input terminals (driver attach points).
  std::vector<NodeId> head(nl);
  for (int l = 0; l < cfg.lines; ++l) {
    head[static_cast<std::size_t>(l)] = ckt.node("drv" + std::to_string(l));
  }
  out.head = head;

  const auto segs = core::discretize_line(cfg.line, cfg.length_m,
                                          cfg.segments);
  const double cc_per_seg =
      cfg.coupling_cap_per_m * cfg.length_m / cfg.segments;
  const double r_end = cfg.line.series_resistance_ohm / 2.0;
  if (r_end > 0) {
    for (int l = 0; l < cfg.lines; ++l) {
      const NodeId n = ckt.node("c1_" + std::to_string(l));
      ckt.add_resistor("rc1_" + std::to_string(l),
                       head[static_cast<std::size_t>(l)], n, r_end);
      head[static_cast<std::size_t>(l)] = n;
    }
  }

  // Segment-major node creation keeps neighbour coupling close to the
  // diagonal, so the sparse LU fill stays near-banded (bandwidth ~ lines,
  // not ~ segments).
  for (int s = 0; s < cfg.segments; ++s) {
    std::vector<NodeId> cur(nl);
    const std::string is = std::to_string(s);
    for (int l = 0; l < cfg.lines; ++l) {
      const std::string tag = std::to_string(l) + "_" + is;
      const NodeId n = ckt.node("b" + tag);
      ckt.add_resistor("r" + tag, head[static_cast<std::size_t>(l)], n,
                       segs[static_cast<std::size_t>(s)].resistance_ohm);
      ckt.add_capacitor("c" + tag, n, 0,
                        segs[static_cast<std::size_t>(s)].capacitance_f);
      cur[static_cast<std::size_t>(l)] = n;
    }
    if (cc_per_seg > 0) {
      for (int l = 0; l + 1 < cfg.lines; ++l) {
        ckt.add_capacitor("cc" + std::to_string(l) + "_" + is,
                          cur[static_cast<std::size_t>(l)],
                          cur[static_cast<std::size_t>(l + 1)], cc_per_seg);
      }
    }
    head = cur;
  }

  out.far.resize(nl);
  for (int l = 0; l < cfg.lines; ++l) {
    const NodeId n = ckt.node("far" + std::to_string(l));
    ckt.add_resistor("rc2_" + std::to_string(l),
                     head[static_cast<std::size_t>(l)], n,
                     r_end > 0 ? r_end : 1.0);
    out.far[static_cast<std::size_t>(l)] = n;
  }
  return out;
}

BusCrosstalkResult analyze_bus_crosstalk(BusNetlist bus,
                                         const BusTopology& topology,
                                         const BusDrive& drive,
                                         int time_steps) {
  const int agg =
      drive.aggressor < 0 ? topology.lines / 2 : drive.aggressor;
  CNTI_EXPECTS(agg >= 0 && agg < topology.lines,
               "aggressor index out of range");
  const BusTopology& built = bus.topology;
  CNTI_EXPECTS(built.line.series_resistance_ohm ==
                       topology.line.series_resistance_ohm &&
                   built.line.resistance_per_m ==
                       topology.line.resistance_per_m &&
                   built.line.capacitance_per_m ==
                       topology.line.capacitance_per_m &&
                   built.line.inductance_per_m ==
                       topology.line.inductance_per_m &&
                   built.coupling_cap_per_m == topology.coupling_cap_per_m &&
                   built.length_m == topology.length_m &&
                   built.lines == topology.lines &&
                   built.segments == topology.segments,
               "bare bus netlist was built from a different topology");
  Circuit& ckt = bus.ckt;

  // Aggressor stimulus behind its driver; victims held quiet; receiver
  // loads at every far end.
  const NodeId agg_in = ckt.node("bus_in");
  ckt.add_vsource("vbus", agg_in, 0,
                  bus_edge_wave(drive.vdd_v, drive.edge_time_s));
  for (int l = 0; l < topology.lines; ++l) {
    ckt.add_resistor("rdrv" + std::to_string(l), l == agg ? agg_in : 0,
                     bus.head[static_cast<std::size_t>(l)], drive.driver_ohm);
    ckt.add_capacitor("cl" + std::to_string(l),
                      bus.far[static_cast<std::size_t>(l)], 0,
                      drive.receiver_load_f);
  }
  const std::vector<NodeId>& far = bus.far;

  TransientOptions opt;
  opt.t_stop_s = bus_settle_time_s(topology, drive);
  opt.dt_s = opt.t_stop_s / time_steps;
  opt.mna = drive.mna;
  const TransientResult res = simulate_transient(ckt, opt);

  BusCrosstalkResult out;
  out.unknowns = ckt.node_count() + 1;  // + the aggressor source branch
  // With zero coupling every victim waveform is exactly 0; report the
  // first victim instead of leaving the -1 sentinel in a valid result.
  out.worst_victim = agg == 0 ? 1 : 0;
  const auto& t = res.time();
  for (int l = 0; l < topology.lines; ++l) {
    if (l == agg) continue;
    const auto& vn = res.voltage(far[static_cast<std::size_t>(l)]);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (std::abs(vn[i]) > std::abs(out.peak_noise_v)) {
        out.peak_noise_v = vn[i];
        out.peak_time_s = t[i];
        out.worst_victim = l;
      }
    }
  }
  out.aggressor_delay_s = delay_or_nan(numerics::first_crossing_time(
      t, res.voltage(far[static_cast<std::size_t>(agg)]), drive.vdd_v / 2.0,
      /*rising=*/true));
  return out;
}

BusCrosstalkResult analyze_bus_crosstalk(const BusConfig& cfg,
                                         int time_steps) {
  const BusTopology topology = cfg.topology();
  return analyze_bus_crosstalk(build_bus_netlist(topology), topology,
                               cfg.drive(), time_steps);
}

}  // namespace cnti::circuit
