#include "circuit/measure.hpp"

#include <algorithm>

namespace cnti::circuit {

using numerics::first_crossing_time;

double propagation_delay(const TransientResult& res, NodeId input,
                         NodeId output, double v_mid_in, double v_mid_out,
                         bool rising_in, double t_start) {
  const auto& t = res.time();
  const auto& vin = res.voltage(input);
  const auto& vout = res.voltage(output);
  const double t_in =
      first_crossing_time(t, vin, v_mid_in, rising_in, t_start);
  if (t_in < 0) return -1.0;
  // Try both output edge directions after the input event; take the first.
  const double t_rise = first_crossing_time(t, vout, v_mid_out, true, t_in);
  const double t_fall = first_crossing_time(t, vout, v_mid_out, false, t_in);
  double t_out = -1.0;
  if (t_rise >= 0 && t_fall >= 0) {
    t_out = std::min(t_rise, t_fall);
  } else {
    t_out = std::max(t_rise, t_fall);
  }
  if (t_out < 0) return -1.0;
  return t_out - t_in;
}

double average_propagation_delay(const TransientResult& res, NodeId input,
                                 NodeId output, double v_mid,
                                 double t_second_edge) {
  const double d1 =
      propagation_delay(res, input, output, v_mid, v_mid, true, 0.0);
  const double d2 = propagation_delay(res, input, output, v_mid, v_mid,
                                      false, t_second_edge);
  if (d1 < 0 || d2 < 0) return -1.0;
  return 0.5 * (d1 + d2);
}

double rise_time(const TransientResult& res, NodeId node, double v_low,
                 double v_high, double t_start) {
  const double swing = v_high - v_low;
  const auto& t = res.time();
  const auto& v = res.voltage(node);
  const double t10 =
      first_crossing_time(t, v, v_low + 0.1 * swing, true, t_start);
  if (t10 < 0) return -1.0;
  const double t90 =
      first_crossing_time(t, v, v_low + 0.9 * swing, true, t10);
  if (t90 < 0) return -1.0;
  return t90 - t10;
}

double fall_time(const TransientResult& res, NodeId node, double v_low,
                 double v_high, double t_start) {
  const double swing = v_high - v_low;
  const auto& t = res.time();
  const auto& v = res.voltage(node);
  const double t90 =
      first_crossing_time(t, v, v_high - 0.1 * swing, false, t_start);
  if (t90 < 0) return -1.0;
  const double t10 =
      first_crossing_time(t, v, v_low + 0.1 * swing, false, t90);
  if (t10 < 0) return -1.0;
  return t10 - t90;
}

double peak_voltage(const TransientResult& res, NodeId node,
                    double t_start) {
  const auto& t = res.time();
  const auto& v = res.voltage(node);
  double peak = -1e300;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] >= t_start) peak = std::max(peak, v[i]);
  }
  return peak;
}

}  // namespace cnti::circuit
