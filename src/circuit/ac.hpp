// Small-signal AC analysis (complex MNA): transfer functions, input
// impedance and bandwidth of interconnect networks. This is where the
// CNT-specific kinetic inductance (16 nH/um per channel) becomes visible —
// the time-domain delay benches barely feel it, but the frequency response
// does.
//
// Scope: linear networks (R, C, L, V, I). Circuits containing MOSFETs are
// rejected — linearize them externally first.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace cnti::circuit {

/// Transfer function H(jw) = V(observe) / V(source) over a frequency grid,
/// with every other independent source zeroed.
struct AcResult {
  std::vector<double> frequency_hz;
  std::vector<std::complex<double>> transfer;

  double magnitude_db(std::size_t i) const {
    return 20.0 * std::log10(std::abs(transfer[i]));
  }
  double phase_deg(std::size_t i) const {
    return std::arg(transfer[i]) * 180.0 / M_PI;
  }
};

/// Runs AC analysis driving the named voltage source with unit amplitude.
/// Throws PreconditionError on nonlinear circuits or unknown sources.
AcResult ac_analysis(const Circuit& ckt, const std::string& source_name,
                     NodeId observe, const std::vector<double>& freqs_hz);

/// Logarithmic frequency grid helper [Hz].
std::vector<double> log_frequency_grid(double f_start_hz, double f_stop_hz,
                                       int points_per_decade = 10);

/// -3 dB bandwidth of a low-pass transfer function; returns a negative
/// value when the response never drops 3 dB below its DC value.
double bandwidth_3db(const AcResult& result);

/// Complex input impedance seen by the named source at one frequency.
std::complex<double> input_impedance(const Circuit& ckt,
                                     const std::string& source_name,
                                     double frequency_hz);

}  // namespace cnti::circuit
