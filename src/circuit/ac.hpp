// Small-signal AC analysis (complex MNA): transfer functions, input
// impedance and bandwidth of interconnect networks. This is where the
// CNT-specific kinetic inductance (16 nH/um per channel) becomes visible —
// the time-domain delay benches barely feel it, but the frequency response
// does.
//
// Scope: linear networks (R, C, L, V, I). Circuits containing MOSFETs are
// rejected — linearize them externally first.
#pragma once

#include <cmath>
#include <complex>
#include <limits>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace cnti::circuit {

/// Transfer function H(jw) = V(observe) / V(source) over a frequency grid,
/// with every other independent source zeroed.
struct AcResult {
  std::vector<double> frequency_hz;
  std::vector<std::complex<double>> transfer;

  /// 20 log10 |H|; an identically-zero transfer (grounded observe node,
  /// perfect notch) reads -inf dB rather than tripping log10's domain
  /// error handling.
  double magnitude_db(std::size_t i) const {
    const double magnitude = std::abs(transfer[i]);
    return magnitude > 0.0 ? 20.0 * std::log10(magnitude)
                           : -std::numeric_limits<double>::infinity();
  }
  double phase_deg(std::size_t i) const {
    return std::arg(transfer[i]) * 180.0 / M_PI;
  }
};

/// Runs AC analysis driving the named voltage source with unit amplitude.
/// Throws PreconditionError on nonlinear circuits or unknown sources.
AcResult ac_analysis(const Circuit& ckt, const std::string& source_name,
                     NodeId observe, const std::vector<double>& freqs_hz);

/// Logarithmic frequency grid [Hz]: strictly increasing, with both
/// endpoints hit exactly (no accumulated pow() roundoff on the last
/// point). A degenerate range f_stop == f_start yields the single-point
/// grid {f_start}. Throws PreconditionError on non-finite or non-positive
/// endpoints, f_stop < f_start, or points_per_decade < 1.
std::vector<double> log_frequency_grid(double f_start_hz, double f_stop_hz,
                                       int points_per_decade = 10);

/// -3 dB bandwidth of a low-pass transfer function; returns a negative
/// value when the response never drops 3 dB below its DC value.
double bandwidth_3db(const AcResult& result);

/// Complex input impedance seen by the named source at one frequency.
std::complex<double> input_impedance(const Circuit& ckt,
                                     const std::string& source_name,
                                     double frequency_hz);

}  // namespace cnti::circuit
