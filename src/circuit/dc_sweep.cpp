#include "circuit/dc_sweep.hpp"

#include <cmath>

namespace cnti::circuit {

double DcSweepResult::max_gain() const {
  double g = 0.0;
  for (std::size_t i = 1; i < input_v.size(); ++i) {
    const double dv_in = input_v[i] - input_v[i - 1];
    if (std::abs(dv_in) < 1e-15) continue;
    g = std::max(g, std::abs((output_v[i] - output_v[i - 1]) / dv_in));
  }
  return g;
}

double DcSweepResult::input_at_output(double level) const {
  for (std::size_t i = 1; i < input_v.size(); ++i) {
    const bool crossed =
        (output_v[i - 1] - level) * (output_v[i] - level) <= 0.0 &&
        output_v[i - 1] != output_v[i];
    if (crossed) {
      const double t =
          (level - output_v[i - 1]) / (output_v[i] - output_v[i - 1]);
      return input_v[i - 1] + t * (input_v[i] - input_v[i - 1]);
    }
  }
  return -1.0;
}

DcSweepResult dc_sweep(Circuit ckt, const std::string& source_name,
                       double v_start, double v_stop, int points,
                       NodeId observe, const MnaOptions& mna) {
  CNTI_EXPECTS(points >= 2, "need at least two sweep points");
  // Locate the source; the netlist is copied so we can mutate its wave.
  // (Circuit stores sources by value; we rebuild the wave per step.)
  std::size_t src = ckt.vsources().size();
  for (std::size_t k = 0; k < ckt.vsources().size(); ++k) {
    if (ckt.vsources()[k].name == source_name) src = k;
  }
  CNTI_EXPECTS(src < ckt.vsources().size(),
               "unknown source: " + source_name);
  CNTI_EXPECTS(std::holds_alternative<DcWave>(ckt.vsources()[src].wave),
               "dc_sweep requires a DC source: " + source_name);

  DcSweepResult out;
  out.input_v.reserve(static_cast<std::size_t>(points));
  out.output_v.reserve(static_cast<std::size_t>(points));
  // One solver for the whole sweep: only the source value changes per
  // point, so the sparse backend's pattern and symbolic analysis are
  // computed at the first point and reused for the rest.
  DcSolver solver(ckt, mna);
  for (int i = 0; i < points; ++i) {
    const double v =
        v_start + (v_stop - v_start) * i / (points - 1);
    ckt.set_vsource_wave(src, DcWave{v});
    const DcResult dc = solver.solve();
    out.input_v.push_back(v);
    out.output_v.push_back(
        dc.node_voltages[static_cast<std::size_t>(observe)]);
  }
  return out;
}

}  // namespace cnti::circuit
