// Compressed-sparse-row matrix and a triplet-based builder, used by the TCAD
// field solver and the MNA engine for large linear systems.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace cnti::numerics {

/// CSR matrix of doubles. Immutable once built (build via SparseBuilder).
class SparseMatrix {
 public:
  SparseMatrix() = default;

  SparseMatrix(std::size_t rows, std::size_t cols,
               std::vector<std::size_t> row_ptr, std::vector<std::size_t> col,
               std::vector<double> val)
      : rows_(rows),
        cols_(cols),
        row_ptr_(std::move(row_ptr)),
        col_(std::move(col)),
        val_(std::move(val)) {
    CNTI_EXPECTS(row_ptr_.size() == rows_ + 1, "bad row_ptr length");
    CNTI_EXPECTS(col_.size() == val_.size(), "col/val length mismatch");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }

  /// y = A x.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const {
    CNTI_EXPECTS(x.size() == cols_, "matvec size mismatch");
    y.assign(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      double acc = 0.0;
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        acc += val_[k] * x[col_[k]];
      }
      y[i] = acc;
    }
  }

  std::vector<double> operator*(const std::vector<double>& x) const {
    std::vector<double> y;
    multiply(x, y);
    return y;
  }

  /// Diagonal entries (zero when absent) — Jacobi preconditioner input.
  std::vector<double> diagonal() const {
    std::vector<double> d(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        if (col_[k] == i) d[i] = val_[k];
      }
    }
    return d;
  }

  double at(std::size_t r, std::size_t c) const {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_[k] == c) return val_[k];
    }
    return 0.0;
  }

  /// Raw CSR arrays — consumed by direct solvers (SparseLu) that need the
  /// pattern, and by pattern-frozen assemblers that rewrite values in place.
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_indices() const { return col_; }
  const std::vector<double>& values() const { return val_; }

  /// Mutable numeric values. The sparsity pattern stays immutable; only the
  /// stored coefficients may change (MNA re-stamping, refactorization).
  std::vector<double>& values() { return val_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_;
  std::vector<double> val_;
};

/// Accumulates (row, col, value) triplets; duplicate entries are summed on
/// build (natural for FD/MNA stamping).
class SparseBuilder {
 public:
  SparseBuilder(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {}

  void add(std::size_t r, std::size_t c, double v) {
    CNTI_EXPECTS(r < rows_ && c < cols_, "triplet out of range");
    triplets_.push_back({r, c, v});
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  SparseMatrix build() const {
    std::vector<Triplet> t = triplets_;
    std::sort(t.begin(), t.end(), [](const Triplet& a, const Triplet& b) {
      return a.row != b.row ? a.row < b.row : a.col < b.col;
    });
    std::vector<std::size_t> row_ptr(rows_ + 1, 0);
    std::vector<std::size_t> col;
    std::vector<double> val;
    col.reserve(t.size());
    val.reserve(t.size());
    for (std::size_t i = 0; i < t.size();) {
      std::size_t j = i;
      double acc = 0.0;
      while (j < t.size() && t[j].row == t[i].row && t[j].col == t[i].col) {
        acc += t[j].value;
        ++j;
      }
      col.push_back(t[i].col);
      val.push_back(acc);
      ++row_ptr[t[i].row + 1];
      i = j;
    }
    for (std::size_t r = 0; r < rows_; ++r) row_ptr[r + 1] += row_ptr[r];
    return SparseMatrix(rows_, cols_, std::move(row_ptr), std::move(col),
                        std::move(val));
  }

 private:
  struct Triplet {
    std::size_t row;
    std::size_t col;
    double value;
  };

  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

/// Pattern-frozen CSR assembler for repeated stamping of the same element
/// stream (MNA Jacobians across Newton iterations and timesteps).
///
/// The first begin()/add()/end() pass records every (row, col) stamp, builds
/// the CSR pattern once and maps each stamp in the stream to its value slot.
/// Every later pass must replay the *same* stamp stream (same length, same
/// coordinates in the same order — true for MNA, whose stamps come from
/// fixed loops over the element lists); add() then becomes a single indexed
/// accumulate and no sorting, allocation or pattern work happens again.
class CsrAssembler {
 public:
  explicit CsrAssembler(std::size_t n) : n_(n) {}

  std::size_t size() const { return n_; }
  bool frozen() const { return frozen_; }

  /// Starts an assembly pass (recording on the first, replay afterwards).
  void begin() {
    CNTI_EXPECTS(!in_pass_, "CsrAssembler: begin() without end()");
    in_pass_ = true;
    cursor_ = 0;
    if (frozen_) std::fill(matrix_.values().begin(), matrix_.values().end(), 0.0);
  }

  void add(std::size_t r, std::size_t c, double v) {
    if (frozen_) {
      CNTI_EXPECTS(cursor_ < slots_.size(),
                   "CsrAssembler: stamp stream longer than recorded pattern");
      const Stamp& s = slots_[cursor_++];
      CNTI_EXPECTS(s.row == r && s.col == c,
                   "CsrAssembler: stamp stream diverged from recorded pattern");
      matrix_.values()[s.slot] += v;
      return;
    }
    CNTI_EXPECTS(r < n_ && c < n_, "CsrAssembler: stamp out of range");
    slots_.push_back({r, c, 0});
    recorded_values_.push_back(v);
  }

  /// Finishes the pass; the first call freezes the pattern.
  const SparseMatrix& end() {
    CNTI_EXPECTS(in_pass_, "CsrAssembler: end() without begin()");
    in_pass_ = false;
    if (frozen_) {
      CNTI_EXPECTS(cursor_ == slots_.size(),
                   "CsrAssembler: stamp stream shorter than recorded pattern");
      return matrix_;
    }
    freeze();
    return matrix_;
  }

  /// The assembled matrix of the last completed pass.
  const SparseMatrix& matrix() const { return matrix_; }

 private:
  struct Stamp {
    std::size_t row;
    std::size_t col;
    std::size_t slot;
  };

  void freeze() {
    // Unique sorted (row, col) pairs define the CSR pattern; every recorded
    // stamp gets the slot of its pair.
    std::vector<std::size_t> order(slots_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                return slots_[a].row != slots_[b].row
                           ? slots_[a].row < slots_[b].row
                           : slots_[a].col < slots_[b].col;
              });
    std::vector<std::size_t> row_ptr(n_ + 1, 0);
    std::vector<std::size_t> col;
    std::vector<double> val;
    for (std::size_t i = 0; i < order.size();) {
      const std::size_t r = slots_[order[i]].row;
      const std::size_t c = slots_[order[i]].col;
      const std::size_t slot = col.size();
      col.push_back(c);
      val.push_back(0.0);
      ++row_ptr[r + 1];
      double acc = 0.0;
      while (i < order.size() && slots_[order[i]].row == r &&
             slots_[order[i]].col == c) {
        slots_[order[i]].slot = slot;
        acc += recorded_values_[order[i]];
        ++i;
      }
      val[slot] = acc;
    }
    for (std::size_t r = 0; r < n_; ++r) row_ptr[r + 1] += row_ptr[r];
    matrix_ = SparseMatrix(n_, n_, std::move(row_ptr), std::move(col),
                           std::move(val));
    recorded_values_.clear();
    recorded_values_.shrink_to_fit();
    frozen_ = true;
  }

  std::size_t n_;
  bool frozen_ = false;
  bool in_pass_ = false;
  std::size_t cursor_ = 0;
  std::vector<Stamp> slots_;
  std::vector<double> recorded_values_;  // recording pass only
  SparseMatrix matrix_;
};

}  // namespace cnti::numerics
