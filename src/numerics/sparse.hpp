// Compressed-sparse-row matrix and a triplet-based builder, used by the TCAD
// field solver and the MNA engine for large linear systems.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace cnti::numerics {

/// CSR matrix of doubles. Immutable once built (build via SparseBuilder).
class SparseMatrix {
 public:
  SparseMatrix() = default;

  SparseMatrix(std::size_t rows, std::size_t cols,
               std::vector<std::size_t> row_ptr, std::vector<std::size_t> col,
               std::vector<double> val)
      : rows_(rows),
        cols_(cols),
        row_ptr_(std::move(row_ptr)),
        col_(std::move(col)),
        val_(std::move(val)) {
    CNTI_EXPECTS(row_ptr_.size() == rows_ + 1, "bad row_ptr length");
    CNTI_EXPECTS(col_.size() == val_.size(), "col/val length mismatch");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }

  /// y = A x.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const {
    CNTI_EXPECTS(x.size() == cols_, "matvec size mismatch");
    y.assign(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      double acc = 0.0;
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        acc += val_[k] * x[col_[k]];
      }
      y[i] = acc;
    }
  }

  std::vector<double> operator*(const std::vector<double>& x) const {
    std::vector<double> y;
    multiply(x, y);
    return y;
  }

  /// Diagonal entries (zero when absent) — Jacobi preconditioner input.
  std::vector<double> diagonal() const {
    std::vector<double> d(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        if (col_[k] == i) d[i] = val_[k];
      }
    }
    return d;
  }

  double at(std::size_t r, std::size_t c) const {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_[k] == c) return val_[k];
    }
    return 0.0;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_;
  std::vector<double> val_;
};

/// Accumulates (row, col, value) triplets; duplicate entries are summed on
/// build (natural for FD/MNA stamping).
class SparseBuilder {
 public:
  SparseBuilder(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {}

  void add(std::size_t r, std::size_t c, double v) {
    CNTI_EXPECTS(r < rows_ && c < cols_, "triplet out of range");
    triplets_.push_back({r, c, v});
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  SparseMatrix build() const {
    std::vector<Triplet> t = triplets_;
    std::sort(t.begin(), t.end(), [](const Triplet& a, const Triplet& b) {
      return a.row != b.row ? a.row < b.row : a.col < b.col;
    });
    std::vector<std::size_t> row_ptr(rows_ + 1, 0);
    std::vector<std::size_t> col;
    std::vector<double> val;
    col.reserve(t.size());
    val.reserve(t.size());
    for (std::size_t i = 0; i < t.size();) {
      std::size_t j = i;
      double acc = 0.0;
      while (j < t.size() && t[j].row == t[i].row && t[j].col == t[i].col) {
        acc += t[j].value;
        ++j;
      }
      col.push_back(t[i].col);
      val.push_back(acc);
      ++row_ptr[t[i].row + 1];
      i = j;
    }
    for (std::size_t r = 0; r < rows_; ++r) row_ptr[r + 1] += row_ptr[r];
    return SparseMatrix(rows_, cols_, std::move(row_ptr), std::move(col),
                        std::move(val));
  }

 private:
  struct Triplet {
    std::size_t row;
    std::size_t col;
    double value;
  };

  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

}  // namespace cnti::numerics
