// Sparse direct solver: Gilbert–Peierls left-looking LU with partial
// pivoting over CSR inputs (converted to column view internally). Symbolic
// work — the depth-first reachability that discovers each column's fill
// pattern, the pivot order, and the CSR->CSC scatter map — is done once per
// sparsity pattern; subsequent factorizations of a matrix with the same
// pattern replay the recorded elimination with no graph traversal, no
// allocation and no pivot search, which is what makes a Newton loop with a
// frozen MNA pattern cheap. A refactorization whose reused pivot degrades
// numerically falls back to a fresh fully-pivoted factorization
// automatically. A fill-reducing column pre-permutation (see ordering.hpp)
// can be installed ahead of the analysis; it participates in the same
// once-per-pattern reuse.
//
// On top of the scalar engine sits an optional supernodal/blocked path
// (see supernodal.hpp): after the first scalar factorization of a pattern,
// adjacent pivot columns with near-identical below-diagonal structure are
// amalgamated into dense panels, and same-pattern refactorizations replay
// through dense triangular-solve / GEMM / panel-factor microkernels
// instead of per-nonzero scatters. solve() runs blocked substitution on
// the same panels. FactorMode selects the kernel; kAuto engages the
// blocked path only when the system and the detected supernodes are large
// enough to pay for the panels. A blocked replay whose in-supernode pivot
// degrades past the threshold bound falls back to a fresh scalar
// factorization and stays scalar for that pattern, so the fallback result
// is bitwise identical to the pure scalar path.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "numerics/sparse.hpp"
#include "numerics/supernodal.hpp"
#include "obs/obs.hpp"

namespace cnti::numerics {

/// Reusable sparse LU factorization. Factor once with factorize(), solve
/// many right-hand sides with solve(); re-factorize cheaply whenever the
/// matrix values change but the pattern does not. An optional fill-reducing
/// column pre-permutation (set_column_ordering, e.g. from amd_ordering)
/// reorders the elimination; rows stay free for partial pivoting.
class SparseLu {
 public:
  SparseLu() = default;

  /// Installs a column pre-permutation `perm` (new column j factors
  /// original column perm[j]); empty restores the natural order. Changing
  /// the ordering invalidates the stored symbolic analysis — the next
  /// factorize() runs fresh; subsequent same-pattern factorizations reuse
  /// the new analysis as usual. solve() still returns x in original
  /// variable order.
  void set_column_ordering(std::vector<std::size_t> perm) {
    if (perm == base_q_ && q_ == base_q_) return;
    base_q_ = std::move(perm);
    q_ = base_q_;
    analyzed_ = false;
    blocked_.clear();
  }

  const std::vector<std::size_t>& column_ordering() const { return q_; }

  /// Selects the elimination kernel (scalar Gilbert–Peierls, supernodal
  /// panels, or size-gated auto). Changing the mode invalidates the stored
  /// symbolic analysis and any supernode partition — the next factorize()
  /// runs fresh.
  void set_factor_mode(FactorMode mode) {
    if (mode == factor_mode_) return;
    factor_mode_ = mode;
    analyzed_ = false;
    blocked_.clear();
  }

  FactorMode factor_mode() const { return factor_mode_; }

  /// Supernode detection / amalgamation knobs. Pattern-level state, so the
  /// stored analysis is invalidated like set_column_ordering().
  void set_supernode_settings(const SupernodeSettings& settings) {
    settings_ = settings;
    analyzed_ = false;
    blocked_.clear();
  }

  const SupernodeSettings& supernode_settings() const { return settings_; }

  /// Blocked-path introspection: whether the supernodal kernels currently
  /// own the factors, and the partition's shape (0 while scalar).
  bool blocked_active() const { return blocked_.active(); }
  std::size_t supernodes() const { return blocked_.count(); }
  std::size_t max_supernode_cols() const { return blocked_.max_cols(); }
  /// Dense panel + U-segment slots held by the blocked factors (includes
  /// amalgamation padding); 0 while scalar.
  std::size_t blocked_panel_nnz() const { return blocked_.panel_nnz(); }
  /// GEMM-shaped Schur-update flops retired by the last blocked replay.
  std::uint64_t last_gemm_flops() const { return blocked_.last_gemm_flops(); }

  /// Factorizes `a` (square CSR). If `a` has the same sparsity pattern as
  /// the previous factorization, the symbolic analysis and pivot order are
  /// reused (numeric-only refactorization); otherwise a full left-looking
  /// factorization with partial pivoting runs. Throws NumericalError on
  /// structural or numerical singularity.
  void factorize(const SparseMatrix& a) {
    CNTI_EXPECTS(a.rows() == a.cols(), "SparseLu needs a square matrix");
    CNTI_EXPECTS(a.rows() > 0, "SparseLu: empty system");
    static const obs::Counter replays = obs::counter("cnti.solver.refactorizations");
    static const obs::Counter fulls = obs::counter("cnti.solver.factorizations");
    static const obs::Counter fallbacks =
        obs::counter("cnti.solver.repivot_fallbacks");
    static const obs::Gauge nnz_gauge = obs::gauge("cnti.solver.nnz_lu");
    static const obs::Histogram factor_hist =
        obs::histogram("cnti.solver.factor_ns");
    static const obs::Counter blocked_replays =
        obs::counter("cnti.solver.blocked_refactorizations");
    static const obs::Counter gemm_flops =
        obs::counter("cnti.solver.gemm_flops");
    static const obs::Gauge sn_gauge = obs::gauge("cnti.solver.supernodes");
    static const obs::Gauge sn_width_gauge =
        obs::gauge("cnti.solver.max_supernode_cols");
    static const obs::Histogram blocked_hist =
        obs::histogram("cnti.solver.factor_blocked_ns");
    const std::uint64_t t0 = obs::span_start();
    const bool replayable = analyzed_ && same_pattern(a);
    if (replayable && blocked_.active()) {
      gather_column_values(a);
      if (blocked_.refactorize(acol_ptr_, acol_val_, prow_, pinv_,
                               kRefactorPivotTol, kSingularTol)) {
        reused_symbolic_ = true;
        replays.add();
        blocked_replays.add();
        gemm_flops.add(blocked_.last_gemm_flops());
        obs::span_end("sparse_lu.refactorize_blocked", "solver", t0,
                      blocked_hist);
        return;
      }
      // An in-supernode pivot degraded past the growth bound: rebuild with
      // fresh scalar partial pivoting and stay on the scalar path for this
      // pattern, so everything after the fallback is bitwise identical to
      // the pure scalar engine.
      fallbacks.add();
      blocked_.clear();
      full_factorize(a);
      reused_symbolic_ = false;
      fulls.add();
      nnz_gauge.set(static_cast<double>(nnz_l() + nnz_u()));
      sn_gauge.set(0.0);
      sn_width_gauge.set(0.0);
      obs::span_end("sparse_lu.factorize", "solver", t0, factor_hist);
      return;
    }
    if (replayable && refactorize(a)) {
      reused_symbolic_ = true;
      replays.add();
      obs::span_end("sparse_lu.refactorize", "solver", t0, factor_hist);
      return;
    }
    // A failed replay means a pivot degraded past the growth bound and we
    // fell back to a fresh partial-pivoting pass.
    if (replayable) fallbacks.add();
    // A genuinely new pattern restarts from the user-installed base
    // ordering: the etree postorder composed into q_ by a previous
    // pattern's supernode detection is stale (it may not even have the
    // right length). Fallbacks keep the composed ordering — same pattern,
    // and the bitwise-identity contract is stated relative to it.
    if (!replayable) q_ = base_q_;
    full_factorize(a);
    reused_symbolic_ = false;
    fulls.add();
    // Supernodes are (re)detected only on a genuinely new pattern — never
    // after a fallback, which is contracted to leave the scalar result.
    if (!replayable) maybe_build_blocked(a);
    nnz_gauge.set(static_cast<double>(nnz_l() + nnz_u()));
    sn_gauge.set(static_cast<double>(blocked_.count()));
    sn_width_gauge.set(static_cast<double>(blocked_.max_cols()));
    obs::span_end("sparse_lu.factorize", "solver", t0, factor_hist);
  }

  std::size_t size() const { return n_; }
  bool analyzed() const { return analyzed_; }
  /// True when the last factorize() reused the stored symbolic analysis.
  bool reused_symbolic() const { return reused_symbolic_; }
  std::size_t nnz_l() const { return li_.size(); }
  std::size_t nnz_u() const { return ui_.size() + n_; }

  /// Solves A x = b with the current factors.
  std::vector<double> solve(const std::vector<double>& b) const {
    CNTI_EXPECTS(analyzed_, "SparseLu: factorize before solve");
    CNTI_EXPECTS(b.size() == n_, "SparseLu: rhs size mismatch");
    static const obs::Counter solves = obs::counter("cnti.solver.solves");
    static const obs::Histogram solve_hist =
        obs::histogram("cnti.solver.solve_ns");
    solves.add();
    const obs::ObsSpan span("sparse_lu.solve", "solver", solve_hist);
    // Forward substitution L y = P b (L unit lower triangular in pivot
    // space; li_ stores original row ids, pinv_ maps them to pivot space).
    std::vector<double> y(n_);
    for (std::size_t k = 0; k < n_; ++k) y[k] = b[prow_[k]];
    if (blocked_.active()) {
      blocked_.solve(y);
      if (q_.empty()) return y;
      std::vector<double> x(n_);
      for (std::size_t j = 0; j < n_; ++j) x[q_[j]] = y[j];
      return x;
    }
    for (std::size_t k = 0; k < n_; ++k) {
      const double yk = y[k];
      if (yk == 0.0) continue;
      for (std::size_t t = lp_[k]; t < lp_[k + 1]; ++t) {
        y[pinv_[li_[t]]] -= lx_[t] * yk;
      }
    }
    // Back substitution U x = y (U strict upper in ui_/ux_, diagonal in
    // udiag_), in factored (column-permuted) variable order.
    for (std::size_t jj = n_; jj-- > 0;) {
      const double xj = y[jj] / udiag_[jj];
      y[jj] = xj;
      if (xj == 0.0) continue;
      for (std::size_t t = up_[jj]; t < up_[jj + 1]; ++t) {
        y[ui_[t]] -= ux_[t] * xj;
      }
    }
    if (q_.empty()) return y;  // natural order: y is already x
    std::vector<double> x(n_);
    for (std::size_t j = 0; j < n_; ++j) x[q_[j]] = y[j];
    return x;
  }

 private:
  bool same_pattern(const SparseMatrix& a) const {
    return a.rows() == n_ && a.row_ptr() == a_row_ptr_ &&
           a.col_indices() == a_col_;
  }

  /// Builds the column (CSC) view of the pattern and the CSR->CSC value
  /// scatter map so refactorizations can gather values column-by-column.
  /// With a column ordering installed, original column c lands in factored
  /// column qinv_[c] — the permutation is baked into the view once, so the
  /// factorization and refactorization loops never see it.
  void build_column_view(const SparseMatrix& a) {
    if (!q_.empty()) {
      CNTI_EXPECTS(q_.size() == n_,
                   "SparseLu: column ordering length != matrix size");
      qinv_.assign(n_, kUnpivoted);
      for (std::size_t j = 0; j < n_; ++j) {
        CNTI_EXPECTS(q_[j] < n_ && qinv_[q_[j]] == kUnpivoted,
                     "SparseLu: column ordering is not a permutation");
        qinv_[q_[j]] = j;
      }
    } else {
      qinv_.clear();
    }
    const auto pcol = [this](std::size_t c) {
      return qinv_.empty() ? c : qinv_[c];
    };
    const std::size_t nnz = a.nnz();
    acol_ptr_.assign(n_ + 1, 0);
    acol_row_.resize(nnz);
    csr_to_csc_.resize(nnz);
    for (std::size_t t = 0; t < nnz; ++t) {
      ++acol_ptr_[pcol(a.col_indices()[t]) + 1];
    }
    for (std::size_t c = 0; c < n_; ++c) acol_ptr_[c + 1] += acol_ptr_[c];
    std::vector<std::size_t> next(acol_ptr_.begin(), acol_ptr_.end() - 1);
    for (std::size_t r = 0; r < n_; ++r) {
      for (std::size_t t = a.row_ptr()[r]; t < a.row_ptr()[r + 1]; ++t) {
        const std::size_t pos = next[pcol(a.col_indices()[t])]++;
        acol_row_[pos] = r;
        csr_to_csc_[t] = pos;
      }
    }
  }

  void gather_column_values(const SparseMatrix& a) {
    acol_val_.resize(a.nnz());
    for (std::size_t t = 0; t < a.nnz(); ++t) {
      acol_val_[csr_to_csc_[t]] = a.values()[t];
    }
  }

  /// After a fresh scalar factorization of a new pattern, decide whether
  /// to detect supernodes and hand the factors to the blocked kernels:
  /// always under kSupernodal; under kAuto only when the system is big
  /// enough and the detected partition wide enough to pay for panels.
  void maybe_build_blocked(const SparseMatrix& a) {
    blocked_.clear();
    if (factor_mode_ == FactorMode::kScalar) return;
    if (factor_mode_ == FactorMode::kAuto &&
        n_ < settings_.auto_min_unknowns) {
      return;
    }
    // Postorder the column elimination tree and fold it into the column
    // ordering: a fill-equivalent relabeling that makes every supernode's
    // columns adjacent in elimination order (the adjacency the detection
    // scan requires). Costs one extra scalar pass on the first analysis
    // of a pattern; replays reuse the composed ordering.
    const std::vector<std::size_t> post =
        etree_postorder(n_, lp_, li_, pinv_);
    bool identity = true;
    for (std::size_t j = 0; j < n_; ++j) {
      if (post[j] != j) {
        identity = false;
        break;
      }
    }
    if (!identity) {
      std::vector<std::size_t> q2(n_);
      for (std::size_t j = 0; j < n_; ++j) {
        q2[j] = q_.empty() ? post[j] : q_[post[j]];
      }
      q_ = std::move(q2);
      full_factorize(a);
    }
    blocked_.set_column_view(&acol_ptr_, &acol_row_, &pinv_);
    blocked_.build_from_scalar(n_, settings_, lp_, li_, lx_, up_, ui_, ux_,
                               udiag_, prow_, pinv_);
    if (factor_mode_ == FactorMode::kAuto &&
        blocked_.mean_cols() < settings_.auto_min_mean_cols) {
      blocked_.clear();
    }
  }

  void full_factorize(const SparseMatrix& a) {
    // Invalidate up front: a singularity throw below must not leave a
    // previously analyzed object claiming its (now truncated) factors are
    // usable by solve() or a later pattern-matched refactorize(). Stale
    // supernode panels must never survive a pattern rebuild either.
    analyzed_ = false;
    blocked_.clear();
    n_ = a.rows();
    a_row_ptr_ = a.row_ptr();
    a_col_ = a.col_indices();
    build_column_view(a);
    gather_column_values(a);

    lp_.assign(1, 0);
    li_.clear();
    lx_.clear();
    up_.assign(1, 0);
    ui_.clear();
    ux_.clear();
    udiag_.assign(n_, 0.0);
    prow_.assign(n_, 0);
    pinv_.assign(n_, kUnpivoted);

    // Dense work vector over original row ids plus visited marks; `touched`
    // lists the rows to clear after each column.
    std::vector<double> x(n_, 0.0);
    std::vector<char> mark(n_, 0);
    std::vector<std::size_t> touched, reach, stack;

    for (std::size_t j = 0; j < n_; ++j) {
      touched.clear();
      reach.clear();
      // Scatter A(:, j) and run the reachability DFS: every already-pivoted
      // start row k reaches the pivot steps whose L columns update x.
      for (std::size_t t = acol_ptr_[j]; t < acol_ptr_[j + 1]; ++t) {
        const std::size_t r = acol_row_[t];
        if (!mark[r]) {
          mark[r] = 1;
          touched.push_back(r);
        }
        x[r] += acol_val_[t];
        if (pinv_[r] != kUnpivoted) dfs_reach(pinv_[r], reach, stack, mark, touched);
      }
      // L is lower triangular in pivot space, so ascending pivot index is a
      // topological order of the elimination steps.
      std::sort(reach.begin(), reach.end());
      for (const std::size_t k : reach) {
        const double xk = x[prow_[k]];
        ui_.push_back(k);
        ux_.push_back(xk);
        if (xk != 0.0) {
          for (std::size_t t = lp_[k]; t < lp_[k + 1]; ++t) {
            const std::size_t r = li_[t];
            if (!mark[r]) {
              mark[r] = 1;
              touched.push_back(r);
            }
            x[r] -= lx_[t] * xk;
          }
        } else {
          // Keep the structural fill so the recorded pattern is reusable.
          for (std::size_t t = lp_[k]; t < lp_[k + 1]; ++t) {
            const std::size_t r = li_[t];
            if (!mark[r]) {
              mark[r] = 1;
              touched.push_back(r);
              x[r] = 0.0;
            }
          }
        }
      }
      up_.push_back(ui_.size());

      // Partial pivot among the not-yet-pivoted touched rows.
      std::size_t piv = kUnpivoted;
      double best = 0.0;
      for (const std::size_t r : touched) {
        if (pinv_[r] != kUnpivoted) continue;
        const double v = std::abs(x[r]);
        if (piv == kUnpivoted || v > best) {
          best = v;
          piv = r;
        }
      }
      if (piv == kUnpivoted) {
        throw NumericalError(
            "SparseLu: structurally singular matrix (empty pivot column)");
      }
      if (best < kSingularTol) {
        throw NumericalError(
            "SparseLu: matrix is singular to working precision");
      }
      prow_[j] = piv;
      pinv_[piv] = j;
      udiag_[j] = x[piv];
      for (const std::size_t r : touched) {
        if (pinv_[r] == kUnpivoted) {
          li_.push_back(r);
          lx_.push_back(x[r] / udiag_[j]);
        }
        x[r] = 0.0;
        mark[r] = 0;
      }
      lp_.push_back(li_.size());
    }
    analyzed_ = true;
  }

  /// DFS over the L graph from pivot step `start`, collecting every pivot
  /// step whose column updates the current one. mark/touched guard both the
  /// pivot rows (via prow_) and the unpivoted fill rows.
  void dfs_reach(std::size_t start, std::vector<std::size_t>& reach,
                 std::vector<std::size_t>& stack, std::vector<char>& mark,
                 std::vector<std::size_t>& touched) {
    const std::size_t r0 = prow_[start];
    if (mark[r0] == 2) return;  // already explored as a pivot step
    stack.assign(1, start);
    while (!stack.empty()) {
      const std::size_t k = stack.back();
      stack.pop_back();
      const std::size_t rk = prow_[k];
      if (mark[rk] == 2) continue;
      if (mark[rk] == 0) touched.push_back(rk);
      mark[rk] = 2;
      reach.push_back(k);
      for (std::size_t t = lp_[k]; t < lp_[k + 1]; ++t) {
        const std::size_t r = li_[t];
        const std::size_t p = pinv_[r];
        if (p != kUnpivoted && mark[prow_[p]] != 2) stack.push_back(p);
      }
    }
  }

  /// Numeric-only replay of the stored elimination. Returns false (leaving
  /// the factors invalid for the caller to rebuild) when a reused pivot has
  /// degraded below the threshold-pivoting bound.
  bool refactorize(const SparseMatrix& a) {
    gather_column_values(a);
    std::vector<double> x(n_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      for (std::size_t t = acol_ptr_[j]; t < acol_ptr_[j + 1]; ++t) {
        x[acol_row_[t]] += acol_val_[t];
      }
      for (std::size_t t = up_[j]; t < up_[j + 1]; ++t) {
        const std::size_t k = ui_[t];
        const double xk = x[prow_[k]];
        ux_[t] = xk;
        if (xk == 0.0) continue;
        for (std::size_t s = lp_[k]; s < lp_[k + 1]; ++s) {
          x[li_[s]] -= lx_[s] * xk;
        }
      }
      const double piv = x[prow_[j]];
      double col_max = std::abs(piv);
      for (std::size_t t = lp_[j]; t < lp_[j + 1]; ++t) {
        col_max = std::max(col_max, std::abs(x[li_[t]]));
      }
      if (std::abs(piv) < kSingularTol ||
          std::abs(piv) < kRefactorPivotTol * col_max) {
        // Clear the work vector before handing back to full_factorize.
        clear_column_work(x, j);
        return false;
      }
      udiag_[j] = piv;
      x[prow_[j]] = 0.0;
      for (std::size_t t = lp_[j]; t < lp_[j + 1]; ++t) {
        lx_[t] = x[li_[t]] / piv;
        x[li_[t]] = 0.0;
      }
      for (std::size_t t = up_[j]; t < up_[j + 1]; ++t) {
        x[prow_[ui_[t]]] = 0.0;
      }
    }
    return true;
  }

  void clear_column_work(std::vector<double>& x, std::size_t j) const {
    for (std::size_t t = acol_ptr_[j]; t < acol_ptr_[j + 1]; ++t) {
      x[acol_row_[t]] = 0.0;
    }
    x[prow_[j]] = 0.0;
    for (std::size_t t = lp_[j]; t < lp_[j + 1]; ++t) x[li_[t]] = 0.0;
    for (std::size_t t = up_[j]; t < up_[j + 1]; ++t) x[prow_[ui_[t]]] = 0.0;
  }

  static constexpr std::size_t kUnpivoted = static_cast<std::size_t>(-1);
  static constexpr double kSingularTol = 1e-300;
  /// A reused pivot must stay within this factor of its column's magnitude;
  /// below it the refactorization falls back to fresh partial pivoting.
  static constexpr double kRefactorPivotTol = 1e-6;

  std::size_t n_ = 0;
  bool analyzed_ = false;
  bool reused_symbolic_ = false;

  // Stored input pattern (for reuse detection) and its column view.
  std::vector<std::size_t> a_row_ptr_, a_col_;
  std::vector<std::size_t> acol_ptr_, acol_row_, csr_to_csc_;
  std::vector<double> acol_val_;

  // Optional fill-reducing column pre-permutation (q_: factored -> original
  // column; qinv_: its inverse). Empty = natural order.
  std::vector<std::size_t> q_, qinv_;
  /// The ordering as installed by set_column_ordering(), before any etree
  /// postorder was composed in — the restart point for a new pattern.
  std::vector<std::size_t> base_q_;

  // L (unit lower; row ids are original rows) and U (strict upper in pivot
  // space + diagonal), both column-compressed; prow_/pinv_ is the row
  // permutation.
  std::vector<std::size_t> lp_, li_;
  std::vector<double> lx_;
  std::vector<std::size_t> up_, ui_;
  std::vector<double> ux_;
  std::vector<double> udiag_;
  std::vector<std::size_t> prow_, pinv_;

  // Supernodal/blocked elimination engine plus its knobs. kAuto keeps
  // small systems on the scalar path and moves large, well-clustered
  // patterns (the AMD-ordered bus pencils) onto the dense panels.
  FactorMode factor_mode_ = FactorMode::kAuto;
  SupernodeSettings settings_;
  SupernodalFactor blocked_;
};

/// One-shot sparse solve convenience (factor + solve).
inline std::vector<double> solve_sparse(const SparseMatrix& a,
                                        const std::vector<double>& b) {
  SparseLu lu;
  lu.factorize(a);
  return lu.solve(b);
}

}  // namespace cnti::numerics
