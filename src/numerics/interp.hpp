// Piecewise-linear interpolation over tabulated data (waveform evaluation,
// measurement post-processing).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace cnti::numerics {

/// Linear interpolator over strictly increasing abscissae. Clamps outside
/// the table range.
class LinearInterpolator {
 public:
  LinearInterpolator(std::vector<double> x, std::vector<double> y)
      : x_(std::move(x)), y_(std::move(y)) {
    CNTI_EXPECTS(x_.size() == y_.size(), "x/y size mismatch");
    CNTI_EXPECTS(x_.size() >= 2, "need at least two samples");
    for (std::size_t i = 1; i < x_.size(); ++i) {
      CNTI_EXPECTS(x_[i] > x_[i - 1], "abscissae must be strictly increasing");
    }
  }

  double operator()(double x) const {
    if (x <= x_.front()) return y_.front();
    if (x >= x_.back()) return y_.back();
    const auto it = std::upper_bound(x_.begin(), x_.end(), x);
    const std::size_t i = static_cast<std::size_t>(it - x_.begin());
    const double t = (x - x_[i - 1]) / (x_[i] - x_[i - 1]);
    return y_[i - 1] + t * (y_[i] - y_[i - 1]);
  }

  const std::vector<double>& abscissae() const { return x_; }
  const std::vector<double>& ordinates() const { return y_; }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// First crossing of `level` in sampled signal y(t), linearly interpolated.
/// Returns negative value when the level is never crossed.
inline double first_crossing_time(const std::vector<double>& t,
                                  const std::vector<double>& y, double level,
                                  bool rising, double t_start = 0.0) {
  CNTI_EXPECTS(t.size() == y.size(), "t/y size mismatch");
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i] < t_start) continue;
    const bool crossed = rising ? (y[i - 1] < level && y[i] >= level)
                                : (y[i - 1] > level && y[i] <= level);
    if (crossed) {
      const double frac = (level - y[i - 1]) / (y[i] - y[i - 1]);
      return t[i - 1] + frac * (t[i] - t[i - 1]);
    }
  }
  return -1.0;
}

}  // namespace cnti::numerics
