// Iterative Krylov solvers for the sparse systems produced by the TCAD field
// solver (SPD Laplacians -> CG), non-symmetric systems (BiCGSTAB, restarted
// GMRES), and the ROM-preconditioned exact corner checks of the bus solver.
// Every solver takes an optional preconditioner callback; when none is given
// the dependency-free Jacobi preconditioner is built from the matrix
// diagonal, which reproduces the historical behaviour bit-for-bit.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "numerics/sparse.hpp"

namespace cnti::numerics {

struct IterativeResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual = 0.0;   ///< Final relative residual ||b-Ax||/||b||.
  bool converged = false;
};

struct IterativeOptions {
  std::size_t max_iterations = 5000;
  double tolerance = 1e-10;  ///< Relative residual target.
  std::size_t restart = 50;  ///< GMRES restart length (Krylov basis size).
};

/// Application of an approximate inverse: z = M^{-1} r. The callback must
/// resize/overwrite z (it receives a scratch vector, not an accumulator).
using PreconditionerFn =
    std::function<void(const std::vector<double>& r, std::vector<double>& z)>;

namespace detail {

inline double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

inline double norm2(const std::vector<double>& a) {
  return std::sqrt(dot(a, a));
}

inline void axpy(double alpha, const std::vector<double>& x,
                 std::vector<double>& y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// True relative residual ||b - A x|| / bnorm of the current iterate --
/// reported on every non-converged exit so a breakdown can never leave a
/// recurrence value (or a stale 0.0) in IterativeResult::residual.
inline double true_residual(const SparseMatrix& a, const std::vector<double>& b,
                            const std::vector<double>& x, double bnorm,
                            std::vector<double>& scratch) {
  a.multiply(x, scratch);
  for (std::size_t i = 0; i < b.size(); ++i) scratch[i] = b[i] - scratch[i];
  return norm2(scratch) / bnorm;
}

}  // namespace detail

/// Jacobi (diagonal-inverse) preconditioner; missing/tiny diagonals fall
/// back to the identity, matching the historical in-solver behaviour.
inline PreconditionerFn jacobi_preconditioner(const SparseMatrix& a) {
  std::vector<double> dinv = a.diagonal();
  for (auto& d : dinv) d = (std::abs(d) > 1e-300) ? 1.0 / d : 1.0;
  return [dinv = std::move(dinv)](const std::vector<double>& r,
                                  std::vector<double>& z) {
    z.resize(dinv.size());
    for (std::size_t i = 0; i < dinv.size(); ++i) z[i] = dinv[i] * r[i];
  };
}

/// Preconditioned conjugate gradient for SPD systems (Jacobi by default).
/// x0 may seed the iteration (pass empty for zero start); a seed already
/// within tolerance converges in zero iterations.
inline IterativeResult conjugate_gradient(const SparseMatrix& a,
                                          const std::vector<double>& b,
                                          const IterativeOptions& opt = {},
                                          std::vector<double> x0 = {},
                                          const PreconditionerFn& precond = {}) {
  CNTI_EXPECTS(a.rows() == a.cols(), "CG needs a square matrix");
  CNTI_EXPECTS(b.size() == a.rows(), "rhs size mismatch");
  const std::size_t n = a.rows();

  IterativeResult res;
  res.x = x0.empty() ? std::vector<double>(n, 0.0) : std::move(x0);
  CNTI_EXPECTS(res.x.size() == n, "x0 size mismatch");

  const PreconditionerFn apply_m =
      precond ? precond : jacobi_preconditioner(a);

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.multiply(res.x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  const double bnorm = detail::norm2(b);
  if (bnorm < 1e-300) {
    res.x.assign(n, 0.0);
    res.converged = true;
    return res;
  }

  // An already-converged seed must not fall through to the pap ~ 0
  // breakdown below and report converged=false with residual 0.0.
  res.residual = detail::norm2(r) / bnorm;
  if (res.residual < opt.tolerance) {
    res.converged = true;
    return res;
  }

  apply_m(r, z);
  p = z;
  double rz = detail::dot(r, z);

  for (std::size_t it = 0; it < opt.max_iterations; ++it) {
    a.multiply(p, ap);
    const double pap = detail::dot(p, ap);
    if (std::abs(pap) < 1e-300) break;
    const double alpha = rz / pap;
    detail::axpy(alpha, p, res.x);
    detail::axpy(-alpha, ap, r);
    res.iterations = it + 1;
    res.residual = detail::norm2(r) / bnorm;
    if (res.residual < opt.tolerance) {
      res.converged = true;
      return res;
    }
    apply_m(r, z);
    const double rz_new = detail::dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  res.residual = detail::true_residual(a, b, res.x, bnorm, ap);
  res.converged = res.residual < opt.tolerance;
  return res;
}

/// Preconditioned BiCGSTAB for general (non-symmetric) systems (Jacobi by
/// default). Breakdowns of the recurrence (rhat'v ~ 0, t't ~ 0, omega ~ 0)
/// exit cleanly: x stays finite and the reported residual is the true
/// ||b - A x|| / ||b|| of the last iterate.
inline IterativeResult bicgstab(const SparseMatrix& a,
                                const std::vector<double>& b,
                                const IterativeOptions& opt = {},
                                std::vector<double> x0 = {},
                                const PreconditionerFn& precond = {}) {
  CNTI_EXPECTS(a.rows() == a.cols(), "BiCGSTAB needs a square matrix");
  CNTI_EXPECTS(b.size() == a.rows(), "rhs size mismatch");
  const std::size_t n = a.rows();
  IterativeResult res;
  res.x = x0.empty() ? std::vector<double>(n, 0.0) : std::move(x0);
  CNTI_EXPECTS(res.x.size() == n, "x0 size mismatch");

  const PreconditionerFn apply_m =
      precond ? precond : jacobi_preconditioner(a);

  std::vector<double> r(n), rhat(n), p(n, 0.0), v(n, 0.0), s(n), t(n),
      phat(n), shat(n);
  a.multiply(res.x, v);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - v[i];
  rhat = r;
  std::fill(v.begin(), v.end(), 0.0);

  const double bnorm = detail::norm2(b);
  if (bnorm < 1e-300) {
    res.x.assign(n, 0.0);
    res.converged = true;
    return res;
  }

  res.residual = detail::norm2(r) / bnorm;
  if (res.residual < opt.tolerance) {
    res.converged = true;  // seed already within tolerance: 0 iterations
    return res;
  }

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  for (std::size_t it = 0; it < opt.max_iterations; ++it) {
    const double rho_new = detail::dot(rhat, r);
    if (std::abs(rho_new) < 1e-300) break;
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    apply_m(p, phat);
    a.multiply(phat, v);
    // Guard the alpha denominator: rhat'v ~ 0 (relative to its factors)
    // would make alpha inf/NaN and silently poison x.
    const double rhat_v = detail::dot(rhat, v);
    if (std::abs(rhat_v) <=
        1e-30 * detail::norm2(rhat) * detail::norm2(v)) {
      break;
    }
    alpha = rho / rhat_v;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    if (detail::norm2(s) / bnorm < opt.tolerance) {
      detail::axpy(alpha, phat, res.x);
      res.iterations = it + 1;
      res.residual = detail::norm2(s) / bnorm;
      res.converged = true;
      return res;
    }
    apply_m(s, shat);
    a.multiply(shat, t);
    const double tt = detail::dot(t, t);
    if (tt < 1e-300) break;
    omega = detail::dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    res.iterations = it + 1;
    res.residual = detail::norm2(r) / bnorm;
    if (res.residual < opt.tolerance) {
      res.converged = true;
      return res;
    }
    if (std::abs(omega) < 1e-300) break;
  }
  // Breakdown or iteration cap: report the true residual of the current
  // iterate so converged/residual are never left ambiguous.
  res.residual = detail::true_residual(a, b, res.x, bnorm, t);
  res.converged = res.residual < opt.tolerance;
  return res;
}

/// Restarted GMRES(m) with right preconditioning (Jacobi by default), for
/// general non-symmetric systems. Right preconditioning keeps the monitored
/// residual the *true* residual of A x = b, so tolerance semantics match
/// bicgstab exactly. iterations counts inner Arnoldi steps.
inline IterativeResult gmres(const SparseMatrix& a,
                             const std::vector<double>& b,
                             const IterativeOptions& opt = {},
                             std::vector<double> x0 = {},
                             const PreconditionerFn& precond = {}) {
  CNTI_EXPECTS(a.rows() == a.cols(), "GMRES needs a square matrix");
  CNTI_EXPECTS(b.size() == a.rows(), "rhs size mismatch");
  CNTI_EXPECTS(opt.restart >= 1, "GMRES restart length must be >= 1");
  const std::size_t n = a.rows();
  IterativeResult res;
  res.x = x0.empty() ? std::vector<double>(n, 0.0) : std::move(x0);
  CNTI_EXPECTS(res.x.size() == n, "x0 size mismatch");

  const PreconditionerFn apply_m =
      precond ? precond : jacobi_preconditioner(a);

  const double bnorm = detail::norm2(b);
  if (bnorm < 1e-300) {
    res.x.assign(n, 0.0);
    res.converged = true;
    return res;
  }

  const std::size_t m = std::min(opt.restart, opt.max_iterations);
  std::vector<std::vector<double>> basis;   // v_1..v_{j+1} (x-space)
  std::vector<std::vector<double>> zbasis;  // z_j = M^{-1} v_j
  std::vector<std::vector<double>> hcols;   // rotated upper-triangular R
  std::vector<double> r(n), w(n);
  // Hessenberg column h(0..j+1) per step, reduced by Givens rotations; g
  // holds the rotated rhs whose tail entry is the current residual norm.
  std::vector<double> h(m + 1), g(m + 1), cs(m), sn(m), y(m);

  while (res.iterations < opt.max_iterations) {
    a.multiply(res.x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    const double beta = detail::norm2(r);
    res.residual = beta / bnorm;
    if (res.residual < opt.tolerance) {
      res.converged = true;
      return res;
    }
    basis.assign(1, r);
    for (double& x : basis[0]) x /= beta;
    zbasis.clear();
    hcols.clear();
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    std::size_t j = 0;
    bool stalled = false;
    while (j < m && res.iterations < opt.max_iterations) {
      zbasis.emplace_back(n);
      apply_m(basis[j], zbasis[j]);
      a.multiply(zbasis[j], w);
      // Modified Gram-Schmidt.
      for (std::size_t i = 0; i <= j; ++i) {
        h[i] = detail::dot(basis[i], w);
        detail::axpy(-h[i], basis[i], w);
      }
      h[j + 1] = detail::norm2(w);
      const double hnext = h[j + 1];
      // Apply the accumulated Givens rotations to the new column.
      for (std::size_t i = 0; i < j; ++i) {
        const double tmp = cs[i] * h[i] + sn[i] * h[i + 1];
        h[i + 1] = -sn[i] * h[i] + cs[i] * h[i + 1];
        h[i] = tmp;
      }
      const double denom = std::hypot(h[j], h[j + 1]);
      if (denom < 1e-300) {
        zbasis.pop_back();  // column is numerically void; drop it
        stalled = true;
        break;
      }
      cs[j] = h[j] / denom;
      sn[j] = h[j + 1] / denom;
      h[j] = denom;
      g[j + 1] = -sn[j] * g[j];
      g[j] *= cs[j];
      hcols.emplace_back(h.begin(), h.begin() + static_cast<long>(j) + 1);
      ++res.iterations;
      ++j;
      res.residual = std::abs(g[j]) / bnorm;
      if (res.residual < opt.tolerance || hnext < 1e-300) break;
      basis.push_back(w);
      for (double& x : basis.back()) x /= hnext;
    }

    // Back-substitute R y = g over the j columns built this cycle and
    // correct x through the preconditioned basis (right preconditioning).
    for (std::size_t k = j; k-- > 0;) {
      double sum = g[k];
      for (std::size_t i = k + 1; i < j; ++i) sum -= hcols[i][k] * y[i];
      y[k] = sum / hcols[k][k];
    }
    for (std::size_t k = 0; k < j; ++k) detail::axpy(y[k], zbasis[k], res.x);
    if (stalled && j == 0) break;  // no progress possible this cycle
  }
  a.multiply(res.x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  res.residual = detail::norm2(r) / bnorm;
  res.converged = res.residual < opt.tolerance;
  return res;
}

/// Thomas algorithm for tridiagonal systems (1-D thermal solver).
/// a = sub-diagonal (n-1), b = diagonal (n), c = super-diagonal (n-1).
inline std::vector<double> solve_tridiagonal(std::vector<double> a,
                                             std::vector<double> b,
                                             std::vector<double> c,
                                             std::vector<double> d) {
  const std::size_t n = b.size();
  CNTI_EXPECTS(n >= 1, "empty system");
  CNTI_EXPECTS(a.size() == n - 1 && c.size() == n - 1 && d.size() == n,
               "tridiagonal band sizes inconsistent");
  for (std::size_t i = 1; i < n; ++i) {
    if (std::abs(b[i - 1]) < 1e-300) {
      throw NumericalError("tridiagonal: zero pivot");
    }
    const double m = a[i - 1] / b[i - 1];
    b[i] -= m * c[i - 1];
    d[i] -= m * d[i - 1];
  }
  if (std::abs(b[n - 1]) < 1e-300) {
    throw NumericalError("tridiagonal: zero pivot");
  }
  std::vector<double> x(n);
  x[n - 1] = d[n - 1] / b[n - 1];
  for (std::size_t ii = n - 1; ii-- > 0;) {
    x[ii] = (d[ii] - c[ii] * x[ii + 1]) / b[ii];
  }
  return x;
}

}  // namespace cnti::numerics
