// Iterative Krylov solvers for the sparse systems produced by the TCAD field
// solver (SPD Laplacians -> CG) and, as a fallback, non-symmetric systems
// (BiCGSTAB). Jacobi preconditioning keeps them dependency-free.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "numerics/sparse.hpp"

namespace cnti::numerics {

struct IterativeResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual = 0.0;   ///< Final relative residual ||b-Ax||/||b||.
  bool converged = false;
};

struct IterativeOptions {
  std::size_t max_iterations = 5000;
  double tolerance = 1e-10;  ///< Relative residual target.
};

namespace detail {

inline double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

inline double norm2(const std::vector<double>& a) {
  return std::sqrt(dot(a, a));
}

inline void axpy(double alpha, const std::vector<double>& x,
                 std::vector<double>& y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace detail

/// Jacobi-preconditioned conjugate gradient for SPD systems.
/// x0 may seed the iteration (pass empty for zero start).
inline IterativeResult conjugate_gradient(const SparseMatrix& a,
                                          const std::vector<double>& b,
                                          const IterativeOptions& opt = {},
                                          std::vector<double> x0 = {}) {
  CNTI_EXPECTS(a.rows() == a.cols(), "CG needs a square matrix");
  CNTI_EXPECTS(b.size() == a.rows(), "rhs size mismatch");
  const std::size_t n = a.rows();

  IterativeResult res;
  res.x = x0.empty() ? std::vector<double>(n, 0.0) : std::move(x0);
  CNTI_EXPECTS(res.x.size() == n, "x0 size mismatch");

  std::vector<double> diag = a.diagonal();
  for (auto& d : diag) d = (std::abs(d) > 1e-300) ? 1.0 / d : 1.0;

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.multiply(res.x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  const double bnorm = detail::norm2(b);
  if (bnorm < 1e-300) {
    res.x.assign(n, 0.0);
    res.converged = true;
    return res;
  }

  for (std::size_t i = 0; i < n; ++i) z[i] = diag[i] * r[i];
  p = z;
  double rz = detail::dot(r, z);

  for (std::size_t it = 0; it < opt.max_iterations; ++it) {
    a.multiply(p, ap);
    const double pap = detail::dot(p, ap);
    if (std::abs(pap) < 1e-300) break;
    const double alpha = rz / pap;
    detail::axpy(alpha, p, res.x);
    detail::axpy(-alpha, ap, r);
    res.iterations = it + 1;
    res.residual = detail::norm2(r) / bnorm;
    if (res.residual < opt.tolerance) {
      res.converged = true;
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = diag[i] * r[i];
    const double rz_new = detail::dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return res;
}

/// Jacobi-preconditioned BiCGSTAB for general (non-symmetric) systems.
inline IterativeResult bicgstab(const SparseMatrix& a,
                                const std::vector<double>& b,
                                const IterativeOptions& opt = {},
                                std::vector<double> x0 = {}) {
  CNTI_EXPECTS(a.rows() == a.cols(), "BiCGSTAB needs a square matrix");
  const std::size_t n = a.rows();
  IterativeResult res;
  res.x = x0.empty() ? std::vector<double>(n, 0.0) : std::move(x0);

  std::vector<double> diag = a.diagonal();
  for (auto& d : diag) d = (std::abs(d) > 1e-300) ? 1.0 / d : 1.0;

  std::vector<double> r(n), rhat(n), p(n, 0.0), v(n, 0.0), s(n), t(n),
      phat(n), shat(n);
  a.multiply(res.x, v);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - v[i];
  rhat = r;
  std::fill(v.begin(), v.end(), 0.0);

  const double bnorm = detail::norm2(b);
  if (bnorm < 1e-300) {
    res.x.assign(n, 0.0);
    res.converged = true;
    return res;
  }

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  for (std::size_t it = 0; it < opt.max_iterations; ++it) {
    const double rho_new = detail::dot(rhat, r);
    if (std::abs(rho_new) < 1e-300) break;
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    for (std::size_t i = 0; i < n; ++i) phat[i] = diag[i] * p[i];
    a.multiply(phat, v);
    alpha = rho / detail::dot(rhat, v);
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    if (detail::norm2(s) / bnorm < opt.tolerance) {
      detail::axpy(alpha, phat, res.x);
      res.iterations = it + 1;
      res.residual = detail::norm2(s) / bnorm;
      res.converged = true;
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) shat[i] = diag[i] * s[i];
    a.multiply(shat, t);
    const double tt = detail::dot(t, t);
    if (tt < 1e-300) break;
    omega = detail::dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    res.iterations = it + 1;
    res.residual = detail::norm2(r) / bnorm;
    if (res.residual < opt.tolerance) {
      res.converged = true;
      return res;
    }
    if (std::abs(omega) < 1e-300) break;
  }
  return res;
}

/// Thomas algorithm for tridiagonal systems (1-D thermal solver).
/// a = sub-diagonal (n-1), b = diagonal (n), c = super-diagonal (n-1).
inline std::vector<double> solve_tridiagonal(std::vector<double> a,
                                             std::vector<double> b,
                                             std::vector<double> c,
                                             std::vector<double> d) {
  const std::size_t n = b.size();
  CNTI_EXPECTS(n >= 1, "empty system");
  CNTI_EXPECTS(a.size() == n - 1 && c.size() == n - 1 && d.size() == n,
               "tridiagonal band sizes inconsistent");
  for (std::size_t i = 1; i < n; ++i) {
    if (std::abs(b[i - 1]) < 1e-300) {
      throw NumericalError("tridiagonal: zero pivot");
    }
    const double m = a[i - 1] / b[i - 1];
    b[i] -= m * c[i - 1];
    d[i] -= m * d[i - 1];
  }
  if (std::abs(b[n - 1]) < 1e-300) {
    throw NumericalError("tridiagonal: zero pivot");
  }
  std::vector<double> x(n);
  x[n - 1] = d[n - 1] / b[n - 1];
  for (std::size_t ii = n - 1; ii-- > 0;) {
    x[ii] = (d[ii] - c[ii] * x[ii + 1]) / b[ii];
  }
  return x;
}

}  // namespace cnti::numerics
