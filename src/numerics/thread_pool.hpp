// Deterministic chunked thread pool for the Monte Carlo / sweep hot
// paths. Design rules (docs/PARALLELISM.md):
//
//  - No work stealing and no per-thread state leaks into results: work is
//    split into fixed-size chunks whose decomposition depends only on
//    (n, grain), never on the thread count. Workers pull chunk indices
//    from a shared counter, so *which* thread runs a chunk varies — but
//    every chunk writes only to its own slice of caller-owned state, so
//    results are bit-identical at any thread count.
//  - The calling thread participates, so a 1-thread pool is plain serial
//    execution with zero synchronization on the work items.
//  - Every job wakes the whole pool and waits for each worker to check
//    in once, so per-job overhead grows with pool width (microseconds)
//    rather than with work. That is the price of keeping the in-flight
//    job on the submitter's stack with a provably raceless handshake;
//    jobs are expected to be millisecond-scale (20k-sample MC chunks,
//    wafer maps), where this cost is noise.
//  - Exceptions thrown by chunk bodies are captured (first one wins),
//    remaining chunks are abandoned, and the exception is rethrown on the
//    calling thread.
//
// The default thread count honours the CNTI_THREADS environment variable
// and falls back to std::thread::hardware_concurrency().
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace cnti::numerics {

class ThreadPool {
 public:
  /// Chunk body: invoked as body(begin, end) over [begin, end) item
  /// indices; each invocation covers one chunk.
  using ChunkBody = std::function<void(std::size_t, std::size_t)>;

  /// threads == 0 picks default_thread_count().
  explicit ThreadPool(int threads = 0) {
    CNTI_EXPECTS(threads >= 0, "threads must be >= 0");
    const int n = threads > 0 ? threads : default_thread_count();
    CNTI_EXPECTS(n >= 1 && n <= 4096, "unreasonable thread count");
    workers_.reserve(static_cast<std::size_t>(n - 1));
    try {
      for (int i = 0; i < n - 1; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
      }
    } catch (...) {
      // Thread exhaustion mid-spawn: join what started, then surface the
      // exception instead of letting ~thread() call std::terminate.
      shutdown();
      throw;
    }
  }

  ~ThreadPool() { shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width including the calling thread.
  int thread_count() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// True while the calling thread is executing a chunk body (of any
  /// pool). Nested parallel_chunks calls in this state run serially, so
  /// callers can skip building a private pool they would not use.
  static bool in_parallel_region() { return inside_chunk_body(); }

  /// CNTI_THREADS env override (clamped to [1, 256]), else hardware
  /// concurrency, else 1.
  static int default_thread_count() {
    if (const char* env = std::getenv("CNTI_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) return static_cast<int>(v > 256 ? 256 : v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }

  /// Runs body(begin, end) over [0, n) split into ceil(n / grain) chunks
  /// of `grain` items (last chunk ragged). Blocks until every chunk has
  /// run; rethrows the first chunk exception. Reentrant calls from inside
  /// a chunk body run serially on the calling thread (the pool is not a
  /// nested scheduler). Concurrent submissions from different application
  /// threads are safe: they serialize on the pool, one job at a time —
  /// relevant for the shared global_pool() behind every threads==0 knob.
  void parallel_chunks(std::size_t n, std::size_t grain,
                       const ChunkBody& body) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    const std::size_t n_chunks = (n + grain - 1) / grain;
    static const obs::Counter jobs = obs::counter("cnti.pool.jobs");
    static const obs::Counter chunk_count = obs::counter("cnti.pool.chunks");
    static const obs::Histogram job_hist = obs::histogram("cnti.pool.job_ns");
    jobs.add();
    chunk_count.add(n_chunks);
    const obs::ObsSpan job_span("pool.job", "pool", job_hist);
    if (thread_count() == 1 || n_chunks == 1 || inside_chunk_body()) {
      for (std::size_t c = 0; c < n_chunks; ++c) {
        body(c * grain, std::min(c * grain + grain, n));
      }
      return;
    }

    // One submitter at a time: the worker handshake (job_ / generation_ /
    // busy_workers_) tracks a single in-flight job, and `job` lives on
    // this frame's stack. Chunk bodies never reach here (reentrant calls
    // took the serial path above), so this cannot self-deadlock.
    std::lock_guard<std::mutex> submit_lock(submit_mutex_);

    Job job;
    job.n = n;
    job.grain = grain;
    job.n_chunks = n_chunks;
    job.body = &body;
    job.t_submit = obs::span_start();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      ++generation_;
      busy_workers_ = static_cast<int>(workers_.size());
    }
    wake_cv_.notify_all();
    run_chunks(job);  // the caller is one of the execution lanes
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [this] { return busy_workers_ == 0; });
      job_ = nullptr;
    }
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  struct Job {
    std::size_t n = 0;
    std::size_t grain = 1;
    std::size_t n_chunks = 0;
    const ChunkBody* body = nullptr;
    std::uint64_t t_submit = 0;  // obs: set at submission while timing
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  static bool& inside_chunk_body() {
    thread_local bool inside = false;
    return inside;
  }

  static void run_chunks(Job& job) {
    static const obs::Histogram wait_hist =
        obs::histogram("cnti.pool.queue_wait_ns");
    static const obs::Histogram run_hist = obs::histogram("cnti.pool.run_ns");
    const std::uint64_t t_run0 = obs::span_start();
    if (t_run0 != 0 && job.t_submit != 0 && t_run0 > job.t_submit) {
      wait_hist.record_ns(t_run0 - job.t_submit);
    }
    inside_chunk_body() = true;
    for (std::size_t c = job.next.fetch_add(1); c < job.n_chunks;
         c = job.next.fetch_add(1)) {
      if (job.failed.load(std::memory_order_relaxed)) break;
      try {
        const std::size_t begin = c * job.grain;
        const std::size_t end = std::min(begin + job.grain, job.n);
        (*job.body)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
    inside_chunk_body() = false;
    obs::span_end("pool.run", "pool", t_run0, run_hist);
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, [&] {
          return stop_ || generation_ != seen_generation;
        });
        if (stop_) return;
        seen_generation = generation_;
        job = job_;
      }
      if (job) run_chunks(*job);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --busy_workers_;
      }
      done_cv_.notify_one();
    }
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int busy_workers_ = 0;
  bool stop_ = false;
};

/// Process-wide pool sized by default_thread_count(), lazily constructed.
/// Library entry points with a `threads` knob use this when the knob is 0
/// and a private pool otherwise.
inline ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

/// Convenience wrapper: run `body(begin, end)` chunks over [0, n).
/// threads == 0 uses the shared global pool; any other value runs on a
/// transient private pool of exactly that many threads (spawn/join per
/// call — meant for tests, benches and explicit one-off widths; steady-
/// state code should size the global pool via CNTI_THREADS and pass 0).
/// From inside a chunk body the call degrades to serial execution
/// without spawning anything: nested parallelism would only oversubscribe
/// the machine.
inline void parallel_chunks(std::size_t n, std::size_t grain,
                            const ThreadPool::ChunkBody& body,
                            int threads = 0) {
  CNTI_EXPECTS(threads >= 0, "threads must be >= 0");
  if (threads == 0) {
    global_pool().parallel_chunks(n, grain, body);
  } else {
    // A 1-thread pool spawns no workers and takes the serial path, so
    // the chunk-boundary arithmetic lives in exactly one place.
    ThreadPool pool(
        threads > 1 && ThreadPool::in_parallel_region() ? 1 : threads);
    pool.parallel_chunks(n, grain, body);
  }
}

}  // namespace cnti::numerics
