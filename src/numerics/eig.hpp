// Dense nonsymmetric eigensolver for small matrices: balancing, Householder
// reduction to upper Hessenberg form, then Francis double-shift QR with
// deflation (the classic EISPACK hqr scheme). Eigenvalues only — the ROM
// layer needs pole locations of reduced q x q systems (q ~ tens), not
// eigenvectors, and q^3 iterations are negligible at that size.
#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "numerics/matrix.hpp"

namespace cnti::numerics {

namespace eig_detail {

/// Diagonal similarity scaling by powers of two (exact in floating point):
/// iteratively equalizes row and column 1-norms, which sharpens the QR
/// iteration's convergence and the accuracy of small eigenvalues.
inline void balance(MatrixD& a) {
  const std::size_t n = a.rows();
  constexpr double kRadix = 2.0;
  bool again = true;
  while (again) {
    again = false;
    for (std::size_t i = 0; i < n; ++i) {
      double row = 0.0, col = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        col += std::abs(a(j, i));
        row += std::abs(a(i, j));
      }
      if (col == 0.0 || row == 0.0) continue;
      const double before = col + row;
      double f = 1.0;
      double g = row / kRadix;
      while (col < g) {
        f *= kRadix;
        col *= kRadix * kRadix;
      }
      g = row * kRadix;
      while (col > g) {
        f /= kRadix;
        col /= kRadix * kRadix;
      }
      if ((col + row) / f < 0.95 * before) {
        again = true;
        const double inv = 1.0 / f;
        for (std::size_t j = 0; j < n; ++j) a(i, j) *= inv;
        for (std::size_t j = 0; j < n; ++j) a(j, i) *= f;
      }
    }
  }
}

/// In-place Householder reduction to upper Hessenberg form (similarity, so
/// the spectrum is preserved). Entries below the first subdiagonal are
/// zeroed explicitly.
inline void hessenberg(MatrixD& a) {
  const std::size_t n = a.rows();
  if (n < 3) return;
  std::vector<double> v(n);
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder vector annihilating a(k+2 .. n-1, k).
    double scale = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) scale += std::abs(a(i, k));
    if (scale == 0.0) continue;
    double norm2 = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) {
      v[i] = a(i, k) / scale;
      norm2 += v[i] * v[i];
    }
    const double alpha =
        (v[k + 1] >= 0.0) ? -std::sqrt(norm2) : std::sqrt(norm2);
    if (alpha == 0.0) continue;
    v[k + 1] -= alpha;
    const double beta = 1.0 / (-alpha * v[k + 1]);  // 2 / ||v||^2

    // A <- P A with P = I - beta v v^T (rows k+1.., all columns).
    for (std::size_t j = k; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) s += v[i] * a(i, j);
      s *= beta;
      for (std::size_t i = k + 1; i < n; ++i) a(i, j) -= s * v[i];
    }
    // A <- A P (all rows, columns k+1..).
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = k + 1; j < n; ++j) s += a(i, j) * v[j];
      s *= beta;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= s * v[j];
    }
    a(k + 1, k) = alpha * scale;
    for (std::size_t i = k + 2; i < n; ++i) a(i, k) = 0.0;
  }
}

inline double sign_of(double magnitude, double sign_source) {
  return sign_source >= 0.0 ? magnitude : -magnitude;
}

/// Francis double-shift QR on an upper Hessenberg matrix; returns all n
/// eigenvalues. Throws NumericalError if a trailing block refuses to
/// deflate (does not happen for the well-scaled matrices the ROM feeds in,
/// but the guard keeps the loop finite).
inline std::vector<std::complex<double>> hessenberg_qr(MatrixD& h) {
  const std::size_t size = h.rows();
  std::vector<std::complex<double>> eig(size);
  if (size == 0) return eig;
  const double eps = std::numeric_limits<double>::epsilon();

  double anorm = 0.0;
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = (i > 0 ? i - 1 : 0); j < size; ++j) {
      anorm += std::abs(h(i, j));
    }
  }

  int nn = static_cast<int>(size) - 1;
  double shift_total = 0.0;
  while (nn >= 0) {
    int iterations = 0;
    int low;
    do {
      // Search for a negligible subdiagonal splitting the active block.
      for (low = nn; low >= 1; --low) {
        const double s0 =
            std::abs(h(low - 1, low - 1)) + std::abs(h(low, low));
        const double s = (s0 == 0.0) ? anorm : s0;
        if (std::abs(h(low, low - 1)) <= eps * s) {
          h(low, low - 1) = 0.0;
          break;
        }
      }
      double x = h(nn, nn);
      if (low == nn) {  // 1 x 1 block deflates: one real eigenvalue.
        eig[static_cast<std::size_t>(nn)] = x + shift_total;
        --nn;
      } else {
        double y = h(nn - 1, nn - 1);
        double w = h(nn, nn - 1) * h(nn - 1, nn);
        if (low == nn - 1) {  // 2 x 2 block: real pair or complex pair.
          const double half = 0.5 * (y - x);
          const double q = half * half + w;
          const double root = std::sqrt(std::abs(q));
          const double xs = x + shift_total;
          if (q >= 0.0) {
            const double z = half + sign_of(root, half);
            eig[static_cast<std::size_t>(nn) - 1] = xs + z;
            eig[static_cast<std::size_t>(nn)] =
                (z != 0.0) ? xs - w / z : xs + z;
          } else {
            eig[static_cast<std::size_t>(nn) - 1] = {xs + half, root};
            eig[static_cast<std::size_t>(nn)] = {xs + half, -root};
          }
          nn -= 2;
        } else {  // Double-shift QR sweep over rows low..nn.
          if (iterations == 30) {
            throw NumericalError(
                "eigenvalues: QR iteration failed to converge");
          }
          if (iterations == 10 || iterations == 20) {
            // Exceptional shift to break symmetry-induced stalls.
            shift_total += x;
            for (int i = 0; i <= nn; ++i) h(i, i) -= x;
            const double s =
                std::abs(h(nn, nn - 1)) + std::abs(h(nn - 1, nn - 2));
            y = x = 0.75 * s;
            w = -0.4375 * s * s;
          }
          ++iterations;
          // Look for two consecutive small subdiagonals so the sweep can
          // start mid-block.
          int m;
          double p = 0.0, q = 0.0, r = 0.0;
          for (m = nn - 2; m >= low; --m) {
            const double z = h(m, m);
            const double rr = x - z;
            const double ss = y - z;
            p = (rr * ss - w) / h(m + 1, m) + h(m, m + 1);
            q = h(m + 1, m + 1) - z - rr - ss;
            r = h(m + 2, m + 1);
            const double scale = std::abs(p) + std::abs(q) + std::abs(r);
            p /= scale;
            q /= scale;
            r /= scale;
            if (m == low) break;
            const double u = std::abs(h(m, m - 1)) * (std::abs(q) + std::abs(r));
            const double v = std::abs(p) * (std::abs(h(m - 1, m - 1)) +
                                            std::abs(z) +
                                            std::abs(h(m + 1, m + 1)));
            if (u <= eps * v) break;
          }
          for (int i = m + 2; i <= nn; ++i) {
            h(i, i - 2) = 0.0;
            if (i != m + 2) h(i, i - 3) = 0.0;
          }
          // Chase the 3 x 3 bulge down the block.
          for (int k = m; k <= nn - 1; ++k) {
            if (k != m) {
              p = h(k, k - 1);
              q = h(k + 1, k - 1);
              r = (k != nn - 1) ? h(k + 2, k - 1) : 0.0;
              x = std::abs(p) + std::abs(q) + std::abs(r);
              if (x != 0.0) {
                p /= x;
                q /= x;
                r /= x;
              }
            }
            const double s = sign_of(std::sqrt(p * p + q * q + r * r), p);
            if (s == 0.0) continue;
            if (k == m) {
              if (low != m) h(k, k - 1) = -h(k, k - 1);
            } else {
              h(k, k - 1) = -s * x;
            }
            p += s;
            x = p / s;
            y = q / s;
            const double z = r / s;
            q /= p;
            r /= p;
            for (int j = k; j <= nn; ++j) {  // row transform
              double pp = h(k, j) + q * h(k + 1, j);
              if (k != nn - 1) {
                pp += r * h(k + 2, j);
                h(k + 2, j) -= pp * z;
              }
              h(k + 1, j) -= pp * y;
              h(k, j) -= pp * x;
            }
            const int last = std::min(nn, k + 3);
            for (int i = low; i <= last; ++i) {  // column transform
              double pp = x * h(i, k) + y * h(i, k + 1);
              if (k != nn - 1) {
                pp += z * h(i, k + 2);
                h(i, k + 2) -= pp * r;
              }
              h(i, k + 1) -= pp * q;
              h(i, k) -= pp;
            }
          }
        }
      }
    } while (low < nn - 1);
  }
  return eig;
}

}  // namespace eig_detail

/// All eigenvalues of a general real square matrix (complex pairs come out
/// conjugate). Cost O(n^3); intended for small dense systems (reduced-order
/// models, companion matrices), not large operators.
inline std::vector<std::complex<double>> eigenvalues(MatrixD a) {
  CNTI_EXPECTS(a.rows() == a.cols(), "eigenvalues: matrix must be square");
  if (a.rows() == 0) return {};
  eig_detail::balance(a);
  eig_detail::hessenberg(a);
  return eig_detail::hessenberg_qr(a);
}

}  // namespace cnti::numerics
