// Descriptive statistics for Monte Carlo variability studies and virtual
// wafer-level characterization.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace cnti::numerics {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;      ///< Sample standard deviation (n-1).
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
  /// Coefficient of variation sigma/mu — the paper's variability metric.
  double cv() const { return (mean != 0.0) ? stddev / std::abs(mean) : 0.0; }
};

/// Linear-interpolated percentile of a sorted vector, p in [0, 1].
inline double percentile_sorted(const std::vector<double>& sorted, double p) {
  CNTI_EXPECTS(!sorted.empty(), "empty sample");
  CNTI_EXPECTS(p >= 0.0 && p <= 1.0, "percentile out of [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double idx = p * (sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - lo;
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

inline Summary summarize(std::vector<double> sample) {
  CNTI_EXPECTS(!sample.empty(), "empty sample");
  Summary s;
  s.count = sample.size();
  double sum = 0;
  for (double v : sample) sum += v;
  s.mean = sum / sample.size();
  double ss = 0;
  for (double v : sample) ss += (v - s.mean) * (v - s.mean);
  s.stddev = sample.size() > 1 ? std::sqrt(ss / (sample.size() - 1)) : 0.0;
  std::sort(sample.begin(), sample.end());
  s.min = sample.front();
  s.max = sample.back();
  s.median = percentile_sorted(sample, 0.5);
  s.p05 = percentile_sorted(sample, 0.05);
  s.p95 = percentile_sorted(sample, 0.95);
  return s;
}

/// Mergeable single-pass statistics accumulator for parallel reductions:
/// moments via Welford's update, merged with the Chan et al. parallel
/// formula; the raw samples are retained (in insertion order) so that
/// percentile statistics survive the reduction. Merging chunk
/// accumulators in ascending chunk order reproduces the same bits at any
/// thread count, because the merge tree is then a pure function of the
/// chunk decomposition.
class Accumulator {
 public:
  Accumulator() = default;
  explicit Accumulator(std::size_t reserve) { values_.reserve(reserve); }

  void add(double v) {
    values_.push_back(v);
    ++count_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
    if (count_ == 1) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
  }

  /// Absorbs `other` (which represents samples *after* this one's).
  void merge(const Accumulator& other) {
    CNTI_EXPECTS(&other != this, "cannot merge an accumulator into itself");
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1).
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Samples in insertion (merge) order.
  const std::vector<double>& values() const { return values_; }

  /// Full Summary: moments from the streaming state, percentiles from a
  /// sorted copy of the retained samples.
  Summary summary() const {
    CNTI_EXPECTS(count_ > 0, "empty accumulator");
    Summary s;
    s.count = count_;
    s.mean = mean_;
    s.stddev = std::sqrt(variance());
    s.min = min_;
    s.max = max_;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    s.median = percentile_sorted(sorted, 0.5);
    s.p05 = percentile_sorted(sorted, 0.05);
    s.p95 = percentile_sorted(sorted, 0.95);
    return s;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> values_;
};

/// Histogram with uniform bins over [lo, hi].
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;
};

inline Histogram histogram(const std::vector<double>& sample, double lo,
                           double hi, std::size_t bins) {
  CNTI_EXPECTS(hi > lo, "invalid histogram range");
  CNTI_EXPECTS(bins >= 1, "need at least one bin");
  Histogram h{lo, hi, std::vector<std::size_t>(bins, 0)};
  const double w = (hi - lo) / bins;
  for (double v : sample) {
    if (v < lo || v >= hi) continue;
    const auto b = static_cast<std::size_t>((v - lo) / w);
    ++h.counts[std::min(b, bins - 1)];
  }
  return h;
}

}  // namespace cnti::numerics
