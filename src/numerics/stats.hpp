// Descriptive statistics for Monte Carlo variability studies and virtual
// wafer-level characterization.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace cnti::numerics {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;      ///< Sample standard deviation (n-1).
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
  /// Coefficient of variation sigma/mu — the paper's variability metric.
  double cv() const { return (mean != 0.0) ? stddev / std::abs(mean) : 0.0; }
};

/// Linear-interpolated percentile of a sorted vector, p in [0, 1].
inline double percentile_sorted(const std::vector<double>& sorted, double p) {
  CNTI_EXPECTS(!sorted.empty(), "empty sample");
  CNTI_EXPECTS(p >= 0.0 && p <= 1.0, "percentile out of [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double idx = p * (sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - lo;
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

inline Summary summarize(std::vector<double> sample) {
  CNTI_EXPECTS(!sample.empty(), "empty sample");
  Summary s;
  s.count = sample.size();
  double sum = 0;
  for (double v : sample) sum += v;
  s.mean = sum / sample.size();
  double ss = 0;
  for (double v : sample) ss += (v - s.mean) * (v - s.mean);
  s.stddev = sample.size() > 1 ? std::sqrt(ss / (sample.size() - 1)) : 0.0;
  std::sort(sample.begin(), sample.end());
  s.min = sample.front();
  s.max = sample.back();
  s.median = percentile_sorted(sample, 0.5);
  s.p05 = percentile_sorted(sample, 0.05);
  s.p95 = percentile_sorted(sample, 0.95);
  return s;
}

/// Histogram with uniform bins over [lo, hi].
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;
};

inline Histogram histogram(const std::vector<double>& sample, double lo,
                           double hi, std::size_t bins) {
  CNTI_EXPECTS(hi > lo, "invalid histogram range");
  CNTI_EXPECTS(bins >= 1, "need at least one bin");
  Histogram h{lo, hi, std::vector<std::size_t>(bins, 0)};
  const double w = (hi - lo) / bins;
  for (double v : sample) {
    if (v < lo || v >= hi) continue;
    const auto b = static_cast<std::size_t>((v - lo) / w);
    ++h.counts[std::min(b, bins - 1)];
  }
  return h;
}

}  // namespace cnti::numerics
