// Supernodal (blocked) elimination engine for SparseLu. A supernode is a
// maximal run of adjacent pivot columns whose below-diagonal L structure is
// (near-)identical — exactly the clustering the AMD column pre-ordering
// produces on coupled-bus MNA pencils. Detection runs on the *factored*
// pattern of a completed scalar Gilbert–Peierls pass (whose per-column
// reachability already encodes the elimination tree: column c chains onto
// c-1 precisely when c is the etree parent of c-1, i.e. the first
// below-diagonal row of column c-1), with a relaxed-amalgamation knob that
// admits a bounded fraction of explicit zero padding in exchange for wider
// panels. L and U are then re-stored as dense column-major blocks:
//
//  - one m x w panel per supernode (w pivot rows on top — the LU-combined
//    diagonal block — then the below-diagonal rows), and
//  - one dense w_d x w_s segment of U per (updating supernode d, target
//    supernode s) pair.
//
// Numeric refactorization of an unchanged pattern then runs three
// hand-tiled dense microkernels per supernode instead of one scalar
// scatter per nonzero: a unit-lower triangular solve of the updating
// panel's diagonal block against the gathered right-hand block (producing
// the dense U segment), a GEMM-shaped Schur-complement update of the
// panel's below rows into the supernode's dense scatter workspace, and a
// partially pivoted dense factorization of the supernode's own panel
// (pivots chosen among the supernode's pivot rows; a pivot that degrades
// past the threshold bound aborts the replay so the caller can fall back
// to a fresh scalar factorization). Blocked forward/backward substitution
// runs on the same panels. Everything here is deterministic: the
// partition is a pure function of the sparsity pattern and the reference
// pivot order, and the numeric kernels follow a fixed operation order.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "common/error.hpp"

// The microkernels below hand four independent accumulator streams to the
// vectorizer; without a no-alias promise on the stream pointers GCC emits
// runtime overlap checks (or scalar code) for every fused loop.
#if defined(_MSC_VER)
#define CNTI_SN_RESTRICT __restrict
#else
#define CNTI_SN_RESTRICT __restrict__
#endif

namespace cnti::numerics {

/// Column elimination forest of a factored pattern (parent(j) = first
/// below-diagonal row of column j in pivot space) and its postorder.
/// Returns post such that new elimination position p should factor old
/// factored column post[p]. Postordering relabels every etree subtree
/// contiguously without changing fill, which is what makes supernode
/// columns *adjacent* — the raw fill-reducing order scatters them.
inline std::vector<std::size_t> etree_postorder(
    std::size_t n, const std::vector<std::size_t>& lp,
    const std::vector<std::size_t>& li,
    const std::vector<std::size_t>& pinv) {
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> parent(n, kNone);
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t p = kNone;
    for (std::size_t t = lp[j]; t < lp[j + 1]; ++t) {
      const std::size_t r = pinv[li[t]];
      if (p == kNone || r < p) p = r;
    }
    parent[j] = p;
  }
  // Child lists (ascending; roots hang off virtual node n), then an
  // iterative depth-first postorder over roots in ascending order.
  std::vector<std::size_t> head(n + 1, kNone), next(n, kNone);
  for (std::size_t j = n; j-- > 0;) {
    const std::size_t p = parent[j] == kNone ? n : parent[j];
    next[j] = head[p];
    head[p] = j;
  }
  std::vector<std::size_t> post;
  post.reserve(n);
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  for (std::size_t r = head[n]; r != kNone; r = next[r]) {
    stack.emplace_back(r, head[r]);
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      if (child != kNone) {
        const std::size_t c = child;
        child = next[c];
        stack.emplace_back(c, head[c]);
      } else {
        post.push_back(node);
        stack.pop_back();
      }
    }
  }
  return post;
}

/// Elimination-kernel selection for SparseLu.
enum class FactorMode {
  kScalar,      ///< Per-nonzero Gilbert–Peierls scatter (the PR-3 engine).
  kSupernodal,  ///< Blocked panels + dense microkernels, always.
  kAuto,        ///< Blocked when the system is large enough and the
                ///< detected supernodes are wide enough to pay for panels.
};

/// Supernode detection / amalgamation knobs (pattern-only: any change
/// invalidates the stored partition together with the symbolic analysis).
struct SupernodeSettings {
  /// Hard cap on supernode width (panel columns). Bounds the dense scatter
  /// workspace and keeps the microkernels in cache.
  std::size_t max_cols = 16;
  /// Relaxed amalgamation: a column is merged into the current supernode
  /// while the panel's cumulative explicit-zero padding stays at or below
  /// this fraction of its L slots. 0 admits only exact structural matches.
  /// Kept tight by default: padding is pure extra traffic for solve(),
  /// and the leaf-subtree rule below already produces wide panels.
  double relax_pad_frac = 0.05;
  /// Relaxed leaf supernodes: an entire etree subtree with at most this
  /// many columns is amalgamated into one supernode unconditionally (its
  /// columns are contiguous after the postorder). Leaf subtrees dominate
  /// the column count on grid-like patterns, and without this they land
  /// in width-1/2 panels that cannot pay for the blocked kernels.
  std::size_t relax_subtree_cols = 8;
  /// kAuto engages the blocked path at or above this many unknowns.
  std::size_t auto_min_unknowns = 1024;
  /// ... and only when the detected mean supernode width reaches this
  /// value (narrow partitions would pay panel overhead for scalar work).
  double auto_min_mean_cols = 1.5;
};

class SupernodalFactor {
 public:
  bool active() const { return active_; }
  std::size_t count() const { return active_ ? nodes_.size() : 0; }
  std::size_t max_cols() const { return active_ ? max_cols_ : 0; }
  double mean_cols() const {
    return nodes_.empty() ? 0.0
                          : static_cast<double>(n_) /
                                static_cast<double>(nodes_.size());
  }
  /// Dense storage actually held (panel + U-segment slots, including
  /// amalgamation padding) — the blocked analogue of nnz(L+U).
  std::size_t panel_nnz() const {
    return panel_vals_.size() + useg_vals_.size();
  }
  /// GEMM-shaped Schur-update flops retired by the last refactorize().
  std::uint64_t last_gemm_flops() const { return last_gemm_flops_; }

  void clear() {
    active_ = false;
    max_cols_ = 0;
    max_rb_ = 0;
    nodes_.clear();
    sn_of_.clear();
    panel_vals_.clear();
    useg_vals_.clear();
    upd_slots_.clear();
  }

  /// Detects the partition on a completed scalar factorization (pattern
  /// arrays in the SparseLu layout: L columns hold original row ids,
  /// U columns hold pivot steps) and fills the panels/segments from the
  /// scalar numeric values, so the blocked structures are immediately
  /// solvable and the next same-pattern factorize() can replay blocked.
  void build_from_scalar(std::size_t n, const SupernodeSettings& settings,
                         const std::vector<std::size_t>& lp,
                         const std::vector<std::size_t>& li,
                         const std::vector<double>& lx,
                         const std::vector<std::size_t>& up,
                         const std::vector<std::size_t>& ui,
                         const std::vector<double>& ux,
                         const std::vector<double>& udiag,
                         const std::vector<std::size_t>& prow,
                         const std::vector<std::size_t>& pinv) {
    clear();
    n_ = n;
    detect(settings, lp, li, pinv);
    build_symbolic(lp, li, up, ui, pinv);
    fill_from_scalar(lp, li, lx, up, ui, ux, udiag, pinv);
    refresh_row_targets(pinv);
    for (Node& s : nodes_) {
      s.diag_perm.resize(s.w);
      for (std::size_t i = 0; i < s.w; ++i) {
        s.diag_perm[i] = static_cast<std::uint32_t>(i);
      }
    }
    (void)prow;
    active_ = true;
  }

  /// Numeric-only blocked replay. Gathers values from the CSC view of the
  /// new matrix, reuses the stored partition, re-pivots *within* each
  /// supernode's pivot rows, and updates prow/pinv accordingly. Returns
  /// false — leaving the factors invalid for the caller to rebuild — when
  /// even the best in-block pivot degrades below `pivot_tol` times its
  /// column magnitude (or below `singular_tol` absolutely).
  bool refactorize(const std::vector<std::size_t>& acol_ptr,
                   const std::vector<double>& acol_val,
                   std::vector<std::size_t>& prow,
                   std::vector<std::size_t>& pinv, double pivot_tol,
                   double singular_tol) {
    CNTI_EXPECTS(active_, "SupernodalFactor: refactorize without build");
    last_gemm_flops_ = 0;
    temp_.resize(4 * max_rb_);
    cmax_.resize(max_cols_);
#ifdef SN_PROF
    auto now = [] { return std::chrono::steady_clock::now(); };
    auto lap = [&](auto& acc, auto& t) {
      auto t2 = now();
      acc += std::chrono::duration<double>(t2 - t).count();
      t = t2;
    };
    auto t = now();
#endif
    for (Node& s : nodes_) {
      const std::size_t w = s.w, m = s.m;
      const std::size_t stride = s.ext_m + 1;  // +1: trash row per column
      work_.assign(stride * w, 0.0);
#ifdef SN_PROF
      lap(prof_zero, t);
#endif

      // Scatter A(:, supernode columns) through the precomputed slot map.
      std::size_t ai = 0;
      for (std::size_t t = 0; t < w; ++t) {
        const std::size_t c = s.col0 + t;
        double* wc = work_.data() + t * stride;
        for (std::size_t idx = acol_ptr[c]; idx < acol_ptr[c + 1]; ++idx) {
          wc[s.a_slots[ai++]] += acol_val[idx];
        }
      }
#ifdef SN_PROF
      lap(prof_scatter_a, t);
#endif

      // Left-looking updates from every earlier supernode that reaches
      // this panel, in ascending order (a topological order of the
      // elimination steps). Only the structurally touched target columns
      // (ucols) are processed, four at a time so each loaded panel
      // element feeds four independent accumulators (the kernels are
      // load-bound, not flop-bound, at these supernode widths).
      for (std::size_t si = 0; si < s.src.size(); ++si) {
        const Node& d = nodes_[s.src[si]];
        const std::size_t wd = d.w, md = d.m, rb = md - wd;
        double* seg = useg_vals_.data() + s.seg[si];  // wd x w col-major
        const double* pd = panel_vals_.data() + d.panel;
        const double* lb = pd + wd;  // below block, ld = md
        const std::uint32_t* cols = s.ucols.data() + s.ucol_off[si];
        const std::size_t ncols = s.ucol_off[si + 1] - s.ucol_off[si];
        const std::uint32_t* slots = upd_slots_.data() + s.upd_idx[si];
        if (wd == 1) {
          // Single-column source: no pivot permutation (diag_perm is
          // trivially identity), no triangular solve, and the rank-one
          // update is fused straight into the scatter with no temp.
          for (std::size_t ci = 0; ci < ncols; ++ci) {
            const std::size_t c = cols[ci];
            double* CNTI_SN_RESTRICT wc = work_.data() + c * stride;
            const double x = wc[s.slot0[si]];
            seg[c] = x;
            if (x == 0.0) continue;
            for (std::size_t i = 0; i < rb; ++i) wc[slots[i]] -= lb[i] * x;
            last_gemm_flops_ += 2ull * rb;
          }
          continue;
        }
        switch (wd) {
          case 2: pair_update<2>(d, seg, cols, ncols, slots, s.slot0[si], stride); break;
          case 3: pair_update<3>(d, seg, cols, ncols, slots, s.slot0[si], stride); break;
          case 4: pair_update<4>(d, seg, cols, ncols, slots, s.slot0[si], stride); break;
          case 5: pair_update<5>(d, seg, cols, ncols, slots, s.slot0[si], stride); break;
          default: pair_update<0>(d, seg, cols, ncols, slots, s.slot0[si], stride); break;
        }
      }
#ifdef SN_PROF
      lap(prof_gemm, t);
#endif

      // Microkernel 3 — gather the accumulated panel out of the scattered
      // workspace into its contiguous column-major home (leading
      // dimension m, no trash rows) while recording each column's
      // pre-elimination magnitude, then run the partially pivoted dense
      // factorization there where the row swaps and rank-one updates stay
      // cache-local. Pivots are chosen among the supernode's own pivot
      // rows (the first w), which keeps the global structure fixed; the
      // threshold check compares the best pivot against the column's
      // static scale (its accumulated pre-elimination maximum), the
      // blocked analogue of the scalar replay's degradation bound. On
      // failure the half-factored panel is abandoned — the caller
      // rebuilds from a fresh scalar factorization.
      const double* pb = work_.data() + s.panel_base;
      double* panel = panel_vals_.data() + s.panel;
      for (std::size_t c = 0; c < w; ++c) {
        const double* CNTI_SN_RESTRICT src = pb + c * stride;
        double* CNTI_SN_RESTRICT dst = panel + c * m;
        double cmax = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          dst[i] = src[i];
          cmax = std::max(cmax, std::abs(src[i]));
        }
        cmax_[c] = cmax;
      }
#ifdef SN_PROF
      lap(prof_copy, t);
#endif
      for (std::size_t i = 0; i < s.w; ++i) {
        s.diag_perm[i] = static_cast<std::uint32_t>(i);
      }
      for (std::size_t k = 0; k < w; ++k) {
        double* colk = panel + k * m;
        std::size_t piv = k;
        double best = std::abs(colk[k]);
        for (std::size_t i = k + 1; i < w; ++i) {
          const double v = std::abs(colk[i]);
          if (v > best) {
            best = v;
            piv = i;
          }
        }
        if (best < singular_tol || best < pivot_tol * cmax_[k]) return false;
        if (piv != k) {
          for (std::size_t c = 0; c < w; ++c) {
            std::swap(panel[c * m + k], panel[c * m + piv]);
          }
          std::swap(s.diag_perm[k], s.diag_perm[piv]);
        }
        const double inv = 1.0 / colk[k];
        for (std::size_t i = k + 1; i < m; ++i) colk[i] *= inv;
        std::size_t c = k + 1;
        for (; c + 1 < w; c += 2) {
          double* c0 = panel + c * m;
          double* c1 = c0 + m;
          const double u0 = c0[k], u1 = c1[k];
          if (u0 == 0.0 && u1 == 0.0) continue;
          for (std::size_t i = k + 1; i < m; ++i) {
            const double l = colk[i];
            c0[i] -= l * u0;
            c1[i] -= l * u1;
          }
        }
        if (c < w) {
          double* colc = panel + c * m;
          const double u = colc[k];
          if (u != 0.0) {
            for (std::size_t i = k + 1; i < m; ++i) colc[i] -= colk[i] * u;
          }
        }
      }
#ifdef SN_PROF
      lap(prof_getrf, t);
#endif
      for (std::size_t i = 0; i < w; ++i) {
        const std::size_t r = s.rows_orig[s.diag_perm[i]];
        prow[s.col0 + i] = r;
        pinv[r] = s.col0 + i;
      }
    }
    refresh_row_targets(pinv);
    return true;
  }

  /// Blocked substitution on a pivot-space vector (already permuted by
  /// prow): unit-lower forward pass, then U backward pass through the
  /// dense segments. In place.
  void solve(std::vector<double>& y) const {
    CNTI_EXPECTS(active_, "SupernodalFactor: solve without factors");
    std::vector<double> temp(max_rb_);
    for (const Node& s : nodes_) {
      const std::size_t w = s.w, m = s.m, rb = m - w;
      const double* panel = panel_vals_.data() + s.panel;
      double* ys = y.data() + s.col0;
      if (w == 1) {
        // Single-column node: rank-one scatter straight into y, no temp.
        const double yk = ys[0];
        if (yk == 0.0 || rb == 0) continue;
        const double* CNTI_SN_RESTRICT below = panel + 1;
        const std::uint32_t* rows = s.rows_piv.data() + 1;
        for (std::size_t i = 0; i < rb; ++i) y[rows[i]] -= below[i] * yk;
        continue;
      }
      for (std::size_t k = 0; k < w; ++k) {
        const double yk = ys[k];
        if (yk == 0.0) continue;
        const double* colk = panel + k * m;
        for (std::size_t i = k + 1; i < w; ++i) ys[i] -= colk[i] * yk;
      }
      if (rb == 0) continue;
      double* CNTI_SN_RESTRICT t = temp.data();
      std::fill(t, t + rb, 0.0);
      std::size_t k = 0;
      for (; k + 2 <= w; k += 2) {
        const double a = ys[k], b = ys[k + 1];
        if (a == 0.0 && b == 0.0) continue;
        const double* CNTI_SN_RESTRICT ba = panel + k * m + w;
        const double* CNTI_SN_RESTRICT bb = ba + m;
        for (std::size_t i = 0; i < rb; ++i) t[i] += ba[i] * a + bb[i] * b;
      }
      if (k < w) {
        const double a = ys[k];
        if (a != 0.0) {
          const double* CNTI_SN_RESTRICT ba = panel + k * m + w;
          for (std::size_t i = 0; i < rb; ++i) t[i] += ba[i] * a;
        }
      }
      const std::uint32_t* rows = s.rows_piv.data() + w;
      for (std::size_t i = 0; i < rb; ++i) y[rows[i]] -= t[i];
    }
    for (std::size_t sn = nodes_.size(); sn-- > 0;) {
      const Node& s = nodes_[sn];
      const std::size_t w = s.w, m = s.m;
      const double* panel = panel_vals_.data() + s.panel;
      double* ys = y.data() + s.col0;
      for (std::size_t k = w; k-- > 0;) {
        const double* colk = panel + k * m;
        const double xk = ys[k] / colk[k];
        ys[k] = xk;
        if (xk == 0.0) continue;
        for (std::size_t i = 0; i < k; ++i) ys[i] -= colk[i] * xk;
      }
      for (std::size_t si = 0; si < s.src.size(); ++si) {
        const Node& d = nodes_[s.src[si]];
        const std::size_t wd = d.w;
        const double* seg = useg_vals_.data() + s.seg[si];
        double* CNTI_SN_RESTRICT yd = y.data() + d.col0;
        const std::uint32_t* cols = s.ucols.data() + s.ucol_off[si];
        const std::size_t ncols = s.ucol_off[si + 1] - s.ucol_off[si];
        if (wd == 1) {
          double acc = 0.0;
          for (std::size_t ci = 0; ci < ncols; ++ci) {
            acc += seg[cols[ci]] * ys[cols[ci]];
          }
          yd[0] -= acc;
          continue;
        }
        std::size_t ci = 0;
        for (; ci + 2 <= ncols; ci += 2) {
          const double x0 = ys[cols[ci]], x1 = ys[cols[ci + 1]];
          if (x0 == 0.0 && x1 == 0.0) continue;
          const double* CNTI_SN_RESTRICT s0 = seg + cols[ci] * wd;
          const double* CNTI_SN_RESTRICT s1 = seg + cols[ci + 1] * wd;
          for (std::size_t i = 0; i < wd; ++i) {
            yd[i] -= s0[i] * x0 + s1[i] * x1;
          }
        }
        if (ci < ncols) {
          const double xc = ys[cols[ci]];
          if (xc != 0.0) {
            const double* CNTI_SN_RESTRICT segc = seg + cols[ci] * wd;
            for (std::size_t i = 0; i < wd; ++i) yd[i] -= segc[i] * xc;
          }
        }
      }
    }
  }

 private:
  struct Node {
    std::size_t col0 = 0;  ///< First factored column.
    std::size_t w = 0;     ///< Panel columns (pivot rows).
    std::size_t m = 0;     ///< Panel rows (w pivots + below rows).
    /// Panel row identities: [0, w) the pivot rows in *canonical*
    /// (reference) order, [w, m) the below rows — all original row ids.
    std::vector<std::uint32_t> rows_orig;
    /// Pivot-space mirror of rows_orig: [0, w) is just col0+i, [w, m) is
    /// refreshed after every factorization (other supernodes may have
    /// re-pivoted internally). Used by the forward-solve scatter.
    std::vector<std::uint32_t> rows_piv;
    /// Current pivot order within the diagonal block: position i holds
    /// canonical row diag_perm[i]. Identity after build.
    std::vector<std::uint32_t> diag_perm;
    std::size_t panel = 0;  ///< Offset into panel_vals_ (m x w col-major).
    std::vector<std::uint32_t> src;  ///< Updating supernodes, ascending.
    std::vector<std::size_t> seg;    ///< Per src: offset into useg_vals_.
    std::vector<std::size_t> upd_idx;  ///< Per src: offset into upd_slots_.
    std::vector<std::size_t> slot0;  ///< Per src: base workspace slot.
    /// Per src: [ucol_off[si], ucol_off[si+1]) indexes into ucols — the
    /// local target columns with any structural U entry in that source
    /// supernode. The numeric kernels and the backward solve touch only
    /// these columns; the rest of the dense segment stays exactly zero.
    std::vector<std::size_t> ucol_off;
    std::vector<std::uint32_t> ucols;
    std::size_t ext_m = 0;       ///< Workspace rows (src pivots + panel).
    std::size_t panel_base = 0;  ///< Workspace slot of the panel's rows.
    /// Workspace slot per A entry of the supernode's columns, in CSC
    /// order (SparseLu's acol arrays).
    std::vector<std::uint32_t> a_slots;
  };


  /// Fused update microkernels for one (source d, target) pair with WD
  /// source columns (WD = 0 selects the runtime-width fallback). The
  /// compile-time width fully unrolls the gather and the dense triangular
  /// solve; target columns are processed four/two/one at a time so each
  /// loaded panel element feeds multiple independent accumulator streams.
  template <std::size_t WD>
  void pair_update(const Node& d, double* seg, const std::uint32_t* cols,
                   std::size_t ncols, const std::uint32_t* slots,
                   std::size_t slot0, std::size_t stride) {
    const std::size_t wd = WD == 0 ? d.w : WD;
    const std::size_t md = d.m, rb = md - wd;
    const double* pd = panel_vals_.data() + d.panel;
    const double* lb = pd + wd;  // below block, ld = md
    double* CNTI_SN_RESTRICT t0 = temp_.data();
    double* CNTI_SN_RESTRICT t1 = t0 + rb;
    double* CNTI_SN_RESTRICT t2 = t1 + rb;
    double* CNTI_SN_RESTRICT t3 = t2 + rb;
    std::size_t ci = 0;
    for (; ci + 4 <= ncols; ci += 4) {
      const std::size_t c0 = cols[ci], c1 = cols[ci + 1];
      const std::size_t c2 = cols[ci + 2], c3 = cols[ci + 3];
      double* CNTI_SN_RESTRICT x0 = seg + c0 * wd;
      double* CNTI_SN_RESTRICT x1 = seg + c1 * wd;
      double* CNTI_SN_RESTRICT x2 = seg + c2 * wd;
      double* CNTI_SN_RESTRICT x3 = seg + c3 * wd;
      const double* g0 = work_.data() + c0 * stride + slot0;
      const double* g1 = work_.data() + c1 * stride + slot0;
      const double* g2 = work_.data() + c2 * stride + slot0;
      const double* g3 = work_.data() + c3 * stride + slot0;
      for (std::size_t k = 0; k < wd; ++k) {
        const std::uint32_t p = d.diag_perm[k];
        x0[k] = g0[p];
        x1[k] = g1[p];
        x2[k] = g2[p];
        x3[k] = g3[p];
      }
      for (std::size_t k = 0; k < wd; ++k) {
        const double a0 = x0[k], a1 = x1[k], a2 = x2[k], a3 = x3[k];
        if (a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0) continue;
        const double* CNTI_SN_RESTRICT lk = pd + k * md;
        for (std::size_t i = k + 1; i < wd; ++i) {
          const double l = lk[i];
          x0[i] -= l * a0;
          x1[i] -= l * a1;
          x2[i] -= l * a2;
          x3[i] -= l * a3;
        }
      }
      if (rb == 0) continue;
      std::fill(t0, t0 + 4 * rb, 0.0);
      // Source columns are consumed two at a time so each temp load/store
      // amortises over twice the flops (the temp streams dominate traffic).
      std::size_t k = 0;
      for (; k + 2 <= wd; k += 2) {
        const double a0 = x0[k], a1 = x1[k], a2 = x2[k], a3 = x3[k];
        const double b0 = x0[k + 1], b1 = x1[k + 1];
        const double b2 = x2[k + 1], b3 = x3[k + 1];
        if (a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 && b0 == 0.0 &&
            b1 == 0.0 && b2 == 0.0 && b3 == 0.0)
          continue;
        const double* CNTI_SN_RESTRICT la = lb + k * md;
        const double* CNTI_SN_RESTRICT lc = la + md;
        for (std::size_t i = 0; i < rb; ++i) {
          const double u = la[i], v = lc[i];
          t0[i] += u * a0 + v * b0;
          t1[i] += u * a1 + v * b1;
          t2[i] += u * a2 + v * b2;
          t3[i] += u * a3 + v * b3;
        }
      }
      if (k < wd) {
        const double a0 = x0[k], a1 = x1[k], a2 = x2[k], a3 = x3[k];
        if (a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0) {
          const double* CNTI_SN_RESTRICT lk = lb + k * md;
          for (std::size_t i = 0; i < rb; ++i) {
            const double l = lk[i];
            t0[i] += l * a0;
            t1[i] += l * a1;
            t2[i] += l * a2;
            t3[i] += l * a3;
          }
        }
      }
      double* CNTI_SN_RESTRICT w0 = work_.data() + c0 * stride;
      double* CNTI_SN_RESTRICT w1 = work_.data() + c1 * stride;
      double* CNTI_SN_RESTRICT w2 = work_.data() + c2 * stride;
      double* CNTI_SN_RESTRICT w3 = work_.data() + c3 * stride;
      for (std::size_t i = 0; i < rb; ++i) {
        const std::uint32_t slot = slots[i];
        w0[slot] -= t0[i];
        w1[slot] -= t1[i];
        w2[slot] -= t2[i];
        w3[slot] -= t3[i];
      }
      last_gemm_flops_ += 8ull * static_cast<std::uint64_t>(rb) * wd;
    }
    for (; ci + 2 <= ncols; ci += 2) {
      const std::size_t c0 = cols[ci], c1 = cols[ci + 1];
      double* CNTI_SN_RESTRICT x0 = seg + c0 * wd;
      double* CNTI_SN_RESTRICT x1 = seg + c1 * wd;
      const double* g0 = work_.data() + c0 * stride + slot0;
      const double* g1 = work_.data() + c1 * stride + slot0;
      for (std::size_t k = 0; k < wd; ++k) {
        const std::uint32_t p = d.diag_perm[k];
        x0[k] = g0[p];
        x1[k] = g1[p];
      }
      for (std::size_t k = 0; k < wd; ++k) {
        const double a0 = x0[k], a1 = x1[k];
        if (a0 == 0.0 && a1 == 0.0) continue;
        const double* CNTI_SN_RESTRICT lk = pd + k * md;
        for (std::size_t i = k + 1; i < wd; ++i) {
          const double l = lk[i];
          x0[i] -= l * a0;
          x1[i] -= l * a1;
        }
      }
      if (rb == 0) continue;
      std::fill(t0, t0 + 2 * rb, 0.0);
      std::size_t k = 0;
      for (; k + 2 <= wd; k += 2) {
        const double a0 = x0[k], a1 = x1[k];
        const double b0 = x0[k + 1], b1 = x1[k + 1];
        if (a0 == 0.0 && a1 == 0.0 && b0 == 0.0 && b1 == 0.0) continue;
        const double* CNTI_SN_RESTRICT la = lb + k * md;
        const double* CNTI_SN_RESTRICT lc = la + md;
        for (std::size_t i = 0; i < rb; ++i) {
          const double u = la[i], v = lc[i];
          t0[i] += u * a0 + v * b0;
          t1[i] += u * a1 + v * b1;
        }
      }
      if (k < wd) {
        const double a0 = x0[k], a1 = x1[k];
        if (a0 != 0.0 || a1 != 0.0) {
          const double* CNTI_SN_RESTRICT lk = lb + k * md;
          for (std::size_t i = 0; i < rb; ++i) {
            const double l = lk[i];
            t0[i] += l * a0;
            t1[i] += l * a1;
          }
        }
      }
      double* CNTI_SN_RESTRICT w0 = work_.data() + c0 * stride;
      double* CNTI_SN_RESTRICT w1 = work_.data() + c1 * stride;
      for (std::size_t i = 0; i < rb; ++i) {
        const std::uint32_t slot = slots[i];
        w0[slot] -= t0[i];
        w1[slot] -= t1[i];
      }
      last_gemm_flops_ += 4ull * static_cast<std::uint64_t>(rb) * wd;
    }
    if (ci < ncols) {
      const std::size_t c0 = cols[ci];
      double* CNTI_SN_RESTRICT x0 = seg + c0 * wd;
      const double* g0 = work_.data() + c0 * stride + slot0;
      for (std::size_t k = 0; k < wd; ++k) x0[k] = g0[d.diag_perm[k]];
      for (std::size_t k = 0; k < wd; ++k) {
        const double a0 = x0[k];
        if (a0 == 0.0) continue;
        const double* CNTI_SN_RESTRICT lk = pd + k * md;
        for (std::size_t i = k + 1; i < wd; ++i) x0[i] -= lk[i] * a0;
      }
      if (rb == 0) return;
      std::fill(t0, t0 + rb, 0.0);
      std::size_t k = 0;
      for (; k + 2 <= wd; k += 2) {
        const double a0 = x0[k], b0 = x0[k + 1];
        if (a0 == 0.0 && b0 == 0.0) continue;
        const double* CNTI_SN_RESTRICT la = lb + k * md;
        const double* CNTI_SN_RESTRICT lc = la + md;
        for (std::size_t i = 0; i < rb; ++i) {
          t0[i] += la[i] * a0 + lc[i] * b0;
        }
      }
      if (k < wd) {
        const double a0 = x0[k];
        if (a0 != 0.0) {
          const double* CNTI_SN_RESTRICT lk = lb + k * md;
          for (std::size_t i = 0; i < rb; ++i) t0[i] += lk[i] * a0;
        }
      }
      double* CNTI_SN_RESTRICT w0 = work_.data() + c0 * stride;
      for (std::size_t i = 0; i < rb; ++i) w0[slots[i]] -= t0[i];
      last_gemm_flops_ += 2ull * static_cast<std::uint64_t>(rb) * wd;
    }
  }

  /// Greedy adjacent-column merge with relaxed amalgamation. `below[c]`
  /// tracks the current panel's below-diagonal set in pivot space.
  void detect(const SupernodeSettings& settings,
              const std::vector<std::size_t>& lp,
              const std::vector<std::size_t>& li,
              const std::vector<std::size_t>& pinv) {
    // Per-column sorted below-diagonal structure in pivot space.
    std::vector<std::uint32_t> scol(li.size());
    std::vector<std::size_t> starts;
    for (std::size_t j = 0; j < n_; ++j) {
      for (std::size_t t = lp[j]; t < lp[j + 1]; ++t) {
        scol[t] = static_cast<std::uint32_t>(pinv[li[t]]);
      }
      std::sort(scol.begin() + static_cast<std::ptrdiff_t>(lp[j]),
                scol.begin() + static_cast<std::ptrdiff_t>(lp[j + 1]));
    }

    // Column etree (parent = first below-diagonal entry; scol is sorted,
    // so that is the column's minimum) and subtree sizes. parent[j] > j
    // always, so one ascending pass accumulates sizes bottom-up.
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::vector<std::size_t> parent(n_, kNone), subtree(n_, 1);
    for (std::size_t j = 0; j < n_; ++j) {
      if (lp[j] < lp[j + 1]) parent[j] = scol[lp[j]];
    }
    for (std::size_t j = 0; j < n_; ++j) {
      if (parent[j] != kNone) subtree[parent[j]] += subtree[j];
    }
    // Relaxed leaf groups: maximal subtrees of at most relax_subtree_cols
    // columns become one supernode each. Valid only when the subtree is a
    // contiguous column range [r - size + 1, r] (guaranteed by the
    // postorder; verified here so a non-postordered pattern degrades to
    // chain detection instead of mis-grouping).
    const std::size_t leaf_cap =
        std::min(settings.relax_subtree_cols, settings.max_cols);
    std::vector<std::uint32_t> group(n_, 0);  // 0 = none, else root + 1
    for (std::size_t r = 0; r < n_; ++r) {
      if (subtree[r] > leaf_cap) continue;
      if (parent[r] != kNone && subtree[parent[r]] <= leaf_cap) continue;
      const std::size_t lo = r + 1 - subtree[r];
      bool contiguous = true;
      for (std::size_t j = lo; j < r && contiguous; ++j) {
        contiguous = parent[j] != kNone && parent[j] <= r;
      }
      if (!contiguous) continue;
      for (std::size_t j = lo; j <= r; ++j) {
        group[j] = static_cast<std::uint32_t>(r + 1);
      }
    }

    sn_of_.assign(n_, 0);
    std::vector<std::uint32_t> below, merged;
    std::size_t col0 = 0;
    std::size_t struct_l = 0;
    const auto col_struct = [&](std::size_t j) {
      return std::pair(scol.begin() + static_cast<std::ptrdiff_t>(lp[j]),
                       scol.begin() + static_cast<std::ptrdiff_t>(lp[j + 1]));
    };
    const auto open = [&](std::size_t j) {
      col0 = j;
      const auto [b, e] = col_struct(j);
      below.assign(b, e);
      struct_l = 1 + below.size();
    };
    const auto close = [&](std::size_t end) {
      Node node;
      node.col0 = col0;
      node.w = end - col0;
      node.m = node.w + below.size();
      node.rows_orig.resize(node.m);
      node.rows_piv.resize(node.m);
      starts.push_back(col0);
      for (std::size_t j = col0; j < end; ++j) {
        sn_of_[j] = static_cast<std::uint32_t>(starts.size() - 1);
      }
      nodes_.push_back(std::move(node));
    };
    open(0);
    for (std::size_t c = 1; c < n_; ++c) {
      const std::size_t w = c - col0;
      // A column joins the current supernode when it shares the same
      // relaxed leaf group (whole small subtree, merged unconditionally)
      // or chains onto it in the etree (c in the running below set) with
      // acceptable padding.
      const bool same_group = group[c] != 0 && group[c] == group[c - 1];
      bool accept = false;
      if (w < settings.max_cols &&
          (same_group ||
           std::binary_search(below.begin(), below.end(),
                              static_cast<std::uint32_t>(c)))) {
        // Candidate merge: drop c from the below set (it becomes a pivot)
        // and union in c's own structure. Padding = L slots the panel
        // would hold minus the structural entries it would cover.
        const auto [b, e] = col_struct(c);
        merged.clear();
        const std::uint32_t cc = static_cast<std::uint32_t>(c);
        auto it = below.begin();
        auto jt = b;
        while (it != below.end() || jt != e) {
          std::uint32_t v;
          if (jt == e || (it != below.end() && *it < *jt)) {
            v = *it++;
          } else if (it == below.end() || *jt < *it) {
            v = *jt++;
          } else {
            v = *it++;
            ++jt;
          }
          if (v != cc) merged.push_back(v);
        }
        const std::size_t w_new = w + 1;
        const std::size_t m_new = w_new + merged.size();
        const std::size_t l_slots =
            w_new * m_new - w_new * (w_new - 1) / 2;
        const std::size_t struct_new =
            struct_l + 1 + static_cast<std::size_t>(e - b);
        const std::size_t pad = l_slots - std::min(l_slots, struct_new);
        if (same_group ||
            static_cast<double>(pad) <=
                settings.relax_pad_frac * static_cast<double>(l_slots)) {
          accept = true;
          below.swap(merged);
          struct_l = struct_new;
        }
      }
      if (!accept) {
        close(c);
        open(c);
      }
    }
    close(n_);

    // Second pass: record row identities now that membership is final.
    // The detection loop consumed each node's below set as it went;
    // rebuild it cheaply by re-running the union over the node's columns.
    max_cols_ = 0;
    for (Node& node : nodes_) {
      below.clear();
      for (std::size_t j = node.col0; j < node.col0 + node.w; ++j) {
        const auto [b, e] = col_struct(j);
        merged.clear();
        std::merge(below.begin(), below.end(), b, e,
                   std::back_inserter(merged));
        merged.erase(std::unique(merged.begin(), merged.end()),
                     merged.end());
        below.swap(merged);
      }
      // Drop the node's own pivots from the union.
      below.erase(std::remove_if(below.begin(), below.end(),
                                 [&](std::uint32_t p) {
                                   return p < node.col0 + node.w;
                                 }),
                  below.end());
      CNTI_EXPECTS(node.m == node.w + below.size(),
                   "supernode detection: inconsistent panel row count");
      for (std::size_t i = 0; i < node.w; ++i) {
        node.rows_piv[i] = static_cast<std::uint32_t>(node.col0 + i);
      }
      std::copy(below.begin(), below.end(), node.rows_piv.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    node.w));
      max_cols_ = std::max(max_cols_, node.w);
    }
  }

  /// Lays out panels, update lists, dense U segments and the precomputed
  /// scatter-slot maps. Row identities come from the reference pivot
  /// order (prow/pinv of the scalar factorization that shaped the
  /// pattern).
  void build_symbolic(const std::vector<std::size_t>& lp,
                      const std::vector<std::size_t>& li,
                      const std::vector<std::size_t>& up,
                      const std::vector<std::size_t>& ui,
                      const std::vector<std::size_t>& pinv) {
    (void)lp;
    (void)li;
    // Original-row identities of every panel row (pivot space -> row).
    // rows_piv is authoritative here; invert pinv once.
    std::vector<std::uint32_t> prow32(n_);
    for (std::size_t r = 0; r < n_; ++r) {
      prow32[pinv[r]] = static_cast<std::uint32_t>(r);
    }
    std::size_t panel_off = 0;
    for (Node& s : nodes_) {
      for (std::size_t i = 0; i < s.m; ++i) {
        s.rows_orig[i] = prow32[s.rows_piv[i]];
      }
      s.panel = panel_off;
      panel_off += s.m * s.w;
    }
    panel_vals_.assign(panel_off, 0.0);

    // Update-source lists from the scalar U pattern (pivot steps outside
    // the target's own column range), then the dense segment layout.
    std::vector<char> mark(nodes_.size(), 0);
    std::size_t seg_off = 0;
    for (Node& s : nodes_) {
      for (std::size_t c = s.col0; c < s.col0 + s.w; ++c) {
        for (std::size_t t = up[c]; t < up[c + 1]; ++t) {
          const std::size_t k = ui[t];
          if (k >= s.col0) continue;
          const std::uint32_t d = sn_of_[k];
          if (!mark[d]) {
            mark[d] = 1;
            s.src.push_back(d);
          }
        }
      }
      std::sort(s.src.begin(), s.src.end());
      for (const std::uint32_t d : s.src) mark[d] = 0;
      s.seg.resize(s.src.size());
      s.slot0.resize(s.src.size());
      std::size_t ext = 0;
      for (std::size_t si = 0; si < s.src.size(); ++si) {
        s.seg[si] = seg_off;
        seg_off += nodes_[s.src[si]].w * s.w;
        s.slot0[si] = ext;
        ext += nodes_[s.src[si]].w;
      }
      s.panel_base = ext;
      s.ext_m = ext + s.m;
      max_rb_ = std::max(max_rb_, s.m - s.w);
      // Structural target-column lists per source pair: the kernels skip
      // segment columns whose U rows are all structurally zero (frequent
      // when relaxed amalgamation unions disjoint leaf branches).
      std::vector<std::uint32_t> src_pos(nodes_.size(), 0);
      for (std::size_t si = 0; si < s.src.size(); ++si) {
        src_pos[s.src[si]] = static_cast<std::uint32_t>(si);
      }
      std::vector<std::vector<std::uint32_t>> percol(s.src.size());
      for (std::size_t t = 0; t < s.w; ++t) {
        const std::size_t c = s.col0 + t;
        for (std::size_t t2 = up[c]; t2 < up[c + 1]; ++t2) {
          const std::size_t k = ui[t2];
          if (k >= s.col0) continue;
          auto& cols = percol[src_pos[sn_of_[k]]];
          if (cols.empty() || cols.back() != t) {
            cols.push_back(static_cast<std::uint32_t>(t));
          }
        }
      }
      s.ucol_off.assign(s.src.size() + 1, 0);
      for (std::size_t si = 0; si < s.src.size(); ++si) {
        s.ucol_off[si + 1] = s.ucol_off[si] + percol[si].size();
      }
      s.ucols.resize(s.ucol_off.back());
      for (std::size_t si = 0; si < s.src.size(); ++si) {
        std::copy(percol[si].begin(), percol[si].end(),
                  s.ucols.begin() +
                      static_cast<std::ptrdiff_t>(s.ucol_off[si]));
      }
    }
    useg_vals_.assign(seg_off, 0.0);

    // Scatter-slot maps. slot_of maps a pivot-space row to its workspace
    // slot for the node under construction (rebuilt per node); rows
    // outside the node's reach map to the trash slot (their contributions
    // are structurally zero — see the GEMM microkernel).
    std::vector<std::uint32_t> slot_of(n_);
    std::vector<char> have(n_, 0);
    std::size_t upd_off = 0;
    for (Node& s : nodes_) {
      const std::uint32_t trash = static_cast<std::uint32_t>(s.ext_m);
      const auto set_slot = [&](std::size_t p, std::size_t slot) {
        slot_of[p] = static_cast<std::uint32_t>(slot);
        have[p] = 1;
      };
      for (std::size_t si = 0; si < s.src.size(); ++si) {
        const Node& d = nodes_[s.src[si]];
        for (std::size_t i = 0; i < d.w; ++i) {
          set_slot(d.col0 + i, s.slot0[si] + i);
        }
      }
      for (std::size_t i = 0; i < s.m; ++i) {
        set_slot(s.rows_piv[i], s.panel_base + i);
      }
      const auto slot_or_trash = [&](std::size_t p) {
        return have[p] ? slot_of[p] : trash;
      };
      s.upd_idx.resize(s.src.size());
      for (std::size_t si = 0; si < s.src.size(); ++si) {
        const Node& d = nodes_[s.src[si]];
        s.upd_idx[si] = upd_off;
        upd_slots_.resize(upd_off + (d.m - d.w));
        for (std::size_t i = d.w; i < d.m; ++i) {
          upd_slots_[upd_off++] = slot_or_trash(d.rows_piv[i]);
        }
      }
      s.a_slots.clear();
      // The CSC column view covers exactly the closure rows, so every A
      // entry has a real (non-trash) slot; keep slot_or_trash anyway for
      // defence in depth.
      extern_a_slots(s, slot_or_trash);
      for (std::size_t si = 0; si < s.src.size(); ++si) {
        const Node& d = nodes_[s.src[si]];
        for (std::size_t i = 0; i < d.w; ++i) have[d.col0 + i] = 0;
      }
      for (std::size_t i = 0; i < s.m; ++i) have[s.rows_piv[i]] = 0;
    }
  }

  /// A-scatter slots need the CSC view; SparseLu hands it in via
  /// set_column_view before build_from_scalar.
  template <typename SlotFn>
  void extern_a_slots(Node& s, const SlotFn& slot_or_trash) {
    for (std::size_t t = 0; t < s.w; ++t) {
      const std::size_t c = s.col0 + t;
      for (std::size_t idx = (*acol_ptr_)[c]; idx < (*acol_ptr_)[c + 1];
           ++idx) {
        s.a_slots.push_back(
            slot_or_trash((*apinv_)[(*acol_row_)[idx]]));
      }
    }
  }

 public:
  /// Borrow the CSC pattern view (and the reference pinv) for the slot
  /// precomputation. Must be called before build_from_scalar; the
  /// pointers are only used during the build.
  void set_column_view(const std::vector<std::size_t>* acol_ptr,
                       const std::vector<std::size_t>* acol_row,
                       const std::vector<std::size_t>* pinv) {
    acol_ptr_ = acol_ptr;
    acol_row_ = acol_row;
    apinv_ = pinv;
  }

 private:
  void fill_from_scalar(const std::vector<std::size_t>& lp,
                        const std::vector<std::size_t>& li,
                        const std::vector<double>& lx,
                        const std::vector<std::size_t>& up,
                        const std::vector<std::size_t>& ui,
                        const std::vector<double>& ux,
                        const std::vector<double>& udiag,
                        const std::vector<std::size_t>& pinv) {
    // local_row: pivot-space row -> panel row index for the current node.
    std::vector<std::uint32_t> local(n_, 0);
    for (Node& s : nodes_) {
      for (std::size_t i = 0; i < s.m; ++i) {
        local[s.rows_piv[i]] = static_cast<std::uint32_t>(i);
      }
      double* panel = panel_vals_.data() + s.panel;
      std::vector<std::uint32_t> src_pos(nodes_.size(), 0);
      for (std::size_t si = 0; si < s.src.size(); ++si) {
        src_pos[s.src[si]] = static_cast<std::uint32_t>(si);
      }
      for (std::size_t t = 0; t < s.w; ++t) {
        const std::size_t c = s.col0 + t;
        panel[t + t * s.m] = udiag[c];
        for (std::size_t t2 = up[c]; t2 < up[c + 1]; ++t2) {
          const std::size_t k = ui[t2];
          if (k >= s.col0) {
            panel[(k - s.col0) + t * s.m] = ux[t2];
          } else {
            const Node& d = nodes_[sn_of_[k]];
            useg_vals_[s.seg[src_pos[sn_of_[k]]] + (k - d.col0) +
                       t * d.w] = ux[t2];
          }
        }
        for (std::size_t t3 = lp[c]; t3 < lp[c + 1]; ++t3) {
          panel[local[pinv[li[t3]]] + t * s.m] = lx[t3];
        }
      }
    }
  }

  void refresh_row_targets(const std::vector<std::size_t>& pinv) {
    for (Node& s : nodes_) {
      for (std::size_t i = s.w; i < s.m; ++i) {
        s.rows_piv[i] = static_cast<std::uint32_t>(pinv[s.rows_orig[i]]);
      }
    }
  }

#ifdef SN_PROF
 public:
  double prof_zero = 0, prof_scatter_a = 0, prof_trsv = 0, prof_gemm = 0,
         prof_scatterback = 0, prof_getrf = 0, prof_copy = 0;

 private:
#endif
  std::size_t n_ = 0;
  bool active_ = false;
  std::size_t max_cols_ = 0;
  std::size_t max_rb_ = 0;
  std::uint64_t last_gemm_flops_ = 0;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> sn_of_;
  std::vector<double> panel_vals_;   // per-node m x w column-major blocks
  std::vector<double> useg_vals_;    // dense U segments, w_d x w_s each
  std::vector<std::uint32_t> upd_slots_;  // GEMM scatter targets
  std::vector<double> work_, temp_;       // numeric scratch (reused)
  std::vector<double> cmax_;              // per-column static pivot scale
  const std::vector<std::size_t>* acol_ptr_ = nullptr;
  const std::vector<std::size_t>* acol_row_ = nullptr;
  const std::vector<std::size_t>* apinv_ = nullptr;
};

}  // namespace cnti::numerics
