// Deterministic RNG facade. All stochastic models (growth, variability,
// instrument noise) take an Rng& so experiments are reproducible by seed.
#pragma once

#include <cstdint>
#include <random>

#include "common/error.hpp"

namespace cnti::numerics {

/// Thin wrapper over mt19937_64 with the distributions the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  double normal(double mean = 0.0, double sigma = 1.0) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Lognormal parameterized by the *linear-space* median and the sigma of
  /// the underlying normal (geometric sigma).
  double lognormal_median(double median, double sigma_log) {
    CNTI_EXPECTS(median > 0, "lognormal median must be positive");
    return std::lognormal_distribution<double>(std::log(median),
                                               sigma_log)(engine_);
  }

  /// Truncated normal via rejection (bounds guard unphysical samples).
  double normal_truncated(double mean, double sigma, double lo, double hi) {
    CNTI_EXPECTS(hi > lo, "invalid truncation bounds");
    for (int i = 0; i < 1000; ++i) {
      const double v = normal(mean, sigma);
      if (v >= lo && v <= hi) return v;
    }
    // Pathological parameters: fall back to clamped mean.
    return std::min(std::max(mean, lo), hi);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  double exponential(double rate) {
    CNTI_EXPECTS(rate > 0, "rate must be positive");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cnti::numerics
