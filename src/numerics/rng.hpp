// Deterministic RNG facade. All stochastic models (growth, variability,
// instrument noise) take an Rng& so experiments are reproducible by seed.
//
// Parallel use: `fork(stream_id)` derives an independent child stream from
// the *root seed* and the stream id alone (splitmix64 counter mixing), so
// per-sample / per-die streams are identical no matter which thread draws
// them, how work is chunked, or how much the parent has already been
// consumed. See docs/PARALLELISM.md.
#pragma once

#include <array>
#include <cstdint>
#include <random>

#include "common/error.hpp"

namespace cnti::numerics {

namespace detail {

/// One splitmix64 step (Steele/Lea/Flood): advances `state` and returns a
/// well-mixed 64-bit value. Used as a seed deriver, not as the engine.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace detail

/// xoshiro256** 1.0 (Blackman & Vigna, public domain): a fast
/// UniformRandomBitGenerator whose 4-word state seeds in O(1) via
/// splitmix64. Construction is ~100x cheaper than re-seeding a
/// mt19937_64 (312-word init), which is what makes one engine per MC
/// sample — the counter-based fork scheme — affordable on the hot paths.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = detail::splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Thin wrapper over a seeded engine with the distributions the library
/// needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL)
      : seed_(seed), engine_(seed) {}

  /// The root seed this stream was constructed from (not the current
  /// engine state — draws do not change it).
  std::uint64_t seed() const { return seed_; }

  /// Derives the `stream_id`-th child stream. Counter-based: the child
  /// seed is splitmix64(seed, stream_id), so fork(i) is a pure function
  /// of (root seed, i) — independent of draw position, thread, and chunk
  /// shape. Distinct ids give statistically independent streams.
  Rng fork(std::uint64_t stream_id) const {
    std::uint64_t state = seed_;
    // Fold the stream id in through two mixing rounds so that nearby ids
    // (0, 1, 2, ...) land in unrelated engine states.
    state ^= detail::splitmix64(stream_id);
    const std::uint64_t lo = detail::splitmix64(state);
    const std::uint64_t hi = detail::splitmix64(state);
    return Rng(lo ^ (hi << 1));
  }

  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  double normal(double mean = 0.0, double sigma = 1.0) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Lognormal parameterized by the *linear-space* median and the sigma of
  /// the underlying normal (geometric sigma).
  double lognormal_median(double median, double sigma_log) {
    CNTI_EXPECTS(median > 0, "lognormal median must be positive");
    return std::lognormal_distribution<double>(std::log(median),
                                               sigma_log)(engine_);
  }

  /// Truncated normal via rejection (bounds guard unphysical samples).
  /// Throws NumericalError when the acceptance region is so improbable
  /// that 1000 rejections are exhausted — silently clamping to the mean
  /// would bias every downstream statistic.
  double normal_truncated(double mean, double sigma, double lo, double hi) {
    CNTI_EXPECTS(hi > lo, "invalid truncation bounds");
    for (int i = 0; i < 1000; ++i) {
      const double v = normal(mean, sigma);
      if (v >= lo && v <= hi) return v;
    }
    throw NumericalError(
        "normal_truncated: rejection sampling exhausted 1000 draws; the "
        "[lo, hi] window captures negligible probability mass for the "
        "given mean/sigma");
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  double exponential(double rate) {
    CNTI_EXPECTS(rate > 0, "rate must be positive");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  Xoshiro256ss& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  Xoshiro256ss engine_;
};

}  // namespace cnti::numerics
