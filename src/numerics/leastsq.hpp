// Linear least squares with parameter uncertainties. Used by the
// characterization module (TLM fits, SThM k_th extraction, EM TTF fits).
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "numerics/matrix.hpp"

namespace cnti::numerics {

/// Result of a straight-line fit y = intercept + slope * x.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  double intercept_stderr = 0.0;
  double slope_stderr = 0.0;
  double r_squared = 0.0;
  double residual_rms = 0.0;
};

/// Ordinary least squares line fit. Requires >= 2 distinct x values.
inline LineFit fit_line(const std::vector<double>& x,
                        const std::vector<double>& y) {
  const std::size_t n = x.size();
  CNTI_EXPECTS(n == y.size(), "x/y size mismatch");
  CNTI_EXPECTS(n >= 2, "need at least two points");

  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx < 1e-300) throw NumericalError("fit_line: degenerate x values");

  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ssr = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ssr += r * r;
  }
  fit.residual_rms = std::sqrt(ssr / n);
  fit.r_squared = (syy > 0) ? 1.0 - ssr / syy : 1.0;
  if (n > 2) {
    const double s2 = ssr / (n - 2);
    fit.slope_stderr = std::sqrt(s2 / sxx);
    fit.intercept_stderr = std::sqrt(s2 * (1.0 / n + mx * mx / sxx));
  }
  return fit;
}

/// Weighted least squares line fit; weights ~ 1/sigma_i^2.
inline LineFit fit_line_weighted(const std::vector<double>& x,
                                 const std::vector<double>& y,
                                 const std::vector<double>& w) {
  const std::size_t n = x.size();
  CNTI_EXPECTS(n == y.size() && n == w.size(), "size mismatch");
  CNTI_EXPECTS(n >= 2, "need at least two points");

  double sw = 0, swx = 0, swy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    CNTI_EXPECTS(w[i] > 0, "weights must be positive");
    sw += w[i];
    swx += w[i] * x[i];
    swy += w[i] * y[i];
  }
  const double mx = swx / sw, my = swy / sw;
  double sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += w[i] * (x[i] - mx) * (x[i] - mx);
    sxy += w[i] * (x[i] - mx) * (y[i] - my);
  }
  if (sxx < 1e-300) throw NumericalError("fit_line_weighted: degenerate x");

  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.slope_stderr = std::sqrt(1.0 / sxx);
  fit.intercept_stderr = std::sqrt(1.0 / sw + mx * mx / sxx);

  double ssr = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ssr += w[i] * r * r;
    syy += w[i] * (y[i] - my) * (y[i] - my);
  }
  fit.residual_rms = std::sqrt(ssr / sw);
  fit.r_squared = (syy > 0) ? 1.0 - ssr / syy : 1.0;
  return fit;
}

/// General linear least squares: minimizes ||A beta - y||_2 via normal
/// equations (A is tall, well-conditioned design matrices only).
inline std::vector<double> fit_linear_model(const MatrixD& a,
                                            const std::vector<double>& y) {
  CNTI_EXPECTS(a.rows() == y.size(), "design/observation mismatch");
  CNTI_EXPECTS(a.rows() >= a.cols(), "underdetermined system");
  const MatrixD at = a.transpose();
  const MatrixD ata = at * a;
  const std::vector<double> aty = at * y;
  return solve_dense(ata, aty);
}

}  // namespace cnti::numerics
