// Dense row-major matrix over double or std::complex<double>, with
// partial-pivot LU factorization, linear solves and inversion. Sized for the
// library's needs (NEGF cells ~100x100, MNA systems ~1000x1000 fall back to
// sparse CG; dense LU is used for NEGF and small MNA systems).
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace cnti::numerics {

template <typename T>
double abs_value(const T& v) {
  return std::abs(v);
}

/// Dense row-major matrix. Value semantics; cheap to move.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix& operator+=(const Matrix& o) {
    CNTI_EXPECTS(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    CNTI_EXPECTS(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  Matrix& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    CNTI_EXPECTS(a.cols_ == b.rows_, "matmul shape mismatch");
    Matrix out(a.rows_, b.cols_);
    for (std::size_t i = 0; i < a.rows_; ++i) {
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const T aik = a(i, k);
        if (aik == T{}) continue;
        for (std::size_t j = 0; j < b.cols_; ++j) {
          out(i, j) += aik * b(k, j);
        }
      }
    }
    return out;
  }

  std::vector<T> operator*(const std::vector<T>& x) const {
    CNTI_EXPECTS(cols_ == x.size(), "matvec shape mismatch");
    std::vector<T> y(rows_, T{});
    for (std::size_t i = 0; i < rows_; ++i) {
      T acc{};
      for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * x[j];
      y[i] = acc;
    }
    return y;
  }

  Matrix transpose() const {
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
  }

  /// Conjugate transpose (== transpose for real T).
  Matrix adjoint() const {
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) {
        if constexpr (std::is_same_v<T, std::complex<double>>) {
          out(j, i) = std::conj((*this)(i, j));
        } else {
          out(j, i) = (*this)(i, j);
        }
      }
    return out;
  }

  /// Frobenius norm.
  double norm() const {
    double s = 0;
    for (const auto& v : data_) s += abs_value(v) * abs_value(v);
    return std::sqrt(s);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;
using MatrixC = Matrix<std::complex<double>>;

/// Partial-pivot LU factorization of a square matrix. Factor once, solve for
/// many right-hand sides. Throws NumericalError on (near-)singularity.
template <typename T>
class LuFactorization {
 public:
  explicit LuFactorization(Matrix<T> a) : lu_(std::move(a)) {
    CNTI_EXPECTS(lu_.rows() == lu_.cols(), "LU requires a square matrix");
    const std::size_t n = lu_.rows();
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
      // Pivot selection.
      std::size_t piv = k;
      double best = abs_value(lu_(k, k));
      for (std::size_t i = k + 1; i < n; ++i) {
        const double v = abs_value(lu_(i, k));
        if (v > best) {
          best = v;
          piv = i;
        }
      }
      if (best < 1e-300) {
        throw NumericalError("LU: matrix is singular to working precision");
      }
      if (piv != k) {
        swap_rows(k, piv);
        std::swap(perm_[k], perm_[piv]);
        sign_ = -sign_;
      }
      const T pivot = lu_(k, k);
      for (std::size_t i = k + 1; i < n; ++i) {
        const T m = lu_(i, k) / pivot;
        lu_(i, k) = m;
        if (m == T{}) continue;
        for (std::size_t j = k + 1; j < n; ++j) {
          lu_(i, j) -= m * lu_(k, j);
        }
      }
    }
  }

  std::size_t size() const { return lu_.rows(); }

  /// Solve A x = b.
  std::vector<T> solve(const std::vector<T>& b) const {
    const std::size_t n = lu_.rows();
    CNTI_EXPECTS(b.size() == n, "rhs size mismatch");
    std::vector<T> x(n);
    // Apply permutation, forward substitution (L has unit diagonal).
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[perm_[i]];
      for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
      x[i] = acc;
    }
    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = x[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
      x[ii] = acc / lu_(ii, ii);
    }
    return x;
  }

  /// Solve A X = B column-by-column.
  Matrix<T> solve(const Matrix<T>& b) const {
    const std::size_t n = lu_.rows();
    CNTI_EXPECTS(b.rows() == n, "rhs rows mismatch");
    Matrix<T> x(n, b.cols());
    std::vector<T> col(n);
    for (std::size_t c = 0; c < b.cols(); ++c) {
      for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
      auto sol = solve(col);
      for (std::size_t r = 0; r < n; ++r) x(r, c) = sol[r];
    }
    return x;
  }

  T determinant() const {
    T det = (sign_ > 0) ? T{1} : T{-1};
    for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
    return det;
  }

 private:
  void swap_rows(std::size_t a, std::size_t b) {
    for (std::size_t j = 0; j < lu_.cols(); ++j) std::swap(lu_(a, j), lu_(b, j));
  }

  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  int sign_ = 1;
};

/// Matrix inverse via LU (used by NEGF Green's functions).
template <typename T>
Matrix<T> inverse(const Matrix<T>& a) {
  LuFactorization<T> lu(a);
  return lu.solve(Matrix<T>::identity(a.rows()));
}

/// Solve A x = b via LU (convenience for one-shot solves).
template <typename T>
std::vector<T> solve_dense(const Matrix<T>& a, const std::vector<T>& b) {
  return LuFactorization<T>(a).solve(b);
}

}  // namespace cnti::numerics
