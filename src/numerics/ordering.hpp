// Fill-reducing ordering for sparse LU: approximate minimum degree (AMD)
// over the symmetrized sparsity pattern, in the quotient-graph formulation
// (Amestoy/Davis/Duff). Eliminated pivots become *elements* whose member
// lists stand in for the clique fill they would create; adjacent elements
// are absorbed on elimination, and variable degrees are maintained as the
// AMD approximate external degree: |A_i \ L_p| + |L_p \ {i}| + sum over
// adjacent elements e of |L_e \ L_p|, with the per-element set differences
// computed in one stamped counting pass over L_p's element lists (the
// d-bar bound of the AMD paper). Elements whose members are swallowed
// whole by the new pivot's list are absorbed aggressively. Without this
// overlap correction a plain "sum of element sizes" bound overcounts so
// badly on banded/ladder patterns that the ordering *adds* fill.
//
// The returned permutation is used as a *column* pre-permutation for
// numerics::SparseLu (rows stay free for partial pivoting) — the classic
// "minimum degree on A + A^T" column preordering for unsymmetric LU with
// structurally symmetric inputs, which MNA matrices are.
#pragma once

#include <algorithm>
#include <cstddef>
#include <queue>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "numerics/sparse.hpp"

namespace cnti::numerics {

namespace ordering_detail {

/// Off-diagonal adjacency of the symmetrized pattern of `a`, one sorted
/// unique neighbour list per node.
inline std::vector<std::vector<std::size_t>> symmetrized_adjacency(
    const SparseMatrix& a) {
  const std::size_t n = a.rows();
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t t = a.row_ptr()[r]; t < a.row_ptr()[r + 1]; ++t) {
      const std::size_t c = a.col_indices()[t];
      if (c == r) continue;
      adj[r].push_back(c);
      adj[c].push_back(r);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

}  // namespace ordering_detail

/// Approximate-minimum-degree elimination order of the symmetrized pattern
/// of `a` (square). Returns a permutation `perm` with perm[k] = the
/// variable eliminated k-th; ties broken by lowest index, so the ordering
/// is deterministic. Intended as SparseLu::set_column_ordering input.
inline std::vector<std::size_t> amd_ordering(const SparseMatrix& a) {
  CNTI_EXPECTS(a.rows() == a.cols(), "amd_ordering needs a square matrix");
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm;
  perm.reserve(n);
  if (n == 0) return perm;

  // Quotient graph: per-variable neighbour lists (uneliminated variables
  // only) and adjacent-element lists; per-element live member lists. An
  // element's id is the pivot variable that created it. The invariant that
  // live elements contain only uneliminated variables holds because every
  // element adjacent to a pivot is absorbed when the pivot is eliminated.
  std::vector<std::vector<std::size_t>> var_adj =
      ordering_detail::symmetrized_adjacency(a);
  std::vector<std::vector<std::size_t>> elem_adj(n);
  std::vector<std::vector<std::size_t>> elem_nodes(n);
  std::vector<char> eliminated(n, 0), absorbed(n, 0), mark(n, 0);
  std::vector<std::size_t> degree(n);
  // Stamped per-element counters for the |L_e \ L_p| pass; w[e] is valid
  // only when wstamp[e] equals the current stamp.
  std::vector<std::size_t> w(n, 0), wstamp(n, 0);
  std::size_t stamp = 0;

  // Min-heap of (approximate degree, variable) with lazy invalidation:
  // stale entries (already eliminated, or degree since updated) are
  // discarded on pop.
  using Entry = std::pair<std::size_t, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (std::size_t i = 0; i < n; ++i) {
    degree[i] = var_adj[i].size();
    heap.push({degree[i], i});
  }

  std::vector<std::size_t> lp;  // members of the element being formed
  while (perm.size() < n) {
    // Pop the minimum-degree live variable.
    std::size_t p = n;
    while (!heap.empty()) {
      const auto [d, i] = heap.top();
      heap.pop();
      if (!eliminated[i] && d == degree[i]) {
        p = i;
        break;
      }
    }
    CNTI_EXPECTS(p < n, "amd_ordering: degree heap exhausted early");

    // L_p = union of p's variable neighbours and the live members of every
    // element adjacent to p, minus p itself.
    lp.clear();
    mark[p] = 1;
    for (const std::size_t v : var_adj[p]) {
      if (!eliminated[v] && !mark[v]) {
        mark[v] = 1;
        lp.push_back(v);
      }
    }
    for (const std::size_t e : elem_adj[p]) {
      if (absorbed[e]) continue;
      for (const std::size_t v : elem_nodes[e]) {
        if (!mark[v]) {
          mark[v] = 1;
          lp.push_back(v);
        }
      }
      absorbed[e] = 1;
      elem_nodes[e].clear();
      elem_nodes[e].shrink_to_fit();
    }
    eliminated[p] = 1;
    perm.push_back(p);
    var_adj[p].clear();
    var_adj[p].shrink_to_fit();
    elem_adj[p].clear();
    elem_nodes[p] = lp;  // p becomes a live element

    // Pass 1: per live element e adjacent to L_p, count |L_e \ L_p|. Each
    // member i of L_p with e in its element list is one member of
    // L_e ∩ L_p (the two adjacency directions are kept consistent), so
    // seeding w[e] with |L_e| and decrementing per touch leaves exactly
    // the external member count.
    ++stamp;
    for (const std::size_t i : lp) {
      for (const std::size_t e : elem_adj[i]) {
        if (absorbed[e]) continue;
        if (wstamp[e] != stamp) {
          wstamp[e] = stamp;
          w[e] = elem_nodes[e].size();
        }
        --w[e];
      }
    }

    // Pass 2: prune covered/eliminated variable edges and dead elements,
    // then recompute the approximate external degree
    //   d_i = |A_i \ L_p| + |L_p \ {i}| + sum_e |L_e \ L_p|.
    // mark[] currently flags L_p and p. An element with |L_e \ L_p| = 0 is
    // dominated by the new element and absorbed aggressively.
    for (const std::size_t i : lp) {
      auto& va = var_adj[i];
      std::size_t keep = 0;
      for (const std::size_t v : va) {
        if (!eliminated[v] && !mark[v]) va[keep++] = v;
      }
      va.resize(keep);
      auto& ea = elem_adj[i];
      keep = 0;
      std::size_t ext = 0;  // sum of |L_e \ L_p| over live elements
      for (const std::size_t e : ea) {
        if (absorbed[e]) continue;
        if (wstamp[e] == stamp && w[e] == 0) {
          absorbed[e] = 1;  // L_e subset of L_p: e adds nothing beyond p
          elem_nodes[e].clear();
          elem_nodes[e].shrink_to_fit();
          continue;
        }
        ea[keep++] = e;
        ext += (wstamp[e] == stamp) ? w[e] : elem_nodes[e].size();
      }
      ea.resize(keep);
      ea.push_back(p);

      std::size_t d = va.size() + (lp.size() - 1) + ext;
      // The true external degree cannot exceed the other remaining
      // variables; the counting bound can, so clamp.
      const std::size_t remaining = n - perm.size() - 1;
      degree[i] = std::min(d, remaining);
      heap.push({degree[i], i});
    }
    mark[p] = 0;
    for (const std::size_t i : lp) mark[i] = 0;
  }
  return perm;
}

}  // namespace cnti::numerics
