// Scalar root finding: Brent's method (ampacity solves, crossover lengths)
// and bisection fallback.
#pragma once

#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace cnti::numerics {

struct RootOptions {
  double x_tolerance = 1e-12;
  double f_tolerance = 1e-14;
  int max_iterations = 200;
};

/// Brent's method on [a, b]; requires f(a) and f(b) of opposite sign.
template <typename F>
double find_root_brent(const F& f, double a, double b,
                       const RootOptions& opt = {}) {
  double fa = f(a), fb = f(b);
  CNTI_EXPECTS(fa * fb <= 0.0, "root not bracketed");
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;

  double c = a, fc = fa, d = b - a, e = d;
  for (int it = 0; it < opt.max_iterations; ++it) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = 2.0 * 1e-16 * std::abs(b) + 0.5 * opt.x_tolerance;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || std::abs(fb) < opt.f_tolerance) return b;

    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      const double s = fb / fa;
      double p, q;
      if (a == c) {  // secant
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {  // inverse quadratic
        const double qq = fa / fc, r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0) q = -q;
      p = std::abs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q),
                             std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0) == (fc > 0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  throw NumericalError("Brent: no convergence");
}

/// Expands [a, b] geometrically until f changes sign, then runs Brent.
template <typename F>
double find_root_auto_bracket(const F& f, double a, double b,
                              double expand = 2.0, int max_expand = 60,
                              const RootOptions& opt = {}) {
  CNTI_EXPECTS(b > a, "invalid initial bracket");
  double fa = f(a), fb = f(b);
  for (int i = 0; i < max_expand && fa * fb > 0.0; ++i) {
    b = a + (b - a) * expand;
    fb = f(b);
  }
  if (fa * fb > 0.0) throw NumericalError("auto-bracket failed");
  return find_root_brent(f, a, b, opt);
}

}  // namespace cnti::numerics
