// Numerical integration: adaptive Simpson (thermal broadening integrals in
// the Landauer conductance) and fixed-order Gauss-Legendre.
#pragma once

#include <array>
#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace cnti::numerics {

namespace detail {

template <typename F>
double adaptive_simpson_rec(const F& f, double a, double b, double fa,
                            double fm, double fb, double whole, double eps,
                            int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m), rm = 0.5 * (m + b);
  const double flm = f(lm), frm = f(rm);
  const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * eps) {
    return left + right + delta / 15.0;
  }
  return adaptive_simpson_rec(f, a, m, fa, flm, fm, left, 0.5 * eps,
                              depth - 1) +
         adaptive_simpson_rec(f, m, b, fm, frm, fb, right, 0.5 * eps,
                              depth - 1);
}

}  // namespace detail

/// Adaptive Simpson quadrature of f over [a, b] to absolute tolerance eps.
template <typename F>
double integrate_adaptive(const F& f, double a, double b, double eps = 1e-10,
                          int max_depth = 30) {
  CNTI_EXPECTS(b >= a, "integration bounds reversed");
  if (a == b) return 0.0;
  const double fa = f(a), fb = f(b), fm = f(0.5 * (a + b));
  const double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  return detail::adaptive_simpson_rec(f, a, b, fa, fm, fb, whole, eps,
                                      max_depth);
}

/// 16-point Gauss-Legendre quadrature over [a, b] (smooth integrands).
template <typename F>
double integrate_gauss16(const F& f, double a, double b) {
  // Abscissae/weights for n=16 on [-1, 1].
  static constexpr std::array<double, 8> x = {
      0.0950125098376374, 0.2816035507792589, 0.4580167776572274,
      0.6178762444026438, 0.7554044083550030, 0.8656312023878318,
      0.9445750230732326, 0.9894009349916499};
  static constexpr std::array<double, 8> w = {
      0.1894506104550685, 0.1826034150449236, 0.1691565193950025,
      0.1495959888165767, 0.1246289712555339, 0.0951585116824928,
      0.0622535239386479, 0.0271524594117541};
  const double c = 0.5 * (a + b), h = 0.5 * (b - a);
  double s = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    s += w[i] * (f(c + h * x[i]) + f(c - h * x[i]));
  }
  return s * h;
}

/// Composite trapezoid on n+1 uniform samples (tabulated data).
inline double integrate_trapezoid(const std::vector<double>& y, double dx) {
  CNTI_EXPECTS(y.size() >= 2, "need at least two samples");
  double s = 0.5 * (y.front() + y.back());
  for (std::size_t i = 1; i + 1 < y.size(); ++i) s += y[i];
  return s * dx;
}

}  // namespace cnti::numerics
