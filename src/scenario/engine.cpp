#include "scenario/engine.hpp"

#include <memory>
#include <numeric>

#include "common/units.hpp"
#include "obs/obs.hpp"
#include "rom/interconnect_rom.hpp"
#include "scenario/stage_codecs.hpp"

namespace cnti::scenario {

namespace {

KeyHasher line_rlc_hasher(const char* schema, const core::LineRlc& rlc) {
  KeyHasher h(schema);
  h.add(rlc.series_resistance_ohm)
      .add(rlc.resistance_per_m)
      .add(rlc.capacitance_per_m)
      .add(rlc.inductance_per_m);
  return h;
}

ContentKey topology_key(const char* schema,
                        const circuit::BusTopology& topology) {
  KeyHasher h = line_rlc_hasher(schema, topology.line);
  h.add(topology.coupling_cap_per_m)
      .add(topology.length_m)
      .add(topology.lines)
      .add(topology.segments);
  return h.key();
}

ContentKey topology_drive_key(const char* schema,
                              const circuit::BusTopology& topology,
                              const circuit::BusDrive& drive,
                              int time_steps) {
  KeyHasher h = line_rlc_hasher(schema, topology.line);
  h.add(topology.coupling_cap_per_m)
      .add(topology.length_m)
      .add(topology.lines)
      .add(topology.segments)
      .add(drive.aggressor)
      .add(drive.driver_ohm)
      .add(drive.vdd_v)
      .add(drive.edge_time_s)
      .add(drive.receiver_load_f)
      .add(drive.mna.solver)
      .add(drive.mna.sparse_threshold)
      .add(drive.mna.ordering)
      .add(drive.mna.factor)
      .add(time_steps);
  return h.key();
}

}  // namespace

core::MultiscaleInput to_multiscale_input(const Scenario& s) {
  core::MultiscaleInput in;
  in.outer_diameter_nm = s.tech.outer_diameter_nm;
  in.length_um = s.workload.length_um;
  in.dopant = s.tech.dopant;
  in.dopant_concentration = s.tech.dopant_concentration;
  in.temperature_k = s.tech.temperature_k;
  in.defect_spacing_um = s.tech.defect_spacing_um;
  in.contact_resistance_kohm = s.tech.contact_resistance_kohm;
  in.environment = s.tech.environment;
  in.driver_resistance_kohm = s.workload.driver_resistance_kohm;
  in.load_capacitance_ff = s.workload.load_capacitance_ff;
  return in;
}

circuit::BusTopology to_bus_topology(const Scenario& s,
                                     const core::MwcntLine& line) {
  circuit::BusTopology topology;
  topology.line = line.rlc();
  topology.coupling_cap_per_m =
      units::from_aF_per_um(s.workload.coupling_cap_af_per_um);
  topology.length_m = units::from_um(s.workload.length_um);
  topology.lines = s.workload.bus_lines;
  topology.segments = s.workload.bus_segments;
  return topology;
}

circuit::BusDrive to_bus_drive(const Scenario& s) {
  circuit::BusDrive drive;
  drive.aggressor = s.workload.aggressor;
  drive.driver_ohm = units::from_kOhm(s.workload.driver_resistance_kohm);
  drive.vdd_v = s.workload.vdd_v;
  drive.edge_time_s = units::from_ps(s.workload.edge_time_ps);
  drive.receiver_load_f = units::from_fF(s.workload.load_capacitance_ff);
  return drive;
}

ScenarioEngine::ScenarioEngine(EngineOptions options)
    : options_(options), cache_(options.cache_enabled, options.tier) {}

ScenarioEngine::LineStage ScenarioEngine::line_stage(
    const Scenario& s, const core::MultiscaleInput& in) const {
  // --- Atomistic stage. ---
  const auto channels = cache_.get_or_compute<core::ChannelStage>(
      stage::kAtomistic,
      KeyHasher("stage.atomistic.v2")
          .add(s.tech.dopant)
          .add(s.tech.dopant_concentration)
          .key(),
      [&] {
        return core::doping_channel_stage(s.tech.dopant,
                                          s.tech.dopant_concentration);
      },
      &channel_stage_codec());

  // --- Electrostatic environment stage (analytic or TCAD-extracted). ---
  const auto ce = cache_.get_or_compute<double>(
      stage::kCapacitance,
      KeyHasher("stage.capacitance.v2")
          .add(s.tech.capacitance_model)
          .add(s.tech.tcad_cells_per_side)
          .add(s.tech.environment.radius_m)
          .add(s.tech.environment.center_height_m)
          .add(s.tech.environment.neighbor_pitch_m)
          .add(s.tech.environment.eps_r)
          .add(s.tech.environment.coupling_factor)
          .key(),
      [&] {
        return s.tech.capacitance_model == CapacitanceModel::kTcad
                   ? tcad_environment_capacitance(s.tech.environment,
                                                  s.tech.tcad_cells_per_side)
                   : core::environment_capacitance(s.tech.environment);
      },
      &scalar_codec());

  // --- Materials + compact stage (cheap; computed inline). ---
  return {channels, core::MwcntLine(core::multiscale_line_spec(in, *channels,
                                                               *ce))};
}

ScenarioResult ScenarioEngine::run(const Scenario& s) const {
  static const obs::Counter scenarios = obs::counter("cnti.engine.scenarios");
  static const obs::Histogram scenario_hist =
      obs::histogram("cnti.engine.scenario_ns");
  scenarios.add();
  const obs::ObsSpan run_span("engine.run", "engine", scenario_hist);
  const core::MultiscaleInput in = to_multiscale_input(s);
  core::validate_multiscale_input(in);

  ScenarioResult out;
  out.label = s.label;

  const LineStage front = line_stage(s, in);
  const auto& channels = front.channels;
  const core::MwcntLine& line = front.line;

  // --- Circuit delay stage. ---
  double delay_s = 0.0;
  std::string delay_method = "none";
  if (s.analysis.delay) {
    const core::DriverLineLoad cfg =
        core::multiscale_driver_line_load(in, line);
    if (s.analysis.delay_model == DelayModel::kMnaTransient) {
      const auto d = cache_.get_or_compute<double>(
          stage::kDelayMna,
          line_rlc_hasher("stage.delay-mna.v3", cfg.line)
              .add(cfg.driver_resistance_ohm)
              .add(cfg.driver_output_capacitance_f)
              .add(cfg.length_m)
              .add(cfg.load_capacitance_f)
              .add(s.workload.vdd_v)
              .add(s.workload.edge_time_ps)
              .add(s.analysis.delay_segments)
              .add(s.analysis.time_steps)
              .key(),
          [&] {
            return mna_line_delay_s(
                cfg, s.workload.vdd_v,
                units::from_ps(s.workload.edge_time_ps),
                s.analysis.delay_segments, s.analysis.time_steps);
          },
          &scalar_codec());
      delay_s = *d;
      delay_method = "mna-transient";
    } else {
      delay_s = core::delay_50_estimate(cfg);
      delay_method = "elmore";
    }
  }
  out.line = core::assemble_multiscale_report(in, *channels, line, delay_s,
                                              delay_method);

  // --- Coupled-bus noise stage. ---
  if (s.analysis.noise) {
    const circuit::BusTopology topology = to_bus_topology(s, line);
    const circuit::BusDrive drive = to_bus_drive(s);
    if (s.analysis.noise_model == NoiseModel::kReducedOrder) {
      // Disk-persisted leaf: the evaluated noise result per (topology,
      // drive, grid). The PRIMA reduction itself is memory-only and nested
      // inside the compute, so one reduction per topology (+ aggressor
      // port choice) is shared across every driver/load/stimulus scenario
      // of the batch — and on a warm disk hit it is never rebuilt at all.
      // .v3: the settle window gained the receiver load and the delay
      // sentinel became NaN — same key inputs, different values, so the
      // schema bump retires every pre-fix persisted entry (PR-7 policy).
      // .v4: the sparse LU gained the supernodal kernel (kAuto default);
      // last-bit rounding differs from the scalar path, so persisted
      // numeric leaves from the scalar era are retired wholesale.
      KeyHasher eval_key = line_rlc_hasher("stage.bus-rom-eval.v4",
                                           topology.line);
      eval_key.add(topology.coupling_cap_per_m)
          .add(topology.length_m)
          .add(topology.lines)
          .add(topology.segments)
          .add(drive.aggressor)
          .add(drive.driver_ohm)
          .add(drive.receiver_load_f)
          .add(drive.vdd_v)
          .add(drive.edge_time_s)
          .add(s.analysis.time_steps);
      const auto result = cache_.get_or_compute<circuit::BusCrosstalkResult>(
          stage::kBusRomEval, eval_key.key(),
          [&] {
            KeyHasher h = line_rlc_hasher("stage.bus-rom.v4", topology.line);
            h.add(topology.coupling_cap_per_m)
                .add(topology.length_m)
                .add(topology.lines)
                .add(topology.segments)
                .add(drive.aggressor);
            const auto rom = cache_.get_or_compute<rom::BusRom>(
                stage::kBusRom, h.key(), [&] {
                  return std::make_shared<rom::BusRom>(topology,
                                                       drive.aggressor);
                });
            rom::BusScenario sc;
            sc.driver_ohm = drive.driver_ohm;
            sc.receiver_load_f = drive.receiver_load_f;
            sc.vdd_v = drive.vdd_v;
            sc.edge_time_s = drive.edge_time_s;
            return rom->evaluate(sc, s.analysis.time_steps);
          },
          &bus_result_codec());
      out.noise = *result;
    } else {
      // Full sparse-MNA transient: each distinct drive is simulated once
      // and persisted; the bare netlist is built once per topology,
      // memory-only, nested so a disk hit skips even the build.
      const auto result = cache_.get_or_compute<circuit::BusCrosstalkResult>(
          stage::kBusMna,
          topology_drive_key("stage.bus-mna.v4", topology, drive,
                             s.analysis.time_steps),
          [&] {
            const auto bare = cache_.get_or_compute<circuit::BusNetlist>(
                stage::kBusNetlist,
                topology_key("stage.bus-netlist.v2", topology),
                [&] { return circuit::build_bus_netlist(topology); });
            return circuit::analyze_bus_crosstalk(*bare, topology, drive,
                                                  s.analysis.time_steps);
          },
          &bus_result_codec());
      out.noise = *result;
    }
  }

  // --- Thermal/EM stage. ---
  if (s.analysis.thermal) {
    const auto thermal = cache_.get_or_compute<ThermalReport>(
        stage::kThermal,
        KeyHasher("stage.thermal.v2")
            .add(s.tech.outer_diameter_nm)
            .add(s.tech.temperature_k)
            .add(line.resistance(units::from_um(s.workload.length_um)))
            .add(s.workload.length_um)
            .add(s.workload.operating_current_ua)
            .add(s.workload.thermal_conductivity_w_mk)
            .add(s.workload.substrate_coupling_w_mk)
            .add(s.workload.max_temperature_rise_k)
            .key(),
        [&] { return thermal_stage(s.tech, s.workload, line); },
        &thermal_report_codec());
    out.thermal = *thermal;
  }
  return out;
}

std::vector<ScenarioResult> ScenarioEngine::run_batch(
    const std::vector<Scenario>& batch) const {
  if (batch.empty()) return {};
  static const obs::Counter batches = obs::counter("cnti.engine.batches");
  batches.add();
  const obs::ObsSpan batch_span("engine.run_batch", "engine");
  // The batch rides the generic sweep engine: one index axis, evaluated in
  // flat order on the thread pool, results slot-indexed (deterministic).
  std::vector<double> indices(batch.size());
  std::iota(indices.begin(), indices.end(), 0.0);
  const core::SweepGrid grid({{"scenario", std::move(indices)}});
  return core::run_sweep(
      grid,
      [&](const core::SweepPoint& p) {
        return run(batch[p.flat_index()]);
      },
      options_.sweep);
}

}  // namespace cnti::scenario
