#include "scenario/stage_codecs.hpp"

#include <bit>

namespace cnti::scenario {

ByteWriter& ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  return *this;
}

ByteWriter& ByteWriter::f64(double v) {
  return u64(std::bit_cast<std::uint64_t>(v));
}

ByteWriter& ByteWriter::i32(int v) {
  const auto u = static_cast<std::uint32_t>(v);
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((u >> (8 * i)) & 0xff));
  }
  return *this;
}

ByteWriter& ByteWriter::boolean(bool v) {
  buf_.push_back(v ? '\1' : '\0');
  return *this;
}

ByteWriter& ByteWriter::str(std::string_view s) {
  u64(s.size());
  buf_.append(s.data(), s.size());
  return *this;
}

bool ByteReader::take(std::size_t n) {
  if (!ok_ || buf_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  pos_ += n;
  return true;
}

std::uint64_t ByteReader::u64() {
  const std::size_t at = pos_;
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(buf_[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

int ByteReader::i32() {
  const std::size_t at = pos_;
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(buf_[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return static_cast<int>(v);
}

bool ByteReader::boolean() {
  const std::size_t at = pos_;
  if (!take(1)) return false;
  const unsigned char c = static_cast<unsigned char>(buf_[at]);
  if (c > 1) {
    ok_ = false;
    return false;
  }
  return c == 1;
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  const std::size_t at = pos_;
  if (!ok_ || n > buf_.size() - pos_) {
    ok_ = false;
    return {};
  }
  (void)take(static_cast<std::size_t>(n));
  return std::string(buf_.substr(at, static_cast<std::size_t>(n)));
}

const StageCodec<double>& scalar_codec() {
  static const StageCodec<double> codec{
      "scalar.v1",
      [](const double& v) { return ByteWriter().f64(v).take(); },
      [](std::string_view bytes) -> std::optional<double> {
        ByteReader r(bytes);
        const double v = r.f64();
        if (!r.done()) return std::nullopt;
        return v;
      }};
  return codec;
}

const StageCodec<core::ChannelStage>& channel_stage_codec() {
  static const StageCodec<core::ChannelStage> codec{
      "channel-stage.v1",
      [](const core::ChannelStage& v) {
        return ByteWriter()
            .f64(v.fermi_shift_ev)
            .f64(v.channels_per_shell)
            .take();
      },
      [](std::string_view bytes) -> std::optional<core::ChannelStage> {
        ByteReader r(bytes);
        core::ChannelStage v;
        v.fermi_shift_ev = r.f64();
        v.channels_per_shell = r.f64();
        if (!r.done()) return std::nullopt;
        return v;
      }};
  return codec;
}

const StageCodec<circuit::BusCrosstalkResult>& bus_result_codec() {
  static const StageCodec<circuit::BusCrosstalkResult> codec{
      "bus-result.v1",
      [](const circuit::BusCrosstalkResult& v) {
        return ByteWriter()
            .f64(v.peak_noise_v)
            .f64(v.peak_time_s)
            .i32(v.worst_victim)
            .f64(v.aggressor_delay_s)
            .i32(v.unknowns)
            .take();
      },
      [](std::string_view bytes)
          -> std::optional<circuit::BusCrosstalkResult> {
        ByteReader r(bytes);
        circuit::BusCrosstalkResult v;
        v.peak_noise_v = r.f64();
        v.peak_time_s = r.f64();
        v.worst_victim = r.i32();
        v.aggressor_delay_s = r.f64();
        v.unknowns = r.i32();
        if (!r.done()) return std::nullopt;
        return v;
      }};
  return codec;
}

const StageCodec<ThermalReport>& thermal_report_codec() {
  static const StageCodec<ThermalReport> codec{
      "thermal-report.v1",
      [](const ThermalReport& v) {
        return ByteWriter()
            .f64(v.peak_rise_k)
            .f64(v.hot_resistance_kohm)
            .boolean(v.thermal_runaway)
            .f64(v.ampacity_ua)
            .f64(v.current_density_a_cm2)
            .boolean(v.cnt_em_immune)
            .f64(v.cu_reference_mttf_s)
            .take();
      },
      [](std::string_view bytes) -> std::optional<ThermalReport> {
        ByteReader r(bytes);
        ThermalReport v;
        v.peak_rise_k = r.f64();
        v.hot_resistance_kohm = r.f64();
        v.thermal_runaway = r.boolean();
        v.ampacity_ua = r.f64();
        v.current_density_a_cm2 = r.f64();
        v.cnt_em_immune = r.boolean();
        v.cu_reference_mttf_s = r.f64();
        if (!r.done()) return std::nullopt;
        return v;
      }};
  return codec;
}

}  // namespace cnti::scenario
