#include "scenario/report.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/json_sink.hpp"
#include "common/units.hpp"

namespace cnti::scenario {

namespace {

/// RFC-4180 style field quoting (labels may carry arbitrary text).
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string num_field(double v) {
  // max_digits10: the engine guarantees bit-identical results, so the CSV
  // must round-trip doubles exactly — precision(12) silently dropped the
  // last ~5 bits of every value (the JSON writer was already exact).
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open report file for writing: " + path);
  }
  return out;
}

}  // namespace

const std::vector<std::string>& report_csv_header() {
  static const std::vector<std::string> header = {
      "label",
      "fermi_shift_ev",
      "channels_per_shell",
      "mfp_um",
      "shells",
      "resistance_kohm",
      "capacitance_ff",
      "electrostatic_cap_af_per_um",
      "delay_ps",
      "delay_method",
      "noise_peak_mv",
      "noise_peak_time_ps",
      "worst_victim",
      "aggressor_delay_ps",
      "mna_unknowns",
      "thermal_peak_rise_k",
      "ampacity_ua",
      "current_density_a_cm2",
      "cnt_em_immune",
      "cu_reference_mttf_s",
  };
  return header;
}

void write_report_csv(std::ostream& out,
                      const std::vector<ScenarioResult>& results) {
  const auto& header = report_csv_header();
  for (std::size_t i = 0; i < header.size(); ++i) {
    out << header[i] << (i + 1 < header.size() ? "," : "\n");
  }
  for (const ScenarioResult& r : results) {
    out << csv_field(r.label) << ',' << num_field(r.line.fermi_shift_ev)
        << ',' << num_field(r.line.channels_per_shell) << ','
        << num_field(r.line.mfp_um) << ',' << r.line.shells << ','
        << num_field(r.line.resistance_kohm) << ','
        << num_field(r.line.capacitance_ff) << ','
        << num_field(r.line.electrostatic_cap_af_per_um) << ','
        << num_field(r.line.delay_ps) << ',' << csv_field(r.line.delay_method)
        << ',';
    if (r.noise) {
      // A NaN aggressor delay (the 50% level was never crossed inside the
      // window) is an empty cell, mirroring the JSON writer's null — a
      // literal "nan" would not survive strict CSV consumers.
      const double delay_ps = units::to_ps(r.noise->aggressor_delay_s);
      out << num_field(r.noise->peak_noise_v * 1e3) << ','
          << num_field(units::to_ps(r.noise->peak_time_s)) << ','
          << r.noise->worst_victim << ','
          << (std::isfinite(delay_ps) ? num_field(delay_ps) : "") << ','
          << r.noise->unknowns << ',';
    } else {
      out << ",,,,,";
    }
    if (r.thermal) {
      out << num_field(r.thermal->peak_rise_k) << ','
          << num_field(r.thermal->ampacity_ua) << ','
          << num_field(r.thermal->current_density_a_cm2) << ','
          << (r.thermal->cnt_em_immune ? 1 : 0) << ','
          << num_field(r.thermal->cu_reference_mttf_s);
    } else {
      out << ",,,,";
    }
    out << '\n';
  }
}

void write_report_csv(const std::string& path,
                      const std::vector<ScenarioResult>& results) {
  auto out = open_or_throw(path);
  write_report_csv(out, results);
}

void write_result_json_object(std::ostream& out, const ScenarioResult& r,
                              const std::string& indent) {
  // Pretty (report) and compact (wire) modes share one schema: an empty
  // indent collapses every break to a single space-free line, which is
  // what the JSON-lines service protocol frames by.
  const bool pretty = !indent.empty();
  const std::string open = pretty ? "{\n" + indent + "  " : "{";
  const std::string sep = pretty ? ",\n" + indent + "  " : ", ";
  const std::string close = pretty ? "\n" + indent + "}" : "}";
  out << (pretty ? indent : "") << open;
  out << "\"label\": \"" << json_escape(r.label) << "\"" << sep;
  out << "\"line\": {"
      << "\"fermi_shift_ev\": " << json_number(r.line.fermi_shift_ev)
      << ", \"channels_per_shell\": " << json_number(r.line.channels_per_shell)
      << ", \"mfp_um\": " << json_number(r.line.mfp_um)
      << ", \"shells\": " << r.line.shells
      << ", \"resistance_kohm\": " << json_number(r.line.resistance_kohm)
      << ", \"capacitance_ff\": " << json_number(r.line.capacitance_ff)
      << ", \"electrostatic_cap_af_per_um\": "
      << json_number(r.line.electrostatic_cap_af_per_um)
      << ", \"delay_ps\": " << json_number(r.line.delay_ps)
      << ", \"delay_method\": \"" << json_escape(r.line.delay_method)
      << "\"}";
  if (r.noise) {
    out << sep << "\"noise\": {"
        << "\"peak_noise_v\": " << json_number(r.noise->peak_noise_v)
        << ", \"peak_time_s\": " << json_number(r.noise->peak_time_s)
        << ", \"worst_victim\": " << r.noise->worst_victim
        << ", \"aggressor_delay_s\": "
        << json_number(r.noise->aggressor_delay_s)
        << ", \"unknowns\": " << r.noise->unknowns << "}";
  }
  if (r.thermal) {
    out << sep << "\"thermal\": {"
        << "\"peak_rise_k\": " << json_number(r.thermal->peak_rise_k)
        << ", \"hot_resistance_kohm\": "
        << json_number(r.thermal->hot_resistance_kohm)
        << ", \"thermal_runaway\": "
        << (r.thermal->thermal_runaway ? "true" : "false")
        << ", \"ampacity_ua\": " << json_number(r.thermal->ampacity_ua)
        << ", \"current_density_a_cm2\": "
        << json_number(r.thermal->current_density_a_cm2)
        << ", \"cnt_em_immune\": "
        << (r.thermal->cnt_em_immune ? "true" : "false")
        << ", \"cu_reference_mttf_s\": "
        << json_number(r.thermal->cu_reference_mttf_s) << "}";
  }
  out << close;
}

void write_cache_stats_json_object(std::ostream& out, const MemoCache& cache,
                                   const std::string& indent) {
  const bool pretty = !indent.empty();
  const std::string open = pretty ? "{\n" + indent + "  " : "{";
  const std::string sep = pretty ? ",\n" + indent + "  " : ", ";
  const std::string close = pretty ? "\n" + indent + "}" : "}";
  out << open << "\"enabled\": " << (cache.enabled() ? "true" : "false")
      << sep << "\"stages\": {";
  const auto stats = cache.all_stats();
  bool first = true;
  for (const auto& [stage, s] : stats) {
    if (!first) out << ",";
    if (pretty) out << "\n" << indent << "    ";
    else if (!first) out << " ";
    out << "\"" << json_escape(stage) << "\": {\"hits\": " << s.hits
        << ", \"disk_hits\": " << s.disk_hits << ", \"misses\": " << s.misses
        << "}";
    first = false;
  }
  if (pretty && !first) out << "\n" << indent << "  ";
  out << "}" << close;
}

void write_report_json(std::ostream& out,
                       const std::vector<ScenarioResult>& results,
                       const MemoCache* cache) {
  out << "{\n  \"scenarios\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    write_result_json_object(out, results[i], "    ");
  }
  out << "\n  ]";
  if (cache != nullptr) {
    out << ",\n  \"cache\": ";
    write_cache_stats_json_object(out, *cache, "  ");
  }
  out << "\n}\n";
}

void write_report_json(const std::string& path,
                       const std::vector<ScenarioResult>& results,
                       const MemoCache* cache) {
  auto out = open_or_throw(path);
  write_report_json(out, results, cache);
}

}  // namespace cnti::scenario
