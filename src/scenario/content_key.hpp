// Deterministic content keys for the scenario memo cache. A key is a
// 128-bit digest (two independent FNV-1a lanes) of a spec's field values in
// a fixed order, so equal specs hash equal on every platform/run and a
// single flipped field changes the key. Keys identify *inputs*, never
// results: everything the cache stores must be a pure function of the
// hashed content (see docs/SCENARIO_ENGINE.md, "Determinism rules").
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <string_view>
#include <tuple>
#include <type_traits>

#include "common/error.hpp"

namespace cnti::scenario {

/// 128-bit cache key; ordered so it can index std::map.
struct ContentKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const ContentKey&, const ContentKey&) = default;
  friend auto operator<=>(const ContentKey&, const ContentKey&) = default;
};

/// Accumulates typed field values into a ContentKey. Doubles are hashed by
/// bit pattern with -0.0 normalized to +0.0; NaNs are rejected (a NaN field
/// would compare unequal to itself, poisoning cache identity). Every add()
/// overload prefixes its payload with a type-domain byte, so values of
/// different types never alias in the word stream: historically
/// add(bool true) and add(int64 1) fed identical bytes, which let two
/// specs whose adjacent fields were (bool, ...) vs (int, ...) hash equal.
/// That matters doubly now that keys address persistent disk entries —
/// which is also why every key schema string was bumped to ".v2" alongside
/// this fix (pre-tag keys must not resolve post-tag entries or vice versa).
class KeyHasher {
 public:
  KeyHasher() = default;

  /// Seeds the key space of a struct/stage so identical field streams from
  /// different schemas cannot collide (e.g. "tech-v2" vs "workload-v2").
  explicit KeyHasher(std::string_view schema) { add(schema); }

  KeyHasher& add(double v) {
    CNTI_EXPECTS(!std::isnan(v), "content key fields must not be NaN");
    if (v == 0.0) v = 0.0;  // collapse -0.0 and +0.0
    mix(kTagDouble);
    return add_word(std::bit_cast<std::uint64_t>(v));
  }

  KeyHasher& add(std::int64_t v) {
    mix(kTagInt);
    return add_word(static_cast<std::uint64_t>(v));
  }
  KeyHasher& add(int v) { return add(static_cast<std::int64_t>(v)); }
  KeyHasher& add(bool v) {
    mix(kTagBool);
    mix(v ? 1 : 0);
    return *this;
  }

  template <typename E>
    requires std::is_enum_v<E>
  KeyHasher& add(E v) {
    mix(kTagEnum);
    return add_word(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }

  /// String literals must not decay to the bool overload.
  KeyHasher& add(const char* s) { return add(std::string_view(s)); }

  KeyHasher& add(std::string_view s) {
    mix(kTagString);
    for (const char c : s) mix(static_cast<unsigned char>(c));
    // Length terminator keeps "ab" + "c" distinct from "a" + "bc".
    return add_word(static_cast<std::uint64_t>(s.size()) ^ kLenTag);
  }

  ContentKey key() const { return {h1_, h2_}; }

 private:
  static constexpr std::uint64_t kOffset1 = 14695981039346656037ULL;
  static constexpr std::uint64_t kOffset2 =
      14695981039346656037ULL ^ 0x9e3779b97f4a7c15ULL;
  static constexpr std::uint64_t kPrime1 = 1099511628211ULL;
  static constexpr std::uint64_t kPrime2 = 1099511628211ULL;
  static constexpr std::uint64_t kLenTag = 0xa5a5a5a5a5a5a5a5ULL;

  // Type-domain prefixes (arbitrary distinct bytes).
  static constexpr unsigned char kTagDouble = 0xd0;
  static constexpr unsigned char kTagInt = 0x17;
  static constexpr unsigned char kTagBool = 0xb0;
  static constexpr unsigned char kTagEnum = 0xe0;
  static constexpr unsigned char kTagString = 0x50;

  void mix(unsigned char byte) {
    h1_ = (h1_ ^ byte) * kPrime1;
    // The second lane sees the bytes premixed with a rotating counter so
    // the lanes stay independent despite the shared prime.
    h2_ = (h2_ ^ static_cast<std::uint64_t>(byte + 0x9e) ^
           std::rotl(h2_, 17)) *
          kPrime2;
  }

  KeyHasher& add_word(std::uint64_t w) {
    for (int i = 0; i < 8; ++i) {
      mix(static_cast<unsigned char>(w >> (8 * i)));
    }
    return *this;
  }

  std::uint64_t h1_ = kOffset1;
  std::uint64_t h2_ = kOffset2;
};

}  // namespace cnti::scenario
