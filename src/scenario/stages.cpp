#include "scenario/stages.hpp"

#include <cmath>

#include "circuit/builders.hpp"
#include "circuit/crosstalk.hpp"
#include "circuit/measure.hpp"
#include "circuit/mna.hpp"
#include "common/units.hpp"
#include "tcad/field_solver.hpp"
#include "tcad/structure.hpp"
#include "thermal/em.hpp"
#include "thermal/heat1d.hpp"

namespace cnti::scenario {

double tcad_environment_capacitance(const core::WireEnvironment& env,
                                    int cells_per_side) {
  CNTI_EXPECTS(cells_per_side >= 1, "need at least one cell per wire side");
  CNTI_EXPECTS(env.radius_m > 0, "wire radius must be positive");
  CNTI_EXPECTS(env.center_height_m > env.radius_m,
               "wire must sit above the ground plane");

  // Square wire of the same width as the cylinder, gap h to the plane.
  const double side = 2.0 * env.radius_m;
  const double h = env.center_height_m - env.radius_m;
  const bool neighbors = env.neighbor_pitch_m > 0;
  const double pitch = neighbors ? env.neighbor_pitch_m : 0.0;
  const double domain_x =
      neighbors ? std::max(20.0 * side, 4.0 * pitch) : 20.0 * side;
  const double domain_y = 10.0 * side;  // extrusion length
  const double domain_z = 6.0 * (h + side);
  const double plane_top = (h + side) / 2.0;
  const double wire_z0 = plane_top + h;
  const double wire_z1 = wire_z0 + side;

  // Node counts scale with the resolution knob; cells_per_side == 2
  // reproduces the historical 21 x 11 x 13 integration-test grid.
  const auto n = [cells_per_side](double cells_at_two) {
    return static_cast<std::size_t>(
        std::lround(cells_at_two / 2.0 * cells_per_side)) + 1;
  };
  tcad::Structure s(
      tcad::Grid3D::uniform(domain_x, domain_y, domain_z, n(20), n(10),
                            n(12)),
      env.eps_r);
  s.add_conductor("plane", {0, domain_x, 0, domain_y, 0, plane_top});
  const int wire = s.add_conductor(
      "wire", {domain_x / 2 - side / 2, domain_x / 2 + side / 2, 0, domain_y,
               wire_z0, wire_z1});
  int left = -1, right = -1;
  if (neighbors) {
    left = s.add_conductor(
        "left", {domain_x / 2 - pitch - side / 2,
                 domain_x / 2 - pitch + side / 2, 0, domain_y, wire_z0,
                 wire_z1});
    right = s.add_conductor(
        "right", {domain_x / 2 + pitch - side / 2,
                  domain_x / 2 + pitch + side / 2, 0, domain_y, wire_z0,
                  wire_z1});
  }

  const auto caps = tcad::extract_capacitance(s);
  // Off-diagonals of the Maxwell matrix are minus the pair couplings.
  double c_per_m = -caps.matrix(static_cast<std::size_t>(wire), 0);
  if (!(c_per_m > 0)) {
    throw NumericalError(
        "tcad_environment_capacitance: grid too coarse to resolve the "
        "wire (increase cells_per_side)");
  }
  if (neighbors) {
    c_per_m += env.coupling_factor *
               (-caps.matrix(static_cast<std::size_t>(wire),
                             static_cast<std::size_t>(left)) -
                caps.matrix(static_cast<std::size_t>(wire),
                            static_cast<std::size_t>(right)));
  }
  return c_per_m / domain_y;
}

double mna_line_delay_s(const core::DriverLineLoad& cfg, double vdd_v,
                        double edge_time_s, int segments, int time_steps) {
  CNTI_EXPECTS(vdd_v > 0, "vdd must be positive");
  CNTI_EXPECTS(edge_time_s > 0, "edge time must be positive");
  CNTI_EXPECTS(segments >= 2, "need at least two line segments");
  CNTI_EXPECTS(time_steps >= 2, "need at least two time steps");

  circuit::Circuit ckt;
  const circuit::NodeId in = ckt.node("in");
  const circuit::NodeId drv = ckt.node("drv");
  const circuit::NodeId out = ckt.node("out");
  ckt.add_vsource("vin", in, 0, circuit::bus_edge_wave(vdd_v, edge_time_s));
  ckt.add_resistor("rdrv", in, drv, cfg.driver_resistance_ohm);
  if (cfg.driver_output_capacitance_f > 0) {
    ckt.add_capacitor("cdrv", drv, 0, cfg.driver_output_capacitance_f);
  }
  circuit::add_distributed_line(ckt, "ln", drv, out, cfg.line, cfg.length_m,
                                segments);
  ckt.add_capacitor("cl", out, 0, cfg.load_capacitance_f);

  // Same window policy as the bus analyses: enough time constants for the
  // edge to settle, floored in edge times, shifted by the 5-edge-time
  // stimulus delay of bus_edge_wave.
  const double r_total = cfg.driver_resistance_ohm +
                         cfg.line.series_resistance_ohm +
                         cfg.line.resistance_per_m * cfg.length_m;
  const double c_total = cfg.line.capacitance_per_m * cfg.length_m +
                         cfg.load_capacitance_f +
                         cfg.driver_output_capacitance_f;
  circuit::TransientOptions opt;
  opt.t_stop_s =
      5.0 * edge_time_s + std::max(20.0 * edge_time_s, 12.0 * r_total * c_total);
  opt.dt_s = opt.t_stop_s / time_steps;
  const circuit::TransientResult res = circuit::simulate_transient(ckt, opt);

  const double d = circuit::propagation_delay(res, in, out, vdd_v / 2.0,
                                              vdd_v / 2.0, /*rising_in=*/true);
  if (d < 0) {
    throw NumericalError(
        "mna_line_delay_s: output never crossed 50% within the window");
  }
  return d;
}

ThermalReport thermal_stage(const TechnologySpec& tech,
                            const WorkloadSpec& workload,
                            const core::MwcntLine& line) {
  CNTI_EXPECTS(workload.operating_current_ua >= 0,
               "operating current must be >= 0");
  const double length_m = units::from_um(workload.length_um);
  const double diameter_m = units::from_nm(tech.outer_diameter_nm);
  const double area_m2 = M_PI * diameter_m * diameter_m / 4.0;

  thermal::LineThermalSpec spec;
  spec.length_m = length_m;
  spec.cross_section_m2 = area_m2;
  spec.thermal_conductivity = workload.thermal_conductivity_w_mk;
  spec.ambient_k = tech.temperature_k;
  // Flatten the compact model (contacts + scattering) into the uniform
  // per-length resistance the 1-D solver expects.
  spec.resistance_per_m = line.resistance(length_m) / length_m;
  spec.substrate_coupling = workload.substrate_coupling_w_mk;

  ThermalReport out;
  const double current_a = units::from_uA(workload.operating_current_ua);
  const auto sol = thermal::solve_self_heating(spec, current_a);
  out.peak_rise_k = sol.peak_rise_k;
  out.hot_resistance_kohm = units::to_kOhm(sol.hot_resistance_ohm);
  out.thermal_runaway = sol.thermal_runaway;
  out.ampacity_ua = units::to_uA(thermal::thermal_ampacity(
      spec, tech.temperature_k + workload.max_temperature_rise_k));

  const double j_a_m2 = current_a / area_m2;
  out.current_density_a_cm2 = units::to_A_per_cm2(j_a_m2);
  out.cnt_em_immune = thermal::cnt_em_immune(j_a_m2);
  out.cu_reference_mttf_s = thermal::black_mttf_s(
      j_a_m2, tech.temperature_k + sol.peak_rise_k);
  return out;
}

}  // namespace cnti::scenario
