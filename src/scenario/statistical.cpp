#include "scenario/statistical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/json_sink.hpp"
#include "numerics/rng.hpp"
#include "numerics/thread_pool.hpp"
#include "obs/obs.hpp"
#include "scenario/engine.hpp"
#include "service/json.hpp"

namespace cnti::scenario {

namespace {

void validate_spec(const VariabilitySpec& spec) {
  const double spans[] = {spec.resistance_span, spec.capacitance_span,
                          spec.coupling_span};
  for (const double s : spans) {
    CNTI_EXPECTS(s >= 0.0 && s < 1.0,
                 "VariabilitySpec: spans must lie in [0, 1)");
  }
}

/// 16-hex-digit fixed-width rendering of one key half (u64 does not
/// survive a JSON double, so keys travel as strings).
std::string hex_u64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::uint64_t parse_hex_u64(const std::string& s, const char* what) {
  if (s.size() != 16 ||
      s.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw service::ProtocolError(std::string("shard report: malformed ") +
                                 what);
  }
  std::uint64_t v = 0;
  for (const char c : s) {
    v = (v << 4) |
        static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  return v;
}

/// Exact nonnegative integer from a JSON number (doubles are exact up to
/// 2^53 — far beyond any sample count this layer accepts).
std::uint64_t to_u64(const service::JsonValue& v, const char* what) {
  const double d = v.as_number();
  if (!(d >= 0.0) || d != std::floor(d) || d > 9.007199254740992e15) {
    throw service::ProtocolError(
        std::string("shard report: not a nonnegative integer: ") + what);
  }
  return static_cast<std::uint64_t>(d);
}

/// Rejects objects with members outside the schema — the same strictness
/// the service protocol applies, so a typo'd hand-edited shard file fails
/// loudly instead of silently defaulting.
void check_members(const service::JsonValue::Object& obj,
                   std::initializer_list<const char*> expected,
                   const char* context) {
  for (const auto& [k, unused] : obj) {
    (void)unused;
    if (std::find_if(expected.begin(), expected.end(), [&](const char* e) {
          return k == e;
        }) == expected.end()) {
      throw service::ProtocolError(std::string(context) +
                                   ": unknown member: " + k);
    }
  }
}

void write_kpi_array(std::ostream& out, const std::vector<double>& values) {
  out << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out << (i == 0 ? "" : ", ") << json_number(values[i]);
  }
  out << "]";
}

std::vector<double> read_kpi_array(const service::JsonValue& v,
                                   bool allow_null, const char* what) {
  std::vector<double> out;
  out.reserve(v.as_array().size());
  for (const service::JsonValue& e : v.as_array()) {
    if (e.is_null()) {
      if (!allow_null) {
        throw service::ProtocolError(std::string("shard report: null in ") +
                                     what);
      }
      out.push_back(std::numeric_limits<double>::quiet_NaN());
    } else {
      out.push_back(e.as_number());
    }
  }
  return out;
}

void write_summary_json(std::ostream& out, const numerics::Summary& s) {
  out << "{\"count\": " << s.count << ", \"mean\": " << json_number(s.mean)
      << ", \"stddev\": " << json_number(s.stddev)
      << ", \"min\": " << json_number(s.min)
      << ", \"max\": " << json_number(s.max)
      << ", \"median\": " << json_number(s.median)
      << ", \"p05\": " << json_number(s.p05)
      << ", \"p95\": " << json_number(s.p95) << "}";
}

std::string num_field(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

void write_summary_csv_row(std::ostream& out, const char* kpi,
                           const numerics::Summary& s) {
  out << kpi << ',' << s.count << ',' << num_field(s.mean) << ','
      << num_field(s.stddev) << ',' << num_field(s.min) << ','
      << num_field(s.max) << ',' << num_field(s.median) << ','
      << num_field(s.p05) << ',' << num_field(s.p95) << '\n';
}

}  // namespace

rom::BusTechBox tech_box(const VariabilitySpec& spec) {
  validate_spec(spec);
  rom::BusTechBox box;
  box.lo = {1.0 - spec.resistance_span, 1.0 - spec.capacitance_span,
            1.0 - spec.coupling_span};
  box.hi = {1.0 + spec.resistance_span, 1.0 + spec.capacitance_span,
            1.0 + spec.coupling_span};
  return box;
}

rom::BusTechPoint sample_tech_point(const VariabilitySpec& spec,
                                    std::uint64_t sample_id) {
  validate_spec(spec);
  const numerics::Rng sample_stream =
      numerics::Rng(spec.seed).fork(sample_id);
  const auto draw = [&](std::uint64_t axis, double span) {
    if (span == 0.0) return 1.0;  // pinned axis: no stream consumed
    numerics::Rng axis_stream = sample_stream.fork(axis);
    return axis_stream.uniform(1.0 - span, 1.0 + span);
  };
  return {draw(0, spec.resistance_span), draw(1, spec.capacitance_span),
          draw(2, spec.coupling_span)};
}

std::pair<std::uint64_t, std::uint64_t> shard_range(std::uint64_t total,
                                                    std::uint64_t index,
                                                    std::uint64_t count) {
  CNTI_EXPECTS(count >= 1, "shard_range: need at least one shard");
  CNTI_EXPECTS(index < count, "shard_range: shard index out of range");
  return {index * total / count, (index + 1) * total / count};
}

StatisticalStudy reduce_shards(std::vector<StatisticalShard> shards) {
  CNTI_EXPECTS(!shards.empty(), "reduce_shards: no shards");
  // (begin, end) order so an empty shard sharing its begin with a full one
  // lands before it — the partition walk below needs that tie broken.
  std::sort(shards.begin(), shards.end(),
            [](const StatisticalShard& a, const StatisticalShard& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
            });
  const StatisticalShard& first = shards.front();

  StatisticalStudy study;
  study.study_key = first.study_key;
  study.samples = first.total_samples;

  numerics::Accumulator noise(static_cast<std::size_t>(study.samples));
  numerics::Accumulator delay(static_cast<std::size_t>(study.samples));
  std::uint64_t next = 0;
  for (const StatisticalShard& sh : shards) {
    CNTI_EXPECTS(sh.study_key.hi == study.study_key.hi &&
                     sh.study_key.lo == study.study_key.lo &&
                     sh.total_samples == study.samples,
                 "reduce_shards: shards describe different studies");
    CNTI_EXPECTS(sh.begin == next && sh.end >= sh.begin &&
                     sh.end <= study.samples,
                 "reduce_shards: shards do not partition the sample range");
    const std::size_t n = static_cast<std::size_t>(sh.end - sh.begin);
    CNTI_EXPECTS(sh.noise_v.size() == n && sh.delay_s.size() == n,
                 "reduce_shards: shard KPI arrays disagree with its range");
    // Stream in global sample order: the accumulator state (and therefore
    // every merged statistic, bit for bit) depends only on the sample
    // sequence, never on how it was sharded.
    for (std::size_t i = 0; i < n; ++i) {
      noise.add(sh.noise_v[i]);
      if (std::isfinite(sh.delay_s[i])) {
        delay.add(sh.delay_s[i]);
      } else {
        ++study.delay_invalid;
      }
    }
    next = sh.end;
  }
  CNTI_EXPECTS(next == study.samples,
               "reduce_shards: shards do not cover every sample");
  study.delay_valid = delay.count();
  if (noise.count() > 0) study.noise_v = noise.summary();
  if (delay.count() > 0) study.delay_s = delay.summary();
  return study;
}

void write_shard_json(std::ostream& out, const StatisticalShard& shard) {
  out << "{\n  \"schema\": \"cnti.shard.v1\",\n  \"study_key\": \""
      << hex_u64(shard.study_key.hi) << hex_u64(shard.study_key.lo)
      << "\",\n  \"total_samples\": " << shard.total_samples
      << ",\n  \"begin\": " << shard.begin << ",\n  \"end\": " << shard.end
      << ",\n  \"noise_v\": ";
  write_kpi_array(out, shard.noise_v);
  out << ",\n  \"delay_s\": ";
  write_kpi_array(out, shard.delay_s);
  out << "\n}\n";
}

StatisticalShard read_shard_json(const std::string& text) {
  const service::JsonValue doc = service::parse_json(text);
  const auto& obj = doc.as_object();
  check_members(obj,
                {"schema", "study_key", "total_samples", "begin", "end",
                 "noise_v", "delay_s"},
                "shard report");
  if (doc.at("schema").as_string() != "cnti.shard.v1") {
    throw service::ProtocolError("shard report: unknown schema: " +
                                 doc.at("schema").as_string());
  }
  StatisticalShard shard;
  const std::string& key = doc.at("study_key").as_string();
  if (key.size() != 32) {
    throw service::ProtocolError("shard report: malformed study_key");
  }
  shard.study_key.hi = parse_hex_u64(key.substr(0, 16), "study_key");
  shard.study_key.lo = parse_hex_u64(key.substr(16), "study_key");
  shard.total_samples = to_u64(doc.at("total_samples"), "total_samples");
  shard.begin = to_u64(doc.at("begin"), "begin");
  shard.end = to_u64(doc.at("end"), "end");
  shard.noise_v = read_kpi_array(doc.at("noise_v"), false, "noise_v");
  shard.delay_s = read_kpi_array(doc.at("delay_s"), true, "delay_s");
  if (shard.begin > shard.end || shard.end > shard.total_samples ||
      shard.noise_v.size() != shard.end - shard.begin ||
      shard.delay_s.size() != shard.end - shard.begin) {
    throw service::ProtocolError(
        "shard report: sample range and KPI arrays disagree");
  }
  return shard;
}

void write_study_json(std::ostream& out, const StatisticalStudy& study) {
  out << "{\n  \"schema\": \"cnti.study.v1\",\n  \"study_key\": \""
      << hex_u64(study.study_key.hi) << hex_u64(study.study_key.lo)
      << "\",\n  \"samples\": " << study.samples
      << ",\n  \"delay_valid\": " << study.delay_valid
      << ",\n  \"delay_invalid\": " << study.delay_invalid
      << ",\n  \"noise_v\": ";
  write_summary_json(out, study.noise_v);
  out << ",\n  \"delay_s\": ";
  write_summary_json(out, study.delay_s);
  out << "\n}\n";
}

void write_study_csv(std::ostream& out, const StatisticalStudy& study) {
  out << "kpi,count,mean,stddev,min,max,median,p05,p95\n";
  write_summary_csv_row(out, "peak_noise_v", study.noise_v);
  write_summary_csv_row(out, "aggressor_delay_s", study.delay_s);
}

StatisticalShard ScenarioEngine::run_statistical(const Scenario& s) const {
  CNTI_EXPECTS(s.variability.samples > 0,
               "run_statistical: variability.samples must be > 0");
  return run_statistical(
      s, 0, static_cast<std::uint64_t>(s.variability.samples));
}

StatisticalShard ScenarioEngine::run_statistical(const Scenario& s,
                                                 std::uint64_t begin,
                                                 std::uint64_t end) const {
  static const obs::Counter samples_counter =
      obs::counter("cnti.engine.samples");
  static const obs::Gauge rate_gauge = obs::gauge("cnti.engine.samples_per_s");
  const obs::ObsSpan stat_span("engine.run_statistical", "engine");
  const std::uint64_t t_stat0 = obs::now_ns();
  const VariabilitySpec& var = s.variability;
  CNTI_EXPECTS(var.samples > 0,
               "run_statistical: variability.samples must be > 0");
  validate_spec(var);
  CNTI_EXPECTS(s.analysis.noise,
               "run_statistical: the statistical KPIs are the coupled-bus "
               "noise/delay — enable analysis.noise");
  const std::uint64_t total = static_cast<std::uint64_t>(var.samples);
  CNTI_EXPECTS(begin <= end && end <= total,
               "run_statistical: invalid sample range");

  const core::MultiscaleInput in = to_multiscale_input(s);
  core::validate_multiscale_input(in);
  const LineStage front = line_stage(s, in);
  const circuit::BusTopology topology = to_bus_topology(s, front.line);
  const circuit::BusDrive drive = to_bus_drive(s);
  const rom::BusTechBox box = tech_box(var);

  // One corner-anchored reduction per (topology, box, aggressor), shared
  // across every sample, shard and thread of the study. Memory-only, like
  // the plain BusRom stage: the reduction nests inside the per-sample
  // evaluations and is cheap relative to the study it unlocks.
  // .v2: sparse-LU supernodal kernel era (see engine.cpp's .v4 bumps).
  KeyHasher prom_key("stage.bus-prom.v2");
  prom_key.add(topology.line.series_resistance_ohm)
      .add(topology.line.resistance_per_m)
      .add(topology.line.capacitance_per_m)
      .add(topology.line.inductance_per_m)
      .add(topology.coupling_cap_per_m)
      .add(topology.length_m)
      .add(topology.lines)
      .add(topology.segments)
      .add(drive.aggressor)
      .add(box.lo.resistance_scale)
      .add(box.lo.capacitance_scale)
      .add(box.lo.coupling_scale)
      .add(box.hi.resistance_scale)
      .add(box.hi.capacitance_scale)
      .add(box.hi.coupling_scale);
  const auto prom = cache_.get_or_compute<rom::ParametrizedBusRom>(
      stage::kBusProm, prom_key.key(), [&] {
        return std::make_shared<rom::ParametrizedBusRom>(topology, box,
                                                         drive.aggressor);
      });

  rom::BusScenario sc;
  sc.driver_ohm = drive.driver_ohm;
  sc.receiver_load_f = drive.receiver_load_f;
  sc.vdd_v = drive.vdd_v;
  sc.edge_time_s = drive.edge_time_s;

  StatisticalShard shard;
  shard.study_key = content_key(s);
  shard.total_samples = total;
  shard.begin = begin;
  shard.end = end;
  const std::size_t count = static_cast<std::size_t>(end - begin);
  shard.noise_v.assign(count, 0.0);
  shard.delay_s.assign(count, 0.0);
  // Slot-indexed per-sample evaluation: sample begin+i writes slot i, so
  // results are bit-identical at any thread count / chunk grain.
  numerics::parallel_chunks(
      count, options_.sweep.grain,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const rom::BusTechPoint p =
              sample_tech_point(var, begin + static_cast<std::uint64_t>(i));
          const circuit::BusCrosstalkResult r =
              prom->evaluate(p, sc, s.analysis.time_steps);
          shard.noise_v[i] = r.peak_noise_v;
          shard.delay_s[i] = r.aggressor_delay_s;
        }
      },
      options_.sweep.threads);
  samples_counter.add(count);
  const std::uint64_t elapsed_ns = obs::now_ns() - t_stat0;
  if (elapsed_ns > 0 && count > 0) {
    rate_gauge.set(static_cast<double>(count) * 1e9 /
                   static_cast<double>(elapsed_ns));
  }
  return shard;
}

}  // namespace cnti::scenario
