// ScenarioEngine: routes declarative Scenarios through the multi-scale
// stage graph
//
//   atomistic channels -> C_E (analytic | TCAD) -> compact line model
//     -> circuit KPIs (Elmore | MNA delay; ROM | full-MNA bus noise)
//     -> thermal/EM KPIs
//
// with a content-keyed MemoCache so a batch automatically shares the
// expensive per-technology / per-topology artifacts (TCAD extractions,
// bare bus netlists, PRIMA BusRom reductions, full-MNA transients) across
// scenarios. Batches execute on numerics::ThreadPool through
// core::SweepEngine and are bit-identical at any thread count — every
// cached value is a pure function of its content key, so sharing changes
// cost, never results (see docs/SCENARIO_ENGINE.md).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "circuit/crosstalk.hpp"
#include "core/multiscale.hpp"
#include "core/mwcnt_line.hpp"
#include "core/sweep_engine.hpp"
#include "scenario/memo_cache.hpp"
#include "scenario/spec.hpp"
#include "scenario/stages.hpp"

namespace cnti::scenario {

struct StatisticalShard;  // scenario/statistical.hpp

/// Cache bucket names of the engine's memoized stages — the keys under
/// which MemoCache::stats reports hit/miss counts. Exported so consumers
/// (benches, examples, tests) cannot drift from the engine's spelling:
/// stats() silently returns zeros for unknown stage names.
namespace stage {
inline constexpr const char* kAtomistic = "atomistic";
inline constexpr const char* kCapacitance = "capacitance";
inline constexpr const char* kDelayMna = "delay-mna";
inline constexpr const char* kBusNetlist = "bus-netlist";
inline constexpr const char* kBusRom = "bus-rom";
inline constexpr const char* kBusProm = "bus-prom";
inline constexpr const char* kBusRomEval = "bus-rom-eval";
inline constexpr const char* kBusMna = "bus-mna";
inline constexpr const char* kThermal = "thermal";
}  // namespace stage

/// Per-scenario outputs; sections absent from the AnalysisRequest stay
/// disengaged.
struct ScenarioResult {
  std::string label;
  /// Atomistic -> materials -> compact -> delay chain, field-for-field
  /// comparable with core::run_multiscale_flow of the equivalent input.
  core::MultiscaleReport line;
  std::optional<circuit::BusCrosstalkResult> noise;
  std::optional<ThermalReport> thermal;
};

struct EngineOptions {
  /// Disable to recompute every stage per scenario (the differential
  /// baseline the cached path must match bit-for-bit).
  bool cache_enabled = true;
  /// Optional second-level store (typically a service::DiskCache): leaf
  /// stage results survive process restarts and are shared across
  /// engines/daemons pointed at the same store. Ignored when the cache is
  /// disabled. Persistence changes cost, never values — a revived entry
  /// is bit-identical to the computed one by the codecs' construction.
  std::shared_ptr<CacheTier> tier;
  /// Batch execution (thread count / chunk grain) for run_batch.
  core::SweepOptions sweep{};
};

class ScenarioEngine {
 public:
  explicit ScenarioEngine(EngineOptions options = {});

  /// Runs one scenario through the stage graph (thread-safe; shares the
  /// engine's cache with concurrent callers).
  ScenarioResult run(const Scenario& scenario) const;

  /// Runs a batch in flat order via core::run_sweep; results are
  /// bit-identical at any thread count and to per-scenario run() calls.
  std::vector<ScenarioResult> run_batch(
      const std::vector<Scenario>& batch) const;

  /// Runs the scenario's deterministic Monte Carlo (variability.samples
  /// technology draws, evaluated at ROM cost on a cached corner-anchored
  /// ParametrizedBusRom) for the global sample range [begin, end) — one
  /// shard of a possibly multi-process study. Requires analysis.noise and
  /// variability.samples > 0; results are bit-identical at any thread
  /// count and shard partition (see scenario/statistical.hpp).
  StatisticalShard run_statistical(const Scenario& scenario,
                                   std::uint64_t begin,
                                   std::uint64_t end) const;

  /// The whole study in one process: run_statistical(s, 0, samples).
  StatisticalShard run_statistical(const Scenario& scenario) const;

  const EngineOptions& options() const { return options_; }
  const MemoCache& cache() const { return cache_; }

 private:
  /// Shared front of run()/run_statistical(): the cached atomistic +
  /// electrostatic stages and the compact line they imply.
  struct LineStage {
    std::shared_ptr<const core::ChannelStage> channels;
    core::MwcntLine line;
  };
  LineStage line_stage(const Scenario& scenario,
                       const core::MultiscaleInput& input) const;

  EngineOptions options_;
  mutable MemoCache cache_;
};

/// The core-façade input equivalent to a scenario's technology + workload
/// (the seam the MultiscaleHooks-parity tests compare across).
core::MultiscaleInput to_multiscale_input(const Scenario& scenario);

/// The coupled-bus topology/drive implied by a scenario (what the noise
/// stages — and their cache keys — are built from).
circuit::BusTopology to_bus_topology(const Scenario& scenario,
                                     const core::MwcntLine& line);
circuit::BusDrive to_bus_drive(const Scenario& scenario);

}  // namespace cnti::scenario
