// StageCodecs for the engine's disk-persisted stage values, plus the
// little-endian byte pack/unpack helpers they are built from. Doubles are
// encoded by bit pattern (bit-identical round trip, the engine's core
// guarantee), integers as fixed-width little-endian words, so an encoded
// entry is byte-identical across platforms/runs — a requirement for
// content-addressed storage shared between processes.
//
// Only *leaf* stage values are persisted (scalars, BusCrosstalkResult,
// ThermalReport, ChannelStage). Heavyweight intermediate artifacts (bare
// bus netlists, PRIMA BusRom reductions) stay memory-only: the engine
// nests their computation inside the leaf stages' compute callbacks, so a
// disk hit on the leaf means the intermediate is never rebuilt at all.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "circuit/crosstalk.hpp"
#include "core/multiscale.hpp"
#include "scenario/memo_cache.hpp"
#include "scenario/stages.hpp"

namespace cnti::scenario {

/// Append-only little-endian byte packer.
class ByteWriter {
 public:
  ByteWriter& u64(std::uint64_t v);
  ByteWriter& f64(double v);
  ByteWriter& i32(int v);
  ByteWriter& boolean(bool v);
  ByteWriter& str(std::string_view s);  ///< u64 length + raw bytes.
  std::string take() { return std::move(buf_); }
  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked reader over an encoded buffer. Reads past the end (or a
/// malformed length) latch ok() to false and return zero values; callers
/// check done() — all bytes consumed and no fault — before trusting the
/// fields. This soft-fail shape is what lets codec decode() return nullopt
/// instead of throwing on stale layouts.
class ByteReader {
 public:
  explicit ByteReader(std::string_view buf) : buf_(buf) {}

  std::uint64_t u64();
  double f64();
  int i32();
  bool boolean();
  std::string str();

  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == buf_.size(); }

 private:
  bool take(std::size_t n);  ///< Advances pos_ or latches ok_ = false.

  std::string_view buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Codec for scalar stage values (TCAD capacitance, MNA delay).
const StageCodec<double>& scalar_codec();

/// Codec for the atomistic channel stage.
const StageCodec<core::ChannelStage>& channel_stage_codec();

/// Codec for bus noise results (both the full-MNA and ROM-evaluated
/// stages store this).
const StageCodec<circuit::BusCrosstalkResult>& bus_result_codec();

/// Codec for the thermal/EM stage report.
const StageCodec<ThermalReport>& thermal_report_codec();

}  // namespace cnti::scenario
