// Statistical-SI studies: deterministic Monte Carlo over a scenario's
// VariabilitySpec, sharded across processes and merged to one report.
//
// Determinism contract (what makes 1-, 2- and 8-shard runs byte-identical):
//   * Sample i's technology point is a pure function of
//     (variability.seed, i): Rng(seed).fork(i).fork(axis) — independent of
//     shard boundaries, thread count and draw order.
//   * Each sample is evaluated on the scenario's corner-anchored
//     ParametrizedBusRom (ROM cost per sample; see rom/parametrized_rom.hpp)
//     into per-sample KPI values carried verbatim in the shard report.
//   * reduce_shards validates that the shards exactly partition
//     [0, total_samples), concatenates the per-sample values in global
//     sample order and streams them through one Accumulator — the merge is
//     a pure function of the sample set, not of the shard decomposition.
//
// Shard reports round-trip through JSON with 17-significant-digit numbers
// (bit-exact via the strict service parser); a NaN delay — the
// never-crossed sentinel — is null on the wire and an invalid-sample count
// in the merged study, never a poisoned statistic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "numerics/stats.hpp"
#include "rom/parametrized_rom.hpp"
#include "scenario/spec.hpp"

namespace cnti::scenario {

/// The axis-scale box a VariabilitySpec spans (the corners the
/// parametrized ROM anchors on). Spans must lie in [0, 1).
rom::BusTechBox tech_box(const VariabilitySpec& spec);

/// Technology point of sample `sample_id`: per-axis uniform multiplicative
/// scales in [1 - span, 1 + span), drawn from
/// Rng(spec.seed).fork(sample_id).fork(axis). Pure function of
/// (spec, sample_id) — the whole determinism contract hangs off this.
rom::BusTechPoint sample_tech_point(const VariabilitySpec& spec,
                                    std::uint64_t sample_id);

/// One shard's worth of a statistical study: per-sample KPI values for the
/// contiguous global sample range [begin, end).
struct StatisticalShard {
  ContentKey study_key{};  ///< content_key of the scenario (incl. spec).
  std::uint64_t total_samples = 0;
  std::uint64_t begin = 0, end = 0;
  std::vector<double> noise_v;  ///< Worst victim peak, sample begin+i.
  std::vector<double> delay_s;  ///< Aggressor 50% delay; NaN = no crossing.
};

/// Merged study statistics. The delay summary covers valid (finite)
/// samples only; delay_invalid counts the NaN-rejected ones. A study whose
/// every delay is invalid carries a zeroed delay summary with count 0.
struct StatisticalStudy {
  ContentKey study_key{};
  std::uint64_t samples = 0;
  std::uint64_t delay_valid = 0, delay_invalid = 0;
  numerics::Summary noise_v{};
  numerics::Summary delay_s{};
};

/// Contiguous sample range of shard `index` out of `count`:
/// [index * total / count, (index + 1) * total / count). Every global
/// sample id lands in exactly one shard for any count >= 1.
std::pair<std::uint64_t, std::uint64_t> shard_range(std::uint64_t total,
                                                    std::uint64_t index,
                                                    std::uint64_t count);

/// Validates that `shards` agree on the study and exactly partition
/// [0, total_samples), then reduces them in global sample order. Throws
/// PreconditionError on overlap, gap, or study mismatch.
StatisticalStudy reduce_shards(std::vector<StatisticalShard> shards);

/// Shard report JSON (schema cnti.shard.v1): bit-exact doubles, NaN delay
/// as null, the study key as a hex string.
void write_shard_json(std::ostream& out, const StatisticalShard& shard);
StatisticalShard read_shard_json(const std::string& text);

/// Merged study report: JSON (schema cnti.study.v1) and a summary CSV of
/// one row per KPI. Byte-identical for byte-identical studies.
void write_study_json(std::ostream& out, const StatisticalStudy& study);
void write_study_csv(std::ostream& out, const StatisticalStudy& study);

}  // namespace cnti::scenario
