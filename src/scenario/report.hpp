// Structured emission of scenario batch results: a flat CSV (one row per
// scenario, stable column set, blank cells for KPIs the scenario did not
// request) and a JSON document (scenario array plus the engine's cache
// statistics) for machine consumption alongside the benches'
// CNTI_BENCH_JSON trajectory files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/engine.hpp"

namespace cnti::scenario {

/// Header of write_report_csv, exposed so consumers can bind columns.
const std::vector<std::string>& report_csv_header();

void write_report_csv(std::ostream& out,
                      const std::vector<ScenarioResult>& results);
void write_report_csv(const std::string& path,
                      const std::vector<ScenarioResult>& results);

/// `cache` adds a "cache" section with per-stage hit/disk-hit/miss counts.
void write_report_json(std::ostream& out,
                       const std::vector<ScenarioResult>& results,
                       const MemoCache* cache = nullptr);
void write_report_json(const std::string& path,
                       const std::vector<ScenarioResult>& results,
                       const MemoCache* cache = nullptr);

/// One result as a JSON object in exactly the report's scenario schema.
/// `indent` selects the layout: non-empty pretty-prints at that base indent
/// (the report form), empty emits a single newline-free line (the service
/// wire form — the protocol parser is the inverse of this writer).
void write_result_json_object(std::ostream& out, const ScenarioResult& r,
                              const std::string& indent);

/// The report's "cache" section ({"enabled": ..., "stages": {...}}), also
/// reused by the service's end-of-batch wire message. Empty indent =
/// single-line form.
void write_cache_stats_json_object(std::ostream& out, const MemoCache& cache,
                                   const std::string& indent);

}  // namespace cnti::scenario
