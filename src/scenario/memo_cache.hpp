// Content-keyed memo cache behind the scenario engine: one entry per
// (stage, ContentKey), computed exactly once even under concurrent
// requests (later requesters block on the first computation's future).
// Every cached value must be a deterministic pure function of the hashed
// content and immutable once published — that is what makes a cached batch
// bit-identical to the uncached per-scenario path at any thread count.
//
// The cache is tiered: below the in-process future map an optional
// CacheTier (the service layer's disk-backed DiskCache) persists encoded
// stage values across restarts. A memory miss consults the tier before
// computing; a computed value is stored back best-effort. The tier only
// ever sees bytes produced by a StageCodec whose value-schema tag is
// versioned independently of the key schema, so both a key-format change
// (".v2" schema strings) and a value-layout change read as clean misses,
// never as silently misdecoded entries.
#pragma once

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <typeindex>
#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "scenario/content_key.hpp"

namespace cnti::scenario {

/// Hit/miss counters of one stage (or the whole cache). As long as no
/// compute throws, the once-per-key future scheme makes the counts
/// thread-schedule independent: misses == distinct keys computed,
/// disk_hits == distinct keys revived from the tier, hits == requests
/// that joined an in-memory entry. A throwing compute erases its entry so
/// the key can retry, which re-counts that key (and requests racing the
/// erase may count as hits yet receive the exception) — under failures
/// the split is best-effort diagnostics, not an invariant.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    disk_hits += o.disk_hits;
    misses += o.misses;
    return *this;
  }
};

/// Second-level store consulted on in-memory misses (disk, in production).
/// Implementations must validate entry integrity on load — a corrupt,
/// truncated or wrong-version entry is evicted and reported as a miss,
/// never returned — and must swallow store failures (a broken disk
/// degrades the cache to memory-only; it must not fail computations).
class CacheTier {
 public:
  virtual ~CacheTier() = default;

  /// Returns the encoded bytes stored for (stage, value_schema, key), or
  /// nullopt on miss / failed validation.
  virtual std::optional<std::string> load(std::string_view stage,
                                          std::string_view value_schema,
                                          const ContentKey& key) = 0;

  /// Persists encoded bytes for (stage, value_schema, key). Best-effort.
  virtual void store(std::string_view stage, std::string_view value_schema,
                     const ContentKey& key, std::string_view bytes) = 0;
};

/// How a stage value crosses the tier boundary. `schema` is a versioned
/// tag of the *encoded layout* ("bus-result.v1"); bump it whenever encode
/// changes so stale disk entries read as misses. decode returns nullopt on
/// any layout mismatch (the tier has already checksummed the bytes, so a
/// decode failure means schema drift, which is recomputed, not trusted).
template <typename T>
struct StageCodec {
  std::string schema;
  std::function<std::string(const T&)> encode;
  std::function<std::optional<T>(std::string_view)> decode;
};

class MemoCache {
 public:
  explicit MemoCache(bool enabled = true,
                     std::shared_ptr<CacheTier> tier = nullptr)
      : enabled_(enabled), tier_(std::move(tier)) {}

  bool enabled() const { return enabled_; }
  const std::shared_ptr<CacheTier>& tier() const { return tier_; }

  /// Returns the cached value for (stage, key), computing it via `compute`
  /// on the first request. `compute` must return std::shared_ptr<const T>
  /// (or a value convertible to it) and be a pure function of the key's
  /// content. A throwing compute propagates to every concurrent requester
  /// of the key and leaves the key absent, so a later request retries.
  /// When the cache is disabled every request computes (and counts a miss).
  template <typename T, typename Fn>
  std::shared_ptr<const T> get_or_compute(std::string_view stage,
                                          const ContentKey& key,
                                          Fn&& compute) {
    return get_or_compute<T>(stage, key, std::forward<Fn>(compute),
                             static_cast<const StageCodec<T>*>(nullptr));
  }

  /// Tiered variant: on an in-memory miss the owner first consults the
  /// tier (if any) under the codec's value schema; only if that misses —
  /// or fails to decode — does `compute` run, and the fresh value is then
  /// stored back. Values revived from the tier count as disk_hits. The
  /// disabled cache skips the tier entirely (it is the differential
  /// baseline that must recompute everything).
  template <typename T, typename Fn>
  std::shared_ptr<const T> get_or_compute(std::string_view stage,
                                          const ContentKey& key,
                                          Fn&& compute,
                                          const StageCodec<T>* codec) {
    if (!enabled_) {
      StageObs so;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_map(stage).misses;
        so = stage_obs(stage);
      }
      so.misses.add();
      const obs::ObsSpan compute_span(so.compute_name, "cache");
      return to_shared<T>(compute());
    }
    const std::type_index want(typeid(T));
    std::shared_future<Value> fut;
    std::promise<Value> mine;
    bool owner = false;
    StageObs so;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      so = stage_obs(stage);
      auto it = entries_.find({std::string(stage), key});
      if (it == entries_.end()) {
        owner = true;
        fut = mine.get_future().share();
        entries_.emplace(std::pair<std::string, ContentKey>(stage, key), fut);
      } else {
        fut = it->second;
        ++stats_map(stage).hits;
      }
    }
    if (!owner) so.hits.add();
    if (owner) {
      std::shared_ptr<const T> value;
      bool from_tier = false;
      try {
        if (tier_ != nullptr && codec != nullptr) {
          const std::uint64_t t_revive = obs::span_start();
          if (auto bytes = tier_->load(stage, codec->schema, key)) {
            if (auto decoded = codec->decode(*bytes)) {
              value = std::make_shared<const T>(std::move(*decoded));
              from_tier = true;
            }
          }
          if (from_tier) {
            obs::span_end(so.revive_name, "cache", t_revive, so.revive_hist);
          }
        }
        if (value == nullptr) {
          const obs::ObsSpan compute_span(so.compute_name, "cache");
          value = to_shared<T>(compute());
        }
        mine.set_value(Value{want, value});
      } catch (...) {
        // Erase before publishing the exception: a waiter that catches it
        // and immediately retries must find the key absent (fresh
        // compute), never rejoin the dead future.
        {
          const std::lock_guard<std::mutex> lock(mu_);
          entries_.erase({std::string(stage), key});
          ++stats_map(stage).misses;
        }
        so.misses.add();
        mine.set_exception(std::current_exception());
        throw;
      }
      {
        const std::lock_guard<std::mutex> lock(mu_);
        auto& s = stats_map(stage);
        from_tier ? ++s.disk_hits : ++s.misses;
      }
      (from_tier ? so.disk_hits : so.misses).add();
      if (!from_tier && tier_ != nullptr && codec != nullptr) {
        // After set_value so waiters never block on tier IO; best-effort
        // (a tier/codec failure here must not fail a computed request).
        try {
          tier_->store(stage, codec->schema, key, codec->encode(*value));
        } catch (...) {  // NOLINT(bugprone-empty-catch)
        }
      }
      return value;
    }
    const Value& v = fut.get();
    CNTI_EXPECTS(v.type == want,
                 "memo cache type mismatch for stage \"" +
                     std::string(stage) + "\"");
    return std::static_pointer_cast<const T>(v.value);
  }

  CacheStats stats(std::string_view stage) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = stats_.find(std::string(stage));
    return it == stats_.end() ? CacheStats{} : it->second;
  }

  /// Per-stage counters, keyed by stage name (report emission).
  std::map<std::string, CacheStats> all_stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  CacheStats total_stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    CacheStats out;
    for (const auto& [stage, s] : stats_) out += s;
    return out;
  }

  std::size_t entry_count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// Drops the in-memory entries and counters; the tier is untouched (a
  /// cleared cache re-populates from disk, which is the restart scenario).
  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    stats_.clear();
  }

 private:
  struct Value {
    std::type_index type = std::type_index(typeid(void));
    std::shared_ptr<const void> value;
  };

  /// Accepts a plain T, shared_ptr<T> or shared_ptr<const T> from compute().
  template <typename T, typename R>
  static std::shared_ptr<const T> to_shared(R&& r) {
    if constexpr (std::is_convertible_v<R&&, std::shared_ptr<const T>>) {
      return std::forward<R>(r);
    } else {
      return std::make_shared<T>(std::forward<R>(r));
    }
  }

  CacheStats& stats_map(std::string_view stage) {
    return stats_[std::string(stage)];  // callers hold mu_
  }

  /// Per-stage obs handles (`cnti.cache.<stage>.*` counters, the revive
  /// latency histogram, and interned span names), registered on the first
  /// touch of a stage. Handle copies are cheap and safe to use after mu_
  /// is released. Lock order is mu_ -> obs registry mutex; obs never calls
  /// back into the cache.
  struct StageObs {
    obs::Counter hits;
    obs::Counter misses;
    obs::Counter disk_hits;
    obs::Histogram revive_hist;
    const char* compute_name = "stage.?";
    const char* revive_name = "revive.?";
  };

  StageObs& stage_obs(std::string_view stage) {  // callers hold mu_
    const auto it = obs_.find(stage);
    if (it != obs_.end()) return it->second;
    const std::string s(stage);
    StageObs so;
    so.hits = obs::counter("cnti.cache." + s + ".hits");
    so.misses = obs::counter("cnti.cache." + s + ".misses");
    so.disk_hits = obs::counter("cnti.cache." + s + ".disk_hits");
    so.revive_hist = obs::histogram("cnti.cache." + s + ".revive_ns");
    so.compute_name = obs::intern_name("stage." + s);
    so.revive_name = obs::intern_name("revive." + s);
    return obs_.emplace(s, so).first->second;
  }

  bool enabled_ = true;
  std::shared_ptr<CacheTier> tier_;
  mutable std::mutex mu_;
  std::map<std::pair<std::string, ContentKey>, std::shared_future<Value>>
      entries_;
  std::map<std::string, CacheStats> stats_;
  std::map<std::string, StageObs, std::less<>> obs_;
};

}  // namespace cnti::scenario
