// Content-keyed memo cache behind the scenario engine: one entry per
// (stage, ContentKey), computed exactly once even under concurrent
// requests (later requesters block on the first computation's future).
// Every cached value must be a deterministic pure function of the hashed
// content and immutable once published — that is what makes a cached batch
// bit-identical to the uncached per-scenario path at any thread count.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <typeindex>
#include <utility>

#include "common/error.hpp"
#include "scenario/content_key.hpp"

namespace cnti::scenario {

/// Hit/miss counters of one stage (or the whole cache). As long as no
/// compute throws, the once-per-key future scheme makes the counts
/// thread-schedule independent: misses == distinct keys requested,
/// hits == requests - misses. A throwing compute erases its entry so the
/// key can retry, which re-counts that key (and requests racing the
/// erase may count as hits yet receive the exception) — under failures
/// the split is best-effort diagnostics, not an invariant.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    return *this;
  }
};

class MemoCache {
 public:
  explicit MemoCache(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Returns the cached value for (stage, key), computing it via `compute`
  /// on the first request. `compute` must return std::shared_ptr<const T>
  /// (or a value convertible to it) and be a pure function of the key's
  /// content. A throwing compute propagates to every concurrent requester
  /// of the key and leaves the key absent, so a later request retries.
  /// When the cache is disabled every request computes (and counts a miss).
  template <typename T, typename Fn>
  std::shared_ptr<const T> get_or_compute(std::string_view stage,
                                          const ContentKey& key,
                                          Fn&& compute) {
    if (!enabled_) {
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_map(stage).misses;
      }
      return to_shared<T>(compute());
    }
    const std::type_index want(typeid(T));
    std::shared_future<Value> fut;
    std::promise<Value> mine;
    bool owner = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find({std::string(stage), key});
      if (it == entries_.end()) {
        owner = true;
        fut = mine.get_future().share();
        entries_.emplace(std::pair<std::string, ContentKey>(stage, key), fut);
        ++stats_map(stage).misses;
      } else {
        fut = it->second;
        ++stats_map(stage).hits;
      }
    }
    if (owner) {
      try {
        std::shared_ptr<const T> value = to_shared<T>(compute());
        mine.set_value(Value{want, value});
      } catch (...) {
        // Erase before publishing the exception: a waiter that catches it
        // and immediately retries must find the key absent (fresh
        // compute), never rejoin the dead future.
        {
          const std::lock_guard<std::mutex> lock(mu_);
          entries_.erase({std::string(stage), key});
        }
        mine.set_exception(std::current_exception());
        throw;
      }
    }
    const Value& v = fut.get();
    CNTI_EXPECTS(v.type == want,
                 "memo cache type mismatch for stage \"" +
                     std::string(stage) + "\"");
    return std::static_pointer_cast<const T>(v.value);
  }

  CacheStats stats(std::string_view stage) const {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = stats_.find(std::string(stage));
    return it == stats_.end() ? CacheStats{} : it->second;
  }

  /// Per-stage counters, keyed by stage name (report emission).
  std::map<std::string, CacheStats> all_stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  CacheStats total_stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    CacheStats out;
    for (const auto& [stage, s] : stats_) out += s;
    return out;
  }

  std::size_t entry_count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    stats_.clear();
  }

 private:
  struct Value {
    std::type_index type = std::type_index(typeid(void));
    std::shared_ptr<const void> value;
  };

  /// Accepts a plain T, shared_ptr<T> or shared_ptr<const T> from compute().
  template <typename T, typename R>
  static std::shared_ptr<const T> to_shared(R&& r) {
    if constexpr (std::is_convertible_v<R&&, std::shared_ptr<const T>>) {
      return std::forward<R>(r);
    } else {
      return std::make_shared<T>(std::forward<R>(r));
    }
  }

  CacheStats& stats_map(std::string_view stage) {
    return stats_[std::string(stage)];  // callers hold mu_
  }

  bool enabled_ = true;
  mutable std::mutex mu_;
  std::map<std::pair<std::string, ContentKey>, std::shared_future<Value>>
      entries_;
  std::map<std::string, CacheStats> stats_;
};

}  // namespace cnti::scenario
