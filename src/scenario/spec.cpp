#include "scenario/spec.hpp"

#include <sstream>

namespace cnti::scenario {

ContentKey content_key(const TechnologySpec& t) {
  KeyHasher h("cnti.tech.v2");
  h.add(t.outer_diameter_nm)
      .add(t.dopant)
      .add(t.dopant_concentration)
      .add(t.temperature_k)
      .add(t.defect_spacing_um)
      .add(t.contact_resistance_kohm)
      .add(t.environment.radius_m)
      .add(t.environment.center_height_m)
      .add(t.environment.neighbor_pitch_m)
      .add(t.environment.eps_r)
      .add(t.environment.coupling_factor)
      .add(t.capacitance_model)
      .add(t.tcad_cells_per_side);
  return h.key();
}

ContentKey content_key(const WorkloadSpec& w) {
  KeyHasher h("cnti.workload.v2");
  h.add(w.length_um)
      .add(w.driver_resistance_kohm)
      .add(w.load_capacitance_ff)
      .add(w.vdd_v)
      .add(w.edge_time_ps)
      .add(w.bus_lines)
      .add(w.bus_segments)
      .add(w.coupling_cap_af_per_um)
      .add(w.aggressor)
      .add(w.operating_current_ua)
      .add(w.thermal_conductivity_w_mk)
      .add(w.substrate_coupling_w_mk)
      .add(w.max_temperature_rise_k);
  return h.key();
}

ContentKey content_key(const AnalysisRequest& a) {
  KeyHasher h("cnti.analysis.v2");
  h.add(a.delay)
      .add(a.delay_model)
      .add(a.noise)
      .add(a.noise_model)
      .add(a.thermal)
      .add(a.time_steps)
      .add(a.delay_segments);
  return h.key();
}

ContentKey content_key(const VariabilitySpec& v) {
  KeyHasher h("cnti.variability.v1");
  h.add(static_cast<std::int64_t>(v.seed))
      .add(v.samples)
      .add(v.resistance_span)
      .add(v.capacitance_span)
      .add(v.coupling_span);
  return h.key();
}

ContentKey content_key(const Scenario& s) {
  // v3: the variability axis joined the scenario identity (PR-7 schema-bump
  // policy — every persisted entry keyed on a scenario recomputes rather
  // than aliasing a pre-variability result).
  KeyHasher h("cnti.scenario.v3");
  const ContentKey t = content_key(s.tech);
  const ContentKey w = content_key(s.workload);
  const ContentKey a = content_key(s.analysis);
  const ContentKey v = content_key(s.variability);
  h.add(static_cast<std::int64_t>(t.hi)).add(static_cast<std::int64_t>(t.lo));
  h.add(static_cast<std::int64_t>(w.hi)).add(static_cast<std::int64_t>(w.lo));
  h.add(static_cast<std::int64_t>(a.hi)).add(static_cast<std::int64_t>(a.lo));
  h.add(static_cast<std::int64_t>(v.hi)).add(static_cast<std::int64_t>(v.lo));
  return h.key();
}

std::vector<Scenario> expand_grid(
    const Scenario& base, const core::SweepGrid& grid,
    const std::function<void(Scenario&, const core::SweepPoint&)>& apply) {
  CNTI_EXPECTS(static_cast<bool>(apply), "expand_grid needs an apply function");
  std::vector<Scenario> out;
  out.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const core::SweepPoint p = grid.point(i);
    Scenario s = base;
    std::ostringstream label;
    label << base.label;
    for (std::size_t a = 0; a < grid.axes().size(); ++a) {
      label << (a == 0 && base.label.empty() ? "" : "/")
            << grid.axes()[a].name << "=" << p[a];
    }
    s.label = label.str();
    apply(s, p);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace cnti::scenario
