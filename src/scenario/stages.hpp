// The engine's heavyweight stage implementations — what MultiscaleHooks
// used to leave to ad-hoc lambdas in examples/tests, promoted to named,
// deterministic, cacheable functions. Each is a pure function of its
// arguments, so the ScenarioEngine can memoize it under a content key and
// a cached batch stays bit-identical to the uncached path.
#pragma once

#include "core/electrostatics.hpp"
#include "core/line_model.hpp"
#include "core/mwcnt_line.hpp"
#include "scenario/spec.hpp"

namespace cnti::scenario {

/// TCAD capacitance stage: models the WireEnvironment as a square wire of
/// the same cross-section over a ground plane (plus two neighbour wires at
/// the environment pitch when present), extracts the Maxwell capacitance
/// matrix with the finite-volume field solver and returns the victim's
/// total C_E [F/m] — plane coupling plus Miller-weighted neighbour
/// coupling, mirroring core::environment_capacitance's composition.
/// `cells_per_side` scales the grid (2 reproduces the historical
/// integration-test resolution). Expensive; cache per environment.
double tcad_environment_capacitance(const core::WireEnvironment& env,
                                    int cells_per_side = 2);

/// MNA delay stage: full transient of pulse source -> driver resistance
/// (+ driver output capacitance) -> discretized line -> load capacitance,
/// measuring the 50%-to-50% propagation delay of a rising edge [s].
/// Replaces the Elmore estimate when AnalysisRequest::delay_model is
/// kMnaTransient; throws NumericalError when the output never crosses.
double mna_line_delay_s(const core::DriverLineLoad& cfg, double vdd_v,
                        double edge_time_s, int segments, int time_steps);

/// Thermal/EM stage output.
struct ThermalReport {
  double peak_rise_k = 0.0;          ///< Self-heating at operating current.
  double hot_resistance_kohm = 0.0;  ///< Line resistance at temperature.
  bool thermal_runaway = false;
  double ampacity_ua = 0.0;          ///< Current at the max allowed rise.
  double current_density_a_cm2 = 0.0;
  bool cnt_em_immune = false;        ///< Below the CNT breakdown density.
  /// Black's-equation median lifetime of an equally stressed Cu line [s]
  /// (the paper's Sec. I reliability comparison).
  double cu_reference_mttf_s = 0.0;
};

/// Thermal/EM stage: 1-D electro-thermal solve of the compact line at the
/// workload's operating current, ampacity at the allowed rise, and the
/// EM verdicts at the resulting current density.
ThermalReport thermal_stage(const TechnologySpec& tech,
                            const WorkloadSpec& workload,
                            const core::MwcntLine& line);

}  // namespace cnti::scenario
