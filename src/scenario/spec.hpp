// Declarative scenario description — the paper's closed multi-scale flow
// (ab-initio-calibrated channels -> materials MFP -> compact RLC -> circuit
// delay/noise -> thermal limits) as *data* instead of a hand-wired .cpp per
// study. A Scenario is three orthogonal specs:
//
//   TechnologySpec — what the wire is: geometry, doping, defects, contacts,
//                    electrostatic environment (analytic or TCAD-extracted);
//   WorkloadSpec   — what the wire does: driver/load, bus topology,
//                    stimulus edge, thermal operating context;
//   AnalysisRequest — which KPIs to compute and through which models.
//
// Each spec hashes to a deterministic ContentKey, which is what lets the
// ScenarioEngine's memo cache share expensive sub-results (TCAD C_E
// extraction, bare bus netlists, PRIMA reductions) across a batch whose
// scenarios differ only in the other specs' fields.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "atomistic/doping.hpp"
#include "core/electrostatics.hpp"
#include "core/sweep_engine.hpp"
#include "scenario/content_key.hpp"

namespace cnti::scenario {

/// How the electrostatic capacitance C_E of the environment is obtained.
enum class CapacitanceModel {
  kAnalytic,  ///< core::environment_capacitance closed form.
  kTcad,      ///< 3-D finite-volume extraction (cached per geometry).
};

/// The wire and its process: everything the fabricated technology fixes.
struct TechnologySpec {
  double outer_diameter_nm = 10.0;
  atomistic::DopantSpecies dopant = atomistic::DopantSpecies::kIodineInternal;
  double dopant_concentration = 0.0;  ///< 0 = pristine.
  double temperature_k = phys::kRoomTemperature;
  double defect_spacing_um = -1.0;  ///< <= 0: defect-free growth.
  double contact_resistance_kohm = 200.0;
  core::WireEnvironment environment;
  CapacitanceModel capacitance_model = CapacitanceModel::kAnalytic;
  /// Cells across the wire side for the TCAD extraction grid (kTcad only);
  /// part of the content key because it changes the extracted value.
  int tcad_cells_per_side = 2;
};

/// The electrical job the wire performs plus its thermal context.
struct WorkloadSpec {
  double length_um = 100.0;
  double driver_resistance_kohm = 10.0;
  double load_capacitance_ff = 0.1;
  double vdd_v = 1.0;
  double edge_time_ps = 20.0;
  // Coupled-bus topology (noise analysis).
  int bus_lines = 16;
  int bus_segments = 64;
  double coupling_cap_af_per_um = 30.0;  ///< Neighbour coupling.
  int aggressor = -1;                    ///< Switching line; -1 = centre.
  // Thermal operating context (thermal analysis).
  double operating_current_ua = 20.0;
  double thermal_conductivity_w_mk = 3000.0;
  double substrate_coupling_w_mk = 0.05;
  double max_temperature_rise_k = 100.0;
};

/// Delay model for the line KPI.
enum class DelayModel {
  kElmore,        ///< 0.693 x Elmore closed form (multiscale default).
  kMnaTransient,  ///< Full driver-line-load MNA step response.
};

/// Noise model for the coupled-bus KPI.
enum class NoiseModel {
  kReducedOrder,  ///< Cached per-topology PRIMA BusRom evaluation.
  kFullMna,       ///< Full sparse-MNA bus transient.
};

/// Which KPIs to compute, and through which stage implementations.
struct AnalysisRequest {
  bool delay = true;
  DelayModel delay_model = DelayModel::kElmore;
  bool noise = false;
  NoiseModel noise_model = NoiseModel::kReducedOrder;
  bool thermal = false;  ///< Self-heating, ampacity, EM verdicts.
  /// Transient grid for the MNA/ROM analyses.
  int time_steps = 600;
  /// Ladder segments for the kMnaTransient delay discretization.
  int delay_segments = 12;
};

/// Deterministic Monte Carlo axis of a scenario: how many technology
/// samples to draw, from which root seed, and how far each per-unit-length
/// electrical axis spreads multiplicatively around its nominal value.
/// `samples == 0` (the default) keeps the scenario deterministic —
/// ScenarioEngine::run ignores the spec entirely; run_statistical requires
/// samples > 0. Sample i draws its axis scales from
/// Rng(seed).fork(i).fork(axis) sub-streams, a pure function of
/// (seed, i, axis), so any shard/thread partition of [0, samples)
/// reproduces identical per-sample technologies (see
/// scenario/statistical.hpp).
struct VariabilitySpec {
  std::uint64_t seed = 0x5eed5eedULL;
  int samples = 0;
  /// Half-width of each axis's uniform multiplicative spread:
  /// scale ~ U[1 - span, 1 + span]; 0 pins the axis at nominal. Spans must
  /// lie in [0, 1) so scales stay positive.
  double resistance_span = 0.0;   ///< line resistance_per_m.
  double capacitance_span = 0.0;  ///< line capacitance_per_m.
  double coupling_span = 0.0;     ///< neighbour coupling_cap_per_m.
};

/// One fully described study point. The label is reporting metadata only —
/// it is excluded from every content key.
struct Scenario {
  std::string label;
  TechnologySpec tech;
  WorkloadSpec workload;
  AnalysisRequest analysis;
  VariabilitySpec variability;
};

/// Content keys (label-free, schema-tagged, deterministic).
ContentKey content_key(const TechnologySpec& t);
ContentKey content_key(const WorkloadSpec& w);
ContentKey content_key(const AnalysisRequest& a);
ContentKey content_key(const VariabilitySpec& v);
ContentKey content_key(const Scenario& s);

/// Expands a base scenario over a sweep grid: `apply` rewrites the copy for
/// each grid point (typically from point.at("axis")), and the returned
/// batch is in flat-index order with labels "<base>/axis=value/...".
std::vector<Scenario> expand_grid(
    const Scenario& base, const core::SweepGrid& grid,
    const std::function<void(Scenario&, const core::SweepPoint&)>& apply);

}  // namespace cnti::scenario
