// Density of states of an (n, m) SWCNT from the zone-folded bands —
// the quantity the paper's Fig. 8 discussion moves through ("doping can
// shift the Fermi-level and increase the DOS"). Exhibits the 1/sqrt(E)
// van Hove singularities characteristic of quasi-1-D systems.
#pragma once

#include <vector>

#include "atomistic/bandstructure.hpp"

namespace cnti::atomistic {

/// Histogram-sampled DOS per unit cell [states/eV], spin included,
/// over the symmetric window [-e_max, e_max].
struct DensityOfStates {
  std::vector<double> energy_ev;
  std::vector<double> dos;  ///< states / (eV * unit cell)

  /// DOS at the energy closest to e [states/eV/cell].
  double at(double e) const;
};

DensityOfStates compute_dos(const BandStructure& bands, double e_max_ev = 3.0,
                            int energy_bins = 600, int k_samples = 20001);

/// Carrier density added by shifting the Fermi level from 0 to `shift_ev`
/// at T = 0 (integrated DOS) [electrons/unit cell]; negative shift gives
/// holes (positive return value, p-type).
double transferred_charge_per_cell(const DensityOfStates& dos,
                                   double shift_ev);

}  // namespace cnti::atomistic
