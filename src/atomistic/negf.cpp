#include "atomistic/negf.hpp"

#include <cmath>

#include "atomistic/landauer.hpp"
#include "numerics/rng.hpp"

namespace cnti::atomistic {

namespace {

using std::complex;

/// Builds the unrolled-sheet lattice of one translational cell and the
/// nearest-neighbour connectivity within the cell / into the next cell.
struct Lattice {
  std::vector<std::pair<double, double>> pos;  // (u, v) in metres.
  std::vector<std::pair<int, int>> bonds00;    // intra-cell bonds.
  std::vector<std::pair<int, int>> bonds01;    // cell i -> cell i+1 bonds.
};

Lattice build_lattice(const Chirality& ch) {
  const double a = cntconst::kGrapheneLattice;
  // Graphene basis vectors and sublattice offset in the sheet frame.
  const double a1x = a * std::sqrt(3.0) / 2.0, a1y = a * 0.5;
  const double a2x = a1x, a2y = -a1y;
  const double bx = a / std::sqrt(3.0), by = 0.0;  // B-atom offset.

  // Chiral and translation vectors in sheet coordinates.
  const double chx = ch.n() * a1x + ch.m() * a2x;
  const double chy = ch.n() * a1y + ch.m() * a2y;
  const double ch_len = ch.circumference();
  const double tx = ch.t1() * a1x + ch.t2() * a2x;
  const double ty = ch.t1() * a1y + ch.t2() * a2y;
  const double t_len = ch.translation_length();

  // Unit vectors: u along C_h (circumference), v along T (axis).
  const double ux = chx / ch_len, uy = chy / ch_len;
  const double vx = tx / t_len, vy = ty / t_len;

  // Small symmetry-breaking shift avoids atoms landing exactly on the cell
  // boundary (which would double-count under the half-open window).
  const double eps_u = 1e-4 * a, eps_v = 1.37e-4 * a;

  Lattice lat;
  const int range = std::abs(ch.n()) + std::abs(ch.m()) +
                    std::abs(ch.t1()) + std::abs(ch.t2()) + 2;
  for (int i = -range; i <= range; ++i) {
    for (int j = -range; j <= range; ++j) {
      for (int s = 0; s < 2; ++s) {
        const double x = i * a1x + j * a2x + (s ? bx : 0.0);
        const double y = i * a1y + j * a2y + (s ? by : 0.0);
        const double u = x * ux + y * uy + eps_u;
        const double v = x * vx + y * vy + eps_v;
        if (u >= 0.0 && u < ch_len && v >= 0.0 && v < t_len) {
          lat.pos.emplace_back(u, v);
        }
      }
    }
  }
  CNTI_EXPECTS(static_cast<int>(lat.pos.size()) == ch.atoms_per_cell(),
               "lattice generation found wrong atom count");

  // Connectivity: two atoms bond when their distance is ~a_cc, with the
  // circumferential coordinate periodic and the axial coordinate reaching
  // into the neighbouring cell.
  const double acc = cntconst::kCcBond;
  const double tol = 0.05 * acc;
  const auto wrapped_du = [&](double du) {
    du = std::abs(du);
    return std::min(du, ch_len - du);
  };
  const int n_atoms = static_cast<int>(lat.pos.size());
  for (int p = 0; p < n_atoms; ++p) {
    for (int q = 0; q < n_atoms; ++q) {
      const double du = wrapped_du(lat.pos[p].first - lat.pos[q].first);
      // Intra-cell bond (count each once).
      if (q > p) {
        const double dv = lat.pos[p].second - lat.pos[q].second;
        if (std::abs(std::hypot(du, dv) - acc) < tol) {
          lat.bonds00.emplace_back(p, q);
        }
      }
      // Bond from atom p in cell 0 to atom q in cell +1.
      const double dv1 = (lat.pos[q].second + t_len) - lat.pos[p].second;
      if (std::abs(std::hypot(du, dv1) - acc) < tol) {
        lat.bonds01.emplace_back(p, q);
      }
    }
  }
  return lat;
}

}  // namespace

TubeHamiltonian::TubeHamiltonian(Chirality ch, TightBindingParams tb)
    : ch_(ch) {
  const Lattice lat = build_lattice(ch_);
  const int n = static_cast<int>(lat.pos.size());
  h00_ = MatrixC(n, n);
  h01_ = MatrixC(n, n);
  const complex<double> t(-tb.gamma0_ev, 0.0);
  for (const auto& [p, q] : lat.bonds00) {
    h00_(p, q) = t;
    h00_(q, p) = t;
  }
  for (const auto& [p, q] : lat.bonds01) {
    h01_(p, q) = t;
  }
  sites_ = lat.pos;
  // Each carbon atom has exactly three neighbours; verify the bond count:
  // 2*|bonds00| + 2*|bonds01| == 3*n.
  const std::size_t coordination =
      2 * lat.bonds00.size() + 2 * lat.bonds01.size();
  CNTI_EXPECTS(coordination == static_cast<std::size_t>(3 * n),
               "tube lattice is not 3-coordinated");
}

MatrixC surface_green_function(std::complex<double> z, const MatrixC& h00,
                               const MatrixC& hop, int max_iterations,
                               double tolerance) {
  const std::size_t n = h00.rows();
  MatrixC eps_s = h00;
  MatrixC eps = h00;
  MatrixC alpha = hop;
  MatrixC beta = hop.adjoint();

  const MatrixC zi = MatrixC::identity(n) * z;
  for (int it = 0; it < max_iterations; ++it) {
    const MatrixC g = numerics::inverse(zi - eps);
    const MatrixC agb = alpha * g * beta;
    const MatrixC bga = beta * g * alpha;
    eps_s += agb;
    eps += agb + bga;
    alpha = alpha * g * alpha;
    beta = beta * g * beta;
    if (alpha.norm() < tolerance && beta.norm() < tolerance) {
      return numerics::inverse(zi - eps_s);
    }
  }
  throw NumericalError("Sancho-Rubio decimation did not converge");
}

NegfSolver::NegfSolver(const TubeHamiltonian& h, int num_cells) : h_(h) {
  CNTI_EXPECTS(num_cells >= 1, "device needs at least one cell");
  perturbations_.resize(static_cast<std::size_t>(num_cells));
}

void NegfSolver::set_perturbation(int cell, CellPerturbation p) {
  CNTI_EXPECTS(cell >= 0 && cell < num_cells(), "cell index out of range");
  if (!p.onsite_shift_ev.empty()) {
    CNTI_EXPECTS(static_cast<int>(p.onsite_shift_ev.size()) ==
                     h_.atoms_per_cell(),
                 "perturbation size must match atoms per cell");
  }
  perturbations_[static_cast<std::size_t>(cell)] = std::move(p);
}

double NegfSolver::transmission(double energy_ev, double eta_ev) const {
  using std::complex;
  const int n = h_.atoms_per_cell();
  // Below ~1e-5 eV the Sancho-Rubio decimation loses numerical contraction
  // at band crossings (the first resolvent reaches condition ~1/eta and the
  // squared-hopping recursion overflows), so floor the broadening there.
  const complex<double> z(energy_ev, std::max(eta_ev, 1e-5));
  const MatrixC& h00 = h_.h00();
  const MatrixC& h01 = h_.h01();
  const MatrixC h10 = h01.adjoint();

  // Left lead extends toward -infinity: the hop away from the device is h10.
  // Device cell 0 couples to the lead surface via H_{0,-1} = h10 and back
  // via H_{-1,0} = h01, so Sigma_L = h10 * g_surf * h01.
  const MatrixC gs_l = surface_green_function(z, h00, h10);
  const MatrixC sigma_left = h10 * gs_l * h01;

  // Right lead extends toward +infinity: hopping away from device is h01.
  const MatrixC gs_r = surface_green_function(z, h00, h01);
  const MatrixC sigma_right = h01 * gs_r * h10;

  const auto gamma = [](const MatrixC& sigma) {
    MatrixC g = sigma - sigma.adjoint();
    // Gamma = i (Sigma - Sigma^dagger).
    for (std::size_t i = 0; i < g.rows(); ++i)
      for (std::size_t j = 0; j < g.cols(); ++j)
        g(i, j) *= complex<double>(0.0, 1.0);
    return g;
  };
  const MatrixC gamma_l = gamma(sigma_left);
  const MatrixC gamma_r = gamma(sigma_right);

  // Device on-site blocks with perturbations.
  const int nc = num_cells();
  const auto device_block = [&](int cell) {
    MatrixC hb = h00;
    const auto& pert = perturbations_[static_cast<std::size_t>(cell)];
    for (int i = 0; i < n; ++i) {
      double shift = device_potential_ev_;
      if (!pert.onsite_shift_ev.empty()) {
        shift += pert.onsite_shift_ev[static_cast<std::size_t>(i)];
      }
      hb(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) +=
          complex<double>(shift, 0.0);
    }
    return hb;
  };

  const MatrixC zi = MatrixC::identity(static_cast<std::size_t>(n)) * z;

  // Recursive Green's function sweep accumulating G_{0, last}.
  MatrixC h_eff = device_block(0) + sigma_left;
  if (nc == 1) h_eff += sigma_right;
  MatrixC g_ii = numerics::inverse(zi - h_eff);
  MatrixC g_0i = g_ii;
  for (int cell = 1; cell < nc; ++cell) {
    MatrixC hb = device_block(cell);
    if (cell == nc - 1) hb += sigma_right;
    const MatrixC coupling = h10 * g_ii * h01;
    g_ii = numerics::inverse(zi - hb - coupling);
    g_0i = g_0i * h01 * g_ii;
  }

  // Caroli: T = Tr[Gamma_L G_{0,N} Gamma_R G_{0,N}^dagger].
  const MatrixC m = gamma_l * g_0i * gamma_r * g_0i.adjoint();
  complex<double> trace(0.0, 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) trace += m(i, i);
  return std::max(0.0, trace.real());
}

double NegfSolver::conductance(double mu_ev, double temperature_k,
                               double eta_ev) const {
  const double kt = phys::kBoltzmann * temperature_k / phys::kElectronVolt;
  const int n = 41;
  const double lo = mu_ev - 8.0 * kt, hi = mu_ev + 8.0 * kt;
  const double de = (hi - lo) / (n - 1);
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    const double e = lo + i * de;
    const double w = (i == 0 || i == n - 1) ? 0.5 : 1.0;
    acc += w * transmission(e, eta_ev) *
           fermi_derivative(e, mu_ev, temperature_k);
  }
  return phys::kConductanceQuantum * acc * de;
}

DefectMfpResult estimate_defect_mfp(const Chirality& ch,
                                    double defect_probability,
                                    double energy_ev, unsigned seed,
                                    int max_cells, int samples) {
  CNTI_EXPECTS(defect_probability >= 0.0 && defect_probability < 1.0,
               "defect probability in [0, 1)");
  const TubeHamiltonian h(ch);
  const int n = h.atoms_per_cell();
  numerics::Rng rng(seed);

  // Pristine mode count at this energy.
  NegfSolver pristine(h, 1);
  const double t0 = pristine.transmission(energy_ev);

  DefectMfpResult out;
  out.ballistic_modes = t0;
  if (t0 < 1e-9) return out;

  // Average transmission vs. length; fit 1/T = (1 + L/lambda)/M, i.e.
  // M/T - 1 = L / lambda -> linear through origin in L.
  std::vector<double> lengths, inv_excess;
  for (int cells = 4; cells <= max_cells; cells += 4) {
    double t_sum = 0.0;
    for (int s = 0; s < samples; ++s) {
      NegfSolver dev(h, cells);
      for (int c = 0; c < cells; ++c) {
        CellPerturbation p;
        bool any = false;
        p.onsite_shift_ev.assign(static_cast<std::size_t>(n), 0.0);
        for (int i = 0; i < n; ++i) {
          if (rng.bernoulli(defect_probability)) {
            p.onsite_shift_ev[static_cast<std::size_t>(i)] = 1e3;
            any = true;
          }
        }
        if (any) dev.set_perturbation(c, std::move(p));
      }
      t_sum += dev.transmission(energy_ev);
    }
    const double t_avg = t_sum / samples;
    if (t_avg < 1e-6) continue;
    lengths.push_back(cells * ch.translation_length());
    inv_excess.push_back(t0 / t_avg - 1.0);
  }
  if (lengths.size() < 2) {
    out.mfp_m = 0.0;
    return out;
  }
  // Least squares through the origin: slope = sum(xy)/sum(xx) = 1/lambda.
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    sxy += lengths[i] * inv_excess[i];
    sxx += lengths[i] * lengths[i];
  }
  out.mfp_m = (sxy > 0.0) ? sxx / sxy : 0.0;
  return out;
}

}  // namespace cnti::atomistic
