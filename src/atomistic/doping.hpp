// Charge-transfer doping of CNT shells, calibrated against the paper's DFT
// anchors (Sec. III.A): an iodine dopant on SWCNT(7,7) shifts the Fermi
// level down by ~0.6 eV and raises the ballistic conductance from
// 0.155 mS (2 channels) to 0.387 mS (~5 channels).
//
// Nearest-neighbour TB captures the rigid band shift but not the
// hybridization-induced density of states, so — exactly as the paper's own
// compact model does with its N_c "doping enhancement factor" — the extra
// dopant-derived channels are injected as a calibrated term proportional to
// the Fermi shift, anchored at the two DFT points above.
#pragma once

#include <string>

#include "atomistic/bandstructure.hpp"

namespace cnti::atomistic {

/// Dopant species investigated in the CONNECT project.
enum class DopantSpecies {
  kIodineInternal,   ///< Iodine inserted inside the tube (most stable).
  kIodineExternal,   ///< Iodine adsorbed outside.
  kPtCl4External,    ///< PtCl4 solution doping (Fig. 2d).
  kPtClInternal,     ///< Internal Pt/Cl network (Fig. 3).
};

std::string to_string(DopantSpecies s);

/// Dopant-specific parameters.
struct DopantProperties {
  double max_fermi_shift_ev = 0.6;  ///< Saturation Fermi-level shift.
  /// Channel enhancement per eV of Fermi shift (DFT anchor: 3 extra
  /// channels at 0.6 eV for iodine on (7,7) -> 5 channels / eV).
  double channels_per_ev = 5.0;
  /// Fraction of the as-deposited shift retained after thermal cycling to
  /// circuit operating temperature (internal doping is more stable).
  double stability_factor = 1.0;
  /// Saturation concentration scale (dimensionless site fraction).
  double saturation_concentration = 0.02;
};

DopantProperties dopant_properties(DopantSpecies s);

/// Charge-transfer doping model of a single CNT shell.
class ChargeTransferDoping {
 public:
  ChargeTransferDoping(DopantSpecies species, double concentration)
      : species_(species),
        props_(dopant_properties(species)),
        concentration_(concentration) {
    CNTI_EXPECTS(concentration >= 0.0 && concentration <= 1.0,
                 "dopant site fraction in [0, 1]");
  }

  DopantSpecies species() const { return species_; }
  double concentration() const { return concentration_; }

  /// Fermi-level shift [eV], negative for p-type dopants; saturating in
  /// concentration: dEf = -dEf_max * c / (c + c0).
  double fermi_shift_ev() const;

  /// Same, after thermal-stability derating at operating temperature.
  double stable_fermi_shift_ev() const {
    return fermi_shift_ev() * props_.stability_factor;
  }

  /// Effective conducting channels of a doped shell: TB mode count at the
  /// shifted Fermi level plus the calibrated dopant-state term.
  /// For pristine metallic shells this returns ~2; at the DFT anchor
  /// (iodine, saturation) on (7,7) it returns ~5.
  double effective_channels(const BandStructure& bands,
                            double temperature_k) const;

  /// Paper Fig. 12 convention: N_c per shell selected directly (2..10 for
  /// increasing doping concentration). Maps the species/concentration to
  /// that scalar without needing a band structure (uses the anchor slope).
  double channels_per_shell_simple() const;

 private:
  DopantSpecies species_;
  DopantProperties props_;
  double concentration_;
};

}  // namespace cnti::atomistic
