#include "atomistic/dos.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cnti::atomistic {

double DensityOfStates::at(double e) const {
  CNTI_EXPECTS(!energy_ev.empty(), "empty DOS");
  const auto it =
      std::lower_bound(energy_ev.begin(), energy_ev.end(), e);
  std::size_t i = static_cast<std::size_t>(it - energy_ev.begin());
  if (i >= energy_ev.size()) i = energy_ev.size() - 1;
  return dos[i];
}

DensityOfStates compute_dos(const BandStructure& bands, double e_max_ev,
                            int energy_bins, int k_samples) {
  CNTI_EXPECTS(e_max_ev > 0, "energy window must be positive");
  CNTI_EXPECTS(energy_bins >= 10 && k_samples >= 100,
               "resolution too low");
  DensityOfStates out;
  out.energy_ev.resize(static_cast<std::size_t>(energy_bins));
  out.dos.assign(static_cast<std::size_t>(energy_bins), 0.0);
  const double de = 2.0 * e_max_ev / energy_bins;
  for (int b = 0; b < energy_bins; ++b) {
    out.energy_ev[static_cast<std::size_t>(b)] =
        -e_max_ev + (b + 0.5) * de;
  }

  // Uniform k sampling over the full zone; each (q, k) state contributes
  // spin-degenerate weight 2/k_samples per subband pair (+E, -E).
  const double kmax = bands.k_max();
  const double weight = 2.0 / k_samples;  // spin factor
  for (int q = 0; q < bands.subband_count(); ++q) {
    for (int i = 0; i < k_samples; ++i) {
      const double kappa = -kmax + 2.0 * kmax * i / (k_samples - 1);
      const double e = bands.subband_energy(q, kappa);
      for (const double sign : {1.0, -1.0}) {
        const double es = sign * e;
        const int bin =
            static_cast<int>(std::floor((es + e_max_ev) / de));
        if (bin >= 0 && bin < energy_bins) {
          out.dos[static_cast<std::size_t>(bin)] += weight / de;
        }
      }
    }
  }
  return out;
}

double transferred_charge_per_cell(const DensityOfStates& dos,
                                   double shift_ev) {
  CNTI_EXPECTS(!dos.energy_ev.empty(), "empty DOS");
  const double lo = std::min(0.0, shift_ev);
  const double hi = std::max(0.0, shift_ev);
  double q = 0.0;
  for (std::size_t i = 0; i < dos.energy_ev.size(); ++i) {
    const double e = dos.energy_ev[i];
    if (e >= lo && e < hi) {
      const double de = (i + 1 < dos.energy_ev.size())
                            ? dos.energy_ev[i + 1] - dos.energy_ev[i]
                            : dos.energy_ev[i] - dos.energy_ev[i - 1];
      q += dos.dos[i] * de;
    }
  }
  return q;
}

}  // namespace cnti::atomistic
