// Non-equilibrium Green's function (NEGF) ballistic/coherent transport on
// the real-space tight-binding Hamiltonian of an (n, m) SWCNT.
//
// This substitutes for the paper's ATK NEGF runs (Sec. III.A): semi-infinite
// leads are folded in via Sancho-Rubio decimation, the device region is a
// chain of translational unit cells with optional per-site perturbations
// (charge-transfer potentials, adsorbate/dopant shifts, vacancies), and the
// Caroli formula yields the transmission T(E).
#pragma once

#include <complex>
#include <utility>
#include <vector>

#include "atomistic/bandstructure.hpp"
#include "atomistic/swcnt_geometry.hpp"
#include "numerics/matrix.hpp"

namespace cnti::atomistic {

using numerics::MatrixC;

/// Real-space TB Hamiltonian of one translational unit cell of the rolled
/// tube: on-site block H00 and inter-cell hopping H01 (cell i -> i+1).
class TubeHamiltonian {
 public:
  explicit TubeHamiltonian(Chirality ch, TightBindingParams tb = {});

  const Chirality& chirality() const { return ch_; }
  int atoms_per_cell() const { return static_cast<int>(h00_.rows()); }
  const MatrixC& h00() const { return h00_; }
  const MatrixC& h01() const { return h01_; }

  /// Atom positions in unrolled sheet coordinates (u along circumference,
  /// v along axis) [m], for locating dopant sites.
  const std::vector<std::pair<double, double>>& sites() const {
    return sites_;
  }

 private:
  Chirality ch_;
  MatrixC h00_;
  MatrixC h01_;
  std::vector<std::pair<double, double>> sites_;
};

/// Surface Green's function of a semi-infinite lead with on-site block h00
/// and hopping `hop` from each cell to the next cell *away* from the device,
/// evaluated at complex energy z = E + i eta [eV]. Sancho-Rubio decimation.
MatrixC surface_green_function(std::complex<double> z, const MatrixC& h00,
                               const MatrixC& hop, int max_iterations = 200,
                               double tolerance = 1e-12);

/// Per-cell perturbation of the device region: on-site energy shifts [eV]
/// indexed by atom within the cell. Vacancies are modeled as +1e3 eV shifts
/// (site pushed out of the transport window).
struct CellPerturbation {
  std::vector<double> onsite_shift_ev;  ///< Empty = pristine cell.
};

/// NEGF transport solver for a device of `num_cells` unit cells between two
/// semi-infinite pristine leads of the same tube.
class NegfSolver {
 public:
  explicit NegfSolver(const TubeHamiltonian& h, int num_cells = 1);

  /// Set the perturbation of device cell `cell` (0-based).
  void set_perturbation(int cell, CellPerturbation p);

  /// Uniform electrostatic potential shift of the whole device [eV]
  /// (rigid charge-transfer doping of the channel region).
  void set_device_potential(double potential_ev) {
    device_potential_ev_ = potential_ev;
  }

  int num_cells() const { return static_cast<int>(perturbations_.size()); }

  /// Coherent transmission T(E) (dimensionless; equals the mode count for a
  /// pristine device). eta is the lead broadening [eV].
  double transmission(double energy_ev, double eta_ev = 1e-5) const;

  /// Landauer conductance at temperature T and chemical potential mu [S].
  double conductance(double mu_ev, double temperature_k,
                     double eta_ev = 1e-5) const;

 private:
  const TubeHamiltonian& h_;
  std::vector<CellPerturbation> perturbations_;
  double device_potential_ev_ = 0.0;
};

/// Fits the ensemble-averaged NEGF transmission of defective tubes of
/// increasing length to T(L) = M / (1 + L / lambda), returning the
/// defect-limited mean free path lambda [m]. `defect_probability` is the
/// per-atom vacancy probability.
struct DefectMfpResult {
  double mfp_m = 0.0;
  double ballistic_modes = 0.0;
};
DefectMfpResult estimate_defect_mfp(const Chirality& ch,
                                    double defect_probability,
                                    double energy_ev, unsigned seed,
                                    int max_cells = 24, int samples = 4);

}  // namespace cnti::atomistic
