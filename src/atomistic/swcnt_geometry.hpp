// Geometry of a single-walled carbon nanotube identified by its chiral
// indices (n, m): diameter, chiral angle, metallicity, translational unit
// cell. Conventions follow Saito/Dresselhaus ("Physical Properties of
// Carbon Nanotubes").
#pragma once

#include <cmath>
#include <numeric>
#include <string>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace cnti::atomistic {

/// Chiral indices and derived geometric invariants of an (n, m) SWCNT.
class Chirality {
 public:
  Chirality(int n, int m) : n_(n), m_(m) {
    CNTI_EXPECTS(n >= 1, "chiral index n must be >= 1");
    CNTI_EXPECTS(m >= 0 && m <= n, "require 0 <= m <= n (canonical order)");
  }

  int n() const { return n_; }
  int m() const { return m_; }

  /// d_R = gcd(2n + m, 2m + n).
  int d_r() const { return std::gcd(2 * n_ + m_, 2 * m_ + n_); }

  /// Number of hexagons in the translational unit cell: N = 2(n^2+nm+m^2)/d_R.
  int hexagons_per_cell() const {
    return 2 * (n_ * n_ + n_ * m_ + m_ * m_) / d_r();
  }

  /// Number of carbon atoms per translational unit cell (2 per hexagon).
  int atoms_per_cell() const { return 2 * hexagons_per_cell(); }

  /// |C_h| = a sqrt(n^2 + nm + m^2) [m].
  double circumference() const {
    return cntconst::kGrapheneLattice *
           std::sqrt(static_cast<double>(n_ * n_ + n_ * m_ + m_ * m_));
  }

  /// Tube diameter d = |C_h| / pi [m].
  double diameter() const { return circumference() / M_PI; }

  /// Translation vector length |T| = sqrt(3) |C_h| / d_R [m].
  double translation_length() const {
    return std::sqrt(3.0) * circumference() / d_r();
  }

  /// Translation vector components T = t1 a1 + t2 a2.
  int t1() const { return (2 * m_ + n_) / d_r(); }
  int t2() const { return -(2 * n_ + m_) / d_r(); }

  /// Chiral angle in radians (0 = zigzag, pi/6 = armchair).
  double chiral_angle() const {
    return std::atan2(std::sqrt(3.0) * m_, 2.0 * n_ + m_);
  }

  /// Metallic iff (n - m) mod 3 == 0 (armchair tubes always metallic).
  bool is_metallic() const { return (n_ - m_) % 3 == 0; }

  bool is_armchair() const { return n_ == m_; }
  bool is_zigzag() const { return m_ == 0; }

  std::string label() const {
    return "(" + std::to_string(n_) + "," + std::to_string(m_) + ")";
  }

  friend bool operator==(const Chirality& a, const Chirality& b) {
    return a.n_ == b.n_ && a.m_ == b.m_;
  }

 private:
  int n_;
  int m_;
};

}  // namespace cnti::atomistic
