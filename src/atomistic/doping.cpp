#include "atomistic/doping.hpp"

#include <cmath>

#include "atomistic/landauer.hpp"

namespace cnti::atomistic {

std::string to_string(DopantSpecies s) {
  switch (s) {
    case DopantSpecies::kIodineInternal:
      return "iodine (internal)";
    case DopantSpecies::kIodineExternal:
      return "iodine (external)";
    case DopantSpecies::kPtCl4External:
      return "PtCl4 (external)";
    case DopantSpecies::kPtClInternal:
      return "Pt/Cl network (internal)";
  }
  return "unknown";
}

DopantProperties dopant_properties(DopantSpecies s) {
  // Internal doping is more stable than external (paper Sec. II.A: "internal
  // doping of CNT is more stable than external doping"); the external
  // variants lose part of the shift on thermal cycling.
  switch (s) {
    case DopantSpecies::kIodineInternal:
      return {.max_fermi_shift_ev = 0.6,
              .channels_per_ev = 5.0,
              .stability_factor = 0.95,
              .saturation_concentration = 0.02};
    case DopantSpecies::kIodineExternal:
      return {.max_fermi_shift_ev = 0.6,
              .channels_per_ev = 5.0,
              .stability_factor = 0.70,
              .saturation_concentration = 0.03};
    case DopantSpecies::kPtCl4External:
      // Fig. 2d: PtCl4 drops the measured MWCNT resistance by roughly 2x.
      return {.max_fermi_shift_ev = 0.45,
              .channels_per_ev = 4.0,
              .stability_factor = 0.65,
              .saturation_concentration = 0.03};
    case DopantSpecies::kPtClInternal:
      return {.max_fermi_shift_ev = 0.5,
              .channels_per_ev = 4.5,
              .stability_factor = 0.92,
              .saturation_concentration = 0.02};
  }
  return {};
}

double ChargeTransferDoping::fermi_shift_ev() const {
  const double c = concentration_;
  const double c0 = props_.saturation_concentration;
  // p-type: Fermi level moves down.
  return -props_.max_fermi_shift_ev * c / (c + c0);
}

double ChargeTransferDoping::effective_channels(
    const BandStructure& bands, double temperature_k) const {
  const double shift = stable_fermi_shift_ev();
  // Rigid-band TB contribution at the shifted Fermi level...
  const double tb_channels =
      conducting_channels(bands, shift, temperature_k);
  // ...plus dopant-state channels calibrated to the DFT anchor.
  const double dopant_channels = props_.channels_per_ev * std::abs(shift);
  return tb_channels + dopant_channels;
}

double ChargeTransferDoping::channels_per_shell_simple() const {
  const double shift = std::abs(stable_fermi_shift_ev());
  return cntconst::kChannelsPerMetallicShell +
         props_.channels_per_ev * shift;
}

}  // namespace cnti::atomistic
