#include "atomistic/bandstructure.hpp"

#include <algorithm>
#include <cmath>

namespace cnti::atomistic {

BandStructure::BandStructure(Chirality ch, TightBindingParams tb)
    : ch_(ch), tb_(tb) {
  // Allowed wavevectors under zone folding: k = q K1 + kappa K2hat with
  //   K1 = (-t2 b1 + t1 b2) / N,  K2 = (m b1 - n b2) / N,  |K2| = 2 pi / |T|.
  // Using b_i . a_j = 2 pi delta_ij:
  //   k.a1 = (2 pi / N) (-t2) q + kappa * (m / N) * |T|
  //   k.a2 = (2 pi / N) ( t1) q + kappa * (-n / N) * |T|
  const double n_hex = ch_.hexagons_per_cell();
  const double t_len = ch_.translation_length();
  c1q_ = -2.0 * M_PI * ch_.t2() / n_hex;
  c2q_ = 2.0 * M_PI * ch_.t1() / n_hex;
  c1k_ = t_len * ch_.m() / n_hex;
  c2k_ = -t_len * ch_.n() / n_hex;
}

double BandStructure::subband_energy(int q, double kappa) const {
  const double ka1 = c1q_ * q + c1k_ * kappa;
  const double ka2 = c2q_ * q + c2k_ * kappa;
  // |f(k)|^2 = 3 + 2 cos(k.a1) + 2 cos(k.a2) + 2 cos(k.a1 - k.a2).
  const double f2 = 3.0 + 2.0 * std::cos(ka1) + 2.0 * std::cos(ka2) +
                    2.0 * std::cos(ka1 - ka2);
  return tb_.gamma0_ev * std::sqrt(std::max(0.0, f2));
}

double BandStructure::k_max() const {
  return M_PI / ch_.translation_length();
}

double BandStructure::subband_minimum(int q, int samples) const {
  const double kmax = k_max();
  const double dk = 2.0 * kmax / (samples - 1);
  double emin = subband_energy(q, -kmax);
  int imin = 0;
  for (int i = 1; i < samples; ++i) {
    const double e = subband_energy(q, -kmax + dk * i);
    if (e < emin) {
      emin = e;
      imin = i;
    }
  }
  // Ternary-search refinement around the coarse minimum: resolves Dirac
  // points (V-shaped |E|) and smooth vHs edges to machine precision.
  double lo = -kmax + dk * std::max(0, imin - 1);
  double hi = -kmax + dk * std::min(samples - 1, imin + 1);
  for (int it = 0; it < 200 && (hi - lo) > 1e-15 * kmax; ++it) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (subband_energy(q, m1) <= subband_energy(q, m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return std::min(emin, subband_energy(q, 0.5 * (lo + hi)));
}

double BandStructure::band_gap(int samples) const {
  double emin = subband_minimum(0, samples);
  for (int q = 1; q < subband_count(); ++q) {
    emin = std::min(emin, subband_minimum(q, samples));
  }
  // Gap = 2 * min conduction energy by electron-hole symmetry; clamp the
  // metallic sampling floor to exactly zero.
  const double gap = 2.0 * emin;
  return (gap < 1e-6) ? 0.0 : gap;
}

std::vector<double> BandStructure::van_hove_energies(int samples) const {
  std::vector<double> edges;
  edges.reserve(subband_count());
  for (int q = 0; q < subband_count(); ++q) {
    edges.push_back(subband_minimum(q, samples));
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

int BandStructure::count_modes(double energy_ev, int samples) const {
  const double e = std::abs(energy_ev);
  // Below the sampling resolution the dip of a linear crossing band cannot
  // be detected numerically; zone folding gives the answer exactly there:
  // two crossing modes for metallic tubes, none inside a semiconducting gap
  // (gaps are >= ~0.38 eV nm / d, i.e. > 10 meV for any tube below ~38 nm).
  if (e < 1e-2) {
    return ch_.is_metallic() ? 2 : 0;
  }
  const double kmax = k_max();
  int crossings = 0;
  for (int q = 0; q < subband_count(); ++q) {
    double prev = subband_energy(q, -kmax) - e;
    for (int i = 1; i < samples; ++i) {
      const double kappa = -kmax + 2.0 * kmax * i / (samples - 1);
      const double cur = subband_energy(q, kappa) - e;
      if ((prev < 0.0 && cur >= 0.0) || (prev >= 0.0 && cur < 0.0)) {
        ++crossings;
      }
      prev = cur;
    }
  }
  // Each conducting mode contributes two crossings over the full zone
  // (time-reversal pairs live at (q, kappa) and (N - q, -kappa)).
  return crossings / 2;
}

}  // namespace cnti::atomistic
