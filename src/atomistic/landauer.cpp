#include "atomistic/landauer.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cnti::atomistic {

namespace {

double kt_ev(double temperature_k) {
  return phys::kBoltzmann * temperature_k / phys::kElectronVolt;
}

double fermi(double x) {
  // 1 / (1 + exp(x)) evaluated stably.
  if (x > 40.0) return std::exp(-x);
  if (x < -40.0) return 1.0;
  return 1.0 / (1.0 + std::exp(x));
}

}  // namespace

double fermi_derivative(double energy_ev, double mu_ev, double temperature_k) {
  CNTI_EXPECTS(temperature_k > 0, "temperature must be positive");
  const double kt = kt_ev(temperature_k);
  const double x = (energy_ev - mu_ev) / kt;
  if (std::abs(x) > 40.0) return 0.0;
  const double c = std::cosh(0.5 * x);
  return 1.0 / (4.0 * kt * c * c);
}

double ballistic_conductance_t0(const BandStructure& bands, double mu_ev) {
  return phys::kConductanceQuantum * bands.count_modes(mu_ev);
}

double ballistic_conductance(const BandStructure& bands, double mu_ev,
                             double temperature_k) {
  CNTI_EXPECTS(temperature_k > 0, "temperature must be positive");
  const double kt = kt_ev(temperature_k);
  // The thermal window must reach past the band edges of semiconducting
  // tubes, or activated conduction across the gap is lost entirely.
  const double half = 10.0 * kt + 0.5 * bands.band_gap();
  const double lo = mu_ev - half;
  const double hi = mu_ev + half;
  // M(E) is a staircase; a dense trapezoid resolves the steps against the
  // smooth thermal window without adaptive-refinement stalls. Keep the
  // grid density of the +-10 kT metallic case as the window widens.
  const int n = static_cast<int>(
      std::min(4001.0, std::max(601.0, std::ceil(60.0 * half / kt))));
  const double de = (hi - lo) / (n - 1);
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    const double e = lo + i * de;
    const double w = (i == 0 || i == n - 1) ? 0.5 : 1.0;
    acc += w * bands.count_modes(e, 1201) *
           fermi_derivative(e, mu_ev, temperature_k);
  }
  return phys::kConductanceQuantum * acc * de;
}

double conducting_channels(const BandStructure& bands, double mu_ev,
                           double temperature_k) {
  return ballistic_conductance(bands, mu_ev, temperature_k) /
         phys::kConductanceQuantum;
}

double average_metallic_channels(double diameter_m, double temperature_k) {
  CNTI_EXPECTS(diameter_m > 0, "diameter must be positive");
  // Analytic vHs ladder of a metallic shell: doubly degenerate edges at
  // E_j ~ sqrt(3) a gamma0 j / d (j = 1, 2, ...), each adding 4 modes when
  // occupied; thermal occupancy of the |E| > E_j window is 2 f(E_j / kT).
  const double d_nm = diameter_m * 1e9;
  const double kt = kt_ev(temperature_k);
  const double e1 = std::sqrt(3.0) * 0.246 * cntconst::kHoppingEv / d_nm;
  double nc = 2.0;
  for (int j = 1; j <= 50; ++j) {
    const double occ = fermi(j * e1 / kt);
    if (occ < 1e-12) break;
    nc += 8.0 * occ;
  }
  return nc;
}

double average_mixed_channels(double diameter_m, double temperature_k) {
  CNTI_EXPECTS(diameter_m > 0, "diameter must be positive");
  const double d_nm = diameter_m * 1e9;
  const double kt = kt_ev(temperature_k);
  // Semiconducting shell: edges at E_j = (sqrt(3) a gamma0 / 3 d) j for
  // j not divisible by 3; each doubly degenerate edge adds 2 modes.
  const double e0 = std::sqrt(3.0) * 0.246 * cntconst::kHoppingEv / (3.0 * d_nm);
  double nc_semi = 0.0;
  for (int j = 1; j <= 150; ++j) {
    if (j % 3 == 0) continue;
    const double occ = fermi(j * e0 / kt);
    if (occ < 1e-12) break;
    nc_semi += 4.0 * occ;
  }
  const double metallic_fraction = 1.0 - cntconst::kSemiconductingFraction;
  return metallic_fraction * average_metallic_channels(diameter_m,
                                                       temperature_k) +
         cntconst::kSemiconductingFraction * nc_semi;
}

}  // namespace cnti::atomistic
