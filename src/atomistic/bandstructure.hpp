// Zone-folded nearest-neighbour tight-binding band structure of an (n, m)
// SWCNT. Substitutes for the paper's DFT band structures (Fig. 8b/c):
// nearest-neighbour TB on the rolled graphene sheet reproduces metallicity,
// subband structure, van Hove edges and the N_c ~ 2 mode count that the
// paper's compact models consume.
#pragma once

#include <vector>

#include "atomistic/swcnt_geometry.hpp"

namespace cnti::atomistic {

/// Tight-binding parameters (gamma0 in eV).
struct TightBindingParams {
  double gamma0_ev = cntconst::kHoppingEv;
};

/// Zone-folded pi-band dispersion of subband q at longitudinal wavevector
/// kappa (in units where kappa spans [-pi/T, pi/T]).
class BandStructure {
 public:
  explicit BandStructure(Chirality ch, TightBindingParams tb = {});

  const Chirality& chirality() const { return ch_; }

  /// Conduction-band energy E >= 0 of subband q at longitudinal wavevector
  /// kappa [1/m], kappa in [-pi/T, pi/T]. Valence band is -E (e-h symmetric
  /// nearest-neighbour TB). Units: eV.
  double subband_energy(int q, double kappa) const;

  int subband_count() const { return ch_.hexagons_per_cell(); }

  /// Half Brillouin-zone edge pi/|T| [1/m].
  double k_max() const;

  /// Minimum of subband q over the full zone (its van Hove edge) [eV].
  double subband_minimum(int q, int samples = 4001) const;

  /// Band gap [eV]: 0 for metallic tubes (within sampling tolerance).
  double band_gap(int samples = 4001) const;

  /// Sorted list of distinct van Hove edge energies (conduction side) [eV].
  std::vector<double> van_hove_energies(int samples = 4001) const;

  /// Number of conduction modes crossing energy |E| (counting over the full
  /// zone and halving, which is robust for chiral tubes where individual
  /// subbands are not kappa-symmetric). This equals the ballistic Landauer
  /// transmission at energy E (per spin pair, i.e. in units of G0).
  int count_modes(double energy_ev, int samples = 4001) const;

  double gamma0_ev() const { return tb_.gamma0_ev; }

 private:
  Chirality ch_;
  TightBindingParams tb_;
  // Precomputed phase coefficients: k.a1 = c1q_ * q + c1k_ * kappa, etc.
  double c1q_, c1k_, c2q_, c2k_;
};

}  // namespace cnti::atomistic
