// Finite-temperature Landauer conductance from zone-folded mode counting.
// Reproduces the paper's Fig. 8a: ballistic conductance vs. diameter of
// zigzag and armchair SWCNTs at 300 K, with N_c = G_bal / G0 (paper Eq. 1).
#pragma once

#include "atomistic/bandstructure.hpp"
#include "common/constants.hpp"

namespace cnti::atomistic {

/// -df/dE of the Fermi function at temperature T [1/eV].
double fermi_derivative(double energy_ev, double mu_ev, double temperature_k);

/// Thermally broadened ballistic Landauer conductance [S]:
///   G = G0 * integral M(E) (-df/dE) dE
/// evaluated around chemical potential mu (eV, 0 = charge-neutral E_F).
double ballistic_conductance(const BandStructure& bands, double mu_ev,
                             double temperature_k);

/// Zero-temperature ballistic conductance: G0 * M(mu) [S].
double ballistic_conductance_t0(const BandStructure& bands, double mu_ev);

/// Number of conducting channels N_c = G_bal / G0 (paper Eq. 1).
double conducting_channels(const BandStructure& bands, double mu_ev,
                           double temperature_k);

/// Diameter-dependent average channel count for metallic shells at finite
/// temperature, used by the MWCNT compact model for large-diameter shells
/// where thermal activation across small subband spacings adds channels
/// (asymptotically N_c(d) ~ a*d + b for d >~ 3 nm; at d <= 2 nm returns ~2).
double average_metallic_channels(double diameter_m, double temperature_k);

/// Average channel count of a shell of given diameter when metallic and
/// semiconducting walls are mixed with the CVD statistics (1/3 metallic),
/// as used for undoped MWCNT shells in statistical models.
double average_mixed_channels(double diameter_m, double temperature_k);

}  // namespace cnti::atomistic
