// Scanning thermal microscopy (SThM) virtual metrology (paper Sec. IV.B):
// a resistively heated probe maps the temperature of an operating MWCNT
// interconnect; convolution with the probe kernel plus instrument noise
// produces the "measured" profile, from which thermal conductivity is
// re-extracted — reproducing the analysis chain with known ground truth.
#pragma once

#include <vector>

#include "numerics/rng.hpp"
#include "thermal/heat1d.hpp"

namespace cnti::thermal {

/// SThM instrument description.
struct SthmProbe {
  double spatial_resolution_m = 20e-9;  ///< Gaussian kernel sigma.
  double temperature_noise_k = 0.05;    ///< Per-pixel rms noise.
  double scan_step_m = 10e-9;
};

/// A simulated SThM line scan.
struct SthmScan {
  std::vector<double> x_m;
  std::vector<double> temperature_k;
};

/// Convolves the true temperature profile with the probe kernel and adds
/// noise.
SthmScan simulate_sthm_scan(const SelfHeatResult& truth,
                            const SthmProbe& probe, numerics::Rng& rng);

/// Extracts the thermal conductivity from a measured scan of a line with
/// known geometry and dissipated power, inverting the parabolic profile:
/// k = P L / (8 A dT_peak) per unit heating. Returns the estimate [W/(m K)].
double extract_thermal_conductivity(const SthmScan& scan,
                                    const LineThermalSpec& geometry,
                                    double current_a);

}  // namespace cnti::thermal
