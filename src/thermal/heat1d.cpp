#include "thermal/heat1d.hpp"

#include <algorithm>
#include <cmath>

#include "numerics/roots.hpp"
#include "numerics/solvers.hpp"

namespace cnti::thermal {

namespace {
void validate(const LineThermalSpec& s) {
  CNTI_EXPECTS(s.length_m > 0, "length must be positive");
  CNTI_EXPECTS(s.cross_section_m2 > 0, "cross-section must be positive");
  CNTI_EXPECTS(s.thermal_conductivity > 0, "k must be positive");
  CNTI_EXPECTS(s.resistance_per_m >= 0, "resistance must be non-negative");
  CNTI_EXPECTS(s.substrate_coupling >= 0, "coupling must be non-negative");
}
}  // namespace

SelfHeatResult solve_self_heating(const LineThermalSpec& spec,
                                  double current_a, int nodes) {
  validate(spec);
  CNTI_EXPECTS(nodes >= 3, "need at least 3 nodes");
  const int n = nodes;
  const double dx = spec.length_m / (n - 1);
  const double ka = spec.thermal_conductivity * spec.cross_section_m2;
  const double i2 = current_a * current_a;

  SelfHeatResult out;
  out.x_m.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.x_m[static_cast<std::size_t>(i)] = i * dx;
  std::vector<double> temp(static_cast<std::size_t>(n), spec.ambient_k);

  // Picard: freeze r(T), solve the linear conduction problem, repeat.
  const int max_picard = 100;
  int it = 0;
  for (; it < max_picard; ++it) {
    // Interior unknowns 1..n-2.
    const std::size_t m = static_cast<std::size_t>(n - 2);
    std::vector<double> sub(m - 1, -ka / (dx * dx));
    std::vector<double> sup(m - 1, -ka / (dx * dx));
    std::vector<double> diag(m, 2.0 * ka / (dx * dx) +
                                    spec.substrate_coupling);
    std::vector<double> rhs(m);
    for (std::size_t i = 0; i < m; ++i) {
      const double t_here = temp[i + 1];
      const double r_t = spec.resistance_per_m *
                         (1.0 + spec.resistance_tcr *
                                    (t_here - spec.ambient_k));
      rhs[i] = i2 * std::max(0.0, r_t) +
               spec.substrate_coupling * spec.ambient_k;
    }
    // Dirichlet ends at ambient fold into the first/last rows.
    rhs[0] += ka / (dx * dx) * spec.ambient_k;
    rhs[m - 1] += ka / (dx * dx) * spec.ambient_k;

    const std::vector<double> sol =
        numerics::solve_tridiagonal(sub, diag, sup, rhs);
    double delta = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      delta = std::max(delta, std::abs(sol[i] - temp[i + 1]));
      temp[i + 1] = sol[i];
    }
    const double peak = *std::max_element(temp.begin(), temp.end());
    if (!std::isfinite(peak) || peak > spec.ambient_k + 5000.0) {
      out.thermal_runaway = true;
      break;
    }
    if (delta < 1e-6) break;
  }
  out.picard_iterations = it + 1;
  out.temperature_k = temp;
  out.peak_temperature_k = *std::max_element(temp.begin(), temp.end());
  out.peak_rise_k = out.peak_temperature_k - spec.ambient_k;

  // Converged electrical resistance and dissipated power.
  double r_total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double r_t = spec.resistance_per_m *
                       (1.0 + spec.resistance_tcr *
                                  (temp[static_cast<std::size_t>(i)] -
                                   spec.ambient_k));
    r_total += std::max(0.0, r_t) * dx * ((i == 0 || i == n - 1) ? 0.5 : 1.0);
  }
  out.hot_resistance_ohm = r_total;
  out.total_power_w = i2 * r_total;
  return out;
}

double analytic_peak_rise(const LineThermalSpec& spec, double current_a) {
  validate(spec);
  const double p = current_a * current_a * spec.resistance_per_m;
  return p * spec.length_m * spec.length_m /
         (8.0 * spec.thermal_conductivity * spec.cross_section_m2);
}

double thermal_ampacity(const LineThermalSpec& spec, double t_max_k,
                        int nodes) {
  validate(spec);
  CNTI_EXPECTS(t_max_k > spec.ambient_k, "t_max must exceed ambient");
  const auto overshoot = [&](double current) {
    const SelfHeatResult r = solve_self_heating(spec, current, nodes);
    if (r.thermal_runaway) return 1e6;
    return r.peak_temperature_k - t_max_k;
  };
  // Bracket: start from the analytic estimate.
  double hi = std::sqrt((t_max_k - spec.ambient_k) * 8.0 *
                        spec.thermal_conductivity * spec.cross_section_m2 /
                        (std::max(spec.resistance_per_m, 1e-30) *
                         spec.length_m * spec.length_m));
  if (!std::isfinite(hi) || hi <= 0) hi = 1e-3;
  double lo = hi * 1e-3;
  while (overshoot(lo) > 0 && lo > 1e-15) lo *= 0.1;
  while (overshoot(hi) < 0 && hi < 1e3) hi *= 2.0;
  return numerics::find_root_brent(overshoot, lo, hi,
                                   {.x_tolerance = 1e-12});
}

}  // namespace cnti::thermal
