// Steady-state 1-D electro-thermal solver for an interconnect line:
//   k A T'' - g (T - T_amb) + I^2 r(T) = 0,  T(0) = T(L) = T_amb,
// with r(T) the temperature-dependent per-length electrical resistance and
// g the thermal coupling to the substrate per unit length. Backs the
// paper's Sec. IV.B thermal studies (self-heating of MWCNT interconnects).
#pragma once

#include <vector>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace cnti::thermal {

/// Thermal and electrical description of a uniform line.
struct LineThermalSpec {
  double length_m = 1e-6;
  double cross_section_m2 = 4.4e-17;     ///< e.g. 7.5 nm MWCNT disc.
  double thermal_conductivity = 3000.0;  ///< Axial k [W/(m K)].
  double ambient_k = phys::kRoomTemperature;
  /// Electrical resistance per length at ambient [Ohm/m].
  double resistance_per_m = 1e9;
  /// Temperature coefficient of the electrical resistance [1/K].
  double resistance_tcr = 0.0;
  /// Thermal conductance to the substrate per unit length [W/(m K)].
  double substrate_coupling = 0.0;
};

/// Solution of the self-heating problem at a given current.
struct SelfHeatResult {
  std::vector<double> x_m;
  std::vector<double> temperature_k;
  double peak_temperature_k = 0.0;
  double peak_rise_k = 0.0;
  double total_power_w = 0.0;
  /// Total electrical resistance at the converged temperature [Ohm].
  double hot_resistance_ohm = 0.0;
  bool thermal_runaway = false;
  int picard_iterations = 0;
};

/// Solves the nonlinear problem by Picard iteration over r(T).
/// `nodes` sets the FD resolution.
SelfHeatResult solve_self_heating(const LineThermalSpec& spec,
                                  double current_a, int nodes = 201);

/// Analytic peak rise for constant heating and no substrate coupling:
/// dT = I^2 r L^2 / (8 k A) — validation reference and quick estimate.
double analytic_peak_rise(const LineThermalSpec& spec, double current_a);

/// Ampacity: the current at which the peak temperature reaches t_max_k
/// (thermal-runaway currents count as exceeding) [A].
double thermal_ampacity(const LineThermalSpec& spec, double t_max_k,
                        int nodes = 101);

}  // namespace cnti::thermal
