#include "thermal/electrothermal.hpp"

#include <cmath>

namespace cnti::thermal {

EtOperatingPoint solve_operating_point(const LineThermalSpec& spec,
                                       double voltage_v, double tolerance,
                                       int max_iterations) {
  CNTI_EXPECTS(voltage_v >= 0, "bias must be non-negative");
  EtOperatingPoint op;
  op.voltage_v = voltage_v;
  const double r_cold = spec.resistance_per_m * spec.length_m;
  CNTI_EXPECTS(r_cold > 0, "line needs finite electrical resistance");

  double current = voltage_v / r_cold;
  SelfHeatResult heat;
  for (int it = 0; it < max_iterations; ++it) {
    op.outer_iterations = it + 1;
    heat = solve_self_heating(spec, current, 101);
    if (heat.thermal_runaway) {
      op.runaway = true;
      op.current_a = current;
      op.peak_temperature_k = heat.peak_temperature_k;
      op.resistance_ohm = heat.hot_resistance_ohm;
      return op;
    }
    const double new_current = voltage_v / heat.hot_resistance_ohm;
    // Damped update guards against overshoot near runaway.
    const double next = 0.5 * (current + new_current);
    const double rel =
        std::abs(next - current) / std::max(current, 1e-30);
    current = next;
    if (rel < tolerance) break;
  }
  op.current_a = current;
  op.resistance_ohm = heat.hot_resistance_ohm;
  op.peak_temperature_k = heat.peak_temperature_k;
  return op;
}

std::vector<EtOperatingPoint> sweep_electrothermal_iv(
    const LineThermalSpec& spec, double v_max, int points,
    double t_breakdown_k) {
  CNTI_EXPECTS(points >= 2, "need at least two sweep points");
  CNTI_EXPECTS(v_max > 0, "sweep range must be positive");
  std::vector<EtOperatingPoint> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double v = v_max * i / (points - 1);
    EtOperatingPoint op = solve_operating_point(spec, v);
    const bool dead = op.runaway || op.peak_temperature_k > t_breakdown_k;
    out.push_back(op);
    if (dead) break;  // device destroyed; stop the sweep
  }
  return out;
}

double breakdown_voltage(const LineThermalSpec& spec, double v_max,
                         double t_breakdown_k) {
  CNTI_EXPECTS(v_max > 0, "search range must be positive");
  const auto dead = [&](double v) {
    const EtOperatingPoint op = solve_operating_point(spec, v);
    return op.runaway || op.peak_temperature_k > t_breakdown_k;
  };
  if (!dead(v_max)) return v_max;
  double lo = 0.0, hi = v_max;
  for (int i = 0; i < 60 && (hi - lo) > 1e-9 * v_max; ++i) {
    const double mid = 0.5 * (lo + hi);
    (dead(mid) ? hi : lo) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace cnti::thermal
