// Electromigration reliability models: Black's equation for Cu (and
// Cu-dominated composites) and the CNT breakdown-threshold model (CNTs are
// EM-immune below their ~1e9 A/cm^2 saturation limit — paper Sec. I).
#pragma once

#include "common/constants.hpp"
#include "common/error.hpp"
#include "numerics/rng.hpp"

namespace cnti::thermal {

/// Black's-equation parameters for a Cu interconnect population.
struct BlackParams {
  /// Scale constant chosen so the reference stress (2 MA/cm^2 at 378 K)
  /// gives ~10-year median lifetime.
  double a_scale = 1.0;
  double current_exponent_n = 2.0;
  double activation_energy_ev = cuconst::kEmActivationEnergyEv;
  /// Lognormal shape parameter of the TTF distribution.
  double sigma_log = 0.4;
};

/// Median time-to-failure of a Cu line at current density j [A/m^2] and
/// temperature T [K], in seconds.
double black_mttf_s(double current_density_a_m2, double temperature_k,
                    const BlackParams& params = {});

/// Samples a lognormal TTF around the Black median.
double sample_ttf_s(double current_density_a_m2, double temperature_k,
                    numerics::Rng& rng, const BlackParams& params = {});

/// CNT electromigration immunity: returns true when the stress is below
/// the intrinsic breakdown density (no EM wear-out mechanism applies).
bool cnt_em_immune(double current_density_a_m2);

/// Lifetime acceleration factor between stress and use conditions
/// (standard Black extrapolation).
double em_acceleration_factor(double j_stress, double t_stress_k,
                              double j_use, double t_use_k,
                              const BlackParams& params = {});

}  // namespace cnti::thermal
