#include "thermal/em.hpp"

#include <cmath>

namespace cnti::thermal {

namespace {
/// Reference stress: 2 MA/cm^2 at 378 K gives a ~10-year median.
constexpr double kRefJ = 2e10;          // A/m^2
constexpr double kRefT = 378.0;         // K
constexpr double kRefMttf = 3.15e8;     // s (~10 years)
}  // namespace

double black_mttf_s(double current_density_a_m2, double temperature_k,
                    const BlackParams& params) {
  CNTI_EXPECTS(current_density_a_m2 > 0, "current density must be positive");
  CNTI_EXPECTS(temperature_k > 0, "temperature must be positive");
  const double ea_j = params.activation_energy_ev * phys::kElectronVolt;
  const double ref = kRefMttf * params.a_scale;
  const double j_term =
      std::pow(kRefJ / current_density_a_m2, params.current_exponent_n);
  const double t_term = std::exp(ea_j / phys::kBoltzmann *
                                 (1.0 / temperature_k - 1.0 / kRefT));
  return ref * j_term * t_term;
}

double sample_ttf_s(double current_density_a_m2, double temperature_k,
                    numerics::Rng& rng, const BlackParams& params) {
  const double median =
      black_mttf_s(current_density_a_m2, temperature_k, params);
  return rng.lognormal_median(median, params.sigma_log);
}

bool cnt_em_immune(double current_density_a_m2) {
  return current_density_a_m2 < cntconst::kCntMaxCurrentDensity;
}

double em_acceleration_factor(double j_stress, double t_stress_k,
                              double j_use, double t_use_k,
                              const BlackParams& params) {
  return black_mttf_s(j_use, t_use_k, params) /
         black_mttf_s(j_stress, t_stress_k, params);
}

}  // namespace cnti::thermal
