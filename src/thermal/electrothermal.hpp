// Electro-thermal co-simulation — the tool the paper's conclusion asks
// for ("electro-thermal modeling and simulation tools are needed to
// evaluate the performance, reliability, and variability"). Couples the
// electrical line model (R rises with T) with the 1-D heat solver
// (T rises with I^2 R) self-consistently at each bias point, producing
// IV curves with thermal droop and the thermal-breakdown voltage.
#pragma once

#include <vector>

#include "thermal/heat1d.hpp"

namespace cnti::thermal {

/// One self-consistent electro-thermal operating point.
struct EtOperatingPoint {
  double voltage_v = 0.0;
  double current_a = 0.0;
  double resistance_ohm = 0.0;       ///< Hot resistance.
  double peak_temperature_k = 0.0;
  bool runaway = false;
  int outer_iterations = 0;
};

/// Solves for the current through the line at a fixed terminal voltage,
/// iterating I = V / R_hot(I) against the heat solver until |dI/I| < tol.
EtOperatingPoint solve_operating_point(const LineThermalSpec& spec,
                                       double voltage_v,
                                       double tolerance = 1e-6,
                                       int max_iterations = 200);

/// Voltage sweep; stops early (marking runaway) once the solver detects
/// thermal runaway or the peak temperature passes `t_breakdown_k`.
std::vector<EtOperatingPoint> sweep_electrothermal_iv(
    const LineThermalSpec& spec, double v_max, int points,
    double t_breakdown_k = 873.0);

/// Thermal-breakdown voltage: smallest bias whose self-consistent peak
/// temperature reaches t_breakdown_k (bisection; returns v_max if the
/// line never reaches breakdown within the range).
double breakdown_voltage(const LineThermalSpec& spec, double v_max,
                         double t_breakdown_k = 873.0);

}  // namespace cnti::thermal
