#include "thermal/sthm.hpp"

#include <algorithm>
#include <cmath>

namespace cnti::thermal {

SthmScan simulate_sthm_scan(const SelfHeatResult& truth,
                            const SthmProbe& probe, numerics::Rng& rng) {
  CNTI_EXPECTS(!truth.x_m.empty(), "empty temperature profile");
  CNTI_EXPECTS(probe.scan_step_m > 0, "scan step must be positive");
  CNTI_EXPECTS(probe.spatial_resolution_m > 0,
               "probe resolution must be positive");
  SthmScan scan;
  const double x_end = truth.x_m.back();
  const double sigma = probe.spatial_resolution_m;

  for (double x = 0.0; x <= x_end + 1e-15; x += probe.scan_step_m) {
    // Discrete Gaussian convolution over the truth profile.
    double weight_sum = 0.0, acc = 0.0;
    for (std::size_t i = 0; i < truth.x_m.size(); ++i) {
      const double d = truth.x_m[i] - x;
      const double w = std::exp(-0.5 * d * d / (sigma * sigma));
      weight_sum += w;
      acc += w * truth.temperature_k[i];
    }
    scan.x_m.push_back(x);
    scan.temperature_k.push_back(acc / weight_sum +
                                 rng.normal(0.0, probe.temperature_noise_k));
  }
  return scan;
}

double extract_thermal_conductivity(const SthmScan& scan,
                                    const LineThermalSpec& geometry,
                                    double current_a) {
  CNTI_EXPECTS(scan.temperature_k.size() >= 5, "scan too short");
  // Robust peak estimate: average the top 5% of pixels (noise rejection).
  std::vector<double> sorted = scan.temperature_k;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t top = std::max<std::size_t>(1, sorted.size() / 20);
  double peak = 0.0;
  for (std::size_t i = sorted.size() - top; i < sorted.size(); ++i) {
    peak += sorted[i];
  }
  peak /= static_cast<double>(top);
  const double rise = peak - geometry.ambient_k;
  CNTI_EXPECTS(rise > 0, "no measurable self-heating in the scan");

  // Invert the parabolic conduction profile (contact-sunk line):
  // dT_peak = I^2 r L^2 / (8 k A).
  const double p = current_a * current_a * geometry.resistance_per_m;
  return p * geometry.length_m * geometry.length_m /
         (8.0 * rise * geometry.cross_section_m2);
}

}  // namespace cnti::thermal
