#include "core/mwcnt_line.hpp"

#include <cmath>

#include "materials/cnt_mfp.hpp"

namespace cnti::core {

namespace {

std::vector<double> build_shells(const MwcntSpec& spec) {
  std::vector<double> shells;
  const double d_outer = spec.outer_diameter_m;
  switch (spec.shell_rule) {
    case ShellRule::kVanDerWaals: {
      const double d_min = d_outer / 2.0;
      for (double d = d_outer; d >= d_min - 1e-15;
           d -= 2.0 * cntconst::kShellSpacing) {
        shells.push_back(d);
      }
      break;
    }
    case ShellRule::kPaperLinear: {
      // N_S = D[nm] - 1, shells spread uniformly between D and D/2.
      const int ns = std::max(1, static_cast<int>(
                                     std::round(d_outer * 1e9 - 1.0)));
      for (int i = 0; i < ns; ++i) {
        const double frac = (ns == 1) ? 0.0
                                      : static_cast<double>(i) / (ns - 1);
        shells.push_back(d_outer * (1.0 - 0.5 * frac));
      }
      break;
    }
  }
  return shells;
}

}  // namespace

MwcntLine::MwcntLine(MwcntSpec spec) : spec_(spec) {
  CNTI_EXPECTS(spec_.outer_diameter_m >= 1e-9,
               "outer diameter must be >= 1 nm");
  CNTI_EXPECTS(spec_.channels_per_shell > 0,
               "channels per shell must be positive");
  CNTI_EXPECTS(spec_.temperature_k > 0, "temperature must be positive");
  CNTI_EXPECTS(spec_.contact_resistance_ohm >= 0,
               "contact resistance must be non-negative");
  CNTI_EXPECTS(spec_.electrostatic_capacitance_f_per_m > 0,
               "electrostatic capacitance must be positive");
  shells_ = build_shells(spec_);
}

double MwcntLine::total_channels() const {
  return spec_.channels_per_shell * shell_count();
}

double MwcntLine::shell_mfp(int shell) const {
  CNTI_EXPECTS(shell >= 0 && shell < shell_count(), "shell out of range");
  const double d = (spec_.mfp_rule == MfpRule::kOuterDiameter)
                       ? spec_.outer_diameter_m
                       : shells_[static_cast<std::size_t>(shell)];
  materials::MfpSpec mfp;
  mfp.diameter_m = d;
  mfp.temperature_k = spec_.temperature_k;
  mfp.defect_spacing_m = spec_.defect_spacing_m;
  return materials::effective_mfp(mfp);
}

double MwcntLine::lumped_resistance() const {
  // Quantum (ballistic) resistance of N_C N_S channels in parallel plus the
  // imperfect-contact term.
  return phys::kResistanceQuantum / total_channels() +
         spec_.contact_resistance_ohm;
}

double MwcntLine::scattering_resistance_per_m() const {
  // Sum shell conductances' scattering parts: per shell, the distributed
  // resistance slope is R0 / (N_c lambda_i); shells add in parallel. With
  // per-shell MFPs the exact parallel sum of (1 + L/lambda_i) terms is not
  // strictly separable into lumped + linear parts, so we use the
  // long-length slope (exact for the paper's single-lambda Eq. 4).
  double g_slope = 0.0;  // sum of N_c lambda_i / R0 => conductance * length
  for (int s = 0; s < shell_count(); ++s) {
    g_slope += spec_.channels_per_shell * shell_mfp(s) /
               phys::kResistanceQuantum;
  }
  return 1.0 / g_slope;
}

double MwcntLine::resistance(double length_m) const {
  CNTI_EXPECTS(length_m > 0, "length must be positive");
  // Exact per-shell parallel sum (reduces to paper Eq. 4 for a common MFP):
  // G = sum_shells N_c G0 / (1 + L / lambda_i); R = 1/G + contacts.
  double g = 0.0;
  for (int s = 0; s < shell_count(); ++s) {
    g += spec_.channels_per_shell * phys::kConductanceQuantum /
         (1.0 + length_m / shell_mfp(s));
  }
  return 1.0 / g + spec_.contact_resistance_ohm;
}

double MwcntLine::quantum_capacitance_per_m() const {
  return total_channels() * cntconst::kQuantumCapacitancePerChannel;
}

double MwcntLine::capacitance_per_m() const {
  // Paper Eq. 5: series combination, approximately C_E because C_Q >> C_E.
  const double cq = quantum_capacitance_per_m();
  const double ce = spec_.electrostatic_capacitance_f_per_m;
  return cq * ce / (cq + ce);
}

double MwcntLine::kinetic_inductance_per_m() const {
  return cntconst::kKineticInductancePerChannel / total_channels();
}

double MwcntLine::effective_conductivity(double length_m) const {
  const double area =
      M_PI * spec_.outer_diameter_m * spec_.outer_diameter_m / 4.0;
  return length_m / (resistance(length_m) * area);
}

LineRlc MwcntLine::rlc() const {
  LineRlc out;
  out.series_resistance_ohm = lumped_resistance();
  out.resistance_per_m = scattering_resistance_per_m();
  out.capacitance_per_m = capacitance_per_m();
  out.inductance_per_m = kinetic_inductance_per_m();
  return out;
}

MwcntLine make_paper_mwcnt(double outer_diameter_nm,
                           double channels_per_shell,
                           double contact_resistance_ohm,
                           double electrostatic_cap_af_per_um) {
  MwcntSpec spec;
  spec.outer_diameter_m = outer_diameter_nm * 1e-9;
  spec.shell_rule = ShellRule::kPaperLinear;
  spec.mfp_rule = MfpRule::kOuterDiameter;
  spec.channels_per_shell = channels_per_shell;
  spec.contact_resistance_ohm = contact_resistance_ohm;
  spec.electrostatic_capacitance_f_per_m =
      electrostatic_cap_af_per_um * 1e-12;
  return MwcntLine(spec);
}

}  // namespace cnti::core
