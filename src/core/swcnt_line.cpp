#include "core/swcnt_line.hpp"

#include <cmath>

#include "materials/cnt_mfp.hpp"

namespace cnti::core {

SwcntWire::SwcntWire(SwcntSpec spec) : spec_(spec) {
  CNTI_EXPECTS(spec_.diameter_m > 0.3e-9, "diameter below physical minimum");
  CNTI_EXPECTS(spec_.channels > 0, "channels must be positive");
  materials::MfpSpec mfp;
  mfp.diameter_m = spec_.diameter_m;
  mfp.temperature_k = spec_.temperature_k;
  mfp.defect_spacing_m = spec_.defect_spacing_m;
  mfp_ = materials::effective_mfp(mfp);
}

double SwcntWire::resistance(double length_m) const {
  CNTI_EXPECTS(length_m > 0, "length must be positive");
  return (phys::kResistanceQuantum / spec_.channels) *
             (1.0 + length_m / mfp_) +
         spec_.contact_resistance_ohm;
}

double SwcntWire::effective_conductivity(double length_m) const {
  const double area = M_PI * spec_.diameter_m * spec_.diameter_m / 4.0;
  return length_m / (resistance(length_m) * area);
}

double SwcntWire::saturation_current() const {
  // Saturation scales weakly with diameter; anchor 25 uA at 1 nm.
  return cntconst::kSwcntSaturationCurrent * (spec_.diameter_m / 1e-9);
}

SwcntBundle::SwcntBundle(BundleSpec spec) : spec_(spec) {
  CNTI_EXPECTS(spec_.width_m > 0 && spec_.height_m > 0,
               "cross-section must be positive");
  CNTI_EXPECTS(spec_.tube_density_per_m2 > 0, "density must be positive");
  CNTI_EXPECTS(spec_.metallic_fraction > 0 && spec_.metallic_fraction <= 1,
               "metallic fraction in (0, 1]");
}

double SwcntBundle::tube_count() const {
  return spec_.tube_density_per_m2 * spec_.width_m * spec_.height_m;
}

double SwcntBundle::conducting_tube_count() const {
  return tube_count() * spec_.metallic_fraction;
}

double SwcntBundle::resistance(double length_m) const {
  CNTI_EXPECTS(length_m > 0, "length must be positive");
  SwcntSpec tube;
  tube.diameter_m = spec_.tube_diameter_m;
  tube.channels = spec_.channels_per_tube;
  tube.temperature_k = spec_.temperature_k;
  tube.defect_spacing_m = spec_.defect_spacing_m;
  tube.contact_resistance_ohm = spec_.contact_resistance_ohm;
  const SwcntWire wire(tube);
  const double n = conducting_tube_count();
  CNTI_EXPECTS(n >= 1.0, "bundle has no conducting tubes");
  return wire.resistance(length_m) / n;
}

double SwcntBundle::effective_conductivity(double length_m) const {
  const double area = spec_.width_m * spec_.height_m;
  return length_m / (resistance(length_m) * area);
}

double SwcntBundle::max_current() const {
  SwcntSpec tube;
  tube.diameter_m = spec_.tube_diameter_m;
  const SwcntWire wire(tube);
  return wire.saturation_current() * conducting_tube_count();
}

double SwcntBundle::max_current_density() const {
  return max_current() / (spec_.width_m * spec_.height_m);
}

double required_tube_density(double cu_resistance_ohm, double length_m,
                             double cross_section_m2, const SwcntSpec& tube) {
  CNTI_EXPECTS(cu_resistance_ohm > 0, "reference resistance positive");
  CNTI_EXPECTS(cross_section_m2 > 0, "cross-section positive");
  const SwcntWire wire(tube);
  // n tubes in parallel must reach the Cu resistance:
  // n = R_tube(L) / R_cu; density = n / A. The caller chooses whether the
  // tube spec already includes the metallic-fraction derating.
  const double n = wire.resistance(length_m) / cu_resistance_ohm;
  return n / cross_section_m2;
}

}  // namespace cnti::core
