// The multi-scale simulation flow the paper's conclusion calls for: from
// ab-initio-calibrated channel counts, through materials-level MFPs, to
// compact RLC models and delay — in one façade. The flow is decomposed
// into named stage functions (atomistic channels, line spec, driver
// config, report assembly) so higher layers can run the same stages
// individually — the scenario engine routes them through its content-keyed
// memo cache and substitutes real TCAD/MNA implementations for the
// hook fallbacks. MultiscaleHooks remains the core-level seam for callers
// that want to override a stage without pulling in those layers.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "atomistic/doping.hpp"
#include "core/electrostatics.hpp"
#include "core/line_model.hpp"
#include "core/mwcnt_line.hpp"

namespace cnti::core {

/// Input description of a doped-MWCNT interconnect problem.
struct MultiscaleInput {
  double outer_diameter_nm = 10.0;
  double length_um = 100.0;
  atomistic::DopantSpecies dopant = atomistic::DopantSpecies::kIodineInternal;
  double dopant_concentration = 0.0;  ///< 0 = pristine.
  double temperature_k = phys::kRoomTemperature;
  double defect_spacing_um = -1.0;
  double contact_resistance_kohm = 200.0;
  WireEnvironment environment;        ///< For the analytic C_E stage.
  double driver_resistance_kohm = 10.0;
  double load_capacitance_ff = 0.1;
};

/// Per-stage outputs of the flow.
struct MultiscaleReport {
  // Atomistic stage.
  double fermi_shift_ev = 0.0;
  double channels_per_shell = 2.0;
  // Materials stage.
  double mfp_um = 0.0;
  // Compact-model stage.
  int shells = 0;
  double resistance_kohm = 0.0;
  double capacitance_ff = 0.0;
  double electrostatic_cap_af_per_um = 0.0;
  // Circuit stage (Elmore by default; MNA via hook).
  double delay_ps = 0.0;
  std::string delay_method = "elmore";
};

/// Optional hooks for the higher-level stages.
struct MultiscaleHooks {
  /// Returns C_E [F/m] for the wire environment (e.g. TCAD extraction);
  /// falls back to the analytic model when absent.
  std::function<double(const WireEnvironment&)> extract_capacitance;
  /// Returns the 50% propagation delay [s] for the driver-line-load config
  /// (e.g. MNA transient); falls back to the Elmore estimate when absent.
  std::function<double(const DriverLineLoad&)> simulate_delay;
};

// --- Stage functions (each deterministic; shared with the scenario engine
// --- so the façade and the cached engine compute bit-identical results).

/// Throws PreconditionError on out-of-domain geometry.
void validate_multiscale_input(const MultiscaleInput& in);

/// Atomistic stage output: doping -> Fermi shift -> channels per shell.
struct ChannelStage {
  double fermi_shift_ev = 0.0;
  double channels_per_shell = 2.0;
};

ChannelStage doping_channel_stage(atomistic::DopantSpecies species,
                                  double concentration);

/// Materials/compact stage: the line spec implied by the input and an
/// externally supplied electrostatic capacitance [F/m] (analytic model,
/// hook, or cached TCAD extraction).
MwcntSpec multiscale_line_spec(const MultiscaleInput& in,
                               const ChannelStage& channels,
                               double electrostatic_cap_f_per_m);

/// Circuit-stage configuration for the delay analysis of the line.
DriverLineLoad multiscale_driver_line_load(const MultiscaleInput& in,
                                           const MwcntLine& line);

/// Assembles the per-stage outputs; `delay_s`/`delay_method` come from
/// whichever circuit stage ran (Elmore fallback, hook, engine MNA stage).
MultiscaleReport assemble_multiscale_report(const MultiscaleInput& in,
                                            const ChannelStage& channels,
                                            const MwcntLine& line,
                                            double delay_s,
                                            std::string delay_method);

/// Runs the full flow. Deterministic; throws on invalid inputs.
MultiscaleReport run_multiscale_flow(const MultiscaleInput& in,
                                     const MultiscaleHooks& hooks = {});

}  // namespace cnti::core
