// The multi-scale simulation flow the paper's conclusion calls for: from
// ab-initio-calibrated channel counts, through materials-level MFPs, to
// compact RLC models and delay — in one façade. Higher-level stages (TCAD
// C_E extraction, full MNA transient) plug in through optional hooks so the
// core stays free of upward dependencies.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "atomistic/doping.hpp"
#include "core/electrostatics.hpp"
#include "core/line_model.hpp"
#include "core/mwcnt_line.hpp"

namespace cnti::core {

/// Input description of a doped-MWCNT interconnect problem.
struct MultiscaleInput {
  double outer_diameter_nm = 10.0;
  double length_um = 100.0;
  atomistic::DopantSpecies dopant = atomistic::DopantSpecies::kIodineInternal;
  double dopant_concentration = 0.0;  ///< 0 = pristine.
  double temperature_k = phys::kRoomTemperature;
  double defect_spacing_um = -1.0;
  double contact_resistance_kohm = 200.0;
  WireEnvironment environment;        ///< For the analytic C_E stage.
  double driver_resistance_kohm = 10.0;
  double load_capacitance_ff = 0.1;
};

/// Per-stage outputs of the flow.
struct MultiscaleReport {
  // Atomistic stage.
  double fermi_shift_ev = 0.0;
  double channels_per_shell = 2.0;
  // Materials stage.
  double mfp_um = 0.0;
  // Compact-model stage.
  int shells = 0;
  double resistance_kohm = 0.0;
  double capacitance_ff = 0.0;
  double electrostatic_cap_af_per_um = 0.0;
  // Circuit stage (Elmore by default; MNA via hook).
  double delay_ps = 0.0;
  std::string delay_method = "elmore";
};

/// Optional hooks for the higher-level stages.
struct MultiscaleHooks {
  /// Returns C_E [F/m] for the wire environment (e.g. TCAD extraction);
  /// falls back to the analytic model when absent.
  std::function<double(const WireEnvironment&)> extract_capacitance;
  /// Returns the 50% propagation delay [s] for the driver-line-load config
  /// (e.g. MNA transient); falls back to the Elmore estimate when absent.
  std::function<double(const DriverLineLoad&)> simulate_delay;
};

/// Runs the full flow. Deterministic; throws on invalid inputs.
MultiscaleReport run_multiscale_flow(const MultiscaleInput& in,
                                     const MultiscaleHooks& hooks = {});

}  // namespace cnti::core
