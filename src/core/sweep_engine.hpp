// Generic deterministic parameter-sweep engine: the design-space benches
// and examples all walk cartesian grids (doping x length x temperature,
// growth T x catalyst, ...) point by point. SweepGrid names the axes,
// run_sweep evaluates every point on the thread pool, and results come
// back in flat-index order — so a sweep is bit-identical at any thread
// count as long as the evaluator derives any randomness from the point's
// flat index (see docs/PARALLELISM.md).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "numerics/thread_pool.hpp"

namespace cnti::core {

/// One named sweep dimension.
struct SweepAxis {
  std::string name;
  std::vector<double> values;
};

/// A point of the cartesian grid: its flat index plus one (name, value)
/// pair per axis, in the grid's axis order. Self-contained value type —
/// a point stays valid after its grid is destroyed.
class SweepPoint {
 public:
  SweepPoint(std::vector<std::string> names, std::size_t flat_index,
             std::vector<double> values)
      : names_(std::move(names)),
        flat_index_(flat_index),
        values_(std::move(values)) {}

  /// Row-major flat index (last axis fastest) — use as an RNG stream id.
  std::size_t flat_index() const { return flat_index_; }

  double operator[](std::size_t axis) const { return values_[axis]; }

  /// Value along the axis called `name`.
  double at(std::string_view name) const {
    for (std::size_t a = 0; a < names_.size(); ++a) {
      if (names_[a] == name) return values_[a];
    }
    CNTI_EXPECTS(false, "unknown sweep axis \"" + std::string(name) + "\"");
    return 0.0;  // unreachable
  }

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<std::string> names_;
  std::size_t flat_index_;
  std::vector<double> values_;
};

/// Cartesian product of the axes, enumerated row-major with the last axis
/// varying fastest.
class SweepGrid {
 public:
  explicit SweepGrid(std::vector<SweepAxis> axes) : axes_(std::move(axes)) {
    CNTI_EXPECTS(!axes_.empty(), "sweep needs at least one axis");
    size_ = 1;
    for (const auto& axis : axes_) {
      CNTI_EXPECTS(!axis.values.empty(),
                   "sweep axis \"" + axis.name + "\" has no values");
      size_ *= axis.values.size();
    }
  }

  std::size_t size() const { return size_; }
  const std::vector<SweepAxis>& axes() const { return axes_; }

  SweepPoint point(std::size_t flat_index) const {
    CNTI_EXPECTS(flat_index < size_, "sweep point index out of range");
    std::vector<std::string> names(axes_.size());
    std::vector<double> values(axes_.size());
    std::size_t rem = flat_index;
    for (std::size_t a = axes_.size(); a-- > 0;) {
      const auto& vals = axes_[a].values;
      names[a] = axes_[a].name;
      values[a] = vals[rem % vals.size()];
      rem /= vals.size();
    }
    return SweepPoint(std::move(names), flat_index, std::move(values));
  }

 private:
  std::vector<SweepAxis> axes_;
  std::size_t size_ = 1;
};

struct SweepOptions {
  /// 0 = CNTI_THREADS env / hardware default; otherwise a private pool of
  /// exactly this many threads.
  int threads = 0;
  /// Points per chunk. Results are slot-indexed, so grain affects only
  /// load balance, never values.
  std::size_t grain = 1;
};

/// Evaluates `eval(const SweepPoint&)` at every grid point in parallel
/// and returns the results in flat-index order. The result type must be
/// default-constructible (each point writes its own pre-allocated slot).
template <typename F>
auto run_sweep(const SweepGrid& grid, F&& eval, SweepOptions options = {})
    -> std::vector<std::invoke_result_t<F&, const SweepPoint&>> {
  using Result = std::invoke_result_t<F&, const SweepPoint&>;
  static_assert(std::is_default_constructible_v<Result>,
                "sweep result type must be default-constructible");
  CNTI_EXPECTS(options.threads >= 0, "threads must be >= 0");
  std::vector<Result> results(grid.size());
  numerics::parallel_chunks(
      grid.size(), options.grain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          results[i] = eval(grid.point(i));
        }
      },
      options.threads);
  return results;
}

}  // namespace cnti::core
