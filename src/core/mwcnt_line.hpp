// Doped-MWCNT interconnect compact model — the paper's core contribution
// (Sec. III.C, Eqs. 4-5):
//
//   R_MW = 1 / (N_C N_S G_1channel),  G_1channel = G0 / (1 + L / L_MFP)
//   C_MW = (N_C N_S C_Q1 * C_E) / (N_C N_S C_Q1 + C_E) ~ C_E
//
// with N_C the conducting channels per shell (2 pristine, up to ~10 doped —
// the doping enhancement factor) and N_S the number of shells. Two shell
// rules are provided: the physical van-der-Waals filling (shells spaced by
// 0.34 nm down to D_max/2) and the paper's stated linear rule
// N_S = D[nm] - 1. Kinetic inductance is included for completeness.
#pragma once

#include <vector>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace cnti::core {

/// Shell-count convention (see DESIGN.md).
enum class ShellRule {
  kVanDerWaals,  ///< shells at D, D-2delta, ... >= D/2 (delta = 0.34 nm).
  kPaperLinear,  ///< N_S = D[nm] - 1 (paper Sec. III.C).
};

/// Mean-free-path convention for the per-channel conductance.
enum class MfpRule {
  kPerShell,       ///< lambda_i = 1000 * d_i (Naeemi-Meindl, exact sum).
  kOuterDiameter,  ///< lambda = 1000 * D_max for all shells (paper Eq. 4).
};

/// Parameters of a doped (or pristine) MWCNT interconnect line.
struct MwcntSpec {
  double outer_diameter_m = 10e-9;
  ShellRule shell_rule = ShellRule::kPaperLinear;
  MfpRule mfp_rule = MfpRule::kOuterDiameter;
  /// Conducting channels per shell: 2 = pristine, up to ~10 heavily doped.
  double channels_per_shell = cntconst::kChannelsPerMetallicShell;
  double temperature_k = phys::kRoomTemperature;
  /// Mean distance between growth defects; <= 0 = defect-free.
  double defect_spacing_m = -1.0;
  /// Lumped metal-CNT contact resistance, both ends combined [Ohm]. Doping
  /// does not act on this term (paper motivation: "resistive metal-CNT
  /// contacts"). 0 = ideal contacts (quantum resistance only).
  double contact_resistance_ohm = 0.0;
  /// Electrostatic capacitance per length from the line's environment
  /// [F/m]; geometry dependent, unaffected by doping (paper Eq. 5).
  double electrostatic_capacitance_f_per_m = 50e-12;
};

/// Per-unit-length RLC of a line plus its lumped end resistance.
struct LineRlc {
  double series_resistance_ohm = 0.0;     ///< Lumped (contacts + quantum).
  double resistance_per_m = 0.0;          ///< Distributed scattering part.
  double capacitance_per_m = 0.0;
  double inductance_per_m = 0.0;
};

/// Compact electrical model of a doped MWCNT interconnect.
class MwcntLine {
 public:
  explicit MwcntLine(MwcntSpec spec);

  const MwcntSpec& spec() const { return spec_; }

  int shell_count() const { return static_cast<int>(shells_.size()); }
  const std::vector<double>& shell_diameters() const { return shells_; }

  /// Total conducting channels N_C * N_S.
  double total_channels() const;

  /// Effective MFP of shell i [m] (includes defect scattering).
  double shell_mfp(int shell) const;

  /// End-to-end resistance at length L (paper Eq. 4 + contacts) [Ohm].
  double resistance(double length_m) const;

  /// Length-independent lumped part: quantum + imperfect contacts [Ohm].
  double lumped_resistance() const;

  /// Distributed (scattering) resistance per metre [Ohm/m].
  double scattering_resistance_per_m() const;

  /// Quantum capacitance per metre: N_C N_S C_Q1 [F/m].
  double quantum_capacitance_per_m() const;

  /// Total capacitance per metre (paper Eq. 5: series C_Q with C_E) [F/m].
  double capacitance_per_m() const;

  /// Kinetic inductance per metre: L_K1 / (N_C N_S) [H/m].
  double kinetic_inductance_per_m() const;

  /// Effective conductivity referenced to the outer-diameter disc area, the
  /// quantity plotted in the paper's Fig. 9 [S/m].
  double effective_conductivity(double length_m) const;

  /// Bundle of RLC parameters for circuit netlisting.
  LineRlc rlc() const;

 private:
  MwcntSpec spec_;
  std::vector<double> shells_;
};

/// Convenience: the paper's Fig. 12 delay-ratio configurations use pristine
/// (N_c = 2) vs. doped (N_c in 2..10) MWCNTs of D_max = 10/14/22 nm.
MwcntLine make_paper_mwcnt(double outer_diameter_nm, double channels_per_shell,
                           double contact_resistance_ohm = 200e3,
                           double electrostatic_cap_af_per_um = 50.0);

}  // namespace cnti::core
