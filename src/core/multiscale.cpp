#include "core/multiscale.hpp"

#include "common/units.hpp"

namespace cnti::core {

MultiscaleReport run_multiscale_flow(const MultiscaleInput& in,
                                     const MultiscaleHooks& hooks) {
  CNTI_EXPECTS(in.outer_diameter_nm >= 1.0, "diameter must be >= 1 nm");
  CNTI_EXPECTS(in.length_um > 0, "length must be positive");
  MultiscaleReport out;

  // --- Atomistic stage: doping -> Fermi shift -> channels per shell. ---
  const atomistic::ChargeTransferDoping doping(in.dopant,
                                               in.dopant_concentration);
  out.fermi_shift_ev = doping.stable_fermi_shift_ev();
  out.channels_per_shell = doping.channels_per_shell_simple();

  // --- Materials + compact stage. ---
  MwcntSpec spec;
  spec.outer_diameter_m = units::from_nm(in.outer_diameter_nm);
  spec.channels_per_shell = out.channels_per_shell;
  spec.temperature_k = in.temperature_k;
  spec.defect_spacing_m = in.defect_spacing_um > 0
                              ? units::from_um(in.defect_spacing_um)
                              : -1.0;
  spec.contact_resistance_ohm = units::from_kOhm(in.contact_resistance_kohm);
  const double ce = hooks.extract_capacitance
                        ? hooks.extract_capacitance(in.environment)
                        : environment_capacitance(in.environment);
  spec.electrostatic_capacitance_f_per_m = ce;
  out.electrostatic_cap_af_per_um = units::to_aF_per_um(ce);

  const MwcntLine line(spec);
  const double length_m = units::from_um(in.length_um);
  out.shells = line.shell_count();
  out.mfp_um = units::to_um(line.shell_mfp(0));
  out.resistance_kohm = units::to_kOhm(line.resistance(length_m));
  out.capacitance_ff = units::to_fF(line.capacitance_per_m() * length_m);

  // --- Circuit stage. ---
  DriverLineLoad cfg;
  cfg.driver_resistance_ohm = units::from_kOhm(in.driver_resistance_kohm);
  cfg.line = line.rlc();
  cfg.length_m = length_m;
  cfg.load_capacitance_f = in.load_capacitance_ff * 1e-15;
  if (hooks.simulate_delay) {
    out.delay_ps = units::to_ps(hooks.simulate_delay(cfg));
    out.delay_method = "hook";
  } else {
    out.delay_ps = units::to_ps(delay_50_estimate(cfg));
    out.delay_method = "elmore";
  }
  return out;
}

}  // namespace cnti::core
