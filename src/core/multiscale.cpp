#include "core/multiscale.hpp"

#include <utility>

#include "common/units.hpp"

namespace cnti::core {

void validate_multiscale_input(const MultiscaleInput& in) {
  CNTI_EXPECTS(in.outer_diameter_nm >= 1.0, "diameter must be >= 1 nm");
  CNTI_EXPECTS(in.length_um > 0, "length must be positive");
}

ChannelStage doping_channel_stage(atomistic::DopantSpecies species,
                                  double concentration) {
  const atomistic::ChargeTransferDoping doping(species, concentration);
  ChannelStage out;
  out.fermi_shift_ev = doping.stable_fermi_shift_ev();
  out.channels_per_shell = doping.channels_per_shell_simple();
  return out;
}

MwcntSpec multiscale_line_spec(const MultiscaleInput& in,
                               const ChannelStage& channels,
                               double electrostatic_cap_f_per_m) {
  validate_multiscale_input(in);
  MwcntSpec spec;
  spec.outer_diameter_m = units::from_nm(in.outer_diameter_nm);
  spec.channels_per_shell = channels.channels_per_shell;
  spec.temperature_k = in.temperature_k;
  spec.defect_spacing_m = in.defect_spacing_um > 0
                              ? units::from_um(in.defect_spacing_um)
                              : -1.0;
  spec.contact_resistance_ohm = units::from_kOhm(in.contact_resistance_kohm);
  spec.electrostatic_capacitance_f_per_m = electrostatic_cap_f_per_m;
  return spec;
}

DriverLineLoad multiscale_driver_line_load(const MultiscaleInput& in,
                                           const MwcntLine& line) {
  DriverLineLoad cfg;
  cfg.driver_resistance_ohm = units::from_kOhm(in.driver_resistance_kohm);
  cfg.line = line.rlc();
  cfg.length_m = units::from_um(in.length_um);
  cfg.load_capacitance_f = in.load_capacitance_ff * 1e-15;
  return cfg;
}

MultiscaleReport assemble_multiscale_report(const MultiscaleInput& in,
                                            const ChannelStage& channels,
                                            const MwcntLine& line,
                                            double delay_s,
                                            std::string delay_method) {
  MultiscaleReport out;
  out.fermi_shift_ev = channels.fermi_shift_ev;
  out.channels_per_shell = channels.channels_per_shell;
  out.electrostatic_cap_af_per_um = units::to_aF_per_um(
      line.spec().electrostatic_capacitance_f_per_m);
  const double length_m = units::from_um(in.length_um);
  out.shells = line.shell_count();
  out.mfp_um = units::to_um(line.shell_mfp(0));
  out.resistance_kohm = units::to_kOhm(line.resistance(length_m));
  out.capacitance_ff = units::to_fF(line.capacitance_per_m() * length_m);
  out.delay_ps = units::to_ps(delay_s);
  out.delay_method = std::move(delay_method);
  return out;
}

MultiscaleReport run_multiscale_flow(const MultiscaleInput& in,
                                     const MultiscaleHooks& hooks) {
  validate_multiscale_input(in);

  // --- Atomistic stage: doping -> Fermi shift -> channels per shell. ---
  const ChannelStage channels =
      doping_channel_stage(in.dopant, in.dopant_concentration);

  // --- Materials + compact stage (C_E from the hook or the analytic
  // --- environment model). ---
  const double ce = hooks.extract_capacitance
                        ? hooks.extract_capacitance(in.environment)
                        : environment_capacitance(in.environment);
  const MwcntLine line(multiscale_line_spec(in, channels, ce));

  // --- Circuit stage. ---
  const DriverLineLoad cfg = multiscale_driver_line_load(in, line);
  double delay_s = 0.0;
  std::string method;
  if (hooks.simulate_delay) {
    delay_s = hooks.simulate_delay(cfg);
    method = "hook";
  } else {
    delay_s = delay_50_estimate(cfg);
    method = "elmore";
  }
  return assemble_multiscale_report(in, channels, line, delay_s,
                                    std::move(method));
}

}  // namespace cnti::core
