#include "core/kpis.hpp"

namespace cnti::core {

double cu_max_current(double width_m, double height_m) {
  CNTI_EXPECTS(width_m > 0 && height_m > 0, "cross-section positive");
  return cuconst::kEmCurrentDensityLimit * width_m * height_m;
}

double cnt_max_current(double diameter_m) {
  CNTI_EXPECTS(diameter_m > 0, "diameter positive");
  return cntconst::kSwcntSaturationCurrent * (diameter_m / 1e-9);
}

double cnts_to_match_cu_current(double cu_width_m, double cu_height_m,
                                double diameter_m) {
  return cu_max_current(cu_width_m, cu_height_m) /
         cnt_max_current(diameter_m);
}

double ampacity_advantage() {
  return cntconst::kCntMaxCurrentDensity / cuconst::kEmCurrentDensityLimit;
}

double thermal_advantage(double quality) {
  const double k_cnt = cntconst::kCntThermalConductivityLow +
                       quality * (cntconst::kCntThermalConductivityHigh -
                                  cntconst::kCntThermalConductivityLow);
  return k_cnt / cuconst::kThermalConductivity;
}

double min_density_to_match_cu(const materials::CuLineSpec& cu_spec,
                               double length_m, double tube_diameter_m,
                               double metallic_fraction) {
  CNTI_EXPECTS(metallic_fraction > 0 && metallic_fraction <= 1,
               "metallic fraction in (0, 1]");
  const materials::CuLine cu(cu_spec);
  const double r_cu = cu.resistance(length_m);
  SwcntSpec tube;
  tube.diameter_m = tube_diameter_m;
  const double density_conducting = required_tube_density(
      r_cu, length_m, cu_spec.width_m * cu_spec.height_m, tube);
  // Only the metallic fraction conducts: need proportionally more tubes.
  return density_conducting / metallic_fraction;
}

}  // namespace cnti::core
