#include "core/line_model.hpp"

#include <cmath>

namespace cnti::core {

double elmore_delay(const DriverLineLoad& cfg) {
  CNTI_EXPECTS(cfg.length_m > 0, "length must be positive");
  const double r_line = cfg.line.resistance_per_m * cfg.length_m;
  const double c_line = cfg.line.capacitance_per_m * cfg.length_m;
  const double r_c1 = cfg.line.series_resistance_ohm / 2.0;  // near end
  const double r_c2 = cfg.line.series_resistance_ohm / 2.0;  // far end
  const double r_drv = cfg.driver_resistance_ohm;
  const double c_l = cfg.load_capacitance_f;

  // Elmore sum for: Rdrv -> [Cdrv] -> Rc1 -> distributed rc -> Rc2 -> [CL].
  // Distributed line contributes Rline*Cline/2 internally; every upstream
  // resistance sees the full downstream capacitance.
  double td = 0.0;
  td += r_drv * (cfg.driver_output_capacitance_f + c_line + c_l);
  td += r_c1 * (c_line + c_l);
  td += r_line * (c_line / 2.0 + c_l);
  td += r_c2 * c_l;
  return td;
}

double delay_50_estimate(const DriverLineLoad& cfg) {
  return 0.693 * elmore_delay(cfg);
}

std::vector<LadderSegment> discretize_line(const LineRlc& line,
                                           double length_m, int segments) {
  CNTI_EXPECTS(segments >= 1, "need at least one segment");
  CNTI_EXPECTS(length_m > 0, "length must be positive");
  const double r_seg = line.resistance_per_m * length_m / segments;
  const double c_seg = line.capacitance_per_m * length_m / segments;
  return std::vector<LadderSegment>(
      static_cast<std::size_t>(segments),
      LadderSegment{.resistance_ohm = r_seg, .capacitance_f = c_seg});
}

double bandwidth_estimate(const DriverLineLoad& cfg) {
  const double td = delay_50_estimate(cfg);
  CNTI_EXPECTS(td > 0, "delay must be positive");
  return 0.35 / td;
}

double switching_energy(const DriverLineLoad& cfg, double vdd) {
  CNTI_EXPECTS(vdd > 0, "supply must be positive");
  const double c_total = cfg.line.capacitance_per_m * cfg.length_m +
                         cfg.load_capacitance_f +
                         cfg.driver_output_capacitance_f;
  return 0.5 * c_total * vdd * vdd;
}

}  // namespace cnti::core
