// Interconnect key-performance-indicator models backing the paper's Sec. I
// quantitative claims ("Table I" in this reproduction): ampacity, EM limits,
// thermal conduction advantage and the minimum-CNT-density requirement.
#pragma once

#include "common/constants.hpp"
#include "core/swcnt_line.hpp"
#include "materials/copper.hpp"

namespace cnti::core {

/// Maximum EM-reliable current of a Cu line cross-section [A]
/// (paper: 100 nm x 50 nm Cu carries up to ~50 uA at 1e6 A/cm^2).
double cu_max_current(double width_m, double height_m);

/// Maximum current of a single CNT of given diameter [A]
/// (paper: 20-25 uA for a 1 nm tube).
double cnt_max_current(double diameter_m);

/// How many CNTs (of `diameter_m`) match the EM-limited current of the
/// given Cu cross-section (paper: "a few CNTs are enough").
double cnts_to_match_cu_current(double cu_width_m, double cu_height_m,
                                double diameter_m = 1e-9);

/// Ratio of CNT to Cu maximum current densities (paper: ~1e9 vs 1e6 A/cm^2).
double ampacity_advantage();

/// Ratio of CNT bundle to Cu thermal conductivity (paper: 3000-10000 vs 385).
double thermal_advantage(double quality = 0.0);

/// Minimum metallic-CNT areal density so that a CNT interconnect of length
/// `length_m` matches the resistance of the equally sized Cu line
/// (paper Sec. I: 0.096 nm^-2 requirement) [1/m^2].
double min_density_to_match_cu(const materials::CuLineSpec& cu_spec,
                               double length_m, double tube_diameter_m = 1e-9,
                               double metallic_fraction = 1.0);

}  // namespace cnti::core
