// Electrostatic capacitance C_E models for interconnect geometries. The
// paper's Eq. 5 reduces the doped-MWCNT capacitance to C_E (quantum
// capacitance is far larger and in series), so C_E is what the circuit
// benchmarks consume. Analytic forms here; the TCAD module extracts the
// same quantity numerically for arbitrary 3-D structures.
#pragma once

#include "common/constants.hpp"
#include "common/error.hpp"

namespace cnti::core {

/// Cylindrical wire of radius r with its axis a height h above a ground
/// plane, in dielectric eps_r: C' = 2 pi eps / acosh(h / r) [F/m].
double wire_over_plane_capacitance(double radius_m, double center_height_m,
                                   double eps_r);

/// Wire centered between two ground planes separated by `gap` (approximated
/// as two parallel over-plane capacitances) [F/m].
double wire_between_planes_capacitance(double radius_m, double gap_m,
                                       double eps_r);

/// Mutual capacitance between two parallel wires of radius r at
/// centre-to-centre pitch s: C' = pi eps / acosh(s / 2r) [F/m].
double wire_to_wire_capacitance(double radius_m, double pitch_m,
                                double eps_r);

/// Parallel-plate estimate for a rectangular line over a plane, with a
/// fringing term: C' = eps (w/h + 1.1 (t/h)^0.5 fudge) — used for Cu
/// reference lines [F/m]. w = width, t = thickness, h = dielectric height.
double rectangular_line_capacitance(double width_m, double thickness_m,
                                    double dielectric_height_m, double eps_r);

/// Total environment capacitance of a victim wire with a ground plane below
/// and aggressor wires on both sides (the paper's Fig. 10 cross-talk
/// configuration): C' = C_plane + 2 * coupling_factor * C_mutual [F/m].
struct WireEnvironment {
  double radius_m = 5e-9;
  double center_height_m = 30e-9;
  double neighbor_pitch_m = -1.0;  ///< <= 0: no neighbours.
  double eps_r = 2.5;              ///< low-k default.
  /// Switching-activity Miller factor applied to neighbour coupling.
  double coupling_factor = 1.0;
};

double environment_capacitance(const WireEnvironment& env);

}  // namespace cnti::core
