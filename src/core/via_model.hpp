// Vertical via models: single-CNT via (the paper's 30 nm via with one
// CVD-grown MWCNT, Fig. 2), CNT-bundle via, Cu via with barrier, and the
// Cu-CNT composite via. Used for local-interconnect and 3-D integration
// studies (paper Sec. I: "desirable as vertical through-silicon via").
#pragma once

#include "common/constants.hpp"
#include "common/error.hpp"
#include "core/mwcnt_line.hpp"
#include "core/swcnt_line.hpp"
#include "materials/composite.hpp"

namespace cnti::core {

/// Via geometry common to all fill variants.
struct ViaSpec {
  double hole_diameter_m = 30e-9;  ///< The paper's 30 nm via hole.
  double height_m = 100e-9;
  double temperature_k = phys::kRoomTemperature;
};

/// Single-MWCNT via (paper Fig. 2a/b: one CNT grown from a catalyst dot at
/// the via bottom).
class SingleCntVia {
 public:
  SingleCntVia(ViaSpec via, MwcntSpec tube);

  double resistance() const;
  double max_current() const;
  /// Current density referenced to the via hole area [A/m^2].
  double max_current_density() const;

 private:
  ViaSpec via_;
  MwcntLine tube_;
};

/// CNT-bundle via (vertically aligned CNT carpet in the hole).
class BundleCntVia {
 public:
  BundleCntVia(ViaSpec via, BundleSpec bundle);

  double resistance() const;
  double max_current() const;

 private:
  ViaSpec via_;
  SwcntBundle bundle_;
};

/// Cu via with a conformal barrier liner.
class CuVia {
 public:
  CuVia(ViaSpec via, double barrier_thickness_m = 2e-9,
        double resistivity_ohm_m = 3.0e-8);

  double resistance() const;
  double max_current() const;

 private:
  ViaSpec via_;
  double barrier_m_;
  double rho_;
};

/// Cu-CNT composite via.
class CompositeVia {
 public:
  CompositeVia(ViaSpec via, materials::CompositeSpec composite);

  double resistance() const;
  double max_current() const;

 private:
  ViaSpec via_;
  materials::CompositeSpec composite_;
};

}  // namespace cnti::core
