// Distributed-RC line analysis: segmented ladder generation parameters and
// analytic delay estimates (Elmore and a two-pole fit), used both directly
// and as cross-checks for the full MNA transient in the circuit module.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "core/mwcnt_line.hpp"

namespace cnti::core {

/// A driver-line-load configuration for delay analysis.
struct DriverLineLoad {
  double driver_resistance_ohm = 10e3;
  double driver_output_capacitance_f = 0.05e-15;
  LineRlc line;                 ///< Per-unit-length + lumped line model.
  double length_m = 10e-6;
  double load_capacitance_f = 0.1e-15;
};

/// Elmore delay of driver + lumped-contact + distributed RC + load [s].
/// The lumped series resistance is split half per end (symmetric contacts).
double elmore_delay(const DriverLineLoad& cfg);

/// 50% step-response delay estimate: 0.693 x Elmore for a dominant-pole
/// system; kept separate so benches can report both conventions.
double delay_50_estimate(const DriverLineLoad& cfg);

/// Per-segment RC values of an N-segment pi-ladder discretization of the
/// line (used by the circuit module to netlist the line).
struct LadderSegment {
  double resistance_ohm = 0.0;
  double capacitance_f = 0.0;
};

/// Discretizes the distributed part of the line into n equal segments.
std::vector<LadderSegment> discretize_line(const LineRlc& line,
                                           double length_m, int segments);

/// Time-of-flight limited bandwidth estimate of the line: 0.35 / t_delay.
double bandwidth_estimate(const DriverLineLoad& cfg);

/// Dynamic energy per transition: (C_line + C_load) * Vdd^2 / 2 [J].
double switching_energy(const DriverLineLoad& cfg, double vdd);

}  // namespace cnti::core
