// Compact models for single SWCNTs and SWCNT bundles (local interconnects /
// vias, paper Sec. I-II): resistance with ballistic-to-diffusive crossover,
// quantum capacitance, kinetic inductance, and bundle statistics with the
// 1/3-metallic CVD fraction and the ITRS minimum-density requirement.
#pragma once

#include "common/constants.hpp"
#include "common/error.hpp"

namespace cnti::core {

/// A single SWCNT treated as an interconnect.
struct SwcntSpec {
  double diameter_m = 1e-9;
  /// Conducting channels (2 for a metallic tube; doped tubes more).
  double channels = cntconst::kChannelsPerMetallicShell;
  double temperature_k = phys::kRoomTemperature;
  double defect_spacing_m = -1.0;
  /// Imperfect contact resistance, both ends combined [Ohm].
  double contact_resistance_ohm = 0.0;
};

class SwcntWire {
 public:
  explicit SwcntWire(SwcntSpec spec);

  const SwcntSpec& spec() const { return spec_; }

  double mfp() const { return mfp_; }

  /// End-to-end resistance at length L [Ohm]:
  /// R = (R0/N_ch)(1 + L/lambda) + R_contact.
  double resistance(double length_m) const;

  /// Effective conductivity vs. the tube disc area (Fig. 9 quantity) [S/m].
  double effective_conductivity(double length_m) const;

  double quantum_capacitance_per_m() const {
    return spec_.channels * cntconst::kQuantumCapacitancePerChannel;
  }

  double kinetic_inductance_per_m() const {
    return cntconst::kKineticInductancePerChannel / spec_.channels;
  }

  /// Current saturation limit of the tube [A] (paper: 20-25 uA for ~1 nm).
  double saturation_current() const;

 private:
  SwcntSpec spec_;
  double mfp_;
};

/// A bundle of parallel SWCNTs filling a rectangular cross-section.
struct BundleSpec {
  double width_m = 20e-9;
  double height_m = 40e-9;
  /// Tube areal density [1/m^2]; the ITRS floor is 0.096 nm^-2.
  double tube_density_per_m2 = cntconst::kMinCntDensity;
  double tube_diameter_m = 1e-9;
  /// Fraction of metallic tubes (1/3 for unsorted CVD; 1.0 if doped to
  /// conduction — doping makes semiconducting tubes conductive too).
  double metallic_fraction = 1.0 - cntconst::kSemiconductingFraction;
  double channels_per_tube = cntconst::kChannelsPerMetallicShell;
  double temperature_k = phys::kRoomTemperature;
  double defect_spacing_m = -1.0;
  /// Per-tube contact resistance (both ends) [Ohm].
  double contact_resistance_ohm = 0.0;
};

class SwcntBundle {
 public:
  explicit SwcntBundle(BundleSpec spec);

  const BundleSpec& spec() const { return spec_; }

  /// Total tubes in the cross-section.
  double tube_count() const;

  /// Conducting (metallic) tubes.
  double conducting_tube_count() const;

  double resistance(double length_m) const;

  /// Referenced to the bundle cross-section [S/m].
  double effective_conductivity(double length_m) const;

  /// Ampacity: saturation-current-limited total current [A].
  double max_current() const;

  /// Bundle ampacity expressed as a current density [A/m^2].
  double max_current_density() const;

 private:
  BundleSpec spec_;
};

/// Minimum tube density for a pure-CNT interconnect to match the resistance
/// of a Cu line of resistance `cu_resistance_ohm`, same length and
/// cross-section (the ITRS-style requirement behind the paper's
/// "0.096 per nm^2" figure) [1/m^2].
double required_tube_density(double cu_resistance_ohm, double length_m,
                             double cross_section_m2,
                             const SwcntSpec& tube = {});

}  // namespace cnti::core
