#include "core/repeater.hpp"

#include <cmath>

namespace cnti::core {

double repeated_line_delay(const LineRlc& line, double length_m, int count,
                           double size, const RepeaterLibrary& lib) {
  CNTI_EXPECTS(count >= 1, "need at least one segment");
  CNTI_EXPECTS(size >= 1.0, "repeater size must be >= 1x");
  CNTI_EXPECTS(length_m > 0, "length must be positive");

  const double seg_len = length_m / count;
  DriverLineLoad stage;
  stage.driver_resistance_ohm = lib.unit_resistance_ohm / size;
  stage.driver_output_capacitance_f = lib.unit_output_cap_f * size;
  stage.line = line;  // per-unit-length values unchanged; contacts per seg
  stage.length_m = seg_len;
  stage.load_capacitance_f = lib.unit_input_cap_f * size;
  // All stages identical; the final stage drives the same load.
  return count * elmore_delay(stage);
}

RepeaterPlan optimize_repeaters(const LineRlc& line, double length_m,
                                const RepeaterLibrary& lib) {
  RepeaterPlan best;
  best.unrepeated_delay_s =
      repeated_line_delay(line, length_m, 1, 1.0, lib);
  best.total_delay_s = best.unrepeated_delay_s;
  best.count = 1;
  best.size = 1.0;

  for (int k = 1; k <= lib.max_count; ++k) {
    for (double h = 1.0; h <= lib.max_size; h *= 2.0) {
      const double d = repeated_line_delay(line, length_m, k, h, lib);
      if (d < best.total_delay_s) {
        best.total_delay_s = d;
        best.count = k;
        best.size = h;
      }
    }
  }
  // Energy at 1 V: line capacitance + all repeater caps.
  const double c_line = line.capacitance_per_m * length_m;
  const double c_rep = best.count *
                       (lib.unit_input_cap_f + lib.unit_output_cap_f) *
                       best.size;
  best.energy_per_transition_j = 0.5 * (c_line + c_rep);
  return best;
}

}  // namespace cnti::core
