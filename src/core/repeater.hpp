// Repeater insertion for long CNT interconnects — the design-space
// exploration the paper's conclusion calls for ("physical design, design
// space exploration"). Classic Bakoglu-style optimization evaluated with
// the Elmore model: split a line into k segments re-driven by size-h
// inverters; minimize total delay over (k, h).
#pragma once

#include "core/line_model.hpp"

namespace cnti::core {

/// Unit (1x) driver characteristics of the repeater library.
struct RepeaterLibrary {
  double unit_resistance_ohm = 20e3;   ///< R_eff of a 1x inverter.
  double unit_input_cap_f = 0.15e-15;  ///< C_in of a 1x inverter.
  double unit_output_cap_f = 0.10e-15;
  /// Largest allowed repeater size.
  double max_size = 256.0;
  /// Largest allowed repeater count.
  int max_count = 128;
};

struct RepeaterPlan {
  int count = 1;          ///< Number of driven segments (1 = no repeater).
  double size = 1.0;      ///< Repeater size h (x unit).
  double total_delay_s = 0.0;
  double energy_per_transition_j = 0.0;  ///< At 1 V swing.
  double unrepeated_delay_s = 0.0;
};

/// Delay of a line split into `count` segments driven by size-`size`
/// repeaters (Elmore per stage, summed). The lumped line resistance
/// (contacts) is paid once per segment — each repeater re-contacts the
/// CNT, which is exactly why repeaters are expensive on CNT interconnects.
double repeated_line_delay(const LineRlc& line, double length_m, int count,
                           double size, const RepeaterLibrary& lib);

/// Exhaustive (k, h) search over the discrete design space.
RepeaterPlan optimize_repeaters(const LineRlc& line, double length_m,
                                const RepeaterLibrary& lib = {});

}  // namespace cnti::core
