#include "core/electrostatics.hpp"

#include <cmath>

namespace cnti::core {

double wire_over_plane_capacitance(double radius_m, double center_height_m,
                                   double eps_r) {
  CNTI_EXPECTS(radius_m > 0, "radius must be positive");
  CNTI_EXPECTS(center_height_m > radius_m,
               "wire centre must be above the plane by more than r");
  CNTI_EXPECTS(eps_r >= 1.0, "relative permittivity >= 1");
  return 2.0 * M_PI * phys::kEpsilon0 * eps_r /
         std::acosh(center_height_m / radius_m);
}

double wire_between_planes_capacitance(double radius_m, double gap_m,
                                       double eps_r) {
  CNTI_EXPECTS(gap_m > 2.0 * radius_m, "planes must clear the wire");
  return 2.0 * wire_over_plane_capacitance(radius_m, gap_m / 2.0, eps_r);
}

double wire_to_wire_capacitance(double radius_m, double pitch_m,
                                double eps_r) {
  CNTI_EXPECTS(radius_m > 0, "radius must be positive");
  CNTI_EXPECTS(pitch_m > 2.0 * radius_m, "wires overlap");
  return M_PI * phys::kEpsilon0 * eps_r /
         std::acosh(pitch_m / (2.0 * radius_m));
}

double rectangular_line_capacitance(double width_m, double thickness_m,
                                    double dielectric_height_m, double eps_r) {
  CNTI_EXPECTS(width_m > 0 && thickness_m > 0 && dielectric_height_m > 0,
               "geometry must be positive");
  // Sakurai-Tamaru-style single-line fit: plate term + fringe term.
  const double plate = width_m / dielectric_height_m;
  const double fringe =
      0.77 + 1.06 * std::pow(width_m / dielectric_height_m, 0.25) +
      1.06 * std::pow(thickness_m / dielectric_height_m, 0.5) - 0.77;
  return phys::kEpsilon0 * eps_r * (plate + fringe);
}

double environment_capacitance(const WireEnvironment& env) {
  double c = wire_over_plane_capacitance(env.radius_m, env.center_height_m,
                                         env.eps_r);
  if (env.neighbor_pitch_m > 0) {
    c += 2.0 * env.coupling_factor *
         wire_to_wire_capacitance(env.radius_m, env.neighbor_pitch_m,
                                  env.eps_r);
  }
  return c;
}

}  // namespace cnti::core
