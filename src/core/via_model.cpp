#include "core/via_model.hpp"

#include <cmath>

namespace cnti::core {

namespace {
double hole_area(const ViaSpec& via) {
  return M_PI * via.hole_diameter_m * via.hole_diameter_m / 4.0;
}
}  // namespace

SingleCntVia::SingleCntVia(ViaSpec via, MwcntSpec tube)
    : via_(via), tube_(std::move(tube)) {
  CNTI_EXPECTS(via_.hole_diameter_m > tube_.spec().outer_diameter_m,
               "tube does not fit the via hole");
  CNTI_EXPECTS(via_.height_m > 0, "via height must be positive");
}

double SingleCntVia::resistance() const {
  return tube_.resistance(via_.height_m);
}

double SingleCntVia::max_current() const {
  // Saturation current scales with total channels relative to a single
  // 2-channel metallic shell at 1 nm.
  const double per_channel = cntconst::kSwcntSaturationCurrent / 2.0;
  return per_channel * tube_.total_channels();
}

double SingleCntVia::max_current_density() const {
  return max_current() / hole_area(via_);
}

BundleCntVia::BundleCntVia(ViaSpec via, BundleSpec bundle)
    : via_(via), bundle_([&] {
        // Square-equivalent cross-section of the round hole.
        const double side = std::sqrt(hole_area(via));
        bundle.width_m = side;
        bundle.height_m = side;
        return SwcntBundle(bundle);
      }()) {
  CNTI_EXPECTS(via_.height_m > 0, "via height must be positive");
}

double BundleCntVia::resistance() const {
  return bundle_.resistance(via_.height_m);
}

double BundleCntVia::max_current() const { return bundle_.max_current(); }

CuVia::CuVia(ViaSpec via, double barrier_thickness_m, double resistivity_ohm_m)
    : via_(via), barrier_m_(barrier_thickness_m), rho_(resistivity_ohm_m) {
  CNTI_EXPECTS(via_.hole_diameter_m > 2.0 * barrier_m_,
               "barrier consumes the via");
  CNTI_EXPECTS(rho_ > 0, "resistivity must be positive");
}

double CuVia::resistance() const {
  const double d = via_.hole_diameter_m - 2.0 * barrier_m_;
  const double area = M_PI * d * d / 4.0;
  return rho_ * via_.height_m / area;
}

double CuVia::max_current() const {
  const double d = via_.hole_diameter_m - 2.0 * barrier_m_;
  const double area = M_PI * d * d / 4.0;
  return cuconst::kEmCurrentDensityLimit * area;
}

CompositeVia::CompositeVia(ViaSpec via, materials::CompositeSpec composite)
    : via_(via), composite_(composite) {
  CNTI_EXPECTS(via_.height_m > 0, "via height must be positive");
}

double CompositeVia::resistance() const {
  const double sigma = materials::composite_conductivity(composite_);
  return via_.height_m / (sigma * hole_area(via_));
}

double CompositeVia::max_current() const {
  return materials::composite_max_current_density(composite_) *
         hole_area(via_);
}

}  // namespace cnti::core
