// Two-level preconditioner for full-system Krylov solves built from a
// PRIMA projection basis: the reduced model's span captures exactly the
// smooth, strongly-coupled modes that plain Jacobi leaves to the Krylov
// iteration, so combining a coarse ROM correction with a Jacobi smoother
//
//   M^{-1} r = V (V^T A V)^{-1} V^T r  +  D^{-1} r
//
// (V = the n x q orthonormal basis, D = diag(A)) collapses both ends of
// the spectrum. The q x q coarse matrix is formed and LU-factorized once
// at construction; each apply costs two n x q products plus a q x q
// triangular solve on top of the diagonal scale — O(nq), negligible next
// to the solver's matvec for the q << n regime ROMs live in.
//
// Intended use: hand fn() to numerics::bicgstab / numerics::gmres as the
// `precond` argument when solving (G + sC) x = b on the full network whose
// reduction produced V (see BusRom::preconditioner). apply() is const and
// allocates only scratch; one preconditioner can be shared across threads.
#pragma once

#include <memory>
#include <vector>

#include "numerics/matrix.hpp"
#include "numerics/solvers.hpp"
#include "numerics/sparse.hpp"

namespace cnti::rom {

class RomPreconditioner {
 public:
  /// Builds the coarse operator V^T A V and factorizes it. `basis` holds q
  /// orthonormal columns of length a.rows() (ReducedModel::basis form).
  /// Throws PreconditionError on an empty basis or a size mismatch and
  /// NumericalError when the coarse matrix is singular (a basis column in
  /// the nullspace of A).
  RomPreconditioner(const numerics::SparseMatrix& a,
                    const std::vector<std::vector<double>>& basis);

  std::size_t size() const { return state_->dinv.size(); }
  std::size_t coarse_order() const { return state_->v.size(); }

  /// z = M^{-1} r.
  void apply(const std::vector<double>& r, std::vector<double>& z) const;

  /// Copyable callback for numerics::IterativeOptions-style solver entry
  /// points; shares this preconditioner's (immutable) state.
  numerics::PreconditionerFn fn() const;

 private:
  struct State {
    std::vector<double> dinv;              ///< 1 / diag(A), zeros kept as 1.
    std::vector<std::vector<double>> v;    ///< q columns of length n.
    numerics::LuFactorization<double> coarse;  ///< LU of V^T A V.
  };
  std::shared_ptr<const State> state_;
};

}  // namespace cnti::rom
