// Internal helpers shared by the rom/ translation units (not part of the
// subsystem's public surface).
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace cnti::rom::detail {

/// Index of `name` in `names`; throws PreconditionError naming the calling
/// context and the kind of thing looked up.
inline int find_name_index(const std::vector<std::string>& names,
                           const std::string& name, const char* context,
                           const char* kind) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  throw PreconditionError(std::string(context) + ": unknown " + kind + ": " +
                          name);
}

inline double dot(const std::vector<double>& a,
                  const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

inline double norm2(const std::vector<double>& v) {
  return std::sqrt(dot(v, v));
}

}  // namespace cnti::rom::detail
