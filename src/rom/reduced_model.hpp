// Reduced-order descriptor model produced by PRIMA projection: a dense
// q x q system
//
//   Cr dx/dt + Gr x = Br u,   y = Lr^T x
//
// with q in the tens where the full circuit had thousands of unknowns.
// Everything a design-space sweep needs is evaluated directly on the small
// system: trapezoidal transient response to arbitrary source waveforms, AC
// transfer functions H(jw), transfer-function moments / Elmore delay, and
// dominant poles via the dense Hessenberg-QR eigensolver. Because Gr and Cr
// are congruence projections of a passive network (see state_space.hpp),
// every finite pole lies in the closed left half-plane — reduced models
// cannot blow up, no matter how aggressively the order was truncated.
//
// Port terminations (driver conductances, receiver loads) fold into the
// reduced matrices as rank-1 updates (terminated()), which is what turns
// one reduction into thousands of evaluable driver/load scenarios.
//
// All evaluation methods are const and allocate locally, so one model can
// be shared across SweepEngine/ThreadPool workers without synchronization.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "circuit/ac.hpp"
#include "circuit/waveform.hpp"
#include "numerics/matrix.hpp"

namespace cnti::rom {

/// External shunt element re-attached at a reduced port: the port's input
/// column (current injection) and output column (voltage sense) must refer
/// to the same physical node.
struct PortTermination {
  int input = 0;   ///< Input index of the port's current injection.
  int output = 0;  ///< Output index of the port's voltage sense.
  double conductance_s = 0.0;  ///< Shunt conductance to ground [S].
  double capacitance_f = 0.0;  ///< Shunt capacitance to ground [F].
};

class ReducedModel {
 public:
  ReducedModel(numerics::MatrixD gr, numerics::MatrixD cr,
               numerics::MatrixD br, numerics::MatrixD lr,
               std::vector<std::string> input_names,
               std::vector<std::string> output_names, int full_order);

  int order() const { return static_cast<int>(gr_.rows()); }
  int full_order() const { return full_order_; }
  int inputs() const { return static_cast<int>(br_.cols()); }
  int outputs() const { return static_cast<int>(lr_.cols()); }
  const std::vector<std::string>& input_names() const { return input_names_; }
  const std::vector<std::string>& output_names() const {
    return output_names_;
  }
  int input_index(const std::string& name) const;
  int output_index(const std::string& name) const;

  const numerics::MatrixD& gr() const { return gr_; }
  const numerics::MatrixD& cr() const { return cr_; }
  const numerics::MatrixD& br() const { return br_; }
  const numerics::MatrixD& lr() const { return lr_; }

  /// Orthonormal projection basis V as q full-order columns, retained only
  /// when the reduction ran with PrimaOptions::keep_basis (empty
  /// otherwise). terminated() carries it through unchanged: terminations
  /// are congruence updates in the reduced space, the span of V is the
  /// same.
  const std::vector<std::vector<double>>& basis() const { return basis_; }
  bool has_basis() const { return !basis_.empty(); }
  void set_basis(std::vector<std::vector<double>> basis) {
    basis_ = std::move(basis);
  }

  /// Model with external shunt terminations folded into Gr/Cr (rank-1
  /// congruence updates; preserves stability because the terminated full
  /// network is still passive).
  ReducedModel terminated(const std::vector<PortTermination>& loads) const;

  /// H(j 2 pi f) from one input to one output.
  std::complex<double> transfer(double frequency_hz, int output,
                                int input) const;

  /// Transfer function over a frequency grid, in the same AcResult form as
  /// circuit::ac_analysis (so bandwidth_3db etc. apply unchanged).
  circuit::AcResult transfer_sweep(const std::vector<double>& freqs_hz,
                                   int output, int input) const;

  /// Transfer-function moments about s = 0: H(s) = sum_k moments[k] s^k,
  /// each an outputs x inputs matrix. Requires nonsingular Gr.
  std::vector<numerics::MatrixD> moments(int count) const;

  /// Elmore delay -m1/m0 of one entry (first moment of the impulse
  /// response; exact for RC trees, the classic first-order delay metric).
  double elmore_delay(int output, int input) const;

  /// Finite poles: -1 / mu for the eigenvalues mu of Gr^{-1} Cr with
  /// |mu| > rel_tol * max|mu| (smaller mu correspond to modes pushed out
  /// to infinity by the reduction and carry no dynamics).
  std::vector<std::complex<double>> poles(double rel_tol = 1e-12) const;

  /// True when every finite pole satisfies Re(p) <= slack * |p| — the
  /// left-half-plane stability certificate PRIMA promises.
  bool stable(double slack = 1e-9) const;

  /// Transient outputs on the same fixed time grid as the full MNA engine
  /// (t = 0, dt, ..., >= t_stop).
  struct Transient {
    std::vector<double> time;
    std::vector<std::vector<double>> outputs;  ///< [output][step]
  };

  /// Trapezoidal integration from the DC operating point at t = 0; one
  /// waveform per input. Cost: one q x q factorization plus O(q^2) per
  /// step.
  Transient simulate(const std::vector<circuit::Waveform>& input_waves,
                     double t_stop_s, double dt_s) const;

  /// Convenience: unit step on `input` at t = 0+, all other inputs zero.
  Transient step_response(int input, double t_stop_s, double dt_s) const;

 private:
  numerics::MatrixD gr_, cr_, br_, lr_;
  std::vector<std::string> input_names_, output_names_;
  std::vector<std::vector<double>> basis_;  ///< [q][n], see basis().
  int full_order_ = 0;
};

}  // namespace cnti::rom
