#include "rom/rom_preconditioner.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace cnti::rom {

namespace {

using numerics::LuFactorization;
using numerics::MatrixD;
using numerics::SparseMatrix;

std::vector<double> inverse_diagonal(const SparseMatrix& a) {
  const std::size_t n = a.rows();
  std::vector<double> dinv(n, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t t = a.row_ptr()[r]; t < a.row_ptr()[r + 1]; ++t) {
      if (a.col_indices()[t] == r) {
        const double d = a.values()[t];
        // Same guard as numerics::jacobi_preconditioner: identity on
        // (near-)zero pivots rather than a blow-up.
        if (std::abs(d) > 1e-300) dinv[r] = 1.0 / d;
        break;
      }
    }
  }
  return dinv;
}

LuFactorization<double> coarse_factorization(
    const SparseMatrix& a, const std::vector<std::vector<double>>& v) {
  const std::size_t n = a.rows();
  const std::size_t q = v.size();
  // W = A V once (q sparse matvecs), then Gramian entries are dense dots.
  std::vector<std::vector<double>> w(q);
  for (std::size_t j = 0; j < q; ++j) a.multiply(v[j], w[j]);
  MatrixD ata(q, q);
  for (std::size_t i = 0; i < q; ++i) {
    for (std::size_t j = 0; j < q; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < n; ++r) s += v[i][r] * w[j][r];
      ata(i, j) = s;
    }
  }
  return LuFactorization<double>(std::move(ata));
}

}  // namespace

RomPreconditioner::RomPreconditioner(
    const SparseMatrix& a, const std::vector<std::vector<double>>& basis) {
  CNTI_EXPECTS(a.rows() == a.cols(),
               "RomPreconditioner: matrix must be square");
  CNTI_EXPECTS(!basis.empty(),
               "RomPreconditioner: empty basis (reduce with keep_basis)");
  for (const auto& col : basis) {
    CNTI_EXPECTS(col.size() == a.rows(),
                 "RomPreconditioner: basis column length != matrix size");
  }
  state_ = std::make_shared<const State>(State{
      inverse_diagonal(a), basis, coarse_factorization(a, basis)});
}

void RomPreconditioner::apply(const std::vector<double>& r,
                              std::vector<double>& z) const {
  const State& st = *state_;
  const std::size_t n = st.dinv.size();
  CNTI_EXPECTS(r.size() == n, "RomPreconditioner: residual size mismatch");
  const std::size_t q = st.v.size();

  // Coarse correction: y = (V^T A V)^{-1} V^T r, z = V y.
  std::vector<double> t(q);
  for (std::size_t j = 0; j < q; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += st.v[j][i] * r[i];
    t[j] = s;
  }
  const std::vector<double> y = st.coarse.solve(t);
  z.assign(n, 0.0);
  for (std::size_t j = 0; j < q; ++j) {
    const double yj = y[j];
    if (yj == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) z[i] += yj * st.v[j][i];
  }
  // Jacobi smoother handles everything outside the coarse span.
  for (std::size_t i = 0; i < n; ++i) z[i] += st.dinv[i] * r[i];
}

numerics::PreconditionerFn RomPreconditioner::fn() const {
  return [self = *this](const std::vector<double>& r,
                        std::vector<double>& z) { self.apply(r, z); };
}

}  // namespace cnti::rom
