#include "rom/prima.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "numerics/sparse.hpp"
#include "numerics/sparse_lu.hpp"
#include "obs/obs.hpp"
#include "rom/detail.hpp"

namespace cnti::rom {

namespace {

using detail::dot;
using detail::norm2;
using numerics::MatrixD;
using numerics::SparseBuilder;
using numerics::SparseLu;
using numerics::SparseMatrix;

/// K = G + s0 C over the union pattern (built once; the factorization is
/// reused for every Arnoldi solve).
SparseMatrix shifted_pencil(const SparseMatrix& g, const SparseMatrix& c,
                            double s0) {
  const std::size_t n = g.rows();
  SparseBuilder k(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t t = g.row_ptr()[r]; t < g.row_ptr()[r + 1]; ++t) {
      k.add(r, g.col_indices()[t], g.values()[t]);
    }
  }
  if (s0 != 0.0) {
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t t = c.row_ptr()[r]; t < c.row_ptr()[r + 1]; ++t) {
        k.add(r, c.col_indices()[t], s0 * c.values()[t]);
      }
    }
  }
  return k.build();
}

}  // namespace

ReducedModel prima_reduce(const StateSpace& ss, const PrimaOptions& options) {
  CNTI_EXPECTS(options.order >= 1, "prima: order must be >= 1");
  CNTI_EXPECTS(options.expansion_rad_per_s >= 0,
               "prima: expansion point must be >= 0");
  CNTI_EXPECTS(ss.size > 0 && ss.inputs() > 0,
               "prima: state space has no unknowns or no inputs");
  const std::size_t n = static_cast<std::size_t>(ss.size);
  const int m = ss.inputs();
  const int q_target =
      std::min(options.order, ss.size);  // cannot exceed the full order

  static const obs::Counter reductions = obs::counter("cnti.rom.reductions");
  static const obs::Counter arnoldi_vectors =
      obs::counter("cnti.rom.arnoldi_vectors");
  static const obs::Counter deflations = obs::counter("cnti.rom.deflations");
  static const obs::Gauge basis_gauge = obs::gauge("cnti.rom.basis_size");
  static const obs::Histogram reduce_hist =
      obs::histogram("cnti.rom.reduce_ns");
  reductions.add();
  const obs::ObsSpan reduce_span("prima.reduce", "rom", reduce_hist);

  SparseLu lu;
  lu.set_factor_mode(options.factor);
  lu.factorize(shifted_pencil(ss.g, ss.c, options.expansion_rad_per_s));

  // Modified Gram-Schmidt with one reorthogonalization pass; returns false
  // (deflation) when the direction is linearly dependent on the basis.
  std::vector<std::vector<double>> basis;
  const auto orthonormalize_into_basis = [&](std::vector<double> w) {
    arnoldi_vectors.add();
    const double initial = norm2(w);
    if (initial == 0.0) {
      deflations.add();
      return false;
    }
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& v : basis) {
        const double h = dot(v, w);
        if (h == 0.0) continue;
        for (std::size_t i = 0; i < n; ++i) w[i] -= h * v[i];
      }
    }
    const double remaining = norm2(w);
    if (remaining <= options.deflation_tol * initial) {
      deflations.add();
      return false;
    }
    for (double& x : w) x /= remaining;
    basis.push_back(std::move(w));
    return true;
  };

  // Block 0: K^{-1} B. Later blocks: K^{-1} C v for each surviving column
  // of the previous block.
  std::vector<std::size_t> prev_block;
  for (int j = 0; j < m && static_cast<int>(basis.size()) < q_target; ++j) {
    std::vector<double> b_col(n);
    for (std::size_t i = 0; i < n; ++i) {
      b_col[i] = ss.b(i, static_cast<std::size_t>(j));
    }
    if (orthonormalize_into_basis(lu.solve(b_col))) {
      prev_block.push_back(basis.size() - 1);
    }
  }
  CNTI_EXPECTS(!basis.empty(),
               "prima: input block is identically zero (no reachable states)");
  std::vector<double> cv(n);
  while (static_cast<int>(basis.size()) < q_target && !prev_block.empty()) {
    std::vector<std::size_t> next_block;
    for (const std::size_t idx : prev_block) {
      if (static_cast<int>(basis.size()) >= q_target) break;
      ss.c.multiply(basis[idx], cv);
      if (orthonormalize_into_basis(lu.solve(cv))) {
        next_block.push_back(basis.size() - 1);
      }
    }
    prev_block = std::move(next_block);
  }

  // Congruence projection onto the span of the basis.
  const std::size_t q = basis.size();
  basis_gauge.set(static_cast<double>(q));
  MatrixD gr(q, q), cr(q, q);
  std::vector<double> gv(n);
  for (std::size_t j = 0; j < q; ++j) {
    ss.g.multiply(basis[j], gv);
    ss.c.multiply(basis[j], cv);
    for (std::size_t i = 0; i < q; ++i) {
      gr(i, j) = dot(basis[i], gv);
      cr(i, j) = dot(basis[i], cv);
    }
  }
  MatrixD br(q, ss.b.cols()), lr(q, ss.l.cols());
  for (std::size_t i = 0; i < q; ++i) {
    for (std::size_t j = 0; j < ss.b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < n; ++r) s += basis[i][r] * ss.b(r, j);
      br(i, j) = s;
    }
    for (std::size_t j = 0; j < ss.l.cols(); ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < n; ++r) s += basis[i][r] * ss.l(r, j);
      lr(i, j) = s;
    }
  }
  ReducedModel rm(std::move(gr), std::move(cr), std::move(br),
                  std::move(lr), ss.input_names, ss.output_names, ss.size);
  if (options.keep_basis) rm.set_basis(std::move(basis));
  return rm;
}

}  // namespace cnti::rom
