// PRIMA-style passive model-order reduction (Odabasioglu/Celik/Pileggi):
// block Arnoldi on (G + s0 C)^{-1} C with modified Gram-Schmidt
// orthonormalization, using the sparse engine's reusable LU for the
// repeated system solves, followed by congruence projection
//
//   Gr = V^T G V,  Cr = V^T C V,  Br = V^T B,  Lr = V^T L.
//
// The projected model matches the first floor(q / m) block moments of the
// full transfer function about the expansion point s0 (q = reduced order,
// m = inputs), and — because congruence preserves the semidefiniteness of
// G and C — is unconditionally stable regardless of the order budget or
// expansion point. Reduce once per topology; evaluate thousands of
// driver/load/waveform scenarios against the q x q system.
#pragma once

#include "numerics/supernodal.hpp"
#include "rom/reduced_model.hpp"
#include "rom/state_space.hpp"

namespace cnti::rom {

struct PrimaOptions {
  /// Reduced order budget q (columns of the projection basis). The basis
  /// may come out smaller when the Krylov space deflates first.
  int order = 16;
  /// Expansion point s0 [rad/s] for the moment matching. 0 matches moments
  /// at DC (the classic choice for driver-terminated RC nets); networks
  /// whose G alone is near-singular (bare port networks held up only by
  /// g_min) need s0 > 0 so the Arnoldi solves act on G + s0 C.
  double expansion_rad_per_s = 0.0;
  /// A new Krylov direction whose norm drops below this fraction of its
  /// pre-orthogonalization norm is considered linearly dependent and
  /// deflated from the block.
  double deflation_tol = 1e-8;
  /// Retain the orthonormal projection basis V (n x q) on the returned
  /// model. Costs n*q doubles of storage; required for uses that map
  /// between full and reduced coordinates, e.g. two-level ROM
  /// preconditioning of full-system Krylov solves (rom_preconditioner.hpp).
  bool keep_basis = false;
  /// Numeric kernel for the Arnoldi LU. PRIMA factorizes G + s0 C exactly
  /// once and then back-substitutes q times, so the supernodal kernel's
  /// refactorization advantage never materializes here — scalar is the
  /// right default; the knob exists for experiments on very large nets.
  numerics::FactorMode factor = numerics::FactorMode::kScalar;
};

/// Runs block Arnoldi + congruence projection on an extracted descriptor
/// system. Throws NumericalError when G + s0 C is singular and
/// PreconditionError on an empty input block or nonpositive order.
ReducedModel prima_reduce(const StateSpace& ss, const PrimaOptions& options = {});

}  // namespace cnti::rom
