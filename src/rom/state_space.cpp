#include "rom/state_space.hpp"

#include "common/error.hpp"
#include "rom/detail.hpp"

namespace cnti::rom {

namespace {

using circuit::Circuit;
using circuit::NodeId;
using numerics::SparseBuilder;

/// Matches the MNA engine's always-on node-to-ground conductance (and the
/// AC engine's g_min), so reduced transfer functions line up with
/// ac_analysis to solver precision.
constexpr double kGminFloor = 1e-12;

/// Row/column of a node voltage unknown, or -1 for ground.
int nv(NodeId n) { return n - 1; }

void add_sym(SparseBuilder& m, NodeId a, NodeId b, double v) {
  const int ra = nv(a), rb = nv(b);
  if (ra >= 0) m.add(static_cast<std::size_t>(ra),
                     static_cast<std::size_t>(ra), v);
  if (rb >= 0) m.add(static_cast<std::size_t>(rb),
                     static_cast<std::size_t>(rb), v);
  if (ra >= 0 && rb >= 0) {
    m.add(static_cast<std::size_t>(ra), static_cast<std::size_t>(rb), -v);
    m.add(static_cast<std::size_t>(rb), static_cast<std::size_t>(ra), -v);
  }
}

void add_entry(SparseBuilder& m, int row, int col, double v) {
  if (row >= 0 && col >= 0) {
    m.add(static_cast<std::size_t>(row), static_cast<std::size_t>(col), v);
  }
}

}  // namespace

int StateSpace::input_index(const std::string& name) const {
  return detail::find_name_index(input_names, name, "StateSpace", "input");
}

int StateSpace::output_index(const std::string& name) const {
  return detail::find_name_index(output_names, name, "StateSpace", "output");
}

StateSpace extract_state_space(const Circuit& ckt,
                               const StateSpaceOptions& options) {
  CNTI_EXPECTS(ckt.mosfets().empty(),
               "StateSpace: linear circuits only (MOSFETs rejected)");
  const int nodes = ckt.node_count();
  CNTI_EXPECTS(nodes > 0, "StateSpace: circuit has no non-ground nodes");
  const int nvs = static_cast<int>(ckt.vsources().size());
  const int nind = static_cast<int>(ckt.inductors().size());
  const int size = nodes + nvs + nind;
  const int vsrc_offset = nodes;
  const int ind_offset = nodes + nvs;

  StateSpace out;
  out.nodes = nodes;
  out.size = size;

  const auto un = static_cast<std::size_t>(size);
  SparseBuilder g(un, un);
  SparseBuilder c(un, un);

  for (int n = 1; n <= nodes; ++n) {
    g.add(static_cast<std::size_t>(n - 1), static_cast<std::size_t>(n - 1),
          kGminFloor);
  }
  for (const auto& r : ckt.resistors()) {
    CNTI_EXPECTS(r.ohms > 0, "StateSpace: resistor must be positive");
    add_sym(g, r.a, r.b, 1.0 / r.ohms);
  }
  for (const auto& cap : ckt.capacitors()) {
    CNTI_EXPECTS(cap.farads >= 0, "StateSpace: capacitor must be >= 0");
    add_sym(c, cap.a, cap.b, cap.farads);
  }
  // Branch rows use the skew incidence convention: node rows carry +/-1 on
  // the branch current, branch rows carry the negated voltage difference.
  // This keeps G + G^T positive semidefinite (the branch blocks cancel).
  for (int k = 0; k < nvs; ++k) {
    const auto& v = ckt.vsources()[static_cast<std::size_t>(k)];
    const int br = vsrc_offset + k;
    add_entry(g, nv(v.plus), br, 1.0);
    add_entry(g, nv(v.minus), br, -1.0);
    add_entry(g, br, nv(v.plus), -1.0);
    add_entry(g, br, nv(v.minus), 1.0);
  }
  for (int k = 0; k < nind; ++k) {
    const auto& l = ckt.inductors()[static_cast<std::size_t>(k)];
    CNTI_EXPECTS(l.henries > 0, "StateSpace: inductor must be positive");
    const int br = ind_offset + k;
    add_entry(g, nv(l.a), br, 1.0);
    add_entry(g, nv(l.b), br, -1.0);
    add_entry(g, br, nv(l.a), -1.0);
    add_entry(g, br, nv(l.b), 1.0);
    c.add(static_cast<std::size_t>(br), static_cast<std::size_t>(br),
          l.henries);
  }
  out.g = g.build();
  out.c = c.build();

  // Inputs: vsources, isources, then ports.
  const int n_ports = static_cast<int>(options.ports.size());
  const int n_src_inputs = options.include_sources
                               ? nvs + static_cast<int>(ckt.isources().size())
                               : 0;
  const int m = n_src_inputs + n_ports;
  CNTI_EXPECTS(m > 0, "StateSpace: no inputs (no sources and no ports)");
  out.b = numerics::MatrixD(un, static_cast<std::size_t>(m));
  int col = 0;
  if (options.include_sources) {
    for (int k = 0; k < nvs; ++k) {
      // Branch row reads -(v+ - v-) = -u.
      out.b(static_cast<std::size_t>(vsrc_offset + k),
            static_cast<std::size_t>(col)) = -1.0;
      out.input_names.push_back(ckt.vsources()[static_cast<std::size_t>(k)].name);
      ++col;
    }
    for (const auto& i : ckt.isources()) {
      // Matches the transient engine: source current u leaves the plus node.
      if (nv(i.plus) >= 0) {
        out.b(static_cast<std::size_t>(nv(i.plus)),
              static_cast<std::size_t>(col)) = -1.0;
      }
      if (nv(i.minus) >= 0) {
        out.b(static_cast<std::size_t>(nv(i.minus)),
              static_cast<std::size_t>(col)) = 1.0;
      }
      out.input_names.push_back(i.name);
      ++col;
    }
  }
  for (const auto& port : options.ports) {
    CNTI_EXPECTS(port.node > 0 && port.node <= nodes,
                 "StateSpace: port node out of range (and not ground)");
    // Positive port current flows into the node.
    out.b(static_cast<std::size_t>(nv(port.node)),
          static_cast<std::size_t>(col)) = 1.0;
    out.input_names.push_back(port.name);
    ++col;
  }

  // Outputs: port voltages, then extra observed nodes. An output-less
  // system is allowed (pole/stability analysis needs no observation).
  const int p = n_ports + static_cast<int>(options.observe.size());
  out.l = numerics::MatrixD(un, static_cast<std::size_t>(p));
  int ocol = 0;
  for (const auto& port : options.ports) {
    out.l(static_cast<std::size_t>(nv(port.node)),
          static_cast<std::size_t>(ocol)) = 1.0;
    out.output_names.push_back(port.name);
    ++ocol;
  }
  for (const NodeId n : options.observe) {
    CNTI_EXPECTS(n >= 0 && n <= nodes,
                 "StateSpace: observe node out of range");
    if (nv(n) >= 0) {
      out.l(static_cast<std::size_t>(nv(n)),
            static_cast<std::size_t>(ocol)) = 1.0;
    }
    out.output_names.push_back(ckt.node_name(n));
    ++ocol;
  }
  return out;
}

}  // namespace cnti::rom
