// Descriptor state-space extraction for model-order reduction: stamps a
// linear circuit::Circuit into the passive MNA form
//
//   C dx/dt + G x = B u,   y = L^T x
//
// with x = [node voltages; vsource branch currents; inductor branch
// currents]. Unlike the transient engine's symmetric source stamping, the
// branch rows here use the skew-symmetric incidence convention, so
// G + G^T >= 0 and C = C^T >= 0 hold by construction — the structural
// properties PRIMA's congruence projection needs to guarantee stable (and,
// for symmetric port maps, passive) reduced models. Row scaling does not
// change the solution, so transfer functions agree exactly with
// circuit::ac_analysis.
//
// Inputs u are (in order) the circuit's voltage sources, its current
// sources, then any explicitly declared ports; outputs y are the port node
// voltages followed by any extra observed node voltages. A port is a
// current-injection / voltage-sense pair at one node (positive current
// flows into the node), which is what lets external driver and load
// elements be re-attached to the reduced model afterwards
// (ReducedModel::terminated).
//
// Scope: linear networks only — circuits containing MOSFETs are rejected
// like circuit::ac_analysis.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "numerics/matrix.hpp"
#include "numerics/sparse.hpp"

namespace cnti::rom {

/// Current-injection / voltage-sense port at a named circuit node.
struct RomPort {
  std::string name;
  circuit::NodeId node = 0;
};

struct StateSpaceOptions {
  /// Ports (current in, voltage out). May be empty when the circuit's own
  /// sources provide the inputs.
  std::vector<RomPort> ports;
  /// Extra voltage outputs beyond the port voltages. Ground (node 0) is
  /// allowed and yields an identically-zero output.
  std::vector<circuit::NodeId> observe;
  /// When true (default), every voltage/current source in the circuit
  /// becomes an input ahead of the ports.
  bool include_sources = true;
};

/// Sparse descriptor system with named inputs and outputs.
struct StateSpace {
  numerics::SparseMatrix g;  ///< n x n conductance/incidence part.
  numerics::SparseMatrix c;  ///< n x n capacitance/inductance part.
  numerics::MatrixD b;       ///< n x m input map.
  numerics::MatrixD l;       ///< n x p output map (y = l^T x).
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  int nodes = 0;  ///< Non-ground node count.
  int size = 0;   ///< n = nodes + vsource branches + inductor branches.

  int inputs() const { return static_cast<int>(input_names.size()); }
  int outputs() const { return static_cast<int>(output_names.size()); }

  /// Index of the named input/output; throws PreconditionError if unknown.
  int input_index(const std::string& name) const;
  int output_index(const std::string& name) const;
};

/// Extracts the descriptor system from a linear circuit. Throws
/// PreconditionError on nonlinear circuits, empty circuits, circuits with
/// no inputs, or out-of-range port/observe nodes.
StateSpace extract_state_space(const circuit::Circuit& ckt,
                               const StateSpaceOptions& options = {});

}  // namespace cnti::rom
