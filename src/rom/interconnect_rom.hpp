// ROM-accelerated coupled-bus crosstalk: the fast path behind
// analyze_bus_crosstalk-style design-space sweeps. The bare N-line bus
// (ladders + coupling, no drivers/loads) is extracted once with a
// current/voltage port at every line head and far end and PRIMA-reduced to
// a q x q model; each driver-strength / receiver-load scenario then folds
// its terminations into the reduced matrices (rank-1 updates), replaces
// the aggressor's Thevenin driver by its Norton equivalent at the head
// port, and runs the whole transient on the small system — hundreds of
// times cheaper than a sparse-MNA transient with 2000+ unknowns, on the
// identical stimulus and time grid.
//
// evaluate() is const and thread-safe: reduce once per topology, sweep
// scenarios in parallel through core::run_sweep / numerics::ThreadPool.
#pragma once

#include "circuit/crosstalk.hpp"
#include "numerics/solvers.hpp"
#include "numerics/sparse.hpp"
#include "rom/prima.hpp"
#include "rom/rom_preconditioner.hpp"

namespace cnti::rom {

/// One driver/load/stimulus scenario evaluated against a reduced bus.
struct BusScenario {
  double driver_ohm = 5e3;           ///< Every line's driver resistance.
  double receiver_load_f = 0.2e-15;  ///< Shunt load at every far end.
  double vdd_v = 1.0;
  double edge_time_s = 20e-12;
};

/// Bare-bus descriptor system with head/far ports plus the per-line state
/// indices of the port nodes (node id - 1: the bare bus has no vsource or
/// inductor branches, so states are exactly the non-ground node voltages).
/// The extraction BusRom and ParametrizedBusRom share: ports are
/// head0..head{N-1} then far0..far{N-1}, each both an input and an output.
struct BusStateSpace {
  StateSpace ss;
  std::vector<std::size_t> head_states, far_states;
};

/// Builds the bare bus netlist of `topology` and extracts its ported
/// descriptor system (see BusStateSpace for the port convention).
BusStateSpace extract_bus_state_space(const circuit::BusTopology& topology);

/// Runs one driver/load/stimulus scenario on a *bare* reduced bus model
/// (ports as in BusStateSpace): folds the scenario terminations into the
/// reduced matrices, replaces the aggressor's Thevenin driver by its
/// Norton equivalent at the head port, simulates [0, t_stop_s] on
/// `time_steps` backward-Euler steps and measures worst victim noise and
/// the aggressor 50% delay (quiet NaN if never crossed). Shared by
/// BusRom::evaluate and ParametrizedBusRom::evaluate so both stay
/// field-for-field comparable with analyze_bus_crosstalk.
circuit::BusCrosstalkResult evaluate_reduced_bus(const ReducedModel& bare,
                                                 int lines, int aggressor,
                                                 const BusScenario& scenario,
                                                 double t_stop_s,
                                                 int time_steps);

/// Full-order terminated bus system A x = b at one (real) frequency-like
/// shift: A = G + Gdrv + s (C + Cload) over the bare-bus state vector,
/// with the aggressor's Norton drive current on the right-hand side. The
/// companion system of one backward-Euler step is exactly this form with
/// s = 1/dt, so it doubles as the iterative-solver benchmark system.
struct BusSystem {
  numerics::SparseMatrix a;
  std::vector<double> rhs;
};

class BusRom {
 public:
  /// Reduces the bare coupled bus of `config` (its driver/load/stimulus
  /// fields only define the nominal scenario and the simulated window).
  /// `options.order <= 0` picks a budget from the bus size; an
  /// `expansion_rad_per_s` of 0 is replaced by the bus's settle-time
  /// corner, because the bare network's G alone is g_min-singular.
  explicit BusRom(const circuit::BusConfig& config,
                  PrimaOptions options = {.order = 0});

  /// Topology-keyed construction — the scenario engine's cache seam: the
  /// reduction (and its expansion point) depends only on `topology` plus
  /// default-BusDrive nominals, so a memo cache keyed on (topology,
  /// aggressor) content shares one BusRom across every
  /// driver/load/stimulus scenario of a batch. `aggressor` only selects
  /// the driven port for evaluate() (-1 = centre); it does not affect the
  /// reduction. Equivalent to BusRom(circuit::make_bus_config(topology,
  /// circuit::BusDrive{.aggressor = aggressor})).
  explicit BusRom(const circuit::BusTopology& topology, int aggressor = -1,
                  PrimaOptions options = {.order = 0});

  int full_order() const { return rom_.full_order(); }
  int order() const { return rom_.order(); }
  int lines() const { return config_.lines; }
  const ReducedModel& model() const { return rom_; }

  /// The scenario implied by the construction config.
  BusScenario nominal_scenario() const;

  /// Runs the scenario transient on the reduced model; field-for-field
  /// comparable with analyze_bus_crosstalk of the matching full config.
  circuit::BusCrosstalkResult evaluate(const BusScenario& scenario,
                                       int time_steps = 1500) const;

  /// The transient window evaluate() simulates for `scenario`: exactly
  /// circuit::bus_settle_time_s of the construction topology under the
  /// scenario's drive — including its receiver load, so the ROM and the
  /// full-MNA path can never disagree on the grid.
  double window_s(const BusScenario& scenario) const;

  /// Assembles the full-order terminated system at shift `s` [rad/s]
  /// (s >= 0): driver conductances fold onto the head diagonals, receiver
  /// loads onto the far-end diagonals, and the aggressor head gets its
  /// Norton current vdd / R_driver. Solving it with SparseLu gives the
  /// steady full-network response the ROM approximates; solving it with a
  /// Krylov method is what preconditioner() accelerates.
  BusSystem full_system(const BusScenario& scenario, double s) const;

  /// Default shift for full_system: the reduction's expansion corner
  /// 20 / settle_time, where the ROM basis is most informative.
  double nominal_shift_rad_per_s() const;

  /// Two-level ROM+Jacobi preconditioner for Krylov solves of `a` (any
  /// matrix over the same state vector, typically full_system().a at some
  /// shift). Pass to numerics::bicgstab / numerics::gmres via fn().
  RomPreconditioner preconditioner(const numerics::SparseMatrix& a) const {
    return RomPreconditioner(a, rom_.basis());
  }

 private:
  circuit::BusConfig config_;
  int aggressor_ = 0;
  StateSpace ss_;  ///< Bare-bus descriptor (filled by reduce_bus).
  std::vector<std::size_t> head_states_, far_states_;  ///< Per line.
  ReducedModel rom_;  ///< Declared last: its init populates the above.
};

}  // namespace cnti::rom
