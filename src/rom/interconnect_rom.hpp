// ROM-accelerated coupled-bus crosstalk: the fast path behind
// analyze_bus_crosstalk-style design-space sweeps. The bare N-line bus
// (ladders + coupling, no drivers/loads) is extracted once with a
// current/voltage port at every line head and far end and PRIMA-reduced to
// a q x q model; each driver-strength / receiver-load scenario then folds
// its terminations into the reduced matrices (rank-1 updates), replaces
// the aggressor's Thevenin driver by its Norton equivalent at the head
// port, and runs the whole transient on the small system — hundreds of
// times cheaper than a sparse-MNA transient with 2000+ unknowns, on the
// identical stimulus and time grid.
//
// evaluate() is const and thread-safe: reduce once per topology, sweep
// scenarios in parallel through core::run_sweep / numerics::ThreadPool.
#pragma once

#include "circuit/crosstalk.hpp"
#include "rom/prima.hpp"

namespace cnti::rom {

/// One driver/load/stimulus scenario evaluated against a reduced bus.
struct BusScenario {
  double driver_ohm = 5e3;           ///< Every line's driver resistance.
  double receiver_load_f = 0.2e-15;  ///< Shunt load at every far end.
  double vdd_v = 1.0;
  double edge_time_s = 20e-12;
};

class BusRom {
 public:
  /// Reduces the bare coupled bus of `config` (its driver/load/stimulus
  /// fields only define the nominal scenario and the simulated window).
  /// `options.order <= 0` picks a budget from the bus size; an
  /// `expansion_rad_per_s` of 0 is replaced by the bus's settle-time
  /// corner, because the bare network's G alone is g_min-singular.
  explicit BusRom(const circuit::BusConfig& config,
                  PrimaOptions options = {.order = 0});

  /// Topology-keyed construction — the scenario engine's cache seam: the
  /// reduction (and its expansion point) depends only on `topology` plus
  /// default-BusDrive nominals, so a memo cache keyed on (topology,
  /// aggressor) content shares one BusRom across every
  /// driver/load/stimulus scenario of a batch. `aggressor` only selects
  /// the driven port for evaluate() (-1 = centre); it does not affect the
  /// reduction. Equivalent to BusRom(circuit::make_bus_config(topology,
  /// circuit::BusDrive{.aggressor = aggressor})).
  explicit BusRom(const circuit::BusTopology& topology, int aggressor = -1,
                  PrimaOptions options = {.order = 0});

  int full_order() const { return rom_.full_order(); }
  int order() const { return rom_.order(); }
  int lines() const { return config_.lines; }
  const ReducedModel& model() const { return rom_; }

  /// The scenario implied by the construction config.
  BusScenario nominal_scenario() const;

  /// Runs the scenario transient on the reduced model; field-for-field
  /// comparable with analyze_bus_crosstalk of the matching full config.
  circuit::BusCrosstalkResult evaluate(const BusScenario& scenario,
                                       int time_steps = 1500) const;

 private:
  circuit::BusConfig config_;
  int aggressor_ = 0;
  ReducedModel rom_;
};

}  // namespace cnti::rom
