// Corner-anchored parametrized bus ROM: the reduction that survives
// technology variability. A topology-keyed BusRom is invalidated the
// moment a Monte Carlo sample perturbs the per-unit-length electricals —
// re-running PRIMA per sample would cost more than the full transient it
// replaces. Instead, reduce once at the 2^k corner anchors of the varied
// axes (line R/m, line C/m, neighbour-coupling C/m extremes), merge the
// corner Krylov bases into one orthonormal basis V, and re-project every
// corner's full-order G/C through that common V.
//
// Evaluation at an interior technology point blends the corner-projected
// matrices multilinearly in *transformed* coordinates — 1/scale for the
// resistance axis (stamps are conductances), scale for the capacitance
// axes. Because every entry of the bus G (resp. C) is affine in those
// coordinates, the blend equals V^T G(p) V exactly: a congruence
// projection of the true passive network at p, so the blended model is
// unconditionally stable and the only approximation is basis quality at
// interior points — which validate_against_mna bounds against the full
// sparse-MNA transient at sampled non-anchor points.
//
// evaluate() is const and thread-safe: reduce once per (topology, box,
// aggressor), then sample technologies in parallel at ROM cost.
#pragma once

#include "circuit/crosstalk.hpp"
#include "rom/interconnect_rom.hpp"
#include "rom/prima.hpp"

namespace cnti::rom {

/// One sampled technology: multiplicative scales on the anchor topology's
/// per-unit-length electricals. {1, 1, 1} is the anchor itself.
struct BusTechPoint {
  double resistance_scale = 1.0;   ///< line.resistance_per_m factor.
  double capacitance_scale = 1.0;  ///< line.capacitance_per_m factor.
  double coupling_scale = 1.0;     ///< coupling_cap_per_m factor.
};

/// Axis-aligned scale box the ROM is anchored on: corners are every
/// lo/hi combination of the axes with lo != hi (equal bounds collapse the
/// axis, so a fully degenerate box has a single corner and the model is an
/// ordinary BusRom). All bounds must be positive with lo <= hi.
struct BusTechBox {
  BusTechPoint lo;
  BusTechPoint hi;
};

/// Interior-probe accuracy report of validate_against_mna.
struct ParamRomValidation {
  int probes = 0;
  double max_noise_rel_err = 0.0;  ///< vs full MNA |peak_noise| scale.
  double max_delay_rel_err = 0.0;  ///< vs full MNA aggressor delay.
};

class ParametrizedBusRom {
 public:
  /// Reduces the bare coupled bus at every corner of `box` around
  /// `nominal` and merges the bases. `aggressor` only selects the driven
  /// port for evaluate() (-1 = centre). `corner_options` applies to each
  /// corner reduction: order <= 0 picks the BusRom budget, expansion 0 the
  /// nominal topology's settle-time corner (one expansion point for all
  /// corners, so the bases stay comparable).
  ParametrizedBusRom(const circuit::BusTopology& nominal,
                     const BusTechBox& box, int aggressor = -1,
                     PrimaOptions corner_options = {.order = 0});

  int lines() const { return topology_.lines; }
  int full_order() const { return full_order_; }
  /// Merged-basis size: every blended model is order() x order().
  int order() const { return static_cast<int>(basis_size_); }
  int corners() const { return static_cast<int>(corner_points_.size()); }
  int aggressor() const { return aggressor_; }
  const circuit::BusTopology& nominal_topology() const { return topology_; }
  const BusTechBox& box() const { return box_; }

  /// The full-order topology at a technology point (what the equivalent
  /// sparse-MNA analysis would simulate).
  circuit::BusTopology topology_at(const BusTechPoint& point) const;

  /// Blended bare-bus reduced model at `point` (must lie inside the box):
  /// exactly V^T G(p) V / V^T C(p) V, see the header comment.
  ReducedModel model_at(const BusTechPoint& point) const;

  /// Transient window for a scenario at a technology point — the same
  /// bus_settle_time_s grid as analyze_bus_crosstalk of topology_at(point).
  double window_s(const BusTechPoint& point,
                  const BusScenario& scenario) const;

  /// Runs the scenario transient on the blended model; field-for-field
  /// comparable with analyze_bus_crosstalk(topology_at(point), drive).
  circuit::BusCrosstalkResult evaluate(const BusTechPoint& point,
                                       const BusScenario& scenario,
                                       int time_steps = 1500) const;

  /// Error-bound policy: evaluates `probes` deterministic interior
  /// (non-anchor) technology points both ways — blended ROM vs full
  /// sparse-MNA transient — and reports the worst relative noise/delay
  /// error. Construction-time users gate on this (e.g. <= 1%) before
  /// trusting the ROM across a Monte Carlo study.
  ParamRomValidation validate_against_mna(const BusScenario& scenario,
                                          int probes = 5,
                                          int time_steps = 1500) const;

 private:
  circuit::BusTopology topology_;  ///< Anchor (scale = 1) topology.
  BusTechBox box_;
  int aggressor_ = 0;
  int full_order_ = 0;
  std::size_t basis_size_ = 0;
  std::vector<BusTechPoint> corner_points_;
  /// Per-corner projected matrices through the shared merged basis.
  std::vector<numerics::MatrixD> corner_gr_, corner_cr_;
  numerics::MatrixD br_, lr_;  ///< Port incidence: identical at every corner.
  std::vector<std::string> input_names_, output_names_;
};

}  // namespace cnti::rom
