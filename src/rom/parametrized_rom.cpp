#include "rom/parametrized_rom.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "rom/detail.hpp"

namespace cnti::rom {

namespace {

using detail::dot;
using detail::norm2;
using numerics::MatrixD;

/// One varied axis in its interpolation coordinate: bus conductance
/// stamps are affine in 1/resistance_scale, capacitance stamps in the
/// scale itself, so weights computed in these coordinates make the
/// multilinear blend of the corner matrices *exact* (see header).
struct Axis {
  double lo = 1.0, hi = 1.0;
  bool conductance = false;
};

std::array<Axis, 3> axes_of(const BusTechBox& box) {
  return {Axis{box.lo.resistance_scale, box.hi.resistance_scale, true},
          Axis{box.lo.capacitance_scale, box.hi.capacitance_scale, false},
          Axis{box.lo.coupling_scale, box.hi.coupling_scale, false}};
}

std::array<double, 3> point_values(const BusTechPoint& p) {
  return {p.resistance_scale, p.capacitance_scale, p.coupling_scale};
}

/// Fraction toward the hi corner in the axis's interpolation coordinate.
double axis_fraction(const Axis& a, double value) {
  if (a.lo == a.hi) return 0.0;
  const double u = a.conductance ? 1.0 / value : value;
  const double u_lo = a.conductance ? 1.0 / a.lo : a.lo;
  const double u_hi = a.conductance ? 1.0 / a.hi : a.hi;
  return (u - u_lo) / (u_hi - u_lo);
}

/// Deterministic interior probe fraction for validate_against_mna: a
/// per-axis golden-ratio-ish stride folded into (0.15, 0.85), so probes
/// never land on an anchor and spread over the box without an RNG.
double interior_fraction(int probe, int axis) {
  static constexpr double kStride[3] = {0.6180339887, 0.4142135624,
                                        0.3183098862};
  const double x = static_cast<double>(probe + 1) * kStride[axis];
  return 0.15 + 0.7 * (x - std::floor(x));
}

}  // namespace

ParametrizedBusRom::ParametrizedBusRom(const circuit::BusTopology& nominal,
                                       const BusTechBox& box, int aggressor,
                                       PrimaOptions corner_options)
    : topology_(nominal),
      box_(box),
      aggressor_(aggressor < 0 ? nominal.lines / 2 : aggressor) {
  CNTI_EXPECTS(aggressor_ >= 0 && aggressor_ < topology_.lines,
               "ParametrizedBusRom: aggressor index out of range");
  const obs::ObsSpan build_span("prom.build", "rom");
  const std::array<Axis, 3> axes = axes_of(box_);
  for (const Axis& a : axes) {
    CNTI_EXPECTS(a.lo > 0.0 && a.hi >= a.lo,
                 "ParametrizedBusRom: axis bounds must satisfy 0 < lo <= hi");
  }

  // Every corner reduction shares the nominal topology's expansion point
  // (the same settle-time corner the topology-keyed BusRom picks), so the
  // corner Krylov spaces approximate the same frequency band and their
  // union stays a meaningful shared basis.
  circuit::BusDrive nominal_drive;
  nominal_drive.aggressor = aggressor_;
  const double nominal_s0 =
      20.0 / circuit::bus_settle_time_s(topology_, nominal_drive);

  // Corner enumeration: resistance axis fastest, lexicographic, collapsed
  // axes contributing a single value — a degenerate box has one corner and
  // the model coincides with an ordinary BusRom of the nominal topology.
  const auto axis_values = [](const Axis& a) {
    return a.lo == a.hi ? std::vector<double>{a.lo}
                        : std::vector<double>{a.lo, a.hi};
  };
  for (const double cc : axis_values(axes[2])) {
    for (const double c : axis_values(axes[1])) {
      for (const double r : axis_values(axes[0])) {
        corner_points_.push_back({r, c, cc});
      }
    }
  }

  std::vector<StateSpace> corner_ss;
  std::vector<std::vector<std::vector<double>>> corner_bases;
  corner_ss.reserve(corner_points_.size());
  corner_bases.reserve(corner_points_.size());
  for (const BusTechPoint& cp : corner_points_) {
    BusStateSpace bss = extract_bus_state_space(topology_at(cp));
    PrimaOptions opt = corner_options;
    if (opt.order <= 0) {
      opt.order = std::min(6 * topology_.lines, bss.ss.size / 2);
    }
    if (opt.expansion_rad_per_s <= 0.0) {
      opt.expansion_rad_per_s = nominal_s0;
    }
    opt.keep_basis = true;
    ReducedModel rm = prima_reduce(bss.ss, opt);
    corner_bases.push_back(rm.basis());
    corner_ss.push_back(std::move(bss.ss));
  }
  const StateSpace& ss0 = corner_ss.front();
  full_order_ = ss0.size;
  input_names_ = ss0.input_names;
  output_names_ = ss0.output_names;
  const std::size_t n = static_cast<std::size_t>(full_order_);

  // Merge the corner bases into one orthonormal basis. A single corner
  // keeps its PRIMA basis verbatim (bit-identical to BusRom); otherwise
  // the same MGS + reorthogonalization + deflation scheme prima_reduce
  // uses absorbs each corner's vectors in corner order.
  std::vector<std::vector<double>> basis;
  if (corner_bases.size() == 1) {
    basis = std::move(corner_bases.front());
  } else {
    for (auto& cb : corner_bases) {
      for (auto& w : cb) {
        const double initial = norm2(w);
        if (initial == 0.0) continue;
        for (int pass = 0; pass < 2; ++pass) {
          for (const auto& v : basis) {
            const double h = dot(v, w);
            if (h == 0.0) continue;
            for (std::size_t i = 0; i < n; ++i) w[i] -= h * v[i];
          }
        }
        const double remaining = norm2(w);
        if (remaining <= corner_options.deflation_tol * initial) continue;
        for (double& x : w) x /= remaining;
        basis.push_back(std::move(w));
      }
    }
  }
  basis_size_ = basis.size();
  const std::size_t q = basis_size_;

  // Re-project every corner's full-order G/C through the common basis
  // (same arithmetic as prima_reduce's congruence projection). B and L are
  // port incidence columns — independent of element values — so one
  // projection from corner 0 serves every corner.
  corner_gr_.reserve(corner_points_.size());
  corner_cr_.reserve(corner_points_.size());
  std::vector<double> gv(n), cv(n);
  for (const StateSpace& ss : corner_ss) {
    MatrixD gr(q, q), cr(q, q);
    for (std::size_t j = 0; j < q; ++j) {
      ss.g.multiply(basis[j], gv);
      ss.c.multiply(basis[j], cv);
      for (std::size_t i = 0; i < q; ++i) {
        gr(i, j) = dot(basis[i], gv);
        cr(i, j) = dot(basis[i], cv);
      }
    }
    corner_gr_.push_back(std::move(gr));
    corner_cr_.push_back(std::move(cr));
  }
  br_ = MatrixD(q, ss0.b.cols());
  lr_ = MatrixD(q, ss0.l.cols());
  for (std::size_t i = 0; i < q; ++i) {
    for (std::size_t j = 0; j < ss0.b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < n; ++r) s += basis[i][r] * ss0.b(r, j);
      br_(i, j) = s;
    }
    for (std::size_t j = 0; j < ss0.l.cols(); ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < n; ++r) s += basis[i][r] * ss0.l(r, j);
      lr_(i, j) = s;
    }
  }
}

circuit::BusTopology ParametrizedBusRom::topology_at(
    const BusTechPoint& p) const {
  circuit::BusTopology t = topology_;
  t.line.resistance_per_m *= p.resistance_scale;
  t.line.capacitance_per_m *= p.capacitance_scale;
  t.coupling_cap_per_m *= p.coupling_scale;
  return t;
}

ReducedModel ParametrizedBusRom::model_at(const BusTechPoint& p) const {
  const std::array<Axis, 3> axes = axes_of(box_);
  const std::array<double, 3> values = point_values(p);
  std::array<double, 3> frac{};
  for (std::size_t a = 0; a < 3; ++a) {
    CNTI_EXPECTS(values[a] >= axes[a].lo && values[a] <= axes[a].hi,
                 "ParametrizedBusRom: technology point outside the box");
    frac[a] = axis_fraction(axes[a], values[a]);
  }

  const std::size_t q = basis_size_;
  MatrixD gr(q, q), cr(q, q);
  for (std::size_t ci = 0; ci < corner_points_.size(); ++ci) {
    const std::array<double, 3> cv = point_values(corner_points_[ci]);
    double w = 1.0;
    for (std::size_t a = 0; a < 3; ++a) {
      if (axes[a].lo == axes[a].hi) continue;
      w *= cv[a] == axes[a].hi ? frac[a] : 1.0 - frac[a];
    }
    if (w == 0.0) continue;
    const MatrixD& cg = corner_gr_[ci];
    const MatrixD& cc = corner_cr_[ci];
    for (std::size_t i = 0; i < q; ++i) {
      for (std::size_t j = 0; j < q; ++j) {
        gr(i, j) += w * cg(i, j);
        cr(i, j) += w * cc(i, j);
      }
    }
  }
  return ReducedModel(std::move(gr), std::move(cr), br_, lr_, input_names_,
                      output_names_, full_order_);
}

double ParametrizedBusRom::window_s(const BusTechPoint& p,
                                    const BusScenario& sc) const {
  circuit::BusDrive drive;
  drive.aggressor = aggressor_;
  drive.driver_ohm = sc.driver_ohm;
  drive.vdd_v = sc.vdd_v;
  drive.edge_time_s = sc.edge_time_s;
  drive.receiver_load_f = sc.receiver_load_f;
  return circuit::bus_settle_time_s(topology_at(p), drive);
}

circuit::BusCrosstalkResult ParametrizedBusRom::evaluate(
    const BusTechPoint& p, const BusScenario& sc, int time_steps) const {
  return evaluate_reduced_bus(model_at(p), topology_.lines, aggressor_, sc,
                              window_s(p, sc), time_steps);
}

ParamRomValidation ParametrizedBusRom::validate_against_mna(
    const BusScenario& sc, int probes, int time_steps) const {
  CNTI_EXPECTS(probes >= 1, "ParametrizedBusRom: need at least one probe");
  const obs::ObsSpan validate_span("prom.validate", "rom");
  const std::array<Axis, 3> axes = axes_of(box_);
  ParamRomValidation out;
  out.probes = probes;
  for (int k = 0; k < probes; ++k) {
    BusTechPoint p;
    std::array<double*, 3> fields = {&p.resistance_scale,
                                     &p.capacitance_scale,
                                     &p.coupling_scale};
    for (int a = 0; a < 3; ++a) {
      const Axis& ax = axes[static_cast<std::size_t>(a)];
      *fields[static_cast<std::size_t>(a)] =
          ax.lo + interior_fraction(k, a) * (ax.hi - ax.lo);
    }

    const circuit::BusCrosstalkResult rom_res = evaluate(p, sc, time_steps);
    circuit::BusDrive drive;
    drive.aggressor = aggressor_;
    drive.driver_ohm = sc.driver_ohm;
    drive.vdd_v = sc.vdd_v;
    drive.edge_time_s = sc.edge_time_s;
    drive.receiver_load_f = sc.receiver_load_f;
    const circuit::BusCrosstalkResult mna_res = circuit::analyze_bus_crosstalk(
        circuit::make_bus_config(topology_at(p), drive), time_steps);

    const double noise_den =
        std::max(std::abs(mna_res.peak_noise_v), 1e-12 * sc.vdd_v);
    out.max_noise_rel_err =
        std::max(out.max_noise_rel_err,
                 std::abs(rom_res.peak_noise_v - mna_res.peak_noise_v) /
                     noise_den);
    const bool rom_nan = std::isnan(rom_res.aggressor_delay_s);
    const bool mna_nan = std::isnan(mna_res.aggressor_delay_s);
    if (rom_nan != mna_nan) {
      out.max_delay_rel_err = std::max(out.max_delay_rel_err, 1.0);
    } else if (!mna_nan) {
      out.max_delay_rel_err = std::max(
          out.max_delay_rel_err,
          std::abs(rom_res.aggressor_delay_s - mna_res.aggressor_delay_s) /
              mna_res.aggressor_delay_s);
    }
  }
  static const obs::Gauge error_gauge =
      obs::gauge("cnti.rom.validate_error_pct");
  error_gauge.set(100.0 *
                  std::max(out.max_noise_rel_err, out.max_delay_rel_err));
  return out;
}

}  // namespace cnti::rom
