#include "rom/interconnect_rom.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "numerics/interp.hpp"
#include "obs/obs.hpp"

namespace cnti::rom {

namespace {

using circuit::BusConfig;
using circuit::BusCrosstalkResult;

/// Builds the reduced model for the bare bus with head/far ports. The
/// descriptor system and the per-line head/far state indices are written
/// to the output parameters for BusRom::full_system / preconditioner.
ReducedModel reduce_bus(const BusConfig& cfg, PrimaOptions opt,
                        StateSpace& ss_out,
                        std::vector<std::size_t>& head_states,
                        std::vector<std::size_t>& far_states) {
  BusStateSpace bss = extract_bus_state_space(cfg.topology());
  ss_out = std::move(bss.ss);
  head_states = std::move(bss.head_states);
  far_states = std::move(bss.far_states);

  if (opt.order <= 0) {
    // Default budget: three block moments' worth of columns (ports at both
    // ends of every line), capped well below the full order so the
    // reduction stays a reduction. Empirically this holds the 16 x 128
    // paper bus to ~1e-4 % noise/delay error vs the full transient.
    opt.order = std::min(6 * cfg.lines, ss_out.size / 2);
  }
  if (opt.expansion_rad_per_s <= 0.0) {
    // The bare network is held up only by g_min (the drivers that ground
    // it are attached per scenario), so expand about the analysis window's
    // corner frequency instead of DC.
    opt.expansion_rad_per_s = 20.0 / circuit::bus_settle_time_s(cfg);
  }
  opt.keep_basis = true;  // preconditioner() needs V
  return prima_reduce(ss_out, opt);
}

}  // namespace

BusStateSpace extract_bus_state_space(const circuit::BusTopology& topology) {
  circuit::BusNetlist bus = circuit::build_bus_netlist(topology);
  StateSpaceOptions ss_opt;
  ss_opt.include_sources = false;  // the bare bus has none
  for (int l = 0; l < topology.lines; ++l) {
    ss_opt.ports.push_back(
        {"head" + std::to_string(l), bus.head[static_cast<std::size_t>(l)]});
  }
  for (int l = 0; l < topology.lines; ++l) {
    ss_opt.ports.push_back(
        {"far" + std::to_string(l), bus.far[static_cast<std::size_t>(l)]});
  }
  BusStateSpace out;
  out.ss = extract_state_space(bus.ckt, ss_opt);
  for (int l = 0; l < topology.lines; ++l) {
    out.head_states.push_back(
        static_cast<std::size_t>(bus.head[static_cast<std::size_t>(l)] - 1));
    out.far_states.push_back(
        static_cast<std::size_t>(bus.far[static_cast<std::size_t>(l)] - 1));
  }
  return out;
}

BusCrosstalkResult evaluate_reduced_bus(const ReducedModel& bare, int lines,
                                        int aggressor,
                                        const BusScenario& sc,
                                        double t_stop_s, int time_steps) {
  CNTI_EXPECTS(sc.driver_ohm > 0, "BusRom: driver resistance must be > 0");
  CNTI_EXPECTS(sc.receiver_load_f >= 0, "BusRom: load must be >= 0");
  CNTI_EXPECTS(time_steps >= 2, "BusRom: need at least two time steps");
  CNTI_EXPECTS(aggressor >= 0 && aggressor < lines,
               "BusRom: aggressor index out of range");
  CNTI_EXPECTS(bare.inputs() >= 2 * lines,
               "BusRom: bare model is missing head/far ports");
  static const obs::Counter evaluations = obs::counter("cnti.rom.evaluations");
  static const obs::Histogram eval_hist =
      obs::histogram("cnti.rom.evaluate_ns");
  evaluations.add();
  const obs::ObsSpan eval_span("rom.evaluate", "rom", eval_hist);
  const int nl = lines;

  // Terminations: every head sees its driver's output conductance (the
  // aggressor's Thevenin source becomes a Norton drive at the same port),
  // every far end its receiver load. Port k is input k and output k by
  // construction in extract_bus_state_space.
  std::vector<PortTermination> loads;
  loads.reserve(static_cast<std::size_t>(2 * nl));
  for (int l = 0; l < nl; ++l) {
    loads.push_back({l, l, 1.0 / sc.driver_ohm, 0.0});
  }
  for (int l = 0; l < nl; ++l) {
    loads.push_back({nl + l, nl + l, 0.0, sc.receiver_load_f});
  }
  const ReducedModel terminated = bare.terminated(loads);

  // Norton drive: i(t) = v_edge(t) / R_driver into the aggressor head.
  circuit::PulseWave edge = circuit::bus_edge_wave(sc.vdd_v, sc.edge_time_s);
  edge.v2 /= sc.driver_ohm;
  std::vector<circuit::Waveform> waves(
      static_cast<std::size_t>(bare.inputs()), circuit::DcWave{0.0});
  waves[static_cast<std::size_t>(aggressor)] = edge;

  const ReducedModel::Transient tr =
      terminated.simulate(waves, t_stop_s, t_stop_s / time_steps);

  BusCrosstalkResult out;
  out.unknowns = bare.order();
  out.worst_victim = aggressor == 0 ? 1 : 0;
  for (int l = 0; l < nl; ++l) {
    if (l == aggressor) continue;
    const auto& vn = tr.outputs[static_cast<std::size_t>(nl + l)];
    for (std::size_t i = 0; i < tr.time.size(); ++i) {
      if (std::abs(vn[i]) > std::abs(out.peak_noise_v)) {
        out.peak_noise_v = vn[i];
        out.peak_time_s = tr.time[i];
        out.worst_victim = l;
      }
    }
  }
  // Same sentinel policy as analyze_bus_crosstalk: never-crossed is a
  // quiet NaN, not a negative delay.
  const double crossing = numerics::first_crossing_time(
      tr.time, tr.outputs[static_cast<std::size_t>(nl + aggressor)],
      sc.vdd_v / 2.0, /*rising=*/true);
  out.aggressor_delay_s =
      crossing < 0.0 ? std::numeric_limits<double>::quiet_NaN() : crossing;
  return out;
}

BusRom::BusRom(const BusConfig& config, PrimaOptions options)
    : config_(config),
      aggressor_(config.aggressor < 0 ? config.lines / 2 : config.aggressor),
      rom_(reduce_bus(config, options, ss_, head_states_, far_states_)) {
  CNTI_EXPECTS(aggressor_ >= 0 && aggressor_ < config_.lines,
               "BusRom: aggressor index out of range");
}

BusRom::BusRom(const circuit::BusTopology& topology, int aggressor,
               PrimaOptions options)
    : BusRom(circuit::make_bus_config(topology,
                                      circuit::BusDrive{.aggressor =
                                                            aggressor}),
             options) {}

double BusRom::nominal_shift_rad_per_s() const {
  return 20.0 / circuit::bus_settle_time_s(config_);
}

BusSystem BusRom::full_system(const BusScenario& sc, double s) const {
  CNTI_EXPECTS(sc.driver_ohm > 0, "BusRom: driver resistance must be > 0");
  CNTI_EXPECTS(sc.receiver_load_f >= 0, "BusRom: load must be >= 0");
  CNTI_EXPECTS(s >= 0, "BusRom: shift must be >= 0");
  const std::size_t n = static_cast<std::size_t>(ss_.size);

  // A = G + s C over the bare pattern, then the scenario's terminations on
  // the port diagonals — the same network evaluate() folds into the
  // reduced matrices, assembled at full order.
  numerics::SparseBuilder b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t t = ss_.g.row_ptr()[r]; t < ss_.g.row_ptr()[r + 1];
         ++t) {
      b.add(r, ss_.g.col_indices()[t], ss_.g.values()[t]);
    }
  }
  if (s != 0.0) {
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t t = ss_.c.row_ptr()[r]; t < ss_.c.row_ptr()[r + 1];
           ++t) {
        b.add(r, ss_.c.col_indices()[t], s * ss_.c.values()[t]);
      }
    }
  }
  const double g_drv = 1.0 / sc.driver_ohm;
  for (const std::size_t h : head_states_) b.add(h, h, g_drv);
  if (sc.receiver_load_f > 0.0 && s != 0.0) {
    for (const std::size_t f : far_states_) {
      b.add(f, f, s * sc.receiver_load_f);
    }
  }

  BusSystem sys;
  sys.a = b.build();
  sys.rhs.assign(n, 0.0);
  // Norton drive: the aggressor's settled Thevenin source vdd behind
  // R_driver injects vdd / R_driver at its head port.
  sys.rhs[head_states_[static_cast<std::size_t>(aggressor_)]] =
      sc.vdd_v * g_drv;
  return sys;
}

BusScenario BusRom::nominal_scenario() const {
  BusScenario sc;
  sc.driver_ohm = config_.driver_ohm;
  sc.receiver_load_f = config_.receiver_load_f;
  sc.vdd_v = config_.vdd_v;
  sc.edge_time_s = config_.edge_time_s;
  return sc;
}

double BusRom::window_s(const BusScenario& sc) const {
  // Same window/grid as the full transient of the matching BusConfig —
  // every scenario field that enters the settle estimate (driver strength,
  // edge time *and receiver load*) is propagated.
  circuit::BusDrive drive;
  drive.aggressor = aggressor_;
  drive.driver_ohm = sc.driver_ohm;
  drive.vdd_v = sc.vdd_v;
  drive.edge_time_s = sc.edge_time_s;
  drive.receiver_load_f = sc.receiver_load_f;
  return circuit::bus_settle_time_s(config_.topology(), drive);
}

BusCrosstalkResult BusRom::evaluate(const BusScenario& sc,
                                    int time_steps) const {
  return evaluate_reduced_bus(rom_, config_.lines, aggressor_, sc,
                              window_s(sc), time_steps);
}

}  // namespace cnti::rom
