#include "rom/reduced_model.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "numerics/eig.hpp"
#include "rom/detail.hpp"

namespace cnti::rom {

namespace {

using numerics::LuFactorization;
using numerics::MatrixC;
using numerics::MatrixD;
using std::complex;

std::vector<double> column(const MatrixD& m, int c) {
  std::vector<double> out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    out[r] = m(r, static_cast<std::size_t>(c));
  }
  return out;
}

}  // namespace

ReducedModel::ReducedModel(MatrixD gr, MatrixD cr, MatrixD br, MatrixD lr,
                           std::vector<std::string> input_names,
                           std::vector<std::string> output_names,
                           int full_order)
    : gr_(std::move(gr)),
      cr_(std::move(cr)),
      br_(std::move(br)),
      lr_(std::move(lr)),
      input_names_(std::move(input_names)),
      output_names_(std::move(output_names)),
      full_order_(full_order) {
  const std::size_t q = gr_.rows();
  CNTI_EXPECTS(q > 0 && gr_.cols() == q, "ReducedModel: Gr must be square");
  CNTI_EXPECTS(cr_.rows() == q && cr_.cols() == q,
               "ReducedModel: Cr shape mismatch");
  CNTI_EXPECTS(br_.rows() == q && lr_.rows() == q,
               "ReducedModel: Br/Lr row mismatch");
  CNTI_EXPECTS(input_names_.size() == br_.cols(),
               "ReducedModel: input name count mismatch");
  CNTI_EXPECTS(output_names_.size() == lr_.cols(),
               "ReducedModel: output name count mismatch");
}

int ReducedModel::input_index(const std::string& name) const {
  return detail::find_name_index(input_names_, name, "ReducedModel", "input");
}

int ReducedModel::output_index(const std::string& name) const {
  return detail::find_name_index(output_names_, name, "ReducedModel",
                                 "output");
}

ReducedModel ReducedModel::terminated(
    const std::vector<PortTermination>& loads) const {
  MatrixD g = gr_;
  MatrixD c = cr_;
  const std::size_t q = g.rows();
  for (const auto& load : loads) {
    CNTI_EXPECTS(load.input >= 0 && load.input < inputs(),
                 "terminated: input index out of range");
    CNTI_EXPECTS(load.output >= 0 && load.output < outputs(),
                 "terminated: output index out of range");
    CNTI_EXPECTS(load.conductance_s >= 0 && load.capacitance_f >= 0,
                 "terminated: shunt elements must be >= 0");
    // i_port = -(g + s c) v_port folds as the rank-1 congruence update
    // b l^T — exactly V^T (G_full + g e e^T) V when input and output map
    // the same node, so the terminated model is still a projection of a
    // passive network.
    for (std::size_t i = 0; i < q; ++i) {
      const double bi = br_(i, static_cast<std::size_t>(load.input));
      if (bi == 0.0) continue;
      for (std::size_t j = 0; j < q; ++j) {
        const double lj = lr_(j, static_cast<std::size_t>(load.output));
        if (lj == 0.0) continue;
        g(i, j) += load.conductance_s * bi * lj;
        c(i, j) += load.capacitance_f * bi * lj;
      }
    }
  }
  ReducedModel out(std::move(g), std::move(c), br_, lr_, input_names_,
                   output_names_, full_order_);
  out.basis_ = basis_;  // same projection span; see basis()
  return out;
}

complex<double> ReducedModel::transfer(double frequency_hz, int output,
                                       int input) const {
  CNTI_EXPECTS(frequency_hz >= 0, "transfer: negative frequency");
  CNTI_EXPECTS(input >= 0 && input < inputs(),
               "transfer: input index out of range");
  CNTI_EXPECTS(output >= 0 && output < outputs(),
               "transfer: output index out of range");
  const std::size_t q = gr_.rows();
  const double omega = 2.0 * M_PI * frequency_hz;
  MatrixC a(q, q);
  std::vector<complex<double>> rhs(q);
  for (std::size_t i = 0; i < q; ++i) {
    for (std::size_t j = 0; j < q; ++j) {
      a(i, j) = complex<double>(gr_(i, j), omega * cr_(i, j));
    }
    rhs[i] = complex<double>(br_(i, static_cast<std::size_t>(input)), 0.0);
  }
  const auto x = LuFactorization<complex<double>>(a).solve(rhs);
  complex<double> y(0.0, 0.0);
  for (std::size_t i = 0; i < q; ++i) {
    y += lr_(i, static_cast<std::size_t>(output)) * x[i];
  }
  return y;
}

circuit::AcResult ReducedModel::transfer_sweep(
    const std::vector<double>& freqs_hz, int output, int input) const {
  CNTI_EXPECTS(!freqs_hz.empty(), "transfer_sweep: need at least one frequency");
  circuit::AcResult out;
  out.frequency_hz = freqs_hz;
  out.transfer.reserve(freqs_hz.size());
  for (const double f : freqs_hz) {
    out.transfer.push_back(transfer(f, output, input));
  }
  return out;
}

std::vector<MatrixD> ReducedModel::moments(int count) const {
  CNTI_EXPECTS(count >= 1, "moments: need count >= 1");
  const LuFactorization<double> lu(gr_);
  // Blocks R_0 = Gr^{-1} Br, R_{k+1} = -Gr^{-1} Cr R_k; m_k = Lr^T R_k.
  MatrixD r = lu.solve(br_);
  std::vector<MatrixD> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    if (k > 0) {
      MatrixD cr_r = cr_ * r;
      cr_r *= -1.0;
      r = lu.solve(cr_r);
    }
    MatrixD mk(lr_.cols(), br_.cols());
    for (std::size_t p = 0; p < lr_.cols(); ++p) {
      const auto lcol = column(lr_, static_cast<int>(p));
      for (std::size_t m = 0; m < br_.cols(); ++m) {
        mk(p, m) = detail::dot(lcol, column(r, static_cast<int>(m)));
      }
    }
    out.push_back(std::move(mk));
  }
  return out;
}

double ReducedModel::elmore_delay(int output, int input) const {
  CNTI_EXPECTS(input >= 0 && input < inputs(),
               "elmore_delay: input index out of range");
  CNTI_EXPECTS(output >= 0 && output < outputs(),
               "elmore_delay: output index out of range");
  const auto m = moments(2);
  const double m0 = m[0](static_cast<std::size_t>(output),
                         static_cast<std::size_t>(input));
  CNTI_EXPECTS(std::abs(m0) > 1e-300, "elmore_delay: zero DC transfer");
  return -m[1](static_cast<std::size_t>(output),
               static_cast<std::size_t>(input)) /
         m0;
}

std::vector<complex<double>> ReducedModel::poles(double rel_tol) const {
  // Finite poles of (Gr + s Cr): s = -1/mu for eigenvalues mu of
  // A = Gr^{-1} Cr. Near-zero mu are numerical stand-ins for modes at
  // infinity and are dropped.
  const MatrixD a = LuFactorization<double>(gr_).solve(cr_);
  const auto mu = numerics::eigenvalues(a);
  double mu_max = 0.0;
  for (const auto& m : mu) mu_max = std::max(mu_max, std::abs(m));
  std::vector<complex<double>> out;
  for (const auto& m : mu) {
    if (std::abs(m) > rel_tol * mu_max && std::abs(m) > 0.0) {
      out.push_back(-1.0 / m);
    }
  }
  return out;
}

bool ReducedModel::stable(double slack) const {
  for (const auto& p : poles()) {
    if (p.real() > slack * std::abs(p)) return false;
  }
  return true;
}

ReducedModel::Transient ReducedModel::simulate(
    const std::vector<circuit::Waveform>& input_waves, double t_stop_s,
    double dt_s) const {
  CNTI_EXPECTS(static_cast<int>(input_waves.size()) == inputs(),
               "simulate: need one waveform per input");
  CNTI_EXPECTS(t_stop_s > 0, "simulate: t_stop must be positive");
  CNTI_EXPECTS(dt_s > 0 && dt_s < t_stop_s,
               "simulate: dt must be positive and below t_stop");
  const std::size_t q = gr_.rows();
  const std::size_t m = br_.cols();
  const std::size_t p = lr_.cols();

  const auto input_at = [&](double t) {
    std::vector<double> u(m);
    for (std::size_t k = 0; k < m; ++k) {
      u[k] = circuit::waveform_value(input_waves[k], t);
    }
    return u;
  };

  // DC start: Gr x0 = Br u(0), matching the full engine's operating-point
  // initialisation.
  std::vector<double> u_prev = input_at(0.0);
  std::vector<double> x = LuFactorization<double>(gr_).solve(br_ * u_prev);

  // Trapezoidal: (2C/dt + G) x1 = (2C/dt - G) x0 + B (u0 + u1). The left
  // matrix is factored once; each step is a matvec and a back-substitution.
  MatrixD lhs = cr_;
  lhs *= 2.0 / dt_s;
  MatrixD rhs_mat = lhs;
  lhs += gr_;
  rhs_mat -= gr_;
  const LuFactorization<double> step_lu(lhs);

  // Same grid construction as circuit::simulate_transient, so ROM and full
  // MNA waveforms are directly comparable sample-by-sample.
  const auto steps =
      static_cast<std::size_t>(std::ceil(t_stop_s / dt_s - 1e-9)) + 1;
  Transient out;
  out.time.resize(steps);
  out.outputs.assign(p, std::vector<double>(steps, 0.0));
  const auto record = [&](std::size_t step, double t) {
    out.time[step] = t;
    for (std::size_t j = 0; j < p; ++j) {
      double y = 0.0;
      for (std::size_t i = 0; i < q; ++i) y += lr_(i, j) * x[i];
      out.outputs[j][step] = y;
    }
  };
  record(0, 0.0);

  std::vector<double> rhs(q);
  for (std::size_t step = 1; step < steps; ++step) {
    const double t = static_cast<double>(step) * dt_s;
    const std::vector<double> u = input_at(t);
    rhs = rhs_mat * x;
    std::vector<double> usum(m);
    for (std::size_t k = 0; k < m; ++k) usum[k] = u_prev[k] + u[k];
    const std::vector<double> bu = br_ * usum;
    for (std::size_t i = 0; i < q; ++i) rhs[i] += bu[i];
    x = step_lu.solve(rhs);
    u_prev = u;
    record(step, t);
  }
  return out;
}

ReducedModel::Transient ReducedModel::step_response(int input,
                                                    double t_stop_s,
                                                    double dt_s) const {
  CNTI_EXPECTS(input >= 0 && input < inputs(),
               "step_response: input index out of range");
  std::vector<circuit::Waveform> waves(static_cast<std::size_t>(inputs()),
                                       circuit::DcWave{0.0});
  circuit::PwlWave step;
  step.points = {{0.0, 0.0}, {dt_s * 1e-6, 1.0}};
  waves[static_cast<std::size_t>(input)] = step;
  return simulate(waves, t_stop_s, dt_s);
}

}  // namespace cnti::rom
