// Interconnect structure description: dielectric regions painted onto grid
// cells and named conductors occupying boxes. Input to the field solver
// (paper Sec. III.B: Laplace solves over insulator and metal regions).
#pragma once

#include <string>
#include <vector>

#include "common/constants.hpp"
#include "tcad/grid.hpp"

namespace cnti::tcad {

/// A named conductor made of one or more boxes, with an electrical
/// conductivity for resistance extraction.
struct ConductorRegion {
  std::string name;
  std::vector<Box> boxes;
  double conductivity_s_per_m = 5.8e7;  // Cu default

  bool contains(double x, double y, double z, double tol) const {
    for (const auto& b : boxes) {
      if (b.contains(x, y, z, tol)) return true;
    }
    return false;
  }
};

/// Grid + materials. Cells carry permittivity (and conductivity inside
/// conductors); nodes inside a conductor are equipotential (Dirichlet).
class Structure {
 public:
  Structure(Grid3D grid, double background_eps_r = 1.0);

  const Grid3D& grid() const { return grid_; }

  /// Paints cells whose centre lies in `region` with eps_r.
  void paint_dielectric(const Box& region, double eps_r);

  /// Adds a conductor; returns its id. Extend with add_conductor_box.
  int add_conductor(const std::string& name, const Box& box,
                    double conductivity_s_per_m = 5.8e7);
  void add_conductor_box(int conductor, const Box& box);

  int conductor_count() const { return static_cast<int>(conductors_.size()); }
  const ConductorRegion& conductor(int id) const;

  /// Absolute permittivity of a cell [F/m].
  double cell_permittivity(std::size_t i, std::size_t j, std::size_t k) const;

  /// Conductivity of a cell for the given conductor (0 outside it) [S/m].
  double cell_conductivity(int conductor, std::size_t i, std::size_t j,
                           std::size_t k) const;

  /// Conductor occupying this node, or -1. Nodes on a conductor surface
  /// belong to it (closed regions).
  int node_conductor(std::size_t i, std::size_t j, std::size_t k) const;

 private:
  void refresh_node_map();
  const ConductorRegion& conductor_ref(int id) const;

  Grid3D grid_;
  std::vector<double> cell_eps_r_;
  std::vector<ConductorRegion> conductors_;
  std::vector<int> node_conductor_;  ///< -1 = dielectric node.
};

}  // namespace cnti::tcad
