#include "tcad/structure.hpp"

#include <algorithm>

namespace cnti::tcad {

Structure::Structure(Grid3D grid, double background_eps_r)
    : grid_(std::move(grid)),
      cell_eps_r_(grid_.cell_count(), background_eps_r),
      node_conductor_(grid_.node_count(), -1) {
  CNTI_EXPECTS(background_eps_r >= 1.0, "eps_r must be >= 1");
}

void Structure::paint_dielectric(const Box& region, double eps_r) {
  CNTI_EXPECTS(eps_r >= 1.0, "eps_r must be >= 1");
  for (std::size_t k = 0; k + 1 < grid_.nz(); ++k) {
    for (std::size_t j = 0; j + 1 < grid_.ny(); ++j) {
      for (std::size_t i = 0; i + 1 < grid_.nx(); ++i) {
        if (region.contains(grid_.cell_cx(i), grid_.cell_cy(j),
                            grid_.cell_cz(k))) {
          cell_eps_r_[grid_.cell_index(i, j, k)] = eps_r;
        }
      }
    }
  }
}

int Structure::add_conductor(const std::string& name, const Box& box,
                             double conductivity_s_per_m) {
  CNTI_EXPECTS(conductivity_s_per_m > 0, "conductivity must be positive");
  conductors_.push_back({name, {box}, conductivity_s_per_m});
  refresh_node_map();
  return static_cast<int>(conductors_.size()) - 1;
}

void Structure::add_conductor_box(int conductor, const Box& box) {
  CNTI_EXPECTS(conductor >= 0 && conductor < conductor_count(),
               "conductor id out of range");
  conductors_[static_cast<std::size_t>(conductor)].boxes.push_back(box);
  refresh_node_map();
}

const ConductorRegion& Structure::conductor(int id) const {
  CNTI_EXPECTS(id >= 0 && id < conductor_count(),
               "conductor id out of range");
  return conductors_[static_cast<std::size_t>(id)];
}

double Structure::cell_permittivity(std::size_t i, std::size_t j,
                                    std::size_t k) const {
  return phys::kEpsilon0 * cell_eps_r_[grid_.cell_index(i, j, k)];
}

double Structure::cell_conductivity(int conductor, std::size_t i,
                                    std::size_t j, std::size_t k) const {
  const auto& c = conductor_ref(conductor);
  return c.contains(grid_.cell_cx(i), grid_.cell_cy(j), grid_.cell_cz(k),
                    0.0)
             ? c.conductivity_s_per_m
             : 0.0;
}

int Structure::node_conductor(std::size_t i, std::size_t j,
                              std::size_t k) const {
  return node_conductor_[grid_.node_index(i, j, k)];
}

void Structure::refresh_node_map() {
  // Surface tolerance: half the smallest spacing avoids losing boundary
  // nodes to floating-point comparisons.
  double min_spacing = 1e300;
  for (std::size_t i = 0; i + 1 < grid_.nx(); ++i) {
    min_spacing = std::min(min_spacing, grid_.dx(i));
  }
  for (std::size_t j = 0; j + 1 < grid_.ny(); ++j) {
    min_spacing = std::min(min_spacing, grid_.dy(j));
  }
  for (std::size_t k = 0; k + 1 < grid_.nz(); ++k) {
    min_spacing = std::min(min_spacing, grid_.dz(k));
  }
  const double tol = 1e-3 * min_spacing;

  std::fill(node_conductor_.begin(), node_conductor_.end(), -1);
  for (std::size_t k = 0; k < grid_.nz(); ++k) {
    for (std::size_t j = 0; j < grid_.ny(); ++j) {
      for (std::size_t i = 0; i < grid_.nx(); ++i) {
        for (int c = 0; c < conductor_count(); ++c) {
          if (conductors_[static_cast<std::size_t>(c)].contains(
                  grid_.x(i), grid_.y(j), grid_.z(k), tol)) {
            node_conductor_[grid_.node_index(i, j, k)] = c;
            break;
          }
        }
      }
    }
  }
}

const ConductorRegion& Structure::conductor_ref(int id) const {
  CNTI_EXPECTS(id >= 0 && id < conductor_count(),
               "conductor id out of range");
  return conductors_[static_cast<std::size_t>(id)];
}

}  // namespace cnti::tcad
