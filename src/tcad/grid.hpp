// Structured, possibly non-uniform 3-D tensor-product grid for the TCAD
// field solver. Potentials live on nodes; material coefficients live on
// cells (box-integration / finite-volume discretization).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace cnti::tcad {

/// Axis-aligned box [x0,x1] x [y0,y1] x [z0,z1] in metres.
struct Box {
  double x0 = 0, x1 = 0, y0 = 0, y1 = 0, z0 = 0, z1 = 0;

  bool contains(double x, double y, double z, double tol = 0.0) const {
    return x >= x0 - tol && x <= x1 + tol && y >= y0 - tol && y <= y1 + tol &&
           z >= z0 - tol && z <= z1 + tol;
  }
};

/// Tensor-product grid defined by strictly increasing node coordinates.
class Grid3D {
 public:
  Grid3D(std::vector<double> x, std::vector<double> y, std::vector<double> z);

  /// Uniform grid over [0,lx]x[0,ly]x[0,lz] with the given node counts.
  static Grid3D uniform(double lx, double ly, double lz, std::size_t nx,
                        std::size_t ny, std::size_t nz);

  std::size_t nx() const { return x_.size(); }
  std::size_t ny() const { return y_.size(); }
  std::size_t nz() const { return z_.size(); }
  std::size_t node_count() const { return nx() * ny() * nz(); }
  std::size_t cell_count() const {
    return (nx() - 1) * (ny() - 1) * (nz() - 1);
  }

  double x(std::size_t i) const { return x_[i]; }
  double y(std::size_t j) const { return y_[j]; }
  double z(std::size_t k) const { return z_[k]; }

  double dx(std::size_t i) const { return x_[i + 1] - x_[i]; }
  double dy(std::size_t j) const { return y_[j + 1] - y_[j]; }
  double dz(std::size_t k) const { return z_[k + 1] - z_[k]; }

  std::size_t node_index(std::size_t i, std::size_t j, std::size_t k) const {
    return (k * ny() + j) * nx() + i;
  }
  std::size_t cell_index(std::size_t i, std::size_t j, std::size_t k) const {
    return (k * (ny() - 1) + j) * (nx() - 1) + i;
  }

  /// Cell-centre coordinates.
  double cell_cx(std::size_t i) const { return 0.5 * (x_[i] + x_[i + 1]); }
  double cell_cy(std::size_t j) const { return 0.5 * (y_[j] + y_[j + 1]); }
  double cell_cz(std::size_t k) const { return 0.5 * (z_[k] + z_[k + 1]); }

 private:
  std::vector<double> x_, y_, z_;
};

}  // namespace cnti::tcad
