// Finite-volume Laplace solver and RC extraction (paper Sec. III.B,
// Eqs. 2-3): div(eps grad psi) = 0 in insulators for the capacitance
// matrix, div(kappa grad psi) = 0 in metals for resistance and current-
// density hot-spots. Conductors are equipotential Dirichlet regions; outer
// boundaries are natural (Neumann).
#pragma once

#include <vector>

#include "numerics/matrix.hpp"
#include "numerics/solvers.hpp"
#include "tcad/structure.hpp"

namespace cnti::tcad {

/// Electrostatic solution for one conductor excitation.
struct FieldSolution {
  std::vector<double> potential;  ///< Per node.
  std::size_t cg_iterations = 0;
  bool converged = false;
};

/// Solves div(c grad psi) = 0 with per-cell coefficient `cell_coef`
/// (size = cell_count) and Dirichlet values where `dirichlet_mask` is true.
/// Nodes whose incident faces all have zero coefficient are frozen at 0.
FieldSolution solve_laplace(const Grid3D& grid,
                            const std::vector<double>& cell_coef,
                            const std::vector<char>& dirichlet_mask,
                            const std::vector<double>& dirichlet_value,
                            const numerics::IterativeOptions& opt = {
                                .max_iterations = 20000,
                                .tolerance = 1e-10});

/// Maxwell capacitance matrix of all conductors in the structure [F].
/// C(i,i) > 0 is the total capacitance of conductor i; C(i,j) < 0 for
/// i != j is minus the coupling (cross-talk) capacitance.
struct CapacitanceResult {
  numerics::MatrixD matrix;
  std::size_t total_cg_iterations = 0;
};

CapacitanceResult extract_capacitance(const Structure& structure,
                                      const numerics::IterativeOptions& opt =
                                          {.max_iterations = 20000,
                                           .tolerance = 1e-10});

/// Resistance of one conductor between two terminal boxes, with the
/// current-density field for hot-spot analysis (paper Fig. 10b).
struct ResistanceResult {
  double resistance_ohm = 0.0;
  double terminal_current_a = 0.0;  ///< At 1 V excitation.
  /// |J| per cell [A/m^2] (0 outside the conductor).
  std::vector<double> current_density;
  double max_current_density = 0.0;
  /// Cell centre of the |J| hot-spot [m].
  double hotspot_x = 0.0, hotspot_y = 0.0, hotspot_z = 0.0;
  std::size_t cg_iterations = 0;
};

ResistanceResult extract_resistance(const Structure& structure, int conductor,
                                    const Box& terminal_a,
                                    const Box& terminal_b,
                                    const numerics::IterativeOptions& opt = {
                                        .max_iterations = 20000,
                                        .tolerance = 1e-10});

}  // namespace cnti::tcad
