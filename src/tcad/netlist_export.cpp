#include "tcad/netlist_export.hpp"

#include <cmath>

#include "circuit/spice_io.hpp"

namespace cnti::tcad {

circuit::Circuit parasitic_network(const Structure& structure,
                                   const CapacitanceResult& caps) {
  const int nc = structure.conductor_count();
  CNTI_EXPECTS(static_cast<int>(caps.matrix.rows()) == nc,
               "capacitance matrix does not match structure");
  circuit::Circuit ckt;

  // Ground capacitance of conductor i: C_ii - sum_j |C_ij|; coupling
  // capacitance between i and j: -C_ij.
  for (int i = 0; i < nc; ++i) {
    const auto ni = ckt.node(structure.conductor(i).name);
    double c_ground = caps.matrix(static_cast<std::size_t>(i),
                                  static_cast<std::size_t>(i));
    for (int j = 0; j < nc; ++j) {
      if (j == i) continue;
      const double c_coup = -caps.matrix(static_cast<std::size_t>(i),
                                         static_cast<std::size_t>(j));
      c_ground -= std::max(0.0, c_coup);
      if (j > i && c_coup > 1e-21) {
        const auto nj = ckt.node(structure.conductor(j).name);
        ckt.add_capacitor("Cc_" + structure.conductor(i).name + "_" +
                              structure.conductor(j).name,
                          ni, nj, c_coup);
      }
    }
    if (c_ground > 1e-21) {
      ckt.add_capacitor("Cg_" + structure.conductor(i).name, ni, 0,
                        c_ground);
    }
  }
  return ckt;
}

std::string export_spice_netlist(const Structure& structure,
                                 const CapacitanceResult& caps,
                                 const std::string& title) {
  return circuit::write_spice(parasitic_network(structure, caps), title);
}

Fig10Structure build_fig10_structure(const Fig10Options& opt) {
  CNTI_EXPECTS(opt.grid_step_nm > 0, "grid step must be positive");
  const double nm = 1e-9;
  const double w = opt.width_nm * nm;
  const double pitch = opt.pitch_nm * nm;
  const double h = opt.height_nm * nm;
  const double len = opt.line_length_nm * nm;

  // Layout (x = across lines, y = along M1, z = up):
  //   z in [0, h0): ground plane; [h1, h1+h): M1; [h2, h2+h): M2.
  const double h0 = h;                 // ground plane thickness
  const double gap = h;                // inter-level dielectric
  const double z_m1 = h0 + gap;
  const double z_via = z_m1 + h;
  const double z_m2 = z_via + h;
  const double domain_x = 5.0 * pitch;
  const double domain_y = len + 2.0 * pitch;
  const double domain_z = z_m2 + h + gap;

  const double step = opt.grid_step_nm * nm;
  const auto n_of = [&](double l) {
    return static_cast<std::size_t>(std::round(l / step)) + 1;
  };
  Structure s(Grid3D::uniform(domain_x, domain_y, domain_z, n_of(domain_x),
                              n_of(domain_y), n_of(domain_z)),
              opt.eps_r);

  Fig10Structure out{std::move(s), -1, -1, -1, -1, -1, {}, {}};
  Structure& st = out.structure;

  // Ground plane spans the whole footprint.
  out.ground_plane = st.add_conductor(
      "gnd_plane", {0, domain_x, 0, domain_y, 0, h0},
      opt.metal_conductivity);

  // Three M1 lines along y, centred in x.
  const double x_mid = domain_x / 2.0;
  const double y0 = pitch, y1 = pitch + len;
  const auto m1_box = [&](double x_center) {
    return Box{x_center - w / 2.0, x_center + w / 2.0, y0, y1, z_m1,
               z_m1 + h};
  };
  out.m1_left = st.add_conductor("m1_left", m1_box(x_mid - pitch),
                                 opt.metal_conductivity);
  out.m1_victim = st.add_conductor("m1_victim", m1_box(x_mid),
                                   opt.metal_conductivity);
  out.m1_right = st.add_conductor("m1_right", m1_box(x_mid + pitch),
                                  opt.metal_conductivity);

  // Via from the victim up to M2 at the line's y midpoint.
  const double y_mid = 0.5 * (y0 + y1);
  const Box via{x_mid - w / 2.0, x_mid + w / 2.0, y_mid - w / 2.0,
                y_mid + w / 2.0, z_m1 + h, z_via + 1e-15};
  st.add_conductor_box(out.m1_victim, via);

  // Orthogonal M2 line along x, connected to the via.
  const Box m2{0.5 * pitch, domain_x - 0.5 * pitch, y_mid - w / 2.0,
               y_mid + w / 2.0, z_via, z_m2};
  st.add_conductor_box(out.m1_victim, m2);
  out.m2_line = out.m1_victim;  // same electrical net through the via

  // Terminals for resistance extraction through the via path.
  out.via_terminal_top = Box{0.5 * pitch - 1e-12, 0.5 * pitch + 1e-12,
                             y_mid - w / 2.0, y_mid + w / 2.0, z_via, z_m2};
  out.victim_terminal_end =
      Box{x_mid - w / 2.0, x_mid + w / 2.0, y0 - 1e-12, y0 + 1e-12, z_m1,
          z_m1 + h};
  return out;
}

}  // namespace cnti::tcad
