// Exports extracted parasitics as a SPICE-like RC netlist (paper Sec.
// III.B: "Extracted RC netlists are provided in a SPICE-like format for
// circuit-level simulation"), plus the canned Fig. 10 benchmark structure:
// a 14 nm-class two-level (M1/M2 + via) interconnect stack in low-k.
#pragma once

#include <string>

#include "circuit/netlist.hpp"
#include "tcad/field_solver.hpp"

namespace cnti::tcad {

/// Converts a Maxwell capacitance matrix into a star network of ground and
/// coupling capacitors on nodes named after the conductors, optionally
/// including extracted wire resistances (series split at each node is left
/// to the caller; resistances attach between "<name>" and "<name>_far").
circuit::Circuit parasitic_network(const Structure& structure,
                                   const CapacitanceResult& caps);

/// Full SPICE text for the extracted network.
std::string export_spice_netlist(const Structure& structure,
                                 const CapacitanceResult& caps,
                                 const std::string& title);

/// The Fig. 10 benchmark structure: three parallel M1 lines (victim plus
/// two aggressors), an orthogonal M2 line, and a via connecting the victim
/// to M2, embedded in low-k (eps_r = 2.5) over a ground plane.
struct Fig10Structure {
  Structure structure;
  int ground_plane = -1;
  int m1_left = -1;
  int m1_victim = -1;
  int m1_right = -1;
  int m2_line = -1;   ///< Connected to the victim through the via.
  Box via_terminal_top;     ///< For resistance extraction through the via.
  Box victim_terminal_end;  ///< Far end of the victim M1 line.
};

struct Fig10Options {
  double pitch_nm = 56.0;        ///< 14 nm-node M1 pitch ~ 56 nm.
  double width_nm = 28.0;
  double height_nm = 56.0;
  double line_length_nm = 500.0;
  double eps_r = 2.5;
  double grid_step_nm = 14.0;
  double metal_conductivity = 2.0e7;  ///< Size-effect-degraded Cu [S/m].
};

Fig10Structure build_fig10_structure(const Fig10Options& opt = {});

}  // namespace cnti::tcad
