#include "tcad/field_solver.hpp"

#include <algorithm>
#include <cmath>

#include "numerics/sparse.hpp"

namespace cnti::tcad {

namespace {

/// Face conductance between node (i,j,k) and its +axis neighbour: the edge
/// is shared by up to four cells; each contributes a quarter of its
/// cross-section over the edge length (box integration).
struct FaceStencil {
  const Grid3D& grid;
  const std::vector<double>& coef;

  double cell(std::size_t i, std::size_t j, std::size_t k) const {
    return coef[grid.cell_index(i, j, k)];
  }

  double gx(std::size_t i, std::size_t j, std::size_t k) const {
    double g = 0.0;
    for (int dj = -1; dj <= 0; ++dj) {
      for (int dk = -1; dk <= 0; ++dk) {
        const std::size_t cj = j + static_cast<std::size_t>(dj);
        const std::size_t ck = k + static_cast<std::size_t>(dk);
        if (cj >= grid.ny() - 1 || ck >= grid.nz() - 1) continue;  // wraps
        g += cell(i, cj, ck) * 0.25 * grid.dy(cj) * grid.dz(ck) /
             grid.dx(i);
      }
    }
    return g;
  }

  double gy(std::size_t i, std::size_t j, std::size_t k) const {
    double g = 0.0;
    for (int di = -1; di <= 0; ++di) {
      for (int dk = -1; dk <= 0; ++dk) {
        const std::size_t ci = i + static_cast<std::size_t>(di);
        const std::size_t ck = k + static_cast<std::size_t>(dk);
        if (ci >= grid.nx() - 1 || ck >= grid.nz() - 1) continue;
        g += cell(ci, j, ck) * 0.25 * grid.dx(ci) * grid.dz(ck) /
             grid.dy(j);
      }
    }
    return g;
  }

  double gz(std::size_t i, std::size_t j, std::size_t k) const {
    double g = 0.0;
    for (int di = -1; di <= 0; ++di) {
      for (int dj = -1; dj <= 0; ++dj) {
        const std::size_t ci = i + static_cast<std::size_t>(di);
        const std::size_t cj = j + static_cast<std::size_t>(dj);
        if (ci >= grid.nx() - 1 || cj >= grid.ny() - 1) continue;
        g += cell(ci, cj, k) * 0.25 * grid.dx(ci) * grid.dy(cj) /
             grid.dz(k);
      }
    }
    return g;
  }
};

/// Visits every grid edge once: callback(node_a, node_b, conductance).
template <typename Fn>
void for_each_edge(const Grid3D& grid, const std::vector<double>& coef,
                   const Fn& fn) {
  const FaceStencil st{grid, coef};
  for (std::size_t k = 0; k < grid.nz(); ++k) {
    for (std::size_t j = 0; j < grid.ny(); ++j) {
      for (std::size_t i = 0; i < grid.nx(); ++i) {
        const std::size_t n = grid.node_index(i, j, k);
        if (i + 1 < grid.nx()) {
          const double g = st.gx(i, j, k);
          if (g > 0) fn(n, grid.node_index(i + 1, j, k), g);
        }
        if (j + 1 < grid.ny()) {
          const double g = st.gy(i, j, k);
          if (g > 0) fn(n, grid.node_index(i, j + 1, k), g);
        }
        if (k + 1 < grid.nz()) {
          const double g = st.gz(i, j, k);
          if (g > 0) fn(n, grid.node_index(i, j, k + 1), g);
        }
      }
    }
  }
}

}  // namespace

FieldSolution solve_laplace(const Grid3D& grid,
                            const std::vector<double>& cell_coef,
                            const std::vector<char>& dirichlet_mask,
                            const std::vector<double>& dirichlet_value,
                            const numerics::IterativeOptions& opt) {
  const std::size_t n_nodes = grid.node_count();
  CNTI_EXPECTS(cell_coef.size() == grid.cell_count(),
               "cell coefficient size mismatch");
  CNTI_EXPECTS(dirichlet_mask.size() == n_nodes &&
                   dirichlet_value.size() == n_nodes,
               "dirichlet array size mismatch");

  // Identify free unknowns: non-Dirichlet nodes with at least one incident
  // non-zero-conductance edge.
  std::vector<char> active(n_nodes, 0);
  for_each_edge(grid, cell_coef, [&](std::size_t a, std::size_t b, double) {
    active[a] = 1;
    active[b] = 1;
  });
  std::vector<std::ptrdiff_t> eq_of(n_nodes, -1);
  std::size_t n_free = 0;
  for (std::size_t n = 0; n < n_nodes; ++n) {
    if (active[n] && !dirichlet_mask[n]) {
      eq_of[n] = static_cast<std::ptrdiff_t>(n_free++);
    }
  }

  numerics::SparseBuilder builder(n_free, n_free);
  std::vector<double> rhs(n_free, 0.0);
  for_each_edge(grid, cell_coef,
                [&](std::size_t a, std::size_t b, double g) {
    const bool da = dirichlet_mask[a], db = dirichlet_mask[b];
    if (da && db) return;
    if (!da && !db) {
      const auto ea = static_cast<std::size_t>(eq_of[a]);
      const auto eb = static_cast<std::size_t>(eq_of[b]);
      builder.add(ea, ea, g);
      builder.add(eb, eb, g);
      builder.add(ea, eb, -g);
      builder.add(eb, ea, -g);
    } else if (da) {
      const auto eb = static_cast<std::size_t>(eq_of[b]);
      builder.add(eb, eb, g);
      rhs[eb] += g * dirichlet_value[a];
    } else {
      const auto ea = static_cast<std::size_t>(eq_of[a]);
      builder.add(ea, ea, g);
      rhs[ea] += g * dirichlet_value[b];
    }
  });

  FieldSolution out;
  out.potential.assign(n_nodes, 0.0);
  for (std::size_t n = 0; n < n_nodes; ++n) {
    if (dirichlet_mask[n]) out.potential[n] = dirichlet_value[n];
  }
  if (n_free == 0) {
    out.converged = true;
    return out;
  }
  const auto res = numerics::conjugate_gradient(builder.build(), rhs, opt);
  if (!res.converged) {
    throw NumericalError("TCAD Laplace CG did not converge (residual " +
                         std::to_string(res.residual) + ")");
  }
  out.cg_iterations = res.iterations;
  out.converged = true;
  for (std::size_t n = 0; n < n_nodes; ++n) {
    if (eq_of[n] >= 0) {
      out.potential[n] = res.x[static_cast<std::size_t>(eq_of[n])];
    }
  }
  return out;
}

CapacitanceResult extract_capacitance(const Structure& structure,
                                      const numerics::IterativeOptions& opt) {
  const Grid3D& grid = structure.grid();
  const int nc = structure.conductor_count();
  CNTI_EXPECTS(nc >= 1, "need at least one conductor");

  // Permittivity per cell (conductor interiors don't matter: their nodes
  // are Dirichlet).
  std::vector<double> eps(grid.cell_count());
  for (std::size_t k = 0; k + 1 < grid.nz(); ++k) {
    for (std::size_t j = 0; j + 1 < grid.ny(); ++j) {
      for (std::size_t i = 0; i + 1 < grid.nx(); ++i) {
        eps[grid.cell_index(i, j, k)] = structure.cell_permittivity(i, j, k);
      }
    }
  }

  // Node -> conductor map.
  std::vector<int> cond_of(grid.node_count(), -1);
  std::vector<char> mask(grid.node_count(), 0);
  for (std::size_t k = 0; k < grid.nz(); ++k) {
    for (std::size_t j = 0; j < grid.ny(); ++j) {
      for (std::size_t i = 0; i < grid.nx(); ++i) {
        const int c = structure.node_conductor(i, j, k);
        const std::size_t n = grid.node_index(i, j, k);
        cond_of[n] = c;
        mask[n] = (c >= 0) ? 1 : 0;
      }
    }
  }

  CapacitanceResult out;
  out.matrix = numerics::MatrixD(static_cast<std::size_t>(nc),
                                 static_cast<std::size_t>(nc));
  for (int excited = 0; excited < nc; ++excited) {
    std::vector<double> value(grid.node_count(), 0.0);
    for (std::size_t n = 0; n < grid.node_count(); ++n) {
      if (cond_of[n] == excited) value[n] = 1.0;
    }
    const FieldSolution sol = solve_laplace(grid, eps, mask, value, opt);
    out.total_cg_iterations += sol.cg_iterations;

    // Charge on every conductor: sum of fluxes on edges leaving it.
    std::vector<double> charge(static_cast<std::size_t>(nc), 0.0);
    for_each_edge(grid, eps,
                  [&](std::size_t a, std::size_t b, double g) {
      const int ca = cond_of[a], cb = cond_of[b];
      if (ca >= 0 && cb < 0) {
        charge[static_cast<std::size_t>(ca)] +=
            g * (sol.potential[a] - sol.potential[b]);
      } else if (cb >= 0 && ca < 0) {
        charge[static_cast<std::size_t>(cb)] +=
            g * (sol.potential[b] - sol.potential[a]);
      }
    });
    for (int c = 0; c < nc; ++c) {
      out.matrix(static_cast<std::size_t>(c),
                 static_cast<std::size_t>(excited)) =
          charge[static_cast<std::size_t>(c)];
    }
  }
  return out;
}

ResistanceResult extract_resistance(const Structure& structure, int conductor,
                                    const Box& terminal_a,
                                    const Box& terminal_b,
                                    const numerics::IterativeOptions& opt) {
  const Grid3D& grid = structure.grid();

  std::vector<double> kappa(grid.cell_count(), 0.0);
  for (std::size_t k = 0; k + 1 < grid.nz(); ++k) {
    for (std::size_t j = 0; j + 1 < grid.ny(); ++j) {
      for (std::size_t i = 0; i + 1 < grid.nx(); ++i) {
        kappa[grid.cell_index(i, j, k)] =
            structure.cell_conductivity(conductor, i, j, k);
      }
    }
  }

  std::vector<char> mask(grid.node_count(), 0);
  std::vector<double> value(grid.node_count(), 0.0);
  std::size_t n_a = 0, n_b = 0;
  for (std::size_t k = 0; k < grid.nz(); ++k) {
    for (std::size_t j = 0; j < grid.ny(); ++j) {
      for (std::size_t i = 0; i < grid.nx(); ++i) {
        const std::size_t n = grid.node_index(i, j, k);
        const double x = grid.x(i), y = grid.y(j), z = grid.z(k);
        if (terminal_a.contains(x, y, z, 1e-15)) {
          mask[n] = 1;
          value[n] = 1.0;
          ++n_a;
        } else if (terminal_b.contains(x, y, z, 1e-15)) {
          mask[n] = 1;
          value[n] = 0.0;
          ++n_b;
        }
      }
    }
  }
  CNTI_EXPECTS(n_a > 0 && n_b > 0, "terminals select no grid nodes");

  const FieldSolution sol = solve_laplace(grid, kappa, mask, value, opt);

  ResistanceResult out;
  out.cg_iterations = sol.cg_iterations;

  // Terminal current: net flux out of the 1 V terminal.
  double current = 0.0;
  for_each_edge(grid, kappa, [&](std::size_t a, std::size_t b, double g) {
    const bool ta = mask[a] && value[a] > 0.5;
    const bool tb = mask[b] && value[b] > 0.5;
    if (ta && !tb) current += g * (sol.potential[a] - sol.potential[b]);
    if (tb && !ta) current += g * (sol.potential[b] - sol.potential[a]);
  });
  // Disconnected terminals leave only CG residual flux (~1e-15 A at 1 V).
  CNTI_EXPECTS(current > 1e-9, "no current path between terminals");
  out.terminal_current_a = current;
  out.resistance_ohm = 1.0 / current;

  // Per-cell current density from central differences of nodal potential.
  out.current_density.assign(grid.cell_count(), 0.0);
  const auto pot = [&](std::size_t i, std::size_t j, std::size_t k) {
    return sol.potential[grid.node_index(i, j, k)];
  };
  for (std::size_t k = 0; k + 1 < grid.nz(); ++k) {
    for (std::size_t j = 0; j + 1 < grid.ny(); ++j) {
      for (std::size_t i = 0; i + 1 < grid.nx(); ++i) {
        const double kap = kappa[grid.cell_index(i, j, k)];
        if (kap <= 0) continue;
        // Average the four edge gradients per axis across the cell.
        double ex = 0, ey = 0, ez = 0;
        for (int a = 0; a < 2; ++a) {
          for (int b = 0; b < 2; ++b) {
            const auto ja = j + static_cast<std::size_t>(a);
            const auto kb = k + static_cast<std::size_t>(b);
            ex += (pot(i + 1, ja, kb) - pot(i, ja, kb)) / grid.dx(i);
            const auto ia = i + static_cast<std::size_t>(a);
            ey += (pot(ia, j + 1, kb) - pot(ia, j, kb)) / grid.dy(j);
            ez += (pot(ia, ja, k + 1) - pot(ia, ja, k)) / grid.dz(k);
          }
        }
        ex *= 0.25;
        ey *= 0.25;
        ez *= 0.25;
        const double jmag = kap * std::sqrt(ex * ex + ey * ey + ez * ez);
        out.current_density[grid.cell_index(i, j, k)] = jmag;
        if (jmag > out.max_current_density) {
          out.max_current_density = jmag;
          out.hotspot_x = grid.cell_cx(i);
          out.hotspot_y = grid.cell_cy(j);
          out.hotspot_z = grid.cell_cz(k);
        }
      }
    }
  }
  return out;
}

}  // namespace cnti::tcad
