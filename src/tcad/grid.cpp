#include "tcad/grid.hpp"

namespace cnti::tcad {

namespace {
void check_axis(const std::vector<double>& a, const char* name) {
  CNTI_EXPECTS(a.size() >= 2, std::string(name) + " axis needs >= 2 nodes");
  for (std::size_t i = 1; i < a.size(); ++i) {
    CNTI_EXPECTS(a[i] > a[i - 1],
                 std::string(name) + " axis must be strictly increasing");
  }
}
}  // namespace

Grid3D::Grid3D(std::vector<double> x, std::vector<double> y,
               std::vector<double> z)
    : x_(std::move(x)), y_(std::move(y)), z_(std::move(z)) {
  check_axis(x_, "x");
  check_axis(y_, "y");
  check_axis(z_, "z");
}

Grid3D Grid3D::uniform(double lx, double ly, double lz, std::size_t nx,
                       std::size_t ny, std::size_t nz) {
  CNTI_EXPECTS(lx > 0 && ly > 0 && lz > 0, "domain must be positive");
  CNTI_EXPECTS(nx >= 2 && ny >= 2 && nz >= 2, "need >= 2 nodes per axis");
  const auto axis = [](double l, std::size_t n) {
    std::vector<double> a(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = l * static_cast<double>(i) / static_cast<double>(n - 1);
    }
    return a;
  };
  return Grid3D(axis(lx, nx), axis(ly, ny), axis(lz, nz));
}

}  // namespace cnti::tcad
