#include "obs/obs.hpp"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "common/error.hpp"
#include "common/json_sink.hpp"

namespace cnti::obs {

namespace detail {
std::atomic<int> g_trace_level{0};
std::atomic<int> g_timing_level{0};
}  // namespace detail

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

// Capacity limits. Cells back counters (1 each) and histograms
// (2 + kHistogramBuckets each); at 4096 cells a shard costs 32 KiB per
// thread that touches a metric. Gauges are global singles, not sharded.
constexpr std::size_t kMaxCells = 4096;
constexpr std::size_t kMaxGauges = 256;
// Per-thread trace ring: power of two, ~1.3 MiB heap per traced thread,
// allocated only while a trace sink is active on that thread.
constexpr std::uint64_t kRingCapacity = 1ull << 15;

/// One thread's private metric cells. All atomics so a concurrent snapshot
/// is race-free; the owner only ever does relaxed fetch-adds.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCells> cells{};
};

/// Trace ring slot guarded by a per-slot sequence number: the writer
/// brackets its field stores with seq = 2i+1 (write in progress) and
/// seq = 2i+2 (slot i stable); a drain accepts a slot only when it reads
/// the same stable value before and after copying the fields.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> tier{nullptr};
  std::atomic<std::uint64_t> t0{0};
  std::atomic<std::uint64_t> dur{0};
};

/// Single-writer (owning thread) / single-drainer (registry mutex holder)
/// ring. `head` is a monotonic write count; `drained` is the reader floor.
struct Ring {
  explicit Ring(std::uint32_t tid_value) : tid(tid_value) {}
  const std::uint32_t tid;
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> drained{0};
  std::atomic<bool> retired{false};
  std::array<Slot, kRingCapacity> slots{};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricInfo {
  MetricKind kind;
  std::size_t index;  // cell start (counter/histogram) or gauge slot
};

/// Process-wide registry state. Leaked deliberately: the CNTI_TRACE atexit
/// writer and late-exiting thread destructors must be able to use it at
/// any point during shutdown.
struct Global {
  std::mutex mu;
  std::map<std::string, MetricInfo, std::less<>> metrics;
  std::size_t next_cell = 0;
  std::size_t next_gauge = 0;
  std::array<std::uint64_t, kMaxCells> retired_cells{};
  std::vector<Shard*> live_shards;
  std::vector<Ring*> rings;  // live + retired, drained under mu
  std::array<std::atomic<std::uint64_t>, kMaxGauges> gauges{};
  std::vector<std::unique_ptr<std::string>> interned;
  std::map<std::string, const char*, std::less<>> intern_index;
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> epoch_ns{0};
  std::uint32_t next_tid = 1;
  std::string env_path;
};

Global& g() {
  static Global* inst = new Global;
  return *inst;
}

/// Per-thread handles into the global structures. The destructor folds the
/// shard into `retired_cells` (the Accumulator merge discipline: private
/// accumulation, explicit fold) and retires the ring with its undrained
/// events intact so a later drain still sees them.
struct ThreadState {
  Shard* shard = nullptr;
  Ring* ring = nullptr;
  ~ThreadState() {
    Global& gl = g();
    const std::lock_guard<std::mutex> lock(gl.mu);
    if (shard != nullptr) {
      for (std::size_t i = 0; i < kMaxCells; ++i) {
        gl.retired_cells[i] += shard->cells[i].load(std::memory_order_relaxed);
      }
      std::erase(gl.live_shards, shard);
      delete shard;
      shard = nullptr;
    }
    if (ring != nullptr) {
      ring->retired.store(true, std::memory_order_relaxed);
      ring = nullptr;
    }
  }
};

thread_local ThreadState t_state;

Shard& my_shard() {
  if (t_state.shard == nullptr) {
    auto* shard = new Shard();
    Global& gl = g();
    const std::lock_guard<std::mutex> lock(gl.mu);
    gl.live_shards.push_back(shard);
    t_state.shard = shard;
  }
  return *t_state.shard;
}

Ring& my_ring() {
  if (t_state.ring == nullptr) {
    Global& gl = g();
    const std::lock_guard<std::mutex> lock(gl.mu);
    auto* ring = new Ring(gl.next_tid++);
    gl.rings.push_back(ring);
    t_state.ring = ring;
  }
  return *t_state.ring;
}

void ring_write(Ring& ring, const char* name, const char* tier,
                std::uint64_t t0, std::uint64_t dur) {
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[h % kRingCapacity];
  slot.seq.store(2 * h + 1, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.tier.store(tier, std::memory_order_relaxed);
  slot.t0.store(t0, std::memory_order_relaxed);
  slot.dur.store(dur, std::memory_order_relaxed);
  slot.seq.store(2 * h + 2, std::memory_order_release);
  ring.head.store(h + 1, std::memory_order_release);
}

void drain_ring(Ring& ring, std::vector<TraceEvent>* out,
                std::uint64_t* dropped) {
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  std::uint64_t lo = ring.drained.load(std::memory_order_relaxed);
  if (head > kRingCapacity && lo < head - kRingCapacity) {
    *dropped += (head - kRingCapacity) - lo;
    lo = head - kRingCapacity;
  }
  if (out != nullptr) {
    for (std::uint64_t i = lo; i < head; ++i) {
      const Slot& slot = ring.slots[i % kRingCapacity];
      const std::uint64_t stable = 2 * i + 2;
      if (slot.seq.load(std::memory_order_acquire) != stable) continue;
      TraceEvent ev;
      ev.name = slot.name.load(std::memory_order_relaxed);
      ev.tier = slot.tier.load(std::memory_order_relaxed);
      ev.t0_ns = slot.t0.load(std::memory_order_relaxed);
      ev.dur_ns = slot.dur.load(std::memory_order_relaxed);
      ev.tid = ring.tid;
      if (slot.seq.load(std::memory_order_relaxed) != stable) continue;
      out->push_back(ev);
    }
  }
  ring.drained.store(head, std::memory_order_relaxed);
}

/// Drain every ring (collecting into a sorted list when `collect`), delete
/// rings whose owner thread has exited, and fold the drop count.
std::vector<TraceEvent> drain_all(bool collect) {
  Global& gl = g();
  const std::lock_guard<std::mutex> lock(gl.mu);
  std::vector<TraceEvent> out;
  std::uint64_t dropped_local = 0;
  for (auto it = gl.rings.begin(); it != gl.rings.end();) {
    Ring* ring = *it;
    drain_ring(*ring, collect ? &out : nullptr, &dropped_local);
    if (ring->retired.load(std::memory_order_relaxed)) {
      delete ring;
      it = gl.rings.erase(it);
    } else {
      ++it;
    }
  }
  gl.dropped.fetch_add(dropped_local, std::memory_order_relaxed);
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
              return a.tid < b.tid;
            });
  return out;
}

MetricInfo register_metric(std::string_view name, MetricKind kind,
                           std::size_t cells) {
  Global& gl = g();
  const std::lock_guard<std::mutex> lock(gl.mu);
  const auto it = gl.metrics.find(name);
  if (it != gl.metrics.end()) {
    CNTI_EXPECTS(it->second.kind == kind,
                 "obs: metric name re-registered with a different kind");
    return it->second;
  }
  std::size_t index = 0;
  if (kind == MetricKind::kGauge) {
    CNTI_EXPECTS(gl.next_gauge < kMaxGauges, "obs: gauge capacity exhausted");
    index = gl.next_gauge++;
  } else {
    CNTI_EXPECTS(gl.next_cell + cells <= kMaxCells,
                 "obs: metric cell capacity exhausted");
    index = gl.next_cell;
    gl.next_cell += cells;
  }
  gl.metrics.emplace(std::string(name), MetricInfo{kind, index});
  return MetricInfo{kind, index};
}

/// Format nanoseconds as a microsecond decimal ("12.345") — exact, locale-
/// independent, and stable across platforms (no double rounding).
std::string format_us(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  return buf;
}

/// `cnti.solver.solve_ns` -> `cnti_solver_solve_ns` (Prometheus charset).
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------------

void Counter::add(std::uint64_t n) const {
  if (cell_ == SIZE_MAX) return;
  my_shard().cells[cell_].fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  if (cell_ == SIZE_MAX) return 0;
  Global& gl = g();
  const std::lock_guard<std::mutex> lock(gl.mu);
  std::uint64_t total = gl.retired_cells[cell_];
  for (const Shard* shard : gl.live_shards) {
    total += shard->cells[cell_].load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::set(double v) const {
  if (slot_ == SIZE_MAX) return;
  g().gauges[slot_].store(std::bit_cast<std::uint64_t>(v),
                          std::memory_order_relaxed);
}

double Gauge::value() const {
  if (slot_ == SIZE_MAX) return 0.0;
  return std::bit_cast<double>(
      g().gauges[slot_].load(std::memory_order_relaxed));
}

void Histogram::record_ns(std::uint64_t ns) const {
  if (cell0_ == SIZE_MAX) return;
  Shard& shard = my_shard();
  shard.cells[cell0_].fetch_add(1, std::memory_order_relaxed);
  shard.cells[cell0_ + 1].fetch_add(ns, std::memory_order_relaxed);
  const std::size_t bucket = std::min<std::size_t>(
      static_cast<std::size_t>(std::bit_width(ns)), kHistogramBuckets - 1);
  shard.cells[cell0_ + 2 + bucket].fetch_add(1, std::memory_order_relaxed);
}

Counter counter(std::string_view name) {
  return Counter(register_metric(name, MetricKind::kCounter, 1).index);
}

Gauge gauge(std::string_view name) {
  return Gauge(register_metric(name, MetricKind::kGauge, 0).index);
}

Histogram histogram(std::string_view name) {
  return Histogram(
      register_metric(name, MetricKind::kHistogram, 2 + kHistogramBuckets)
          .index);
}

const char* intern_name(std::string_view name) {
  Global& gl = g();
  const std::lock_guard<std::mutex> lock(gl.mu);
  const auto it = gl.intern_index.find(name);
  if (it != gl.intern_index.end()) return it->second;
  gl.interned.push_back(std::make_unique<std::string>(name));
  const char* stable = gl.interned.back()->c_str();
  gl.intern_index.emplace(std::string(name), stable);
  return stable;
}

void set_timing_enabled(bool enabled) {
  detail::g_timing_level.fetch_add(enabled ? 1 : -1,
                                   std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Snapshot + renderers
// ---------------------------------------------------------------------------

MetricsSnapshot metrics_snapshot() {
  Global& gl = g();
  const std::lock_guard<std::mutex> lock(gl.mu);
  std::array<std::uint64_t, kMaxCells> folded = gl.retired_cells;
  for (const Shard* shard : gl.live_shards) {
    for (std::size_t i = 0; i < gl.next_cell; ++i) {
      folded[i] += shard->cells[i].load(std::memory_order_relaxed);
    }
  }
  MetricsSnapshot snap;
  for (const auto& [name, info] : gl.metrics) {
    switch (info.kind) {
      case MetricKind::kCounter:
        snap.counters[name] = folded[info.index];
        break;
      case MetricKind::kGauge:
        snap.gauges[name] = std::bit_cast<double>(
            gl.gauges[info.index].load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        HistogramSnapshot h;
        h.count = folded[info.index];
        h.sum_ns = folded[info.index + 1];
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          h.buckets[b] = folded[info.index + 2 + b];
        }
        snap.histograms[name] = h;
        break;
      }
    }
  }
  return snap;
}

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap) {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << json_number(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":{\"count\":" << h.count
        << ",\"sum_ns\":" << h.sum_ns << ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out << ",";
      first_bucket = false;
      out << "[" << b << "," << h.buckets[b] << "]";
    }
    out << "]}";
  }
  out << "}}";
}

void write_metrics_prometheus(std::ostream& out, const MetricsSnapshot& snap) {
  for (const auto& [name, value] : snap.counters) {
    const std::string pn = prometheus_name(name);
    out << "# TYPE " << pn << " counter\n" << pn << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string pn = prometheus_name(name);
    out << "# TYPE " << pn << " gauge\n"
        << pn << " " << json_number(value) << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string pn = prometheus_name(name);
    out << "# TYPE " << pn << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      // Bucket b holds ns with bit_width == b, so its upper bound is
      // 2^b - 1 ns; expose the bound in seconds per Prometheus convention.
      const double le_s = (std::ldexp(1.0, static_cast<int>(b)) - 1.0) * 1e-9;
      out << pn << "_bucket{le=\"" << json_number(le_s) << "\"} " << cumulative
          << "\n";
    }
    out << pn << "_bucket{le=\"+Inf\"} " << h.count << "\n"
        << pn << "_sum " << json_number(static_cast<double>(h.sum_ns) * 1e-9)
        << "\n"
        << pn << "_count " << h.count << "\n";
  }
}

void reset_metrics_values_for_test() {
  Global& gl = g();
  const std::lock_guard<std::mutex> lock(gl.mu);
  gl.retired_cells.fill(0);
  for (Shard* shard : gl.live_shards) {
    for (std::size_t i = 0; i < kMaxCells; ++i) {
      shard->cells[i].store(0, std::memory_order_relaxed);
    }
  }
  for (std::size_t i = 0; i < kMaxGauges; ++i) {
    gl.gauges[i].store(std::bit_cast<std::uint64_t>(0.0),
                       std::memory_order_relaxed);
  }
}

std::uint64_t dropped_events() {
  return g().dropped.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

std::uint64_t span_start() { return timing_active() ? now_ns() : 0; }

void span_end(const char* name, const char* tier, std::uint64_t t0,
              Histogram hist) {
  if (t0 == 0) return;
  const std::uint64_t t1 = now_ns();
  const std::uint64_t dur = t1 > t0 ? t1 - t0 : 0;
  if (hist.valid()) hist.record_ns(dur);
  if (trace_active()) ring_write(my_ring(), name, tier, t0, dur);
}

// ---------------------------------------------------------------------------
// Trace sessions
// ---------------------------------------------------------------------------

TraceSession::TraceSession() : epoch_ns_(now_ns()) {
  if (detail::g_trace_level.fetch_add(1, std::memory_order_relaxed) == 0) {
    g().epoch_ns.store(epoch_ns_, std::memory_order_relaxed);
    drain_all(/*collect=*/false);  // discard events from earlier sessions
  }
}

TraceSession::~TraceSession() {
  if (!stopped_) stop();
}

std::vector<TraceEvent> TraceSession::stop() {
  if (stopped_) return {};
  stopped_ = true;
  detail::g_trace_level.fetch_sub(1, std::memory_order_relaxed);
  return drain_all(/*collect=*/true);
}

void TraceSession::write_json(std::ostream& out, bool include_metrics) {
  const std::vector<TraceEvent> events = stop();
  write_trace_json(out, events, epoch_ns_, include_metrics);
}

void write_trace_json(std::ostream& out, const std::vector<TraceEvent>& events,
                      std::uint64_t epoch_ns, bool include_metrics) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (ev.name == nullptr || ev.tier == nullptr) continue;
    if (!first) out << ",";
    first = false;
    const std::uint64_t rel = ev.t0_ns > epoch_ns ? ev.t0_ns - epoch_ns : 0;
    out << "\n{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
        << json_escape(ev.tier) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
        << ev.tid << ",\"ts\":" << format_us(rel)
        << ",\"dur\":" << format_us(ev.dur_ns) << "}";
  }
  out << "\n]";
  if (include_metrics) {
    out << ",\"metrics\":";
    write_metrics_json(out, metrics_snapshot());
  }
  out << "}\n";
}

// ---------------------------------------------------------------------------
// CNTI_TRACE env knob: enable at static-init time, write at process exit.
// ---------------------------------------------------------------------------

namespace {

void write_env_trace_at_exit() {
  const std::vector<TraceEvent> events = drain_all(/*collect=*/true);
  std::string path = g().env_path;
  const std::size_t pos = path.find("%p");
  if (pos != std::string::npos) {
    path.replace(pos, 2, std::to_string(::getpid()));
  }
  std::ofstream out(path);
  if (!out) return;
  write_trace_json(out, events, g().epoch_ns.load(std::memory_order_relaxed),
                   /*include_metrics=*/true);
}

struct EnvTraceSession {
  EnvTraceSession() {
    const char* path = std::getenv("CNTI_TRACE");
    if (path == nullptr || *path == '\0') return;
    Global& gl = g();
    gl.env_path = path;
    gl.epoch_ns.store(now_ns(), std::memory_order_relaxed);
    detail::g_trace_level.fetch_add(1, std::memory_order_relaxed);
    std::atexit(&write_env_trace_at_exit);
  }
};

const EnvTraceSession g_env_trace_session;

}  // namespace

}  // namespace cnti::obs
