// Observability spine: scoped spans drained into Chrome trace-event /
// Perfetto-compatible JSON, plus a process-wide metrics registry of named
// counters, gauges, and log-bucketed latency histograms with mergeable
// per-thread shards (same merge discipline as numerics::Accumulator: each
// thread accumulates privately, a snapshot folds the shards).
//
// Design contract (see docs/OBSERVABILITY.md):
//  - Bit-effect-free. Instrumentation never touches RNG streams, never
//    changes iteration order, and never perturbs a cached value; reading a
//    monotonic clock is its only observable action. The byte-identity
//    suites run with tracing enabled to prove it.
//  - Cheap when off. A disabled span site costs one relaxed atomic load
//    and a branch — no clock read, no allocation. Counters stay live at
//    all times (one relaxed add into a thread-local cell) because they are
//    the substance of the `metrics` wire verb.
//  - TSan-clean by construction. Every shared cell is a std::atomic; trace
//    ring slots carry a per-slot sequence number (seqlock) so a drain on
//    another thread never observes a torn event.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cnti::obs {

/// Number of power-of-two latency buckets per histogram. Bucket `i` counts
/// samples with `bit_width(ns) == i`, i.e. ns in [2^(i-1), 2^i); bucket 0
/// is exactly ns == 0 and the last bucket absorbs everything wider.
inline constexpr std::size_t kHistogramBuckets = 64;

namespace detail {
// Enable levels are counters, not booleans, so an env-driven session and a
// programmatic TraceSession can coexist (each holds one reference).
extern std::atomic<int> g_trace_level;
extern std::atomic<int> g_timing_level;
}  // namespace detail

/// True while at least one trace sink (CNTI_TRACE or a TraceSession) is
/// active: spans write ring events and latency histograms.
inline bool trace_active() {
  return detail::g_trace_level.load(std::memory_order_relaxed) > 0;
}

/// True while span timings are wanted at all — either a trace sink is
/// active or timing-only collection (latency histograms without the ring)
/// was requested, e.g. by the long-running service daemon.
inline bool timing_active() {
  return detail::g_timing_level.load(std::memory_order_relaxed) > 0 ||
         trace_active();
}

/// Monotonic clock in nanoseconds (steady_clock). Never consulted on the
/// disabled fast path.
std::uint64_t now_ns();

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Monotonic counter handle. Cheap to copy; a default-constructed handle is
/// an inert no-op (useful before registration). `add` is a relaxed
/// fetch-add into the calling thread's shard cell.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;
  /// Folded value across retired shards + all live threads.
  std::uint64_t value() const;

 private:
  friend Counter counter(std::string_view);
  explicit Counter(std::size_t cell) : cell_(cell) {}
  std::size_t cell_ = SIZE_MAX;
};

/// Last-write-wins gauge (a single global atomic double). Not sharded:
/// gauges are not summable across threads.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const;
  double value() const;

 private:
  friend Gauge gauge(std::string_view);
  explicit Gauge(std::size_t slot) : slot_(slot) {}
  std::size_t slot_ = SIZE_MAX;
};

/// Log-bucketed latency histogram handle (count, sum_ns, and
/// kHistogramBuckets power-of-two buckets, all sharded per thread).
/// Merging shards is an element-wise add, so merged == single-pass holds
/// exactly — the property test_obs pins.
class Histogram {
 public:
  Histogram() = default;
  void record_ns(std::uint64_t ns) const;
  bool valid() const { return cell0_ != SIZE_MAX; }

 private:
  friend Histogram histogram(std::string_view);
  friend void span_end(const char*, const char*, std::uint64_t, Histogram);
  explicit Histogram(std::size_t cell0) : cell0_(cell0) {}
  std::size_t cell0_ = SIZE_MAX;
};

/// Register-or-look-up by name. Names follow `cnti.<tier>.<name>`; a name
/// maps to exactly one kind (re-registering under a different kind throws
/// PreconditionError). Handles are valid for the process lifetime.
Counter counter(std::string_view name);
Gauge gauge(std::string_view name);
Histogram histogram(std::string_view name);

/// Intern a dynamically built span name (e.g. "stage.bus-rom") into
/// process-lifetime storage so ring events can hold a stable const char*.
const char* intern_name(std::string_view name);

/// Timing-only collection (latency histograms without a trace ring); used
/// by the service daemon, which wants live latency data at all times.
void set_timing_enabled(bool enabled);

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Fold retired shards + every live thread's cells into one snapshot.
MetricsSnapshot metrics_snapshot();

/// Strict-JSON rendering of a snapshot:
///   {"counters":{...},"gauges":{...},
///    "histograms":{name:{"count":..,"sum_ns":..,"buckets":[[i,n],...]}}}
/// Buckets are sparse [index,count] pairs; parseable by service::parse_json.
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap);

/// Prometheus text exposition (dots become underscores; histograms render
/// cumulative `_bucket{le="<seconds>"}` series plus `_sum`/`_count`).
void write_metrics_prometheus(std::ostream& out, const MetricsSnapshot& snap);

/// Zero every metric value (registrations survive). Test-only: races with
/// concurrent writers are benign (all cells are atomics) but values written
/// before the reset on other threads may be lost.
void reset_metrics_values_for_test();

// ---------------------------------------------------------------------------
// Spans + trace sessions
// ---------------------------------------------------------------------------

/// One completed span drained from a thread ring. `name`/`tier` point at
/// string literals or interned storage and never dangle.
struct TraceEvent {
  const char* name = nullptr;
  const char* tier = nullptr;
  std::uint64_t t0_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
};

/// Start a span clock: returns now_ns() when timing is active, 0 otherwise.
/// The 0/now split keeps the disabled path free of clock reads.
std::uint64_t span_start();

/// Finish a span started at `t0` (no-op when t0 == 0): records a ring event
/// while tracing and feeds `hist` (if valid) while timing. `name` and
/// `tier` must be string literals or intern_name() results.
void span_end(const char* name, const char* tier, std::uint64_t t0,
              Histogram hist = {});

/// RAII span. Usage:
///   obs::ObsSpan span("prima.reduce", "rom", reduce_hist);
class ObsSpan {
 public:
  explicit ObsSpan(const char* name, const char* tier, Histogram hist = {})
      : name_(name), tier_(tier), hist_(hist), t0_(span_start()) {}
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;
  ~ObsSpan() {
    if (t0_ != 0) span_end(name_, tier_, t0_, hist_);
  }

 private:
  const char* name_;
  const char* tier_;
  Histogram hist_;
  std::uint64_t t0_;
};

/// Programmatic trace capture. Construction enables tracing (stacking on
/// top of an env session if one is active); stop() disables this session's
/// reference and drains every thread ring — including rings retired by
/// exited threads — into a sorted event list.
class TraceSession {
 public:
  TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
  ~TraceSession();

  /// Disable + drain. Idempotent; the second call returns an empty list.
  std::vector<TraceEvent> stop();

  /// stop() + write_trace_json() in one step.
  void write_json(std::ostream& out, bool include_metrics = true);

 private:
  bool stopped_ = false;
  std::uint64_t epoch_ns_ = 0;
};

/// Render drained events as a Chrome trace-event / Perfetto JSON object:
///   {"displayTimeUnit":"ms","traceEvents":[{"name","cat","ph":"X","pid",
///    "tid","ts","dur"},...],"metrics":{...}}
/// ts/dur are microseconds relative to `epoch_ns`. The output passes the
/// strict service::parse_json reader (no duplicate keys, bounded depth).
void write_trace_json(std::ostream& out, const std::vector<TraceEvent>& events,
                      std::uint64_t epoch_ns, bool include_metrics);

/// Events that fell off a ring before a drain (ring capacity exceeded).
/// Exposed so trace consumers can tell "quiet" from "lossy".
std::uint64_t dropped_events();

}  // namespace cnti::obs
