#include "process/cvd.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/units.hpp"
#include "numerics/thread_pool.hpp"

namespace cnti::process {

std::string to_string(Catalyst c) {
  return c == Catalyst::kFe ? "Fe" : "Co";
}

namespace {

/// Catalyst activity vs. temperature: logistic with a catalyst-specific
/// onset. Co stays active at lower temperature than Fe (Sec. II.B showed
/// good growth on Co shifted into the CMOS-compatible range).
double catalyst_activity(Catalyst c, double t_c) {
  const double t50 = (c == Catalyst::kCo) ? 375.0 : 425.0;
  const double width = 25.0;
  return 1.0 / (1.0 + std::exp(-(t_c - t50) / width));
}

}  // namespace

GrowthQuality evaluate_recipe(const GrowthRecipe& recipe) {
  CNTI_EXPECTS(recipe.temperature_c > 200.0 && recipe.temperature_c < 1100.0,
               "growth temperature out of CVD range");
  CNTI_EXPECTS(recipe.catalyst_thickness_nm > 0.2 &&
                   recipe.catalyst_thickness_nm < 10.0,
               "catalyst thickness out of range");
  CNTI_EXPECTS(recipe.growth_time_min > 0, "growth time must be positive");

  GrowthQuality q;
  const double t_k = units::celsius_to_kelvin(recipe.temperature_c);
  const double t_ref = units::celsius_to_kelvin(450.0);
  const double kb_ev = phys::kBoltzmann / phys::kElectronVolt;

  // Diameter scales with the dewetted particle size: ~7.5x the film
  // thickness at 1 nm (paper: 1 nm film -> ~7.5 nm, 4-5 wall MWCNT).
  q.mean_diameter_nm = 7.5 * recipe.catalyst_thickness_nm;
  // Hotter growth -> better-defined particles -> tighter distribution.
  q.diameter_sigma_log = std::clamp(0.25 - 0.0002 * (t_k - 600.0), 0.05,
                                    0.35);
  q.mean_walls = std::clamp(q.mean_diameter_nm * 0.6, 2.0, 20.0);

  // Arrhenius growth rate (Ea ~ 1.2 eV), 1 um/min at the 450 C reference.
  const double ea_growth = 1.2;
  q.growth_rate_um_per_min =
      1.0 * std::exp(-ea_growth / kb_ev * (1.0 / t_k - 1.0 / t_ref)) *
      catalyst_activity(recipe.catalyst, recipe.temperature_c);
  q.expected_length_um = q.growth_rate_um_per_min * recipe.growth_time_min;

  // Defect healing is thermally activated (Ea ~ 0.5 eV): low-temperature
  // CVD leaves a short defect spacing (paper Sec. II.A: defects from
  // low-temperature growth versus arc discharge).
  const double ea_defect = 0.5;
  q.defect_spacing_um =
      1.0 * std::exp(-ea_defect / kb_ev * (1.0 / t_k - 1.0 / t_ref));

  // Tortuosity and density improve with temperature (conclusion: "reduce
  // the CNT tortuosity and increase their packing density").
  q.tortuosity = std::clamp(1.6 - 0.0005 * (t_k - 600.0), 1.05, 1.8);
  q.areal_density_per_nm2 =
      0.08 * catalyst_activity(recipe.catalyst, recipe.temperature_c);

  // Via fill: needs enough activity and enough length to reach the top.
  const double activity =
      catalyst_activity(recipe.catalyst, recipe.temperature_c);
  q.via_fill_yield = std::clamp(activity * (q.expected_length_um > 0.1
                                                ? 0.97
                                                : 0.0),
                                0.0, 0.97);
  q.cmos_compatible_temperature = recipe.temperature_c <= 400.0;
  return q;
}

GrownTube sample_tube(const GrowthQuality& quality, numerics::Rng& rng) {
  GrownTube t;
  t.diameter_nm =
      rng.lognormal_median(quality.mean_diameter_nm,
                           quality.diameter_sigma_log);
  t.diameter_nm = std::clamp(t.diameter_nm, 1.0, 50.0);
  const int walls = static_cast<int>(std::round(
      rng.normal(quality.mean_walls, 0.7)));
  t.walls = std::max(1, walls);
  // Exponentially distributed defect gaps around the mean spacing.
  t.defect_spacing_um =
      std::max(0.01, rng.exponential(1.0 / quality.defect_spacing_um));
  t.length_um = std::max(0.05, rng.normal(quality.expected_length_um,
                                          0.15 * quality.expected_length_um));
  t.via_filled = rng.bernoulli(quality.via_fill_yield);
  return t;
}

std::vector<GrownTube> sample_tubes(const GrowthQuality& quality,
                                    std::size_t count,
                                    const numerics::Rng& base,
                                    int threads) {
  CNTI_EXPECTS(threads >= 0, "threads must be >= 0");
  std::vector<GrownTube> tubes(count);
  numerics::parallel_chunks(
      count, 256,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          numerics::Rng rng = base.fork(i);
          tubes[i] = sample_tube(quality, rng);
        }
      },
      threads);
  return tubes;
}

}  // namespace cnti::process
