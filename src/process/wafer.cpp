#include "process/wafer.hpp"

#include <cmath>
#include <cstdint>

#include "numerics/thread_pool.hpp"

namespace cnti::process {

WaferMap::WaferMap(const WaferSpec& spec, const GrowthRecipe& nominal,
                   const numerics::Rng& rng, int threads) {
  CNTI_EXPECTS(spec.diameter_mm > 0 && spec.die_pitch_mm > 0,
               "wafer geometry must be positive");
  CNTI_EXPECTS(threads >= 0, "threads must be >= 0");
  const double r_max = spec.diameter_mm / 2.0 - spec.edge_exclusion_mm;
  const double pitch = spec.die_pitch_mm;
  const int n_half = static_cast<int>(std::ceil(r_max / pitch));
  const int row = 2 * n_half + 1;

  // Phase 1 (serial, cheap): enumerate the die grid and record each kept
  // die's grid-cell index — the RNG stream id used in phase 2.
  std::vector<std::uint64_t> cells;
  for (int iy = -n_half; iy <= n_half; ++iy) {
    for (int ix = -n_half; ix <= n_half; ++ix) {
      Die die;
      die.x_mm = ix * pitch;
      die.y_mm = iy * pitch;
      die.radius_mm = std::hypot(die.x_mm, die.y_mm);
      if (die.radius_mm > r_max) continue;
      cells.push_back(static_cast<std::uint64_t>(iy + n_half) * row +
                      static_cast<std::uint64_t>(ix + n_half));
      dies_.push_back(die);
    }
  }
  CNTI_EXPECTS(!dies_.empty(), "no dies fit on the wafer");

  // Phase 2 (parallel): perturb each die's recipe from its own forked
  // stream and evaluate the growth model. Each die writes only its own
  // slot, so any grain / thread count yields the same wafer.
  numerics::parallel_chunks(
      dies_.size(), 16,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Die& die = dies_[i];
          numerics::Rng die_rng = rng.fork(cells[i]);
          const double rho = die.radius_mm / (spec.diameter_mm / 2.0);
          die.recipe = nominal;
          die.recipe.temperature_c +=
              -spec.radial_temperature_droop_c * rho * rho +
              die_rng.normal(0.0, spec.temperature_noise_c);
          die.recipe.catalyst_thickness_nm *=
              1.0 + spec.radial_catalyst_skew * rho * rho;
          die.quality = evaluate_recipe(die.recipe);
        }
      },
      threads);
}

numerics::Summary WaferMap::summarize(
    double (*metric)(const GrowthQuality&)) const {
  std::vector<double> values;
  values.reserve(dies_.size());
  for (const auto& d : dies_) values.push_back(metric(d.quality));
  return numerics::summarize(values);
}

double WaferMap::diameter_uniformity() const {
  const auto s = summarize(
      [](const GrowthQuality& q) { return q.mean_diameter_nm; });
  return (s.max - s.min) / s.mean;
}

double WaferMap::yield(double min_growth_rate_um_min) const {
  int good = 0;
  for (const auto& d : dies_) {
    if (d.quality.growth_rate_um_per_min >= min_growth_rate_um_min) {
      ++good;
    }
  }
  return static_cast<double>(good) / static_cast<double>(dies_.size());
}

}  // namespace cnti::process
