#include "process/chirality_stats.hpp"

#include <cmath>
#include <vector>

#include "common/constants.hpp"

namespace cnti::process {

atomistic::Chirality sample_chirality(double diameter_nm,
                                      numerics::Rng& rng) {
  CNTI_EXPECTS(diameter_nm >= 0.4, "diameter below smallest stable tube");
  // Enumerate canonical (n, m) with diameter within 5% of the target and
  // pick uniformly; widen the window if the shell diameter is awkward.
  for (double window = 0.05; window < 0.5; window *= 2.0) {
    std::vector<atomistic::Chirality> candidates;
    const int n_max = static_cast<int>(diameter_nm / 0.0783) + 2;
    for (int n = 1; n <= n_max; ++n) {
      for (int m = 0; m <= n; ++m) {
        const atomistic::Chirality ch(n, m);
        const double d = ch.diameter() * 1e9;
        if (std::abs(d - diameter_nm) < window * diameter_nm) {
          candidates.push_back(ch);
        }
      }
    }
    if (!candidates.empty()) {
      const int pick = rng.uniform_int(0,
                                       static_cast<int>(candidates.size()) -
                                           1);
      return candidates[static_cast<std::size_t>(pick)];
    }
  }
  throw NumericalError("no chirality found near requested diameter");
}

double metallic_probability() {
  return 1.0 - cntconst::kSemiconductingFraction;
}

double sampled_metallic_fraction(double diameter_nm, int samples,
                                 numerics::Rng& rng) {
  CNTI_EXPECTS(samples > 0, "need at least one sample");
  int metallic = 0;
  for (int i = 0; i < samples; ++i) {
    if (sample_chirality(diameter_nm, rng).is_metallic()) ++metallic;
  }
  return static_cast<double>(metallic) / samples;
}

}  // namespace cnti::process
