// Chirality statistics of CVD growth: without chirality control, 2/3 of
// tubes/shells are semiconducting (paper Sec. II.A). Samples (n, m) pairs
// uniformly over the chiral angle at a target diameter and classifies them.
#pragma once

#include "atomistic/swcnt_geometry.hpp"
#include "numerics/rng.hpp"

namespace cnti::process {

/// Samples a chirality with diameter close to `diameter_nm` (within the
/// lattice discreteness), uniform over canonical (n, m) pairs near it.
atomistic::Chirality sample_chirality(double diameter_nm,
                                      numerics::Rng& rng);

/// Probability that a randomly grown shell is metallic (~1/3).
double metallic_probability();

/// Fraction of metallic tubes in `samples` random chiralities at the given
/// diameter — statistical check used in tests and the variability MC.
double sampled_metallic_fraction(double diameter_nm, int samples,
                                 numerics::Rng& rng);

}  // namespace cnti::process
