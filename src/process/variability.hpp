// Monte Carlo variability analysis of CNT interconnect resistance: samples
// growth outcomes (diameter, walls, defects), per-shell chirality (1/3
// metallic) and contact resistance, then builds the electrical model. The
// paper's central variability claim — doping counteracts chirality- and
// defect-induced resistance spread (Sec. II.A, III.C) — is what this
// module quantifies.
#pragma once

#include "atomistic/doping.hpp"
#include "numerics/stats.hpp"
#include "process/cvd.hpp"

namespace cnti::process {

struct VariabilityConfig {
  GrowthRecipe recipe;
  int samples = 2000;
  double length_um = 1.0;
  /// Doping: concentration 0 = pristine.
  atomistic::DopantSpecies dopant =
      atomistic::DopantSpecies::kIodineInternal;
  double dopant_concentration = 0.0;
  /// Contact resistance distribution (lognormal, both ends combined).
  double contact_median_kohm = 50.0;
  double contact_sigma_log = 0.5;
  unsigned seed = 1234;
  /// Execution width: 0 = CNTI_THREADS env / hardware default, otherwise
  /// a private pool of exactly this many threads. Sample i always draws
  /// from the forked stream (seed, i), so the statistics are bit-identical
  /// at every thread count (see docs/PARALLELISM.md).
  int threads = 0;
};

struct VariabilityResult {
  numerics::Summary resistance_kohm;
  /// Fraction of devices whose resistance exceeds 3x the median (failures
  /// in a delay-binned design).
  double tail_fraction = 0.0;
  /// Fraction of tubes with zero conducting shells (open devices, counted
  /// separately and excluded from the resistance summary).
  double open_fraction = 0.0;
};

/// Resistance of one sampled MWCNT device of length `length_um` [kOhm];
/// negative when the device has no conducting shell (pristine all-
/// semiconducting case).
double sample_device_resistance_kohm(const GrowthQuality& quality,
                                     double length_um,
                                     double channels_if_doped,
                                     double contact_kohm,
                                     numerics::Rng& rng);

VariabilityResult run_resistance_mc(const VariabilityConfig& config);

}  // namespace cnti::process
