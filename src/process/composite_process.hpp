// Cu impregnation of CNT bundles (paper Sec. II.C): electroless deposition
// (ELD — low technical effort, many chemicals, CMOS-compatibility concerns)
// versus electrochemical deposition (ECD — needs a conductive substrate,
// more control knobs, demonstrated void-free fill of HA-CNT bundles).
#pragma once

#include <string>

#include "common/error.hpp"
#include "materials/composite.hpp"

namespace cnti::process {

enum class FillMethod { kEld, kEcd };
enum class CntAlignment { kVertical, kHorizontal };

std::string to_string(FillMethod m);

struct FillRecipe {
  FillMethod method = FillMethod::kEcd;
  CntAlignment alignment = CntAlignment::kVertical;
  /// Bath/chemistry quality, 0..1 (additive concentrations, pH control).
  double bath_quality = 0.8;
  /// ECD only: plating current density relative to the optimum (1 = best).
  double relative_current = 1.0;
  double plating_time_min = 30.0;
  /// Substrate is conductive (required by ECD).
  bool conductive_substrate = true;
  /// HA-CNTs require CEA's alignment preparation before filling.
  bool ha_preparation_done = true;
};

struct FillOutcome {
  double fill_fraction = 0.0;     ///< Cu volume fraction of the open space.
  double void_fraction = 0.0;     ///< Remaining voids.
  double overburden_nm = 0.0;     ///< Cu crystal growth on top (Fig. 6).
  bool cmos_compatible_chemistry = true;
  bool feasible = true;           ///< Process preconditions met.
};

/// Simulates the Cu impregnation of a CNT bundle with the given CNT volume
/// fraction. Throws on invalid recipes; infeasible combinations (ECD on an
/// insulating substrate, HA without preparation) return feasible = false.
FillOutcome simulate_fill(const FillRecipe& recipe,
                          double cnt_volume_fraction);

/// Convenience: converts a fill outcome into a composite material spec.
materials::CompositeSpec to_composite_spec(const FillOutcome& outcome,
                                           double cnt_volume_fraction,
                                           double cu_matrix_resistivity);

}  // namespace cnti::process
