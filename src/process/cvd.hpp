// CVD growth process model (paper Sec. II): catalyst film dewets into
// nanoparticles that seed MWCNTs inside pre-patterned via holes. Growth
// temperature and catalyst material set the growth rate (Arrhenius), the
// defect density (low-temperature growth is defective), the diameter
// statistics and the via-fill yield. Fe is the reference catalyst; Co is
// the CMOS-compatible one that must work below 400 C (Sec. II.B).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "numerics/rng.hpp"

namespace cnti::process {

enum class Catalyst { kFe, kCo };

std::string to_string(Catalyst c);

/// Deposition / growth conditions.
struct GrowthRecipe {
  Catalyst catalyst = Catalyst::kFe;
  double temperature_c = 450.0;
  double catalyst_thickness_nm = 1.0;  ///< Paper: 1 nm film -> ~7.5 nm CNT.
  double growth_time_min = 10.0;
};

/// Deterministic quality metrics derived from a recipe.
struct GrowthQuality {
  double mean_diameter_nm = 7.5;
  double diameter_sigma_log = 0.15;   ///< Lognormal spread.
  double mean_walls = 4.5;            ///< Paper: 4-5 walls.
  double defect_spacing_um = 1.0;     ///< Mean distance between defects.
  double growth_rate_um_per_min = 1.0;
  double expected_length_um = 10.0;
  double tortuosity = 1.2;            ///< Path length / straight length.
  double areal_density_per_nm2 = 0.05;
  double via_fill_yield = 0.9;        ///< P(single CNT grows in the via).
  bool cmos_compatible_temperature = false;  ///< <= 400 C budget.
};

/// Evaluates the growth model at a recipe. Throws on unphysical inputs.
GrowthQuality evaluate_recipe(const GrowthRecipe& recipe);

/// One grown tube sampled from the quality distributions.
struct GrownTube {
  double diameter_nm = 7.5;
  int walls = 5;
  double defect_spacing_um = 1.0;
  double length_um = 10.0;
  bool via_filled = true;
};

GrownTube sample_tube(const GrowthQuality& quality, numerics::Rng& rng);

/// Batch sampling on the thread pool: tube i is drawn from the stream
/// base.fork(i), so the batch is bit-identical at every thread count and
/// for repeated calls with the same base seed (threads: 0 = CNTI_THREADS
/// / hardware default).
std::vector<GrownTube> sample_tubes(const GrowthQuality& quality,
                                    std::size_t count,
                                    const numerics::Rng& base,
                                    int threads = 0);

}  // namespace cnti::process
