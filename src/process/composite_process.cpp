#include "process/composite_process.hpp"

#include <algorithm>
#include <cmath>

namespace cnti::process {

std::string to_string(FillMethod m) {
  return m == FillMethod::kEld ? "ELD" : "ECD";
}

FillOutcome simulate_fill(const FillRecipe& recipe,
                          double cnt_volume_fraction) {
  CNTI_EXPECTS(cnt_volume_fraction >= 0 && cnt_volume_fraction < 1,
               "CNT volume fraction in [0, 1)");
  CNTI_EXPECTS(recipe.bath_quality >= 0 && recipe.bath_quality <= 1,
               "bath quality in [0, 1]");
  CNTI_EXPECTS(recipe.plating_time_min > 0, "plating time positive");

  FillOutcome out;

  // Process preconditions.
  if (recipe.method == FillMethod::kEcd && !recipe.conductive_substrate) {
    out.feasible = false;  // ECD needs a conductive substrate (Sec. II.C)
    return out;
  }
  if (recipe.alignment == CntAlignment::kHorizontal &&
      !recipe.ha_preparation_done) {
    out.feasible = false;  // HA-CNTs need the CEA preparation technique
    return out;
  }

  // Fill saturates with time; denser CNT carpets are harder to infiltrate.
  const double tau_min = 10.0 * (1.0 + 2.0 * cnt_volume_fraction);
  const double saturation = 1.0 - std::exp(-recipe.plating_time_min /
                                           tau_min);

  double quality = recipe.bath_quality;
  if (recipe.method == FillMethod::kEcd) {
    // Off-optimum plating current nucleates voids (dendrites / depletion).
    const double detune = std::abs(recipe.relative_current - 1.0);
    quality *= std::exp(-2.0 * detune * detune);
  } else {
    // ELD: simpler but chemically dirtier and slightly less conformal.
    quality *= 0.9;
  }

  out.fill_fraction = saturation * quality;
  out.void_fraction = std::max(0.0, 1.0 - out.fill_fraction) *
                      (1.0 - cnt_volume_fraction);
  // Overburden grows once the structure is full (Fig. 6 cross-section).
  out.overburden_nm =
      std::max(0.0, recipe.plating_time_min - tau_min) * 4.0;
  // ELD involves "a multitude of different chemicals" — flagged for CMOS.
  out.cmos_compatible_chemistry = (recipe.method == FillMethod::kEcd) ||
                                  recipe.bath_quality > 0.95;
  return out;
}

materials::CompositeSpec to_composite_spec(const FillOutcome& outcome,
                                           double cnt_volume_fraction,
                                           double cu_matrix_resistivity) {
  CNTI_EXPECTS(outcome.feasible, "cannot build a composite from an "
                                 "infeasible fill");
  materials::CompositeSpec spec;
  spec.cnt_volume_fraction = cnt_volume_fraction;
  spec.void_fraction =
      std::min(0.99, outcome.void_fraction);
  spec.cu_matrix_resistivity = cu_matrix_resistivity;
  return spec;
}

}  // namespace cnti::process
