// 300 mm wafer-scale growth uniformity (paper Sec. II.B / Fig. 5): the
// CVD chamber imposes a radial temperature/catalyst profile; every die
// gets a perturbed recipe and the resulting growth quality, from which
// wafer maps and uniformity metrics are computed.
#pragma once

#include <vector>

#include "numerics/stats.hpp"
#include "process/cvd.hpp"

namespace cnti::process {

struct WaferSpec {
  double diameter_mm = 300.0;
  double die_pitch_mm = 20.0;
  double edge_exclusion_mm = 5.0;
  /// Centre-to-edge temperature droop of the chamber [C].
  double radial_temperature_droop_c = 12.0;
  /// Random per-die temperature noise [C].
  double temperature_noise_c = 2.0;
  /// Radial catalyst-thickness nonuniformity (fractional at the edge).
  double radial_catalyst_skew = 0.03;
};

struct Die {
  double x_mm = 0.0;
  double y_mm = 0.0;
  double radius_mm = 0.0;
  GrowthRecipe recipe;     ///< Locally perturbed recipe.
  GrowthQuality quality;
};

/// A fully characterized wafer. Die generation runs on the thread pool:
/// each die draws from the stream rng.fork(grid_cell_index), so the map
/// is bit-identical at every thread count and independent of how much of
/// `rng` the caller has already consumed (threads: 0 = CNTI_THREADS /
/// hardware default, otherwise a private pool of that many threads).
/// The rng is only forked, never advanced — two wafers built from the
/// same rng and spec are identical; use distinct seeds for replicates.
class WaferMap {
 public:
  WaferMap(const WaferSpec& spec, const GrowthRecipe& nominal,
           const numerics::Rng& rng, int threads = 0);

  const std::vector<Die>& dies() const { return dies_; }

  /// Summary of a per-die quality metric across the wafer.
  numerics::Summary summarize(double (*metric)(const GrowthQuality&)) const;

  /// (max - min) / mean of mean diameter — the uniformity number a fab
  /// would quote for Fig. 5.
  double diameter_uniformity() const;

  /// Fraction of dies meeting the CMOS thermal budget and a minimal
  /// growth rate (usable dies).
  double yield(double min_growth_rate_um_min = 0.05) const;

 private:
  std::vector<Die> dies_;
};

}  // namespace cnti::process
