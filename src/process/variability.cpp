#include "process/variability.hpp"

#include <cmath>
#include <vector>

#include "common/constants.hpp"
#include "common/units.hpp"
#include "numerics/thread_pool.hpp"

namespace cnti::process {

double sample_device_resistance_kohm(const GrowthQuality& quality,
                                     double length_um,
                                     double channels_if_doped,
                                     double contact_kohm,
                                     numerics::Rng& rng) {
  const GrownTube tube = sample_tube(quality, rng);
  const double length_m = units::from_um(length_um);
  const double spacing = 2.0 * cntconst::kShellSpacing;

  // Shells from the sampled wall count, diameters stepping inward.
  double conductance = 0.0;
  for (int s = 0; s < tube.walls; ++s) {
    const double d_m = units::from_nm(tube.diameter_nm) - spacing * s;
    if (d_m < 1e-9) break;
    double channels;
    if (channels_if_doped > 0.0) {
      // Doping makes every shell conduct with the enhanced channel count.
      channels = channels_if_doped;
    } else {
      // Pristine: per-shell chirality lottery — 1/3 metallic shells carry
      // ~2 channels, semiconducting shells are off at low bias.
      channels = rng.bernoulli(1.0 / 3.0)
                     ? cntconst::kChannelsPerMetallicShell
                     : 0.0;
    }
    if (channels <= 0.0) continue;
    // Matthiessen MFP: acoustic (1000 d) + sampled defect spacing.
    const double l_ac = cntconst::kMfpOverDiameter * d_m;
    const double l_def = units::from_um(tube.defect_spacing_um);
    const double mfp = 1.0 / (1.0 / l_ac + 1.0 / l_def);
    conductance += channels * phys::kConductanceQuantum /
                   (1.0 + length_m / mfp);
  }
  if (conductance <= 0.0) return -1.0;  // open device
  const double r = 1.0 / conductance + units::from_kOhm(contact_kohm);
  return units::to_kOhm(r);
}

VariabilityResult run_resistance_mc(const VariabilityConfig& config) {
  CNTI_EXPECTS(config.samples >= 10, "need at least 10 MC samples");
  CNTI_EXPECTS(config.length_um > 0, "length must be positive");
  CNTI_EXPECTS(config.threads >= 0, "threads must be >= 0");
  const GrowthQuality quality = evaluate_recipe(config.recipe);
  const numerics::Rng root(config.seed);

  double channels_if_doped = 0.0;
  if (config.dopant_concentration > 0.0) {
    const atomistic::ChargeTransferDoping doping(
        config.dopant, config.dopant_concentration);
    channels_if_doped = doping.channels_per_shell_simple();
  }

  // Fixed grain: the chunk decomposition (and therefore the accumulator
  // merge tree) is a function of the sample count alone, never of the
  // thread count — that is what makes the Summary bit-identical from 1 to
  // N threads. Sample i always draws from the counter-based stream
  // root.fork(i), independent of which thread or chunk runs it.
  constexpr std::size_t kGrain = 512;
  const std::size_t n = static_cast<std::size_t>(config.samples);
  const std::size_t n_chunks = (n + kGrain - 1) / kGrain;
  struct ChunkStats {
    numerics::Accumulator acc;
    int open = 0;
  };
  std::vector<ChunkStats> chunks(n_chunks);

  numerics::parallel_chunks(
      n, kGrain,
      [&](std::size_t begin, std::size_t end) {
        ChunkStats& local = chunks[begin / kGrain];
        local.acc = numerics::Accumulator(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          numerics::Rng rng = root.fork(i);
          const double contact_kohm = rng.lognormal_median(
              config.contact_median_kohm, config.contact_sigma_log);
          const double r = sample_device_resistance_kohm(
              quality, config.length_um, channels_if_doped, contact_kohm,
              rng);
          if (r < 0) {
            ++local.open;
          } else {
            local.acc.add(r);
          }
        }
      },
      config.threads);

  numerics::Accumulator merged(n);
  int open_count = 0;
  for (const auto& c : chunks) {
    merged.merge(c.acc);
    open_count += c.open;
  }
  CNTI_EXPECTS(merged.count() > 0, "every sampled device was open");

  VariabilityResult out;
  out.resistance_kohm = merged.summary();
  out.open_fraction =
      static_cast<double>(open_count) / config.samples;
  const double threshold = 3.0 * out.resistance_kohm.median;
  int tail = 0;
  for (double r : merged.values()) {
    if (r > threshold) ++tail;
  }
  out.tail_fraction = static_cast<double>(tail) / config.samples;
  return out;
}

}  // namespace cnti::process
