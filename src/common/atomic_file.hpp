// Crash-safe file publication: write the full contents to a unique
// temporary sibling, flush it to stable storage, then rename() onto the
// final path. Readers therefore only ever observe either the old file or
// the complete new one — never a truncated half-write — which is the
// contract both the service DiskCache and the bench JsonMetricSink rely
// on ("publish or nothing").
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace cnti {

/// Marker every in-flight temporary carries; a crash leaves such files
/// behind, and startup sweeps (e.g. DiskCache's) may delete them freely.
inline constexpr std::string_view kAtomicTempMarker = ".tmp.";

/// Writes `bytes` to `path` atomically (temp + fsync + rename). Throws
/// std::runtime_error when the bytes cannot be durably published; the
/// target is left untouched in that case.
inline void write_file_atomic(const std::string& path,
                              std::string_view bytes) {
  namespace fs = std::filesystem;
  static std::atomic<std::uint64_t> sequence{0};
#if defined(__unix__) || defined(__APPLE__)
  const std::string tmp = path + std::string(kAtomicTempMarker) +
                          std::to_string(::getpid()) + "." +
                          std::to_string(sequence.fetch_add(1));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("atomic write: cannot create temp file " + tmp);
  }
  std::size_t written = 0;
  bool ok = true;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never expose a file whose bytes
  // are still only in the page cache when the machine loses power.
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw std::runtime_error("atomic write: cannot write " + tmp);
  }
#else
  const std::string tmp = path + std::string(kAtomicTempMarker) +
                          std::to_string(sequence.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::error_code ignored;
      fs::remove(tmp, ignored);
      throw std::runtime_error("atomic write: cannot write " + tmp);
    }
  }
#endif
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw std::runtime_error("atomic write: cannot rename " + tmp + " -> " +
                             path + ": " + ec.message());
  }
}

}  // namespace cnti
