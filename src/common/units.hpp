// Unit-conversion helpers. The library computes in SI; inputs in the
// literature come in nm/um/aF/eV etc., so conversions are named explicitly
// to keep call sites self-documenting (Core Guidelines P.1).
#pragma once

namespace cnti::units {

// Length.
inline constexpr double from_nm(double v) { return v * 1e-9; }
inline constexpr double from_um(double v) { return v * 1e-6; }
inline constexpr double from_mm(double v) { return v * 1e-3; }
inline constexpr double to_nm(double v) { return v * 1e9; }
inline constexpr double to_um(double v) { return v * 1e6; }

// Capacitance.
inline constexpr double from_aF(double v) { return v * 1e-18; }
inline constexpr double from_fF(double v) { return v * 1e-15; }
inline constexpr double to_aF(double v) { return v * 1e18; }
inline constexpr double to_fF(double v) { return v * 1e15; }
/// aF/um -> F/m.
inline constexpr double from_aF_per_um(double v) { return v * 1e-12; }
/// F/m -> aF/um.
inline constexpr double to_aF_per_um(double v) { return v * 1e12; }

// Resistance / conductance.
inline constexpr double from_kOhm(double v) { return v * 1e3; }
inline constexpr double to_kOhm(double v) { return v * 1e-3; }
inline constexpr double from_mS(double v) { return v * 1e-3; }
inline constexpr double to_mS(double v) { return v * 1e3; }
inline constexpr double from_uS(double v) { return v * 1e-6; }
inline constexpr double to_uS(double v) { return v * 1e6; }

// Current.
inline constexpr double from_uA(double v) { return v * 1e-6; }
inline constexpr double to_uA(double v) { return v * 1e6; }
/// A/cm^2 -> A/m^2.
inline constexpr double from_A_per_cm2(double v) { return v * 1e4; }
/// A/m^2 -> A/cm^2.
inline constexpr double to_A_per_cm2(double v) { return v * 1e-4; }

// Time.
inline constexpr double from_ps(double v) { return v * 1e-12; }
inline constexpr double from_ns(double v) { return v * 1e-9; }
inline constexpr double to_ps(double v) { return v * 1e12; }
inline constexpr double to_ns(double v) { return v * 1e9; }

// Temperature.
inline constexpr double celsius_to_kelvin(double c) { return c + 273.15; }
inline constexpr double kelvin_to_celsius(double k) { return k - 273.15; }

// Inductance.
inline constexpr double to_nH_per_um(double v) { return v * 1e3; }  // H/m ->
inline constexpr double from_nH_per_um(double v) { return v * 1e-3; }

}  // namespace cnti::units
