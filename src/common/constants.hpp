// Physical constants and CNT-interconnect reference values used across the
// cnti library. SI units throughout unless a suffix says otherwise.
//
// The CNT-specific constants mirror the values quoted in Uhlig et al.,
// "Progress on Carbon Nanotube BEOL Interconnects", DATE 2018 (Sec. I and
// Sec. III.C) and its compact-model references (Naeemi & Meindl, EDL 2006;
// Li et al., TED 2008).
#pragma once

namespace cnti {

// ---------------------------------------------------------------------------
// Fundamental constants (2019 SI exact values where applicable).
// ---------------------------------------------------------------------------
namespace phys {

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
/// Planck constant [J s].
inline constexpr double kPlanck = 6.62607015e-34;
/// Reduced Planck constant [J s].
inline constexpr double kHbar = 1.054571817e-34;
/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
/// Vacuum permittivity [F/m].
inline constexpr double kEpsilon0 = 8.8541878128e-12;
/// Vacuum permeability [H/m].
inline constexpr double kMu0 = 1.25663706212e-6;
/// Electron volt [J].
inline constexpr double kElectronVolt = kElementaryCharge;
/// Room temperature used throughout the paper [K].
inline constexpr double kRoomTemperature = 300.0;

/// Conductance quantum G0 = 2 e^2 / h [S] (one spin-degenerate channel).
/// The paper quotes 0.077 mS; the exact value is 77.48 uS.
inline constexpr double kConductanceQuantum =
    2.0 * kElementaryCharge * kElementaryCharge / kPlanck;

/// Resistance quantum h / (2 e^2) = 1/G0 [Ohm] (~12.906 kOhm, paper: 12.9k).
inline constexpr double kResistanceQuantum = 1.0 / kConductanceQuantum;

}  // namespace phys

// ---------------------------------------------------------------------------
// Carbon / CNT material constants.
// ---------------------------------------------------------------------------
namespace cntconst {

/// Graphene C-C bond length [m].
inline constexpr double kCcBond = 0.142e-9;
/// Graphene lattice constant a = sqrt(3) * a_cc [m].
inline constexpr double kGrapheneLattice = 0.24595e-9;
/// Nearest-neighbour tight-binding hopping energy gamma0 [eV].
inline constexpr double kHoppingEv = 2.7;
/// Van der Waals inter-shell spacing in MWCNTs [m].
inline constexpr double kShellSpacing = 0.34e-9;
/// Fermi velocity of graphene/CNT [m/s].
inline constexpr double kFermiVelocity = 8.0e5;

/// Quantum capacitance per conducting channel [F/m].
/// Paper Sec. III.C quotes C_Q,1channel = 96.5 aF/um = 96.5e-12 F/m.
inline constexpr double kQuantumCapacitancePerChannel = 96.5e-12;

/// Kinetic inductance per conducting channel [H/m], the electromagnetic dual
/// of kQuantumCapacitancePerChannel: L_K = 1 / (v_F^2 C_Q) ~ 16.2 nH/um.
inline constexpr double kKineticInductancePerChannel =
    1.0 / (kFermiVelocity * kFermiVelocity * kQuantumCapacitancePerChannel);

/// Mean-free-path over diameter ratio for metallic CNTs at 300 K
/// (Naeemi & Meindl compact model, lambda ~ 1000 d).
inline constexpr double kMfpOverDiameter = 1000.0;

/// Conducting channels per pristine metallic shell (paper: N_c close to 2).
inline constexpr double kChannelsPerMetallicShell = 2.0;

/// Fraction of CVD-grown CNTs that are semiconducting (paper Sec. II.A).
inline constexpr double kSemiconductingFraction = 2.0 / 3.0;

/// Maximum sustainable current of a ~1 nm SWCNT [A] (paper: 20-25 uA).
inline constexpr double kSwcntSaturationCurrent = 25e-6;

/// Breakdown current density of metallic SWCNT bundles [A/m^2]
/// (paper: ~1e9 A/cm^2).
inline constexpr double kCntMaxCurrentDensity = 1e13;

/// Thermal conductivity range of SWCNT bundles [W/(m K)] (paper: 3000-10000).
inline constexpr double kCntThermalConductivityLow = 3000.0;
inline constexpr double kCntThermalConductivityHigh = 10000.0;

/// Minimum CNT areal density for pure-CNT interconnects [1/m^2]
/// (paper Sec. I: 0.096 per nm^2, ITRS requirement).
inline constexpr double kMinCntDensity = 0.096e18;

}  // namespace cntconst

// ---------------------------------------------------------------------------
// Copper reference values.
// ---------------------------------------------------------------------------
namespace cuconst {

/// Bulk Cu resistivity at 300 K [Ohm m].
inline constexpr double kBulkResistivity = 1.72e-8;
/// Electron mean free path in Cu at 300 K [m].
inline constexpr double kMeanFreePath = 39e-9;
/// Temperature coefficient of resistivity [1/K].
inline constexpr double kTempCoefficient = 3.9e-3;
/// EM-limited current density of Cu interconnects [A/m^2] (paper: 1e6 A/cm^2).
inline constexpr double kEmCurrentDensityLimit = 1e10;
/// Thermal conductivity of Cu [W/(m K)] (paper: 385).
inline constexpr double kThermalConductivity = 385.0;
/// Typical EM activation energy for Cu/low-k [eV].
inline constexpr double kEmActivationEnergyEv = 0.9;

}  // namespace cuconst

}  // namespace cnti
