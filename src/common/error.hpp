// Error handling: precondition/postcondition contracts that throw, following
// Core Guidelines I.6/E.2 (use exceptions for errors that cannot be handled
// locally). The library is exception-safe by construction (RAII everywhere).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace cnti {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a numerical routine fails to converge or encounters a
/// singular/ill-conditioned system.
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown on malformed input (e.g. SPICE netlist parse errors).
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(
    const char* expr, const std::string& msg,
    const std::source_location loc = std::source_location::current()) {
  throw PreconditionError(std::string(loc.file_name()) + ":" +
                          std::to_string(loc.line()) + ": precondition `" +
                          expr + "` violated: " + msg);
}

}  // namespace detail

/// Contract check: `CNTI_EXPECTS(x > 0, "x must be positive")`.
#define CNTI_EXPECTS(cond, msg)                        \
  do {                                                 \
    if (!(cond)) {                                     \
      ::cnti::detail::throw_precondition(#cond, msg);  \
    }                                                  \
  } while (false)

}  // namespace cnti
