// CSV writer for exporting reproduced figure series (one file per figure),
// so the curves can be plotted with any external tool.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace cnti {

/// Streams rows of doubles to a CSV file. The file is flushed/closed by RAII.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& header)
      : out_(path), columns_(header.size()) {
    CNTI_EXPECTS(!header.empty(), "csv needs at least one column");
    if (!out_) {
      throw std::runtime_error("cannot open CSV file for writing: " + path);
    }
    for (std::size_t i = 0; i < header.size(); ++i) {
      out_ << header[i] << (i + 1 < header.size() ? "," : "\n");
    }
  }

  void add_row(const std::vector<double>& values) {
    CNTI_EXPECTS(values.size() == columns_, "row width must match header");
    for (std::size_t i = 0; i < values.size(); ++i) {
      out_ << values[i] << (i + 1 < values.size() ? "," : "\n");
    }
  }

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace cnti
