// Minimal ASCII table printer used by the bench binaries to emit the
// paper-reproduction rows/series in a readable, diffable form.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace cnti {

/// Accumulates rows of formatted cells and prints them column-aligned.
/// Example:
///   Table t({"D [nm]", "R [kOhm]"});
///   t.add_row({"10", "36.6"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {
    CNTI_EXPECTS(!header_.empty(), "table needs at least one column");
  }

  void add_row(std::vector<std::string> cells) {
    CNTI_EXPECTS(cells.size() == header_.size(),
                 "row width must match header width");
    rows_.push_back(std::move(cells));
  }

  /// Format a double with the given precision; trims to compact form.
  static std::string num(double v, int precision = 4) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
      width[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    print_row(os, header_, width);
    std::size_t total = 0;
    for (auto w : width) total += w + 3;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(os, row, width);
  }

  std::size_t row_count() const { return rows_.size(); }

 private:
  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << " | ";
    }
    os << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cnti
