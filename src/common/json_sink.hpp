// JSON string escaping and the flat name -> value metric sink behind the
// benches' CNTI_BENCH_JSON trajectory files (and the scenario engine's JSON
// reports). Formerly bench-private; hoisted here so it is unit-testable and
// shared. The sink *rejects* duplicate metric names (including a
// string/number collision on the same name and the reserved "bench" field)
// instead of silently emitting duplicate-key JSON that parsers resolve by
// overwriting.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>

#include "common/atomic_file.hpp"
#include "common/error.hpp"

namespace cnti {

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes and control characters).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Formats a double as a JSON value; non-finite values become null (JSON
/// has no NaN/inf literal and a degenerate run must still parse).
inline std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream num;
  num.precision(17);
  num << value;
  return num.str();
}

/// Flat name -> value metric sink for machine-readable bench results.
/// Disabled (records silently dropped at write time) unless the
/// CNTI_BENCH_JSON environment variable names a target: either a file
/// ending in ".json" or a directory that receives BENCH_<bench name>.json.
/// Thread-safe: benches and the scenario service record metrics from pool
/// threads, so every accessor locks. The output file is published
/// atomically (write_file_atomic) so a crash mid-write never leaves a
/// truncated .json for the CI artifact collector to trip over.
class JsonMetricSink {
 public:
  static JsonMetricSink& instance() {
    static JsonMetricSink self;
    return self;
  }

  JsonMetricSink() = default;

  /// Bench name used in the default output filename (set once per binary).
  void set_name(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mu_);
    name_ = name;
  }

  void set(const std::string& key, double value) {
    const std::lock_guard<std::mutex> lock(mu_);
    check_new_key(key);
    numbers_[key] = value;
  }
  void set(const std::string& key, const std::string& value) {
    const std::lock_guard<std::mutex> lock(mu_);
    check_new_key(key);
    strings_[key] = value;
  }

  /// Writes the recorded metrics if CNTI_BENCH_JSON is set; returns the
  /// path written to (empty when disabled). Publication is atomic: the
  /// bytes land in a temp sibling first and rename onto the final path.
  std::string write() const {
    const char* target = std::getenv("CNTI_BENCH_JSON");
    if (target == nullptr || *target == '\0') return {};
    std::string path(target);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (path.size() < 5 || path.substr(path.size() - 5) != ".json") {
        path += "/BENCH_" +
                (name_.empty() ? std::string("unnamed") : name_) + ".json";
      }
    }
    std::ostringstream body;
    write_to(body);
    try {
      write_file_atomic(path, body.str());
    } catch (const std::exception& e) {
      std::cerr << "bench: cannot write JSON results to " << path << ": "
                << e.what() << "\n";
      return {};
    }
    return path;
  }

  /// Emits the metric object to an arbitrary stream (unit-test seam).
  void write_to(std::ostream& out) const {
    const std::lock_guard<std::mutex> lock(mu_);
    out << "{\n  \"bench\": \"" << json_escape(name_) << "\"";
    for (const auto& [key, value] : strings_) {
      out << ",\n  \"" << json_escape(key) << "\": \"" << json_escape(value)
          << "\"";
    }
    for (const auto& [key, value] : numbers_) {
      out << ",\n  \"" << json_escape(key) << "\": " << json_number(value);
    }
    out << "\n}\n";
  }

 private:
  void check_new_key(const std::string& key) const {  // callers hold mu_
    CNTI_EXPECTS(key != "bench",
                 "metric name \"bench\" is reserved for the bench name");
    CNTI_EXPECTS(numbers_.find(key) == numbers_.end() &&
                     strings_.find(key) == strings_.end(),
                 "duplicate metric name \"" + key +
                     "\" (metrics are write-once; a repeat would emit "
                     "duplicate JSON keys)");
  }

  mutable std::mutex mu_;
  std::string name_;
  std::map<std::string, double> numbers_;
  std::map<std::string, std::string> strings_;
};

}  // namespace cnti
