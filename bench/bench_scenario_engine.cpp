// Scenario-engine acceptance bench: a mixed >= 500-scenario batch
// (length x doping x driver x load) with delay + bus-noise + thermal KPIs
// per scenario. The content-keyed memo cache amortizes one PRIMA bus
// reduction, one capacitance stage and one thermal solve per
// (length, doping) technology corner across all driver/load scenarios;
// the uncached engine recomputes every stage per scenario. Acceptance:
// cached batch >= 10x faster, results bit-identical (the uncached leg is
// measured on a deterministic stride subset and extrapolated — at ~0.1 s
// per cold scenario the full uncached batch is a minute of redundant
// 2098-unknown reductions, which is exactly the point).
#include "bench_common.hpp"

#include <chrono>
#include <cmath>

#include "obs/obs.hpp"
#include "scenario/engine.hpp"
#include "scenario/report.hpp"

namespace {

using namespace cnti;

constexpr int kUncachedStride = 16;

scenario::Scenario base_scenario() {
  scenario::Scenario s;
  s.label = "mixed";
  s.tech.outer_diameter_nm = 10.0;
  s.tech.contact_resistance_kohm = 20.0;
  s.workload.bus_lines = 16;
  s.workload.bus_segments = 128;
  s.workload.coupling_cap_af_per_um = 30.0;
  s.analysis.delay = true;
  s.analysis.noise = true;
  s.analysis.noise_model = scenario::NoiseModel::kReducedOrder;
  s.analysis.thermal = true;
  s.analysis.time_steps = 300;
  return s;
}

std::vector<scenario::Scenario> mixed_batch() {
  const core::SweepGrid grid(
      {{"length_um", {30.0, 60.0, 100.0, 150.0}},
       {"doping", {0.0, 0.05, 0.2, 1.0}},
       {"driver_kohm", {2.0, 3.5, 5.0, 7.5, 10.0, 15.0}},
       {"load_ff", {0.05, 0.1, 0.2, 0.35, 0.5, 0.8}}});
  return scenario::expand_grid(
      base_scenario(), grid,
      [](scenario::Scenario& s, const core::SweepPoint& p) {
        s.workload.length_um = p.at("length_um");
        s.tech.dopant_concentration = p.at("doping");
        s.workload.driver_resistance_kohm = p.at("driver_kohm");
        s.workload.load_capacitance_ff = p.at("load_ff");
      });
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_reproduction() {
  bench::json().set_name("bench_scenario_engine");
  bench::print_header(
      "Scenario engine — cached vs uncached mixed batch",
      "length x doping x driver x load batch through the full "
      "atomistic -> C_E -> compact -> ROM-noise/delay -> thermal stage "
      "graph. The memo cache shares one bus reduction / capacitance / "
      "thermal solve per technology corner; acceptance is >= 10x over the "
      "uncached per-scenario path with bit-identical results.");

  const auto batch = mixed_batch();
  const std::size_t n = batch.size();
  std::cout << "Batch: " << n << " scenarios, 16 technology corners "
            << "(4 lengths x 4 dopings), 36 drive scenarios each\n\n";

  // --- Cached engine, full batch. ---
  const scenario::ScenarioEngine cached;
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = cached.run_batch(batch);
  const double t_cached = seconds_since(t0);

  // --- Uncached engine on a deterministic stride subset. ---
  scenario::EngineOptions cold_opt;
  cold_opt.cache_enabled = false;
  const scenario::ScenarioEngine uncached(cold_opt);
  std::vector<scenario::Scenario> subset;
  for (std::size_t i = 0; i < n; i += kUncachedStride) {
    subset.push_back(batch[i]);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const auto cold_results = uncached.run_batch(subset);
  const double t_cold_subset = seconds_since(t1);
  const double t_uncached_est =
      t_cold_subset * static_cast<double>(n) /
      static_cast<double>(subset.size());

  // --- Differential: cached results must equal the uncached ones bitwise.
  bool identical = true;
  for (std::size_t i = 0; i < subset.size(); ++i) {
    const auto& a = results[i * kUncachedStride];
    const auto& b = cold_results[i];
    identical = identical && a.line.delay_ps == b.line.delay_ps &&
                a.line.resistance_kohm == b.line.resistance_kohm &&
                a.noise && b.noise &&
                a.noise->peak_noise_v == b.noise->peak_noise_v &&
                a.noise->aggressor_delay_s == b.noise->aggressor_delay_s &&
                a.thermal && b.thermal &&
                a.thermal->ampacity_ua == b.thermal->ampacity_ua;
  }

  const double speedup = t_uncached_est / t_cached;
  const auto rom_stats = cached.cache().stats(scenario::stage::kBusRom);
  const auto total = cached.cache().total_stats();

  Table t({"path", "scenarios", "wall [s]", "per scenario [ms]"});
  t.add_row({"cached engine", std::to_string(n), Table::num(t_cached, 4),
             Table::num(1e3 * t_cached / static_cast<double>(n), 4)});
  t.add_row({"uncached (stride-" + std::to_string(kUncachedStride) +
                 " subset, extrapolated)",
             std::to_string(subset.size()) + " -> " + std::to_string(n),
             Table::num(t_uncached_est, 4),
             Table::num(1e3 * t_cold_subset /
                            static_cast<double>(subset.size()),
                        4)});
  t.print(std::cout);

  std::cout << "\nCache: " << rom_stats.misses << " bus reductions for "
            << n << " scenarios (" << rom_stats.hits << " ROM hits); "
            << total.hits << " total hits / " << total.misses
            << " misses across all stages\n";
  std::cout << "Speedup " << Table::num(speedup, 4) << "x ("
            << (speedup >= 10.0 ? "PASS" : "FAIL")
            << " >= 10x), cached vs uncached results "
            << (identical ? "bit-identical (PASS)" : "DIVERGED (FAIL)")
            << "\n";

  bench::json().set("scenarios", static_cast<double>(n));
  bench::json().set("uncached_subset", static_cast<double>(subset.size()));
  bench::json().set("cached_s", t_cached);
  bench::json().set("uncached_subset_s", t_cold_subset);
  bench::json().set("uncached_est_s", t_uncached_est);
  bench::json().set("speedup", speedup);
  bench::json().set("rom_reductions", static_cast<double>(rom_stats.misses));
  bench::json().set("cache_hits", static_cast<double>(total.hits));
  bench::json().set("cache_misses", static_cast<double>(total.misses));
  bench::json().set("bit_identical", identical ? 1.0 : 0.0);

  // --- Observability overhead guard: compiled-in spans must stay noise.
  // The per-site cost below is the *disabled* fast path (one relaxed load
  // + branch) unless a trace/timing session is live — run this bench
  // without CNTI_TRACE when reading obs_overhead_pct as the guard.
  constexpr int kProbeIters = 5'000'000;
  const auto tp0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kProbeIters; ++i) {
    obs::ObsSpan span("bench.probe", "engine");
  }
  const double span_ns = 1e9 * seconds_since(tp0) / kProbeIters;

  const obs::Counter probe_counter = obs::counter("cnti.engine.bench_probe");
  const auto tp1 = std::chrono::steady_clock::now();
  for (int i = 0; i < kProbeIters; ++i) probe_counter.add();
  const double counter_ns = 1e9 * seconds_since(tp1) / kProbeIters;

  // Span sites actually crossed by one warm scenario, counted by tracing
  // it (tracing is bit-effect-free, so this cannot perturb the results
  // already collected above).
  std::size_t spans_per_scenario = 0;
  {
    obs::TraceSession probe;
    (void)cached.run(batch[0]);
    spans_per_scenario = probe.stop().size();
  }

  const double scenario_ns = 1e9 * t_cached / static_cast<double>(n);
  const double overhead_pct =
      100.0 * (static_cast<double>(spans_per_scenario) * span_ns) /
      scenario_ns;
  std::cout << "\nObservability disabled-path cost: span "
            << Table::num(span_ns, 3) << " ns, counter add "
            << Table::num(counter_ns, 3) << " ns; " << spans_per_scenario
            << " span sites per warm scenario -> "
            << Table::num(overhead_pct, 4) << "% of scenario time ("
            << (overhead_pct < 2.0 ? "PASS" : "FAIL") << " < 2%)\n";

  bench::json().set("obs_disabled_span_ns", span_ns);
  bench::json().set("obs_counter_add_ns", counter_ns);
  bench::json().set("obs_spans_per_scenario",
                    static_cast<double>(spans_per_scenario));
  bench::json().set("obs_overhead_pct", overhead_pct);
}

void BM_CachedScenario(benchmark::State& state) {
  // Steady-state cost of one scenario when its technology corner is warm.
  const scenario::ScenarioEngine engine;
  auto batch = mixed_batch();
  (void)engine.run(batch[0]);  // warm the corner
  std::size_t drive = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(batch[drive % 36]));
    ++drive;
  }
}
BENCHMARK(BM_CachedScenario)->Unit(benchmark::kMillisecond);

void BM_ColdScenario(benchmark::State& state) {
  // Cold cost: a fresh engine pays the reduction + stages every time.
  auto batch = mixed_batch();
  for (auto _ : state) {
    scenario::EngineOptions opt;
    opt.cache_enabled = false;
    const scenario::ScenarioEngine engine(opt);
    benchmark::DoNotOptimize(engine.run(batch[0]));
  }
}
BENCHMARK(BM_ColdScenario)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
