// Shared bench-binary scaffolding: every reproduction binary prints its
// table/series first (the paper-reproduction payload), then runs its
// google-benchmark kernels.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "common/table.hpp"

namespace cnti::bench {

inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::cout << "\n=== " << experiment << " ===\n" << description << "\n\n";
}

/// Standard main body: reproduction output, then benchmark kernels.
#define CNTI_BENCH_MAIN(print_reproduction)                       \
  int main(int argc, char** argv) {                               \
    print_reproduction();                                         \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                   \
    }                                                             \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    return 0;                                                     \
  }

}  // namespace cnti::bench
