// Shared bench-binary scaffolding: every reproduction binary prints its
// table/series first (the paper-reproduction payload), then runs its
// google-benchmark kernels. Reproduction code can additionally record
// named scalar metrics (bench::json()); when the opt-in CNTI_BENCH_JSON
// environment variable is set, those metrics are written as a
// machine-readable BENCH_<name>.json so the perf trajectory can be
// tracked across commits without scraping stdout tables.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/table.hpp"

namespace cnti::bench {

inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::cout << "\n=== " << experiment << " ===\n" << description << "\n\n";
}

/// Flat name -> value metric sink for machine-readable bench results.
/// Disabled (records silently dropped at write time) unless the
/// CNTI_BENCH_JSON environment variable names a target: either a file
/// ending in ".json" or a directory that receives BENCH_<bench name>.json.
class JsonResults {
 public:
  static JsonResults& instance() {
    static JsonResults self;
    return self;
  }

  /// Bench name used in the default output filename (set once per binary).
  void set_name(const std::string& name) { name_ = name; }

  void set(const std::string& key, double value) { numbers_[key] = value; }
  void set(const std::string& key, const std::string& value) {
    strings_[key] = value;
  }

  /// Writes the recorded metrics if CNTI_BENCH_JSON is set; returns the
  /// path written to (empty when disabled). Called by CNTI_BENCH_MAIN.
  std::string write() const {
    const char* target = std::getenv("CNTI_BENCH_JSON");
    if (target == nullptr || *target == '\0') return {};
    std::string path(target);
    if (path.size() < 5 || path.substr(path.size() - 5) != ".json") {
      path += "/BENCH_" + (name_.empty() ? std::string("unnamed") : name_) +
              ".json";
    }
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench: cannot write JSON results to " << path << "\n";
      return {};
    }
    out << "{\n  \"bench\": \"" << escape(name_) << "\"";
    for (const auto& [key, value] : strings_) {
      out << ",\n  \"" << escape(key) << "\": \"" << escape(value) << "\"";
    }
    for (const auto& [key, value] : numbers_) {
      out << ",\n  \"" << escape(key) << "\": ";
      if (std::isfinite(value)) {
        std::ostringstream num;
        num.precision(17);
        num << value;
        out << num.str();
      } else {
        // JSON has no NaN/inf literal; a degenerate run must still
        // produce a parseable file for the trajectory tracking.
        out << "null";
      }
    }
    out << "\n}\n";
    return path;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
        continue;
      }
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::map<std::string, double> numbers_;
  std::map<std::string, std::string> strings_;
};

/// Shorthand for the per-binary metric sink.
inline JsonResults& json() { return JsonResults::instance(); }

/// Standard main body: reproduction output, optional JSON metric dump,
/// then benchmark kernels.
#define CNTI_BENCH_MAIN(print_reproduction)                        \
  int main(int argc, char** argv) {                                \
    print_reproduction();                                          \
    const std::string cnti_json_path = ::cnti::bench::json().write(); \
    if (!cnti_json_path.empty()) {                                 \
      std::cout << "\n[json results: " << cnti_json_path << "]\n"; \
    }                                                              \
    ::benchmark::Initialize(&argc, argv);                          \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {    \
      return 1;                                                    \
    }                                                              \
    ::benchmark::RunSpecifiedBenchmarks();                         \
    ::benchmark::Shutdown();                                       \
    return 0;                                                      \
  }

}  // namespace cnti::bench
