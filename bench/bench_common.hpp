// Shared bench-binary scaffolding: every reproduction binary prints its
// table/series first (the paper-reproduction payload), then runs its
// google-benchmark kernels. Reproduction code can additionally record
// named scalar metrics (bench::json()); when the opt-in CNTI_BENCH_JSON
// environment variable is set, those metrics are written as a
// machine-readable BENCH_<name>.json so the perf trajectory can be
// tracked across commits without scraping stdout tables. The sink itself
// lives in common/json_sink.hpp (unit-tested; rejects duplicate metric
// names and escapes them).
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "common/json_sink.hpp"
#include "common/table.hpp"

namespace cnti::bench {

inline void print_header(const std::string& experiment,
                         const std::string& description) {
  std::cout << "\n=== " << experiment << " ===\n" << description << "\n\n";
}

/// Flat name -> value metric sink (see common/json_sink.hpp).
using JsonResults = ::cnti::JsonMetricSink;

/// Shorthand for the per-binary metric sink.
inline JsonResults& json() { return JsonResults::instance(); }

/// Standard main body: reproduction output, optional JSON metric dump,
/// then benchmark kernels.
#define CNTI_BENCH_MAIN(print_reproduction)                        \
  int main(int argc, char** argv) {                                \
    print_reproduction();                                          \
    const std::string cnti_json_path = ::cnti::bench::json().write(); \
    if (!cnti_json_path.empty()) {                                 \
      std::cout << "\n[json results: " << cnti_json_path << "]\n"; \
    }                                                              \
    ::benchmark::Initialize(&argc, argv);                          \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {    \
      return 1;                                                    \
    }                                                              \
    ::benchmark::RunSpecifiedBenchmarks();                         \
    ::benchmark::Shutdown();                                       \
    return 0;                                                      \
  }

}  // namespace cnti::bench
