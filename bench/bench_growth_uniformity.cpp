// Reproduces the paper's Sec. II.B process results: CNT growth quality vs.
// temperature for Fe and the CMOS-compatible Co catalyst (Fig. 4 trend)
// and 300 mm wafer-scale growth uniformity (Fig. 5).
#include "bench_common.hpp"

#include "numerics/rng.hpp"
#include "process/cvd.hpp"
#include "process/wafer.hpp"

namespace {

using namespace cnti;

void print_reproduction() {
  bench::print_header(
      "Sec. II.B — Co-catalyst growth window and 300 mm uniformity",
      "Arrhenius growth/defect model; Co stays active below the 400 C "
      "BEOL budget (Fig. 4), Fe does not.");

  std::cout << "Growth quality vs. temperature (10 min growth):\n";
  Table t({"T [C]", "catalyst", "rate [um/min]", "defect spacing [um]",
           "tortuosity", "via yield", "CMOS T-budget"});
  for (double temp : {350.0, 400.0, 450.0, 500.0, 600.0}) {
    for (const auto cat : {process::Catalyst::kFe, process::Catalyst::kCo}) {
      process::GrowthRecipe r;
      r.temperature_c = temp;
      r.catalyst = cat;
      const auto q = process::evaluate_recipe(r);
      t.add_row({Table::num(temp, 4), process::to_string(cat),
                 Table::num(q.growth_rate_um_per_min, 3),
                 Table::num(q.defect_spacing_um, 3),
                 Table::num(q.tortuosity, 3),
                 Table::num(q.via_fill_yield, 3),
                 q.cmos_compatible_temperature ? "yes" : "no"});
    }
  }
  t.print(std::cout);

  std::cout << "\n300 mm wafer map (Co catalyst, 400 C, 20 mm die "
               "pitch):\n";
  numerics::Rng rng(300);
  process::WaferSpec wspec;
  process::GrowthRecipe nominal;
  nominal.catalyst = process::Catalyst::kCo;
  nominal.temperature_c = 400.0;
  const process::WaferMap wafer(wspec, nominal, rng);
  const auto d = wafer.summarize(
      [](const process::GrowthQuality& q) { return q.mean_diameter_nm; });
  const auto rate = wafer.summarize([](const process::GrowthQuality& q) {
    return q.growth_rate_um_per_min;
  });
  Table w({"metric", "mean", "sigma", "min", "max"});
  w.add_row({"diameter [nm]", Table::num(d.mean, 4),
             Table::num(d.stddev, 3), Table::num(d.min, 4),
             Table::num(d.max, 4)});
  w.add_row({"growth rate [um/min]", Table::num(rate.mean, 3),
             Table::num(rate.stddev, 3), Table::num(rate.min, 3),
             Table::num(rate.max, 3)});
  w.print(std::cout);
  std::cout << "\nDies: " << wafer.dies().size()
            << ", diameter uniformity (max-min)/mean: "
            << Table::num(100.0 * wafer.diameter_uniformity(), 3)
            << " %, usable-die yield: "
            << Table::num(100.0 * wafer.yield(), 4) << " %\n";
}

void BM_RecipeEvaluation(benchmark::State& state) {
  process::GrowthRecipe r;
  r.catalyst = process::Catalyst::kCo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(process::evaluate_recipe(r));
  }
}
BENCHMARK(BM_RecipeEvaluation);

// Die generation on the deterministic pool: Arg is the thread count
// (identical wafers at any width), with a denser 5 mm pitch so there is
// enough per-die work to scale.
void BM_WaferMap(benchmark::State& state) {
  process::WaferSpec wspec;
  wspec.die_pitch_mm = 5.0;
  process::GrowthRecipe nominal;
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    numerics::Rng rng(1);
    benchmark::DoNotOptimize(
        process::WaferMap(wspec, nominal, rng, threads));
  }
}
BENCHMARK(BM_WaferMap)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
