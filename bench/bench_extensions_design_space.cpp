// Extension studies beyond the paper's figures, implementing what its
// conclusion calls for: repeater design-space exploration for long CNT
// links, electro-thermal co-simulation (IV droop, thermal breakdown), and
// coupled-line crosstalk with TCAD-grade coupling values.
#include "bench_common.hpp"

#include <cmath>

#include "circuit/crosstalk.hpp"
#include "common/units.hpp"
#include "core/mwcnt_line.hpp"
#include "core/repeater.hpp"
#include "thermal/electrothermal.hpp"

namespace {

using namespace cnti;

void print_repeaters() {
  std::cout << "1) Repeater insertion on doped vs. pristine MWCNT links\n"
               "(50 kOhm contacts re-paid per repeater — the CNT-specific "
               "cost):\n";
  Table t({"L [mm]", "line", "k_opt", "size", "delay [ns]",
           "no-repeater [ns]", "energy [fJ/tr]"});
  for (double l_mm : {1.0, 2.0, 5.0, 10.0}) {
    for (double nc : {2.0, 10.0}) {
      const auto line = core::make_paper_mwcnt(10, nc, 50e3).rlc();
      const auto plan = core::optimize_repeaters(line, l_mm * 1e-3);
      t.add_row({Table::num(l_mm, 3),
                 nc == 2.0 ? "pristine" : "doped Nc=10",
                 std::to_string(plan.count), Table::num(plan.size, 3),
                 Table::num(units::to_ns(plan.total_delay_s), 4),
                 Table::num(units::to_ns(plan.unrepeated_delay_s), 4),
                 Table::num(plan.energy_per_transition_j * 1e15, 3)});
    }
  }
  t.print(std::cout);
  std::cout << "-> Doping cuts both the optimal repeater count and the "
               "achieved delay.\n\n";
}

void print_electrothermal() {
  std::cout << "2) Electro-thermal co-simulation: IV with thermal droop "
               "and breakdown\n(1 um line, 20 kOhm cold, TCR 1.5e-3/K, "
               "substrate-coupled):\n";
  thermal::LineThermalSpec spec;
  spec.length_m = 1e-6;
  spec.cross_section_m2 = M_PI * 7.5e-9 * 7.5e-9 / 4.0;
  spec.resistance_per_m = 2e10;
  spec.resistance_tcr = 1.5e-3;
  spec.substrate_coupling = 0.05;

  Table t({"V [V]", "I [uA] (k=3000)", "T peak [K]", "I [uA] (k=385)",
           "T peak [K] "});
  for (double v : {0.5, 1.0, 2.0, 3.0, 4.0}) {
    spec.thermal_conductivity = 3000.0;
    const auto cnt = thermal::solve_operating_point(spec, v);
    spec.thermal_conductivity = 385.0;
    const auto cu = thermal::solve_operating_point(spec, v);
    t.add_row({Table::num(v, 3), Table::num(units::to_uA(cnt.current_a), 4),
               Table::num(cnt.peak_temperature_k, 4),
               cu.runaway ? "runaway"
                          : Table::num(units::to_uA(cu.current_a), 4),
               cu.runaway ? "-" : Table::num(cu.peak_temperature_k, 4)});
  }
  t.print(std::cout);

  spec.thermal_conductivity = 3000.0;
  const double vbd_cnt = thermal::breakdown_voltage(spec, 40.0, 873.0);
  spec.thermal_conductivity = 385.0;
  const double vbd_cu = thermal::breakdown_voltage(spec, 40.0, 873.0);
  std::cout << "\nThermal breakdown voltage (600 C limit): CNT k -> "
            << Table::num(vbd_cnt, 3) << " V vs Cu-class k -> "
            << Table::num(vbd_cu, 3)
            << " V — the paper's thermal-conductivity advantage as "
               "usable bias headroom.\n\n";
}

void print_crosstalk() {
  std::cout << "3) Crosstalk: victim noise on coupled 50 um MWCNT lines\n"
               "(coupling 30 aF/um ~ the Fig. 10 extraction):\n";
  Table t({"victim line", "peak noise [mV]", "aggressor delay [ps]"});
  for (double nc : {2.0, 10.0}) {
    circuit::CrosstalkConfig cfg;
    cfg.victim = core::make_paper_mwcnt(10, nc, 20e3).rlc();
    cfg.aggressor = cfg.victim;
    cfg.coupling_cap_per_m = 30e-12;
    cfg.length_m = 50e-6;
    cfg.segments = 12;
    const auto res = circuit::analyze_crosstalk(cfg, 1500);
    t.add_row({nc == 2.0 ? "pristine" : "doped Nc=10",
               Table::num(res.peak_noise_v * 1e3, 4),
               Table::num(units::to_ps(res.aggressor_delay_s), 4)});
  }
  t.print(std::cout);
  std::cout << "-> The lower-impedance doped line both switches faster "
               "and absorbs less coupled charge.\n";
}

void print_reproduction() {
  bench::print_header(
      "Extensions — design-space exploration the conclusion calls for",
      "Repeaters, electro-thermal co-simulation, crosstalk.");
  print_repeaters();
  print_electrothermal();
  print_crosstalk();
}

void BM_RepeaterOptimization(benchmark::State& state) {
  const auto line = core::make_paper_mwcnt(10, 2, 50e3).rlc();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::optimize_repeaters(line, 5e-3));
  }
}
BENCHMARK(BM_RepeaterOptimization)->Unit(benchmark::kMillisecond);

void BM_ElectroThermalPoint(benchmark::State& state) {
  thermal::LineThermalSpec spec;
  spec.cross_section_m2 = 4.4e-17;
  spec.resistance_per_m = 2e10;
  spec.resistance_tcr = 1.5e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(thermal::solve_operating_point(spec, 1.0));
  }
}
BENCHMARK(BM_ElectroThermalPoint);

void BM_CrosstalkTransient(benchmark::State& state) {
  circuit::CrosstalkConfig cfg;
  cfg.victim = core::make_paper_mwcnt(10, 2, 20e3).rlc();
  cfg.aggressor = cfg.victim;
  cfg.length_m = 20e-6;
  cfg.segments = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::analyze_crosstalk(cfg, 600));
  }
}
BENCHMARK(BM_CrosstalkTransient)->Unit(benchmark::kMillisecond);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
