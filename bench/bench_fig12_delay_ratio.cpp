// Reproduces paper Figs. 11+12 — the headline circuit result: 45 nm
// inverters driving doped MWCNT interconnects; delay ratio
// doped/pristine(N_c = 2) vs. interconnect length, outer diameter
// D_max in {10, 14, 22} nm and channels per shell N_c in 2..10.
//
// Paper checkpoints (Sec. III.C): at L = 500 um, heavy doping reduces the
// propagation delay by ~10% (D=10 nm), ~5% (14 nm), ~2% (22 nm); doping
// grows more effective with L and less effective with D (more shells).
// The full MNA transient is cross-checked against the Elmore estimate.
#include "bench_common.hpp"

#include "circuit/builders.hpp"
#include "common/units.hpp"
#include "core/line_model.hpp"
#include "core/mwcnt_line.hpp"

namespace {

using namespace cnti;
using units::from_um;

double elmore_ratio(double d_nm, double nc, double l_um) {
  core::DriverLineLoad cfg;
  cfg.driver_resistance_ohm = 2.5e3;  // 8x 45 nm inverter
  cfg.load_capacitance_f = 0.3e-15;
  cfg.length_m = from_um(l_um);
  cfg.line = core::make_paper_mwcnt(d_nm, 2).rlc();
  const double t_p = core::elmore_delay(cfg);
  cfg.line = core::make_paper_mwcnt(d_nm, nc).rlc();
  return core::elmore_delay(cfg) / t_p;
}

double mna_ratio(double d_nm, double nc, double l_um) {
  circuit::Fig11Options opt;
  opt.length_m = from_um(l_um);
  opt.segments = 16;
  opt.line = core::make_paper_mwcnt(d_nm, 2).rlc();
  const double t_p = circuit::measure_fig11_delay(opt, 1200);
  opt.line = core::make_paper_mwcnt(d_nm, nc).rlc();
  const double t_d = circuit::measure_fig11_delay(opt, 1200);
  return t_d / t_p;
}

void print_reproduction() {
  bench::print_header(
      "Figs. 11+12 — doped/pristine MWCNT delay ratio (45 nm inverters)",
      "Delay ratio = t_pd(N_c) / t_pd(N_c = 2). Contact resistance 200 "
      "kOhm (doping-independent), C_E = 50 aF/um (doping-independent, "
      "Eq. 5).");

  // Elmore sweep: ratio vs. length for each diameter at heavy doping.
  std::cout << "Delay ratio vs. length (N_c = 10, Elmore):\n";
  Table tl({"L [um]", "D=10 nm", "D=14 nm", "D=22 nm"});
  for (double l : {1.0, 10.0, 50.0, 100.0, 200.0, 500.0, 1000.0}) {
    tl.add_row({Table::num(l, 4), Table::num(elmore_ratio(10, 10, l), 4),
                Table::num(elmore_ratio(14, 10, l), 4),
                Table::num(elmore_ratio(22, 10, l), 4)});
  }
  tl.print(std::cout);

  // Ratio vs. N_c at the paper's L = 500 um.
  std::cout << "\nDelay ratio vs. N_c per shell at L = 500 um (Elmore):\n";
  Table tn({"N_c", "D=10 nm", "D=14 nm", "D=22 nm"});
  for (double nc : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    tn.add_row({Table::num(nc, 3),
                Table::num(elmore_ratio(10, nc, 500), 4),
                Table::num(elmore_ratio(14, nc, 500), 4),
                Table::num(elmore_ratio(22, nc, 500), 4)});
  }
  tn.print(std::cout);

  // Full MNA transient at the paper's checkpoint.
  std::cout << "\nFull MNA transient at L = 500 um, N_c = 10 "
               "(paper: ~10/5/2 % reduction):\n";
  Table tm({"D [nm]", "shells", "ratio (MNA)", "reduction [%]",
            "ratio (Elmore)", "paper reduction [%]"});
  const double paper[] = {10.0, 5.0, 2.0};
  int idx = 0;
  for (double d : {10.0, 14.0, 22.0}) {
    const double rm = mna_ratio(d, 10, 500);
    tm.add_row({Table::num(d, 3),
                std::to_string(core::make_paper_mwcnt(d, 2).shell_count()),
                Table::num(rm, 4), Table::num(100.0 * (1.0 - rm), 3),
                Table::num(elmore_ratio(d, 10, 500), 4),
                Table::num(paper[idx++], 2)});
  }
  tm.print(std::cout);

  // Length trend at D = 10 nm with the MNA engine.
  std::cout << "\nMNA ratio vs. length, D = 10 nm, N_c = 10 (doping gains "
               "with L):\n";
  Table tt({"L [um]", "ratio (MNA)"});
  for (double l : {10.0, 100.0, 500.0}) {
    tt.add_row({Table::num(l, 4), Table::num(mna_ratio(10, 10, l), 4)});
  }
  tt.print(std::cout);
}

void BM_Fig11Transient(benchmark::State& state) {
  circuit::Fig11Options opt;
  opt.length_m = 100e-6;
  opt.segments = 16;
  opt.line = core::make_paper_mwcnt(10, 2).rlc();
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::measure_fig11_delay(opt, 600));
  }
}
BENCHMARK(BM_Fig11Transient)->Unit(benchmark::kMillisecond);

void BM_ElmoreSweep(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(elmore_ratio(10, 10, 500));
  }
}
BENCHMARK(BM_ElmoreSweep);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
