// Reproduces paper Fig. 10: 3-D TCAD RC extraction of a 14 nm-class
// interconnect stack. (a) capacitance with cross-talk between neighbouring
// lines, (b) resistance with the current-density hot-spot (at the via),
// plus the SPICE-format netlist export of Sec. III.B.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "tcad/field_solver.hpp"
#include "tcad/netlist_export.hpp"

namespace {

using namespace cnti;

void print_reproduction() {
  bench::print_header(
      "Fig. 10 — 3-D TCAD RC extraction (14 nm-class M1/M2 stack)",
      "3 parallel M1 lines + orthogonal M2 + via over a ground plane in "
      "low-k (eps_r 2.5).\nSolves div(eps grad psi)=0 / "
      "div(kappa grad psi)=0 (paper Eqs. 2-3).");

  tcad::Fig10Options opt;
  opt.line_length_nm = 420.0;
  auto fig = tcad::build_fig10_structure(opt);
  const auto& st = fig.structure;
  std::cout << "Grid: " << st.grid().nx() << " x " << st.grid().ny()
            << " x " << st.grid().nz() << " nodes, "
            << st.conductor_count() << " conductors\n\n";

  const auto caps = tcad::extract_capacitance(fig.structure);
  std::cout << "(a) Maxwell capacitance matrix [aF] (cross-talk = "
               "off-diagonals):\n";
  Table t({"", "gnd_plane", "m1_left", "m1_victim(+via+M2)", "m1_right"});
  const char* names[] = {"gnd_plane", "m1_left", "m1_victim(+via+M2)",
                         "m1_right"};
  for (int i = 0; i < st.conductor_count(); ++i) {
    std::vector<std::string> row{names[i]};
    for (int j = 0; j < st.conductor_count(); ++j) {
      row.push_back(Table::num(units::to_aF(caps.matrix(i, j)), 4));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  const double c_xtalk =
      -caps.matrix(fig.m1_victim, fig.m1_left) -
      caps.matrix(fig.m1_victim, fig.m1_right);
  const double c_total = caps.matrix(fig.m1_victim, fig.m1_victim);
  std::cout << "\nVictim cross-talk fraction: "
            << Table::num(100.0 * c_xtalk / c_total, 3) << " % of "
            << Table::num(units::to_aF(c_total), 4) << " aF total\n";

  std::cout << "\n(b) Resistance of the victim path (M2 end -> via -> M1 "
               "end):\n";
  const auto res = tcad::extract_resistance(
      fig.structure, fig.m1_victim, fig.via_terminal_top,
      fig.victim_terminal_end);
  Table r({"quantity", "value"});
  r.add_row({"R [Ohm]", Table::num(res.resistance_ohm, 4)});
  r.add_row({"max |J| [MA/cm^2] at 1 V",
             Table::num(units::to_A_per_cm2(res.max_current_density) / 1e6,
                        4)});
  r.add_row({"hot-spot (x,y,z) [nm]",
             Table::num(units::to_nm(res.hotspot_x), 4) + ", " +
                 Table::num(units::to_nm(res.hotspot_y), 4) + ", " +
                 Table::num(units::to_nm(res.hotspot_z), 4)});
  r.add_row({"CG iterations", std::to_string(res.cg_iterations)});
  r.print(std::cout);

  std::cout << "\nSPICE-format netlist export (Sec. III.B):\n"
            << tcad::export_spice_netlist(fig.structure, caps,
                                          "fig10 extracted parasitics");
}

void BM_CapacitanceExtraction(benchmark::State& state) {
  tcad::Fig10Options opt;
  opt.line_length_nm = 140.0;
  opt.grid_step_nm = 28.0;
  auto fig = tcad::build_fig10_structure(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcad::extract_capacitance(fig.structure));
  }
}
BENCHMARK(BM_CapacitanceExtraction)->Unit(benchmark::kMillisecond);

void BM_LaplaceSolve(benchmark::State& state) {
  const auto grid = tcad::Grid3D::uniform(1e-6, 1e-6, 1e-6, 21, 21, 21);
  std::vector<double> coef(grid.cell_count(), 1.0);
  std::vector<char> mask(grid.node_count(), 0);
  std::vector<double> value(grid.node_count(), 0.0);
  // Dirichlet on two opposite faces.
  for (std::size_t k = 0; k < grid.nz(); ++k) {
    for (std::size_t j = 0; j < grid.ny(); ++j) {
      mask[grid.node_index(0, j, k)] = 1;
      value[grid.node_index(0, j, k)] = 1.0;
      mask[grid.node_index(grid.nx() - 1, j, k)] = 1;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcad::solve_laplace(grid, coef, mask, value));
  }
}
BENCHMARK(BM_LaplaceSolve)->Unit(benchmark::kMillisecond);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
