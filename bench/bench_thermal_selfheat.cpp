// Reproduces the paper's Sec. IV.B thermal studies: self-heating of MWCNT
// vs. Cu interconnects, the SThM virtual measurement and the thermal-
// conductivity re-extraction, plus ampacity from the thermal limit.
#include "bench_common.hpp"

#include <cmath>

#include "common/units.hpp"
#include "numerics/rng.hpp"
#include "thermal/heat1d.hpp"
#include "thermal/sthm.hpp"

namespace {

using namespace cnti;

thermal::LineThermalSpec base_line(double k) {
  thermal::LineThermalSpec s;
  s.length_m = 1e-6;
  s.cross_section_m2 = M_PI * 7.5e-9 * 7.5e-9 / 4.0;
  s.thermal_conductivity = k;
  s.resistance_per_m = 2e10;  // 20 kOhm / um
  s.substrate_coupling = 0.05;
  return s;
}

void print_reproduction() {
  bench::print_header(
      "Sec. IV.B — self-heating and SThM thermal metrology",
      "1 um line, 7.5 nm cross-section, 20 kOhm/um, contacts as heat "
      "sinks.");

  std::cout << "Peak temperature rise vs. current (CNT k = 3000 W/mK vs "
               "Cu-class k = 385 W/mK):\n";
  Table t({"I [uA]", "dT CNT [K]", "dT Cu-k [K]", "advantage"});
  for (double i_ua : {5.0, 10.0, 20.0, 30.0, 50.0}) {
    const auto cnt = thermal::solve_self_heating(base_line(3000.0),
                                                 i_ua * 1e-6);
    const auto cu = thermal::solve_self_heating(base_line(385.0),
                                                i_ua * 1e-6);
    t.add_row({Table::num(i_ua, 3), Table::num(cnt.peak_rise_k, 4),
               Table::num(cu.peak_rise_k, 4),
               Table::num(cu.peak_rise_k / cnt.peak_rise_k, 3)});
  }
  t.print(std::cout);

  // Thermal ampacity at a 100 K budget.
  const double i_cnt =
      thermal::thermal_ampacity(base_line(3000.0), 400.0);
  const double i_cu = thermal::thermal_ampacity(base_line(385.0), 400.0);
  std::cout << "\nThermal ampacity (dT = 100 K): CNT "
            << Table::num(units::to_uA(i_cnt), 4) << " uA vs Cu-k "
            << Table::num(units::to_uA(i_cu), 4) << " uA\n";

  // SThM chain: scan the self-heated line, re-extract k.
  std::cout << "\nSThM virtual metrology (20 nm probe, 50 mK noise):\n";
  numerics::Rng rng(99);
  const auto spec = base_line(3000.0);
  const auto truth = thermal::solve_self_heating(spec, 20e-6, 401);
  thermal::SthmProbe probe;
  const auto scan = thermal::simulate_sthm_scan(truth, probe, rng);
  Table s({"x [nm]", "T true [K]", "T scanned [K]"});
  for (std::size_t i = 0; i < scan.x_m.size(); i += 20) {
    // Nearest truth sample.
    const std::size_t ti =
        std::min(truth.x_m.size() - 1,
                 static_cast<std::size_t>(scan.x_m[i] / spec.length_m *
                                          (truth.x_m.size() - 1)));
    s.add_row({Table::num(units::to_nm(scan.x_m[i]), 4),
               Table::num(truth.temperature_k[ti], 5),
               Table::num(scan.temperature_k[i], 5)});
  }
  s.print(std::cout);
  // Note: substrate coupling flattens the profile slightly vs. the pure
  // parabolic inversion, so the extraction is biased low by design here.
  const double k_est =
      thermal::extract_thermal_conductivity(scan, spec, 20e-6);
  std::cout << "\nExtracted k_th = " << Table::num(k_est, 4)
            << " W/mK (truth 3000, paper range 3000-10000)\n";
}

void BM_SelfHeating(benchmark::State& state) {
  const auto spec = base_line(3000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(thermal::solve_self_heating(spec, 20e-6, 201));
  }
}
BENCHMARK(BM_SelfHeating);

void BM_SthmScan(benchmark::State& state) {
  const auto spec = base_line(3000.0);
  const auto truth = thermal::solve_self_heating(spec, 20e-6, 201);
  numerics::Rng rng(1);
  thermal::SthmProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        thermal::simulate_sthm_scan(truth, probe, rng));
  }
}
BENCHMARK(BM_SthmScan);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
