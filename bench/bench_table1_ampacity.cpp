// Reproduces the quantitative claims of the paper's Sec. I as "Table I":
// current-carrying capacity, EM limits, thermal conductivity advantage and
// the minimum CNT density requirement — each backed by the corresponding
// model rather than quoted.
#include "bench_common.hpp"

#include <cmath>

#include "common/units.hpp"
#include "core/kpis.hpp"
#include "core/swcnt_line.hpp"
#include "materials/copper.hpp"
#include "thermal/heat1d.hpp"

namespace {

using namespace cnti;

void print_reproduction() {
  bench::print_header(
      "Table I — Sec. I quantitative claims",
      "Every row computed from the library's models; paper values quoted "
      "for comparison.");

  Table t({"quantity", "this work", "paper"});
  t.add_row({"Cu 100x50 nm max current [uA]",
             Table::num(units::to_uA(core::cu_max_current(100e-9, 50e-9)),
                        3),
             "~50"});
  t.add_row({"1 nm CNT max current [uA]",
             Table::num(units::to_uA(core::cnt_max_current(1e-9)), 3),
             "20-25"});
  t.add_row({"CNTs to match the Cu line",
             Table::num(core::cnts_to_match_cu_current(100e-9, 50e-9), 3),
             "a few"});
  t.add_row({"CNT/Cu max current density ratio",
             Table::num(core::ampacity_advantage(), 4), "1e9/1e6 = 1000"});
  t.add_row({"CNT bundle k_th [W/mK]", "3000-10000 (quality 0..1)",
             "3000-10000"});
  t.add_row({"k_th advantage over Cu",
             Table::num(core::thermal_advantage(0.0), 3) + " - " +
                 Table::num(core::thermal_advantage(1.0), 3),
             "7.8 - 26"});

  materials::CuLineSpec cu;
  cu.width_m = 20e-9;
  cu.height_m = 40e-9;
  const double density =
      core::min_density_to_match_cu(cu, 1e-6, 1e-9, 1.0);
  t.add_row({"min CNT density, metallic-only [nm^-2]",
             Table::num(density * 1e-18, 3), "0.096 (ITRS)"});
  const double density_mixed =
      core::min_density_to_match_cu(cu, 1e-6, 1e-9, 1.0 / 3.0);
  t.add_row({"min CNT density, 1/3 metallic [nm^-2]",
             Table::num(density_mixed * 1e-18, 3), "3x the above"});
  t.print(std::cout);

  // Thermal back-up: identical 1 um lines at 20 uA, CNT vs Cu k_th.
  thermal::LineThermalSpec line;
  line.length_m = 1e-6;
  line.cross_section_m2 = M_PI * 7.5e-9 * 7.5e-9 / 4.0;
  line.resistance_per_m = 2e10;
  line.thermal_conductivity = 3000.0;
  const auto cnt = thermal::solve_self_heating(line, 20e-6);
  line.thermal_conductivity = cuconst::kThermalConductivity;
  const auto cux = thermal::solve_self_heating(line, 20e-6);
  std::cout << "\nSelf-heating at 20 uA (same geometry/resistance): CNT dT "
            << Table::num(cnt.peak_rise_k, 3) << " K vs Cu-k dT "
            << Table::num(cux.peak_rise_k, 3)
            << " K -> heat removal advantage x"
            << Table::num(cux.peak_rise_k / cnt.peak_rise_k, 3) << "\n";
}

void BM_AmpacityModels(benchmark::State& state) {
  materials::CuLineSpec cu;
  cu.width_m = 20e-9;
  cu.height_m = 40e-9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::min_density_to_match_cu(cu, 1e-6, 1e-9, 1.0));
  }
}
BENCHMARK(BM_AmpacityModels);

void BM_SelfHeatSolve(benchmark::State& state) {
  thermal::LineThermalSpec line;
  line.cross_section_m2 = 4.4e-17;
  line.resistance_per_m = 2e10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(thermal::solve_self_heating(line, 10e-6, 101));
  }
}
BENCHMARK(BM_SelfHeatSolve);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
