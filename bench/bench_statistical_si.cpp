// Statistical SI sign-off at scale: a >= 10^5-sample varied-technology
// Monte Carlo over a coupled CNT bus, evaluated at ROM cost on one
// corner-anchored parametrized reduction (rom/parametrized_rom.hpp) and
// reduced through the sharded deterministic-MC layer
// (scenario/statistical.hpp). Reports:
//   * parametrized-ROM accuracy vs full sparse MNA at interior technology
//     points (the <= 1% acceptance bound);
//   * study throughput (samples/s) and the merged noise/delay statistics;
//   * shard-count invariance: the same study recomputed as 2 and 8 shard
//     ranges merges to byte-identical reports.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <sstream>
#include <utility>
#include <vector>

#include "numerics/thread_pool.hpp"
#include "scenario/engine.hpp"
#include "scenario/statistical.hpp"

namespace {

using namespace cnti;

/// The study scenario: a 4-line coupled bus with +-15% / +-10% / +-20%
/// uniform spreads on per-unit-length R / C / coupling-C.
scenario::Scenario study_scenario(int samples) {
  scenario::Scenario s;
  s.label = "statistical-si";
  s.workload.bus_lines = 4;
  s.workload.bus_segments = 8;
  s.analysis.delay = false;
  s.analysis.noise = true;
  s.analysis.noise_model = scenario::NoiseModel::kReducedOrder;
  s.analysis.time_steps = 200;
  s.variability.samples = samples;
  s.variability.resistance_span = 0.15;
  s.variability.capacitance_span = 0.10;
  s.variability.coupling_span = 0.20;
  return s;
}

std::string study_bytes(const scenario::StatisticalStudy& study) {
  std::ostringstream out;
  scenario::write_study_json(out, study);
  return out.str();
}

void print_reproduction() {
  bench::json().set_name("bench_statistical_si");
  bench::print_header(
      "Statistical SI sign-off — parametrized ROM x sharded deterministic MC",
      "10^5 technology draws per study; every sample evaluated on one\n"
      "corner-anchored parametrized reduction; shard decompositions merge\n"
      "to byte-identical statistics.");
  std::cout << "Thread pool: " << numerics::ThreadPool::default_thread_count()
            << " default threads (CNTI_THREADS overrides)\n\n";

  constexpr int kSamples = 100000;
  const scenario::Scenario s = study_scenario(kSamples);
  const scenario::ScenarioEngine engine;

  // --- Parametrized ROM vs full sparse MNA at interior points. ---
  {
    const auto t0 = std::chrono::steady_clock::now();
    const scenario::StatisticalShard warmup = engine.run_statistical(s, 0, 0);
    (void)warmup;  // builds + caches the parametrized ROM
    const double build_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    bench::json().set("prom_build_s", build_s);
    std::cout << "parametrized ROM build (8 corner anchors): "
              << Table::num(build_s * 1e3, 4) << " ms\n";
  }

  // The accuracy probe works on the raw ROM (same class the engine
  // caches), anchored on the same spans as the study.
  {
    const core::MultiscaleInput in = scenario::to_multiscale_input(s);
    const core::ChannelStage channels =
        core::doping_channel_stage(s.tech.dopant, s.tech.dopant_concentration);
    const core::MwcntLine line(core::multiscale_line_spec(
        in, channels, core::environment_capacitance(s.tech.environment)));
    const circuit::BusTopology topology = scenario::to_bus_topology(s, line);
    const circuit::BusDrive drive = scenario::to_bus_drive(s);
    const rom::ParametrizedBusRom prom(
        topology, scenario::tech_box(s.variability), drive.aggressor);
    rom::BusScenario rsc;
    rsc.driver_ohm = drive.driver_ohm;
    rsc.receiver_load_f = drive.receiver_load_f;
    rsc.vdd_v = drive.vdd_v;
    rsc.edge_time_s = drive.edge_time_s;
    const rom::ParamRomValidation v =
        prom.validate_against_mna(rsc, 5, s.analysis.time_steps);
    std::cout << "ROM order " << prom.order() << " vs full order "
              << prom.full_order() << "; " << v.probes
              << " interior probes vs sparse MNA: max noise err "
              << Table::num(v.max_noise_rel_err * 1e2, 3) << "%, max delay err "
              << Table::num(v.max_delay_rel_err * 1e2, 3) << "%\n\n";
    bench::json().set("prom_order", prom.order());
    bench::json().set("prom_full_order", prom.full_order());
    bench::json().set("prom_max_noise_rel_err", v.max_noise_rel_err);
    bench::json().set("prom_max_delay_rel_err", v.max_delay_rel_err);
  }

  // --- The full study, single range. ---
  const auto t0 = std::chrono::steady_clock::now();
  scenario::StatisticalShard full = engine.run_statistical(s);
  const double study_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const scenario::StatisticalStudy study = scenario::reduce_shards({full});
  std::cout << kSamples << " samples in " << Table::num(study_s, 4) << " s ("
            << Table::num(kSamples / study_s, 5) << " samples/s)\n";
  std::cout << "noise  mean " << Table::num(study.noise_v.mean * 1e3, 4)
            << " mV, p95 " << Table::num(study.noise_v.p95 * 1e3, 4)
            << " mV, CV " << Table::num(study.noise_v.cv(), 3) << "\n";
  std::cout << "delay  mean " << Table::num(study.delay_s.mean * 1e12, 4)
            << " ps, p95 " << Table::num(study.delay_s.p95 * 1e12, 4)
            << " ps (" << study.delay_invalid << " invalid)\n";
  bench::json().set("samples", kSamples);
  bench::json().set("study_s", study_s);
  bench::json().set("samples_per_s", kSamples / study_s);
  bench::json().set("noise_mean_v", study.noise_v.mean);
  bench::json().set("noise_p95_v", study.noise_v.p95);
  bench::json().set("noise_cv", study.noise_v.cv());
  bench::json().set("delay_mean_s", study.delay_s.mean);
  bench::json().set("delay_p95_s", study.delay_s.p95);
  bench::json().set("delay_invalid", static_cast<double>(study.delay_invalid));

  // --- Shard-count invariance: recompute as 2 and 8 shard ranges. ---
  const std::string reference = study_bytes(study);
  bool invariant = true;
  for (const std::uint64_t count : {2ULL, 8ULL}) {
    std::vector<scenario::StatisticalShard> shards;
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto [begin, end] = scenario::shard_range(kSamples, i, count);
      shards.push_back(engine.run_statistical(s, begin, end));
    }
    const bool same =
        study_bytes(scenario::reduce_shards(std::move(shards))) == reference;
    std::cout << count << "-shard merge byte-identical to single range: "
              << (same ? "yes" : "NO") << "\n";
    invariant = invariant && same;
  }
  bench::json().set("shard_invariant", invariant ? 1.0 : 0.0);
}

void BM_StatisticalStudy(benchmark::State& state) {
  const scenario::Scenario s = study_scenario(static_cast<int>(state.range(0)));
  scenario::EngineOptions options;
  options.sweep.threads = static_cast<int>(state.range(1));
  const scenario::ScenarioEngine engine(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_statistical(s));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StatisticalStudy)
    ->Args({1000, 1})
    ->Args({4000, 1})
    ->Args({4000, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ShardMergeReduce(benchmark::State& state) {
  const scenario::Scenario s = study_scenario(4000);
  const scenario::ScenarioEngine engine;
  std::vector<scenario::StatisticalShard> shards;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto [begin, end] = scenario::shard_range(4000, i, 8);
    shards.push_back(engine.run_statistical(s, begin, end));
  }
  for (auto _ : state) {
    auto copy = shards;
    benchmark::DoNotOptimize(scenario::reduce_shards(std::move(copy)));
  }
}
BENCHMARK(BM_ShardMergeReduce)->Unit(benchmark::kMillisecond);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
