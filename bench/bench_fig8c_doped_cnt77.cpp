// Reproduces paper Fig. 8b/c: band structure and transmission of pristine
// vs. iodine-doped SWCNT(7,7). The paper's DFT gives a -0.6 eV Fermi shift
// and 0.155 -> 0.387 mS conductance increase; here the TB/NEGF machinery
// provides the band structure and ballistic transmission, and the
// calibrated charge-transfer model reproduces the doped anchors.
#include "bench_common.hpp"

#include "atomistic/bandstructure.hpp"
#include "atomistic/doping.hpp"
#include "atomistic/landauer.hpp"
#include "atomistic/negf.hpp"
#include "common/units.hpp"

namespace {

using namespace cnti;

void print_reproduction() {
  bench::print_header(
      "Fig. 8b/c — pristine vs. iodine-doped SWCNT(7,7)",
      "Zone-folded subbands, NEGF transmission, calibrated doping model.\n"
      "Paper anchors: dE_F = -0.6 eV; G: 0.155 mS -> 0.387 mS.");

  const atomistic::Chirality ch(7, 7);
  const atomistic::BandStructure bands(ch);
  std::cout << "SWCNT(7,7): d = "
            << Table::num(units::to_nm(ch.diameter()), 3)
            << " nm (paper: ~1 nm), metallic = "
            << (ch.is_metallic() ? "yes" : "no")
            << ", gap = " << Table::num(bands.band_gap(), 3) << " eV\n\n";

  // Band structure: lowest subband edges (conduction side).
  Table edges({"subband edge #", "E [eV]"});
  const auto vh = bands.van_hove_energies();
  for (std::size_t i = 0; i < vh.size() && i < 6; ++i) {
    edges.add_row({std::to_string(i), Table::num(vh[i], 3)});
  }
  edges.print(std::cout);

  // NEGF transmission spectrum (pristine device, exact integer plateaus).
  std::cout << "\nNEGF transmission (pristine 2-cell device):\n";
  const atomistic::TubeHamiltonian h(ch);
  const atomistic::NegfSolver solver(h, 2);
  Table tr({"E [eV]", "T(E) NEGF", "modes (zone folding)"});
  for (double e : {-2.0, -1.0, -0.6, -0.3, 0.0, 0.3, 0.6, 1.0, 2.0}) {
    tr.add_row({Table::num(e, 3), Table::num(solver.transmission(e), 4),
                std::to_string(bands.count_modes(e))});
  }
  tr.print(std::cout);

  // Doping anchors.
  std::cout << "\nCharge-transfer doping (iodine, saturated):\n";
  Table d({"quantity", "this work", "paper (DFT)"});
  const atomistic::ChargeTransferDoping doping(
      atomistic::DopantSpecies::kIodineInternal, 1.0);
  const double g_pristine =
      atomistic::ballistic_conductance(bands, 0.0, 300.0);
  const double nc_doped = doping.effective_channels(bands, 300.0);
  const double g_doped = nc_doped * phys::kConductanceQuantum;
  d.add_row({"Fermi shift [eV]",
             Table::num(doping.stable_fermi_shift_ev(), 3), "-0.6"});
  d.add_row({"G pristine [mS]", Table::num(units::to_mS(g_pristine), 4),
             "0.155"});
  d.add_row({"G doped [mS]", Table::num(units::to_mS(g_doped), 4),
             "0.387"});
  d.add_row({"N_c doped", Table::num(nc_doped, 3), "~5"});
  d.print(std::cout);
}

void BM_NegfTransmission(benchmark::State& state) {
  const atomistic::TubeHamiltonian h(atomistic::Chirality(7, 7));
  const atomistic::NegfSolver solver(h, 2);
  double e = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.transmission(e));
    e = (e > 1.0) ? 0.0 : e + 0.1;
  }
}
BENCHMARK(BM_NegfTransmission);

void BM_SurfaceGreenFunction(benchmark::State& state) {
  const atomistic::TubeHamiltonian h(atomistic::Chirality(7, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(atomistic::surface_green_function(
        {0.5, 1e-5}, h.h00(), h.h01()));
  }
}
BENCHMARK(BM_SurfaceGreenFunction);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
