// Reproduces the paper's variability claim (Sec. II.A / III.C): CVD CNTs
// suffer chirality and defect variability; doping makes every shell
// conduct and collapses the resistance spread. Monte Carlo over growth,
// chirality and contact distributions.
#include "bench_common.hpp"

#include "process/variability.hpp"

namespace {

using namespace cnti;

void print_reproduction() {
  bench::print_header(
      "Sec. II.A / III.C — resistance variability, pristine vs. doped",
      "3000-sample MC per row: growth sampling (diameter/walls/defects), "
      "per-shell chirality lottery (1/3 metallic), lognormal contacts.");

  Table t({"L [um]", "doping", "median R [kOhm]", "CV = sigma/mu",
           "P95/P05", "open frac.", "tail > 3x median"});
  for (double l : {0.5, 1.0, 5.0}) {
    // 0.01 is sub-saturation doping (dE_F ~ -0.2 eV); 1.0 is saturated.
    for (double conc : {0.0, 0.01, 1.0}) {
      process::VariabilityConfig cfg;
      cfg.samples = 3000;
      cfg.length_um = l;
      cfg.dopant_concentration = conc;
      const auto r = process::run_resistance_mc(cfg);
      t.add_row({Table::num(l, 3),
                 conc == 0.0 ? "pristine"
                             : "iodine c=" + Table::num(conc, 2),
                 Table::num(r.resistance_kohm.median, 4),
                 Table::num(r.resistance_kohm.cv(), 3),
                 Table::num(r.resistance_kohm.p95 / r.resistance_kohm.p05,
                            3),
                 Table::num(r.open_fraction, 3),
                 Table::num(r.tail_fraction, 3)});
    }
  }
  t.print(std::cout);

  std::cout << "\nGrowth-temperature ablation (pristine, L = 1 um):\n";
  Table g({"T growth [C]", "median R [kOhm]", "CV"});
  for (double temp : {400.0, 450.0, 550.0, 650.0}) {
    process::VariabilityConfig cfg;
    cfg.samples = 3000;
    cfg.recipe.temperature_c = temp;
    const auto r = process::run_resistance_mc(cfg);
    g.add_row({Table::num(temp, 4),
               Table::num(r.resistance_kohm.median, 4),
               Table::num(r.resistance_kohm.cv(), 3)});
  }
  g.print(std::cout);
}

void BM_VariabilityMc(benchmark::State& state) {
  process::VariabilityConfig cfg;
  cfg.samples = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(process::run_resistance_mc(cfg));
  }
}
BENCHMARK(BM_VariabilityMc)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
