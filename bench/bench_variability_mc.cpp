// Reproduces the paper's variability claim (Sec. II.A / III.C): CVD CNTs
// suffer chirality and defect variability; doping makes every shell
// conduct and collapses the resistance spread. Monte Carlo over growth,
// chirality and contact distributions — run as a parallel parameter sweep
// on the deterministic thread pool (results are bit-identical at any
// thread count; see docs/PARALLELISM.md).
#include "bench_common.hpp"

#include "core/sweep_engine.hpp"
#include "numerics/thread_pool.hpp"
#include "process/variability.hpp"

namespace {

using namespace cnti;

void print_reproduction() {
  bench::json().set_name("bench_variability_mc");
  bench::print_header(
      "Sec. II.A / III.C — resistance variability, pristine vs. doped",
      "3000-sample MC per row: growth sampling (diameter/walls/defects), "
      "per-shell chirality lottery (1/3 metallic), lognormal contacts.");
  std::cout << "Sweep engine: "
            << numerics::ThreadPool::default_thread_count()
            << " default threads (CNTI_THREADS overrides)\n\n";

  // 0.01 is sub-saturation doping (dE_F ~ -0.2 eV); 1.0 is saturated.
  const core::SweepGrid grid({{"length_um", {0.5, 1.0, 5.0}},
                              {"doping", {0.0, 0.01, 1.0}}});
  const auto results = core::run_sweep(
      grid, [](const core::SweepPoint& p) {
        process::VariabilityConfig cfg;
        cfg.samples = 3000;
        cfg.length_um = p.at("length_um");
        cfg.dopant_concentration = p.at("doping");
        cfg.threads = 1;  // the sweep already fans out across points
        return process::run_resistance_mc(cfg);
      });

  Table t({"L [um]", "doping", "median R [kOhm]", "CV = sigma/mu",
           "P95/P05", "open frac.", "tail > 3x median"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto p = grid.point(i);
    const auto& r = results[i];
    // Trajectory metrics at the paper's matched-comparison corner (L = 1).
    if (p.at("length_um") == 1.0) {
      const std::string tag = p.at("doping") == 0.0  ? "pristine"
                              : p.at("doping") == 1.0 ? "doped"
                                                      : "subsat";
      bench::json().set(tag + "_median_kohm", r.resistance_kohm.median);
      bench::json().set(tag + "_cv", r.resistance_kohm.cv());
      bench::json().set(tag + "_open_fraction", r.open_fraction);
    }
    t.add_row({Table::num(p.at("length_um"), 3),
               p.at("doping") == 0.0
                   ? "pristine"
                   : "iodine c=" + Table::num(p.at("doping"), 2),
               Table::num(r.resistance_kohm.median, 4),
               Table::num(r.resistance_kohm.cv(), 3),
               Table::num(r.resistance_kohm.p95 / r.resistance_kohm.p05,
                          3),
               Table::num(r.open_fraction, 3),
               Table::num(r.tail_fraction, 3)});
  }
  t.print(std::cout);

  std::cout << "\nGrowth-temperature ablation (pristine, L = 1 um):\n";
  const core::SweepGrid ablation(
      {{"t_c", {400.0, 450.0, 550.0, 650.0}}});
  const auto ab_results = core::run_sweep(
      ablation, [](const core::SweepPoint& p) {
        process::VariabilityConfig cfg;
        cfg.samples = 3000;
        cfg.recipe.temperature_c = p.at("t_c");
        cfg.threads = 1;
        return process::run_resistance_mc(cfg);
      });
  Table g({"T growth [C]", "median R [kOhm]", "CV"});
  for (std::size_t i = 0; i < ablation.size(); ++i) {
    g.add_row({Table::num(ablation.point(i).at("t_c"), 4),
               Table::num(ab_results[i].resistance_kohm.median, 4),
               Table::num(ab_results[i].resistance_kohm.cv(), 3)});
  }
  g.print(std::cout);
}

// Wall-clock scaling of the reworked MC: run with Arg pairs
// {samples, threads}. The acceptance target is >= 3x at 8 threads for
// 20000 samples versus the 1-thread run of the same code.
void BM_VariabilityMc(benchmark::State& state) {
  process::VariabilityConfig cfg;
  cfg.samples = static_cast<int>(state.range(0));
  cfg.threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(process::run_resistance_mc(cfg));
  }
}
BENCHMARK(BM_VariabilityMc)
    ->Args({500, 1})
    ->Args({2000, 1})
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->Args({20000, 4})
    ->Args({20000, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DesignSpaceSweep(benchmark::State& state) {
  const core::SweepGrid grid({{"length_um", {0.5, 1.0, 5.0}},
                              {"doping", {0.0, 0.01, 1.0}}});
  core::SweepOptions opts;
  opts.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_sweep(
        grid,
        [](const core::SweepPoint& p) {
          process::VariabilityConfig cfg;
          cfg.samples = 1000;
          cfg.length_um = p.at("length_um");
          cfg.dopant_concentration = p.at("doping");
          cfg.threads = 1;
          return process::run_resistance_mc(cfg);
        },
        opts));
  }
}
BENCHMARK(BM_DesignSpaceSweep)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
