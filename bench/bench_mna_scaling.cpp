// MNA linear-backend scaling: dense LU vs the sparse Gilbert–Peierls path
// on coupled CNT bus transients of growing size. This is the engine-level
// benchmark behind the ROADMAP scale goals — wide multi-line buses
// (Ting/Kreupl-style CNT via arrays and bus interconnects) need thousands
// of unknowns, where a fresh dense O(n^3) factorization per Newton
// iteration is the wall. The reproduction table reports wall-clock for an
// identical short transient through both backends; the sparse path must be
// >= 10x faster at the 2000-unknown bus (it lands far above that, since
// its pattern-frozen refactorization is near O(nnz) for banded ladders).
//
// Above the dense-affordable sizes a sparse-only ladder climbs into the
// 10^4-10^5-unknown regime (ROADMAP item 3): each rung reports the kAmd
// transient wall-clock plus the AMD-vs-natural nnz(L+U) of its shifted MNA
// pencil, and the 16 x 128 paper bus closes with the ROM-preconditioned
// BiCGSTAB vs Jacobi iteration counts against the sparse-LU oracle.
#include "bench_common.hpp"

#include <chrono>
#include <cmath>

#include "circuit/crosstalk.hpp"
#include "circuit/mna.hpp"
#include "core/mwcnt_line.hpp"
#include "numerics/ordering.hpp"
#include "numerics/solvers.hpp"
#include "numerics/sparse_lu.hpp"
#include "rom/interconnect_rom.hpp"
#include "rom/state_space.hpp"

namespace {

using namespace cnti;

circuit::BusConfig bus_config(int lines, int segments,
                              circuit::SolverKind solver) {
  circuit::BusConfig cfg;
  cfg.line = core::make_paper_mwcnt(10, 4.0, 20e3).rlc();
  cfg.coupling_cap_per_m = 30e-12;
  cfg.length_m = 100e-6;
  cfg.lines = lines;
  cfg.segments = segments;
  cfg.mna.solver = solver;
  return cfg;
}

double timed_bus_seconds(int lines, int segments,
                         circuit::SolverKind solver, int steps,
                         circuit::BusCrosstalkResult* result = nullptr) {
  const circuit::BusConfig cfg = bus_config(lines, segments, solver);
  const auto t0 = std::chrono::steady_clock::now();
  const circuit::BusCrosstalkResult r =
      circuit::analyze_bus_crosstalk(cfg, steps);
  const auto t1 = std::chrono::steady_clock::now();
  if (result) *result = r;
  return std::chrono::duration<double>(t1 - t0).count();
}

void print_reproduction() {
  bench::json().set_name("bench_mna_scaling");
  bench::print_header(
      "MNA backend scaling — dense vs sparse LU on coupled CNT buses",
      "Identical short transients (DC + 20 timesteps, trapezoidal) through "
      "both linear backends. The sparse path freezes the CSR pattern on "
      "the first assembly and refactorizes with a reused symbolic "
      "analysis; acceptance floor is >= 10x at >= 2000 unknowns.");

  // Small-to-large sweep at matched step counts. The 20-step window keeps
  // the dense O(n^3) reference affordable at the big sizes.
  constexpr int kSteps = 20;
  Table t({"lines x segs", "unknowns", "dense [s]", "sparse [s]",
           "speedup", "noise agree"});
  struct Case {
    int lines;
    int segments;
  };
  for (const Case c : {Case{4, 16}, Case{8, 32}, Case{8, 64},
                       Case{16, 128}}) {
    circuit::BusCrosstalkResult rd, rs;
    const double td = timed_bus_seconds(c.lines, c.segments,
                                        circuit::SolverKind::kDense, kSteps,
                                        &rd);
    const double ts = timed_bus_seconds(c.lines, c.segments,
                                        circuit::SolverKind::kSparse, kSteps,
                                        &rs);
    const double dv = std::abs(rd.peak_noise_v - rs.peak_noise_v);
    t.add_row({std::to_string(c.lines) + " x " + std::to_string(c.segments),
               std::to_string(rd.unknowns), Table::num(td, 4),
               Table::num(ts, 4), Table::num(td / ts, 4),
               dv < 1e-8 ? "yes" : "NO"});
    // Trajectory metrics for the acceptance case (the 2000-unknown bus).
    if (c.lines == 16 && c.segments == 128) {
      bench::json().set("unknowns", rd.unknowns);
      bench::json().set("dense_s", td);
      bench::json().set("sparse_s", ts);
      bench::json().set("speedup", td / ts);
      bench::json().set("noise_abs_diff_v", dv);
    }
  }
  t.print(std::cout);

  // What the sparse engine unlocks: a full-length transient on the
  // 2000+-unknown bus, which the dense path cannot touch interactively.
  circuit::BusCrosstalkResult full;
  const double tfull = timed_bus_seconds(16, 128,
                                         circuit::SolverKind::kSparse, 1000,
                                         &full);
  std::cout << "\nFull 1000-step transient, 16 x 128 bus ("
            << full.unknowns << " unknowns, sparse): "
            << Table::num(tfull, 4) << " s, worst victim line "
            << full.worst_victim << ", noise "
            << Table::num(full.peak_noise_v * 1e3, 4) << " mV\n";
  bench::json().set("full_transient_s", tfull);
  bench::json().set("full_noise_mv", full.peak_noise_v * 1e3);

  // --- Sparse-only size ladder into the 10^4-10^5 regime -----------------
  // No dense reference above 16 x 128 (an O(n^3) factorization per step
  // would take hours); instead each rung reports the AMD-vs-natural factor
  // fill of its shifted MNA pencil G + s C alongside the kAmd transient
  // wall-clock.
  std::cout << "\nSparse size ladder (kAmd default ordering, DC + "
            << kSteps << " steps):\n";
  Table ladder({"lines x segs", "unknowns", "transient [s]", "nnz(L+U) nat",
                "nnz(L+U) amd", "fill ratio"});
  int max_unknowns = 0;
  for (const Case c : {Case{16, 128}, Case{24, 256}, Case{32, 400},
                       Case{32, 640}, Case{64, 1024}}) {
    circuit::BusCrosstalkResult r;
    const double ts = timed_bus_seconds(c.lines, c.segments,
                                        circuit::SolverKind::kSparse, kSteps,
                                        &r);
    // Factor fill of the bare-bus shifted pencil at the analysis corner
    // (the same pattern the transient's companion matrices share).
    circuit::BusConfig cfg = bus_config(c.lines, c.segments,
                                        circuit::SolverKind::kSparse);
    // One dummy port satisfies the extractor's inputs>0 contract; G and C
    // are independent of the port list.
    const rom::StateSpace ss = rom::extract_state_space(
        circuit::build_bus_netlist(cfg).ckt,
        {.ports = {{"p0", 1}}, .observe = {}, .include_sources = false});
    const double s0 = 20.0 / circuit::bus_settle_time_s(cfg);
    numerics::SparseBuilder pencil(ss.g.rows(), ss.g.rows());
    for (std::size_t row = 0; row < ss.g.rows(); ++row) {
      for (std::size_t t2 = ss.g.row_ptr()[row];
           t2 < ss.g.row_ptr()[row + 1]; ++t2) {
        pencil.add(row, ss.g.col_indices()[t2], ss.g.values()[t2]);
      }
      for (std::size_t t2 = ss.c.row_ptr()[row];
           t2 < ss.c.row_ptr()[row + 1]; ++t2) {
        pencil.add(row, ss.c.col_indices()[t2], s0 * ss.c.values()[t2]);
      }
    }
    const numerics::SparseMatrix a = pencil.build();
    // kScalar pins the factor kernel: the supernodal path composes an
    // etree postorder into the column ordering, which would make the
    // natural-vs-AMD fill comparison measure two different permutations.
    numerics::SparseLu natural;
    natural.set_factor_mode(numerics::FactorMode::kScalar);
    natural.factorize(a);
    numerics::SparseLu amd;
    amd.set_factor_mode(numerics::FactorMode::kScalar);
    amd.set_column_ordering(numerics::amd_ordering(a));
    amd.factorize(a);
    const double nnz_nat =
        static_cast<double>(natural.nnz_l() + natural.nnz_u());
    const double nnz_amd = static_cast<double>(amd.nnz_l() + amd.nnz_u());
    ladder.add_row({std::to_string(c.lines) + " x " +
                        std::to_string(c.segments),
                    std::to_string(r.unknowns), Table::num(ts, 4),
                    std::to_string(natural.nnz_l() + natural.nnz_u()),
                    std::to_string(amd.nnz_l() + amd.nnz_u()),
                    Table::num(nnz_amd / nnz_nat, 4)});
    max_unknowns = std::max(max_unknowns, r.unknowns);
    if (c.lines == 32 && c.segments == 640) {
      bench::json().set("nnz_lu_natural", nnz_nat);
      bench::json().set("nnz_lu_amd", nnz_amd);
      bench::json().set("ladder_top_transient_s", ts);
    }

    // --- Supernodal vs scalar refactorization on the big rungs ----------
    // Interleaved min-of-k: rounds alternate between the two kernels so
    // ambient machine noise lands on both, and the minimum of each is the
    // quiet-machine estimate (the contended samples only ever inflate).
    if ((c.lines == 32 && c.segments == 640) ||
        (c.lines == 64 && c.segments == 1024)) {
      const std::string tag =
          std::to_string(c.lines) + "x" + std::to_string(c.segments);
      const auto ord = numerics::amd_ordering(a);
      numerics::SparseLu scalar;
      scalar.set_factor_mode(numerics::FactorMode::kScalar);
      scalar.set_column_ordering(ord);
      scalar.factorize(a);
      numerics::SparseLu blocked;
      blocked.set_factor_mode(numerics::FactorMode::kSupernodal);
      blocked.set_column_ordering(ord);
      blocked.factorize(a);
      const std::vector<double> rhs(a.rows(), 1.0);
      const auto min_refactor = [&](numerics::SparseLu& lu, int reps) {
        double best = 1e300;
        for (int i = 0; i < reps; ++i) {
          const auto f0 = std::chrono::steady_clock::now();
          lu.factorize(a);
          const auto f1 = std::chrono::steady_clock::now();
          best = std::min(best,
                          std::chrono::duration<double>(f1 - f0).count());
        }
        return best;
      };
      const auto min_solve = [&](numerics::SparseLu& lu, int reps) {
        double best = 1e300;
        for (int i = 0; i < reps; ++i) {
          const auto f0 = std::chrono::steady_clock::now();
          const auto x = lu.solve(rhs);
          const auto f1 = std::chrono::steady_clock::now();
          benchmark::DoNotOptimize(x.data());
          best = std::min(best,
                          std::chrono::duration<double>(f1 - f0).count());
        }
        return best;
      };
      double t_scalar = 1e300, t_blocked = 1e300;
      double s_scalar = 1e300, s_blocked = 1e300;
      for (int round = 0; round < 4; ++round) {
        t_scalar = std::min(t_scalar, min_refactor(scalar, 3));
        t_blocked = std::min(t_blocked, min_refactor(blocked, 3));
        s_scalar = std::min(s_scalar, min_solve(scalar, 3));
        s_blocked = std::min(s_blocked, min_solve(blocked, 3));
      }
      const double factor_speedup = t_scalar / t_blocked;
      const double solve_speedup = s_scalar / s_blocked;
      // GFLOP rates: the blocked engine counts its own Schur-update flops;
      // a triangular solve moves 2 flops per stored factor nonzero.
      const double gemm_gflops =
          static_cast<double>(blocked.last_gemm_flops()) / t_blocked * 1e-9;
      const double solve_gflops =
          2.0 * nnz_amd / s_blocked * 1e-9;
      std::cout << "\nSupernodal refactorization, " << tag << " ("
                << r.unknowns << " unknowns, " << blocked.supernodes()
                << " supernodes, max width " << blocked.max_supernode_cols()
                << "):\n  refactor " << Table::num(t_scalar * 1e3, 4)
                << " ms scalar vs " << Table::num(t_blocked * 1e3, 4)
                << " ms blocked (" << Table::num(factor_speedup, 3)
                << "x), Schur GEMM " << Table::num(gemm_gflops, 3)
                << " GF/s\n  solve    " << Table::num(s_scalar * 1e3, 4)
                << " ms scalar vs " << Table::num(s_blocked * 1e3, 4)
                << " ms blocked (" << Table::num(solve_speedup, 3)
                << "x), " << Table::num(solve_gflops, 3) << " GF/s\n";
      bench::json().set("supernodal_refactor_speedup_" + tag,
                        factor_speedup);
      bench::json().set("supernodal_solve_speedup_" + tag, solve_speedup);
      bench::json().set("supernodal_gemm_gflops_" + tag, gemm_gflops);
      bench::json().set("supernodal_solve_gflops_" + tag, solve_gflops);
      bench::json().set("scalar_refactor_ms_" + tag, t_scalar * 1e3);
      bench::json().set("supernodal_refactor_ms_" + tag, t_blocked * 1e3);
      bench::json().set("supernodal_count_" + tag,
                        static_cast<double>(blocked.supernodes()));
    }
  }
  ladder.print(std::cout);
  bench::json().set("ladder_max_unknowns", static_cast<double>(max_unknowns));

  // --- ROM-preconditioned Krylov vs Jacobi on the paper bus ---------------
  // The BusRom's PRIMA basis doubles as a two-level preconditioner for
  // full-system solves: coarse correction over the reduced span + Jacobi
  // smoother. Acceptance: >= 5x fewer BiCGSTAB iterations than Jacobi at
  // 1e-10 relative residual, matching sparse LU to 1e-8.
  const rom::BusRom bus(bus_config(16, 128, circuit::SolverKind::kSparse));
  const auto sys = bus.full_system({}, bus.nominal_shift_rad_per_s());
  numerics::SparseLu lu;
  lu.factorize(sys.a);
  const auto x_lu = lu.solve(sys.rhs);

  numerics::IterativeOptions iopt;
  iopt.max_iterations = 20000;
  iopt.tolerance = 1e-10;
  const auto jac = numerics::bicgstab(sys.a, sys.rhs, iopt);
  const auto pre = bus.preconditioner(sys.a);
  const auto romit = numerics::bicgstab(sys.a, sys.rhs, iopt, {}, pre.fn());
  double dmax = 0.0;
  for (std::size_t i = 0; i < x_lu.size(); ++i) {
    dmax = std::max(dmax, std::abs(x_lu[i] - romit.x[i]));
  }
  std::cout << "\nBiCGSTAB on the terminated 16 x 128 bus ("
            << sys.a.rows() << " unknowns, tol 1e-10):\n"
            << "  Jacobi:          " << jac.iterations << " iterations"
            << (jac.converged ? "" : " (stalled, not converged)") << "\n"
            << "  ROM two-level:   " << romit.iterations
            << " iterations (q = " << bus.order() << "), |x - x_lu|_max = "
            << Table::num(dmax, 3) << "\n";
  bench::json().set("bicgstab_jacobi_iterations",
                    static_cast<double>(jac.iterations));
  bench::json().set("bicgstab_rom_iterations",
                    static_cast<double>(romit.iterations));
  bench::json().set("rom_vs_lu_max_abs_diff", dmax);
}

void BM_SparseBusTransient(benchmark::State& state) {
  const int lines = static_cast<int>(state.range(0));
  const int segments = static_cast<int>(state.range(1));
  const circuit::BusConfig cfg =
      bus_config(lines, segments, circuit::SolverKind::kSparse);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::analyze_bus_crosstalk(cfg, 50));
  }
}
BENCHMARK(BM_SparseBusTransient)
    ->Args({4, 16})
    ->Args({8, 64})
    ->Args({16, 128})
    ->Unit(benchmark::kMillisecond);

void BM_DenseBusTransient(benchmark::State& state) {
  const int lines = static_cast<int>(state.range(0));
  const int segments = static_cast<int>(state.range(1));
  const circuit::BusConfig cfg =
      bus_config(lines, segments, circuit::SolverKind::kDense);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::analyze_bus_crosstalk(cfg, 50));
  }
}
BENCHMARK(BM_DenseBusTransient)->Args({4, 16})->Unit(benchmark::kMillisecond);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
