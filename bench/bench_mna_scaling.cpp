// MNA linear-backend scaling: dense LU vs the sparse Gilbert–Peierls path
// on coupled CNT bus transients of growing size. This is the engine-level
// benchmark behind the ROADMAP scale goals — wide multi-line buses
// (Ting/Kreupl-style CNT via arrays and bus interconnects) need thousands
// of unknowns, where a fresh dense O(n^3) factorization per Newton
// iteration is the wall. The reproduction table reports wall-clock for an
// identical short transient through both backends; the sparse path must be
// >= 10x faster at the 2000-unknown bus (it lands far above that, since
// its pattern-frozen refactorization is near O(nnz) for banded ladders).
#include "bench_common.hpp"

#include <chrono>
#include <cmath>

#include "circuit/crosstalk.hpp"
#include "circuit/mna.hpp"
#include "core/mwcnt_line.hpp"

namespace {

using namespace cnti;

circuit::BusConfig bus_config(int lines, int segments,
                              circuit::SolverKind solver) {
  circuit::BusConfig cfg;
  cfg.line = core::make_paper_mwcnt(10, 4.0, 20e3).rlc();
  cfg.coupling_cap_per_m = 30e-12;
  cfg.length_m = 100e-6;
  cfg.lines = lines;
  cfg.segments = segments;
  cfg.mna.solver = solver;
  return cfg;
}

double timed_bus_seconds(int lines, int segments,
                         circuit::SolverKind solver, int steps,
                         circuit::BusCrosstalkResult* result = nullptr) {
  const circuit::BusConfig cfg = bus_config(lines, segments, solver);
  const auto t0 = std::chrono::steady_clock::now();
  const circuit::BusCrosstalkResult r =
      circuit::analyze_bus_crosstalk(cfg, steps);
  const auto t1 = std::chrono::steady_clock::now();
  if (result) *result = r;
  return std::chrono::duration<double>(t1 - t0).count();
}

void print_reproduction() {
  bench::json().set_name("bench_mna_scaling");
  bench::print_header(
      "MNA backend scaling — dense vs sparse LU on coupled CNT buses",
      "Identical short transients (DC + 20 timesteps, trapezoidal) through "
      "both linear backends. The sparse path freezes the CSR pattern on "
      "the first assembly and refactorizes with a reused symbolic "
      "analysis; acceptance floor is >= 10x at >= 2000 unknowns.");

  // Small-to-large sweep at matched step counts. The 20-step window keeps
  // the dense O(n^3) reference affordable at the big sizes.
  constexpr int kSteps = 20;
  Table t({"lines x segs", "unknowns", "dense [s]", "sparse [s]",
           "speedup", "noise agree"});
  struct Case {
    int lines;
    int segments;
  };
  for (const Case c : {Case{4, 16}, Case{8, 32}, Case{8, 64},
                       Case{16, 128}}) {
    circuit::BusCrosstalkResult rd, rs;
    const double td = timed_bus_seconds(c.lines, c.segments,
                                        circuit::SolverKind::kDense, kSteps,
                                        &rd);
    const double ts = timed_bus_seconds(c.lines, c.segments,
                                        circuit::SolverKind::kSparse, kSteps,
                                        &rs);
    const double dv = std::abs(rd.peak_noise_v - rs.peak_noise_v);
    t.add_row({std::to_string(c.lines) + " x " + std::to_string(c.segments),
               std::to_string(rd.unknowns), Table::num(td, 4),
               Table::num(ts, 4), Table::num(td / ts, 4),
               dv < 1e-8 ? "yes" : "NO"});
    // Trajectory metrics for the acceptance case (the 2000-unknown bus).
    if (c.lines == 16 && c.segments == 128) {
      bench::json().set("unknowns", rd.unknowns);
      bench::json().set("dense_s", td);
      bench::json().set("sparse_s", ts);
      bench::json().set("speedup", td / ts);
      bench::json().set("noise_abs_diff_v", dv);
    }
  }
  t.print(std::cout);

  // What the sparse engine unlocks: a full-length transient on the
  // 2000+-unknown bus, which the dense path cannot touch interactively.
  circuit::BusCrosstalkResult full;
  const double tfull = timed_bus_seconds(16, 128,
                                         circuit::SolverKind::kSparse, 1000,
                                         &full);
  std::cout << "\nFull 1000-step transient, 16 x 128 bus ("
            << full.unknowns << " unknowns, sparse): "
            << Table::num(tfull, 4) << " s, worst victim line "
            << full.worst_victim << ", noise "
            << Table::num(full.peak_noise_v * 1e3, 4) << " mV\n";
  bench::json().set("full_transient_s", tfull);
  bench::json().set("full_noise_mv", full.peak_noise_v * 1e3);
}

void BM_SparseBusTransient(benchmark::State& state) {
  const int lines = static_cast<int>(state.range(0));
  const int segments = static_cast<int>(state.range(1));
  const circuit::BusConfig cfg =
      bus_config(lines, segments, circuit::SolverKind::kSparse);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::analyze_bus_crosstalk(cfg, 50));
  }
}
BENCHMARK(BM_SparseBusTransient)
    ->Args({4, 16})
    ->Args({8, 64})
    ->Args({16, 128})
    ->Unit(benchmark::kMillisecond);

void BM_DenseBusTransient(benchmark::State& state) {
  const int lines = static_cast<int>(state.range(0));
  const int segments = static_cast<int>(state.range(1));
  const circuit::BusConfig cfg =
      bus_config(lines, segments, circuit::SolverKind::kDense);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::analyze_bus_crosstalk(cfg, 50));
  }
}
BENCHMARK(BM_DenseBusTransient)->Args({4, 16})->Unit(benchmark::kMillisecond);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
