// Reproduces paper Fig. 2d: electrical characterization of a
// side-contacted single MWCNT before and after PtCl4 doping — IV sweep and
// the low-bias resistance drop.
#include "bench_common.hpp"

#include "atomistic/doping.hpp"
#include "charz/iv.hpp"
#include "common/units.hpp"

namespace {

using namespace cnti;

void print_reproduction() {
  bench::print_header(
      "Fig. 2d — single MWCNT IV before/after PtCl4 doping",
      "Side-contacted 7.5 nm CVD MWCNT (4-5 walls), 1 um span.\n"
      "Expected shape: doping lowers the low-bias resistance ~2-4x and "
      "raises the saturated current.");

  charz::CntDeviceSpec dev;  // paper's CVD tube defaults
  const atomistic::ChargeTransferDoping doping(
      atomistic::DopantSpecies::kPtCl4External, 1.0);

  const double r_before = charz::device_resistance_kohm(dev, nullptr);
  const double r_after = charz::device_resistance_kohm(dev, &doping);
  Table t({"state", "R [kOhm]", "I(1 V) [uA]"});
  const auto iv_before = charz::sweep_iv(dev, nullptr, 1.0, 41);
  const auto iv_after = charz::sweep_iv(dev, &doping, 1.0, 41);
  t.add_row({"pristine", Table::num(r_before, 4),
             Table::num(iv_before.back().current_ua, 4)});
  t.add_row({"PtCl4 doped", Table::num(r_after, 4),
             Table::num(iv_after.back().current_ua, 4)});
  t.print(std::cout);
  std::cout << "\nR(doped)/R(pristine) = "
            << Table::num(r_after / r_before, 3)
            << "  (paper Fig. 2d: clear reduction after doping)\n\n";

  Table iv({"V [V]", "I pristine [uA]", "I doped [uA]"});
  for (std::size_t i = 0; i < iv_before.size(); i += 5) {
    iv.add_row({Table::num(iv_before[i].voltage_v, 3),
                Table::num(iv_before[i].current_ua, 4),
                Table::num(iv_after[i].current_ua, 4)});
  }
  iv.print(std::cout);
}

void BM_IvSweep(benchmark::State& state) {
  charz::CntDeviceSpec dev;
  for (auto _ : state) {
    benchmark::DoNotOptimize(charz::sweep_iv(dev, nullptr, 1.0, 101));
  }
}
BENCHMARK(BM_IvSweep);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
