// Reproduces the paper's Sec. IV.B transmission-line-measurement analysis:
// MWCNT segments of several lengths are "measured" (virtual tester with
// noise) and the contact resistance / per-length resistance are regressed
// out, with error bars — the same chain the paper applies per ref [23].
#include "bench_common.hpp"

#include "charz/tlm.hpp"
#include "numerics/rng.hpp"

namespace {

using namespace cnti;

void print_reproduction() {
  bench::print_header(
      "Sec. IV.B — TLM contact-resistance extraction",
      "R_total(L) = 2 R_c + r L, weighted regression on noisy virtual "
      "measurements.");

  charz::TlmGroundTruth truth;
  truth.contact_resistance_kohm = 20.0;
  truth.resistance_per_um_kohm = 6.0;
  truth.measurement_noise_fraction = 0.02;
  numerics::Rng rng(2024);
  const std::vector<double> lengths = {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0};
  const auto data = charz::generate_tlm_data(truth, lengths, rng);

  Table t({"L [um]", "R measured [kOhm]"});
  for (const auto& s : data) {
    t.add_row({Table::num(s.length_um, 3),
               Table::num(s.resistance_kohm, 4)});
  }
  t.print(std::cout);

  const auto fit = charz::extract_tlm(data);
  std::cout << "\nExtraction (truth in parentheses):\n";
  Table r({"parameter", "extracted", "stderr", "truth"});
  r.add_row({"R_contact [kOhm]", Table::num(fit.contact_resistance_kohm, 4),
             Table::num(fit.contact_stderr_kohm, 3),
             Table::num(truth.contact_resistance_kohm, 4)});
  r.add_row({"r [kOhm/um]", Table::num(fit.resistance_per_um_kohm, 4),
             Table::num(fit.slope_stderr_kohm, 3),
             Table::num(truth.resistance_per_um_kohm, 4)});
  r.add_row({"R^2", Table::num(fit.r_squared, 5), "-", "1"});
  r.print(std::cout);
}

void BM_TlmPipeline(benchmark::State& state) {
  charz::TlmGroundTruth truth;
  numerics::Rng rng(7);
  const std::vector<double> lengths = {0.5, 1.0, 2.0, 3.0, 5.0};
  for (auto _ : state) {
    const auto data = charz::generate_tlm_data(truth, lengths, rng);
    benchmark::DoNotOptimize(charz::extract_tlm(data));
  }
}
BENCHMARK(BM_TlmPipeline);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
