// Reproduces paper Fig. 8a: ballistic conductance vs. diameter of zigzag
// and armchair SWCNTs at 300 K (DFT/NEGF in the paper; zone-folding TB +
// Landauer here). Expected shape: metallic tubes cluster at G ~ 2 G0 =
// 0.155 mS with small-diameter quantum-confinement variation;
// semiconducting zigzag tubes sit near zero. N_c = G/G0 ~ 2 (paper Eq. 1).
#include "bench_common.hpp"

#include "atomistic/bandstructure.hpp"
#include "atomistic/landauer.hpp"
#include "common/units.hpp"

namespace {

using namespace cnti;

void print_reproduction() {
  bench::print_header(
      "Fig. 8a — ballistic conductance vs. diameter (300 K)",
      "Armchair (n,n) and zigzag (n,0) SWCNTs; G0 = 77.5 uS.\n"
      "Paper anchor: (7,7) -> 0.155 mS, N_c ~ 2 regardless of chirality.");

  Table t({"tube", "type", "d [nm]", "G [mS]", "N_c", "metallic"});
  for (int n = 4; n <= 18; n += 2) {
    const atomistic::Chirality ch(n, n);
    const atomistic::BandStructure bands(ch);
    const double g = atomistic::ballistic_conductance(bands, 0.0, 300.0);
    t.add_row({ch.label(), "armchair",
               Table::num(units::to_nm(ch.diameter()), 3),
               Table::num(units::to_mS(g), 4),
               Table::num(g / phys::kConductanceQuantum, 4), "yes"});
  }
  for (int n = 7; n <= 25; n += 2) {
    const atomistic::Chirality ch(n, 0);
    const atomistic::BandStructure bands(ch);
    const double g = atomistic::ballistic_conductance(bands, 0.0, 300.0);
    t.add_row({ch.label(), "zigzag",
               Table::num(units::to_nm(ch.diameter()), 3),
               Table::num(units::to_mS(g), 4),
               Table::num(g / phys::kConductanceQuantum, 4),
               ch.is_metallic() ? "yes" : "no"});
  }
  t.print(std::cout);

  const atomistic::BandStructure b77(atomistic::Chirality(7, 7));
  std::cout << "\nPaper anchor check: G(7,7) = "
            << Table::num(units::to_mS(atomistic::ballistic_conductance(
                              b77, 0.0, 300.0)),
                          4)
            << " mS (paper: 0.155 mS)\n";
}

void BM_LandauerConductance(benchmark::State& state) {
  const atomistic::Chirality ch(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(0)));
  const atomistic::BandStructure bands(ch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        atomistic::ballistic_conductance(bands, 0.0, 300.0));
  }
}
BENCHMARK(BM_LandauerConductance)->Arg(5)->Arg(10)->Arg(15);

void BM_ModeCounting(benchmark::State& state) {
  const atomistic::BandStructure bands(atomistic::Chirality(10, 10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bands.count_modes(1.5));
  }
}
BENCHMARK(BM_ModeCounting);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
