// ROM-vs-full-order scaling: the PRIMA reduced bus against the sparse-MNA
// transient engine on the paper's 16-line, 128-segment coupled bus (2098
// MNA unknowns). The reproduction payload times a 100-point driver x load
// scenario sweep both ways — reduce once + evaluate per point (ROM) vs a
// full transient per point (MNA) — and differentially checks the
// reduced-model 50% delay and far-end noise peak on every point.
// Acceptance floor: >= 20x sweep speedup with <= 1% worst-case error.
//
// Metrics land in BENCH_bench_rom_scaling.json when CNTI_BENCH_JSON is
// set (see bench_common.hpp), which is where the perf trajectory tracking
// starts.
#include "bench_common.hpp"

#include <chrono>
#include <cmath>
#include <vector>

#include "circuit/crosstalk.hpp"
#include "core/mwcnt_line.hpp"
#include "core/sweep_engine.hpp"
#include "rom/interconnect_rom.hpp"

namespace {

using namespace cnti;

constexpr int kLines = 16;
constexpr int kSegments = 128;
constexpr int kTimeSteps = 600;

circuit::BusConfig paper_bus() {
  circuit::BusConfig cfg;
  cfg.line = core::make_paper_mwcnt(10, 4.0, 20e3).rlc();
  cfg.coupling_cap_per_m = 30e-12;
  cfg.length_m = 100e-6;
  cfg.lines = kLines;
  cfg.segments = kSegments;
  return cfg;
}

/// 10 x 10 driver-strength x receiver-load grid (the scenario sweep).
core::SweepGrid scenario_grid() {
  std::vector<double> drivers, loads;
  for (int i = 0; i < 10; ++i) {
    drivers.push_back(1e3 * std::pow(20.0, i / 9.0));   // 1k .. 20k Ohm
    loads.push_back(0.05e-15 * std::pow(20.0, i / 9.0));  // 0.05 .. 1 fF
  }
  return core::SweepGrid({{"driver_ohm", drivers}, {"load_f", loads}});
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_reproduction() {
  bench::print_header(
      "PRIMA ROM vs full sparse-MNA on the 16 x 128 coupled bus",
      "100-point driver x load scenario sweep over the 2098-unknown bus: "
      "full transient per point (sparse MNA) vs reduce-once + small dense "
      "evaluation per point (PRIMA). Every point is differentially checked "
      "(50% delay, far-end noise peak). Acceptance: >= 20x, <= 1% error.");
  bench::json().set_name("bench_rom_scaling");

  const circuit::BusConfig cfg = paper_bus();
  const core::SweepGrid grid = scenario_grid();

  // --- ROM path: one reduction, then 100 cheap evaluations. --------------
  const auto t_reduce0 = std::chrono::steady_clock::now();
  const rom::BusRom bus(cfg);
  const double t_reduce = seconds_since(t_reduce0);

  const auto t_rom0 = std::chrono::steady_clock::now();
  std::vector<circuit::BusCrosstalkResult> rom_results(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto p = grid.point(i);
    rom::BusScenario sc;
    sc.driver_ohm = p.at("driver_ohm");
    sc.receiver_load_f = p.at("load_f");
    rom_results[i] = bus.evaluate(sc, kTimeSteps);
  }
  const double t_rom_eval = seconds_since(t_rom0);

  // --- Full-order reference: one sparse transient per point. -------------
  const auto t_full0 = std::chrono::steady_clock::now();
  std::vector<circuit::BusCrosstalkResult> full_results(grid.size());
  int full_unknowns = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto p = grid.point(i);
    circuit::BusConfig point_cfg = cfg;
    point_cfg.driver_ohm = p.at("driver_ohm");
    point_cfg.receiver_load_f = p.at("load_f");
    full_results[i] = circuit::analyze_bus_crosstalk(point_cfg, kTimeSteps);
    full_unknowns = full_results[i].unknowns;
  }
  const double t_full = seconds_since(t_full0);

  double max_noise_err = 0.0, max_delay_err = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    max_noise_err = std::max(
        max_noise_err,
        std::abs(rom_results[i].peak_noise_v - full_results[i].peak_noise_v) /
            std::abs(full_results[i].peak_noise_v));
    max_delay_err = std::max(
        max_delay_err, std::abs(rom_results[i].aggressor_delay_s -
                                full_results[i].aggressor_delay_s) /
                           full_results[i].aggressor_delay_s);
  }
  const double t_rom_total = t_reduce + t_rom_eval;
  const double speedup = t_full / t_rom_total;

  Table t({"path", "order", "sweep time [s]", "per point [ms]",
           "max noise err [%]", "max delay err [%]"});
  t.add_row({"full sparse MNA", std::to_string(full_unknowns),
             Table::num(t_full, 4),
             Table::num(1e3 * t_full / static_cast<double>(grid.size()), 4),
             "-", "-"});
  t.add_row({"PRIMA ROM", std::to_string(bus.order()),
             Table::num(t_rom_total, 4),
             Table::num(1e3 * t_rom_eval / static_cast<double>(grid.size()), 4),
             Table::num(100.0 * max_noise_err, 4),
             Table::num(100.0 * max_delay_err, 4)});
  t.print(std::cout);
  std::cout << "\nReduce once: " << Table::num(t_reduce, 4)
            << " s (order " << bus.order() << " of " << bus.full_order()
            << "); sweep speedup " << Table::num(speedup, 4) << "x ("
            << (speedup >= 20.0 ? "PASS" : "FAIL") << " >= 20x), errors "
            << (max_noise_err <= 0.01 && max_delay_err <= 0.01 ? "PASS"
                                                               : "FAIL")
            << " <= 1%\n";

  bench::json().set("sweep_points", static_cast<double>(grid.size()));
  bench::json().set("full_unknowns", full_unknowns);
  bench::json().set("rom_order", bus.order());
  bench::json().set("reduce_s", t_reduce);
  bench::json().set("rom_eval_s", t_rom_eval);
  bench::json().set("full_sweep_s", t_full);
  bench::json().set("speedup", speedup);
  bench::json().set("max_noise_err_pct", 100.0 * max_noise_err);
  bench::json().set("max_delay_err_pct", 100.0 * max_delay_err);
}

void BM_PrimaReduceBus(benchmark::State& state) {
  const circuit::BusConfig cfg = paper_bus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rom::BusRom(cfg));
  }
}
BENCHMARK(BM_PrimaReduceBus)->Unit(benchmark::kMillisecond);

void BM_RomScenarioEvaluate(benchmark::State& state) {
  const rom::BusRom bus(paper_bus());
  rom::BusScenario sc;
  sc.driver_ohm = 2e3;
  sc.receiver_load_f = 0.5e-15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.evaluate(sc, kTimeSteps));
  }
}
BENCHMARK(BM_RomScenarioEvaluate)->Unit(benchmark::kMillisecond);

void BM_FullMnaScenario(benchmark::State& state) {
  circuit::BusConfig cfg = paper_bus();
  cfg.driver_ohm = 2e3;
  cfg.receiver_load_f = 0.5e-15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::analyze_bus_crosstalk(cfg, kTimeSteps));
  }
}
BENCHMARK(BM_FullMnaScenario)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
