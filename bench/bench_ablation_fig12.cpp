// Ablation of the Fig. 12 reproduction's modeling choices (the paper does
// not specify them; DESIGN.md documents our calibration):
//   1. contact resistance (the key knob for the absolute reductions),
//   2. shell-count rule (paper linear N_s = D-1 vs physical vdW filling),
//   3. MFP rule (uniform lambda = 1000 D_max vs per-shell 1000 d_i),
//   4. electrostatic capacitance value.
// Reported metric: % delay reduction at the paper checkpoint
// (L = 500 um, N_c = 10), Elmore model for speed.
#include "bench_common.hpp"

#include "core/line_model.hpp"
#include "core/mwcnt_line.hpp"

namespace {

using namespace cnti;

double reduction_pct(const core::MwcntSpec& base_spec) {
  core::DriverLineLoad cfg;
  cfg.driver_resistance_ohm = 2.5e3;
  cfg.load_capacitance_f = 0.3e-15;
  cfg.length_m = 500e-6;

  core::MwcntSpec pristine = base_spec;
  pristine.channels_per_shell = 2.0;
  core::MwcntSpec doped = base_spec;
  doped.channels_per_shell = 10.0;

  cfg.line = core::MwcntLine(pristine).rlc();
  const double tp = core::elmore_delay(cfg);
  cfg.line = core::MwcntLine(doped).rlc();
  return 100.0 * (1.0 - core::elmore_delay(cfg) / tp);
}

core::MwcntSpec reference_spec(double d_nm) {
  core::MwcntSpec spec;
  spec.outer_diameter_m = d_nm * 1e-9;
  spec.shell_rule = core::ShellRule::kPaperLinear;
  spec.mfp_rule = core::MfpRule::kOuterDiameter;
  spec.contact_resistance_ohm = 200e3;
  spec.electrostatic_capacitance_f_per_m = 50e-12;
  return spec;
}

void print_reproduction() {
  bench::print_header(
      "Ablation — Fig. 12 calibration choices",
      "Metric: % delay reduction, doped (N_c=10) vs pristine, L = 500 um.\n"
      "Paper reports ~10 / 5 / 2 % for D = 10 / 14 / 22 nm.");

  std::cout << "1) Contact resistance sweep (reference C_E = 50 aF/um, "
               "paper shell rule):\n";
  Table t1({"R_contact [kOhm]", "D=10 nm", "D=14 nm", "D=22 nm"});
  for (double rc : {0.0, 50.0, 100.0, 200.0, 400.0}) {
    std::vector<std::string> row{Table::num(rc, 4)};
    for (double d : {10.0, 14.0, 22.0}) {
      auto spec = reference_spec(d);
      spec.contact_resistance_ohm = rc * 1e3;
      row.push_back(Table::num(reduction_pct(spec), 3));
    }
    t1.add_row(row);
  }
  t1.print(std::cout);
  std::cout << "-> 200 kOhm lands on the paper's 10/5/2 %; ideal contacts "
               "would predict far larger reductions.\n\n";

  std::cout << "2) Shell rule:\n";
  Table t2({"rule", "N_s(10/14/22)", "D=10 nm", "D=14 nm", "D=22 nm"});
  for (const auto rule :
       {core::ShellRule::kPaperLinear, core::ShellRule::kVanDerWaals}) {
    std::vector<std::string> row;
    row.push_back(rule == core::ShellRule::kPaperLinear ? "paper N_s=D-1"
                                                        : "vdW filling");
    std::string ns;
    for (double d : {10.0, 14.0, 22.0}) {
      auto spec = reference_spec(d);
      spec.shell_rule = rule;
      ns += std::to_string(core::MwcntLine(spec).shell_count()) + "/";
    }
    ns.pop_back();
    row.push_back(ns);
    for (double d : {10.0, 14.0, 22.0}) {
      auto spec = reference_spec(d);
      spec.shell_rule = rule;
      row.push_back(Table::num(reduction_pct(spec), 3));
    }
    t2.add_row(row);
  }
  t2.print(std::cout);

  std::cout << "\n3) MFP rule:\n";
  Table t3({"rule", "D=10 nm", "D=14 nm", "D=22 nm"});
  for (const auto rule :
       {core::MfpRule::kOuterDiameter, core::MfpRule::kPerShell}) {
    std::vector<std::string> row;
    row.push_back(rule == core::MfpRule::kOuterDiameter
                      ? "lambda = 1000 D_max"
                      : "lambda_i = 1000 d_i");
    for (double d : {10.0, 14.0, 22.0}) {
      auto spec = reference_spec(d);
      spec.mfp_rule = rule;
      row.push_back(Table::num(reduction_pct(spec), 3));
    }
    t3.add_row(row);
  }
  t3.print(std::cout);

  std::cout << "\n4) Electrostatic capacitance (D = 10 nm):\n";
  Table t4({"C_E [aF/um]", "reduction [%]"});
  for (double ce : {20.0, 50.0, 100.0, 200.0}) {
    auto spec = reference_spec(10.0);
    spec.electrostatic_capacitance_f_per_m = ce * 1e-12;
    t4.add_row({Table::num(ce, 4), Table::num(reduction_pct(spec), 3)});
  }
  t4.print(std::cout);
  std::cout << "-> C_E cancels in the ratio to first order: the reduction "
               "is set by the resistance split, as Eq. 5 predicts.\n";
}

void BM_AblationPoint(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduction_pct(reference_spec(10.0)));
  }
}
BENCHMARK(BM_AblationPoint);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
