// Reproduces paper Fig. 9: conductivity of SWCNT and MWCNT lines with
// different lengths and diameters, compared to Cu lines. Expected shape:
// CNT conductivity rises with length (ballistic -> diffusive) and
// saturates near/above bulk-Cu levels, while scaled Cu wires lose
// conductivity to surface/grain-boundary scattering — so long CNTs beat
// narrow Cu, and short CNTs lose to the quantum resistance.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "core/mwcnt_line.hpp"
#include "core/swcnt_line.hpp"
#include "materials/copper.hpp"

namespace {

using namespace cnti;
using units::from_nm;
using units::from_um;

double cu_sigma(double width_nm) {
  materials::CuLineSpec spec;
  spec.width_m = from_nm(width_nm);
  spec.height_m = 2.0 * spec.width_m;
  return materials::CuLine(spec).effective_conductivity();
}

void print_reproduction() {
  bench::print_header(
      "Fig. 9 — conductivity of SWCNT/MWCNT vs. Cu lines",
      "sigma referenced to the wire cross-section [MS/m]; bulk Cu = 58.\n"
      "Cu columns: size-effect (FS+MS+barrier) conductivity of w x 2w "
      "wires.");

  core::SwcntSpec swcnt;  // 1 nm metallic tube
  const core::SwcntWire sw(swcnt);

  Table t({"L [um]", "SWCNT d=1nm", "MWCNT D=5nm", "MWCNT D=10nm",
           "MWCNT D=20nm", "Cu w=10nm", "Cu w=22nm", "Cu w=45nm",
           "Cu w=100nm"});
  for (double l_um : {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0,
                      1000.0}) {
    const double l = from_um(l_um);
    const auto ms = [](double s) { return Table::num(s / 1e6, 4); };
    t.add_row({Table::num(l_um, 4),
               ms(sw.effective_conductivity(l)),
               ms(core::make_paper_mwcnt(5, 2, 0).effective_conductivity(l)),
               ms(core::make_paper_mwcnt(10, 2, 0).effective_conductivity(l)),
               ms(core::make_paper_mwcnt(20, 2, 0).effective_conductivity(l)),
               ms(cu_sigma(10)), ms(cu_sigma(22)), ms(cu_sigma(45)),
               ms(cu_sigma(100))});
  }
  t.print(std::cout);

  // Crossover commentary: where does the 10 nm MWCNT beat the 10 nm wire?
  const double cu10 = cu_sigma(10);
  double crossover = -1.0;
  for (double l_um = 0.05; l_um < 1000.0; l_um *= 1.1) {
    if (core::make_paper_mwcnt(10, 2, 0)
            .effective_conductivity(from_um(l_um)) > cu10) {
      crossover = l_um;
      break;
    }
  }
  std::cout << "\nMWCNT(10 nm) overtakes the 10 nm Cu wire at L ~ "
            << Table::num(crossover, 3) << " um\n";

  // Doped-MWCNT extension: conductivity with N_c = 10.
  std::cout << "Doped MWCNT D=10 nm (N_c=10) at L = 100 um: "
            << Table::num(core::make_paper_mwcnt(10, 10, 0)
                                  .effective_conductivity(from_um(100)) /
                              1e6,
                          4)
            << " MS/m vs pristine "
            << Table::num(core::make_paper_mwcnt(10, 2, 0)
                                  .effective_conductivity(from_um(100)) /
                              1e6,
                          4)
            << " MS/m\n";
}

void BM_MwcntConductivity(benchmark::State& state) {
  const core::MwcntLine line = core::make_paper_mwcnt(10, 2, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(line.effective_conductivity(1e-4));
  }
}
BENCHMARK(BM_MwcntConductivity);

void BM_CuSizeEffects(benchmark::State& state) {
  materials::CuLineSpec spec;
  spec.width_m = 10e-9;
  spec.height_m = 20e-9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(materials::cu_effective_resistivity(spec));
  }
}
BENCHMARK(BM_CuSizeEffects);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
