// Reproduces the paper's Sec. II.C composite study: Cu-CNT composite as
// "an efficient trade-off between resistivity and ampacity" — conductivity,
// maximum current density, EM lifetime and thermal conductivity vs. CNT
// volume fraction, and ELD vs. ECD fill processes.
#include "bench_common.hpp"

#include "common/units.hpp"
#include "charz/em_test.hpp"
#include "materials/composite.hpp"
#include "process/composite_process.hpp"

namespace {

using namespace cnti;

void print_reproduction() {
  bench::print_header(
      "Sec. II.C — Cu-CNT composite resistivity/ampacity trade-off",
      "Effective-medium composite over size-effect Cu matrix "
      "(rho_Cu,matrix = 3e-8 Ohm m at scaled dimensions).");

  Table t({"CNT vol. frac.", "sigma [MS/m]", "j_max [MA/cm^2]",
           "EM lifetime xCu", "k_th [W/mK]"});
  for (double vf : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}) {
    materials::CompositeSpec spec;
    spec.cnt_volume_fraction = vf;
    spec.void_fraction = 0.02;
    spec.cu_matrix_resistivity = 3e-8;
    t.add_row(
        {Table::num(vf, 3),
         Table::num(materials::composite_conductivity(spec) / 1e6, 4),
         Table::num(units::to_A_per_cm2(
                        materials::composite_max_current_density(spec)) /
                        1e6,
                    4),
         Table::num(materials::composite_em_lifetime_factor(spec), 4),
         Table::num(materials::composite_thermal_conductivity(spec), 4)});
  }
  t.print(std::cout);

  std::cout << "\nFill-process comparison (30% CNT carpet):\n";
  Table p({"process", "time [min]", "fill frac.", "void frac.",
           "CMOS chem.", "feasible"});
  for (const auto method : {process::FillMethod::kEld,
                            process::FillMethod::kEcd}) {
    for (double minutes : {15.0, 60.0, 120.0}) {
      process::FillRecipe recipe;
      recipe.method = method;
      recipe.plating_time_min = minutes;
      recipe.bath_quality = 0.9;
      const auto out = process::simulate_fill(recipe, 0.3);
      p.add_row({process::to_string(method), Table::num(minutes, 4),
                 Table::num(out.fill_fraction, 3),
                 Table::num(out.void_fraction, 3),
                 out.cmos_compatible_chemistry ? "yes" : "no",
                 out.feasible ? "yes" : "no"});
    }
  }
  p.print(std::cout);

  // EM stress: Cu vs. composite vs. pure CNT (Sec. IV.A focus:
  // "reliability improvement ... regarding ampacity and EM resistance").
  std::cout << "\nAccelerated EM stress (2.5 MA/cm^2, 300 C, n=200):\n";
  charz::EmStressConditions cond;
  materials::CompositeSpec comp;
  comp.cnt_volume_fraction = 0.4;
  comp.cu_matrix_resistivity = 3e-8;
  const auto cu = charz::run_em_stress(charz::LineTechnology::kCu, cond);
  const auto cc = charz::run_em_stress(
      charz::LineTechnology::kCuCntComposite, cond, comp);
  const auto cnt =
      charz::run_em_stress(charz::LineTechnology::kPureCnt, cond);
  Table e({"technology", "median TTF [h]", "use-cond. median [years]"});
  e.add_row({"Cu", Table::num(cu.ttf_hours.median, 4),
             Table::num(cu.use_median_years, 4)});
  e.add_row({"Cu-CNT composite", Table::num(cc.ttf_hours.median, 4),
             Table::num(cc.use_median_years, 4)});
  e.add_row({"pure CNT", cnt.immortal ? "no EM failure" : "fails",
             cnt.immortal ? ">1e9 (EM-immune)" : "0"});
  e.print(std::cout);
}

void BM_CompositeModels(benchmark::State& state) {
  materials::CompositeSpec spec;
  spec.cnt_volume_fraction = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(materials::composite_conductivity(spec));
    benchmark::DoNotOptimize(
        materials::composite_max_current_density(spec));
  }
}
BENCHMARK(BM_CompositeModels);

void BM_EmStressPopulation(benchmark::State& state) {
  charz::EmStressConditions cond;
  cond.population = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        charz::run_em_stress(charz::LineTechnology::kCu, cond));
  }
}
BENCHMARK(BM_EmStressPopulation);

}  // namespace

CNTI_BENCH_MAIN(print_reproduction)
