// scenario_shard — sharded deterministic Monte Carlo statistical-SI
// studies, one process per shard, merged to a single report.
//
//   scenario_shard run --samples N --out shard.json
//                      [--shard I --shards S] [--seed U64]
//                      [--span-r X] [--span-c X] [--span-cc X]
//                      [--lines N] [--segments N] [--steps N]
//                      [--length-um X] [--threads N] [--grain N]
//   scenario_shard merge --out study.json [--csv study.csv] SHARD.json...
//
// Every `run` invocation evaluates only its global sample range
// [I*N/S, (I+1)*N/S) but derives each sample's technology point from
// (seed, global sample id) alone, so `merge` produces byte-identical
// reports for any shard count — the acceptance check scripted in
// scripts/shard_smoke.sh.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/engine.hpp"
#include "scenario/statistical.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " run --samples N --out shard.json [--shard I --shards S]\n"
         "        [--seed U64] [--span-r X] [--span-c X] [--span-cc X]\n"
         "        [--lines N] [--segments N] [--steps N] [--length-um X]\n"
         "        [--threads N] [--grain N]\n"
         "   or: " << argv0
      << " merge --out study.json [--csv study.csv] SHARD.json...\n";
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << bytes;
}

int run_mode(int argc, char** argv) {
  using namespace cnti;

  scenario::Scenario s;
  s.label = "statistical-si";
  s.workload.bus_lines = 4;
  s.workload.bus_segments = 8;
  s.analysis.delay = false;
  s.analysis.noise = true;
  s.analysis.noise_model = scenario::NoiseModel::kReducedOrder;
  s.analysis.time_steps = 300;
  s.variability.resistance_span = 0.15;
  s.variability.capacitance_span = 0.10;
  s.variability.coupling_span = 0.20;

  std::uint64_t shard = 0;
  std::uint64_t shards = 1;
  std::string out_path;
  scenario::EngineOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (!has_value) return usage(argv[0]);
    const char* value = argv[++i];
    if (arg == "--samples") {
      s.variability.samples = std::atoi(value);
    } else if (arg == "--shard") {
      shard = std::strtoull(value, nullptr, 10);
    } else if (arg == "--shards") {
      shards = std::strtoull(value, nullptr, 10);
    } else if (arg == "--seed") {
      s.variability.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--span-r") {
      s.variability.resistance_span = std::atof(value);
    } else if (arg == "--span-c") {
      s.variability.capacitance_span = std::atof(value);
    } else if (arg == "--span-cc") {
      s.variability.coupling_span = std::atof(value);
    } else if (arg == "--lines") {
      s.workload.bus_lines = std::atoi(value);
    } else if (arg == "--segments") {
      s.workload.bus_segments = std::atoi(value);
    } else if (arg == "--steps") {
      s.analysis.time_steps = std::atoi(value);
    } else if (arg == "--length-um") {
      s.workload.length_um = std::atof(value);
    } else if (arg == "--threads") {
      options.sweep.threads = std::atoi(value);
    } else if (arg == "--grain") {
      options.sweep.grain = static_cast<std::size_t>(std::atoll(value));
    } else if (arg == "--out") {
      out_path = value;
    } else {
      return usage(argv[0]);
    }
  }
  if (s.variability.samples <= 0 || shards < 1 || shard >= shards ||
      out_path.empty()) {
    return usage(argv[0]);
  }

  const scenario::ScenarioEngine engine(options);
  const auto [begin, end] = scenario::shard_range(
      static_cast<std::uint64_t>(s.variability.samples), shard, shards);
  const scenario::StatisticalShard report =
      engine.run_statistical(s, begin, end);

  std::ostringstream body;
  scenario::write_shard_json(body, report);
  spill(out_path, body.str());
  std::cout << "scenario_shard: shard " << shard << "/" << shards
            << " evaluated samples [" << begin << ", " << end << ") -> "
            << out_path << "\n";
  return 0;
}

int merge_mode(int argc, char** argv) {
  using namespace cnti;

  std::string out_path;
  std::string csv_path;
  std::vector<std::string> shard_paths;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (out_path.empty() || shard_paths.empty()) return usage(argv[0]);

  std::vector<scenario::StatisticalShard> shards;
  shards.reserve(shard_paths.size());
  for (const std::string& path : shard_paths) {
    shards.push_back(scenario::read_shard_json(slurp(path)));
  }
  const scenario::StatisticalStudy study =
      scenario::reduce_shards(std::move(shards));

  std::ostringstream body;
  scenario::write_study_json(body, study);
  spill(out_path, body.str());
  if (!csv_path.empty()) {
    std::ostringstream csv;
    scenario::write_study_csv(csv, study);
    spill(csv_path, csv.str());
  }
  std::cout << "scenario_shard: merged " << shard_paths.size()
            << " shard(s), " << study.samples << " samples ("
            << study.delay_invalid << " invalid delays) -> " << out_path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string mode = argv[1];
  try {
    if (mode == "run") return run_mode(argc, argv);
    if (mode == "merge") return merge_mode(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "scenario_shard: " << e.what() << "\n";
    return 1;
  }
  return usage(argv[0]);
}
