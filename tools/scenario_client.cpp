// scenario_client — submits a demo scenario study to a running
// scenario_server and writes the results as CSV/JSON reports.
//
//   scenario_client --port N [--demo N] [--csv PATH] [--json PATH]
//                   [--require-warm] [--metrics] [--shutdown]
//
// --demo N        Run an N-point study exercising every persisted stage
//                 (TCAD capacitance, MNA delay, ROM bus noise, thermal).
// --require-warm  Exit 3 unless the server computed *nothing* for this run
//                 (every stage served from memory or disk cache) — the
//                 warm-restart acceptance check.
// --metrics       Fetch the server's metrics registry and print it as
//                 Prometheus text exposition (after --demo, if both given).
// --shutdown      Ask the daemon to stop gracefully afterwards.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "scenario/report.hpp"
#include "service/client.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --port N [--demo N] [--csv PATH] [--json PATH]"
               " [--require-warm] [--metrics] [--shutdown]\n";
  return 2;
}

/// An N-point study whose scenarios exercise every disk-persisted stage.
std::vector<cnti::scenario::Scenario> demo_batch(int n) {
  using namespace cnti::scenario;
  std::vector<Scenario> batch;
  for (int i = 0; i < n; ++i) {
    Scenario s;
    s.label = "demo/" + std::to_string(i);
    s.tech.capacitance_model = CapacitanceModel::kTcad;
    s.tech.dopant_concentration = 0.01;
    s.workload.length_um = 60.0 + 10.0 * i;
    s.workload.bus_lines = 4;
    s.workload.bus_segments = 8;
    s.analysis.delay_model = DelayModel::kMnaTransient;
    s.analysis.delay_segments = 8;
    s.analysis.noise = true;
    s.analysis.noise_model = NoiseModel::kReducedOrder;
    s.analysis.thermal = true;
    s.analysis.time_steps = 300;
    batch.push_back(std::move(s));
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cnti;

  int port = -1;
  int demo = 4;
  std::string csv_path;
  std::string json_path;
  bool require_warm = false;
  bool metrics = false;
  bool shutdown = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--port" && has_value) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--demo" && has_value) {
      demo = std::atoi(argv[++i]);
    } else if (arg == "--csv" && has_value) {
      csv_path = argv[++i];
    } else if (arg == "--json" && has_value) {
      json_path = argv[++i];
    } else if (arg == "--require-warm") {
      require_warm = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (port <= 0 || port > 65535) return usage(argv[0]);

  try {
    service::ScenarioClient client(static_cast<std::uint16_t>(port));
    if (demo > 0) {
      const auto results = client.run(demo_batch(demo));
      std::cout << "scenario_client: " << results.size()
                << " results received\n";
      for (const auto& [stage, s] : client.last_cache_stats()) {
        std::cout << "  " << stage << ": hits=" << s.hits
                  << " disk_hits=" << s.disk_hits << " misses=" << s.misses
                  << "\n";
      }
      if (!csv_path.empty()) scenario::write_report_csv(csv_path, results);
      if (!json_path.empty()) {
        scenario::write_report_json(json_path, results, nullptr);
      }
      if (require_warm) {
        bool cold = false;
        for (const auto& [stage, s] : client.last_cache_stats()) {
          if (s.misses > 0) {
            std::cerr << "scenario_client: stage \"" << stage
                      << "\" recomputed " << s.misses
                      << " entries on a supposedly warm cache\n";
            cold = true;
          }
        }
        if (cold) return 3;
        std::cout << "scenario_client: warm run confirmed (zero misses)\n";
      }
    }
    if (metrics) {
      const service::JsonValue raw = client.metrics();
      obs::write_metrics_prometheus(
          std::cout, service::metrics_snapshot_from_json(raw));
    }
    if (shutdown) {
      client.request_shutdown();
      std::cout << "scenario_client: shutdown acknowledged\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "scenario_client: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
