// trace_check — structural validator for the trace files the observability
// layer emits (CNTI_TRACE / obs::TraceSession::write_json). Parses the file
// with the service's strict JSON reader (duplicate keys and over-deep
// nesting are hard errors, not quirks), then checks the Chrome trace-event
// contract the spans are supposed to satisfy:
//
//   - top level is {"displayTimeUnit", "traceEvents", ["metrics"]};
//   - every event is a complete "X" (duration) event with name/cat/pid/tid
//     and non-negative ts/dur;
//   - optionally, that at least --min-events events exist and that every
//     tier named in --require-tiers appears as some event's "cat".
//
//   trace_check --trace PATH [--min-events N]
//               [--require-tiers solver,rom,cache,engine,service]
//
// Exits 0 on a well-formed trace, 1 on any violation (with a diagnostic on
// stderr) — the CI trace-smoke job's gate.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "service/json.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --trace PATH [--min-events N]"
               " [--require-tiers tier1,tier2,...]\n";
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(s);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int fail(const std::string& why) {
  std::cerr << "trace_check: " << why << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using cnti::service::JsonValue;

  std::string trace_path;
  long min_events = 1;
  std::vector<std::string> required_tiers;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--trace" && has_value) {
      trace_path = argv[++i];
    } else if (arg == "--min-events" && has_value) {
      min_events = std::atol(argv[++i]);
    } else if (arg == "--require-tiers" && has_value) {
      required_tiers = split_csv(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }
  if (trace_path.empty()) return usage(argv[0]);

  std::ifstream in(trace_path);
  if (!in) return fail("cannot open \"" + trace_path + "\"");
  std::ostringstream buf;
  buf << in.rdbuf();

  JsonValue root;
  try {
    root = cnti::service::parse_json(buf.str());
  } catch (const std::exception& e) {
    return fail(std::string("invalid JSON: ") + e.what());
  }

  try {
    if (!root.is_object()) return fail("top level is not an object");
    for (const auto& [key, value] : root.as_object()) {
      if (key != "displayTimeUnit" && key != "traceEvents" &&
          key != "metrics") {
        return fail("unexpected top-level member \"" + key + "\"");
      }
      (void)value;
    }
    if (root.at("displayTimeUnit").as_string() != "ms") {
      return fail("displayTimeUnit is not \"ms\"");
    }

    const auto& events = root.at("traceEvents").as_array();
    long complete_events = 0;
    std::vector<std::string> seen_tiers;
    for (const JsonValue& ev : events) {
      const std::string& name = ev.at("name").as_string();
      const std::string& cat = ev.at("cat").as_string();
      if (name.empty()) return fail("event with empty name");
      if (cat.empty()) return fail("event with empty cat (tier)");
      if (ev.at("ph").as_string() != "X") {
        return fail("event \"" + name + "\" is not a complete (\"X\") event");
      }
      if (ev.at("pid").as_number() != 1.0) {
        return fail("event \"" + name + "\" has pid != 1");
      }
      if (ev.at("tid").as_number() < 0) {
        return fail("event \"" + name + "\" has negative tid");
      }
      if (ev.at("ts").as_number() < 0 || ev.at("dur").as_number() < 0) {
        return fail("event \"" + name + "\" has negative ts/dur");
      }
      ++complete_events;
      bool known = false;
      for (const std::string& t : seen_tiers) {
        if (t == cat) {
          known = true;
          break;
        }
      }
      if (!known) seen_tiers.push_back(cat);
    }

    if (complete_events < min_events) {
      return fail("only " + std::to_string(complete_events) +
                  " events (expected >= " + std::to_string(min_events) + ")");
    }
    for (const std::string& want : required_tiers) {
      bool found = false;
      for (const std::string& t : seen_tiers) {
        if (t == want) {
          found = true;
          break;
        }
      }
      if (!found) return fail("required tier \"" + want + "\" never appears");
    }

    // The metrics side-car, when present, must at least hold the three
    // registry sections (deep validation lives in the protocol parser).
    if (const JsonValue* metrics = root.find("metrics")) {
      for (const char* section : {"counters", "gauges", "histograms"}) {
        if (!metrics->at(section).is_object()) {
          return fail(std::string("metrics.") + section + " is not an object");
        }
      }
    }

    std::cout << "trace_check: OK — " << complete_events << " events across "
              << seen_tiers.size() << " tiers (";
    for (std::size_t i = 0; i < seen_tiers.size(); ++i) {
      if (i > 0) std::cout << ", ";
      std::cout << seen_tiers[i];
    }
    std::cout << ")\n";
  } catch (const std::exception& e) {
    return fail(std::string("malformed trace: ") + e.what());
  }
  return 0;
}
