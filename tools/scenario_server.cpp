// scenario_server — the long-lived scenario daemon. Binds the JSON-lines
// service on 127.0.0.1, optionally layering a persistent DiskCache under
// the engine's memo cache so repeated studies across daemon restarts skip
// every previously computed stage.
//
//   scenario_server [--port N] [--cache-dir DIR] [--cache-max-mb N]
//                   [--threads N]
//
// Prints "SERVICE_PORT=<port>" once listening (scripts capture it when
// using an ephemeral --port 0). Exits 0 on SIGTERM/SIGINT or a client
// {"type": "shutdown"} — both drain queued work before stopping.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "service/disk_cache.hpp"
#include "service/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--port N] [--cache-dir DIR] [--cache-max-mb N]"
               " [--threads N]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cnti;

  std::uint16_t port = 0;
  std::string cache_dir;
  std::uint64_t cache_max_mb = 256;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--port" && has_value) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--cache-dir" && has_value) {
      cache_dir = argv[++i];
    } else if (arg == "--cache-max-mb" && has_value) {
      cache_max_mb = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--threads" && has_value) {
      threads = std::atoi(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }

  service::ServerOptions options;
  options.port = port;
  if (threads > 0) options.engine.sweep.threads = threads;
  if (!cache_dir.empty()) {
    service::DiskCacheOptions dco;
    dco.dir = cache_dir;
    dco.max_bytes = cache_max_mb * 1024 * 1024;
    options.engine.tier = std::make_shared<service::DiskCache>(dco);
  }

  try {
    service::ScenarioServer server(options);
    server.start();
    std::cout << "SERVICE_PORT=" << server.port() << std::endl;
    if (!cache_dir.empty()) {
      std::cout << "cache dir: " << cache_dir << " (max " << cache_max_mb
                << " MiB)" << std::endl;
    }

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    while (g_signal == 0) {
      if (server.wait_for_shutdown_request(std::chrono::milliseconds(200))) {
        break;
      }
    }
    std::cout << "scenario_server: shutting down (draining queue)"
              << std::endl;
    server.stop();
  } catch (const std::exception& e) {
    std::cerr << "scenario_server: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
