// Cross-module integration tests: the full pipelines a user of the
// platform actually runs — atomistic -> materials -> compact -> TCAD ->
// circuit, process -> electrical, and the SPICE bridge between TCAD and
// the MNA engine.
#include <gtest/gtest.h>

#include <cmath>

#include "atomistic/negf.hpp"
#include "charz/tlm.hpp"
#include "circuit/builders.hpp"
#include "circuit/crosstalk.hpp"
#include "circuit/measure.hpp"
#include "circuit/spice_io.hpp"
#include "common/units.hpp"
#include "core/multiscale.hpp"
#include "core/mwcnt_line.hpp"
#include "materials/cnt_mfp.hpp"
#include "numerics/interp.hpp"
#include "process/variability.hpp"
#include "tcad/field_solver.hpp"
#include "tcad/netlist_export.hpp"

namespace ca = cnti::atomistic;
namespace cc = cnti::core;
namespace cir = cnti::circuit;
namespace ct = cnti::tcad;
namespace cz = cnti::charz;
namespace cp = cnti::process;
using cnti::units::from_um;

namespace {

TEST(Integration, MultiscaleWithTcadAndMnaHooks) {
  // Full paper platform: TCAD-extracted C_E + MNA delay, vs. the
  // analytic/Elmore default — same order, same doped-vs-pristine verdict.
  cc::MultiscaleHooks hooks;
  hooks.extract_capacitance = [](const cc::WireEnvironment& env) {
    // Wire as a square box of the same cross-section over a plane.
    const double side = 2.0 * env.radius_m;
    const double h = env.center_height_m - env.radius_m;
    const double domain = 20.0 * side;
    ct::Structure s(
        ct::Grid3D::uniform(domain, 10.0 * side, 6.0 * (h + side), 21, 11,
                            13),
        env.eps_r);
    s.add_conductor("plane", {0, domain, 0, 10.0 * side, 0, (h + side) / 2});
    s.add_conductor("wire",
                    {domain / 2 - side / 2, domain / 2 + side / 2, 0,
                     10.0 * side, (h + side) / 2 + h,
                     (h + side) / 2 + h + side});
    const auto caps = ct::extract_capacitance(s);
    return -caps.matrix(1, 0) / (10.0 * side);  // coupling per metre
  };
  hooks.simulate_delay = [](const cc::DriverLineLoad& cfg) {
    cir::Fig11Options opt;
    opt.line = cfg.line;
    opt.length_m = cfg.length_m;
    opt.segments = 12;
    return cir::measure_fig11_delay(opt, 800);
  };

  cc::MultiscaleInput in;
  in.length_um = 200.0;
  const auto analytic = cc::run_multiscale_flow(in);
  const auto numeric = cc::run_multiscale_flow(in, hooks);
  EXPECT_EQ(numeric.delay_method, "hook");
  // TCAD C_E within 2x of the cylinder formula (box-vs-cylinder + grid).
  EXPECT_GT(numeric.electrostatic_cap_af_per_um,
            0.5 * analytic.electrostatic_cap_af_per_um);
  EXPECT_LT(numeric.electrostatic_cap_af_per_um,
            2.0 * analytic.electrostatic_cap_af_per_um);
  // Delays agree within a factor ~3 (Elmore vs. nonlinear driver).
  EXPECT_GT(numeric.delay_ps, 0.3 * analytic.delay_ps);
  EXPECT_LT(numeric.delay_ps, 3.0 * analytic.delay_ps);

  cc::MultiscaleInput doped = in;
  doped.dopant_concentration = 1.0;
  const auto doped_numeric = cc::run_multiscale_flow(doped, hooks);
  EXPECT_LT(doped_numeric.delay_ps, numeric.delay_ps);
}

TEST(Integration, NegfDefectMfpFeedsMaterialsModel) {
  // Atomistic defect scattering -> materials MFP -> compact resistance.
  const auto est = ca::estimate_defect_mfp(ca::Chirality(5, 5),
                                           /*defect_probability=*/0.01,
                                           /*energy_ev=*/0.3, /*seed=*/7,
                                           /*max_cells=*/16, /*samples=*/3);
  ASSERT_GT(est.mfp_m, 0.0);

  // Feed as defect spacing into the compact model: shorter MFP => higher R.
  cc::MwcntSpec clean;
  clean.outer_diameter_m = 10e-9;
  cc::MwcntSpec dirty = clean;
  dirty.defect_spacing_m = est.mfp_m;
  const double l = from_um(10);
  EXPECT_GT(cc::MwcntLine(dirty).resistance(l),
            cc::MwcntLine(clean).resistance(l));
}

TEST(Integration, ExtractedPlateCapacitorSetsRcTimeConstant) {
  // Field-solver capacitance feeds a circuit RC: the transient charging
  // curve must follow exp(-t/RC) with the extracted C.
  ct::Structure s(ct::Grid3D::uniform(1e-6, 1e-6, 0.4e-6, 9, 9, 21), 2.5);
  s.add_conductor("bot", {0, 1e-6, 0, 1e-6, 0, 0.1e-6});
  s.add_conductor("top", {0, 1e-6, 0, 1e-6, 0.3e-6, 0.4e-6});
  const auto caps = ct::extract_capacitance(s);
  const double c = -caps.matrix(0, 1);
  ASSERT_GT(c, 0.0);

  const double r = 1e6;
  const double tau = r * c;
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  cir::PwlWave step;
  step.points = {{0.0, 0.0}, {tau * 1e-4, 1.0}};
  ckt.add_vsource("v1", in, 0, step);
  ckt.add_resistor("r1", in, out, r);
  ckt.add_capacitor("c1", out, 0, c);
  cir::TransientOptions topt;
  topt.t_stop_s = 3.0 * tau;
  topt.dt_s = tau / 500.0;
  const auto res = cir::simulate_transient(ckt, topt);
  const cnti::numerics::LinearInterpolator v(res.time(), res.voltage(out));
  EXPECT_NEAR(v(tau), 1.0 - std::exp(-1.0), 5e-3);
  EXPECT_NEAR(v(2.0 * tau), 1.0 - std::exp(-2.0), 5e-3);
}

TEST(Integration, TcadNetlistDrivesCircuitSimulation) {
  // Extract a 3-conductor structure, export SPICE, parse it back, attach
  // a source and verify the coupled node responds in a transient.
  ct::Structure s(ct::Grid3D::uniform(0.5e-6, 0.5e-6, 0.3e-6, 11, 11, 9),
                  2.5);
  s.add_conductor("agg", {0.1e-6, 0.16e-6, 0.05e-6, 0.45e-6, 0.12e-6,
                          0.2e-6});
  s.add_conductor("vic", {0.24e-6, 0.3e-6, 0.05e-6, 0.45e-6, 0.12e-6,
                          0.2e-6});
  s.add_conductor("plane", {0, 0.5e-6, 0, 0.5e-6, 0, 0.04e-6});
  const auto caps = ct::extract_capacitance(s);
  const std::string netlist =
      ct::export_spice_netlist(s, caps, "integration");
  auto parsed = cir::parse_spice(netlist);
  cir::Circuit& ckt = parsed.circuit;

  // Ground the plane, drive the aggressor, load the victim.
  const auto agg = ckt.node("agg");
  const auto vic = ckt.node("vic");
  const auto plane = ckt.node("plane");
  ckt.add_resistor("rgnd", plane, 0, 1.0);
  cir::PulseWave pulse;
  pulse.v2 = 1.0;
  pulse.delay_s = 5e-12;
  pulse.rise_s = 2e-12;
  pulse.width_s = 1.0;
  pulse.period_s = 2.0;
  const auto src = ckt.node("src");
  ckt.add_vsource("vs", src, 0, pulse);
  ckt.add_resistor("rdrv", src, agg, 1e3);
  ckt.add_resistor("rhold", vic, 0, 10e3);

  cir::TransientOptions opt;
  opt.t_stop_s = 200e-12;
  opt.dt_s = 0.05e-12;
  const auto res = cir::simulate_transient(ckt, opt);
  const double peak = cir::peak_voltage(res, vic);
  EXPECT_GT(peak, 1e-4);  // coupling observed
  EXPECT_LT(peak, 0.5);   // but attenuated
}

TEST(Integration, TcadCouplingFeedsCrosstalkAnalysis) {
  // Fig. 10 extraction -> per-length coupling -> coupled-line transient.
  ct::Fig10Options opt;
  opt.line_length_nm = 280.0;
  auto fig = ct::build_fig10_structure(opt);
  const auto caps = ct::extract_capacitance(fig.structure);
  const double cc_per_m =
      -caps.matrix(fig.m1_victim, fig.m1_left) /
      (opt.line_length_nm * 1e-9);
  ASSERT_GT(cc_per_m, 0.0);

  cir::CrosstalkConfig cfg;
  cfg.victim = cc::make_paper_mwcnt(10, 2, 20e3).rlc();
  cfg.aggressor = cfg.victim;
  cfg.coupling_cap_per_m = cc_per_m;
  cfg.length_m = 20e-6;
  cfg.segments = 8;
  const auto xt = cir::analyze_crosstalk(cfg, 900);
  EXPECT_GT(xt.peak_noise_v, 0.0);
  EXPECT_LT(xt.peak_noise_v, cfg.vdd_v);
}

TEST(Integration, GrowthToTlmCharacterizationLoop) {
  // Grow a population, express its median electrical behaviour as TLM
  // ground truth, extract, and verify the loop closes.
  cp::GrowthRecipe recipe;
  recipe.temperature_c = 500.0;
  const auto quality = cp::evaluate_recipe(recipe);
  cnti::numerics::Rng rng(17);

  // Median single-device resistance at two lengths gives slope/intercept.
  auto median_r = [&](double l_um) {
    std::vector<double> rs;
    for (int i = 0; i < 400; ++i) {
      const double r = cp::sample_device_resistance_kohm(
          quality, l_um, /*channels_if_doped=*/6.0,
          /*contact_kohm=*/30.0, rng);
      if (r > 0) rs.push_back(r);
    }
    return cnti::numerics::summarize(rs).median;
  };
  const double r1 = median_r(1.0);
  const double r4 = median_r(4.0);
  const double slope = (r4 - r1) / 3.0;
  const double intercept = r1 - slope;
  ASSERT_GT(slope, 0.0);

  cz::TlmGroundTruth truth;
  truth.contact_resistance_kohm = intercept / 2.0;
  truth.resistance_per_um_kohm = slope;
  truth.measurement_noise_fraction = 0.02;
  // Long TLM structures: the slope signal (slope * l) must dominate the
  // multiplicative instrument noise on the ~30 kOhm contact baseline or
  // the fitted slope is a coin flip against the tolerance below (the
  // original 0.5-5 um ladder put the 0.25*slope bound at ~0.5 sigma of
  // the fit estimator; this ladder puts it past 4 sigma).
  const auto data = cz::generate_tlm_data(
      truth, {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}, rng);
  const auto fit = cz::extract_tlm(data);
  EXPECT_NEAR(fit.resistance_per_um_kohm, slope, 0.25 * slope);
  EXPECT_NEAR(fit.contact_resistance_kohm, intercept / 2.0,
              0.35 * intercept / 2.0 + 1.0);
}

TEST(Integration, SpiceRoundTripPreservesTransient) {
  // Build a driver+line circuit, write SPICE, re-parse, and compare the
  // transient waveforms point by point.
  cir::Circuit original;
  const auto in = original.node("in");
  const auto out = original.node("out");
  cir::PulseWave pulse;
  pulse.v2 = 1.0;
  pulse.delay_s = 10e-12;
  pulse.rise_s = 5e-12;
  pulse.fall_s = 5e-12;
  pulse.width_s = 200e-12;
  pulse.period_s = 500e-12;
  original.add_vsource("vin", in, 0, pulse);
  const auto line = cc::make_paper_mwcnt(10, 2, 100e3).rlc();
  cir::add_distributed_line(original, "ln", in, out, line, 50e-6, 8);
  original.add_capacitor("cl", out, 0, 1e-15);

  cir::TransientOptions topt;
  topt.t_stop_s = 500e-12;
  topt.dt_s = 0.5e-12;
  const auto text = cir::write_spice(original, "roundtrip", topt);
  auto parsed = cir::parse_spice(text);
  ASSERT_TRUE(parsed.tran.has_value());

  const auto r1 = cir::simulate_transient(original, topt);
  const auto r2 = cir::simulate_transient(parsed.circuit, *parsed.tran);
  const auto& v1 = r1.voltage(out);
  const auto& v2 = r2.voltage(parsed.circuit.node("out"));
  ASSERT_EQ(v1.size(), v2.size());
  for (std::size_t i = 0; i < v1.size(); i += 100) {
    EXPECT_NEAR(v1[i], v2[i], 1e-6);
  }
}

TEST(Integration, DopedVariabilityImprovesCircuitYield) {
  // Process spread -> delay spread: doped population has a tighter delay
  // distribution through the Elmore map.
  cp::VariabilityConfig cfg;
  cfg.samples = 800;
  cfg.length_um = 5.0;
  cfg.contact_median_kohm = 50.0;
  const auto pristine = cp::run_resistance_mc(cfg);
  cfg.dopant_concentration = 1.0;
  const auto doped = cp::run_resistance_mc(cfg);

  const auto delay_of = [](double r_kohm) {
    cc::DriverLineLoad d;
    d.line.series_resistance_ohm = r_kohm * 1e3;
    d.line.resistance_per_m = 1.0;  // folded into the lumped term
    d.line.capacitance_per_m = 50e-12;
    d.length_m = from_um(5.0);
    return cc::elmore_delay(d);
  };
  // CV of delay tracks CV of resistance through the linear map.
  const double spread_p = delay_of(pristine.resistance_kohm.p95) /
                          delay_of(pristine.resistance_kohm.p05);
  const double spread_d = delay_of(doped.resistance_kohm.p95) /
                          delay_of(doped.resistance_kohm.p05);
  EXPECT_LT(spread_d, spread_p);
}

}  // namespace
