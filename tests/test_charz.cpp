// Tests for the characterization module: TLM round-trip, IV / Fig. 2d
// doping response, EM stress statistics, test-chip wafer characterization.
#include <gtest/gtest.h>

#include <cmath>

#include "charz/em_test.hpp"
#include "charz/iv.hpp"
#include "charz/testchip.hpp"
#include "charz/tlm.hpp"

namespace cz = cnti::charz;
namespace ca = cnti::atomistic;

namespace {

TEST(Tlm, NoiselessRoundTripIsExact) {
  cz::TlmGroundTruth truth;
  truth.contact_resistance_kohm = 18.0;
  truth.resistance_per_um_kohm = 5.5;
  truth.measurement_noise_fraction = 0.0;
  cnti::numerics::Rng rng(1);
  const auto data =
      cz::generate_tlm_data(truth, {0.5, 1.0, 2.0, 3.0, 5.0}, rng);
  const auto fit = cz::extract_tlm(data);
  EXPECT_NEAR(fit.contact_resistance_kohm, 18.0, 1e-9);
  EXPECT_NEAR(fit.resistance_per_um_kohm, 5.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Tlm, NoisyRoundTripWithinErrorBars) {
  cz::TlmGroundTruth truth;  // 2% noise
  cnti::numerics::Rng rng(2);
  const auto data = cz::generate_tlm_data(
      truth, {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}, rng);
  const auto fit = cz::extract_tlm(data);
  EXPECT_NEAR(fit.contact_resistance_kohm, truth.contact_resistance_kohm,
              4.0 * fit.contact_stderr_kohm +
                  0.1 * truth.contact_resistance_kohm);
  EXPECT_NEAR(fit.resistance_per_um_kohm, truth.resistance_per_um_kohm,
              4.0 * fit.slope_stderr_kohm +
                  0.1 * truth.resistance_per_um_kohm);
}

TEST(Tlm, RequiresThreeStructures) {
  EXPECT_THROW(cz::extract_tlm({{1.0, 10.0}, {2.0, 20.0}}),
               cnti::PreconditionError);
}

TEST(Iv, OhmicAtLowBiasSaturatesAtHighBias) {
  cz::CntDeviceSpec dev;
  const auto iv = cz::sweep_iv(dev, nullptr, 3.0, 301);
  // Slope near zero ~ 1/R.
  const double r_kohm = cz::device_resistance_kohm(dev, nullptr);
  const auto& mid = iv[150];  // V ~ 0
  const auto& midp = iv[155];
  const double g_meas =
      (midp.current_ua - mid.current_ua) / (midp.voltage_v - mid.voltage_v);
  EXPECT_NEAR(g_meas, 1e3 / r_kohm, 0.1 * 1e3 / r_kohm);
  // Saturation: current at 3 V well below the linear extrapolation.
  EXPECT_LT(iv.back().current_ua, 0.8 * 3.0 / r_kohm * 1e3);
  // Odd symmetry.
  EXPECT_NEAR(iv.front().current_ua, -iv.back().current_ua, 1e-9);
}

TEST(Iv, BreakdownKillsTheDevice) {
  cz::CntDeviceSpec dev;
  dev.breakdown_v = 2.0;
  const auto iv = cz::sweep_iv(dev, nullptr, 4.0, 401);
  EXPECT_DOUBLE_EQ(iv.back().current_ua, 0.0);
}

TEST(Iv, Fig2dDopingLowersResistance) {
  // PtCl4 doping drops the side-contacted MWCNT resistance (Fig. 2d):
  // expect roughly a 1.5-4x improvement at saturation doping.
  cz::CntDeviceSpec dev;
  dev.contact_resistance_kohm = 10.0;
  const ca::ChargeTransferDoping doping(ca::DopantSpecies::kPtCl4External,
                                        1.0);
  const double ratio = cz::doping_resistance_ratio(dev, doping);
  EXPECT_LT(ratio, 0.7);
  EXPECT_GT(ratio, 0.1);
}

TEST(Iv, DopedDeviceCarriesMoreCurrent) {
  cz::CntDeviceSpec dev;
  const ca::ChargeTransferDoping doping(
      ca::DopantSpecies::kIodineInternal, 1.0);
  const auto pristine = cz::sweep_iv(dev, nullptr, 1.0, 101);
  const auto doped = cz::sweep_iv(dev, &doping, 1.0, 101);
  EXPECT_GT(doped.back().current_ua, pristine.back().current_ua);
}

TEST(EmTest, CuPopulationFailsLognormally) {
  cz::EmStressConditions cond;
  const auto res = cz::run_em_stress(cz::LineTechnology::kCu, cond);
  EXPECT_FALSE(res.immortal);
  EXPECT_GT(res.ttf_hours.median, 0.0);
  // Lognormal: mean > median.
  EXPECT_GT(res.ttf_hours.mean, res.ttf_hours.median);
  EXPECT_GT(res.use_median_years, 0.1);
}

TEST(EmTest, CompositeOutlivesCu) {
  cz::EmStressConditions cond;
  cnti::materials::CompositeSpec comp;
  comp.cnt_volume_fraction = 0.4;
  const auto cu = cz::run_em_stress(cz::LineTechnology::kCu, cond);
  const auto cc =
      cz::run_em_stress(cz::LineTechnology::kCuCntComposite, cond, comp);
  EXPECT_GT(cc.ttf_hours.median, cu.ttf_hours.median);
}

TEST(EmTest, PureCntIsImmortalBelowBreakdown) {
  cz::EmStressConditions cond;  // 2.5e10 A/m^2 << 1e13
  const auto res = cz::run_em_stress(cz::LineTechnology::kPureCnt, cond);
  EXPECT_TRUE(res.immortal);
}

TEST(EmTest, HotterStressShortensLifetime) {
  cz::EmStressConditions cold;
  cold.temperature_k = 520.0;
  cz::EmStressConditions hot = cold;
  hot.temperature_k = 640.0;
  const auto rc = cz::run_em_stress(cz::LineTechnology::kCu, cold);
  const auto rh = cz::run_em_stress(cz::LineTechnology::kCu, hot);
  EXPECT_GT(rc.ttf_hours.median, rh.ttf_hours.median);
}

TEST(Tlm, StderrVanishesWithoutNoise) {
  cz::TlmGroundTruth truth;
  truth.measurement_noise_fraction = 0.0;
  cnti::numerics::Rng rng(7);
  const auto data =
      cz::generate_tlm_data(truth, {0.5, 1.0, 2.0, 4.0, 8.0}, rng);
  const auto fit = cz::extract_tlm(data);
  EXPECT_NEAR(fit.contact_stderr_kohm, 0.0, 1e-9);
  EXPECT_NEAR(fit.slope_stderr_kohm, 0.0, 1e-9);
}

TEST(TestChip, StandardLayoutHasAllStructureKinds) {
  const auto layout = cz::standard_test_layout();
  int lines = 0, combs = 0, chains = 0;
  for (const auto& s : layout) {
    switch (s.kind) {
      case cz::StructureKind::kSingleLine: ++lines; break;
      case cz::StructureKind::kCombFingers: ++combs; break;
      case cz::StructureKind::kViaChain: ++chains; break;
    }
  }
  EXPECT_GE(lines, 12);  // width x length matrix + angle
  EXPECT_GE(combs, 2);
  EXPECT_GE(chains, 2);
}

TEST(TestChip, LineResistanceScalesWithGeometry) {
  const auto layout = cz::standard_test_layout();
  cz::TesterSpec tester;
  tester.resistance_noise_fraction = 0.0;
  cnti::numerics::Rng rng(5);
  const auto meas = cz::measure_die(layout, 0.0, tester, rng);
  // Find two line structures differing only in length 10x.
  double r10 = 0.0, r100 = 0.0;
  for (const auto& m : meas) {
    if (m.structure == "line_w100_l10") r10 = m.value;
    if (m.structure == "line_w100_l100") r100 = m.value;
  }
  ASSERT_GT(r10, 0.0);
  EXPECT_NEAR(r100 / r10, 10.0, 0.1);
}

TEST(TestChip, WaferCharacterizationYieldsAndSummarizes) {
  cnti::numerics::Rng rng(41);
  cnti::process::WaferSpec wspec;
  cnti::process::GrowthRecipe nominal;
  const cnti::process::WaferMap wafer(wspec, nominal, rng);
  const auto layout = cz::standard_test_layout();
  cz::TesterSpec tester;
  const auto result = cz::characterize_wafer(wafer, layout, tester);
  EXPECT_EQ(result.structure_names.size(), layout.size());
  EXPECT_GT(result.die_yield, 0.5);
  for (const auto& s : result.value_summary) {
    EXPECT_GT(s.mean, 0.0);
  }
}

}  // namespace
