// Scenario engine suite: content-key identity, memo-cache contracts
// (hit/miss accounting, once-per-key compute, type safety), cached ==
// uncached differentials against the refactored direct APIs
// (run_multiscale_flow, analyze_bus_crosstalk, BusRom), thread-count
// invariance of batch execution, MultiscaleHooks-fallback parity, report
// emission and the relocated JSON metric sink.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "circuit/crosstalk.hpp"
#include "common/json_sink.hpp"
#include "common/units.hpp"
#include "core/multiscale.hpp"
#include "rom/interconnect_rom.hpp"
#include "scenario/content_key.hpp"
#include "scenario/engine.hpp"
#include "scenario/memo_cache.hpp"
#include "scenario/report.hpp"
#include "scenario/spec.hpp"
#include "scenario/stages.hpp"
#include "scenario/statistical.hpp"

namespace sc = cnti::scenario;
namespace cc = cnti::core;
namespace cir = cnti::circuit;
using cnti::units::from_um;

namespace {

/// Small, fast scenario: 4 x 8 coupled bus, short transients.
sc::Scenario small_scenario() {
  sc::Scenario s;
  s.label = "small";
  s.tech.outer_diameter_nm = 10.0;
  s.tech.dopant_concentration = 1.0;
  s.tech.contact_resistance_kohm = 20.0;
  s.workload.length_um = 25.0;
  s.workload.driver_resistance_kohm = 5.0;
  s.workload.load_capacitance_ff = 0.2;
  s.workload.bus_lines = 4;
  s.workload.bus_segments = 8;
  s.analysis.time_steps = 200;
  return s;
}

// ---------------------------------------------------------------------------
// Content keys.

TEST(ContentKey, EqualSpecsHashEqual) {
  const sc::Scenario a = small_scenario();
  const sc::Scenario b = small_scenario();
  EXPECT_EQ(sc::content_key(a), sc::content_key(b));
  EXPECT_EQ(sc::content_key(a.tech), sc::content_key(b.tech));
  EXPECT_EQ(sc::content_key(a.workload), sc::content_key(b.workload));
  EXPECT_EQ(sc::content_key(a.analysis), sc::content_key(b.analysis));
}

TEST(ContentKey, EveryFieldChangesTheKey) {
  const sc::Scenario base = small_scenario();
  const auto k0 = sc::content_key(base);

  sc::Scenario s = base;
  s.tech.outer_diameter_nm += 1.0;
  EXPECT_NE(sc::content_key(s), k0);

  s = base;
  s.tech.dopant = cnti::atomistic::DopantSpecies::kPtCl4External;
  EXPECT_NE(sc::content_key(s), k0);

  s = base;
  s.tech.capacitance_model = sc::CapacitanceModel::kTcad;
  EXPECT_NE(sc::content_key(s), k0);

  s = base;
  s.workload.driver_resistance_kohm *= 2.0;
  EXPECT_NE(sc::content_key(s), k0);

  s = base;
  s.workload.bus_segments += 1;
  EXPECT_NE(sc::content_key(s), k0);

  s = base;
  s.analysis.noise = !s.analysis.noise;
  EXPECT_NE(sc::content_key(s), k0);

  s = base;
  s.analysis.time_steps += 1;
  EXPECT_NE(sc::content_key(s), k0);
}

TEST(ContentKey, LabelIsReportingMetadataOnly) {
  sc::Scenario a = small_scenario();
  sc::Scenario b = small_scenario();
  b.label = "a completely different label";
  EXPECT_EQ(sc::content_key(a), sc::content_key(b));
}

TEST(ContentKey, SignedZeroNormalizedNanRejected) {
  const auto plus = sc::KeyHasher("t").add(0.0).key();
  const auto minus = sc::KeyHasher("t").add(-0.0).key();
  EXPECT_EQ(plus, minus);
  EXPECT_THROW(sc::KeyHasher("t").add(std::nan("")),
               cnti::PreconditionError);
}

TEST(ContentKey, StringBoundariesAreUnambiguous) {
  const auto ab_c = sc::KeyHasher("t").add("ab").add("c").key();
  const auto a_bc = sc::KeyHasher("t").add("a").add("bc").key();
  EXPECT_NE(ab_c, a_bc);
}

TEST(ContentKey, TypeDomainsNeverAlias) {
  // Regression: add(bool) used to feed the same word stream as add(int64)
  // of 0/1, so two specs whose adjacent fields were (bool, x) vs (int, x)
  // could hash equal. Each overload now prefixes a type-domain tag.
  EXPECT_NE(sc::KeyHasher("t").add(true).key(),
            sc::KeyHasher("t").add(std::int64_t{1}).key());
  EXPECT_NE(sc::KeyHasher("t").add(false).key(),
            sc::KeyHasher("t").add(std::int64_t{0}).key());
  // The adjacent-field form of the same collision.
  EXPECT_NE(sc::KeyHasher("t").add(true).add(2.0).key(),
            sc::KeyHasher("t").add(1).add(2.0).key());
  // A double whose bit pattern equals a small integer is still a double.
  const double tricky = std::bit_cast<double>(std::uint64_t{42});
  EXPECT_NE(sc::KeyHasher("t").add(tricky).key(),
            sc::KeyHasher("t").add(std::int64_t{42}).key());
  // Enums and ints of equal value live in different domains too.
  EXPECT_NE(sc::KeyHasher("t").add(sc::CapacitanceModel::kTcad).key(),
            sc::KeyHasher("t").add(std::int64_t{1}).key());
  // And a bool is not a denormal double of the same bit pattern.
  EXPECT_NE(sc::KeyHasher("t").add(true).key(),
            sc::KeyHasher("t").add(std::bit_cast<double>(std::uint64_t{1}))
                .key());
}

// ---------------------------------------------------------------------------
// Memo cache.

TEST(MemoCache, HitReturnsTheSameObjectAndCountsDeterministically) {
  sc::MemoCache cache;
  const auto key = sc::KeyHasher("k").add(1).key();
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return 42.0;
  };
  const auto a = cache.get_or_compute<double>("stage", key, compute);
  const auto b = cache.get_or_compute<double>("stage", key, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(a.get(), b.get());  // the identical shared object
  EXPECT_EQ(*a, 42.0);
  EXPECT_EQ(cache.stats("stage").misses, 1u);
  EXPECT_EQ(cache.stats("stage").hits, 1u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(MemoCache, DistinctStagesAndKeysDoNotCollide) {
  sc::MemoCache cache;
  const auto key = sc::KeyHasher("k").add(1).key();
  const auto a = cache.get_or_compute<double>("stage-a", key,
                                              [] { return 1.0; });
  const auto b = cache.get_or_compute<double>("stage-b", key,
                                              [] { return 2.0; });
  EXPECT_EQ(*a, 1.0);
  EXPECT_EQ(*b, 2.0);
  EXPECT_EQ(cache.entry_count(), 2u);
}

TEST(MemoCache, DisabledCacheRecomputesEveryRequest) {
  sc::MemoCache cache(/*enabled=*/false);
  const auto key = sc::KeyHasher("k").add(1).key();
  int computes = 0;
  for (int i = 0; i < 3; ++i) {
    (void)cache.get_or_compute<int>("stage", key, [&] {
      ++computes;
      return 7;
    });
  }
  EXPECT_EQ(computes, 3);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats("stage").misses, 3u);
}

TEST(MemoCache, ThrowingComputeLeavesKeyRetryable) {
  sc::MemoCache cache;
  const auto key = sc::KeyHasher("k").add(1).key();
  EXPECT_THROW(cache.get_or_compute<int>(
                   "stage", key,
                   []() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  const auto ok = cache.get_or_compute<int>("stage", key, [] { return 3; });
  EXPECT_EQ(*ok, 3);
}

TEST(MemoCache, TypeMismatchOnHitThrows) {
  sc::MemoCache cache;
  const auto key = sc::KeyHasher("k").add(1).key();
  (void)cache.get_or_compute<double>("stage", key, [] { return 1.0; });
  EXPECT_THROW((void)cache.get_or_compute<int>("stage", key,
                                               [] { return 1; }),
               cnti::PreconditionError);
}

TEST(MemoCache, ConcurrentRequestsComputeOnce) {
  sc::MemoCache cache;
  const auto key = sc::KeyHasher("k").add(1).key();
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  std::vector<double> values(8, 0.0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      values[static_cast<std::size_t>(t)] =
          *cache.get_or_compute<double>("stage", key, [&] {
            ++computes;
            return 5.0;
          });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(computes.load(), 1);
  for (const double v : values) EXPECT_EQ(v, 5.0);
  const auto s = cache.stats("stage");
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 7u);
}

// ---------------------------------------------------------------------------
// Engine vs the direct APIs (bitwise differentials).

void expect_same_line_report(const cc::MultiscaleReport& a,
                             const cc::MultiscaleReport& b,
                             bool compare_method = true) {
  EXPECT_EQ(a.fermi_shift_ev, b.fermi_shift_ev);
  EXPECT_EQ(a.channels_per_shell, b.channels_per_shell);
  EXPECT_EQ(a.mfp_um, b.mfp_um);
  EXPECT_EQ(a.shells, b.shells);
  EXPECT_EQ(a.resistance_kohm, b.resistance_kohm);
  EXPECT_EQ(a.capacitance_ff, b.capacitance_ff);
  EXPECT_EQ(a.electrostatic_cap_af_per_um, b.electrostatic_cap_af_per_um);
  EXPECT_EQ(a.delay_ps, b.delay_ps);
  if (compare_method) {
    EXPECT_EQ(a.delay_method, b.delay_method);
  }
}

TEST(ScenarioEngine, ElmoreAnalyticPathMatchesMultiscaleFlowBitwise) {
  const sc::Scenario s = small_scenario();
  const sc::ScenarioEngine engine;
  const sc::ScenarioResult r = engine.run(s);
  const cc::MultiscaleReport direct =
      cc::run_multiscale_flow(sc::to_multiscale_input(s));
  expect_same_line_report(r.line, direct);
  EXPECT_FALSE(r.noise.has_value());
  EXPECT_FALSE(r.thermal.has_value());
}

TEST(ScenarioEngine, TcadStageMatchesMultiscaleHookBitwise) {
  sc::Scenario s = small_scenario();
  s.tech.capacitance_model = sc::CapacitanceModel::kTcad;
  s.tech.tcad_cells_per_side = 2;  // the validated integration resolution
  const sc::ScenarioEngine engine;
  const sc::ScenarioResult r = engine.run(s);

  // The engine's TCAD stage is exactly what a MultiscaleHooks user would
  // plug in — same function, same content, same bits.
  cc::MultiscaleHooks hooks;
  hooks.extract_capacitance = [](const cc::WireEnvironment& env) {
    return sc::tcad_environment_capacitance(env, 2);
  };
  const cc::MultiscaleReport direct =
      cc::run_multiscale_flow(sc::to_multiscale_input(s), hooks);
  expect_same_line_report(r.line, direct);
  // And the TCAD extraction must land in the analytic model's ballpark.
  const double analytic = cc::environment_capacitance(s.tech.environment);
  const double tcad = cnti::units::from_aF_per_um(
      r.line.electrostatic_cap_af_per_um);
  EXPECT_GT(tcad, 0.3 * analytic);
  EXPECT_LT(tcad, 3.0 * analytic);
}

TEST(ScenarioEngine, MnaDelayStageMatchesMultiscaleHookBitwise) {
  sc::Scenario s = small_scenario();
  s.analysis.delay_model = sc::DelayModel::kMnaTransient;
  s.analysis.time_steps = 300;
  const sc::ScenarioEngine engine;
  const sc::ScenarioResult r = engine.run(s);
  EXPECT_EQ(r.line.delay_method, "mna-transient");

  cc::MultiscaleHooks hooks;
  hooks.simulate_delay = [&s](const cc::DriverLineLoad& cfg) {
    return sc::mna_line_delay_s(
        cfg, s.workload.vdd_v,
        cnti::units::from_ps(s.workload.edge_time_ps),
        s.analysis.delay_segments, s.analysis.time_steps);
  };
  const cc::MultiscaleReport direct =
      cc::run_multiscale_flow(sc::to_multiscale_input(s), hooks);
  expect_same_line_report(r.line, direct, /*compare_method=*/false);
  // MNA and Elmore must agree on the physics scale.
  const cc::MultiscaleReport elmore =
      cc::run_multiscale_flow(sc::to_multiscale_input(s));
  EXPECT_GT(r.line.delay_ps, 0.2 * elmore.delay_ps);
  EXPECT_LT(r.line.delay_ps, 5.0 * elmore.delay_ps);
}

TEST(ScenarioEngine, RomNoiseMatchesDirectBusRomBitwise) {
  sc::Scenario s = small_scenario();
  s.analysis.noise = true;
  const sc::ScenarioEngine engine;
  const sc::ScenarioResult r = engine.run(s);
  ASSERT_TRUE(r.noise.has_value());

  // Direct API: same topology-keyed reduction, same scenario fold.
  const cc::MultiscaleInput in = sc::to_multiscale_input(s);
  const cc::ChannelStage channels =
      cc::doping_channel_stage(s.tech.dopant, s.tech.dopant_concentration);
  const cc::MwcntLine line(cc::multiscale_line_spec(
      in, channels, cc::environment_capacitance(s.tech.environment)));
  const cnti::rom::BusRom rom(sc::to_bus_topology(s, line));
  const cir::BusDrive drive = sc::to_bus_drive(s);
  cnti::rom::BusScenario scn;
  scn.driver_ohm = drive.driver_ohm;
  scn.receiver_load_f = drive.receiver_load_f;
  scn.vdd_v = drive.vdd_v;
  scn.edge_time_s = drive.edge_time_s;
  const cir::BusCrosstalkResult direct =
      rom.evaluate(scn, s.analysis.time_steps);

  EXPECT_EQ(r.noise->peak_noise_v, direct.peak_noise_v);
  EXPECT_EQ(r.noise->peak_time_s, direct.peak_time_s);
  EXPECT_EQ(r.noise->worst_victim, direct.worst_victim);
  EXPECT_EQ(r.noise->aggressor_delay_s, direct.aggressor_delay_s);
  EXPECT_EQ(r.noise->unknowns, direct.unknowns);
}

TEST(ScenarioEngine, FullMnaNoiseMatchesAnalyzeBusCrosstalkBitwise) {
  sc::Scenario s = small_scenario();
  s.analysis.noise = true;
  s.analysis.noise_model = sc::NoiseModel::kFullMna;
  const sc::ScenarioEngine engine;
  const sc::ScenarioResult r = engine.run(s);
  ASSERT_TRUE(r.noise.has_value());

  const cc::MultiscaleInput in = sc::to_multiscale_input(s);
  const cc::ChannelStage channels =
      cc::doping_channel_stage(s.tech.dopant, s.tech.dopant_concentration);
  const cc::MwcntLine line(cc::multiscale_line_spec(
      in, channels, cc::environment_capacitance(s.tech.environment)));
  const cir::BusCrosstalkResult direct = cir::analyze_bus_crosstalk(
      cir::make_bus_config(sc::to_bus_topology(s, line), sc::to_bus_drive(s)),
      s.analysis.time_steps);

  EXPECT_EQ(r.noise->peak_noise_v, direct.peak_noise_v);
  EXPECT_EQ(r.noise->peak_time_s, direct.peak_time_s);
  EXPECT_EQ(r.noise->worst_victim, direct.worst_victim);
  EXPECT_EQ(r.noise->aggressor_delay_s, direct.aggressor_delay_s);
  EXPECT_EQ(r.noise->unknowns, direct.unknowns);
}

TEST(ScenarioEngine, BusConfigTopologyDriveRoundTripsEveryField) {
  // BusConfig, topology()/drive() and make_bus_config each list the bus
  // fields by hand; this pin turns a missed copy in any of them (which
  // would silently desynchronize the cache seam) into a failure.
  cir::BusConfig c;
  c.line = {11.0, 22.0, 33.0, 44.0};
  c.coupling_cap_per_m = 55e-12;
  c.length_m = 66e-6;
  c.lines = 7;
  c.segments = 88;
  c.aggressor = 3;
  c.driver_ohm = 9e3;
  c.vdd_v = 1.1;
  c.edge_time_s = 12e-12;
  c.receiver_load_f = 0.13e-15;
  c.mna.solver = cir::SolverKind::kSparse;
  c.mna.sparse_threshold = 123;
  const cir::BusConfig r = cir::make_bus_config(c.topology(), c.drive());
  EXPECT_EQ(r.line.series_resistance_ohm, c.line.series_resistance_ohm);
  EXPECT_EQ(r.line.resistance_per_m, c.line.resistance_per_m);
  EXPECT_EQ(r.line.capacitance_per_m, c.line.capacitance_per_m);
  EXPECT_EQ(r.line.inductance_per_m, c.line.inductance_per_m);
  EXPECT_EQ(r.coupling_cap_per_m, c.coupling_cap_per_m);
  EXPECT_EQ(r.length_m, c.length_m);
  EXPECT_EQ(r.lines, c.lines);
  EXPECT_EQ(r.segments, c.segments);
  EXPECT_EQ(r.aggressor, c.aggressor);
  EXPECT_EQ(r.driver_ohm, c.driver_ohm);
  EXPECT_EQ(r.vdd_v, c.vdd_v);
  EXPECT_EQ(r.edge_time_s, c.edge_time_s);
  EXPECT_EQ(r.receiver_load_f, c.receiver_load_f);
  EXPECT_EQ(r.mna.solver, c.mna.solver);
  EXPECT_EQ(r.mna.sparse_threshold, c.mna.sparse_threshold);
}

TEST(ScenarioEngine, PrebuiltNetlistOverloadMatchesSingleShot) {
  const sc::Scenario s = small_scenario();
  const cc::MultiscaleInput in = sc::to_multiscale_input(s);
  const cc::ChannelStage channels =
      cc::doping_channel_stage(s.tech.dopant, s.tech.dopant_concentration);
  const cc::MwcntLine line(cc::multiscale_line_spec(
      in, channels, cc::environment_capacitance(s.tech.environment)));
  const cir::BusTopology topology = sc::to_bus_topology(s, line);
  const cir::BusDrive drive = sc::to_bus_drive(s);

  const cir::BusNetlist bare = cir::build_bus_netlist(topology);
  const auto via_bare = cir::analyze_bus_crosstalk(bare, topology, drive, 150);
  const auto single =
      cir::analyze_bus_crosstalk(cir::make_bus_config(topology, drive), 150);
  EXPECT_EQ(via_bare.peak_noise_v, single.peak_noise_v);
  EXPECT_EQ(via_bare.aggressor_delay_s, single.aggressor_delay_s);
  EXPECT_EQ(via_bare.unknowns, single.unknowns);

  // Reuse of the same bare netlist for a second drive stays bit-identical.
  cir::BusDrive strong = drive;
  strong.driver_ohm /= 2.0;
  const auto reused = cir::analyze_bus_crosstalk(bare, topology, strong, 150);
  const auto fresh =
      cir::analyze_bus_crosstalk(cir::make_bus_config(topology, strong), 150);
  EXPECT_EQ(reused.peak_noise_v, fresh.peak_noise_v);
  EXPECT_EQ(reused.aggressor_delay_s, fresh.aggressor_delay_s);

  // Pairing a cached netlist with a different topology (even one of the
  // same line count) must be rejected, not silently mis-simulated.
  cir::BusTopology other = topology;
  other.length_m *= 2.0;
  EXPECT_THROW(
      (void)cir::analyze_bus_crosstalk(bare, other, drive, 150),
      cnti::PreconditionError);
}

TEST(ScenarioEngine, ThermalStageReportsSelfHeatingAmpacityAndEm) {
  sc::Scenario s = small_scenario();
  s.analysis.thermal = true;
  s.workload.operating_current_ua = 20.0;
  const sc::ScenarioEngine engine;
  const sc::ScenarioResult r = engine.run(s);
  ASSERT_TRUE(r.thermal.has_value());
  EXPECT_GT(r.thermal->peak_rise_k, 0.0);
  EXPECT_GT(r.thermal->ampacity_ua, 0.0);
  EXPECT_GT(r.thermal->current_density_a_cm2, 0.0);
  EXPECT_FALSE(r.thermal->thermal_runaway);
  // 20 uA through a 10 nm disc is ~2.5e7 A/cm^2 — far below the CNT
  // breakdown density, lethal for Cu.
  EXPECT_TRUE(r.thermal->cnt_em_immune);
  EXPECT_GT(r.thermal->cu_reference_mttf_s, 0.0);
}

// ---------------------------------------------------------------------------
// Batch semantics: cache contracts, cached == uncached, thread invariance.

std::vector<sc::Scenario> mixed_batch() {
  sc::Scenario base = small_scenario();
  base.label = "batch";
  base.analysis.noise = true;
  base.analysis.thermal = true;
  const cnti::core::SweepGrid grid(
      {{"doping", {0.0, 1.0}},
       {"driver_kohm", {2.0, 5.0, 10.0}},
       {"load_ff", {0.1, 0.5}}});
  return sc::expand_grid(base, grid,
                         [](sc::Scenario& s, const cnti::core::SweepPoint& p) {
                           s.tech.dopant_concentration = p.at("doping");
                           s.workload.driver_resistance_kohm =
                               p.at("driver_kohm");
                           s.workload.load_capacitance_ff = p.at("load_ff");
                         });
}

void expect_same_results(const std::vector<sc::ScenarioResult>& a,
                         const std::vector<sc::ScenarioResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].label);
    expect_same_line_report(a[i].line, b[i].line);
    ASSERT_EQ(a[i].noise.has_value(), b[i].noise.has_value());
    if (a[i].noise) {
      EXPECT_EQ(a[i].noise->peak_noise_v, b[i].noise->peak_noise_v);
      EXPECT_EQ(a[i].noise->peak_time_s, b[i].noise->peak_time_s);
      EXPECT_EQ(a[i].noise->worst_victim, b[i].noise->worst_victim);
      EXPECT_EQ(a[i].noise->aggressor_delay_s, b[i].noise->aggressor_delay_s);
    }
    ASSERT_EQ(a[i].thermal.has_value(), b[i].thermal.has_value());
    if (a[i].thermal) {
      EXPECT_EQ(a[i].thermal->peak_rise_k, b[i].thermal->peak_rise_k);
      EXPECT_EQ(a[i].thermal->ampacity_ua, b[i].thermal->ampacity_ua);
      EXPECT_EQ(a[i].thermal->cu_reference_mttf_s,
                b[i].thermal->cu_reference_mttf_s);
    }
  }
}

TEST(ScenarioEngine, BatchSharesTopologyArtifactsAcrossScenarios) {
  const auto batch = mixed_batch();  // 2 dopings x 3 drivers x 2 loads = 12
  const sc::ScenarioEngine engine;
  const auto results = engine.run_batch(batch);
  ASSERT_EQ(results.size(), batch.size());

  // Two dopings -> two line models -> two topologies; every scenario of a
  // topology shares one PRIMA reduction regardless of driver/load.
  const auto rom = engine.cache().stats(sc::stage::kBusRom);
  EXPECT_EQ(rom.misses, 2u);
  EXPECT_EQ(rom.hits, 10u);
  const auto atom = engine.cache().stats(sc::stage::kAtomistic);
  EXPECT_EQ(atom.misses, 2u);
  EXPECT_EQ(atom.hits, 10u);
  // One shared environment -> a single capacitance extraction.
  const auto cap = engine.cache().stats(sc::stage::kCapacitance);
  EXPECT_EQ(cap.misses, 1u);
  EXPECT_EQ(cap.hits, 11u);
  // Thermal KPIs depend on doping and length only -> 2 distinct solves.
  const auto th = engine.cache().stats(sc::stage::kThermal);
  EXPECT_EQ(th.misses, 2u);
  EXPECT_EQ(th.hits, 10u);
}

TEST(ScenarioEngine, CachedBatchEqualsUncachedBatchBitwise) {
  const auto batch = mixed_batch();
  const sc::ScenarioEngine cached;
  sc::EngineOptions uncached_opt;
  uncached_opt.cache_enabled = false;
  const sc::ScenarioEngine uncached(uncached_opt);
  expect_same_results(cached.run_batch(batch), uncached.run_batch(batch));
}

TEST(ScenarioEngine, BatchIsThreadCountInvariant) {
  const auto batch = mixed_batch();
  sc::EngineOptions opt1;
  opt1.sweep.threads = 1;
  const sc::ScenarioEngine serial(opt1);
  const auto reference = serial.run_batch(batch);
  for (const int threads : {2, 5}) {
    sc::EngineOptions opt;
    opt.sweep.threads = threads;
    const sc::ScenarioEngine engine(opt);
    SCOPED_TRACE(threads);
    expect_same_results(reference, engine.run_batch(batch));
  }
}

TEST(ScenarioEngine, RunBatchMatchesIndividualRuns) {
  const auto batch = mixed_batch();
  const sc::ScenarioEngine engine;
  const auto results = engine.run_batch(batch);
  const sc::ScenarioEngine fresh;
  std::vector<sc::ScenarioResult> individual;
  individual.reserve(batch.size());
  for (const auto& s : batch) individual.push_back(fresh.run(s));
  expect_same_results(results, individual);
}

TEST(ScenarioEngine, InvalidScenarioThrows) {
  sc::Scenario s = small_scenario();
  s.tech.outer_diameter_nm = 0.5;
  const sc::ScenarioEngine engine;
  EXPECT_THROW((void)engine.run(s), cnti::PreconditionError);
  s = small_scenario();
  s.workload.length_um = -1.0;
  EXPECT_THROW((void)engine.run(s), cnti::PreconditionError);
}

// ---------------------------------------------------------------------------
// Scenario expansion + reports.

TEST(ScenarioSpec, ExpandGridEnumeratesInFlatOrderWithLabels) {
  sc::Scenario base = small_scenario();
  base.label = "study";
  const cnti::core::SweepGrid grid(
      {{"len", {10.0, 20.0}}, {"drv", {1.0, 2.0, 3.0}}});
  const auto batch = sc::expand_grid(
      base, grid, [](sc::Scenario& s, const cnti::core::SweepPoint& p) {
        s.workload.length_um = p.at("len");
        s.workload.driver_resistance_kohm = p.at("drv");
      });
  ASSERT_EQ(batch.size(), 6u);
  EXPECT_EQ(batch[0].label, "study/len=10/drv=1");
  EXPECT_EQ(batch[5].label, "study/len=20/drv=3");
  EXPECT_EQ(batch[4].workload.length_um, 20.0);
  EXPECT_EQ(batch[4].workload.driver_resistance_kohm, 2.0);
}

TEST(ScenarioReport, CsvHasHeaderOneRowPerScenarioAndQuotedLabels) {
  sc::ScenarioResult r;
  r.label = "with,comma \"quoted\"";
  r.line.resistance_kohm = 12.5;
  sc::ScenarioResult plain;
  plain.label = "plain";
  plain.noise.emplace();
  plain.noise->peak_noise_v = 0.001;
  std::ostringstream os;
  sc::write_report_csv(os, {r, plain});
  const std::string text = os.str();
  EXPECT_NE(text.find("label,fermi_shift_ev"), std::string::npos);
  EXPECT_NE(text.find("\"with,comma \"\"quoted\"\"\""), std::string::npos);
  int lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 3);  // header + 2 rows
}

TEST(ScenarioReport, JsonEscapesLabelsAndEmitsCacheStats) {
  const sc::Scenario s = small_scenario();
  const sc::ScenarioEngine engine;
  auto result = engine.run(s);
  result.label = "quote\" and\nnewline";
  std::ostringstream os;
  sc::write_report_json(os, {result}, &engine.cache());
  const std::string text = os.str();
  EXPECT_NE(text.find("quote\\\" and\\u000anewline"), std::string::npos);
  EXPECT_NE(text.find("\"cache\""), std::string::npos);
  EXPECT_NE(text.find("\"atomistic\""), std::string::npos);
  EXPECT_NE(text.find("\"misses\": 1"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Relocated JSON metric sink (the benches' CNTI_BENCH_JSON writer).

TEST(JsonMetricSink, RejectsDuplicateAndReservedMetricNames) {
  cnti::JsonMetricSink sink;
  sink.set("speedup", 10.0);
  EXPECT_THROW(sink.set("speedup", 11.0), cnti::PreconditionError);
  EXPECT_THROW(sink.set("speedup", std::string("fast")),
               cnti::PreconditionError);
  sink.set("mode", std::string("cached"));
  EXPECT_THROW(sink.set("mode", 1.0), cnti::PreconditionError);
  EXPECT_THROW(sink.set("bench", 1.0), cnti::PreconditionError);
}

TEST(JsonMetricSink, EscapesMetricNamesAndValues) {
  cnti::JsonMetricSink sink;
  sink.set_name("weird\"name");
  sink.set("metric\"with\\quote", 1.5);
  sink.set("note", std::string("line\nbreak"));
  std::ostringstream os;
  sink.write_to(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"bench\": \"weird\\\"name\""), std::string::npos);
  EXPECT_NE(text.find("\"metric\\\"with\\\\quote\": 1.5"),
            std::string::npos);
  EXPECT_NE(text.find("line\\u000abreak"), std::string::npos);
}

TEST(JsonMetricSink, NonFiniteValuesBecomeNull) {
  cnti::JsonMetricSink sink;
  sink.set_name("degenerate");
  sink.set("bad", std::numeric_limits<double>::infinity());
  std::ostringstream os;
  sink.write_to(os);
  EXPECT_NE(os.str().find("\"bad\": null"), std::string::npos);
}

TEST(JsonMetricSink, ConcurrentRecordingIsSerializedAndLossless) {
  // Regression: set()/write_to() had no synchronization, so pool threads
  // recording metrics raced the map inserts. Every recorded metric must
  // survive and the emitted JSON must stay well-formed.
  cnti::JsonMetricSink sink;
  sink.set_name("concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sink.set("m" + std::to_string(t) + "_" + std::to_string(i),
                 t + i * 0.5);
        std::ostringstream scratch;
        sink.write_to(scratch);  // concurrent reads must not tear
      }
    });
  }
  for (auto& t : threads) t.join();
  std::ostringstream os;
  sink.write_to(os);
  const std::string text = os.str();
  int recorded = 0;
  for (std::size_t at = text.find("\"m"); at != std::string::npos;
       at = text.find("\"m", at + 1)) {
    ++recorded;
  }
  EXPECT_EQ(recorded, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// CSV report precision.

TEST(ScenarioReport, CsvRoundTripsDoublesBitFaithfully) {
  // Regression: the CSV writer used precision(12), silently dropping the
  // last ~5 bits of every double — so "bit-identical" studies diffed as
  // unequal CSVs. Fields are now max_digits10 and must round-trip.
  sc::ScenarioResult r;
  r.label = "bits";
  r.line.fermi_shift_ev = -0.123456789012345678;
  r.line.resistance_kohm = 1.0 / 3.0;
  r.line.capacitance_ff = 2.0 / 7.0;
  r.line.delay_ps = 1e-3 + 1e-19;
  r.noise.emplace();
  r.noise->peak_noise_v = 0.0123456789012345678;
  std::ostringstream os;
  sc::write_report_csv(os, {r});
  const std::string text = os.str();
  const std::size_t row_at = text.find("bits,");
  ASSERT_NE(row_at, std::string::npos);
  std::vector<std::string> fields;
  std::istringstream row(text.substr(row_at));
  for (std::string field; std::getline(row, field, ',');) {
    fields.push_back(field);
  }
  ASSERT_GE(fields.size(), 11u);
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  const auto parsed = [&](int i) {
    return std::strtod(fields[static_cast<std::size_t>(i)].c_str(), nullptr);
  };
  EXPECT_EQ(bits(parsed(1)), bits(r.line.fermi_shift_ev));
  EXPECT_EQ(bits(parsed(5)), bits(r.line.resistance_kohm));
  EXPECT_EQ(bits(parsed(6)), bits(r.line.capacitance_ff));
  EXPECT_EQ(bits(parsed(8)), bits(r.line.delay_ps));
  // Scaled columns must round-trip the emitted (scaled) value exactly.
  EXPECT_EQ(bits(parsed(10)), bits(r.noise->peak_noise_v * 1e3));
}

// ---------------------------------------------------------------------------
// Memo cache failure/retry under concurrency.

TEST(MemoCache, ConcurrentThrowThenRetryConvergesToOneValue) {
  // A compute that fails a few times must leave the key retryable even
  // while other threads are racing the same key; once one compute
  // succeeds, everyone converges on that single published value.
  sc::MemoCache cache;
  const auto key = sc::KeyHasher("retry").add(1).key();
  std::atomic<int> attempts{0};
  constexpr int kFailures = 3;
  constexpr int kThreads = 8;
  std::vector<int> got(kThreads, -1);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (true) {
        try {
          const auto v = cache.get_or_compute<int>("stage", key, [&] {
            const int n = attempts.fetch_add(1) + 1;
            if (n <= kFailures) {
              throw cnti::NumericalError("transient failure");
            }
            return n;
          });
          got[static_cast<std::size_t>(t)] = *v;
          return;
        } catch (const cnti::NumericalError&) {
          std::this_thread::yield();  // retry until a compute succeeds
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const int v : got) EXPECT_EQ(v, got[0]);
  EXPECT_GT(got[0], kFailures);
  // Exactly one compute succeeded; the cache holds exactly that entry.
  EXPECT_EQ(cache.entry_count(), 1u);
}

// ---------------------------------------------------------------------------
// Statistical studies: variability keys, deterministic sampling, shards.

/// small_scenario with a variability axis: fast deterministic MC fixture.
sc::Scenario statistical_scenario(int samples) {
  sc::Scenario s = small_scenario();
  s.analysis.delay = false;
  s.analysis.noise = true;
  s.variability.samples = samples;
  s.variability.resistance_span = 0.15;
  s.variability.capacitance_span = 0.10;
  s.variability.coupling_span = 0.20;
  return s;
}

std::string study_bytes(const sc::StatisticalStudy& study) {
  std::ostringstream out;
  sc::write_study_json(out, study);
  return out.str();
}

TEST(ContentKey, EveryVariabilityFieldChangesTheKey) {
  const sc::VariabilitySpec base;
  const auto k0 = sc::content_key(base);
  EXPECT_EQ(sc::content_key(base).hi, k0.hi);

  sc::VariabilitySpec v = base;
  v.seed ^= 1;
  EXPECT_NE(sc::content_key(v).hi, k0.hi);
  v = base;
  v.samples += 1;
  EXPECT_NE(sc::content_key(v).hi, k0.hi);
  v = base;
  v.resistance_span = 0.1;
  EXPECT_NE(sc::content_key(v).hi, k0.hi);
  v = base;
  v.capacitance_span = 0.1;
  EXPECT_NE(sc::content_key(v).hi, k0.hi);
  v = base;
  v.coupling_span = 0.1;
  EXPECT_NE(sc::content_key(v).hi, k0.hi);

  // The variability axis is folded into the scenario key (schema v3).
  sc::Scenario s = small_scenario();
  const auto sk = sc::content_key(s);
  s.variability.samples = 7;
  EXPECT_NE(sc::content_key(s).lo, sk.lo);
}

TEST(Statistical, SampleTechPointIsAPureFunctionOfSeedAndId) {
  sc::VariabilitySpec spec;
  spec.samples = 10;
  spec.resistance_span = 0.2;
  spec.capacitance_span = 0.1;
  spec.coupling_span = 0.3;
  const auto a = sc::sample_tech_point(spec, 12345);
  const auto b = sc::sample_tech_point(spec, 12345);
  EXPECT_EQ(a.resistance_scale, b.resistance_scale);
  EXPECT_EQ(a.capacitance_scale, b.capacitance_scale);
  EXPECT_EQ(a.coupling_scale, b.coupling_scale);

  // Every draw lands inside the spec's box.
  const auto box = sc::tech_box(spec);
  for (std::uint64_t id = 0; id < 200; ++id) {
    const auto p = sc::sample_tech_point(spec, id);
    EXPECT_GE(p.resistance_scale, box.lo.resistance_scale);
    EXPECT_LT(p.resistance_scale, box.hi.resistance_scale);
    EXPECT_GE(p.capacitance_scale, box.lo.capacitance_scale);
    EXPECT_LT(p.capacitance_scale, box.hi.capacitance_scale);
  }

  // A pinned axis (span 0) is exactly 1 and consumes no stream: the other
  // axes' draws must not shift when one span collapses.
  sc::VariabilitySpec pinned = spec;
  pinned.capacitance_span = 0.0;
  const auto q = sc::sample_tech_point(pinned, 12345);
  EXPECT_EQ(q.capacitance_scale, 1.0);
  EXPECT_EQ(q.resistance_scale, a.resistance_scale);
  EXPECT_EQ(q.coupling_scale, a.coupling_scale);
}

TEST(Statistical, ShardRangePartitionsEveryTotalExactly) {
  for (const std::uint64_t total : {0ULL, 1ULL, 7ULL, 100ULL, 1000003ULL}) {
    for (const std::uint64_t count : {1ULL, 2ULL, 3ULL, 8ULL, 13ULL}) {
      std::uint64_t next = 0;
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto [begin, end] = sc::shard_range(total, i, count);
        EXPECT_EQ(begin, next);
        EXPECT_LE(begin, end);
        next = end;
      }
      EXPECT_EQ(next, total);
    }
  }
  EXPECT_THROW(sc::shard_range(10, 3, 3), cnti::PreconditionError);
  EXPECT_THROW(sc::shard_range(10, 0, 0), cnti::PreconditionError);
}

TEST(Statistical, RunIsThreadAndGrainInvariant) {
  const sc::Scenario s = statistical_scenario(48);
  sc::EngineOptions serial;
  serial.sweep.threads = 1;
  sc::EngineOptions wide;
  wide.sweep.threads = 4;
  wide.sweep.grain = 5;
  const auto a = sc::ScenarioEngine(serial).run_statistical(s);
  const auto b = sc::ScenarioEngine(wide).run_statistical(s);
  ASSERT_EQ(a.noise_v.size(), 48u);
  EXPECT_EQ(a.study_key.hi, b.study_key.hi);
  EXPECT_EQ(a.study_key.lo, b.study_key.lo);
  EXPECT_EQ(a.noise_v, b.noise_v);
  EXPECT_EQ(a.delay_s, b.delay_s);
}

TEST(Statistical, ShardedRunsMergeBitIdenticalToTheFullRange) {
  const sc::Scenario s = statistical_scenario(48);
  const sc::ScenarioEngine engine;
  const auto full = engine.run_statistical(s);
  const std::string reference = study_bytes(sc::reduce_shards({full}));

  // Uneven decomposition with an empty middle shard, evaluated out of
  // order — the merge must still stream in global sample order.
  std::vector<sc::StatisticalShard> shards;
  shards.push_back(engine.run_statistical(s, 17, 48));
  shards.push_back(engine.run_statistical(s, 17, 17));
  shards.push_back(engine.run_statistical(s, 0, 17));
  EXPECT_EQ(study_bytes(sc::reduce_shards(std::move(shards))), reference);
}

TEST(Statistical, MergeRejectsGapsOverlapsAndForeignShards) {
  const sc::Scenario s = statistical_scenario(12);
  const sc::ScenarioEngine engine;
  const auto a = engine.run_statistical(s, 0, 6);
  const auto b = engine.run_statistical(s, 6, 12);

  EXPECT_THROW(sc::reduce_shards({a, a}), cnti::PreconditionError);  // overlap
  EXPECT_THROW(sc::reduce_shards({a}), cnti::PreconditionError);     // gap
  EXPECT_THROW(sc::reduce_shards({b}), cnti::PreconditionError);     // gap

  auto foreign = b;
  foreign.study_key.lo ^= 1;  // same range, different study
  EXPECT_THROW(sc::reduce_shards({a, foreign}), cnti::PreconditionError);

  auto truncated = b;
  truncated.noise_v.pop_back();  // KPI arrays disagree with the range
  EXPECT_THROW(sc::reduce_shards({a, truncated}), cnti::PreconditionError);
}

TEST(Statistical, ShardJsonRoundTripsBitExactlyIncludingNaN) {
  const sc::Scenario s = statistical_scenario(12);
  sc::StatisticalShard shard = sc::ScenarioEngine().run_statistical(s);
  shard.delay_s[3] = std::numeric_limits<double>::quiet_NaN();

  std::ostringstream out;
  sc::write_shard_json(out, shard);
  EXPECT_NE(out.str().find("null"), std::string::npos);
  const sc::StatisticalShard back = sc::read_shard_json(out.str());
  EXPECT_EQ(back.study_key.hi, shard.study_key.hi);
  EXPECT_EQ(back.study_key.lo, shard.study_key.lo);
  EXPECT_EQ(back.total_samples, shard.total_samples);
  EXPECT_EQ(back.begin, shard.begin);
  EXPECT_EQ(back.end, shard.end);
  EXPECT_EQ(back.noise_v, shard.noise_v);
  ASSERT_EQ(back.delay_s.size(), shard.delay_s.size());
  for (std::size_t i = 0; i < shard.delay_s.size(); ++i) {
    if (std::isnan(shard.delay_s[i])) {
      EXPECT_TRUE(std::isnan(back.delay_s[i]));
    } else {
      EXPECT_EQ(back.delay_s[i], shard.delay_s[i]);
    }
  }

  EXPECT_THROW(sc::read_shard_json("{\"schema\": \"cnti.shard.v1\"}"),
               cnti::ParseError);
}

TEST(Statistical, InvalidDelaysAreCountedNotPoisoned) {
  // A shard whose delays are all NaN reduces to a zero-count delay summary
  // and a full invalid count — the noise statistics stay untouched.
  sc::StatisticalShard shard;
  shard.total_samples = 4;
  shard.begin = 0;
  shard.end = 4;
  shard.noise_v = {0.1, 0.2, 0.3, 0.4};
  shard.delay_s.assign(4, std::numeric_limits<double>::quiet_NaN());
  const sc::StatisticalStudy study = sc::reduce_shards({shard});
  EXPECT_EQ(study.delay_valid, 0u);
  EXPECT_EQ(study.delay_invalid, 4u);
  EXPECT_EQ(study.delay_s.count, 0u);
  EXPECT_EQ(study.noise_v.count, 4u);
  EXPECT_DOUBLE_EQ(study.noise_v.mean, 0.25);
  // The study report renders without throwing and carries the counts.
  const std::string json = study_bytes(study);
  EXPECT_NE(json.find("\"delay_invalid\": 4"), std::string::npos);
}

TEST(ScenarioReport, NeverCrossedDelayIsNullInJsonAndEmptyInCsv) {
  // End-to-end sentinel path: a source impedance far above the g_min
  // leakage floor keeps the aggressor far end below vdd/2 forever, so the
  // full-MNA noise stage reports a NaN delay — which must surface as JSON
  // null and an empty CSV cell, never as -1 or "nan".
  sc::Scenario s = small_scenario();
  s.analysis.delay = false;
  s.analysis.noise = true;
  s.analysis.noise_model = sc::NoiseModel::kFullMna;
  s.workload.driver_resistance_kohm = 1e9;  // 1e12 Ohm
  const sc::ScenarioResult r = sc::ScenarioEngine().run(s);
  ASSERT_TRUE(r.noise.has_value());
  ASSERT_TRUE(std::isnan(r.noise->aggressor_delay_s));

  std::ostringstream json;
  sc::write_result_json_object(json, r, "");
  EXPECT_NE(json.str().find("\"aggressor_delay_s\": null"),
            std::string::npos);

  std::ostringstream csv;
  sc::write_report_csv(csv, {r});
  std::string line = csv.str();
  line = line.substr(line.find('\n') + 1);  // data row
  std::vector<std::string> fields;
  std::istringstream row(line);
  for (std::string f; std::getline(row, f, ',');) fields.push_back(f);
  const auto& header = sc::report_csv_header();
  const std::size_t col =
      static_cast<std::size_t>(std::find(header.begin(), header.end(),
                                         "aggressor_delay_ps") -
                               header.begin());
  ASSERT_LT(col, fields.size());
  EXPECT_EQ(fields[col], "");
  EXPECT_EQ(line.find("nan"), std::string::npos);
}

}  // namespace
