// The deterministic parallel execution subsystem: ThreadPool scheduling
// contracts, counter-based RNG stream forking, mergeable-accumulator
// semantics, and the headline guarantee — every stochastic result
// (run_resistance_mc, WaferMap, sample_tubes, run_sweep) is bit-identical
// at any thread count and across repeated runs with the same seed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "core/sweep_engine.hpp"
#include "numerics/rng.hpp"
#include "numerics/stats.hpp"
#include "numerics/thread_pool.hpp"
#include "process/cvd.hpp"
#include "process/variability.hpp"
#include "process/wafer.hpp"

namespace cn = cnti::numerics;
namespace cc = cnti::core;
namespace cp = cnti::process;

namespace {

// Exact (bitwise) Summary equality — the determinism contract is "same
// bits", not "close".
void expect_summary_identical(const cn::Summary& a, const cn::Summary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p05, b.p05);
  EXPECT_EQ(a.p95, b.p95);
}

// ---------------------------------------------------------------------------
// ThreadPool scheduling contracts.
// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  cn::ThreadPool pool(4);
  const std::size_t n = 1003;
  std::vector<int> hits(n, 0);  // disjoint chunk writes, no atomics needed
  pool.parallel_chunks(n, 17, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnGrain) {
  // Chunk shape must be a pure function of (n, grain): with n=10, grain=4
  // the chunks are [0,4) [4,8) [8,10) at any thread count.
  for (int threads : {1, 3}) {
    cn::ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> seen(3);
    pool.parallel_chunks(10, 4, [&](std::size_t begin, std::size_t end) {
      seen[begin / 4] = {begin, end};
    });
    EXPECT_EQ(seen[0], (std::pair<std::size_t, std::size_t>{0, 4}));
    EXPECT_EQ(seen[1], (std::pair<std::size_t, std::size_t>{4, 8}));
    EXPECT_EQ(seen[2], (std::pair<std::size_t, std::size_t>{8, 10}));
  }
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  cn::ThreadPool pool(2);
  bool called = false;
  pool.parallel_chunks(0, 8, [&](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesTheFirstChunkException) {
  cn::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_chunks(100, 10,
                           [](std::size_t begin, std::size_t) {
                             if (begin == 50) {
                               throw cnti::NumericalError("chunk failed");
                             }
                           }),
      cnti::NumericalError);
  // The pool survives a failed job and runs the next one normally.
  std::atomic<int> count{0};
  pool.parallel_chunks(100, 10, [&](std::size_t begin, std::size_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReentrantCallsRunSerially) {
  // A chunk body that re-enters the pool must not deadlock; the nested
  // call degrades to serial execution on the calling thread.
  cn::ThreadPool pool(4);
  std::atomic<int> inner_items{0};
  pool.parallel_chunks(8, 1, [&](std::size_t, std::size_t) {
    pool.parallel_chunks(5, 2, [&](std::size_t begin, std::size_t end) {
      inner_items += static_cast<int>(end - begin);
    });
  });
  EXPECT_EQ(inner_items.load(), 8 * 5);
}

TEST(ThreadPool, ConcurrentSubmittersSerializeSafely) {
  // Several application threads submitting to one pool (the global_pool()
  // pattern behind every threads==0 knob) must not corrupt the job
  // handshake; jobs serialize and every item of every job runs once.
  cn::ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr std::size_t kItems = 500;
  std::vector<std::vector<int>> hits(kSubmitters,
                                     std::vector<int>(kItems, 0));
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &hits, s] {
      pool.parallel_chunks(kItems, 7,
                           [&hits, s](std::size_t begin, std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               ++hits[s][i];
                             }
                           });
    });
  }
  for (auto& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(hits[s][i], 1) << "submitter " << s << " index " << i;
    }
  }
}

TEST(ThreadPool, ThreadCountAndEnvKnob) {
  EXPECT_EQ(cn::ThreadPool(3).thread_count(), 3);
  EXPECT_EQ(cn::ThreadPool(1).thread_count(), 1);
  // Preserve the ambient CNTI_THREADS: CI sets it to pin the width for
  // the whole binary, and later tests must still see that value.
  const char* prior_raw = std::getenv("CNTI_THREADS");
  const std::string prior = prior_raw ? prior_raw : "";
  ASSERT_EQ(setenv("CNTI_THREADS", "5", 1), 0);
  EXPECT_EQ(cn::ThreadPool::default_thread_count(), 5);
  ASSERT_EQ(setenv("CNTI_THREADS", "0", 1), 0);  // invalid -> fallback
  EXPECT_GE(cn::ThreadPool::default_thread_count(), 1);
  if (prior_raw) {
    ASSERT_EQ(setenv("CNTI_THREADS", prior.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("CNTI_THREADS"), 0);
  }
  EXPECT_GE(cn::ThreadPool::default_thread_count(), 1);
}

// ---------------------------------------------------------------------------
// RNG stream forking properties.
// ---------------------------------------------------------------------------

TEST(RngFork, PureFunctionOfSeedAndStreamId) {
  cn::Rng a(99), b(99);
  // Consuming the parent must not move its fork streams.
  for (int i = 0; i < 123; ++i) a.uniform();
  cn::Rng fa = a.fork(7), fb = b.fork(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fa.uniform(), fb.uniform());
  }
}

TEST(RngFork, DistinctStreamsAndSeedsDiffer) {
  cn::Rng root(1234);
  cn::Rng s0 = root.fork(0), s1 = root.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0.uniform() == s1.uniform()) ++equal;
  }
  EXPECT_EQ(equal, 0);
  // Different root seeds give different streams for the same id.
  cn::Rng other(1235);
  EXPECT_NE(root.fork(3).uniform(), other.fork(3).uniform());
}

TEST(RngFork, AdjacentStreamsAreStatisticallyIndependent) {
  // Sample-level cross-correlation between forked streams over 10k
  // samples. For truly independent U(0,1) streams the correlation
  // estimator has sigma = 1/sqrt(n) = 0.01; bound at 4 sigma.
  const int n = 10000;
  cn::Rng root(42);
  for (std::uint64_t id : {0ULL, 1ULL, 100ULL, 1000000ULL}) {
    cn::Rng sa = root.fork(id), sb = root.fork(id + 1);
    double sum_a = 0, sum_b = 0, sum_ab = 0, sum_a2 = 0, sum_b2 = 0;
    for (int i = 0; i < n; ++i) {
      const double x = sa.uniform(), y = sb.uniform();
      sum_a += x;
      sum_b += y;
      sum_ab += x * y;
      sum_a2 += x * x;
      sum_b2 += y * y;
    }
    const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
    const double var_a = sum_a2 / n - (sum_a / n) * (sum_a / n);
    const double var_b = sum_b2 / n - (sum_b / n) * (sum_b / n);
    const double corr = cov / std::sqrt(var_a * var_b);
    EXPECT_LT(std::abs(corr), 0.04) << "streams " << id << "," << id + 1;
    // Marginals stay uniform: mean within 5 sigma of 1/2.
    EXPECT_NEAR(sum_a / n, 0.5, 5.0 / std::sqrt(12.0 * n));
  }
}

// ---------------------------------------------------------------------------
// Accumulator merge semantics.
// ---------------------------------------------------------------------------

TEST(Accumulator, MergeEqualsSinglePassOverConcatenation) {
  cn::Rng rng(7);
  std::vector<double> data;
  for (int i = 0; i < 10000; ++i) data.push_back(rng.lognormal_median(50, 0.6));

  cn::Accumulator single;
  for (double v : data) single.add(v);

  // Split at arbitrary ragged boundaries and merge in order.
  const std::vector<std::size_t> cuts = {0, 17, 1000, 1001, 4096, 9999,
                                         10000};
  cn::Accumulator merged;
  for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
    cn::Accumulator part;
    for (std::size_t i = cuts[c]; i < cuts[c + 1]; ++i) part.add(data[i]);
    merged.merge(part);
  }

  // Count/min/max are exact; the Chan-merged moments agree with the
  // single Welford pass to floating-point reassociation error.
  EXPECT_EQ(merged.count(), single.count());
  EXPECT_EQ(merged.min(), single.min());
  EXPECT_EQ(merged.max(), single.max());
  EXPECT_NEAR(merged.mean(), single.mean(), 1e-10 * std::abs(single.mean()));
  EXPECT_NEAR(merged.variance(), single.variance(),
              1e-9 * single.variance());
  // Order-preserving merge -> identical retained sample sequence ->
  // bit-identical percentiles.
  ASSERT_EQ(merged.values(), single.values());
  const auto sm = merged.summary(), ss = single.summary();
  EXPECT_EQ(sm.median, ss.median);
  EXPECT_EQ(sm.p05, ss.p05);
  EXPECT_EQ(sm.p95, ss.p95);
}

TEST(Accumulator, RejectsSelfMerge) {
  cn::Accumulator acc;
  acc.add(1.0);
  EXPECT_THROW(acc.merge(acc), cnti::PreconditionError);
}

TEST(Accumulator, MergeHandlesEmptySides) {
  cn::Accumulator empty, filled;
  filled.add(3.0);
  filled.add(-1.0);
  cn::Accumulator target;
  target.merge(empty);  // no-op
  EXPECT_EQ(target.count(), 0u);
  target.merge(filled);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.min(), -1.0);
  EXPECT_EQ(target.max(), 3.0);
  target.merge(empty);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.0);
}

TEST(Accumulator, AgreesWithSummarize) {
  cn::Rng rng(11);
  std::vector<double> data;
  cn::Accumulator acc;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.normal(10.0, 3.0);
    data.push_back(v);
    acc.add(v);
  }
  const auto a = acc.summary();
  const auto b = cn::summarize(data);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.median, b.median);  // same sorted samples
  EXPECT_NEAR(a.mean, b.mean, 1e-12 * std::abs(b.mean));
  EXPECT_NEAR(a.stddev, b.stddev, 1e-10 * b.stddev);
}

// ---------------------------------------------------------------------------
// Bit-identical physics at every thread count.
// ---------------------------------------------------------------------------

class ThreadCountInvariance : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Parallel, ThreadCountInvariance,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST_P(ThreadCountInvariance, ResistanceMcMatchesSerial) {
  cp::VariabilityConfig cfg;
  cfg.samples = 6000;
  cp::VariabilityConfig serial = cfg;
  serial.threads = 1;
  cfg.threads = GetParam();
  const auto a = cp::run_resistance_mc(serial);
  const auto b = cp::run_resistance_mc(cfg);
  expect_summary_identical(a.resistance_kohm, b.resistance_kohm);
  EXPECT_EQ(a.open_fraction, b.open_fraction);
  EXPECT_EQ(a.tail_fraction, b.tail_fraction);
}

TEST_P(ThreadCountInvariance, DopedResistanceMcMatchesSerial) {
  cp::VariabilityConfig cfg;
  cfg.samples = 4000;
  cfg.dopant_concentration = 1.0;
  cp::VariabilityConfig serial = cfg;
  serial.threads = 1;
  cfg.threads = GetParam();
  const auto a = cp::run_resistance_mc(serial);
  const auto b = cp::run_resistance_mc(cfg);
  expect_summary_identical(a.resistance_kohm, b.resistance_kohm);
}

TEST_P(ThreadCountInvariance, WaferMapMatchesSerial) {
  cp::WaferSpec spec;
  cp::GrowthRecipe nominal;
  nominal.catalyst = cp::Catalyst::kCo;
  nominal.temperature_c = 400.0;
  cnti::numerics::Rng rng_a(2018), rng_b(2018);
  const cp::WaferMap a(spec, nominal, rng_a, 1);
  const cp::WaferMap b(spec, nominal, rng_b, GetParam());
  ASSERT_EQ(a.dies().size(), b.dies().size());
  for (std::size_t i = 0; i < a.dies().size(); ++i) {
    const auto& da = a.dies()[i];
    const auto& db = b.dies()[i];
    EXPECT_EQ(da.x_mm, db.x_mm);
    EXPECT_EQ(da.y_mm, db.y_mm);
    EXPECT_EQ(da.recipe.temperature_c, db.recipe.temperature_c);
    EXPECT_EQ(da.recipe.catalyst_thickness_nm,
              db.recipe.catalyst_thickness_nm);
    EXPECT_EQ(da.quality.growth_rate_um_per_min,
              db.quality.growth_rate_um_per_min);
    EXPECT_EQ(da.quality.defect_spacing_um, db.quality.defect_spacing_um);
  }
  EXPECT_EQ(a.diameter_uniformity(), b.diameter_uniformity());
  EXPECT_EQ(a.yield(), b.yield());
}

TEST_P(ThreadCountInvariance, SampledTubeBatchMatchesSerial) {
  const auto quality = cp::evaluate_recipe(cp::GrowthRecipe{});
  const cnti::numerics::Rng base(55);
  const auto a = cp::sample_tubes(quality, 3000, base, 1);
  const auto b = cp::sample_tubes(quality, 3000, base, GetParam());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].diameter_nm, b[i].diameter_nm);
    EXPECT_EQ(a[i].walls, b[i].walls);
    EXPECT_EQ(a[i].defect_spacing_um, b[i].defect_spacing_um);
    EXPECT_EQ(a[i].length_um, b[i].length_um);
    EXPECT_EQ(a[i].via_filled, b[i].via_filled);
  }
}

TEST(Parallel, RepeatedRunsWithSameSeedAreIdentical) {
  cp::VariabilityConfig cfg;
  cfg.samples = 3000;
  cfg.threads = 4;
  const auto a = cp::run_resistance_mc(cfg);
  const auto b = cp::run_resistance_mc(cfg);
  expect_summary_identical(a.resistance_kohm, b.resistance_kohm);
  EXPECT_EQ(a.open_fraction, b.open_fraction);
  EXPECT_EQ(a.tail_fraction, b.tail_fraction);
}

TEST(Parallel, SeedChangesTheStatistics) {
  cp::VariabilityConfig a;
  a.samples = 3000;
  cp::VariabilityConfig b = a;
  b.seed = 4321;
  EXPECT_NE(cp::run_resistance_mc(a).resistance_kohm.mean,
            cp::run_resistance_mc(b).resistance_kohm.mean);
}

// ---------------------------------------------------------------------------
// Sweep engine.
// ---------------------------------------------------------------------------

TEST(SweepEngine, EnumeratesTheCartesianGridRowMajor) {
  const cc::SweepGrid grid({{"a", {1.0, 2.0}}, {"b", {10.0, 20.0, 30.0}}});
  ASSERT_EQ(grid.size(), 6u);
  // Last axis fastest: (1,10) (1,20) (1,30) (2,10) ...
  EXPECT_EQ(grid.point(0).at("a"), 1.0);
  EXPECT_EQ(grid.point(0).at("b"), 10.0);
  EXPECT_EQ(grid.point(2).at("b"), 30.0);
  EXPECT_EQ(grid.point(3).at("a"), 2.0);
  EXPECT_EQ(grid.point(3).at("b"), 10.0);
  EXPECT_EQ(grid.point(5).flat_index(), 5u);
  EXPECT_THROW(grid.point(0).at("nope"), cnti::PreconditionError);
  EXPECT_THROW(grid.point(6), cnti::PreconditionError);
}

TEST(SweepEngine, PointsOutliveTheirGrid) {
  // SweepPoint is a self-contained value: using one after its grid is
  // gone must be safe (points get stashed in result structs routinely).
  const cc::SweepPoint p =
      cc::SweepGrid({{"x", {3.0, 4.0}}, {"y", {7.0}}}).point(1);
  EXPECT_EQ(p.at("x"), 4.0);
  EXPECT_EQ(p.at("y"), 7.0);
  EXPECT_EQ(p.flat_index(), 1u);
}

TEST(SweepEngine, ParallelSweepMatchesDirectEvaluation) {
  const cc::SweepGrid grid({{"doping", {0.0, 1.0}},
                            {"length_um", {0.5, 1.0, 5.0}}});
  const auto eval = [](const cc::SweepPoint& p) {
    cp::VariabilityConfig cfg;
    cfg.samples = 800;
    cfg.dopant_concentration = p.at("doping");
    cfg.length_um = p.at("length_um");
    cfg.threads = 1;  // the sweep parallelizes across points
    return cp::run_resistance_mc(cfg).resistance_kohm;
  };
  cc::SweepOptions opts;
  opts.threads = 4;
  const auto parallel = cc::run_sweep(grid, eval, opts);
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    expect_summary_identical(parallel[i], eval(grid.point(i)));
  }
}

TEST(SweepEngine, ResultsIdenticalAcrossThreadCounts) {
  const cc::SweepGrid grid({{"t_c", {420.0, 500.0, 620.0}},
                            {"length_um", {0.5, 2.0}}});
  const auto eval = [](const cc::SweepPoint& p) {
    cp::VariabilityConfig cfg;
    cfg.samples = 600;
    cfg.recipe.temperature_c = p.at("t_c");
    cfg.length_um = p.at("length_um");
    cfg.threads = 1;
    // Per-point seed derived from the flat index keeps points independent.
    cfg.seed = static_cast<unsigned>(9000 + p.flat_index());
    return cp::run_resistance_mc(cfg).resistance_kohm.median;
  };
  cc::SweepOptions one;
  one.threads = 1;
  const auto base = cc::run_sweep(grid, eval, one);
  for (int threads : {2, 8}) {
    cc::SweepOptions opts;
    opts.threads = threads;
    opts.grain = 2;
    EXPECT_EQ(cc::run_sweep(grid, eval, opts), base);
  }
}

// ---------------------------------------------------------------------------
// Wall-clock scaling (the acceptance bench rides in bench_variability_mc;
// this is the in-tree guard, skipped on machines without 8 hardware
// threads where the ratio is meaningless).
// ---------------------------------------------------------------------------

TEST(Parallel, EightThreadSpeedupOnWideMachines) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "wall-clock ratios are meaningless under sanitizers";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  GTEST_SKIP() << "wall-clock ratios are meaningless under sanitizers";
#endif
#endif
  if (std::thread::hardware_concurrency() < 8) {
    GTEST_SKIP() << "needs >= 8 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  cp::VariabilityConfig cfg;
  cfg.samples = 20000;
  const auto time_run = [&cfg](int threads) {
    cfg.threads = threads;
    cp::run_resistance_mc(cfg);  // warm-up (pool spin-up, page faults)
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < 3; ++rep) cp::run_resistance_mc(cfg);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const double serial_s = time_run(1);
  const double parallel_s = time_run(8);
  EXPECT_GE(serial_s / parallel_s, 3.0)
      << "serial " << serial_s << " s vs 8-thread " << parallel_s << " s";
}

TEST(RngFork, TwoLevelSampleAxisStreamsNeverCollide) {
  // The statistical layer derives one stream per Monte Carlo sample as
  // Rng(seed).fork(sample_id) and one sub-stream per technology axis as
  // .fork(axis). Samples are split across shard processes by id range, so
  // stream identity must be a pure function of (seed, id, axis) with no
  // collisions anywhere in the id space — a collision would hand two
  // samples (possibly in different shards) correlated draws. First draws
  // over thousands of (id, axis) pairs, including ids far apart as shard
  // boundaries would place them, must be pairwise distinct.
  const std::uint64_t seed = 0x5eed5eed5eed5eedULL;
  const cn::Rng root(seed);
  std::set<double> seen;
  std::size_t draws = 0;
  for (const std::uint64_t base : {0ULL, 100000ULL, 1ULL << 40}) {
    for (std::uint64_t offset = 0; offset < 1000; ++offset) {
      const cn::Rng sample = root.fork(base + offset);
      for (std::uint64_t axis = 0; axis < 3; ++axis) {
        cn::Rng stream = sample.fork(axis);
        seen.insert(stream.uniform());
        ++draws;
      }
    }
  }
  EXPECT_EQ(seen.size(), draws);
}

TEST(RngFork, ReDerivedStreamMatchesAcrossProcessBoundaries) {
  // A shard rebuilds Rng(seed).fork(id).fork(axis) from scratch in its
  // own process. Re-deriving the chain from a fresh root — after the
  // original root and intermediate have been consumed — must reproduce
  // the identical stream, or shard decompositions would not merge
  // bit-identically.
  cn::Rng root(42);
  cn::Rng sample = root.fork(1234);
  for (int i = 0; i < 17; ++i) {
    root.uniform();  // consuming parents must not disturb derived streams
    sample.uniform();
  }
  cn::Rng original = sample.fork(2);
  cn::Rng rederived = cn::Rng(42).fork(1234).fork(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(original.uniform(), rederived.uniform());
  }
  // The axis index matters: sibling axes are distinct streams.
  EXPECT_NE(cn::Rng(42).fork(1234).fork(0).uniform(),
            cn::Rng(42).fork(1234).fork(1).uniform());
}

}  // namespace
