// Tests for the core compact models: paper Eqs. 4-5, shell rules,
// electrostatics, distributed-line delay, vias, KPIs, multiscale flow.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "core/electrostatics.hpp"
#include "core/kpis.hpp"
#include "core/line_model.hpp"
#include "core/multiscale.hpp"
#include "core/mwcnt_line.hpp"
#include "core/swcnt_line.hpp"
#include "core/via_model.hpp"

namespace cc = cnti::core;
using cnti::units::from_nm;
using cnti::units::from_um;
using cnti::units::to_kOhm;

namespace {

TEST(MwcntShells, PaperLinearRule) {
  // N_S = D[nm] - 1 (paper Sec. III.C): 9 / 13 / 21 for 10 / 14 / 22 nm.
  EXPECT_EQ(cc::make_paper_mwcnt(10, 2).shell_count(), 9);
  EXPECT_EQ(cc::make_paper_mwcnt(14, 2).shell_count(), 13);
  EXPECT_EQ(cc::make_paper_mwcnt(22, 2).shell_count(), 21);
}

TEST(MwcntShells, VanDerWaalsRule) {
  cc::MwcntSpec spec;
  spec.outer_diameter_m = from_nm(10);
  spec.shell_rule = cc::ShellRule::kVanDerWaals;
  const cc::MwcntLine line(spec);
  // Shells at 10, 9.32, ..., down to 5 nm: floor(5/0.68)+1 = 8.
  EXPECT_EQ(line.shell_count(), 8);
  EXPECT_NEAR(line.shell_diameters().front(), 10e-9, 1e-12);
  EXPECT_GE(line.shell_diameters().back(), 5e-9 - 1e-12);
}

TEST(MwcntResistance, PaperEq4ClosedForm) {
  // With the paper's conventions (uniform lambda = 1000 D, N_S = D-1,
  // ideal contacts): R = (1 + L/lambda) / (N_C N_S G0).
  const double d_nm = 10.0, l_um = 500.0, nc = 2.0;
  const cc::MwcntLine line = cc::make_paper_mwcnt(d_nm, nc,
                                                  /*contact=*/0.0);
  const double lambda = 1000.0 * from_nm(d_nm);
  const double g1 = cnti::phys::kConductanceQuantum /
                    (1.0 + from_um(l_um) / lambda);
  const double expected = 1.0 / (nc * 9.0 * g1);
  EXPECT_NEAR(line.resistance(from_um(l_um)), expected, 1e-6 * expected);
}

TEST(MwcntResistance, DopingReducesResistanceProportionally) {
  // Doubling N_c halves the CNT part of the resistance (ideal contacts).
  const double l = from_um(100);
  const double r2 = cc::make_paper_mwcnt(10, 2, 0.0).resistance(l);
  const double r4 = cc::make_paper_mwcnt(10, 4, 0.0).resistance(l);
  EXPECT_NEAR(r4, r2 / 2.0, 1e-9 * r2);
}

TEST(MwcntResistance, ContactResistanceIsDopingIndependentFloor) {
  const double l = from_um(1);
  const double rc = 200e3;
  const double r_doped = cc::make_paper_mwcnt(22, 10, rc).resistance(l);
  EXPECT_GT(r_doped, rc);
  EXPECT_LT(r_doped, rc * 1.05);  // short line: contacts dominate
}

TEST(MwcntResistance, ShortLineApproachesQuantumLimit) {
  cc::MwcntSpec spec;
  spec.outer_diameter_m = from_nm(10);
  spec.channels_per_shell = 2.0;
  spec.contact_resistance_ohm = 0.0;
  const cc::MwcntLine line(spec);
  const double r_short = line.resistance(from_nm(10));
  const double r_quantum =
      cnti::phys::kResistanceQuantum / line.total_channels();
  EXPECT_NEAR(r_short, r_quantum, 0.01 * r_quantum);
}

TEST(MwcntCapacitance, Eq5SeriesReducesToCe) {
  // C_Q = N_C N_S * 96.5 aF/um >> C_E = 50 aF/um -> C ~ C_E.
  const cc::MwcntLine line = cc::make_paper_mwcnt(14, 2);
  const double ce = 50e-12;
  EXPECT_LT(line.capacitance_per_m(), ce);
  EXPECT_GT(line.capacitance_per_m(), 0.9 * ce);
  // Exact series formula.
  const double cq = line.quantum_capacitance_per_m();
  EXPECT_NEAR(line.capacitance_per_m(), cq * ce / (cq + ce), 1e-18);
}

TEST(MwcntCapacitance, DopingBarelyChangesCapacitance) {
  // Paper: "CE does not depend on doping"; C ~ CE so delay gains come from
  // R only. Doping raises C_Q, pushing C slightly closer to C_E.
  const double c2 = cc::make_paper_mwcnt(10, 2).capacitance_per_m();
  const double c10 = cc::make_paper_mwcnt(10, 10).capacitance_per_m();
  EXPECT_NEAR(c10 / c2, 1.0, 0.05);
}

TEST(MwcntInductance, KineticInductanceSplitsAcrossChannels) {
  const cc::MwcntLine line = cc::make_paper_mwcnt(10, 2);
  const double lk1 = cnti::cntconst::kKineticInductancePerChannel;
  EXPECT_NEAR(line.kinetic_inductance_per_m(),
              lk1 / line.total_channels(), 1e-12);
}

TEST(MwcntConductivity, ImprovesWithLengthThenSaturates) {
  const cc::MwcntLine line = cc::make_paper_mwcnt(10, 2, 0.0);
  const double s1 = line.effective_conductivity(from_um(1));
  const double s10 = line.effective_conductivity(from_um(10));
  const double s100 = line.effective_conductivity(from_um(100));
  const double s1000 = line.effective_conductivity(from_um(1000));
  EXPECT_LT(s1, s10);
  EXPECT_LT(s10, s100);
  // Saturation: relative gain from 100 um to 1 mm is small.
  EXPECT_LT((s1000 - s100) / s100, 0.15);
}

TEST(Swcnt, ResistanceBallisticPlusDiffusive) {
  cc::SwcntSpec spec;  // 1 nm metallic tube, lambda = 1 um
  const cc::SwcntWire wire(spec);
  const double r0 = cnti::phys::kResistanceQuantum / 2.0;
  EXPECT_NEAR(wire.resistance(from_um(1)), 2.0 * r0, 0.01 * r0);
  EXPECT_NEAR(wire.resistance(from_um(10)), 11.0 * r0, 0.1 * r0);
}

TEST(Swcnt, SaturationCurrentMatchesPaper) {
  cc::SwcntSpec spec;
  const cc::SwcntWire wire(spec);
  const double i_ua = cnti::units::to_uA(wire.saturation_current());
  EXPECT_GE(i_ua, 20.0);
  EXPECT_LE(i_ua, 25.0);
}

TEST(Bundle, DensityAndMetallicFractionSetTubeCount) {
  cc::BundleSpec spec;
  spec.width_m = from_nm(100);
  spec.height_m = from_nm(50);
  spec.tube_density_per_m2 = 0.5e18;  // 0.5 per nm^2
  const cc::SwcntBundle bundle(spec);
  EXPECT_NEAR(bundle.tube_count(), 2500.0, 1.0);
  EXPECT_NEAR(bundle.conducting_tube_count(), 2500.0 / 3.0, 1.0);
}

TEST(Bundle, AmpacityScalesWithConductingTubes) {
  cc::BundleSpec spec;
  spec.width_m = from_nm(100);
  spec.height_m = from_nm(50);
  const cc::SwcntBundle bundle(spec);
  EXPECT_NEAR(bundle.max_current(),
              bundle.conducting_tube_count() * 25e-6, 1e-7);
}

TEST(Electrostatics, WireOverPlaneKnownValue) {
  // r = 5 nm, h = 25 nm, eps_r = 2.5: C = 2 pi eps / acosh(5) ~ 60.4 aF/um.
  const double c = cc::wire_over_plane_capacitance(from_nm(5), from_nm(25),
                                                   2.5);
  EXPECT_NEAR(cnti::units::to_aF_per_um(c), 60.4, 1.0);
}

TEST(Electrostatics, CouplingIncreasesEnvironmentCapacitance) {
  cc::WireEnvironment isolated;
  cc::WireEnvironment coupled = isolated;
  coupled.neighbor_pitch_m = from_nm(30);
  EXPECT_GT(cc::environment_capacitance(coupled),
            cc::environment_capacitance(isolated));
}

TEST(Electrostatics, RejectsWireBelowPlane) {
  EXPECT_THROW(cc::wire_over_plane_capacitance(from_nm(5), from_nm(4), 2.5),
               cnti::PreconditionError);
}

TEST(LineModel, ElmoreMatchesHandComputation) {
  cc::DriverLineLoad cfg;
  cfg.driver_resistance_ohm = 1e3;
  cfg.driver_output_capacitance_f = 0.0;
  cfg.line.series_resistance_ohm = 0.0;
  cfg.line.resistance_per_m = 1e9;      // 1 kOhm/um
  cfg.line.capacitance_per_m = 100e-12; // 100 aF/um
  cfg.length_m = from_um(10);
  cfg.load_capacitance_f = 1e-15;
  // Rline = 10k, Cline = 1 fF.
  // td = 1k*(1f+1f) + 10k*(0.5f+1f) = 2e-12 + 15e-12 = 17 ps.
  EXPECT_NEAR(cnti::units::to_ps(cc::elmore_delay(cfg)), 17.0, 1e-9);
}

TEST(LineModel, DiscretizationConservesTotals) {
  cc::LineRlc line;
  line.resistance_per_m = 2e9;
  line.capacitance_per_m = 80e-12;
  const auto segs = cc::discretize_line(line, from_um(50), 37);
  double r = 0, c = 0;
  for (const auto& s : segs) {
    r += s.resistance_ohm;
    c += s.capacitance_f;
  }
  EXPECT_NEAR(r, 2e9 * from_um(50), 1e-3);
  EXPECT_NEAR(c, 80e-12 * from_um(50), 1e-20);
}

TEST(LineModel, DopingGainGrowsWithLength) {
  // The central Fig. 12 trend at the Elmore level: at short lengths the
  // contact-dominated delay ratio sits at ~1 (doping even adds ~2% via the
  // higher C_Q pulling Eq. 5 closer to C_E); at long lengths doping wins,
  // and the gain grows monotonically with L.
  const auto ratio_at = [](double l_um) {
    const cc::MwcntLine pristine = cc::make_paper_mwcnt(10, 2);
    const cc::MwcntLine doped = cc::make_paper_mwcnt(10, 10);
    cc::DriverLineLoad cfg;
    cfg.length_m = from_um(l_um);
    cfg.line = pristine.rlc();
    const double t_p = cc::elmore_delay(cfg);
    cfg.line = doped.rlc();
    return cc::elmore_delay(cfg) / t_p;
  };
  EXPECT_NEAR(ratio_at(10.0), 1.0, 0.03);
  EXPECT_LT(ratio_at(500.0), 1.0);
  EXPECT_LT(ratio_at(1000.0), ratio_at(500.0));
  EXPECT_LT(ratio_at(500.0), ratio_at(100.0));
}

TEST(MwcntResistance, SeriesAdditivityUpToOneQuantumTerm) {
  // Eq. 4 with ideal contacts: R(L) = Rq/(Nc Ns) * (1 + L/lambda), so
  // R(L1) + R(L2) = R(L1+L2) + Rq/(Nc Ns) — splitting a line in two costs
  // exactly one extra quantum term.
  const cc::MwcntLine line = cc::make_paper_mwcnt(10, 2, 0.0);
  const double l1 = from_um(120), l2 = from_um(380);
  const double quantum =
      cnti::phys::kResistanceQuantum / line.total_channels();
  EXPECT_NEAR(line.resistance(l1) + line.resistance(l2),
              line.resistance(l1 + l2) + quantum, 1e-6 * quantum);
}

TEST(Electrostatics, CapacitanceLinearInPermittivity) {
  // Laplace is linear in eps: doubling eps_r doubles the capacitance.
  const double c1 = cc::wire_over_plane_capacitance(from_nm(5), from_nm(25),
                                                    2.0);
  const double c2 = cc::wire_over_plane_capacitance(from_nm(5), from_nm(25),
                                                    4.0);
  EXPECT_NEAR(c2, 2.0 * c1, 1e-12 * c1);
}

TEST(Via, SingleCntViaMatchesTubeModel) {
  cc::ViaSpec via;
  cc::MwcntSpec tube;
  tube.outer_diameter_m = from_nm(7.5);  // the paper's CVD MWCNT
  tube.contact_resistance_ohm = 20e3;
  const cc::SingleCntVia v(via, tube);
  const cc::MwcntLine line(tube);
  EXPECT_NEAR(v.resistance(), line.resistance(via.height_m), 1.0);
}

TEST(Via, CntBeatsCuOnAmpacityDensity) {
  cc::ViaSpec via;
  cc::BundleSpec bundle;
  bundle.tube_density_per_m2 = 2e17;
  const cc::BundleCntVia cnt_via(via, bundle);
  const cc::CuVia cu_via(via);
  // Per-area ampacity of the CNT via far exceeds the Cu EM limit.
  EXPECT_GT(cnt_via.max_current(), 10.0 * cu_via.max_current());
}

TEST(Via, CuViaResistanceFormula) {
  cc::ViaSpec via;
  via.hole_diameter_m = from_nm(30);
  via.height_m = from_nm(100);
  const cc::CuVia v(via, 2e-9, 3e-8);
  const double d = from_nm(26);
  const double expected = 3e-8 * from_nm(100) / (M_PI * d * d / 4.0);
  EXPECT_NEAR(v.resistance(), expected, 1e-3 * expected);
}

TEST(Via, CompositeViaBetweenCuAndCnt) {
  cc::ViaSpec via;
  cnti::materials::CompositeSpec comp;
  comp.cnt_volume_fraction = 0.3;
  const cc::CompositeVia v(via, comp);
  EXPECT_GT(v.resistance(), 0.0);
  EXPECT_GT(v.max_current(), cc::CuVia(via).max_current());
}

TEST(Kpis, PaperTableOneNumbers) {
  // Cu 100x50 nm: ~50 uA; 1 nm CNT: 20-25 uA; ampacity advantage ~1e3;
  // thermal advantage ~7.8-26.
  EXPECT_NEAR(cnti::units::to_uA(cc::cu_max_current(100e-9, 50e-9)), 50.0,
              0.5);
  EXPECT_NEAR(cnti::units::to_uA(cc::cnt_max_current(1e-9)), 25.0, 0.5);
  EXPECT_NEAR(cc::ampacity_advantage(), 1e3, 1.0);
  EXPECT_NEAR(cc::thermal_advantage(0.0), 3000.0 / 385.0, 0.01);
  EXPECT_NEAR(cc::thermal_advantage(1.0), 10000.0 / 385.0, 0.01);
  // "A few CNTs are enough": 2-3 CNTs of 1 nm match the Cu line.
  const double n = cc::cnts_to_match_cu_current(100e-9, 50e-9);
  EXPECT_GE(n, 1.0);
  EXPECT_LE(n, 4.0);
}

TEST(Kpis, MinimumDensityNearItrsValue) {
  // Paper quotes 0.096 CNT/nm^2 (ITRS); our model should land in the same
  // regime (same order of magnitude) for an advanced-node Cu line.
  cnti::materials::CuLineSpec cu;
  cu.width_m = 20e-9;
  cu.height_m = 40e-9;
  cu.barrier_thickness_m = 2e-9;
  const double density =
      cc::min_density_to_match_cu(cu, from_um(1), 1e-9, 1.0);
  const double per_nm2 = density * 1e-18;
  EXPECT_GT(per_nm2, 0.02);
  EXPECT_LT(per_nm2, 0.5);
}

TEST(Multiscale, PristineFlowEndToEnd) {
  cc::MultiscaleInput in;
  in.dopant_concentration = 0.0;
  const auto report = cc::run_multiscale_flow(in);
  EXPECT_EQ(report.shells, 9);
  EXPECT_NEAR(report.channels_per_shell, 2.0, 1e-9);
  EXPECT_GT(report.resistance_kohm, 0.0);
  EXPECT_GT(report.delay_ps, 0.0);
  EXPECT_EQ(report.delay_method, "elmore");
}

TEST(Multiscale, DopingReducesDelay) {
  cc::MultiscaleInput pristine;
  pristine.length_um = 500.0;
  cc::MultiscaleInput doped = pristine;
  doped.dopant_concentration = 1.0;
  const auto rp = cc::run_multiscale_flow(pristine);
  const auto rd = cc::run_multiscale_flow(doped);
  EXPECT_GT(rd.channels_per_shell, 4.0);
  EXPECT_LT(rd.resistance_kohm, rp.resistance_kohm);
  EXPECT_LT(rd.delay_ps, rp.delay_ps);
}

TEST(Multiscale, HooksOverrideAnalyticStages) {
  cc::MultiscaleInput in;
  cc::MultiscaleHooks hooks;
  hooks.extract_capacitance = [](const cc::WireEnvironment&) {
    return 123e-12;
  };
  hooks.simulate_delay = [](const cc::DriverLineLoad&) { return 42e-12; };
  const auto report = cc::run_multiscale_flow(in, hooks);
  EXPECT_NEAR(report.electrostatic_cap_af_per_um, 123.0, 1e-6);
  EXPECT_NEAR(report.delay_ps, 42.0, 1e-9);
  EXPECT_EQ(report.delay_method, "hook");
}

}  // namespace
