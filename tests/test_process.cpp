// Tests for the process module: CVD growth model trends, chirality
// statistics, composite fill, the variability Monte Carlo (doping
// suppresses spread — the paper's central claim) and wafer maps.
#include <gtest/gtest.h>

#include <cmath>

#include "process/chirality_stats.hpp"
#include "process/composite_process.hpp"
#include "process/cvd.hpp"
#include "process/variability.hpp"
#include "process/wafer.hpp"

namespace cp = cnti::process;

namespace {

TEST(Cvd, PaperNominalTube) {
  // 1 nm catalyst film -> ~7.5 nm MWCNT with 4-5 walls (paper Sec. II.A).
  cp::GrowthRecipe recipe;
  const auto q = cp::evaluate_recipe(recipe);
  EXPECT_NEAR(q.mean_diameter_nm, 7.5, 0.1);
  EXPECT_GE(q.mean_walls, 4.0);
  EXPECT_LE(q.mean_walls, 5.0);
}

TEST(Cvd, HotterGrowthIsFasterAndCleaner) {
  cp::GrowthRecipe cold;
  cold.temperature_c = 400.0;
  cp::GrowthRecipe hot = cold;
  hot.temperature_c = 600.0;
  const auto qc = cp::evaluate_recipe(cold);
  const auto qh = cp::evaluate_recipe(hot);
  EXPECT_GT(qh.growth_rate_um_per_min, qc.growth_rate_um_per_min);
  EXPECT_GT(qh.defect_spacing_um, qc.defect_spacing_um);
  EXPECT_LT(qh.tortuosity, qc.tortuosity);
}

TEST(Cvd, CoEnablesCmosCompatibleGrowth) {
  // At 400 C (the BEOL budget), Co must clearly outperform Fe (Sec. II.B).
  cp::GrowthRecipe fe;
  fe.temperature_c = 400.0;
  fe.catalyst = cp::Catalyst::kFe;
  cp::GrowthRecipe co = fe;
  co.catalyst = cp::Catalyst::kCo;
  const auto qf = cp::evaluate_recipe(fe);
  const auto qc = cp::evaluate_recipe(co);
  EXPECT_GT(qc.growth_rate_um_per_min, 2.0 * qf.growth_rate_um_per_min);
  EXPECT_GT(qc.via_fill_yield, qf.via_fill_yield);
  EXPECT_TRUE(qc.cmos_compatible_temperature);
}

TEST(Cvd, SampledTubesFollowTheQuality) {
  cp::GrowthRecipe recipe;
  const auto q = cp::evaluate_recipe(recipe);
  cnti::numerics::Rng rng(17);
  double d_sum = 0.0;
  int filled = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto t = cp::sample_tube(q, rng);
    d_sum += t.diameter_nm;
    filled += t.via_filled ? 1 : 0;
    EXPECT_GE(t.walls, 1);
    EXPECT_GT(t.defect_spacing_um, 0.0);
  }
  EXPECT_NEAR(d_sum / n, q.mean_diameter_nm, 0.4);
  EXPECT_NEAR(static_cast<double>(filled) / n, q.via_fill_yield, 0.03);
}

TEST(Cvd, ThickerCatalystGrowsFatterTubes) {
  cp::GrowthRecipe thin;
  thin.catalyst_thickness_nm = 0.5;
  cp::GrowthRecipe thick = thin;
  thick.catalyst_thickness_nm = 2.0;
  EXPECT_GT(cp::evaluate_recipe(thick).mean_diameter_nm,
            cp::evaluate_recipe(thin).mean_diameter_nm);
}

TEST(Chirality, SamplingDeterministicBySeed) {
  cnti::numerics::Rng a(77), b(77);
  for (int i = 0; i < 20; ++i) {
    const auto ca_ = cp::sample_chirality(1.2, a);
    const auto cb = cp::sample_chirality(1.2, b);
    EXPECT_EQ(ca_.n(), cb.n());
    EXPECT_EQ(ca_.m(), cb.m());
  }
}

TEST(Cvd, RejectsUnphysicalRecipes) {
  cp::GrowthRecipe bad;
  bad.temperature_c = 50.0;
  EXPECT_THROW(cp::evaluate_recipe(bad), cnti::PreconditionError);
}

TEST(Chirality, SamplesNearRequestedDiameter) {
  cnti::numerics::Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    const auto ch = cp::sample_chirality(1.5, rng);
    EXPECT_NEAR(ch.diameter() * 1e9, 1.5, 0.2);
  }
}

TEST(Chirality, OneThirdMetallic) {
  cnti::numerics::Rng rng(29);
  const double f = cp::sampled_metallic_fraction(1.2, 3000, rng);
  EXPECT_NEAR(f, 1.0 / 3.0, 0.05);
}

TEST(Composite, EcdNeedsConductiveSubstrate) {
  cp::FillRecipe recipe;
  recipe.method = cp::FillMethod::kEcd;
  recipe.conductive_substrate = false;
  const auto out = cp::simulate_fill(recipe, 0.3);
  EXPECT_FALSE(out.feasible);
}

TEST(Composite, HaNeedsPreparation) {
  cp::FillRecipe recipe;
  recipe.alignment = cp::CntAlignment::kHorizontal;
  recipe.ha_preparation_done = false;
  EXPECT_FALSE(cp::simulate_fill(recipe, 0.3).feasible);
  recipe.ha_preparation_done = true;
  EXPECT_TRUE(cp::simulate_fill(recipe, 0.3).feasible);
}

TEST(Composite, OptimalEcdIsNearlyVoidFree) {
  cp::FillRecipe recipe;  // ECD, optimal current, good bath
  recipe.bath_quality = 0.95;
  recipe.plating_time_min = 120.0;
  const auto out = cp::simulate_fill(recipe, 0.3);
  EXPECT_TRUE(out.feasible);
  EXPECT_LT(out.void_fraction, 0.1);  // "void-free filling" (Fig. 7)
  EXPECT_GT(out.overburden_nm, 0.0);  // Cu overburden on top (Fig. 6)
}

TEST(Composite, OffCurrentEcdCreatesVoids) {
  cp::FillRecipe good;
  good.plating_time_min = 60.0;
  cp::FillRecipe bad = good;
  bad.relative_current = 2.0;
  EXPECT_GT(cp::simulate_fill(bad, 0.3).void_fraction,
            cp::simulate_fill(good, 0.3).void_fraction);
}

TEST(Composite, EldChemistryFlaggedForCmos) {
  cp::FillRecipe eld;
  eld.method = cp::FillMethod::kEld;
  eld.bath_quality = 0.8;
  EXPECT_FALSE(cp::simulate_fill(eld, 0.3).cmos_compatible_chemistry);
}

TEST(Variability, DopingSuppressesResistanceSpread) {
  // The paper's claim: doping counteracts chirality/defect variability.
  cp::VariabilityConfig pristine;
  pristine.samples = 3000;
  pristine.length_um = 1.0;
  pristine.dopant_concentration = 0.0;
  cp::VariabilityConfig doped = pristine;
  doped.dopant_concentration = 1.0;
  const auto rp = cp::run_resistance_mc(pristine);
  const auto rd = cp::run_resistance_mc(doped);
  // Doped devices: lower median, tighter distribution, no opens.
  EXPECT_LT(rd.resistance_kohm.median, rp.resistance_kohm.median);
  EXPECT_LT(rd.resistance_kohm.cv(), 0.7 * rp.resistance_kohm.cv());
  EXPECT_EQ(rd.open_fraction, 0.0);
  EXPECT_GT(rp.open_fraction, 0.0);  // all-semiconducting pristine tubes
}

TEST(Variability, BetterGrowthTightensPristineSpread) {
  cp::VariabilityConfig cold;
  cold.samples = 2000;
  cold.recipe.temperature_c = 420.0;
  cp::VariabilityConfig hot = cold;
  hot.recipe.temperature_c = 620.0;
  const auto rc = cp::run_resistance_mc(cold);
  const auto rh = cp::run_resistance_mc(hot);
  // Hotter growth -> fewer defects -> lower median resistance.
  EXPECT_LT(rh.resistance_kohm.median, rc.resistance_kohm.median);
}

TEST(Variability, DeterministicBySeed) {
  cp::VariabilityConfig c;
  c.samples = 200;
  const auto a = cp::run_resistance_mc(c);
  const auto b = cp::run_resistance_mc(c);
  EXPECT_DOUBLE_EQ(a.resistance_kohm.mean, b.resistance_kohm.mean);
}

TEST(Wafer, RadialTemperatureDroop) {
  cnti::numerics::Rng rng(31);
  cp::WaferSpec spec;
  spec.temperature_noise_c = 0.0;  // isolate the radial term
  cp::GrowthRecipe nominal;
  const cp::WaferMap wafer(spec, nominal, rng);
  // Centre die hotter than edge dies.
  double t_center = 0.0, t_edge = 0.0, r_edge = 0.0;
  for (const auto& d : wafer.dies()) {
    if (d.radius_mm < 1.0) t_center = d.recipe.temperature_c;
    if (d.radius_mm > r_edge) {
      r_edge = d.radius_mm;
      t_edge = d.recipe.temperature_c;
    }
  }
  EXPECT_GT(t_center, t_edge);
  EXPECT_NEAR(t_center - t_edge,
              spec.radial_temperature_droop_c *
                  std::pow(r_edge / 150.0, 2.0),
              0.5);
}

TEST(Wafer, UniformityAndYieldMetrics) {
  cnti::numerics::Rng rng(37);
  cp::WaferSpec spec;
  cp::GrowthRecipe nominal;
  nominal.catalyst = cp::Catalyst::kCo;
  nominal.temperature_c = 420.0;
  const cp::WaferMap wafer(spec, nominal, rng);
  EXPECT_GT(wafer.dies().size(), 100u);  // 300 mm at 20 mm pitch
  EXPECT_GT(wafer.diameter_uniformity(), 0.0);
  EXPECT_LT(wafer.diameter_uniformity(), 0.2);
  EXPECT_GT(wafer.yield(), 0.5);
}

}  // namespace
